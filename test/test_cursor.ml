(* The streaming layer (lib/engine) against the engines it wraps:

   - Differential drains: for every engine (compiled, SLP-compressed,
     incremental) and random (formula, document) pairs, fully draining
     the cursor yields exactly the engine's materialising relation.
   - Early termination: take k / first never pull more than k tuples
     from the engine (the [Cursor.pulls] instrumentation), and
     to_relation (take n c) equals the first n tuples of a full drain.
   - Consolidation composes with cursors: every policy agrees between
     a streamed and a materialised relation.
   - Cursor mechanics (peek/drop/shared take views), gauge probing
     mid-stream, and the planner's choices/execution. *)

open Spanner_core
module Charset = Spanner_fa.Charset
module Limits = Spanner_util.Limits
module Slp = Spanner_slp.Slp
module Builder = Spanner_slp.Builder
module Balance = Spanner_slp.Balance
module Doc_db = Spanner_slp.Doc_db
module Slp_spanner = Spanner_slp.Slp_spanner
module Incr = Spanner_incr.Incr
module Cursor = Spanner_engine.Cursor
module Plan = Spanner_engine.Plan

let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Generators (same shapes as test_compiled) *)

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 25))
let gen_doc1 = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 25))

let gen_formula =
  let open QCheck2.Gen in
  let gen_plain =
    oneofl
      [
        Regex_formula.char 'a';
        Regex_formula.char 'b';
        Regex_formula.chars (Charset.of_string "ab");
        Regex_formula.chars Charset.full;
        Regex_formula.star (Regex_formula.chars (Charset.of_string "abc"));
        Regex_formula.plus (Regex_formula.char 'b');
        Regex_formula.opt (Regex_formula.char 'c');
        Regex_formula.epsilon;
      ]
  in
  let rec gen_with_vars pool depth =
    if depth = 0 || pool = [] then gen_plain
    else
      frequency
        [
          (3, gen_plain);
          ( 2,
            match pool with
            | x :: rest ->
                gen_with_vars rest (depth - 1) >>= fun body ->
                return (Regex_formula.bind x body)
            | [] -> gen_plain );
          ( 2,
            let left_pool, right_pool =
              List.partition (fun x -> Variable.id x mod 2 = 0) pool
            in
            gen_with_vars left_pool (depth - 1) >>= fun l ->
            gen_with_vars right_pool (depth - 1) >>= fun r ->
            return (Regex_formula.concat l r) );
          ( 1,
            gen_with_vars [] (depth - 1) >>= fun body -> return (Regex_formula.star body)
          );
        ]
  in
  gen_with_vars [ v "x"; v "y" ] 3 >>= fun f ->
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Charset.full))
       (Regex_formula.concat f
          (Regex_formula.star (Regex_formula.chars Charset.full))))

(* Formulas guaranteed to bind x — consolidation needs the column. *)
let gen_formula_x =
  let open QCheck2.Gen in
  oneofl
    [
      Regex_formula.char 'a';
      Regex_formula.chars (Charset.of_string "ab");
      Regex_formula.plus (Regex_formula.char 'b');
      Regex_formula.star (Regex_formula.chars (Charset.of_string "abc"));
    ]
  >>= fun body ->
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Charset.full))
       (Regex_formula.concat
          (Regex_formula.bind (v "x") body)
          (Regex_formula.star (Regex_formula.chars Charset.full))))

let gen_pair = QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
let gen_pair1 = QCheck2.Gen.(gen_formula >>= fun f -> gen_doc1 >>= fun d -> return (f, d))
let print_pair (f, doc) = Printf.sprintf "%s on %S" (Regex_formula.to_string f) doc

(* ------------------------------------------------------------------ *)
(* Engine fixtures *)

let compiled_cursor ct doc = Cursor.of_compiled (Compiled.prepare ct doc)

let slp_fixture f doc =
  let ct = Compiled.of_formula f in
  let store = Slp.create_store () in
  let id = Balance.rebalance store (Builder.lz78 store doc) in
  let engine = Slp_spanner.of_compiled ct store in
  Slp_spanner.prepare engine id;
  (engine, id)

let incr_fixture f doc =
  let ct = Compiled.of_formula f in
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "doc" doc);
  let session = Incr.create ct db in
  (session, Doc_db.find db "doc")

(* ------------------------------------------------------------------ *)
(* Differential drains: cursor = pre-cursor relation, per engine *)

let prop_drain_compiled =
  QCheck2.Test.make ~name:"drain of_compiled = Compiled.eval" ~count:300 gen_pair
    ~print:print_pair (fun (f, doc) ->
      let ct = Compiled.of_formula f in
      Span_relation.equal (Cursor.to_relation (compiled_cursor ct doc)) (Compiled.eval ct doc))

let prop_drain_slp =
  QCheck2.Test.make ~name:"drain of_slp = Slp_spanner.to_relation" ~count:200 gen_pair1
    ~print:print_pair (fun (f, doc) ->
      let engine, id = slp_fixture f doc in
      Span_relation.equal
        (Cursor.to_relation (Cursor.of_slp engine id))
        (Slp_spanner.to_relation engine id))

let prop_drain_incr =
  QCheck2.Test.make ~name:"drain of_incr = Incr.eval" ~count:200 gen_pair1
    ~print:print_pair (fun (f, doc) ->
      let session, id = incr_fixture f doc in
      Span_relation.equal
        (Cursor.to_relation (Cursor.of_incr session id))
        (Incr.eval session id))

(* ------------------------------------------------------------------ *)
(* Early termination: take k pulls at most k tuples from the engine *)

let firstn n xs = List.filteri (fun i _ -> i < n) xs

let pull_bound cursor_of k =
  let c = cursor_of () in
  let view = Cursor.take c k in
  let got = Cursor.to_list view in
  List.length got <= k && Cursor.pulls c <= k

let prop_take_pull_bound =
  QCheck2.Test.make ~name:"take k never pulls more than k tuples (every engine)"
    ~count:150 gen_pair1 ~print:print_pair (fun (f, doc) ->
      let ct = Compiled.of_formula f in
      let engine, sid = slp_fixture f doc in
      let session, iid = incr_fixture f doc in
      List.for_all
        (fun k ->
          pull_bound (fun () -> compiled_cursor ct doc) k
          && pull_bound (fun () -> Cursor.of_slp engine sid) k
          && pull_bound (fun () -> Cursor.of_incr session iid) k)
        [ 0; 1; 3 ])

let prop_take_prefix =
  QCheck2.Test.make ~name:"to_relation (take n c) = first n of a full drain" ~count:150
    gen_pair ~print:print_pair (fun (f, doc) ->
      let ct = Compiled.of_formula f in
      let full = Cursor.to_list (compiled_cursor ct doc) in
      List.for_all
        (fun n ->
          let windowed = Cursor.to_relation (Cursor.take (compiled_cursor ct doc) n) in
          Span_relation.equal windowed
            (Span_relation.of_list (Compiled.vars ct) (firstn n full)))
        [ 0; 1; 2; 5 ])

(* ------------------------------------------------------------------ *)
(* Consolidation composes with cursors *)

let policies =
  Consolidate.
    [ Contained_within; Not_contained_within; Left_to_right; Exact_overlap ]

let prop_consolidate_streamed =
  QCheck2.Test.make
    ~name:"consolidate(streamed relation) = consolidate(materialised relation)" ~count:200
    QCheck2.Gen.(gen_formula_x >>= fun f -> gen_doc >>= fun d -> return (f, d))
    ~print:print_pair
    (fun (f, doc) ->
      let ct = Compiled.of_formula f in
      let streamed = Cursor.to_relation (compiled_cursor ct doc) in
      let materialised = Compiled.eval ct doc in
      List.for_all
        (fun policy ->
          Span_relation.equal
            (Consolidate.consolidate policy ~on:(v "x") streamed)
            (Consolidate.consolidate policy ~on:(v "x") materialised))
        policies)

let prop_consolidate_window =
  QCheck2.Test.make
    ~name:"consolidate over take n = consolidate over first n of the drain" ~count:100
    QCheck2.Gen.(gen_formula_x >>= fun f -> gen_doc >>= fun d -> return (f, d))
    ~print:print_pair
    (fun (f, doc) ->
      let ct = Compiled.of_formula f in
      let full = Cursor.to_list (compiled_cursor ct doc) in
      List.for_all
        (fun n ->
          let windowed = Cursor.to_relation (Cursor.take (compiled_cursor ct doc) n) in
          let prefix = Span_relation.of_list (Compiled.vars ct) (firstn n full) in
          List.for_all
            (fun policy ->
              Span_relation.equal
                (Consolidate.consolidate policy ~on:(v "x") windowed)
                (Consolidate.consolidate policy ~on:(v "x") prefix))
            policies)
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Cursor mechanics *)

let example_cursor () =
  let ct = Compiled.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  compiled_cursor ct "ababbab"

let test_peek_next_drop () =
  let c = example_cursor () in
  let p = Cursor.peek c in
  Alcotest.(check bool) "peek = next" true (p = Cursor.next c);
  Cursor.drop c 1;
  Alcotest.(check int) "peek+next+drop consumed 2" 2 (Cursor.cardinal c);
  Alcotest.(check (option reject)) "exhausted" None (Cursor.next c);
  Alcotest.(check (option reject)) "stays exhausted" None (Cursor.peek c)

let test_take_shares_stream () =
  let c = example_cursor () in
  let view = Cursor.take c 2 in
  Alcotest.(check int) "view delivers 2" 2 (Cursor.cardinal view);
  Alcotest.(check (option reject)) "view exhausted" None (Cursor.next view);
  Alcotest.(check int) "parent continues with the rest" 2 (Cursor.cardinal c);
  Alcotest.(check int) "4 engine pulls total" 4 (Cursor.pulls c)

let test_gauge_trips_mid_stream () =
  let ct = Compiled.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  let g = Limits.start (Limits.make ~max_tuples:2 ()) in
  let c = Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g ct "ababbab") in
  Alcotest.(check bool) "tuple 1 flows" true (Cursor.next c <> None);
  Alcotest.(check bool) "tuple 2 flows" true (Cursor.next c <> None);
  Alcotest.check_raises "third pull trips"
    (Limits.Spanner_error
       (Limits.Limit_exceeded { which = Limits.Tuples; spent = 3 }))
    (fun () -> ignore (Cursor.next c))

let test_of_relation_roundtrip () =
  let ct = Compiled.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  let r = Compiled.eval ct "ababbab" in
  Alcotest.(check bool) "of_relation drains back" true
    (Span_relation.equal r (Cursor.to_relation (Cursor.of_relation r)))

(* ------------------------------------------------------------------ *)
(* Planner *)

let xyz = Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}"

let test_plan_choices () =
  let ct = Compiled.of_formula xyz in
  let check_choice name expected plan =
    Alcotest.(check bool) name true (Plan.choice plan = expected)
  in
  check_choice "plain doc -> compiled" `Compiled (Plan.make ct (Plan.Doc "ababbab"));
  check_choice "plain batch -> compiled" `Compiled
    (Plan.make ct (Plan.Docs [| ("d", "ab") |]));
  (* incompressible: 7 bytes cost 7 nodes *)
  let store = Slp.create_store () in
  let small = Balance.rebalance store (Builder.lz78 store "ababbab") in
  check_choice "ratio 1.0 -> decompress" `Decompress
    (Plan.make ct (Plan.Slp_node (store, small)));
  (* highly repetitive: the sweep wins *)
  let big = Balance.rebalance store (Builder.lz78 store (String.concat "" (List.init 256 (fun _ -> "ab")))) in
  check_choice "high ratio -> compressed" `Compressed
    (Plan.make ct (Plan.Slp_node (store, big)));
  let session, _ = incr_fixture xyz "ababbab" in
  check_choice "session -> incr" `Incr
    (Plan.make ct (Plan.Session (session, "doc")));
  check_choice "force overrides ratio" `Compressed
    (Plan.make ~force:`Compressed ct (Plan.Slp_node (store, small)));
  Alcotest.check_raises "force must fit the shape"
    (Invalid_argument "Plan.make: forced engine does not fit the input shape") (fun () ->
      ignore (Plan.make ~force:`Incr ct (Plan.Doc "ab")))

let test_plan_relations_match_engines () =
  let ct = Compiled.of_formula xyz in
  let docs = [| ("d1", "ababbab"); ("d2", "abab"); ("d3", "bbbb") |] in
  let expected = Array.map (fun (_, d) -> Compiled.eval ct d) docs in
  let check_results name results =
    Array.iteri
      (fun i (_, r) ->
        match r with
        | Ok r -> Alcotest.(check bool) name true (Span_relation.equal r expected.(i))
        | Error e -> Alcotest.failf "%s: slot %d failed: %s" name i (Printexc.to_string e))
      results
  in
  check_results "plain batch" (Plan.relations ~jobs:2 (Plan.make ct (Plan.Docs docs)));
  let db = Doc_db.create () in
  Array.iter (fun (n, d) -> ignore (Doc_db.add_string db n d)) docs;
  check_results "compressed batch"
    (Plan.relations ~jobs:2 (Plan.make ~force:`Compressed ct (Plan.Db db)));
  check_results "decompress batch"
    (Plan.relations ~jobs:2 (Plan.make ~force:`Decompress ct (Plan.Db db)));
  (* streamed cursors agree too *)
  Array.iteri
    (fun i (_, slot) ->
      match slot with
      | Ok c ->
          Alcotest.(check bool) "cursor slot" true
            (Span_relation.equal (Cursor.to_relation c) expected.(i))
      | Error e -> Alcotest.failf "cursor slot %d failed: %s" i (Printexc.to_string e))
    (Plan.cursors (Plan.make ~force:`Compressed ct (Plan.Db db)))

let test_plan_partial_failure () =
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*") in
  let limits = Limits.make ~max_tuples:10 () in
  let docs = [| ("small", "aa"); ("big", "aaaaaaaaaa") |] in
  let results = Plan.relations ~limits (Plan.make ct (Plan.Docs docs)) in
  (match results.(0) with
  | _, Ok r -> Alcotest.(check int) "healthy slot" 6 (Span_relation.cardinal r)
  | _, Error e -> Alcotest.failf "healthy slot failed: %s" (Printexc.to_string e));
  match results.(1) with
  | _, Error (Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Tuples; _ })) ->
      ()
  | _, Error e -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e)
  | _, Ok _ -> Alcotest.fail "explosive document should trip the tuple cap"

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cursor"
    [
      ( "differential",
        to_alcotest [ prop_drain_compiled; prop_drain_slp; prop_drain_incr ] );
      ("windows", to_alcotest [ prop_take_pull_bound; prop_take_prefix ]);
      ( "consolidate",
        to_alcotest [ prop_consolidate_streamed; prop_consolidate_window ] );
      ( "mechanics",
        [
          Alcotest.test_case "peek/next/drop" `Quick test_peek_next_drop;
          Alcotest.test_case "take shares the stream" `Quick test_take_shares_stream;
          Alcotest.test_case "gauge trips mid-stream" `Quick test_gauge_trips_mid_stream;
          Alcotest.test_case "of_relation roundtrip" `Quick test_of_relation_roundtrip;
        ] );
      ( "planner",
        [
          Alcotest.test_case "choices per shape" `Quick test_plan_choices;
          Alcotest.test_case "relations = engines" `Quick test_plan_relations_match_engines;
          Alcotest.test_case "partial failure" `Quick test_plan_partial_failure;
        ] );
    ]
