(* Differential tests for the incremental evaluation subsystem:

   - Incr.eval on the initial document and after every edit of a random
     CDE script equals the from-scratch compiled evaluation of the
     decompressed document (≥500 random cases), including with a tiny
     cache that forces evictions.
   - Cache-stats sanity: re-evaluating an unchanged document is 100%
     hits; documents sharing nodes (Figure 1) share summaries.
   - Error paths of Incr.edit (out-of-range positions, unknown names). *)

open Spanner_core
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde
module Figure1 = Spanner_slp.Figure1
module Incr = Spanner_incr.Incr

(* ------------------------------------------------------------------ *)
(* Generators *)

(* A pool of well-formed formulas (all accepted by Regex_formula.parse)
   with varied shapes: sequential vars, nested vars, alternation under a
   var, no vars at all. *)
let formula_pool =
  List.map Regex_formula.parse
    [
      "!x{[ab]*}!y{b}!z{[ab]*}";
      ".*!x{ab}.*";
      "!x{a*}b*!y{c?}.*";
      ".*!x{b!y{c*}}.*";
      "[abc]*";
      ".*!x{a|bc}.*";
    ]

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 30))

(* Edit intents carry raw integers; they are clamped against the live
   document length when applied, so every script is valid on whatever
   document the previous edits produced. *)
type intent = { tag : int; a : int; b : int; c : int }

let gen_intent =
  QCheck2.Gen.(
    int_range 0 4 >>= fun tag ->
    int_bound 1000 >>= fun a ->
    int_bound 1000 >>= fun b ->
    int_bound 1000 >>= fun c -> return { tag; a; b; c })

let gen_case =
  QCheck2.Gen.(
    oneofl formula_pool >>= fun f ->
    gen_doc >>= fun doc ->
    list_size (1 -- 6) gen_intent >>= fun script -> return (f, doc, script))

let print_case (f, doc, script) =
  Printf.sprintf "%s on %S, %d edit(s): %s" (Regex_formula.to_string f) doc
    (List.length script)
    (String.concat "; "
       (List.map (fun { tag; a; b; c } -> Printf.sprintf "(%d,%d,%d,%d)" tag a b c) script))

(* Build a concrete in-range edit from an intent and the current
   length.  Factors stay short (≤ 5) so scripts cannot blow up the
   document; [Delete] never empties it. *)
let make_edit len { tag; a; b; c } =
  let pos n x = 1 + (x mod n) in
  let doc = Cde.Doc "doc" in
  match tag with
  | 0 ->
      (* extract a short non-empty factor *)
      let i = pos len a in
      let j = min len (i + (b mod 5)) in
      Cde.Extract (doc, i, j)
  | 1 when len >= 2 ->
      (* delete a factor, but never the whole document *)
      let i = pos len a in
      let j = min len (i + (b mod 5)) in
      if i = 1 && j = len then Cde.Delete (doc, 1, len - 1) else Cde.Delete (doc, i, j)
  | 2 ->
      (* insert a copy of a factor of the document into itself *)
      let i = pos len a in
      let j = min len (i + (b mod 5)) in
      Cde.Insert (doc, Cde.Extract (doc, i, j), pos (len + 1) c)
  | 3 ->
      let i = pos len a in
      let j = min len (i + (b mod 5)) in
      Cde.Copy (doc, i, j, pos (len + 1) c)
  | _ -> Cde.Concat (doc, doc)

(* ------------------------------------------------------------------ *)
(* Differential: Incr = from-scratch Compiled, after every edit *)

let incr_equals_compiled ?cache_capacity (f, doc, script) =
  let ct = Compiled.of_formula f in
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  ignore (Doc_db.add_string db "doc" doc);
  let s = Incr.create ?cache_capacity ct db in
  let agrees id relation =
    Span_relation.equal relation (Compiled.eval ct (Slp.to_string store id))
  in
  let root = Doc_db.find db "doc" in
  agrees root (Incr.eval s root)
  && List.for_all
       (fun intent ->
         let len = Slp.len store (Doc_db.find db "doc") in
         let id, relation = Incr.edit s "doc" (make_edit len intent) in
         agrees id relation)
       script

let prop_incr_equals_compiled =
  QCheck2.Test.make
    ~name:"incr = compiled from scratch, initially and after every edit of a random script"
    ~count:500 gen_case ~print:print_case (incr_equals_compiled ?cache_capacity:None)

let prop_incr_tiny_cache =
  QCheck2.Test.make
    ~name:"incr with a 4-entry cache (evictions forced) still = compiled from scratch"
    ~count:150 gen_case ~print:print_case
    (incr_equals_compiled ~cache_capacity:4)

(* ------------------------------------------------------------------ *)
(* Cache statistics *)

let test_warm_reeval () =
  let ct = Compiled.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "doc" "abbababbabab");
  let s = Incr.create ct db in
  let cold = Incr.eval_doc s "doc" in
  let st = Incr.stats s in
  Alcotest.(check bool) "cold run misses" true (st.Incr.misses > 0);
  Incr.reset_stats s;
  let warm = Incr.eval_doc s "doc" in
  let st = Incr.stats s in
  Alcotest.(check int) "warm run: no misses" 0 st.Incr.misses;
  Alcotest.(check bool) "warm run: some hits" true (st.Incr.hits > 0);
  Alcotest.(check int) "warm run: no evictions" 0 st.Incr.evictions;
  Alcotest.(check bool) "same relation" true (Span_relation.equal cold warm)

let test_figure1_sharing () =
  (* A3 is a sub-DAG of A1 = (A3, C): after evaluating D1, evaluating
     D3 touches only cached nodes. *)
  let fig = Figure1.build () in
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{bc}.*") in
  let s = Incr.create ct fig.Figure1.db in
  let r1 = Incr.eval_doc s "D1" in
  Incr.reset_stats s;
  let r3 = Incr.eval_doc s "D3" in
  let st = Incr.stats s in
  Alcotest.(check int) "D3 after D1: no misses" 0 st.Incr.misses;
  Alcotest.(check bool) "D3 after D1: hits" true (st.Incr.hits > 0);
  Alcotest.(check bool)
    "relations match compiled" true
    (Span_relation.equal r1 (Compiled.eval ct "ababbcabca")
    && Span_relation.equal r3 (Compiled.eval ct "ababbca"))

let test_eval_all () =
  let fig = Figure1.build () in
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{bc}.*") in
  let s = Incr.create ct fig.Figure1.db in
  let results = Incr.eval_all s in
  Alcotest.(check (list string))
    "designation order" (Doc_db.names fig.Figure1.db) (List.map fst results);
  List.iter
    (fun (name, r) ->
      let doc = Slp.to_string (Doc_db.store fig.Figure1.db) (Doc_db.find fig.Figure1.db name) in
      match r with
      | Ok r ->
          Alcotest.(check bool) (name ^ " matches compiled") true
            (Span_relation.equal r (Compiled.eval ct doc))
      | Error e -> Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
    results

let test_edit_errors () =
  let ct = Compiled.of_formula (Regex_formula.parse "[ab]*") in
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "doc" "ab");
  let s = Incr.create ct db in
  Alcotest.check_raises "out-of-range delete"
    (Invalid_argument "Cde.eval: delete range [5..9] out of bounds (length 2)") (fun () ->
      ignore (Incr.edit s "doc" (Cde.Delete (Cde.Doc "doc", 5, 9))));
  Alcotest.check_raises "unknown document" Not_found (fun () ->
      ignore (Incr.edit s "doc" (Cde.Concat (Cde.Doc "doc", Cde.Doc "nope"))));
  (* failed edits leave the database untouched *)
  Alcotest.(check (list string)) "names unchanged" [ "doc" ] (Doc_db.names db)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "incr"
    [
      ("differential", to_alcotest [ prop_incr_equals_compiled; prop_incr_tiny_cache ]);
      ( "cache",
        [
          Alcotest.test_case "warm re-evaluation is 100% hits" `Quick test_warm_reeval;
          Alcotest.test_case "Figure 1 sharing across documents" `Quick test_figure1_sharing;
          Alcotest.test_case "eval_all over the database" `Quick test_eval_all;
          Alcotest.test_case "edit error paths" `Quick test_edit_errors;
        ] );
    ]
