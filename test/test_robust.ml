(* Robustness: resource budgets, the typed error taxonomy, hardened
   deserialisation, and partial-failure batch semantics.

   - Limits unit behaviour: fuel, deadline, state cap, tuple cap each
     trip with the right [which]; generous budgets are invisible.
   - Serialize: the 10-byte-varint regression, hostile size fields
     (a tiny file claiming 2^40 nodes fails fast), duplicate names,
     non-canonical varints; qcheck truncation/bit-flips of a valid
     image always give a typed error or a successful parse.
   - Pool.mapi_result: per-slot partial failure.
   - Batch semantics: one over-budget document degrades to its Error
     slot, healthy documents still complete (Compiled, Doc_db, Incr).
   - Parsers: bounded-repetition expansion attacks and repetition-count
     overflow are rejected as parse errors in all three parsers. *)

open Spanner_core
module Limits = Spanner_util.Limits
module Pool = Spanner_util.Pool
module Doc_db = Spanner_slp.Doc_db
module Serialize = Spanner_slp.Serialize
module Incr = Spanner_incr.Incr
module X = Spanner_util.Xoshiro

let check = Alcotest.check
let tc = Alcotest.test_case

let trips which f =
  match f () with
  | _ -> Alcotest.failf "expected %s limit to trip" (Limits.which_to_string which)
  | exception Limits.Spanner_error (Limits.Limit_exceeded { which = w; _ }) ->
      check Alcotest.string "which" (Limits.which_to_string which) (Limits.which_to_string w)

let corrupt f =
  match f () with
  | _ -> Alcotest.fail "expected Corrupt_input"
  | exception Limits.Spanner_error (Limits.Corrupt_input _) -> ()

let parse_fails f =
  match f () with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Spanner_fa.Regex.Parse_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Limits unit behaviour *)

let limits_basics () =
  check Alcotest.bool "none is none" true (Limits.is_none Limits.none);
  check Alcotest.bool "make () is none" true (Limits.is_none (Limits.make ()));
  check Alcotest.bool "make ~fuel is bounded" false (Limits.is_none (Limits.make ~fuel:10 ()));
  (* fuel trips exactly past the cap, not within an amortised interval *)
  let g = Limits.start (Limits.make ~fuel:100 ()) in
  for _ = 1 to 100 do
    Limits.check g
  done;
  trips Limits.Fuel (fun () -> Limits.check g);
  (* a zero-millisecond deadline trips on the first probe *)
  let g = Limits.start (Limits.make ~time_ms:0 ()) in
  trips Limits.Deadline (fun () ->
      for _ = 1 to 100_000 do
        Limits.check g
      done);
  (* charge counts in bulk *)
  let g = Limits.start (Limits.make ~fuel:10_000 ()) in
  trips Limits.Fuel (fun () ->
      for _ = 1 to 100 do
        Limits.charge g 5_000
      done);
  (* state/tuple caps are direct *)
  let g = Limits.start (Limits.make ~max_states:8 ()) in
  Limits.check_states g 8;
  trips Limits.States (fun () -> Limits.check_states g 9);
  let g = Limits.start (Limits.make ~max_tuples:3 ()) in
  Limits.check_tuples g 3;
  trips Limits.Tuples (fun () -> Limits.check_tuples g 4)

let error_rendering () =
  let e = Limits.Parse { what = "datalog"; pos = 7; msg = "expected ':-'" } in
  check Alcotest.string "parse" "datalog parse error at offset 7: expected ':-'"
    (Limits.to_string e);
  check Alcotest.int "parse exit" 2 (Limits.exit_code e);
  let e = Limits.Limit_exceeded { which = Limits.Fuel; spent = 42 } in
  check Alcotest.string "limit" "fuel limit exceeded (spent 42 steps)" (Limits.to_string e);
  check Alcotest.int "limit exit" 3 (Limits.exit_code e);
  let e = Limits.Corrupt_input { what = "SLPDB"; msg = "bad magic" } in
  check Alcotest.string "corrupt" "corrupt SLPDB input: bad magic" (Limits.to_string e);
  check Alcotest.int "corrupt exit" 2 (Limits.exit_code e);
  let e = Limits.Eval_failure { what = "batch"; msg = "boom" } in
  check Alcotest.int "eval exit" 1 (Limits.exit_code e)

(* ------------------------------------------------------------------ *)
(* Budget enforcement at the evaluation hot spots *)

(* many variables over a common factor: the marker-set closure and the
   subset construction both blow up on this family *)
let pathological_formula k =
  let body = Regex_formula.star (Regex_formula.char 'a') in
  let rec build i =
    if i > k then body
    else
      Regex_formula.concat
        (Regex_formula.bind (Variable.of_string (Printf.sprintf "x%d" i)) body)
        (build (i + 1))
  in
  build 1

let state_cap_trips () =
  let f = pathological_formula 6 in
  trips Limits.States (fun () ->
      Evset.determinize ~limits:(Limits.make ~max_states:4 ()) (Evset.of_formula f));
  trips Limits.States (fun () -> Compiled.of_formula ~limits:(Limits.make ~max_states:4 ()) f)

let fuel_trips_on_long_document () =
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{a[ab]*b}.*") in
  let doc = String.concat "" (List.init 2_000 (fun _ -> "ab")) in
  trips Limits.Fuel (fun () -> Compiled.eval ~limits:(Limits.make ~fuel:1_000 ()) ct doc)

let tuple_cap_trips () =
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*") in
  let doc = String.make 60 'a' in
  trips Limits.Tuples (fun () -> Compiled.eval ~limits:(Limits.make ~max_tuples:10 ()) ct doc)

let datalog_fuel_trips () =
  let p =
    Spanner_datalog.Datalog.parse
      {| eq(x, y) :- <([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*>(x, y), streq(x, y).
         chain(x, y) :- eq(x, y).
         chain(x, z) :- chain(x, y), eq(y, z). |}
  in
  let doc = String.concat ";" (List.init 30 (fun _ -> "ab")) ^ ";" in
  trips Limits.Fuel (fun () ->
      Spanner_datalog.Datalog.run ~limits:(Limits.make ~fuel:2_000 ()) p doc)

let incr_fuel_trips () =
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "doc" (String.concat "" (List.init 500 (fun _ -> "ab"))));
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{ab}.*") in
  let s = Incr.create ct db in
  trips Limits.Fuel (fun () -> Incr.eval_doc ~limits:(Limits.make ~fuel:50 ()) s "doc")

(* a generous budget must be semantically invisible *)
let generous = Limits.make ~fuel:100_000_000 ~time_ms:600_000 ~max_states:100_000 ~max_tuples:10_000_000 ()

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 25))

let gen_formula_src =
  QCheck2.Gen.oneofl
    [
      "!x{[ab]*}!y{b}!z{[ab]*}";
      ".*!x{a[ab]*b}.*";
      "!x{a*}!y{b*}c*";
      "(!x{ab*}|!x{ba*})c*";
      "[abc]*!x{[ab]+}[abc]*";
    ]

let prop_generous_budget_invisible =
  QCheck2.Test.make ~name:"evaluation under a generous budget = evaluation without" ~count:100
    QCheck2.Gen.(
      gen_formula_src >>= fun src ->
      gen_doc >>= fun doc -> return (src, doc))
    ~print:(fun (src, doc) -> Printf.sprintf "%s on %S" src doc)
    (fun (src, doc) ->
      let f = Regex_formula.parse src in
      let free = Compiled.eval (Compiled.of_formula f) doc in
      let governed =
        Compiled.eval ~limits:generous (Compiled.of_formula ~limits:generous f) doc
      in
      Span_relation.equal free governed)

(* ------------------------------------------------------------------ *)
(* Pool partial failure *)

let pool_mapi_result () =
  let a = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let r =
    Pool.mapi_result ~jobs:4 (fun _ x -> if x mod 3 = 0 then failwith "boom" else x * 10) a
  in
  Array.iteri
    (fun i x ->
      match (r.(i), x mod 3 = 0) with
      | Ok y, false -> check Alcotest.int "ok slot" (x * 10) y
      | Error (Failure m), true -> check Alcotest.string "error slot" "boom" m
      | _ -> Alcotest.failf "slot %d has the wrong shape" i)
    a

(* ------------------------------------------------------------------ *)
(* Batch partial-failure semantics *)

let batch_partial_failure () =
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*") in
  let docs = [| "aaaa"; String.make 80 'a'; "aa" |] in
  let limits = Limits.make ~max_tuples:50 () in
  let r = Compiled.eval_all_result ~jobs:2 ~limits ct docs in
  (match r.(0) with Ok _ -> () | Error _ -> Alcotest.fail "doc 0 should succeed");
  (match r.(1) with
  | Error (Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Tuples; _ })) -> ()
  | _ -> Alcotest.fail "doc 1 should trip the tuple cap");
  (match r.(2) with Ok _ -> () | Error _ -> Alcotest.fail "doc 2 should succeed");
  (* healthy slots agree with unlimited evaluation *)
  (match r.(0) with
  | Ok rel -> check Alcotest.bool "doc 0 exact" true (Span_relation.equal rel (Compiled.eval ct docs.(0)))
  | Error _ -> ())

let doc_db_partial_failure () =
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "small" "aaaa");
  ignore (Doc_db.add_string db "huge" (String.make 80 'a'));
  ignore (Doc_db.add_string db "tiny" "aa");
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*") in
  let results = Doc_db.eval_all ~jobs:2 ~limits:(Limits.make ~max_tuples:50 ()) db ct in
  check
    Alcotest.(list string)
    "order" [ "small"; "huge"; "tiny" ] (List.map fst results);
  List.iter
    (fun (name, r) ->
      match (name, r) with
      | "huge", Error (Limits.Spanner_error (Limits.Limit_exceeded _)) -> ()
      | "huge", _ -> Alcotest.fail "huge should trip"
      | _, Ok _ -> ()
      | name, Error e -> Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
    results

let incr_partial_failure () =
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "small" "aaaa");
  ignore (Doc_db.add_string db "huge" (String.make 80 'a'));
  (* determinised: the SLP run enumeration then emits each tuple along
     exactly one run, so the tuple cap counts distinct tuples *)
  let ct =
    Compiled.of_evset (Evset.determinize (Evset.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*")))
  in
  let s = Incr.create ct db in
  let results = Incr.eval_all ~limits:(Limits.make ~max_tuples:50 ()) s in
  List.iter
    (fun (name, r) ->
      match (name, r) with
      | "huge", Error (Limits.Spanner_error (Limits.Limit_exceeded _)) -> ()
      | "huge", _ -> Alcotest.fail "huge should trip"
      | "small", Ok rel ->
          check Alcotest.bool "small exact" true (Span_relation.equal rel (Compiled.eval ct "aaaa"))
      | name, _ -> Alcotest.failf "unexpected slot for %s" name)
    results

(* ------------------------------------------------------------------ *)
(* Serialize hardening *)

let magic = "SLPDB1\n"

let varint_regression () =
  (* ten continuation bytes: before the shift cap this wrapped the
     shift past the word size and produced garbage instead of failing *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"));
  (* a varint that overflows the 62 value bits *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\xff\xff\xff\xff\xff\xff\xff\xff\x7f"));
  (* non-canonical: zero-padded continuation *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\x80\x00"))

let hostile_sizes () =
  (* a tiny file claiming 2^40 nodes must fail fast, before Array.make *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\x80\x80\x80\x80\x80\x80\x80\x80\x01"));
  (* document name longer than the remaining bytes *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\x01\x00\x61\x01\x7f\x6e"));
  (* truncated file *)
  corrupt (fun () -> Serialize.read_string (magic ^ "\x02\x00\x61"));
  (* bad magic *)
  corrupt (fun () -> Serialize.read_string "NOTSLP!\x00");
  corrupt (fun () -> Serialize.read_string "")

let duplicate_names () =
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "a" "xyxy");
  let image = Serialize.write_string db in
  (* duplicate the document table entry: bump ndocs from 1 to 2 and
     repeat the 3-byte (len, name, root) entry; the table is the last
     4 bytes of this small image (ndocs=1, len=1, 'a', root) *)
  let nodes_part = String.sub image 0 (String.length image - 4) in
  let doctable = String.sub image (String.length image - 3) 3 in
  let forged = nodes_part ^ "\x02" ^ doctable ^ doctable in
  corrupt (fun () -> Serialize.read_string forged);
  (* sanity: the unforged image still round-trips *)
  let db' = Serialize.read_string image in
  check Alcotest.(list string) "names" [ "a" ] (Doc_db.names db')

let prop_mutated_image_never_crashes =
  QCheck2.Test.make ~name:"truncate/bit-flip a valid SLPDB image: typed error or success"
    ~count:500
    QCheck2.Gen.(
      int_range 0 1_000_000 >>= fun seed ->
      int_range 1 8 >>= fun nmut -> return (seed, nmut))
    ~print:(fun (seed, nmut) -> Printf.sprintf "seed %d, %d mutations" seed nmut)
    (fun (seed, nmut) ->
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "d1" "abracadabra");
      ignore (Doc_db.add_string db "d2" "abcabcabc");
      let image = ref (Serialize.write_string db) in
      let rng = X.create seed in
      for _ = 1 to nmut do
        let s = !image in
        let n = String.length s in
        if n > 0 then
          image :=
            (match X.int rng 3 with
            | 0 ->
                let b = Bytes.of_string s in
                Bytes.set b (X.int rng n) (Char.chr (X.int rng 256));
                Bytes.to_string b
            | 1 -> String.sub s 0 (X.int rng n)
            | _ ->
                let i = X.int rng (n + 1) in
                String.sub s 0 i ^ String.make 1 (Char.chr (X.int rng 256)) ^ String.sub s i (n - i))
      done;
      match Serialize.read_string !image with
      | _ -> true
      | exception Limits.Spanner_error (Limits.Corrupt_input _) -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Parser repetition attacks *)

let repetition_attacks () =
  (* nested bounded repetition multiplies: must be rejected, not expanded *)
  parse_fails (fun () -> Regex_formula.parse "a{9}{9}{9}{9}{9}{9}{9}{9}");
  parse_fails (fun () -> Regex_formula.parse "a{5000}");
  parse_fails (fun () -> Regex_formula.parse "a{99999999999999999999}");
  parse_fails (fun () -> Spanner_fa.Regex.parse "a{9}{9}{9}{9}{9}{9}{9}{9}");
  parse_fails (fun () -> Spanner_fa.Regex.parse "a{99999999999999999999}");
  parse_fails (fun () -> Spanner_refl.Refl_regex.parse "a{9}{9}{9}{9}{9}{9}{9}{9}");
  parse_fails (fun () -> Spanner_refl.Refl_regex.parse "a{99999999999999999999}");
  (* modest bounded repetitions still work *)
  let f = Regex_formula.parse "!x{a{2,4}}" in
  let r = Compiled.eval (Compiled.of_formula f) "aaa" in
  check Alcotest.int "a{2,4} on aaa" 1 (Span_relation.cardinal r)

let datalog_typed_parse_errors () =
  let typed s =
    match Spanner_datalog.Datalog.parse s with
    | exception Limits.Spanner_error (Limits.Parse { what = "datalog"; _ }) -> true
    | _ -> false
  in
  check Alcotest.bool "missing dot" true (typed "p(x) :- q(x)");
  check Alcotest.bool "bad formula" true (typed "p(x) :- <!x{>(x).");
  check Alcotest.bool "unterminated" true (typed "p(x) :- <!x{a}(x).")

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "robust"
    [
      ( "limits",
        [
          tc "gauge basics" `Quick limits_basics;
          tc "error rendering and exit codes" `Quick error_rendering;
        ] );
      ( "budgets",
        [
          tc "state cap" `Quick state_cap_trips;
          tc "fuel on a long document" `Quick fuel_trips_on_long_document;
          tc "tuple cap" `Quick tuple_cap_trips;
          tc "datalog fixpoint fuel" `Quick datalog_fuel_trips;
          tc "incremental evaluation fuel" `Quick incr_fuel_trips;
        ]
        @ to_alcotest [ prop_generous_budget_invisible ] );
      ("pool", [ tc "mapi_result partial failure" `Quick pool_mapi_result ]);
      ( "batch",
        [
          tc "compiled batch partial failure" `Quick batch_partial_failure;
          tc "doc_db batch partial failure" `Quick doc_db_partial_failure;
          tc "incr batch partial failure" `Quick incr_partial_failure;
        ] );
      ( "serialize",
        [
          tc "varint shift regression" `Quick varint_regression;
          tc "hostile size fields" `Quick hostile_sizes;
          tc "duplicate document names" `Quick duplicate_names;
        ]
        @ to_alcotest [ prop_mutated_image_never_crashes ] );
      ( "parsers",
        [
          tc "repetition attacks rejected" `Quick repetition_attacks;
          tc "datalog typed parse errors" `Quick datalog_typed_parse_errors;
        ] );
    ]
