(* Chaos suite for the serve stack: deterministic fault injection
   (Spanner_util.Fault), worker supervision, slowloris/idle reaping,
   stalled-consumer write deadlines, and bounded graceful drain.

   The liveness contract under test: with faults armed, every client
   call returns (a response or a typed failure, never a hang), no
   partial frame is ever reported as success, and STATS stays
   consistent — restarts counted, the worker pool back at full
   strength, timeouts attributed to the right class. *)

open Spanner_serve
module Fault = Spanner_util.Fault

let check = Alcotest.check
let tc = Alcotest.test_case

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_substring sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* [stat_field line key] digs "key=value" out of a STATS line. *)
let stat_field line key =
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         match String.index_opt tok '=' with
         | Some i when String.sub tok 0 i = key ->
             int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
         | _ -> None)

let stats_line frames prefix =
  match frames with
  | [ payload ] -> List.find_opt (starts_with prefix) (String.split_on_char '\n' payload)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The fault subsystem itself *)

let fault_parse () =
  (match Fault.parse_spec "42:serve.read=eintr@0.25,scheduler.worker=exn" with
  | Ok (42, [ r1; r2 ]) ->
      check Alcotest.string "site 1" "serve.read" r1.Fault.site;
      check (Alcotest.float 1e-9) "prob 1" 0.25 r1.Fault.prob;
      check Alcotest.bool "behavior 1" true (r1.Fault.behavior = Fault.Eintr);
      check Alcotest.string "site 2" "scheduler.worker" r2.Fault.site;
      check (Alcotest.float 1e-9) "default prob" 1.0 r2.Fault.prob;
      check Alcotest.bool "behavior 2" true (r2.Fault.behavior = Fault.Exn)
  | _ -> Alcotest.fail "expected two rules");
  (match Fault.parse_spec "7:x=delay250@0.5" with
  | Ok (7, [ r ]) -> check Alcotest.bool "delay" true (r.Fault.behavior = Fault.Delay 250)
  | _ -> Alcotest.fail "delay rule");
  let rejected s = match Fault.parse_spec s with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "no seed" true (rejected "serve.read=eintr");
  check Alcotest.bool "bad seed" true (rejected "x:serve.read=eintr");
  check Alcotest.bool "no behavior" true (rejected "1:x");
  check Alcotest.bool "unknown behavior" true (rejected "1:x=wat");
  check Alcotest.bool "probability over 1" true (rejected "1:x=eintr@1.5");
  check Alcotest.bool "probability zero" true (rejected "1:x=eintr@0");
  check Alcotest.bool "negative delay" true (rejected "1:x=delay-5")

let fault_determinism () =
  let site = Fault.site "chaos.det" in
  let sample seed =
    Fault.configure ~seed [ { Fault.site = "chaos.det"; prob = 0.5; behavior = Fault.Short } ];
    List.init 200 (fun _ -> match Fault.io site with Fault.Full -> 'F' | Fault.Partial -> 'P')
  in
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let a = sample 4242 in
  let fired = Fault.injected site in
  let b = sample 4242 in
  check Alcotest.(list char) "same seed, same schedule" a b;
  check Alcotest.bool "some fire" true (List.mem 'P' a);
  check Alcotest.bool "some pass" true (List.mem 'F' a);
  check Alcotest.int "injection counter matches the schedule" fired
    (List.length (List.filter (fun c -> c = 'P') a));
  check Alcotest.int "re-configure zeroes the counter, same count again" fired
    (Fault.injected site);
  let c = sample 9999 in
  check Alcotest.bool "different seed, different schedule" true (a <> c)

let fault_disabled_noop () =
  Fault.disable ();
  let s = Fault.site "chaos.noop" in
  check Alcotest.bool "not armed" false (Fault.armed ());
  for _ = 1 to 1000 do
    match Fault.io s with Fault.Full -> () | Fault.Partial -> Alcotest.fail "fired while disarmed"
  done;
  Fault.point s;
  check Alcotest.int "never fired" 0 (Fault.injected s)

(* ------------------------------------------------------------------ *)
(* Worker supervision *)

let scheduler_supervision () =
  Fault.configure ~seed:9
    [ { Fault.site = "scheduler.worker"; prob = 1.0; behavior = Fault.Exn } ];
  Fun.protect ~finally:Fault.disable @@ fun () ->
  let s = Scheduler.create ~workers:2 ~capacity:8 () in
  (* every job kills its worker right after the ticket is signalled:
     results must all arrive anyway, and the pool must self-heal *)
  List.init 6 (fun i -> Scheduler.run s (fun () -> i))
  |> List.iteri (fun i r ->
         match r with
         | Some (Ok v) -> check Alcotest.int "job result survives the crash" i v
         | _ -> Alcotest.fail "job lost to a worker crash");
  let st = Scheduler.stats s in
  check Alcotest.bool "restarts counted" true (st.Scheduler.restarts > 0);
  check Alcotest.int "pool at full strength" 2 st.Scheduler.workers;
  Fault.disable ();
  (match Scheduler.run s (fun () -> 41) with
  | Some (Ok 41) -> ()
  | _ -> Alcotest.fail "scheduler dead after the storm");
  (* shutdown joins the replacements AND the crashed domains *)
  Scheduler.shutdown s

(* ------------------------------------------------------------------ *)
(* Live server helpers *)

let fresh_path () =
  Printf.sprintf "/tmp/spanner-chaos-%d-%d.sock" (Unix.getpid ()) (Random.int 1_000_000)

let with_server ?(io_timeout_ms = 0) ?(idle_timeout_ms = 0) ?(drain_ms = 1000) f =
  let path = fresh_path () in
  let config =
    {
      (Server.default_config (Server.Unix_socket path)) with
      Server.workers = Some 2;
      queue = 8;
      io_timeout_ms;
      idle_timeout_ms;
      drain_ms;
    }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server)
    (fun () -> f path (Server.Unix_socket path))

let raw_connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  fd

let read_until_eof fd =
  let chunk = Bytes.create 4096 in
  let b = Buffer.create 256 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let terminal frames = List.nth frames (List.length frames - 1)

(* ------------------------------------------------------------------ *)
(* Liveness under injected faults, one run per seed *)

let chaos_liveness seed () =
  Fault.configure ~seed
    [
      { Fault.site = "serve.read"; prob = 0.3; behavior = Fault.Eintr };
      { Fault.site = "serve.write"; prob = 0.3; behavior = Fault.Short };
      { Fault.site = "session.request"; prob = 0.15; behavior = Fault.Exn };
      { Fault.site = "scheduler.worker"; prob = 0.3; behavior = Fault.Exn };
    ];
  Fun.protect ~finally:Fault.disable @@ fun () ->
  with_server (fun _path addr ->
      let c = Client.connect ~timeout_ms:5000 addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let req p = Client.request ~attempts:8 ~backoff_ms:2 c p in
      (* setup verbs are not auto-retried (not idempotent on the
         wire), but replaying these exact ones is safe *)
      let rec ensure p n =
        if n = 0 then Alcotest.fail ("setup never succeeded: " ^ p)
        else
          match req p with
          | [ one ] when starts_with "OK" one -> ()
          | _ -> ensure p (n - 1)
          | exception _ -> ensure p (n - 1)
      in
      ensure "DEFINE q\n[ab]*!x{ab}[ab]*" 50;
      ensure "LOAD s DOC d\nabab" 50;
      let ok = ref 0 and err = ref 0 in
      for _ = 1 to 30 do
        (* every call must RETURN — the 5 s client timeout turns a
           hang into a failure — and every success must be exact *)
        match req "QUERY q s d format=count" with
        | frames -> (
            match Client.err_code (terminal frames) with
            | Some _ -> incr err
            | None ->
                check Alcotest.(list string) "no partial frame reported as success"
                  [ "OK count 2" ] frames;
                incr ok)
      done;
      check Alcotest.bool "some queries succeeded under faults" true (!ok > 0);
      check Alcotest.int "every call returned" 30 (!ok + !err);
      (* STATS itself can draw an injected ERR; ask until it answers *)
      let rec stats_frames n =
        if n = 0 then Alcotest.fail "STATS never succeeded"
        else
          match req "STATS" with
          | [ payload ] when starts_with "OK stats" payload -> [ payload ]
          | _ -> stats_frames (n - 1)
          | exception _ -> stats_frames (n - 1)
      in
      (match stats_frames 50 with
      | frames -> (
          (match stats_line frames "scheduler:" with
          | Some line ->
              check Alcotest.bool "workers crashed and were restarted" true
                (match stat_field line "restarts" with Some n -> n > 0 | None -> false);
              check Alcotest.(option int) "pool back at full strength" (Some 2)
                (stat_field line "workers")
          | None -> Alcotest.fail "STATS lost its scheduler line");
          match stats_line frames "faults:" with
          | Some line ->
              check Alcotest.bool "injections surfaced in STATS" true
                (match stat_field line "injected" with Some n -> n > 0 | None -> false)
          | None -> Alcotest.fail "no faults line while armed"));
      Fault.disable ();
      match req "QUERY q s d format=count" with
      | frames -> check Alcotest.(list string) "exact answer after the storm" [ "OK count 2" ] frames)

(* ------------------------------------------------------------------ *)
(* Deadlines: slowloris, parked connections, stalled consumers *)

let slowloris_reaped () =
  with_server ~io_timeout_ms:150 (fun path addr ->
      let fd = raw_connect path in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
      (* a complete length line, 2 of 5 payload bytes, then silence *)
      ignore (Unix.write_substring fd "5\nab" 0 4);
      Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
      let t0 = Unix.gettimeofday () in
      let data = read_until_eof fd in
      let dt = Unix.gettimeofday () -. t0 in
      check Alcotest.bool "reaped within the deadline (not our 5 s failsafe)" true (dt < 3.0);
      check Alcotest.bool "told why before the cut" true (has_substring "ERR 3" data);
      check Alcotest.bool "classified as a mid-frame stall" true
        (has_substring "stalled mid-read" data);
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match stats_line (Client.request c "STATS") "timeouts:" with
      | Some line ->
          check Alcotest.(option int) "counted as io" (Some 1) (stat_field line "io");
          check Alcotest.(option int) "not as idle" (Some 0) (stat_field line "idle")
      | None -> Alcotest.fail "no timeouts line in STATS")

let idle_session_reaped () =
  with_server ~idle_timeout_ms:150 (fun path addr ->
      let fd = raw_connect path in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
      (* connect and say nothing at all *)
      Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
      let t0 = Unix.gettimeofday () in
      let data = read_until_eof fd in
      let dt = Unix.gettimeofday () -. t0 in
      check Alcotest.bool "reaped within the deadline" true (dt < 3.0);
      check Alcotest.bool "classified as idle" true (has_substring "idle timeout" data);
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match stats_line (Client.request c "STATS") "timeouts:" with
      | Some line ->
          check Alcotest.(option int) "counted as idle" (Some 1) (stat_field line "idle");
          check Alcotest.(option int) "not as io" (Some 0) (stat_field line "io")
      | None -> Alcotest.fail "no timeouts line in STATS")

let stalled_consumer_reaped () =
  with_server ~io_timeout_ms:150 (fun path addr ->
      (let c = Client.connect addr in
       ignore (Client.request c "DEFINE big\na*!x{a*}a*");
       ignore (Client.request c ("LOAD s DOC d\n" ^ String.make 400 'a'));
       Client.close c);
      (* ~80k tuples stream back; we read nothing, so the server's
         sends eventually block and the write deadline must cut us *)
      let fd = raw_connect path in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
      let msg = "13\nQUERY big s d" in
      ignore (Unix.write_substring fd msg 0 (String.length msg));
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec poll () =
        match stats_line (Client.request c "STATS") "timeouts:" with
        | Some line when stat_field line "io" = Some 1 -> ()
        | _ ->
            if Unix.gettimeofday () >= deadline then
              Alcotest.fail "stalled consumer never reaped"
            else begin
              Thread.delay 0.01;
              poll ()
            end
      in
      poll ())

(* ------------------------------------------------------------------ *)
(* Graceful drain *)

let graceful_drain () =
  let path = fresh_path () in
  let config =
    {
      (Server.default_config (Server.Unix_socket path)) with
      Server.workers = Some 2;
      drain_ms = 5000;
    }
  in
  let server = Server.start config in
  let addr = Server.Unix_socket path in
  (let c = Client.connect addr in
   ignore (Client.request c "DEFINE big\na*!x{a*}a*");
   ignore (Client.request c ("LOAD s DOC d\n" ^ String.make 400 'a'));
   Client.close c);
  (* start a query that takes real worker time, then SHUTDOWN while
     it is in flight: drain must let it finish, not cut it *)
  let result = ref [] in
  let th =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        (result := try Client.request c "QUERY big s d format=count" with e -> [ Printexc.to_string e ]);
        Client.close c)
      ()
  in
  Thread.delay 0.05;
  (let c = Client.connect addr in
   (match Client.request c "SHUTDOWN" with
   | [ "OK shutting down" ] -> ()
   | fs -> Alcotest.fail ("unexpected SHUTDOWN reply: " ^ String.concat "|" fs));
   Client.close c);
  let t0 = Unix.gettimeofday () in
  Server.wait server;
  let dt = Unix.gettimeofday () -. t0 in
  Thread.join th;
  check Alcotest.bool "wait bounded by the drain budget" true (dt < 6.0);
  (match !result with
  | [ one ] when starts_with "OK count" one -> ()
  | fs -> Alcotest.fail ("in-flight query was cut: " ^ String.concat "|" fs));
  check Alcotest.bool "socket removed" false (Sys.file_exists path)

let () =
  Alcotest.run "chaos"
    [
      ( "fault",
        [
          tc "spec parsing" `Quick fault_parse;
          tc "seeded determinism" `Quick fault_determinism;
          tc "disarmed is a no-op" `Quick fault_disabled_noop;
        ] );
      ("supervision", [ tc "workers respawn" `Quick scheduler_supervision ]);
      ( "liveness",
        [
          tc "seed 11" `Quick (chaos_liveness 11);
          tc "seed 22" `Quick (chaos_liveness 22);
          tc "seed 33" `Quick (chaos_liveness 33);
        ] );
      ( "deadlines",
        [
          tc "slowloris reaped" `Quick slowloris_reaped;
          tc "idle session reaped" `Quick idle_session_reaped;
          tc "stalled consumer reaped" `Quick stalled_consumer_reaped;
        ] );
      ("drain", [ tc "graceful drain" `Quick graceful_drain ]);
    ]
