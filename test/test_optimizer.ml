(* Tests for the cost-based algebraic optimizer (lib/engine/optimizer)
   and the algebra concrete syntax (Algebra.parse / Algebra.pp):

   - QCheck differential suite: draining the optimized plan's cursor
     equals the operator-at-a-time Algebra.eval oracle on random
     expressions × random documents, with and without a sample
     document, and with a starved fuse budget that forces the
     materialise fallback at every operator.
   - parser∘pp round-trip as a QCheck fixpoint property.
   - cost-guard units: a starved budget must not fuse, a Select-free
     expression under the default budget must fuse to one automaton,
     and both must still agree with the oracle.
   - hostile inputs: every malformed expression raises the typed
     Parse error, including the depth cap and the disabled file: leaf. *)

open Spanner_core
module Limits = Spanner_util.Limits
module Optimizer = Spanner_engine.Optimizer
module Cursor = Spanner_engine.Cursor
module Sample = Spanner_engine.Sample

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list

(* ------------------------------------------------------------------ *)
(* Generators *)

let leaf_pool =
  List.map Algebra.formula
    [
      "!x{a+}b";
      "a!x{b+}";
      "!x{ab}[ab]*";
      "[ab]*!x{a[ab]}";
      "!y{b+}";
      "!x{a*}!y{b*}";
      "!y{ab?}a*";
      "!z{a}[ab]*";
      "(!x{a+}|!y{b+})[ab]*";
      "!x{[ab]}!z{[ab]*}";
    ]

let gen_vars =
  QCheck2.Gen.(
    list_size (0 -- 3) (oneofl [ v "x"; v "y"; v "z" ]) >>= fun xs ->
    return (Variable.set_of_list xs))

let gen_expr =
  let open QCheck2.Gen in
  let leaf = oneofl leaf_pool in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (fun a b -> Algebra.Union (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> Algebra.Join (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun vars e -> Algebra.Project (vars, e)) gen_vars (go (depth - 1)));
          (2, map2 (fun vars e -> Algebra.Select (vars, e)) gen_vars (go (depth - 1)));
        ]
  in
  go 3

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b' ]) (0 -- 8))
let gen_pair = QCheck2.Gen.pair gen_expr gen_doc
let print_pair (e, doc) = Printf.sprintf "%s on %S" (Algebra.to_string e) doc

(* ------------------------------------------------------------------ *)
(* Differential: optimized cursor drain = Algebra.eval oracle *)

let agree ?fuse_states ?sample e doc =
  let plan = Optimizer.optimize ?fuse_states ?sample e in
  Span_relation.equal (Cursor.to_relation (Optimizer.cursor plan doc)) (Algebra.eval e doc)

let prop_optimized_eq_oracle =
  QCheck2.Test.make ~name:"optimized plan drain = Algebra.eval (no sample)" ~count:250
    gen_pair ~print:print_pair (fun (e, doc) -> agree e doc)

let prop_optimized_eq_oracle_sampled =
  QCheck2.Test.make ~name:"optimized plan drain = Algebra.eval (sampled, joins reordered)"
    ~count:250 gen_pair ~print:print_pair (fun (e, doc) -> agree ~sample:doc e doc)

let prop_starved_guard_eq_oracle =
  QCheck2.Test.make ~name:"materialise fallback (fuse budget 1) = Algebra.eval" ~count:150
    gen_pair ~print:print_pair (fun (e, doc) -> agree ~fuse_states:1 ~sample:doc e doc)

(* ------------------------------------------------------------------ *)
(* parser ∘ pp round-trip *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (pp e) prints back to pp e" ~count:300 gen_expr
    ~print:Algebra.to_string (fun e ->
      let printed = Algebra.to_string e in
      Algebra.to_string (Algebra.parse printed) = printed)

let prop_roundtrip_semantics =
  QCheck2.Test.make ~name:"parse (pp e) evaluates like e" ~count:100
    QCheck2.Gen.(pair gen_expr gen_doc)
    ~print:print_pair
    (fun (e, doc) ->
      Span_relation.equal (Algebra.eval (Algebra.parse (Algebra.to_string e)) doc)
        (Algebra.eval e doc))

(* ------------------------------------------------------------------ *)
(* Cost guard and fusion units *)

let three_op_expr =
  (* ≥ 3 operators, Select-free: fuses to one automaton by default *)
  Algebra.parse
    "pi[x]((rgx:\"[ab]*!x{aba}[ab]*\" | rgx:\"[ab]*!x{bab}[ab]*\") & \
     rgx:\"[ab]*!x{[ab][ab][ab]}[ab]*\")"

let fuses_by_default () =
  let plan = Optimizer.optimize ~sample:"abababab" three_op_expr in
  check Alcotest.bool "fully fused" true (Optimizer.fully_fused plan);
  check Alcotest.int "one automaton" 1 (Optimizer.fused_count plan);
  (match Optimizer.compiled plan with
  | Some ct -> check Alcotest.bool "states under budget" true
      (Compiled.states ct <= Optimizer.threshold plan)
  | None -> Alcotest.fail "fully fused plan must expose its automaton");
  List.iter
    (fun doc ->
      if not (Span_relation.equal (Optimizer.eval plan doc) (Algebra.eval three_op_expr doc))
      then Alcotest.failf "fused differs from oracle on %S" doc)
    [ ""; "aba"; "bab"; "ababab"; "bbaabbab" ]

let starved_guard_materialises () =
  let plan = Optimizer.optimize ~fuse_states:1 three_op_expr in
  check Alcotest.bool "not fully fused" false (Optimizer.fully_fused plan);
  check Alcotest.bool "split into several automata" true (Optimizer.fused_count plan > 1);
  check Alcotest.bool "no single compiled automaton" true (Optimizer.compiled plan = None);
  List.iter
    (fun doc ->
      if not (Span_relation.equal (Optimizer.eval plan doc) (Algebra.eval three_op_expr doc))
      then Alcotest.failf "fallback differs from oracle on %S" doc)
    [ ""; "aba"; "ababab" ]

let select_streams () =
  (* a Select above a fused subtree: the Strhash stream filter *)
  let e =
    Algebra.Select
      (vs [ v "x"; v "y" ], Algebra.formula "[ab]*!x{a[ab]}[ab]*!y{a[ab]}[ab]*")
  in
  let plan = Optimizer.optimize ~sample:"abab" e in
  check Alcotest.bool "selection cannot fuse" false (Optimizer.fully_fused plan);
  List.iter
    (fun doc ->
      if not (Span_relation.equal (Optimizer.eval plan doc) (Algebra.eval e doc)) then
        Alcotest.failf "selection filter differs from oracle on %S" doc)
    [ "abab"; "aaaa"; "ababab"; "ba" ]

let limits_flow_through () =
  (* the cursor's gauge meters the fused document pass: a starved fuel
     budget trips as Limit_exceeded, the taxonomy the CLI maps to 3 *)
  let plan = Optimizer.optimize three_op_expr in
  let limits = Limits.make ~fuel:3 () in
  match Cursor.to_relation (Optimizer.cursor ~limits plan "abababababab") with
  | _ -> Alcotest.fail "expected Limit_exceeded"
  | exception Limits.Spanner_error (Limits.Limit_exceeded _) -> ()

(* ------------------------------------------------------------------ *)
(* Rewrites preserve schema *)

let prop_rewrite_schema =
  QCheck2.Test.make ~name:"rewritten plan keeps the schema" ~count:200 gen_expr
    ~print:Algebra.to_string (fun e ->
      let plan = Optimizer.optimize e in
      Variable.Set.equal (Optimizer.schema plan) (Algebra.schema e)
      && Variable.Set.equal (Algebra.schema (Optimizer.rewritten plan)) (Algebra.schema e))

(* ------------------------------------------------------------------ *)
(* Hostile inputs: the parser's typed error contract *)

let parse_rejects () =
  let rejects s =
    match Algebra.parse s with
    | _ -> Alcotest.failf "parse %S should fail" s
    | exception Limits.Spanner_error (Limits.Parse _) -> ()
  in
  List.iter rejects
    [
      "";
      "pi[";
      "pi[x](";
      "rgx:\"";
      "rgx:\"a";
      "rgx:\"a\\q\"";
      "rgx:\"a\" extra";
      "rgx:\"a\" & ";
      "sel[x,](rgx:\"a\")";
      "sel{x}(rgx:\"a\")";
      "rgx:\"!x{\"";
      "file:\"/etc/hostname\"";
      String.concat "" (List.init 5_000 (fun _ -> "(")) ^ "rgx:\"a\"";
    ]

let parse_accepts () =
  let e = Algebra.parse "  pi [ x , y ] ( rgx:\"!x{a+}\" & ( rgx:\"!y{b}\" | rgx:\"a\" ) ) " in
  check Alcotest.int "whitespace-tolerant parse" 6 (Algebra.size e);
  (* precedence: & binds tighter than | *)
  match Algebra.parse "rgx:\"a\" | rgx:\"b\" & rgx:\"c\"" with
  | Algebra.Union (_, Algebra.Join _) -> ()
  | e -> Alcotest.failf "precedence parse got %s" (Algebra.to_string e)

let file_load_callback () =
  let e = Algebra.parse ~load:(fun path -> "!x{" ^ path ^ "}") "file:\"ab\"" in
  check Alcotest.bool "file leaf resolves through load" true
    (Span_relation.equal (Algebra.eval e "ab") (Algebra.eval (Algebra.formula "!x{ab}") "ab"))

(* ------------------------------------------------------------------ *)
(* Sample helper *)

let sample_prefix_bounds () =
  let doc = String.concat "" (List.init 1000 (fun _ -> "ab")) in
  check Alcotest.int "prefix bounded" 64 (String.length (Sample.prefix ~bytes:64 doc));
  check Alcotest.int "short doc untouched" 4 (String.length (Sample.prefix ~bytes:64 "abab"));
  let ct = Compiled.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let e = Sample.estimate ~bytes:64 ct doc in
  check Alcotest.int "sampled bytes" 64 e.Sample.sample_bytes;
  check Alcotest.int "full length recorded" 2000 e.Sample.doc_bytes;
  check Alcotest.int "tuples on the prefix" 32 e.Sample.tuples;
  check Alcotest.bool "projected scales up" true (Sample.projected e > 900.0)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "optimizer"
    [
      ( "differential",
        to_alcotest
          [
            prop_optimized_eq_oracle;
            prop_optimized_eq_oracle_sampled;
            prop_starved_guard_eq_oracle;
            prop_rewrite_schema;
          ] );
      ("roundtrip", to_alcotest [ prop_roundtrip; prop_roundtrip_semantics ]);
      ( "units",
        [
          tc "select-free fuses to one automaton" `Quick fuses_by_default;
          tc "starved guard materialises, stays correct" `Quick starved_guard_materialises;
          tc "selection streams through Strhash" `Quick select_streams;
          tc "budget trips through the cursor" `Quick limits_flow_through;
          tc "parser rejects hostile inputs" `Quick parse_rejects;
          tc "parser accepts whitespace and precedence" `Quick parse_accepts;
          tc "file leaf needs an explicit loader" `Quick file_load_callback;
          tc "bounded-prefix sampling" `Quick sample_prefix_bounds;
        ] );
    ]
