Packed arena corpora end to end: pack documents into frozen arena
files, batch-evaluate over the mapping, and serve them.

  $ printf 'abcabcabcabc' > a.txt
  $ printf 'aabbaabbaabb' > b.txt
  $ printf 'cccabc' > c.txt

A single-shard pack writes one arena; --shards splits the corpus
round-robin behind a manifest:

  $ spanner_cli pack a.txt b.txt c.txt -o one.slpar | head -1
  packed 3 document(s), 30 bytes into 1 shard(s)
  $ spanner_cli pack a.txt b.txt c.txt --shards 2 -o corpus
  packed 3 document(s), 30 bytes into 2 shard(s)
  wrote corpus.0.slpar: 2512 bytes
  wrote corpus.1.slpar: 2312 bytes
  wrote corpus: 49 bytes

batch --store maps the corpus zero-copy and evaluates shard-parallel;
the counts match the plain per-file path exactly (documents come back
in shard order):

  $ spanner_cli batch '.*!x{ab}.*' --store corpus
  compiled: 20 states, 3 byte classes, 2 marker-set labels
  store: 2 shard(s), 3 document(s), 4824 bytes mapped
  a.txt: 4 tuple(s)
  c.txt: 1 tuple(s)
  b.txt: 3 tuple(s)
  3 document(s), 8 tuple(s) total
  $ spanner_cli batch '.*!x{ab}.*' a.txt b.txt c.txt
  compiled: 20 states, 3 byte classes, 2 marker-set labels
  a.txt: 4 tuple(s)
  b.txt: 3 tuple(s)
  c.txt: 1 tuple(s)
  3 document(s), 8 tuple(s) total

The planner sees the packed shape and its shard layout:

  $ spanner_cli explain '.*!x{ab}.*' --store corpus
  plan: decompress
    spanner: 20 states, 3 byte classes, 2 marker-set labels
    input: packed corpus
    shards: 2
    documents: 3
    bytes: 30
    nodes: 21
    ratio: 1.4x
    mapped: 4824 bytes
    why: barely compressible: decompress-then-scan beats the matrix products

Mixing --store with FILEs, or forcing the per-file engine, is a usage
error; a truncated arena is a corrupt input (exit 2):

  $ spanner_cli batch '.*!x{ab}.*' --store corpus a.txt
  usage error: give FILEs or --store, not both
  [2]
  $ spanner_cli batch '.*!x{ab}.*' --store corpus --engine compiled
  usage error: --store is packed: use --engine compressed or decompress
  [2]
  $ head -c 40 one.slpar > cut.slpar
  $ spanner_cli batch '.*!x{ab}.*' --store cut.slpar
  compiled: 20 states, 3 byte classes, 2 marker-set labels
  error: corrupt SLPAR1 input: truncated header
  [2]

Packing an existing SLPDB database works too — the arena holds the
same documents:

  $ spanner_cli compress --file a.txt -o db.slpdb | grep wrote
  wrote db.slpdb
  $ spanner_cli pack --db db.slpdb -o fromdb.slpar | head -1
  packed 1 document(s), 12 bytes into 1 shard(s)
  $ spanner_cli batch '.*!x{ab}.*' --store fromdb.slpar | tail -2
  doc: 4 tuple(s)
  1 document(s), 4 tuple(s) total

serve LOADs the manifest by magic — the corpus maps in place
(kind=arena in STATS, with mapped/resident bytes) and is read-only:

  $ SOCK="$PWD/serve.sock"
  $ spanner_cli serve "$SOCK" --jobs 2 --queue 8 2>server.log &
  $ SRV=$!
  $ spanner_cli client "$SOCK" --retry-ms 10000 LOAD packed PATH "$PWD/corpus"
  OK loaded packed docs=3
  $ spanner_cli client "$SOCK" QUERY - packed a.txt format=count --body '.*!x{ab}.*'
  OK count 4
  $ spanner_cli client "$SOCK" QUERY - packed b.txt --body '.*!x{ab}.*'
  OK stream {x}
  R (x ↦ [2,4⟩)
  R (x ↦ [6,8⟩)
  R (x ↦ [10,12⟩)
  END 3
  $ spanner_cli client "$SOCK" LOAD packed DOC extra --body 'abab'
  ERR 1 load evaluation failure: store "packed" is a mapped arena (read-only); LOAD PATH a new one
  [1]
  $ spanner_cli client "$SOCK" STATS | grep 'store packed' | sed 's/resident=[0-9]*/resident=N/'
  store packed: kind=arena docs=3 shards=2 mapped=4824 resident=N
  $ spanner_cli client "$SOCK" SHUTDOWN
  OK shutting down
  $ wait $SRV
