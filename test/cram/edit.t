Incremental evaluation: a document is loaded once, then CDE edits are
applied one after another, re-evaluating the spanner from cached
per-node summaries after each:

  $ spanner_cli edit '!x{[ab]*}!y{b}!z{[ab]*}' ababbab \
  >   'insert(doc, extract(doc, 1, 2), 4)' 'delete(doc, 1, 2)'
  doc: |D| = 7, 4 tuple(s)
  edit 1: insert(doc, extract(doc, 1, 2), 4) -> |D| = 9, 5 tuple(s)
  edit 2: delete(doc, 1, 2) -> |D| = 7, 4 tuple(s)
  cache: 443 hits, 14 misses, 0 evictions, 14 entries (capacity 65536), 9 nodes created

--show prints the final relation, and --capacity bounds the summary
cache:

  $ spanner_cli edit '!x{[ab]*}!y{b}!z{[ab]*}' ababbab 'delete(doc, 3, 4)' \
  >   --show --capacity 8
  doc: |D| = 7, 4 tuple(s)
  edit 1: delete(doc, 3, 4) -> |D| = 5, 3 tuple(s)
  | x       | y       | z       |
  |---------+---------+---------|
  | [1,2⟩ | [2,3⟩ | [3,6⟩ |
  | [1,3⟩ | [3,4⟩ | [4,6⟩ |
  | [1,5⟩ | [5,6⟩ | [6,6⟩ |
  cache: 224 hits, 8 misses, 0 evictions, 8 entries (capacity 8), 1 nodes created

Out-of-range edits report the offending positions and exit with
code 2:

  $ spanner_cli edit '!x{b}' ab 'delete(doc, 5, 9)'
  doc: |D| = 2, 0 tuple(s)
  error: Cde.eval: delete range [5..9] out of bounds (length 2)
  [2]
