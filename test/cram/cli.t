Example 1.1 of the paper through the CLI:

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab
  | x       | y       | z       |
  |---------+---------+---------|
  | [1,2⟩ | [2,3⟩ | [3,8⟩ |
  | [1,4⟩ | [4,5⟩ | [5,8⟩ |
  | [1,5⟩ | [5,6⟩ | [6,8⟩ |
  | [1,7⟩ | [7,8⟩ | [8,8⟩ |
  4 tuple(s)

The compiled engine produces the same table:

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --compiled
  | x       | y       | z       |
  |---------+---------+---------|
  | [1,2⟩ | [2,3⟩ | [3,8⟩ |
  | [1,4⟩ | [4,5⟩ | [5,8⟩ |
  | [1,5⟩ | [5,6⟩ | [6,8⟩ |
  | [1,7⟩ | [7,8⟩ | [8,8⟩ |
  4 tuple(s)

Batch evaluation compiles once and evaluates many documents:

  $ printf ababbab > d1.txt && printf abab > d2.txt && printf bbbb > d3.txt
  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt --jobs 2
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  d1.txt: 4 tuple(s)
  d2.txt: 2 tuple(s)
  d3.txt: 4 tuple(s)
  3 document(s), 10 tuple(s) total

Enumeration with a limit:

  $ spanner_cli enum '.*!x{..}.*' abcd -n 2
  3 result(s); preprocessing: 11 nodes, 13 edges
  (x ↦ [1,3⟩)
  (x ↦ [2,4⟩)

Static analysis:

  $ spanner_cli analyze '!x{a+}(!y{b})?'
  formula: !x{a+}!y{b}?
  variables: {x, y}
  functionality: schemaless (some variable optional)
  automaton states (extended form): 14
  satisfiable: true
  hierarchical: true
  witness: "a" with (x ↦ [1,2⟩)

Ill-formed formulas are reported:

  $ spanner_cli analyze '(!x{a})*'
  formula: !x{a}*
  variables: {x}
  ill-formed: variable x bound under an iteration
  [1]

Refl-spanners with references:

  $ spanner_cli refl '!x{[a-z]+};&x' 'abc;abc' -c
  | x             |
  |---------------|
  | [1,4⟩ "abc" |
  1 tuple(s)

Evaluation over the compressed document:

  $ spanner_cli slpeval '[ab]*!x{ab}[ab]*' abababab -n 2
  |D| = 8, SLP nodes = 5, matrices = 10, results = 4
  (x ↦ [7,9⟩)
  (x ↦ [5,7⟩)

Results are streamed: --limit/--offset/--format consume a cursor and
stop early instead of materialising the relation:

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --limit 2 --format tuples
  (x ↦ [1,2⟩, y ↦ [2,3⟩, z ↦ [3,8⟩)
  (x ↦ [1,4⟩, y ↦ [4,5⟩, z ↦ [5,8⟩)

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --format first
  (x ↦ [1,2⟩, y ↦ [2,3⟩, z ↦ [3,8⟩)

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --offset 1 --limit 2
  | x       | y       | z       |
  |---------+---------+---------|
  | [1,4⟩ | [4,5⟩ | [5,8⟩ |
  | [1,5⟩ | [5,6⟩ | [6,8⟩ |
  2 tuple(s)

The same stream flags drive batch output per document:

  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt --format count
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  d1.txt: 4
  d2.txt: 2
  d3.txt: 4

slpeval's -n is a take on the same stream, so it composes with the
--max-tuples budget: the cap counts every tuple pulled, the window
merely stops pulling.  Two tuples fit under a cap of 2 with -n 2:

  $ spanner_cli slpeval '[ab]*!x{ab}[ab]*' abababab -n 2 --max-tuples 2
  |D| = 8, SLP nodes = 5, matrices = 10, results = 4
  (x ↦ [7,9⟩)
  (x ↦ [5,7⟩)

but without the window the third pull trips the cap mid-stream,
exit 3:

  $ spanner_cli slpeval '[ab]*!x{ab}[ab]*' abababab --max-tuples 2
  |D| = 8, SLP nodes = 5, matrices = 10, results = 4
  (x ↦ [7,9⟩)
  (x ↦ [5,7⟩)
  error: tuples limit exceeded (spent 3 tuples)
  [3]

SPANNER_JOBS overrides the default domain count; batch surfaces the
effective value (clamped to the number of documents):

  $ SPANNER_JOBS=2 spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  jobs: 2 (SPANNER_JOBS)
  d1.txt: 4 tuple(s)
  d2.txt: 2 tuple(s)
  d3.txt: 4 tuple(s)
  3 document(s), 10 tuple(s) total

  $ SPANNER_JOBS=64 spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  jobs: 3 (SPANNER_JOBS)
  d1.txt: 4 tuple(s)
  d2.txt: 2 tuple(s)
  d3.txt: 4 tuple(s)
  3 document(s), 10 tuple(s) total

Ill-formed overrides are not fatal, but they warn (once) instead of
being silently ignored — zero, negative and non-numeric values all
fall back to the machine default:

  $ SPANNER_JOBS=bogus spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  warning: ignoring SPANNER_JOBS="bogus" (not an integer); using the machine default
  d1.txt: 4 tuple(s)
  1 document(s), 4 tuple(s) total

Parse errors exit with code 2:

  $ spanner_cli eval '!x{' a
  parse error at offset 3: expected '}'
  [2]
