Resource budgets and the exit-code contract: 0 ok, 1 some-failed,
2 usage/parse, 3 limit exceeded.

A pathological formula is rejected by the state cap with exit 3:

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --max-states 5
  error: states limit exceeded (spent 20 states)
  [3]

An oversized document runs out of fuel with exit 3:

  $ yes ab | head -2000 | tr -d '\n' > big.txt
  $ spanner_cli eval '.*!x{a[ab]*b}.*' --file big.txt --fuel 10000 --compiled
  error: fuel limit exceeded (spent 10001 steps)
  [3]

An output explosion is stopped by the tuple cap with exit 3:

  $ spanner_cli eval '[a]*!x{a*}[a]*' aaaaaaaaaaaaaaaaaaaa --max-tuples 10 --compiled
  error: tuples limit exceeded (spent 11 tuples)
  [3]

Within budget, the governed run is identical to the free one:

  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --fuel 1000000 --max-states 1000 --compiled
  | x       | y       | z       |
  |---------+---------+---------|
  | [1,2⟩ | [2,3⟩ | [3,8⟩ |
  | [1,4⟩ | [4,5⟩ | [5,8⟩ |
  | [1,5⟩ | [5,6⟩ | [6,8⟩ |
  | [1,7⟩ | [7,8⟩ | [8,8⟩ |
  4 tuple(s)

Batch evaluation has partial-failure semantics: the over-budget
document degrades to an error on stderr, healthy documents still
complete, and the whole run exits 1:

  $ printf ababbab > d1.txt && printf abab > d2.txt
  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt big.txt d2.txt --fuel 5000 --jobs 2
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  d1.txt: 4 tuple(s)
  big.txt: fuel limit exceeded (spent 5001 steps)
  d2.txt: 2 tuple(s)
  3 document(s), 1 failed, 6 tuple(s) total
  [1]

A compile-stage limit aborts the batch with exit 3 (nothing to
degrade to without a compiled spanner):

  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt --max-states 5
  error: states limit exceeded (spent 20 states)
  [3]

Malformed invocations are usage errors, exit 2:

  $ spanner_cli eval 'a'
  usage error: missing document: give DOC or --file
  [2]

  $ printf x > f.txt
  $ spanner_cli eval 'a' doc --file f.txt
  usage error: give either DOC or --file, not both
  [2]

  $ spanner_cli batch 'a'
  usage error: missing documents: give at least one FILE or --store
  [2]

  $ spanner_cli compress ''
  usage error: cannot compress the empty document
  [2]

  $ spanner_cli edit 'a'
  usage error: missing document: give DOC or --file
  [2]

The edit subcommand is governed too:

  $ spanner_cli edit '.*!x{ab}.*' "$(cat big.txt)" 'concat(doc, doc)' --fuel 100
  error: fuel limit exceeded (spent 101 steps)
  [3]
