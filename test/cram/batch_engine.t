Batch evaluation in the compressed domain (§4): the files are
compressed into one shared-store SLP database and evaluated without
decompression.  Results match the uncompressed engine.

  $ printf ababbab > d1.txt && printf abab > d2.txt && printf bbbb > d3.txt
  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt --engine compressed
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  slp: 9 shared nodes for 15 bytes
  d1.txt: 4 tuple(s)
  d2.txt: 2 tuple(s)
  d3.txt: 4 tuple(s)
  3 document(s), 10 tuple(s) total

The decompress-then-evaluate baseline agrees:

  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt d2.txt d3.txt --engine decompress --jobs 2
  compiled: 20 states, 3 byte classes, 12 marker-set labels
  slp: 9 shared nodes for 15 bytes
  d1.txt: 4 tuple(s)
  d2.txt: 2 tuple(s)
  d3.txt: 4 tuple(s)
  3 document(s), 10 tuple(s) total

Partial failure under a tuple cap: the explosive document degrades to
its own error slot on stderr, healthy documents complete, exit 1:

  $ printf aa > small.txt && printf aaaaaaaaaa > big.txt
  $ spanner_cli batch '[a]*!x{a*}[a]*' small.txt big.txt --engine compressed --max-tuples 10
  compiled: 18 states, 2 byte classes, 3 marker-set labels
  slp: 7 shared nodes for 12 bytes
  small.txt: 6 tuple(s)
  big.txt: tuples limit exceeded (spent 11 tuples)
  2 document(s), 1 failed, 6 tuple(s) total
  [1]

A compile-stage limit still aborts before anything is compressed,
exit 3:

  $ spanner_cli batch '!x{[ab]*}!y{b}!z{[ab]*}' d1.txt --engine compressed --max-states 5
  error: states limit exceeded (spent 20 states)
  [3]

SLPs derive non-empty documents, so an empty file is a usage error,
exit 2:

  $ touch empty.txt
  $ spanner_cli batch 'a*' d1.txt empty.txt --engine compressed
  compiled: 4 states, 2 byte classes, 0 marker-set labels
  usage error: empty.txt: SLPs derive non-empty documents
  [2]
