The query subcommand evaluates an algebra expression through the
cost-based optimizer.  A Select-free expression — here a projection
over a union joined with a third formula — fuses into one automaton
and streams its results:

  $ Q='pi[x]((rgx:"[ab]*!x{aba}[ab]*" | rgx:"[ab]*!x{bab}[ab]*") & rgx:"[ab]*!x{[ab][ab][ab]}[ab]*")'
  $ spanner_cli query "$Q" abababa
  | x       |
  |---------|
  | [1,4⟩ |
  | [2,5⟩ |
  | [3,6⟩ |
  | [4,7⟩ |
  | [5,8⟩ |
  5 tuple(s)

The streamed formats and windowing flags work as in eval:

  $ spanner_cli query "$Q" abababa --format count
  5
  $ spanner_cli query "$Q" abababa --format tuples --limit 2
  (x ↦ [1,4⟩)
  (x ↦ [2,5⟩)

String-equality selections run as a streaming Strhash filter above
the fused automaton:

  $ spanner_cli query 'sel[x, y](rgx:"!x{[ab]+} !y{[ab]+}")' 'aba aba' --contents
  | x             | y             |
  |---------------+---------------|
  | [1,4⟩ "aba" | [5,8⟩ "aba" |
  1 tuple(s)

Repeated --file flags make a batch: the expression is planned once
(against the first file as the sample) and run per document:

  $ printf aababa > d1.txt
  $ printf bbabab > d2.txt
  $ spanner_cli query 'rgx:"[ab]*!x{aba}[ab]*" & rgx:"[ab]*!x{[ab][ab][ab]}[ab]*"' -f d1.txt -f d2.txt
  fused: one automaton, 51 states
  d1.txt: 2 tuple(s)
  d2.txt: 1 tuple(s)
  2 document(s), 3 tuple(s) total

explain --algebra prints the rewritten costed plan tree without
running the query.  The projection below is recognised as the
identity and dropped, the join chain is reordered by sampled
cardinality, and the whole Select-free tree fuses:

  $ spanner_cli explain --algebra "$Q" abababa
  plan: algebra (fully fused: one automaton)
    rewritten: ((rgx:"[ab]*!x{aba}[ab]*" | rgx:"[ab]*!x{bab}[ab]*") & rgx:"[ab]*!x{[ab][ab][ab]}[ab]*")
    fuse budget: 4096 states
    sample: 7 bytes; join chain reordered by sampled cardinality
    fuse: 101 states (est 1177); sample: 5 tuple(s) in 7 bytes <- (rgx:"[ab]*!x{[ab][ab][ab]}[ab]*" & (rgx:"[ab]*!x{aba}[ab]*" | rgx:"[ab]*!x{bab}[ab]*"))

Starving the fuse budget makes the cost guard split the same query:
each leaf still compiles, but the union and the join fall back to
stream/materialise evaluation, and the tree says why at each node:

  $ spanner_cli explain --algebra --fuse-states 1 "$Q" abababa
  plan: algebra (3 fused automata under stream operators)
    rewritten: ((rgx:"[ab]*!x{aba}[ab]*" | rgx:"[ab]*!x{bab}[ab]*") & rgx:"[ab]*!x{[ab][ab][ab]}[ab]*")
    fuse budget: 1 states
    sample: 7 bytes; join chain reordered by sampled cardinality
    join (materialise: operand already split by the fuse budget)
      fuse: 24 states (est 24); sample: 5 tuple(s) in 7 bytes <- rgx:"[ab]*!x{[ab][ab][ab]}[ab]*"
      union (stream, dedup: estimated 49 states > fuse budget 1)
        fuse: 24 states (est 24); sample: 3 tuple(s) in 7 bytes <- rgx:"[ab]*!x{aba}[ab]*"
        fuse: 24 states (est 24); sample: 2 tuple(s) in 7 bytes <- rgx:"[ab]*!x{bab}[ab]*"

A selection keeps its subtree un-fused and the explain tree shows the
stream filter:

  $ spanner_cli explain --algebra 'rgx:"[ab]*!x{aba}[ab]*" & sel[x, y](rgx:"!x{[ab]+} !y{[ab]+}")'
  plan: algebra (2 fused automata under stream operators)
    rewritten: (rgx:"[ab]*!x{aba}[ab]*" & sel[x, y](rgx:"!x{[ab]+} !y{[ab]+}"))
    fuse budget: 4096 states
    sample: none (join chains keep their written order)
    join (materialise: operand contains a string-equality selection)
      fuse: 24 states (est 24) <- rgx:"[ab]*!x{aba}[ab]*"
      select [x, y] (stream: Strhash equality filter)
        fuse: 18 states (est 18) <- rgx:"!x{[ab]+} !y{[ab]+}"

Budget trips keep the exit-code contract — 3 for an exceeded limit:

  $ spanner_cli query 'rgx:"[ab]*!x{a+}[ab]*"' aaaaaaaaaa --fuel 3
  error: fuel limit exceeded (spent 4 steps)
  [3]

and 2 for a malformed expression or usage error:

  $ spanner_cli query 'rgx:"[ab' x
  error: algebra parse error at offset 4: unterminated string literal
  [2]
  $ spanner_cli query 'rgx:"a"' doc -f d1.txt
  usage error: give either DOC or --file, not both
  [2]
