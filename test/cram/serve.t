The spanner service: define queries and load documents once, then
query them over a unix socket with streamed, windowed responses.

Start a server in the background (fixed worker/queue sizes keep the
STATS output deterministic):

  $ SOCK="$PWD/serve.sock"
  $ spanner_cli serve "$SOCK" --jobs 2 --queue 8 2>server.log &
  $ SRV=$!

Define a named query and load a document store; the client retries
until the server is up:

  $ spanner_cli client "$SOCK" --retry-ms 10000 DEFINE pairs --body '[ab]*!x{ab*}[ab]*'
  OK defined pairs schema={x} fused=1
  $ spanner_cli client "$SOCK" LOAD corpus DOC d1 --body 'abab'
  OK loaded corpus/d1 bytes=4 store_nodes=4

Query by name: the response is a stream header, windowed tuple
frames, and a terminal END carrying the tuple count:

  $ spanner_cli client "$SOCK" QUERY pairs corpus d1
  OK stream {x}
  R (x ↦ [1,2⟩)
  R (x ↦ [1,3⟩)
  R (x ↦ [3,4⟩)
  R (x ↦ [3,5⟩)
  END 4

Streaming options are honored mid-stream — offset is skipped on the
worker, the limit bounds what is pulled:

  $ spanner_cli client "$SOCK" QUERY pairs corpus d1 offset=1 limit=2
  OK stream {x}
  R (x ↦ [1,3⟩)
  R (x ↦ [3,4⟩)
  END 2
  $ spanner_cli client "$SOCK" QUERY pairs corpus d1 format=count
  OK count 4
  $ spanner_cli client "$SOCK" QUERY pairs corpus d1 format=first
  OK first (x ↦ [1,2⟩)

Inline queries (source "-") carry the query text as the body and go
through the same normalized plan cache as named ones:

  $ spanner_cli client "$SOCK" QUERY - corpus d1 format=count --body '[ab]*!x{ab*}[ab]*'
  OK count 4

A per-request budget that trips maps onto the usual exit-code
taxonomy: status 3 on the wire, exit 3 from the client:

  $ spanner_cli client "$SOCK" QUERY pairs corpus d1 fuel=3
  ERR 3 fuel limit exceeded (spent 4 steps)
  [3]

So do bad requests (status 2) and unknown names (status 1):

  $ spanner_cli client "$SOCK" FROBNICATE
  ERR 2 request parse error at offset 0: unknown command "FROBNICATE" (expected DEFINE, LOAD, QUERY, EXPLAIN, STATS, CLOSE or SHUTDOWN)
  [2]
  $ spanner_cli client "$SOCK" QUERY nosuch corpus d1
  ERR 1 query evaluation failure: unknown query "nosuch"
  [1]

EXPLAIN shows the optimizer's view of a registered query:

  $ spanner_cli client "$SOCK" EXPLAIN pairs
  OK explain
  original: rgx:"[ab]*!x{ab*}[ab]*"
  rewritten: rgx:"[ab]*!x{ab*}[ab]*"
  schema: {x}
  fused: 1 (threshold 4096 states)
  compiled: whole query, 22 states

STATS exposes the registry, both caches (the plan cache counts the
cross-query hits), and the admission scheduler:

  $ spanner_cli client "$SOCK" STATS
  OK stats
  queries: 1
  stores: 1
  docs: 1
  plan_cache: hits=7 misses=1 evictions=0 entries=1/128
  doc_cache: hits=5 misses=1 evictions=0 entries=1/128
  engine_cache: hits=0 misses=0 evictions=0 entries=0/32
  store corpus: kind=heap docs=1 shards=1 mapped=0 resident=160
  scheduler: workers=2 capacity=8 submitted=7 completed=7 shed=0 queued=0 max_queued=1 restarts=0
  connections: live=1 accepted=12
  timeouts: io=0 idle=0

SHUTDOWN stops the server cleanly; it removes its socket and exits 0:

  $ spanner_cli client "$SOCK" SHUTDOWN
  OK shutting down
  $ wait $SRV
  $ test -e "$SOCK" || echo gone
  gone
  $ cat server.log
  listening on unix:$TESTCASE_ROOT/serve.sock
