The explain subcommand prints the plan the planner would pick for
each input shape — chosen engine, the facts it decided from, and why.

A plain document takes the compiled dense-table pass:

  $ spanner_cli explain '!x{[ab]*}!y{b}!z{[ab]*}' ababbab
  plan: compiled
    spanner: 20 states, 3 byte classes, 12 marker-set labels
    input: plain document
    bytes: 7
    why: uncompressed input: one linear dense-table pass, nothing to share

An SLP-compressed document is planned from its compression ratio; a
short incompressible string falls back to decompress-then-evaluate:

  $ spanner_cli explain '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --slp
  plan: decompress
    spanner: 20 states, 3 byte classes, 12 marker-set labels
    input: SLP document
    bytes: 7
    nodes: 7
    ratio: 1.0x
    why: barely compressible: decompress-then-scan beats the matrix products

while a repetitive document compresses well and takes the matrix
sweep, linear in SLP nodes rather than in the text:

  $ yes ab | head -512 | tr -d '\n' > big.txt
  $ spanner_cli explain '!x{[ab]*}!y{b}!z{[ab]*}' --file big.txt --slp
  plan: compressed
    spanner: 20 states, 3 byte classes, 12 marker-set labels
    input: SLP document
    bytes: 1024
    nodes: 121
    ratio: 8.5x
    why: compressible: the matrix sweep is linear in SLP nodes, not in the text

A frozen document database (SLPDB, as written by compress -o) is the
batch shape of the same decision:

  $ spanner_cli compress --file big.txt -o big.slpdb > /dev/null
  $ spanner_cli explain '!x{[ab]*}!y{b}!z{[ab]*}' --db big.slpdb
  plan: compressed
    spanner: 20 states, 3 byte classes, 12 marker-set labels
    input: document database
    documents: 1
    bytes: 1024
    shared nodes: 121
    ratio: 8.5x
    why: compressible: one shared sweep covers every document, enumeration fans out

A live CDE session always evaluates incrementally from its summary
cache (shown warm, as a session would actually be):

  $ spanner_cli explain '!x{[ab]*}!y{b}!z{[ab]*}' ababbab --session
  plan: incr
    spanner: 20 states, 3 byte classes, 12 marker-set labels
    input: CDE session
    document: doc
    bytes: 7
    nodes: 7
    cached summaries: 7/65536
    why: live session: cached per-node summaries price re-evaluation at new nodes only

Shape flags are mutually exclusive:

  $ spanner_cli explain 'a' ab --slp --session
  usage error: give at most one of --slp, --session, --db
  [2]
