(* Unit tests for the shared infrastructure: Vec, Bitset, Bitmatrix,
   Strhash, Interner, Xoshiro. *)

open Spanner_util

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Pool.parse_jobs — the SPANNER_JOBS override must reject garbage
   loudly (warning + machine default) instead of silently ignoring *)

let pool_parse_jobs () =
  let ok = Alcotest.(result int string) in
  let is_ok v r = check Alcotest.bool v true (match r with Ok _ -> true | Error _ -> false) in
  check ok "positive" (Ok 4) (Pool.parse_jobs "4");
  check ok "one" (Ok 1) (Pool.parse_jobs "1");
  check ok "trimmed" (Ok 8) (Pool.parse_jobs " 8 ");
  is_ok "large" (Pool.parse_jobs "1024");
  let is_err v r = check Alcotest.bool v true (match r with Error _ -> true | Ok _ -> false) in
  is_err "empty" (Pool.parse_jobs "");
  is_err "blank" (Pool.parse_jobs "   ");
  is_err "alpha" (Pool.parse_jobs "four");
  is_err "trailing junk" (Pool.parse_jobs "4x");
  is_err "zero" (Pool.parse_jobs "0");
  is_err "negative" (Pool.parse_jobs "-2");
  is_err "float" (Pool.parse_jobs "2.5")

(* ------------------------------------------------------------------ *)
(* Locked_lru *)

let locked_lru_basic () =
  let l = Locked_lru.create ~capacity:2 () in
  check Alcotest.int "computed once" 10 (Locked_lru.find_or_add l 1 (fun () -> 10));
  check Alcotest.int "cached" 10 (Locked_lru.find_or_add l 1 (fun () -> 99));
  Locked_lru.add l 2 20;
  Locked_lru.add l 3 30;
  check Alcotest.(option int) "evicted lru key" None (Locked_lru.find l 1);
  check Alcotest.int "length" 2 (Locked_lru.length l);
  let s = Locked_lru.stats l in
  check Alcotest.int "evictions counted" 1 s.Lru.evictions

let locked_lru_concurrent () =
  (* hammer one cache from several domains: every lookup must return
     the value computed for its key, and the structure must stay
     consistent (length <= capacity) *)
  let l = Locked_lru.create ~capacity:16 () in
  let worker seed () =
    let r = ref seed in
    for i = 0 to 4_999 do
      let k = (seed + i) mod 32 in
      let v = Locked_lru.find_or_add l k (fun () -> k * 7) in
      if v <> k * 7 then failwith "wrong value from cache";
      r := !r + v
    done;
    !r
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter (fun d -> ignore (Domain.join d)) domains;
  check Alcotest.bool "bounded" true (Locked_lru.length l <= 16)

(* ------------------------------------------------------------------ *)
(* Vec *)

let vec_push_get () =
  let v = Vec.create () in
  check Alcotest.bool "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    check Alcotest.int "push returns index" i (Vec.push v (i * 2))
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 0" 0 (Vec.get v 0);
  check Alcotest.int "get 99" 198 (Vec.get v 99);
  Vec.set v 50 (-1);
  check Alcotest.int "set/get" (-1) (Vec.get v 50)

let vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check Alcotest.int "last" 3 (Vec.last v);
  check Alcotest.int "pop" 3 (Vec.pop v);
  check Alcotest.int "length after pop" 2 (Vec.length v);
  check Alcotest.int "pop again" 2 (Vec.pop v);
  check Alcotest.int "pop again" 1 (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let vec_bounds () =
  let v = Vec.of_list [ 0 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index 1 out of bounds (size 1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative index" (Invalid_argument "Vec: index -1 out of bounds (size 1)")
    (fun () -> ignore (Vec.get v (-1)))

let vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  check Alcotest.int "iteri count" 4 (List.length !collected);
  check (Alcotest.list Alcotest.int) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "exists negative" false (Vec.exists (fun x -> x = 5) v)

let vec_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 2;
  check (Alcotest.list Alcotest.int) "after truncate" [ 1; 2 ] (Vec.to_list v);
  Vec.truncate v 10;
  check Alcotest.int "truncate beyond size is noop" 2 (Vec.length v);
  Vec.clear v;
  check Alcotest.bool "clear empties" true (Vec.is_empty v)

let vec_make () =
  let v = Vec.make 5 'x' in
  check Alcotest.int "make length" 5 (Vec.length v);
  check Alcotest.char "make content" 'x' (Vec.get v 4);
  check (Alcotest.array Alcotest.char) "to_array" [| 'x'; 'x'; 'x'; 'x'; 'x' |] (Vec.to_array v)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let bitset_basic () =
  let s = Bitset.create 100 in
  check Alcotest.bool "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check Alcotest.int "cardinal" 4 (Bitset.cardinal s);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check (Alcotest.list Alcotest.int) "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let bitset_set_ops () =
  let a = Bitset.of_list 50 [ 1; 2; 3 ] in
  let b = Bitset.of_list 50 [ 2; 3; 4 ] in
  let i = Bitset.inter a b in
  check (Alcotest.list Alcotest.int) "inter" [ 2; 3 ] (Bitset.elements i);
  check Alcotest.bool "subset yes" true (Bitset.subset i a);
  check Alcotest.bool "subset no" false (Bitset.subset a b);
  let into = Bitset.copy a in
  check Alcotest.bool "union changes" true (Bitset.union_into ~into b);
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3; 4 ] (Bitset.elements into);
  check Alcotest.bool "union again no change" false (Bitset.union_into ~into b)

let bitset_equal_hash () =
  let a = Bitset.of_list 30 [ 5; 7 ] in
  let b = Bitset.of_list 30 [ 7; 5 ] in
  check Alcotest.bool "equal" true (Bitset.equal a b);
  check Alcotest.int "hash consistent" (Bitset.hash a) (Bitset.hash b);
  check Alcotest.int "compare equal" 0 (Bitset.compare a b);
  Bitset.add b 8;
  check Alcotest.bool "not equal" false (Bitset.equal a b)

let bitset_choose_clear () =
  let s = Bitset.of_list 20 [ 9; 4; 13 ] in
  check (Alcotest.option Alcotest.int) "choose smallest" (Some 4) (Bitset.choose s);
  Bitset.clear s;
  check (Alcotest.option Alcotest.int) "choose empty" None (Bitset.choose s);
  check Alcotest.int "capacity survives clear" 20 (Bitset.capacity s)

let bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Bitset: index 8 out of bounds (capacity 8)") (fun () -> Bitset.add s 8)

(* ------------------------------------------------------------------ *)
(* Bitmatrix *)

let bitmatrix_mul () =
  (* 0 -> 1 -> 2 as adjacency; product = two-step reachability *)
  let m = Bitmatrix.create 3 in
  Bitmatrix.set m 0 1;
  Bitmatrix.set m 1 2;
  let m2 = Bitmatrix.mul m m in
  check Alcotest.bool "two-step 0->2" true (Bitmatrix.get m2 0 2);
  check Alcotest.bool "no 0->1 in m2" false (Bitmatrix.get m2 0 1);
  let id = Bitmatrix.identity 3 in
  check Alcotest.bool "m * I = m" true (Bitmatrix.equal (Bitmatrix.mul m id) m);
  check Alcotest.bool "I * m = m" true (Bitmatrix.equal (Bitmatrix.mul id m) m)

let bitmatrix_closure () =
  let m = Bitmatrix.create 4 in
  Bitmatrix.set m 0 1;
  Bitmatrix.set m 1 2;
  Bitmatrix.set m 2 3;
  let c = Bitmatrix.transitive_closure m in
  check Alcotest.bool "0 reaches 3" true (Bitmatrix.get c 0 3);
  check Alcotest.bool "reflexive" true (Bitmatrix.get c 2 2);
  check Alcotest.bool "no back edge" false (Bitmatrix.get c 3 0)

let bitmatrix_apply_row () =
  let m = Bitmatrix.create 3 in
  Bitmatrix.set m 0 2;
  Bitmatrix.set m 1 2;
  Bitmatrix.set m 2 0;
  let s = Bitset.of_list 3 [ 0; 1 ] in
  let image = Bitmatrix.apply_row m s in
  check (Alcotest.list Alcotest.int) "image" [ 2 ] (Bitset.elements image)

let bitmatrix_union () =
  let a = Bitmatrix.create 2 and b = Bitmatrix.create 2 in
  Bitmatrix.set a 0 0;
  Bitmatrix.set b 1 1;
  let u = Bitmatrix.union a b in
  check Alcotest.bool "a part" true (Bitmatrix.get u 0 0);
  check Alcotest.bool "b part" true (Bitmatrix.get u 1 1);
  check Alcotest.bool "nothing else" false (Bitmatrix.get u 0 1)

(* ------------------------------------------------------------------ *)
(* Strhash *)

let strhash_equalities () =
  let h = Strhash.make "abcabcXabc" in
  check Alcotest.bool "abc = abc (0,3)" true (Strhash.equal_sub h 0 3 3);
  check Alcotest.bool "abc = abc (0,7)" true (Strhash.equal_sub h 0 7 3);
  check Alcotest.bool "abc != bca" false (Strhash.equal_sub h 0 1 3);
  check Alcotest.bool "empty factors equal" true (Strhash.equal_sub h 2 9 0);
  check Alcotest.bool "same offset" true (Strhash.equal_sub h 4 4 5);
  check Alcotest.int "length" 10 (Strhash.length h)

let strhash_spans () =
  let h = Strhash.make "banana" in
  (* "ana" at offsets 1 and 3 *)
  check Alcotest.bool "ana = ana" true (Strhash.equal_span h ~a:(1, 4) ~b:(3, 6));
  check Alcotest.bool "different lengths" false (Strhash.equal_span h ~a:(1, 4) ~b:(3, 5));
  check Alcotest.bool "ban != ana" false (Strhash.equal_span h ~a:(0, 3) ~b:(1, 4))

let strhash_exhaustive_small () =
  (* Cross-check every factor pair of a small string against String.sub. *)
  let s = "abaabbabaab" in
  let h = Strhash.make s in
  let n = String.length s in
  for i = 0 to n do
    for j = 0 to n do
      for len = 0 to n - max i j do
        let expected = String.sub s i len = String.sub s j len in
        if Strhash.equal_sub h i j len <> expected then
          Alcotest.failf "mismatch i=%d j=%d len=%d" i j len
      done
    done
  done

let strhash_bounds () =
  let h = Strhash.make "abc" in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Strhash: range [2, 2+2) out of bounds (length 3)") (fun () ->
      ignore (Strhash.equal_sub h 2 0 2))

(* ------------------------------------------------------------------ *)
(* Interner *)

let interner_roundtrip () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check Alcotest.int "dense ids" 0 a;
  check Alcotest.int "dense ids" 1 b;
  check Alcotest.int "idempotent" a (Interner.intern t "alpha");
  check Alcotest.string "name" "beta" (Interner.name t b);
  check (Alcotest.option Alcotest.int) "find" (Some 0) (Interner.find t "alpha");
  check (Alcotest.option Alcotest.int) "find missing" None (Interner.find t "gamma");
  check Alcotest.int "count" 2 (Interner.count t);
  check (Alcotest.list Alcotest.string) "names in order" [ "alpha"; "beta" ] (Interner.names t)

(* ------------------------------------------------------------------ *)
(* Lru *)

let lru_basic () =
  let t = Lru.create ~capacity:3 () in
  check Alcotest.int "capacity" 3 (Lru.capacity t);
  check Alcotest.int "fresh length" 0 (Lru.length t);
  check (Alcotest.option Alcotest.string) "miss" None (Lru.find t 1);
  Lru.add t 1 "one";
  Lru.add t 2 "two";
  check (Alcotest.option Alcotest.string) "hit" (Some "one") (Lru.find t 1);
  Lru.add t 1 "uno";
  check Alcotest.int "replace keeps length" 2 (Lru.length t);
  check (Alcotest.option Alcotest.string) "replaced" (Some "uno") (Lru.find t 1);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Lru.create: capacity must be at least 1") (fun () ->
      ignore (Lru.create ~capacity:0 ()))

let lru_eviction_order () =
  let t = Lru.create ~capacity:3 () in
  Lru.add t 'a' 0;
  Lru.add t 'b' 1;
  Lru.add t 'c' 2;
  (* touch 'a': 'b' becomes the least recently used *)
  ignore (Lru.find t 'a');
  Lru.add t 'd' 3;
  check Alcotest.bool "b evicted" false (Lru.mem t 'b');
  check Alcotest.bool "a kept" true (Lru.mem t 'a');
  check Alcotest.bool "c kept" true (Lru.mem t 'c');
  check Alcotest.bool "d kept" true (Lru.mem t 'd');
  check Alcotest.int "evictions counted" 1 (Lru.stats t).Lru.evictions;
  (* replacing an existing key when full must not evict *)
  Lru.add t 'c' 9;
  check Alcotest.int "replace is not an eviction" 1 (Lru.stats t).Lru.evictions;
  check Alcotest.int "length at capacity" 3 (Lru.length t)

let lru_stats () =
  let t = Lru.create ~capacity:2 () in
  Lru.add t 1 "x";
  ignore (Lru.find t 1);
  ignore (Lru.find t 1);
  ignore (Lru.find t 2);
  ignore (Lru.mem t 2);
  (* mem is counter-neutral *)
  let s = Lru.stats t in
  check Alcotest.int "hits" 2 s.Lru.hits;
  check Alcotest.int "misses" 1 s.Lru.misses;
  check Alcotest.int "evictions" 0 s.Lru.evictions;
  (* remove is not an eviction; clear keeps counters *)
  Lru.remove t 1;
  check Alcotest.int "length after remove" 0 (Lru.length t);
  Lru.add t 3 "y";
  Lru.clear t;
  check Alcotest.int "length after clear" 0 (Lru.length t);
  check Alcotest.int "counters kept" 2 (Lru.stats t).Lru.hits;
  Lru.reset_stats t;
  let s = Lru.stats t in
  check Alcotest.int "reset hits" 0 s.Lru.hits;
  check Alcotest.int "reset misses" 0 s.Lru.misses;
  check Alcotest.int "reset evictions" 0 s.Lru.evictions

let lru_churn () =
  (* keys 0..9 round-robin through a 4-entry cache: the working set
     never fits, so every find misses and every add evicts *)
  let t = Lru.create ~capacity:4 () in
  for round = 1 to 3 do
    for k = 0 to 9 do
      (match Lru.find t k with None -> Lru.add t k (k * round) | Some _ -> ());
      if Lru.length t > 4 then Alcotest.failf "over capacity at key %d" k
    done
  done;
  let s = Lru.stats t in
  check Alcotest.int "all misses" 30 s.Lru.misses;
  check Alcotest.int "no hits" 0 s.Lru.hits;
  check Alcotest.int "evictions" 26 s.Lru.evictions

(* ------------------------------------------------------------------ *)
(* Xoshiro *)

let xoshiro_deterministic () =
  let a = Xoshiro.create 123 and b = Xoshiro.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int "same seed, same stream" (Xoshiro.next a) (Xoshiro.next b)
  done;
  let c = Xoshiro.create 124 in
  check Alcotest.bool "different seed differs" true (Xoshiro.next a <> Xoshiro.next c)

let xoshiro_ranges () =
  let r = Xoshiro.create 5 in
  for _ = 1 to 1000 do
    let v = Xoshiro.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v;
    let f = Xoshiro.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done;
  let s = Xoshiro.string r "xyz" 50 in
  check Alcotest.int "string length" 50 (String.length s);
  check Alcotest.bool "alphabet respected" true
    (String.for_all (fun c -> c = 'x' || c = 'y' || c = 'z') s)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          tc "push/get" `Quick vec_push_get;
          tc "pop/last" `Quick vec_pop_last;
          tc "bounds" `Quick vec_bounds;
          tc "iter/fold" `Quick vec_iter_fold;
          tc "truncate/clear" `Quick vec_truncate;
          tc "make/to_array" `Quick vec_make;
        ] );
      ( "bitset",
        [
          tc "basic" `Quick bitset_basic;
          tc "set operations" `Quick bitset_set_ops;
          tc "equal/hash" `Quick bitset_equal_hash;
          tc "choose/clear" `Quick bitset_choose_clear;
          tc "bounds" `Quick bitset_bounds;
        ] );
      ( "bitmatrix",
        [
          tc "multiplication" `Quick bitmatrix_mul;
          tc "transitive closure" `Quick bitmatrix_closure;
          tc "apply_row" `Quick bitmatrix_apply_row;
          tc "union" `Quick bitmatrix_union;
        ] );
      ( "strhash",
        [
          tc "equalities" `Quick strhash_equalities;
          tc "spans" `Quick strhash_spans;
          tc "exhaustive small" `Quick strhash_exhaustive_small;
          tc "bounds" `Quick strhash_bounds;
        ] );
      ("interner", [ tc "roundtrip" `Quick interner_roundtrip ]);
      ( "lru",
        [
          tc "basic" `Quick lru_basic;
          tc "eviction order" `Quick lru_eviction_order;
          tc "stats" `Quick lru_stats;
          tc "churn" `Quick lru_churn;
        ] );
      ( "xoshiro",
        [ tc "deterministic" `Quick xoshiro_deterministic; tc "ranges" `Quick xoshiro_ranges ] );
      ("pool", [ tc "parse_jobs" `Quick pool_parse_jobs ]);
      ( "locked_lru",
        [ tc "basic" `Quick locked_lru_basic; tc "concurrent" `Quick locked_lru_concurrent ] );
    ]
