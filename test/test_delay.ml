(* The native constant-delay enumeration machines (ROADMAP item 3)
   against the oracles they replaced:

   - Order-exact differentials: Slp_spanner.cursor drains the exact
     emission sequence of iter_prepared (same runs, same order) over
     random formulas, documents and SLP builders, for deterministic
     and nondeterministic automata alike; Incr.cursor likewise drains
     Incr.iter_runs' sequence.
   - Set-level differentials: the streamed (deduplicated) relation
     equals Compiled.eval on the decompressed text, over stores grown
     by random builders, by CDE editing, and over packed (mmap-view)
     arenas.
   - Budgets fire mid-stream on the native paths: the tuple cap trips
     between two pulls with the same error and count as the effectful
     path did, and the dedup table's absorption work burns fuel.
   - A deep-chain regression: pulling from a 200k-deep left-comb SLP
     must not overflow the stack (the machine is loop-based; the CPS
     enumerator recursed per level).
   - The word-level primitives under the machine: Bitmatrix.transpose
     and Bitset.first_from / first_common_from against naive scans. *)

open Spanner_core
module Charset = Spanner_fa.Charset
module Limits = Spanner_util.Limits
module Bitset = Spanner_util.Bitset
module Bitmatrix = Spanner_util.Bitmatrix
module Slp = Spanner_slp.Slp
module Builder = Spanner_slp.Builder
module Balance = Spanner_slp.Balance
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde
module Slp_spanner = Spanner_slp.Slp_spanner
module Arena = Spanner_store.Arena
module Incr = Spanner_incr.Incr
module Cursor = Spanner_engine.Cursor

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Generators (formula shape shared with test_cursor) *)

let gen_doc1 = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 25))

let gen_formula =
  let open QCheck2.Gen in
  let gen_plain =
    oneofl
      [
        Regex_formula.char 'a';
        Regex_formula.char 'b';
        Regex_formula.chars (Charset.of_string "ab");
        Regex_formula.chars Charset.full;
        Regex_formula.star (Regex_formula.chars (Charset.of_string "abc"));
        Regex_formula.plus (Regex_formula.char 'b');
        Regex_formula.opt (Regex_formula.char 'c');
        Regex_formula.epsilon;
      ]
  in
  let rec gen_with_vars pool depth =
    if depth = 0 || pool = [] then gen_plain
    else
      frequency
        [
          (3, gen_plain);
          ( 2,
            match pool with
            | x :: rest ->
                gen_with_vars rest (depth - 1) >>= fun body ->
                return (Regex_formula.bind x body)
            | [] -> gen_plain );
          ( 2,
            let left_pool, right_pool =
              List.partition (fun x -> Variable.id x mod 2 = 0) pool
            in
            gen_with_vars left_pool (depth - 1) >>= fun l ->
            gen_with_vars right_pool (depth - 1) >>= fun r ->
            return (Regex_formula.concat l r) );
          ( 1,
            gen_with_vars pool (depth - 1) >>= fun l ->
            gen_with_vars pool (depth - 1) >>= fun r -> return (Regex_formula.alt l r) );
          ( 1,
            gen_with_vars [] (depth - 1) >>= fun body -> return (Regex_formula.star body) );
        ]
  in
  gen_with_vars [ v "x"; v "y" ] 3 >>= fun f ->
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Charset.full))
       (Regex_formula.concat f
          (Regex_formula.star (Regex_formula.chars Charset.full))))

let builders =
  [|
    ("of_string", fun store s -> Slp.of_string store s);
    ("lz78", fun store s -> Builder.lz78 store s);
    ("balanced", fun store s -> Builder.balanced_of_string store s);
    ("lz78+rebalance", fun store s -> Balance.rebalance store (Builder.lz78 store s));
  |]

let gen_case =
  QCheck2.Gen.(
    gen_formula >>= fun f ->
    gen_doc1 >>= fun doc ->
    0 -- (Array.length builders - 1) >>= fun b -> return (f, doc, b))

let print_case (f, doc, b) =
  Printf.sprintf "%s on %S (%s)" (Regex_formula.to_string f) doc (fst builders.(b))

let drain_native engine id =
  let cur = Slp_spanner.cursor engine id in
  let rec go acc =
    match Slp_spanner.cursor_next cur with Some t -> go (t :: acc) | None -> List.rev acc
  in
  go []

let same_sequence xs ys =
  List.length xs = List.length ys && List.for_all2 Span_tuple.equal xs ys

(* ------------------------------------------------------------------ *)
(* Order-exact differentials *)

let prop_slp_cursor_order =
  QCheck2.Test.make
    ~name:"Slp_spanner.cursor ≡ iter_prepared, order-exact (det and nondet)" ~count:300
    gen_case ~print:print_case (fun (f, doc, b) ->
      let e = Evset.of_formula f in
      List.for_all
        (fun ct ->
          let store = Slp.create_store () in
          let id = (snd builders.(b)) store doc in
          let engine = Slp_spanner.of_compiled ct store in
          Slp_spanner.prepare engine id;
          let expected = ref [] in
          Slp_spanner.iter_prepared engine id (fun t -> expected := t :: !expected);
          same_sequence (drain_native engine id) (List.rev !expected))
        [ Compiled.of_evset (Evset.determinize e); Compiled.of_evset e ])

let prop_incr_cursor_order =
  QCheck2.Test.make ~name:"Incr.cursor ≡ Incr.iter_runs, order-exact" ~count:300 gen_case
    ~print:print_case (fun (f, doc, _) ->
      let ct = Compiled.of_evset (Evset.of_formula f) in
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "d" doc);
      let session = Incr.create ct db in
      let id = Doc_db.find db "d" in
      let expected = ref [] in
      Incr.iter_runs session id (fun t -> expected := t :: !expected);
      let cur = Incr.cursor session id in
      let rec go acc =
        match Incr.cursor_next cur with Some t -> go (t :: acc) | None -> List.rev acc
      in
      same_sequence (go []) (List.rev !expected))

(* ------------------------------------------------------------------ *)
(* Set-level differentials: streamed = Compiled on decompressed text *)

let prop_stream_equals_compiled =
  QCheck2.Test.make ~name:"of_slp stream ≡ Compiled.eval on decompressed text"
    ~count:300 gen_case ~print:print_case (fun (f, doc, b) ->
      let ct = Compiled.of_evset (Evset.of_formula f) in
      let store = Slp.create_store () in
      let id = (snd builders.(b)) store doc in
      let engine = Slp_spanner.of_compiled ct store in
      Slp_spanner.prepare engine id;
      Span_relation.equal
        (Cursor.to_relation (Cursor.of_slp engine id))
        (Compiled.eval ct doc))

let gen_cde =
  let open QCheck2.Gen in
  let doc = oneofl [ Cde.Doc "d1"; Cde.Doc "d2" ] in
  let rec expr depth =
    if depth = 0 then doc
    else
      frequency
        [
          (2, doc);
          ( 2,
            expr (depth - 1) >>= fun a ->
            expr (depth - 1) >>= fun b -> return (Cde.Concat (a, b)) );
          ( 1,
            expr (depth - 1) >>= fun a ->
            0 -- 30 >>= fun i ->
            0 -- 30 >>= fun j -> return (Cde.Extract (a, min i j + 1, max i j + 1)) );
          ( 1,
            expr (depth - 1) >>= fun a ->
            expr (depth - 1) >>= fun b ->
            0 -- 30 >>= fun k -> return (Cde.Insert (a, b, k + 1)) );
        ]
  in
  expr 2

let prop_cde_stream =
  QCheck2.Test.make ~name:"of_slp stream on CDE-edited stores ≡ compiled on reference edit"
    ~count:150
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      gen_doc1 >>= fun d1 ->
      gen_doc1 >>= fun d2 ->
      gen_cde >>= fun e -> return (f, d1, d2, e))
    ~print:(fun (f, d1, d2, e) ->
      Format.asprintf "%s, d1=%S d2=%S, %a" (Regex_formula.to_string f) d1 d2 Cde.pp e)
    (fun (f, d1, d2, e) ->
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "d1" d1);
      ignore (Doc_db.add_string db "d2" d2);
      let lookup = function "d1" -> d1 | "d2" -> d2 | _ -> raise Not_found in
      let expected = try Some (Cde.reference_eval lookup e) with Invalid_argument _ -> None in
      let got = try Some (Cde.eval db e) with Invalid_argument _ -> None in
      match (expected, got) with
      | None, _ | _, None -> true
      | Some expected, Some id ->
          let ct = Compiled.of_formula f in
          let engine = Slp_spanner.of_compiled ct (Doc_db.store db) in
          Slp_spanner.prepare engine id;
          Span_relation.equal
            (Cursor.to_relation (Cursor.of_slp engine id))
            (Compiled.eval ct expected))

let prop_packed_stream =
  QCheck2.Test.make ~name:"of_slp stream over packed arena view ≡ heap engine"
    ~count:100
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      gen_doc1 >>= fun d1 ->
      gen_doc1 >>= fun d2 -> return (f, d1, d2))
    ~print:(fun (f, d1, d2) ->
      Printf.sprintf "%s on %S + %S" (Regex_formula.to_string f) d1 d2)
    (fun (f, d1, d2) ->
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "d1" d1);
      ignore (Doc_db.add_string db "d2" d2);
      let docs = List.map (fun n -> (n, Doc_db.find db n)) (Doc_db.names db) in
      let a = Arena.of_string (Arena.pack_bytes (Doc_db.store db) docs) in
      let fz = Arena.frozen_view a in
      let ct = Compiled.of_formula f in
      let flat = Slp_spanner.of_frozen ct fz in
      List.for_all
        (fun (name, _) ->
          let root = Option.get (Arena.find a name) in
          Slp_spanner.prepare flat root;
          let expected = ref [] in
          Slp_spanner.iter_prepared flat root (fun t -> expected := t :: !expected);
          same_sequence (drain_native flat root) (List.rev !expected)
          && Span_relation.equal
               (Cursor.to_relation (Cursor.of_slp flat root))
               (Compiled.eval ct (Slp.frozen_to_string fz root)))
        docs)

(* ------------------------------------------------------------------ *)
(* Budgets fire mid-stream on the native paths *)

let slp_fixture body doc =
  let ct = Compiled.of_formula (Regex_formula.parse body) in
  let store = Slp.create_store () in
  let id = Balance.rebalance store (Builder.lz78 store doc) in
  let engine = Slp_spanner.of_compiled ct store in
  Slp_spanner.prepare engine id;
  (engine, id)

let test_tuple_cap_trips_mid_stream () =
  let engine, id = slp_fixture "!x{[ab]*}!y{b}!z{[ab]*}" "ababbab" in
  let g = Limits.start (Limits.make ~max_tuples:2 ()) in
  let c = Cursor.of_slp ~gauge:g engine id in
  check Alcotest.bool "tuple 1 flows" true (Cursor.next c <> None);
  check Alcotest.bool "tuple 2 flows" true (Cursor.next c <> None);
  Alcotest.check_raises "third pull trips"
    (Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Tuples; spent = 3 }))
    (fun () -> ignore (Cursor.next c))

let test_dedup_burns_fuel () =
  (* an ambiguous (non-determinized) automaton repeats every tuple:
     the dedup table absorbs the copies, and that work must burn fuel
     even though no extra tuple is ever delivered *)
  let f =
    Regex_formula.(
      concat
        (star (chars Charset.full))
        (concat
           (alt (bind (v "x") (char 'a')) (bind (v "x") (char 'a')))
           (star (chars Charset.full))))
  in
  let ct = Compiled.of_evset (Evset.of_formula f) in
  let store = Slp.create_store () in
  let id = Slp.of_string store "aaaaaaaa" in
  let engine = Slp_spanner.of_compiled ct store in
  Slp_spanner.prepare engine id;
  let unmetered = Cursor.cardinal (Cursor.of_slp engine id) in
  check Alcotest.int "dedup delivers each match once" 8 unmetered;
  let g = Limits.start (Limits.make ~fuel:6 ()) in
  let c = Cursor.of_slp ~gauge:g engine id in
  match Cursor.to_list c with
  | _ -> Alcotest.fail "draining 16 runs through a 6-step gauge must trip"
  | exception Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Fuel; _ }) -> ()

(* ------------------------------------------------------------------ *)
(* Deep-chain regression: the machine must not recurse per level *)

let test_deep_chain_pull () =
  let depth = 200_000 in
  let doc = String.make depth 'a' in
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a}[a]*") in
  let store = Slp.create_store () in
  (* of_string builds the degenerate left comb: one Pair per char *)
  let id = Slp.of_string store doc in
  let engine = Slp_spanner.of_compiled ct store in
  Slp_spanner.prepare engine id;
  let c = Cursor.take (Cursor.of_slp engine id) 5 in
  let got = Cursor.to_list c in
  check Alcotest.int "five tuples pulled off the deep chain" 5 (List.length got);
  List.iter
    (fun t ->
      match Span_tuple.find t (v "x") with
      | Some s -> check Alcotest.int "x binds one character" 1 (Span.len s)
      | None -> Alcotest.fail "x unbound")
    got

(* ------------------------------------------------------------------ *)
(* Word-level primitives *)

let gen_bitset =
  QCheck2.Gen.(
    1 -- 80 >>= fun n ->
    list_size (0 -- n) (0 -- (n - 1)) >>= fun xs -> return (n, xs))

let prop_first_from =
  QCheck2.Test.make ~name:"Bitset.first_from ≡ naive scan" ~count:500 gen_bitset
    ~print:(fun (n, xs) -> Printf.sprintf "n=%d xs=[%s]" n (String.concat ";" (List.map string_of_int xs)))
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      let naive i =
        let rec go j = if j >= n then -1 else if Bitset.mem s j then j else go (j + 1) in
        go (max i 0)
      in
      List.for_all (fun i -> Bitset.first_from s i = naive i) (List.init (n + 2) (fun i -> i - 1)))

let prop_first_common_from =
  QCheck2.Test.make ~name:"Bitset.first_common_from ≡ first_from of the intersection"
    ~count:500
    QCheck2.Gen.(
      gen_bitset >>= fun (n, xs) ->
      list_size (0 -- n) (0 -- (n - 1)) >>= fun ys -> return (n, xs, ys))
    ~print:(fun (n, _, _) -> Printf.sprintf "n=%d" n)
    (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let i = Bitset.inter a b in
      List.for_all
        (fun k -> Bitset.first_common_from a b k = Bitset.first_from i k)
        (List.init (n + 2) (fun k -> k - 1)))

let prop_first_split_from =
  QCheck2.Test.make ~name:"Bitset.first_split_from ≡ first_from of (a∧c)∨(a∧d)∨(b∧d)"
    ~count:500
    QCheck2.Gen.(
      gen_bitset >>= fun (n, xs) ->
      list_size (0 -- n) (0 -- (n - 1)) >>= fun bs ->
      list_size (0 -- n) (0 -- (n - 1)) >>= fun cs ->
      list_size (0 -- n) (0 -- (n - 1)) >>= fun ds -> return (n, xs, bs, cs, ds))
    ~print:(fun (n, _, _, _, _) -> Printf.sprintf "n=%d" n)
    (fun (n, xs, bs, cs, ds) ->
      let a = Bitset.of_list n xs
      and b = Bitset.of_list n bs
      and c = Bitset.of_list n cs
      and d = Bitset.of_list n ds in
      let reference = Bitset.copy (Bitset.inter a c) in
      ignore (Bitset.union_into ~into:reference (Bitset.inter a d));
      ignore (Bitset.union_into ~into:reference (Bitset.inter b d));
      List.for_all
        (fun k -> Bitset.first_split_from a b c d k = Bitset.first_from reference k)
        (List.init (n + 2) (fun k -> k - 1)))

let gen_matrix =
  QCheck2.Gen.(
    1 -- 70 >>= fun n ->
    list_size (0 -- (2 * n)) (pair (0 -- (n - 1)) (0 -- (n - 1))) >>= fun cells ->
    return (n, cells))

let prop_transpose =
  QCheck2.Test.make ~name:"Bitmatrix.transpose: entries swap, involutive" ~count:500
    gen_matrix
    ~print:(fun (n, cells) -> Printf.sprintf "n=%d cells=%d" n (List.length cells))
    (fun (n, cells) ->
      let m = Bitmatrix.create n in
      List.iter (fun (i, j) -> Bitmatrix.set m i j) cells;
      let t = Bitmatrix.transpose m in
      let swapped = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Bitmatrix.get t i j <> Bitmatrix.get m j i then swapped := false
        done
      done;
      !swapped && Bitmatrix.equal (Bitmatrix.transpose t) m)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "delay"
    [
      ( "order",
        [
          QCheck_alcotest.to_alcotest prop_slp_cursor_order;
          QCheck_alcotest.to_alcotest prop_incr_cursor_order;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_stream_equals_compiled;
          QCheck_alcotest.to_alcotest prop_cde_stream;
          QCheck_alcotest.to_alcotest prop_packed_stream;
        ] );
      ( "budgets",
        [
          tc "tuple cap trips mid-stream" `Quick test_tuple_cap_trips_mid_stream;
          tc "dedup burns fuel" `Quick test_dedup_burns_fuel;
        ] );
      ( "robustness", [ tc "200k-deep chain pull" `Quick test_deep_chain_pull ] );
      ( "primitives",
        [
          QCheck_alcotest.to_alcotest prop_first_from;
          QCheck_alcotest.to_alcotest prop_first_common_from;
          QCheck_alcotest.to_alcotest prop_first_split_from;
          QCheck_alcotest.to_alcotest prop_transpose;
        ] );
    ]
