(* The zero-copy arena store (SLPAR1/SLPMF1, lib/store):

   - differential: for random builder-built and CDE-edited document
     databases, pack → open gives a frozen view equivalent to
     Slp.freeze on every accessor (structure walk, lengths,
     decompression) and on full Slp_spanner evaluation — including
     eval_all over the flat view;
   - sharded corpora: pack --shards N round-trips through the
     manifest, routes documents to their owning shard, and rejects
     overlapping shards;
   - hostile files: truncated headers, checksum mismatches,
     out-of-range offsets and malformed manifests all fail with a
     typed Corrupt_input — at open for header/table damage, at
     validate or first access for body damage;
   - the streaming SLPDB channel reader matches the in-memory
     reader. *)

open Spanner_core
module Limits = Spanner_util.Limits
module Slp = Spanner_slp.Slp
module Builder = Spanner_slp.Builder
module Balance = Spanner_slp.Balance
module Cde = Spanner_slp.Cde
module Doc_db = Spanner_slp.Doc_db
module Serialize = Spanner_slp.Serialize
module Slp_spanner = Spanner_slp.Slp_spanner
module Arena = Spanner_store.Arena
module Manifest = Spanner_store.Manifest
module Corpus = Spanner_store.Corpus

let check = Alcotest.check
let tc = Alcotest.test_case

let corrupt f =
  match f () with
  | _ -> Alcotest.fail "expected Corrupt_input"
  | exception Limits.Spanner_error (Limits.Corrupt_input _) -> ()

let with_tmp_dir f =
  let dir = Filename.temp_file "spanner_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Generators: a database of random documents under random builders,
   optionally reshaped by CDE edits *)

let builders =
  [|
    (fun store s -> Slp.of_string store s);
    (fun store s -> Builder.lz78 store s);
    (fun store s -> Builder.balanced_of_string store s);
    (fun store s -> Balance.rebalance store (Builder.lz78 store s));
  |]

type case = {
  docs : (string * int) list;  (* doc text, builder index *)
  edits : (int * int * int) list;  (* op tag, two position seeds *)
}

let gen_case =
  let open QCheck2.Gen in
  let doc = string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 30) in
  let* n = 1 -- 4 in
  let* texts = list_size (return n) (pair doc (0 -- (Array.length builders - 1))) in
  let* edits = list_size (0 -- 2) (triple (0 -- 3) (0 -- 1000) (0 -- 1000)) in
  return { docs = texts; edits }

let build_db case =
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  List.iteri
    (fun i (text, b) -> Doc_db.add db (Printf.sprintf "d%d" i) (builders.(b) store text))
    case.docs;
  (* CDE edits go through Balance.concat, which requires balanced
     operands — rebalance every doc before editing *)
  if case.edits <> [] then
    List.iteri
      (fun i _ ->
        let name = Printf.sprintf "d%d" i in
        Doc_db.add db name (Balance.rebalance store (Doc_db.find db name)))
      case.docs;
  (* edits re-designate d0, clamping positions into range *)
  List.iter
    (fun (op, p1, p2) ->
      let id = Doc_db.find db "d0" in
      let n = Slp.len store id in
      let i = 1 + (p1 mod n) in
      let j = i + (p2 mod (n - i + 1)) in
      let other = Printf.sprintf "d%d" (p2 mod List.length case.docs) in
      let e =
        match op with
        | 0 -> Cde.Concat (Cde.Doc "d0", Cde.Doc other)
        | 1 -> Cde.Extract (Cde.Doc "d0", i, j)
        | 2 -> Cde.Insert (Cde.Doc "d0", Cde.Doc other, i)
        | _ -> Cde.Copy (Cde.Doc "d0", i, j, i)
      in
      ignore (Cde.materialize db "d0" e))
    case.edits;
  db

let print_case c =
  String.concat "; "
    (List.mapi (fun i (t, b) -> Printf.sprintf "d%d=%S(b%d)" i t b) c.docs)
  ^ Printf.sprintf " edits=%d" (List.length c.edits)

let formulas =
  List.map Regex_formula.parse
    [ ".*!x{ab}.*"; ".*!x{a+}b.*"; ".*!x{!y{a}b*}.*"; ".*!x{(a|bc)+}.*" ]

(* structural equality modulo the pack renumbering *)
let same_structure store id_store arena_fz id_arena =
  let memo = Hashtbl.create 64 in
  let rec go a b =
    match Hashtbl.find_opt memo (a, b) with
    | Some r -> r
    | None ->
        let r =
          Slp.len store a = Slp.frozen_len arena_fz b
          &&
          match (Slp.node store a, Slp.frozen_node arena_fz b) with
          | Slp.Leaf c, Slp.Leaf c' -> c = c'
          | Slp.Pair (l, r), Slp.Pair (l', r') -> go l l' && go r r'
          | _ -> false
        in
        Hashtbl.add memo (a, b) r;
        r
  in
  go id_store id_arena

let prop_arena_equals_freeze =
  QCheck2.Test.make ~name:"pack→open arena ≡ Slp.freeze on every accessor" ~count:200
    gen_case ~print:print_case (fun case ->
      let db = build_db case in
      let store = Doc_db.store db in
      let docs = List.map (fun n -> (n, Doc_db.find db n)) (Doc_db.names db) in
      let a = Arena.of_string (Arena.pack_bytes store docs) in
      Arena.validate a;
      let fz = Arena.frozen_view a in
      Arena.node_count a = Slp.frozen_size fz
      && List.for_all
           (fun (name, id) ->
             match Arena.find a name with
             | None -> false
             | Some root ->
                 same_structure store id fz root
                 && Slp.to_string store id = Slp.frozen_to_string fz root)
           docs)

let prop_arena_eval_equals_heap =
  QCheck2.Test.make ~name:"Slp_spanner over arena view ≡ over Slp.freeze" ~count:100
    gen_case ~print:print_case (fun case ->
      let db = build_db case in
      let store = Doc_db.store db in
      let docs = List.map (fun n -> (n, Doc_db.find db n)) (Doc_db.names db) in
      let a = Arena.of_string (Arena.pack_bytes store docs) in
      let fz = Arena.frozen_view a in
      List.for_all
        (fun f ->
          let ct = Compiled.of_formula f in
          let heap = Slp_spanner.of_compiled ct store in
          let flat = Slp_spanner.of_frozen ct fz in
          let arena_roots =
            Array.of_list (List.map (fun (n, _) -> Option.get (Arena.find a n)) docs)
          in
          let flat_all = Slp_spanner.eval_all flat arena_roots in
          List.for_all
            (fun (i, (_, id)) ->
              let expected = Slp_spanner.to_relation heap id in
              Span_relation.equal expected
                (Slp_spanner.to_relation flat arena_roots.(i))
              &&
              match flat_all.(i) with
              | Ok r -> Span_relation.equal expected r
              | Error _ -> false)
            (List.mapi (fun i d -> (i, d)) docs))
        formulas)

(* ------------------------------------------------------------------ *)
(* Sharded corpora *)

let sample_db () =
  let db = Doc_db.create () in
  List.iter
    (fun (n, t) -> ignore (Doc_db.add_string db n t))
    [
      ("alpha", "abcabcabc");
      ("beta", "aaaaabbbbb");
      ("gamma", "cabcabca");
      ("delta", "abababab");
      ("eps", "ccccc");
    ];
  db

let corpus_round_trip () =
  let db = sample_db () in
  List.iter
    (fun shards ->
      with_tmp_dir (fun dir ->
          let path = Filename.concat dir "corpus" in
          let written = Corpus.pack db ~shards path in
          check Alcotest.int "written files" (if shards = 1 then 1 else shards + 1)
            (List.length written);
          let c = Corpus.open_path path in
          check Alcotest.int "shards" shards (Corpus.shard_count c);
          check Alcotest.int "docs" 5 (Corpus.doc_count c);
          check Alcotest.int "total_len" (Doc_db.total_len db) (Corpus.total_len c);
          Array.iter (fun a -> Arena.validate a) (Corpus.shards c);
          List.iter
            (fun name ->
              match Corpus.find c name with
              | None -> Alcotest.failf "document %s lost" name
              | Some (si, root) ->
                  let a = (Corpus.shards c).(si) in
                  check Alcotest.string
                    (Printf.sprintf "%s text (%d shards)" name shards)
                    (Slp.to_string (Doc_db.store db) (Doc_db.find db name))
                    (Slp.frozen_to_string (Arena.frozen_view a) root))
            (Doc_db.names db)))
    [ 1; 2; 3; 5; 7 ]

let corpus_overlap_rejected () =
  let db = sample_db () in
  let store = Doc_db.store db in
  let docs = [ ("alpha", Doc_db.find db "alpha") ] in
  let a1 = Arena.of_string (Arena.pack_bytes store docs) in
  let a2 = Arena.of_string (Arena.pack_bytes store docs) in
  corrupt (fun () -> Corpus.of_arenas [| a1; a2 |])

let manifest_hostile () =
  check Alcotest.(list string) "round trip" [ "a.slpar"; "b.slpar" ]
    (Manifest.of_string (Manifest.to_string [ "a.slpar"; "b.slpar" ]));
  corrupt (fun () -> Manifest.of_string "");
  corrupt (fun () -> Manifest.of_string "SLPDB1\nshard a");
  corrupt (fun () -> Manifest.of_string "SLPMF1\n");
  corrupt (fun () -> Manifest.of_string "SLPMF1\nshard a\nshard a\n");
  corrupt (fun () -> Manifest.of_string "SLPMF1\ngarbage line\n")

(* ------------------------------------------------------------------ *)
(* Hostile arenas *)

let valid_arena_bytes () =
  let db = sample_db () in
  Arena.pack_bytes (Doc_db.store db)
    (List.map (fun n -> (n, Doc_db.find db n)) (Doc_db.names db))

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let arena_hostile_open () =
  let v = valid_arena_bytes () in
  (* truncated header *)
  corrupt (fun () -> Arena.of_string (String.sub v 0 32));
  corrupt (fun () -> Arena.of_string "");
  (* misaligned *)
  corrupt (fun () -> Arena.of_string (v ^ "xyz"));
  (* bad magic *)
  corrupt (fun () -> Arena.of_string (flip v 0));
  (* header field damage → header checksum mismatch *)
  corrupt (fun () -> Arena.of_string (flip v 17));
  (* truncation to an aligned size → geometry mismatch *)
  corrupt (fun () -> Arena.of_string (String.sub v 0 (String.length v - 8)))

let arena_hostile_body () =
  let v = valid_arena_bytes () in
  let a = Arena.of_string v in
  let n = Arena.node_count a and d = Array.length (Arena.docs a) in
  (* doc-table damage is caught at open: flip a root word *)
  let roots_byte = 8 * (8 + (3 * n) + 256) in
  corrupt (fun () -> Arena.of_string (flip v (roots_byte + 2)));
  (* name-offset damage: point a name outside the blob *)
  let noff_byte = 8 * (8 + (3 * n) + 256 + d) in
  corrupt (fun () -> Arena.of_string (flip v (noff_byte + 3)));
  (* node-column damage is NOT caught at open (O(1) load)… *)
  let left_byte = 8 * 8 in
  let damaged = Arena.of_string (flip v (left_byte + 1)) in
  (* …but the flat accessors and validate both catch it *)
  corrupt (fun () -> Arena.validate damaged);
  let fz = Arena.frozen_view damaged in
  let survives_or_typed id =
    match Slp.frozen_node fz id with
    | _ -> ()
    | exception Limits.Spanner_error (Limits.Corrupt_input _) -> ()
  in
  for id = 0 to Arena.node_count damaged - 1 do
    survives_or_typed id
  done;
  (* body checksum alone (flip a len word to another plausible value) *)
  let len_byte = 8 * (8 + (2 * n)) in
  let subtle = flip v (len_byte + 1) in
  corrupt (fun () -> Arena.validate (Arena.of_string subtle))

let arena_file_round_trip () =
  with_tmp_dir (fun dir ->
      let db = sample_db () in
      let docs = List.map (fun n -> (n, Doc_db.find db n)) (Doc_db.names db) in
      let path = Filename.concat dir "one.slpar" in
      Arena.write_file (Doc_db.store db) docs path;
      let a = Arena.openfile path in
      Arena.validate a;
      check Alcotest.int "mapped = file size" (Unix.stat path).Unix.st_size
        (Arena.mapped_bytes a);
      check Alcotest.bool "resident after touch" true (Arena.resident_bytes a >= 0);
      List.iter
        (fun (name, id) ->
          check Alcotest.string name
            (Slp.to_string (Doc_db.store db) id)
            (Slp.frozen_to_string (Arena.frozen_view a) (Option.get (Arena.find a name))))
        docs;
      (* byte→leaf table resolves every character of the corpus *)
      String.iter
        (fun c ->
          match Arena.leaf a c with
          | Some id -> (
              match Slp.frozen_node (Arena.frozen_view a) id with
              | Slp.Leaf c' -> check Alcotest.char "leaf" c c'
              | _ -> Alcotest.fail "byte table points at a pair")
          | None -> Alcotest.fail "missing leaf")
        "abc")

(* ------------------------------------------------------------------ *)
(* Streaming SLPDB channel reader *)

let read_channel_matches () =
  with_tmp_dir (fun dir ->
      let db = sample_db () in
      let path = Filename.concat dir "db.slpdb" in
      Serialize.write_file db path;
      let via_file = Serialize.read_file path in
      let via_string =
        Serialize.read_string (In_channel.with_open_bin path In_channel.input_all)
      in
      List.iter2
        (fun n n' ->
          check Alcotest.string "name" n n';
          check Alcotest.string "text"
            (Slp.to_string (Doc_db.store via_file) (Doc_db.find via_file n))
            (Slp.to_string (Doc_db.store via_string) (Doc_db.find via_string n')))
        (Doc_db.names via_file) (Doc_db.names via_string);
      (* a truncated file still fails typed through the buffered path *)
      let whole = In_channel.with_open_bin path In_channel.input_all in
      let cut = Filename.concat dir "cut.slpdb" in
      Out_channel.with_open_bin cut (fun oc ->
          Out_channel.output_string oc (String.sub whole 0 (String.length whole - 3)));
      corrupt (fun () -> Serialize.read_file cut);
      (* and an unseekable source (a pipe) parses identically *)
      let r, w = Unix.pipe () in
      let writer =
        Thread.create
          (fun () ->
            let oc = Unix.out_channel_of_descr w in
            Out_channel.output_string oc whole;
            Out_channel.close oc)
          ()
      in
      let ic = Unix.in_channel_of_descr r in
      let via_pipe = Serialize.read_channel ic in
      Thread.join writer;
      In_channel.close ic;
      check
        Alcotest.(list string)
        "pipe names" (Doc_db.names via_file) (Doc_db.names via_pipe))

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ("differential", to_alcotest [ prop_arena_equals_freeze; prop_arena_eval_equals_heap ]);
      ( "corpus",
        [
          tc "pack/open round trip, 1..7 shards" `Quick corpus_round_trip;
          tc "overlapping shards rejected" `Quick corpus_overlap_rejected;
          tc "hostile manifests" `Quick manifest_hostile;
        ] );
      ( "hostile",
        [
          tc "header damage fails at open" `Quick arena_hostile_open;
          tc "body damage fails typed at access/validate" `Quick arena_hostile_body;
        ] );
      ( "files",
        [
          tc "arena file round trip" `Quick arena_file_round_trip;
          tc "streaming SLPDB reader" `Quick read_channel_matches;
        ] );
    ]
