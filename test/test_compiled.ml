(* Differential tests for the compiled evaluation engine:

   - Compiled = Reference (the pre-compilation enumeration engine) on
     random (spanner, document) pairs — same relation, duplicate-free,
     same cardinality; both for raw and determinised automata (the
     latter exercises the dense single-target letter table).
   - Batch evaluation is deterministic: eval_all with 1 domain equals
     eval_all with 4 domains, element by element.
   - The Charset table/byte-class helpers and the domain pool that the
     engine is built on. *)

open Spanner_core
module Charset = Spanner_fa.Charset
module Pool = Spanner_util.Pool

let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Generators (same shapes as test_props) *)

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 25))

let gen_formula =
  let open QCheck2.Gen in
  let gen_plain =
    oneofl
      [
        Regex_formula.char 'a';
        Regex_formula.char 'b';
        Regex_formula.char 'c';
        Regex_formula.chars (Charset.of_string "ab");
        Regex_formula.chars Charset.full;
        Regex_formula.star (Regex_formula.char 'a');
        Regex_formula.star (Regex_formula.chars (Charset.of_string "abc"));
        Regex_formula.plus (Regex_formula.char 'b');
        Regex_formula.opt (Regex_formula.char 'c');
        Regex_formula.epsilon;
      ]
  in
  let rec gen_with_vars pool depth =
    if depth = 0 || pool = [] then gen_plain
    else
      frequency
        [
          (3, gen_plain);
          ( 2,
            match pool with
            | x :: rest ->
                gen_with_vars rest (depth - 1) >>= fun body ->
                return (Regex_formula.bind x body)
            | [] -> gen_plain );
          ( 2,
            let left_pool, right_pool =
              List.partition (fun x -> Variable.id x mod 2 = 0) pool
            in
            gen_with_vars left_pool (depth - 1) >>= fun l ->
            gen_with_vars right_pool (depth - 1) >>= fun r ->
            return (Regex_formula.concat l r) );
          ( 1,
            gen_with_vars pool (depth - 1) >>= fun l ->
            gen_with_vars pool (depth - 1) >>= fun r -> return (Regex_formula.alt l r) );
          ( 1,
            gen_with_vars [] (depth - 1) >>= fun body -> return (Regex_formula.star body) );
        ]
  in
  gen_with_vars [ v "x"; v "y"; v "z" ] 3 >>= fun f ->
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Charset.full))
       (Regex_formula.concat f
          (Regex_formula.star (Regex_formula.chars Charset.full))))

let gen_pair = QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))

let print_pair (f, doc) = Printf.sprintf "%s on %S" (Regex_formula.to_string f) doc

(* ------------------------------------------------------------------ *)
(* Compiled vs reference equivalence *)

(* One check of compiled-vs-reference on a single automaton: equal
   relations, equal O(1) cardinal, and duplicate-free enumeration. *)
let agrees e doc =
  let reference = Enumerate.Reference.to_relation e doc in
  let ct = Compiled.of_evset e in
  let p = Compiled.prepare ct doc in
  let enumerated = ref 0 in
  let r = ref (Span_relation.empty (Compiled.vars ct)) in
  Compiled.iter p (fun t ->
      incr enumerated;
      r := Span_relation.add !r t);
  Span_relation.equal !r reference
  && Compiled.cardinal p = Span_relation.cardinal reference
  && !enumerated = Span_relation.cardinal reference

let prop_compiled_equals_reference =
  QCheck2.Test.make ~name:"compiled = reference enumeration (random formulas/documents)"
    ~count:700 gen_pair ~print:print_pair
    (fun (f, doc) -> agrees (Evset.of_formula f) doc)

let prop_compiled_equals_reference_det =
  QCheck2.Test.make
    ~name:"compiled = reference on determinised automata (dense letter table)" ~count:400
    gen_pair ~print:print_pair
    (fun (f, doc) ->
      let e = Evset.determinize (Evset.of_formula f) in
      let ct = Compiled.of_evset e in
      Compiled.is_letter_deterministic ct && agrees e doc)

let prop_compiled_stats_agree =
  QCheck2.Test.make ~name:"compiled product DAG = wrapper product DAG (stats, cardinal)"
    ~count:200 gen_pair ~print:print_pair
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      let via_wrapper = Enumerate.prepare e doc in
      let direct = Compiled.prepare (Compiled.of_evset e) doc in
      let s1 = Enumerate.stats via_wrapper and s2 = Compiled.stats direct in
      s1.Enumerate.nodes = s2.Compiled.nodes
      && s1.Enumerate.edges = s2.Compiled.edges
      && s1.Enumerate.boundaries = s2.Compiled.boundaries
      && Enumerate.cardinal via_wrapper = Compiled.cardinal direct)

(* ------------------------------------------------------------------ *)
(* Parallel batch determinism *)

let prop_eval_all_deterministic =
  QCheck2.Test.make ~name:"eval_all: 1 domain = 4 domains, element by element" ~count:60
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      list_size (1 -- 8) gen_doc >>= fun docs -> return (f, docs))
    ~print:(fun (f, docs) ->
      Printf.sprintf "%s on %d docs" (Regex_formula.to_string f) (List.length docs))
    (fun (f, docs) ->
      let ct = Compiled.of_formula f in
      let docs = Array.of_list docs in
      let seq = Compiled.eval_all ~jobs:1 ct docs in
      let par = Compiled.eval_all ~jobs:4 ct docs in
      Array.length seq = Array.length par
      && Array.for_all2 Span_relation.equal seq par)

(* ------------------------------------------------------------------ *)
(* Charset helpers *)

let gen_charset =
  QCheck2.Gen.(
    list_size (0 -- 3)
      (oneofl
         [
           Charset.of_string "ab";
           Charset.of_string "abc";
           Charset.range 'a' 'z';
           Charset.range '0' '9';
           Charset.singleton 'x';
           Charset.full;
           Charset.empty;
           Charset.complement (Charset.of_string "b");
         ])
    >>= fun sets -> return (List.fold_left Charset.union Charset.empty sets))

let prop_to_table =
  QCheck2.Test.make ~name:"charset: to_table = mem on all 256 bytes" ~count:200 gen_charset
    (fun cs ->
      let table = Charset.to_table cs in
      List.for_all
        (fun code -> table.(code) = Charset.mem cs (Char.chr code))
        (List.init 256 Fun.id))

let prop_byte_classes =
  QCheck2.Test.make ~name:"charset: byte classes never split a charset" ~count:100
    QCheck2.Gen.(list_size (0 -- 5) gen_charset)
    (fun sets ->
      let class_of, count = Charset.byte_classes sets in
      count >= 1
      && Array.for_all (fun c -> c >= 0 && c < count) class_of
      (* same class => same membership in every charset *)
      && List.for_all
           (fun code ->
             List.for_all
               (fun code' ->
                 class_of.(code) <> class_of.(code')
                 || List.for_all
                      (fun cs ->
                        Charset.mem cs (Char.chr code) = Charset.mem cs (Char.chr code'))
                      sets)
               (List.init 256 Fun.id))
           (List.init 256 Fun.id))

(* ------------------------------------------------------------------ *)
(* Domain pool *)

let prop_pool_map =
  QCheck2.Test.make ~name:"pool: map = Array.map for any job count" ~count:100
    QCheck2.Gen.(
      pair (array_size (0 -- 40) (int_bound 1000)) (int_range 1 6))
    (fun (a, jobs) ->
      Pool.map ~jobs (fun x -> (x * x) + 1) a = Array.map (fun x -> (x * x) + 1) a
      && Pool.mapi ~jobs (fun i x -> i + x) a = Array.mapi (fun i x -> i + x) a)

let test_pool_exception () =
  let raised =
    try
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 17 then failwith "boom" else x)
           (Array.init 100 Fun.id));
      false
    with Failure msg -> msg = "boom"
  in
  Alcotest.(check bool) "exception propagates" true raised

let test_batch_example () =
  (* Example 1.1's spanner over a few concrete documents. *)
  let ct = Compiled.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  let docs = [| "ababbab"; "abab"; ""; "bbbb" |] in
  let rs = Compiled.eval_all ~jobs:2 ct docs in
  Alcotest.(check (list int))
    "per-document cardinalities" [ 4; 2; 0; 4 ]
    (Array.to_list (Array.map Span_relation.cardinal rs))

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "compiled"
    [
      ( "equivalence",
        to_alcotest
          [
            prop_compiled_equals_reference;
            prop_compiled_equals_reference_det;
            prop_compiled_stats_agree;
          ] );
      ("batch", to_alcotest [ prop_eval_all_deterministic ]);
      ( "tables",
        to_alcotest [ prop_to_table; prop_byte_classes; prop_pool_map ]
        @ [
            Alcotest.test_case "pool exception" `Quick test_pool_exception;
            Alcotest.test_case "batch example" `Quick test_batch_example;
          ] );
    ]
