(* Smoke test for the serve subsystem: start a real server on a unix
   socket, run one define/load/query round over a client connection,
   shut down cleanly.  Wired into `dune runtest` via the @serve-smoke
   alias; finishes in well under a second. *)

open Spanner_serve

let () =
  let path = Printf.sprintf "/tmp/spanner-smoke-%d.sock" (Unix.getpid ()) in
  let config =
    { (Server.default_config (Server.Unix_socket path)) with Server.workers = Some 2; queue = 8 }
  in
  let server = Server.start config in
  let c = Client.connect (Server.Unix_socket path) in
  let req payload = Client.request c payload in
  List.iter print_endline (req "DEFINE q\n[ab]*!x{ab}[ab]*");
  List.iter print_endline (req "LOAD s DOC d\nabab");
  List.iter print_endline (req "QUERY q s d");
  List.iter print_endline (req "QUERY q s d format=count");
  List.iter print_endline (req "SHUTDOWN");
  Client.close c;
  Server.wait server;
  assert (not (Sys.file_exists path));
  print_endline "serve smoke: ok"
