(* Tests for the SLP layer (§4): node store, builders, Figure 1,
   balancing (§4.1), CDE editing (§4.3), NFA acceptance via matrices
   (§4.2), and compressed spanner enumeration (§4.2). *)

open Spanner_core
open Spanner_slp
module X = Spanner_util.Xoshiro
module Regex = Spanner_fa.Regex
module Nfa = Spanner_fa.Nfa

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Store *)

let store_hashcons () =
  let store = Slp.create_store () in
  let a = Slp.leaf store 'a' and b = Slp.leaf store 'b' in
  check Alcotest.int "leaves interned" a (Slp.leaf store 'a');
  let p1 = Slp.pair store a b and p2 = Slp.pair store a b in
  check Alcotest.int "pairs interned" p1 p2;
  check Alcotest.bool "different pair differs" true (Slp.pair store b a <> p1);
  check Alcotest.int "len leaf" 1 (Slp.len store a);
  check Alcotest.int "len pair" 2 (Slp.len store p1);
  check Alcotest.int "order leaf" 1 (Slp.order store a);
  check Alcotest.int "order pair" 2 (Slp.order store p1);
  check Alcotest.int "balance" 0 (Slp.balance store p1)

let store_access () =
  let store = Slp.create_store () in
  let id = Slp.of_string store "hello world" in
  check Alcotest.string "to_string" "hello world" (Slp.to_string store id);
  check Alcotest.char "char_at 1" 'h' (Slp.char_at store id 1);
  check Alcotest.char "char_at 5" 'o' (Slp.char_at store id 5);
  check Alcotest.char "char_at last" 'd' (Slp.char_at store id 11);
  check Alcotest.string "extract middle" "lo wo" (Slp.extract_string store id 4 9);
  check Alcotest.string "extract all" "hello world" (Slp.extract_string store id 1 12);
  check Alcotest.string "extract empty" "" (Slp.extract_string store id 3 3);
  Alcotest.check_raises "char_at out of range"
    (Invalid_argument "Slp.char_at: position 12 out of range (length 11)") (fun () ->
      ignore (Slp.char_at store id 12));
  Alcotest.check_raises "of_string empty" (Invalid_argument "Slp.of_string: empty document")
    (fun () -> ignore (Slp.of_string store ""))

(* ------------------------------------------------------------------ *)
(* Figure 1: exact reproduction *)

let figure1_documents () =
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  check Alcotest.string "D1" "ababbcabca" (Slp.to_string store fig.Figure1.a1);
  check Alcotest.string "D2" "bcabcaabbca" (Slp.to_string store fig.Figure1.a2);
  check Alcotest.string "D3" "ababbca" (Slp.to_string store fig.Figure1.a3);
  check Alcotest.string "B (eq. 4/5)" "abbca" (Slp.to_string store fig.Figure1.b);
  check Alcotest.string "via db" "ababbcabca" (Slp.to_string store (Doc_db.find fig.Figure1.db "D1"))

let figure1_orders () =
  (* §4.1: ord F = ord E = 2, ord C = 3, ord B = 4, ord D = ord A3 = 5,
     ord A1 = ord A2 = 6; all nodes balanced except A1 (2), A2, A3 (−2). *)
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  check Alcotest.int "ord F" 2 (Slp.order store fig.Figure1.f);
  check Alcotest.int "ord E" 2 (Slp.order store fig.Figure1.e);
  check Alcotest.int "ord C" 3 (Slp.order store fig.Figure1.c);
  check Alcotest.int "ord B" 4 (Slp.order store fig.Figure1.b);
  check Alcotest.int "ord D" 5 (Slp.order store fig.Figure1.d);
  check Alcotest.int "ord A3" 5 (Slp.order store fig.Figure1.a3);
  check Alcotest.int "ord A1" 6 (Slp.order store fig.Figure1.a1);
  check Alcotest.int "ord A2" 6 (Slp.order store fig.Figure1.a2);
  check Alcotest.int "bal A1" 2 (Slp.balance store fig.Figure1.a1);
  check Alcotest.int "bal A2" (-2) (Slp.balance store fig.Figure1.a2);
  check Alcotest.int "bal A3" (-2) (Slp.balance store fig.Figure1.a3);
  List.iter
    (fun node -> check Alcotest.bool "others balanced" true (abs (Slp.balance store node) <= 1))
    [ fig.Figure1.b; fig.Figure1.c; fig.Figure1.d; fig.Figure1.e; fig.Figure1.f ]

let figure1_extension () =
  (* §4.3 grey part: D4 = D2·D1 and D5 = 𝔇(B)𝔇(D)𝔇(B). *)
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  let a4, a5 = Figure1.extend fig in
  check Alcotest.string "D4" ("bcabcaabbca" ^ "ababbcabca") (Slp.to_string store a4);
  check Alcotest.string "D5" "abbcabcaabbcaabbca" (Slp.to_string store a5);
  check Alcotest.int "database grew" 5 (List.length (Doc_db.names fig.Figure1.db))

(* ------------------------------------------------------------------ *)
(* Builders *)

let builders_roundtrip () =
  let store = Slp.create_store () in
  let rng = X.create 99 in
  for _ = 1 to 30 do
    let s = X.string rng "abcd" (1 + X.int rng 300) in
    check Alcotest.string "balanced" s (Slp.to_string store (Builder.balanced_of_string store s));
    check Alcotest.string "lz78" s (Slp.to_string store (Builder.lz78 store s))
  done

let builders_compression () =
  let store = Slp.create_store () in
  let p = Builder.repeat store "ab" (1 lsl 14) in
  check Alcotest.int "power length" (1 lsl 15) (Slp.len store p);
  check Alcotest.bool "logarithmic size" true (Slp.reachable_size store p < 40);
  let fib = Builder.fibonacci store 25 in
  check Alcotest.int "fib length" 75025 (Slp.len store fib);
  check Alcotest.int "fib nodes" 25 (Slp.reachable_size store fib);
  (* lz78 on a repetitive string compresses well below n *)
  let s = String.concat "" (List.init 200 (fun _ -> "abcabc")) in
  let z = Builder.lz78 store s in
  check Alcotest.bool "lz78 compresses" true
    (Slp.reachable_size store z < String.length s / 2)

let builders_guards () =
  let store = Slp.create_store () in
  Alcotest.check_raises "power k=0" (Invalid_argument "Builder.power: exponent must be positive")
    (fun () -> ignore (Builder.power store (Slp.leaf store 'a') 0));
  Alcotest.check_raises "fibonacci k=0" (Invalid_argument "Builder.fibonacci: index must be positive")
    (fun () -> ignore (Builder.fibonacci store 0))

(* ------------------------------------------------------------------ *)
(* Balance (§4.1) *)

let balance_properties () =
  let store = Slp.create_store () in
  let rng = X.create 4 in
  for _ = 1 to 40 do
    let s1 = X.string rng "ab" (1 + X.int rng 100) in
    let s2 = X.string rng "ab" (1 + X.int rng 100) in
    let n1 = Builder.balanced_of_string store s1 in
    let n2 = Builder.balanced_of_string store s2 in
    let c = Balance.concat store n1 n2 in
    if Slp.to_string store c <> s1 ^ s2 then Alcotest.fail "concat content";
    if not (Slp.is_strongly_balanced store c) then Alcotest.fail "concat balance";
    let i = X.int rng (String.length s1 + String.length s2 + 1) in
    let l, r = Balance.split store c i in
    let sl = match l with None -> "" | Some l -> Slp.to_string store l in
    let sr = match r with None -> "" | Some r -> Slp.to_string store r in
    if sl ^ sr <> s1 ^ s2 then Alcotest.fail "split content";
    if String.length sl <> i then Alcotest.fail "split position";
    (match l with Some l when not (Slp.is_strongly_balanced store l) -> Alcotest.fail "split left balance" | _ -> ());
    (match r with Some r when not (Slp.is_strongly_balanced store r) -> Alcotest.fail "split right balance" | _ -> ())
  done

let balance_rebalance () =
  let store = Slp.create_store () in
  (* left comb: worst imbalance *)
  let comb = Slp.of_string store (String.init 200 (fun i -> if i mod 3 = 0 then 'a' else 'b')) in
  check Alcotest.bool "comb unbalanced" false (Slp.is_strongly_balanced store comb);
  let bal = Balance.rebalance store comb in
  check Alcotest.bool "rebalanced" true (Slp.is_strongly_balanced store bal);
  check Alcotest.string "same document" (Slp.to_string store comb) (Slp.to_string store bal);
  check Alcotest.bool "2-shallow (§4.1)" true (Slp.is_c_shallow store ~c:2.0 bal);
  let ord, log2 = Balance.depth_stats store bal in
  check Alcotest.bool "depth near log" true (ord <= (2 * log2) + 1)

let balance_extract () =
  let store = Slp.create_store () in
  let s = "the quick brown fox jumps over the lazy dog" in
  let id = Builder.balanced_of_string store s in
  check Alcotest.string "extract word" "quick" (Slp.to_string store (Balance.extract store id 5 9));
  check Alcotest.string "extract single" "t" (Slp.to_string store (Balance.extract store id 1 1));
  Alcotest.check_raises "empty extract"
    (Invalid_argument "Balance.extract: bad range [5..4] (length 43)") (fun () ->
      ignore (Balance.extract store id 5 4))

let figure1_rebalanced () =
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  let b1 = Balance.rebalance store fig.Figure1.a1 in
  check Alcotest.bool "A1 strongly balanced" true (Slp.is_strongly_balanced store b1);
  check Alcotest.string "A1 unchanged" "ababbcabca" (Slp.to_string store b1)

(* ------------------------------------------------------------------ *)
(* CDE (§4.3) *)

let cde_operations () =
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let store = Doc_db.store db in
  (* strongly balance the database first, as §4.3 requires *)
  List.iter
    (fun n -> Doc_db.add db n (Balance.rebalance store (Doc_db.find db n)))
    (Doc_db.names db);
  let lookup n = Slp.to_string store (Doc_db.find db n) in
  let check_expr name e =
    let got = Slp.to_string store (Cde.eval db e) in
    let want = Cde.reference_eval lookup e in
    check Alcotest.string name want got;
    check Alcotest.bool (name ^ " balance") true (Slp.is_strongly_balanced store (Cde.eval db e))
  in
  check_expr "concat" (Cde.Concat (Cde.Doc "D2", Cde.Doc "D1"));
  check_expr "extract" (Cde.Extract (Cde.Doc "D1", 3, 8));
  check_expr "delete middle" (Cde.Delete (Cde.Doc "D1", 2, 5));
  check_expr "delete prefix" (Cde.Delete (Cde.Doc "D1", 1, 5));
  check_expr "delete suffix" (Cde.Delete (Cde.Doc "D1", 6, 10));
  check_expr "insert front" (Cde.Insert (Cde.Doc "D3", Cde.Doc "D2", 1));
  check_expr "insert back" (Cde.Insert (Cde.Doc "D3", Cde.Doc "D2", 8));
  check_expr "insert middle" (Cde.Insert (Cde.Doc "D3", Cde.Doc "D2", 4));
  check_expr "copy" (Cde.Copy (Cde.Doc "D2", 2, 6, 9));
  (* the paper's running example: cut 5..21 of one document, insert at
     12 of another, append to a third *)
  let d4 = Cde.Concat (Cde.Doc "D1", Cde.Concat (Cde.Doc "D2", Cde.Doc "D3")) in
  check_expr "paper-style pipeline"
    (Cde.Concat (Cde.Doc "D1", Cde.Insert (Cde.Doc "D2", Cde.Extract (d4, 5, 21), 3)))

let cde_guards () =
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let store = Doc_db.store db in
  List.iter
    (fun n -> Doc_db.add db n (Balance.rebalance store (Doc_db.find db n)))
    (Doc_db.names db);
  Alcotest.check_raises "delete everything"
    (Invalid_argument "Cde.eval: delete would produce the empty document") (fun () ->
      ignore (Cde.eval db (Cde.Delete (Cde.Doc "D3", 1, 7))));
  (match Cde.eval db (Cde.Extract (Cde.Doc "D3", 1, 99)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "extract out of range should fail");
  check Alcotest.int "size of expr" 4 (Cde.size (Cde.Delete (Cde.Concat (Cde.Doc "a", Cde.Doc "b"), 1, 2)))

let cde_materialize () =
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let store = Doc_db.store db in
  List.iter
    (fun n -> Doc_db.add db n (Balance.rebalance store (Doc_db.find db n)))
    (Doc_db.names db);
  let id = Cde.materialize db "D9" (Cde.Concat (Cde.Doc "D1", Cde.Doc "D2")) in
  check Alcotest.int "registered" id (Doc_db.find db "D9");
  check Alcotest.bool "total_len" true (Doc_db.total_len db > 0);
  check Alcotest.bool "compressed_size positive" true (Doc_db.compressed_size db > 0)

let doc_db_replace () =
  (* re-designating an existing name must not double-count it *)
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  ignore (Doc_db.add_string db "d" "abcabc");
  ignore (Doc_db.add_string db "other" "bb");
  let id2 = Slp.of_string store "xyzw" in
  Doc_db.add db "d" id2;
  check Alcotest.(list string) "names not duplicated" [ "d"; "other" ] (Doc_db.names db);
  check Alcotest.int "find returns the replacement" id2 (Doc_db.find db "d");
  check Alcotest.int "total_len counts the replacement once" (4 + 2) (Doc_db.total_len db);
  (* compressed_size counts nodes reachable from the *current*
     designations only — same count as a db built directly with them *)
  let fresh = Doc_db.create () in
  Doc_db.add fresh "d" (Slp.of_string (Doc_db.store fresh) "xyzw");
  ignore (Doc_db.add_string fresh "other" "bb");
  check Alcotest.int "compressed_size = fresh db with final contents"
    (Doc_db.compressed_size fresh) (Doc_db.compressed_size db);
  (* replacing with the same id again is also idempotent *)
  Doc_db.add db "d" id2;
  check Alcotest.(list string) "still not duplicated" [ "d"; "other" ] (Doc_db.names db)

let cde_boundaries () =
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  ignore (Doc_db.add_string db "d" "abcde");
  let n = 5 in
  let d = Cde.Doc "d" in
  let s e = Slp.to_string store (Cde.eval db e) in
  (* positions 1 and |D| (and |D|+1 where an insertion point) are valid *)
  check Alcotest.string "extract [1..n]" "abcde" (s (Cde.Extract (d, 1, n)));
  check Alcotest.string "extract [n..n]" "e" (s (Cde.Extract (d, n, n)));
  check Alcotest.string "delete [1..1]" "bcde" (s (Cde.Delete (d, 1, 1)));
  check Alcotest.string "delete [n..n]" "abcd" (s (Cde.Delete (d, n, n)));
  check Alcotest.string "insert at 1" "abcdeabcde" (s (Cde.Insert (d, d, 1)));
  check Alcotest.string "insert at n+1" "abcdeabcde" (s (Cde.Insert (d, d, n + 1)));
  check Alcotest.string "copy to n+1" "abcdeab" (s (Cde.Copy (d, 1, 2, n + 1)));
  (* position |D|+1 in a range, position 0, and |D|+2 as an insertion
     point all fail, with the offending positions in the message *)
  Alcotest.check_raises "extract past end"
    (Invalid_argument "Cde.eval: extract range [1..6] out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Extract (d, 1, n + 1))));
  Alcotest.check_raises "extract at 0"
    (Invalid_argument "Cde.eval: extract range [0..3] out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Extract (d, 0, 3))));
  Alcotest.check_raises "extract inverted"
    (Invalid_argument "Cde.eval: extract range [4..2] out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Extract (d, 4, 2))));
  Alcotest.check_raises "delete past end"
    (Invalid_argument "Cde.eval: delete range [5..6] out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Delete (d, n, n + 1))));
  Alcotest.check_raises "insert past n+1"
    (Invalid_argument "Cde.eval: insert position 7 out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Insert (d, d, n + 2))));
  Alcotest.check_raises "insert at 0"
    (Invalid_argument "Cde.eval: insert position 0 out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Insert (d, d, 0))));
  Alcotest.check_raises "copy bad range"
    (Invalid_argument "Cde.eval: copy range [3..7] out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Copy (d, 3, n + 2, 1))));
  Alcotest.check_raises "copy bad position"
    (Invalid_argument "Cde.eval: copy position 7 out of bounds (length 5)") (fun () ->
      ignore (Cde.eval db (Cde.Copy (d, 1, 2, n + 2))))

let cde_parse () =
  let roundtrip e =
    let printed = Format.asprintf "%a" Cde.pp e in
    check Alcotest.bool (Printf.sprintf "roundtrip %s" printed) true (Cde.parse printed = e)
  in
  roundtrip (Cde.Doc "doc");
  roundtrip (Cde.Concat (Cde.Doc "a", Cde.Doc "b"));
  roundtrip (Cde.Extract (Cde.Doc "d", 1, 12));
  roundtrip (Cde.Delete (Cde.Concat (Cde.Doc "x", Cde.Doc "y"), 2, 3));
  roundtrip (Cde.Insert (Cde.Doc "d", Cde.Extract (Cde.Doc "d", 5, 9), 4));
  roundtrip (Cde.Copy (Cde.Insert (Cde.Doc "a", Cde.Doc "b", 1), 1, 2, 3));
  (* whitespace is free; negative integers parse (and fail later, in
     eval, with the offending positions) *)
  check Alcotest.bool "whitespace" true
    (Cde.parse " extract( d ,\n 1 , 2 ) " = Cde.Extract (Cde.Doc "d", 1, 2));
  check Alcotest.bool "negative int" true
    (Cde.parse "extract(d, -1, 2)" = Cde.Extract (Cde.Doc "d", -1, 2));
  Alcotest.check_raises "unknown operation"
    (Invalid_argument "Cde.parse: unknown operation \"frobnicate\" at offset 11") (fun () ->
      ignore (Cde.parse "frobnicate(d, 1, 2)"));
  Alcotest.check_raises "trailing input"
    (Invalid_argument "Cde.parse: trailing input at offset 17") (fun () ->
      ignore (Cde.parse "extract(d, 1, 2) x"));
  Alcotest.check_raises "missing paren"
    (Invalid_argument "Cde.parse: expected ')' at offset 15") (fun () ->
      ignore (Cde.parse "extract(d, 1, 2"));
  Alcotest.check_raises "non-integer argument"
    (Invalid_argument "Cde.parse: expected an integer, got \"one\" at offset 14") (fun () ->
      ignore (Cde.parse "extract(d, one, 2)"))

(* ------------------------------------------------------------------ *)
(* Accept (§4.2) *)

let accept_matches_decompression () =
  let store = Slp.create_store () in
  let rng = X.create 11 in
  let nfa = Nfa.of_regex (Regex.parse "[ab]*ab[ab]*") in
  let cache = Accept.make_cache nfa store in
  for _ = 1 to 40 do
    let s = X.string rng "ab" (1 + X.int rng 200) in
    let id = Builder.lz78 store s in
    let via_matrix = Accept.accepts cache id in
    let via_string = Accept.accepts_via_decompression nfa store id in
    if via_matrix <> via_string then Alcotest.failf "accept mismatch on %S" s
  done;
  check Alcotest.bool "cache populated" true (Accept.cached_nodes cache > 0)

let accept_exponential_doc () =
  let store = Slp.create_store () in
  (* (ab)^(2^20): two million characters, ~40 nodes *)
  let big = Builder.repeat store "ab" (1 lsl 20) in
  let nfa_even = Nfa.of_regex (Regex.parse "(ab)*") in
  let cache = Accept.make_cache nfa_even store in
  check Alcotest.bool "(ab)^n in (ab)*" true (Accept.accepts cache big);
  let nfa_odd = Nfa.of_regex (Regex.parse "(ab)*a") in
  let cache2 = Accept.make_cache nfa_odd store in
  check Alcotest.bool "not in (ab)*a" false (Accept.accepts cache2 big);
  check Alcotest.bool "few matrices" true (Accept.cached_nodes cache < 64)

let accept_incremental () =
  (* new CDE nodes only pay for themselves *)
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let store = Doc_db.store db in
  List.iter
    (fun n -> Doc_db.add db n (Balance.rebalance store (Doc_db.find db n)))
    (Doc_db.names db);
  let nfa = Nfa.of_regex (Regex.parse "[abc]*bca[abc]*") in
  let cache = Accept.make_cache nfa store in
  List.iter (fun n -> ignore (Accept.accepts cache (Doc_db.find db n))) (Doc_db.names db);
  let before = Accept.cached_nodes cache in
  let id = Cde.eval db (Cde.Concat (Cde.Doc "D1", Cde.Doc "D2")) in
  ignore (Accept.accepts cache id);
  let added = Accept.cached_nodes cache - before in
  check Alcotest.bool "few new matrices" true (added <= Slp.order store id + 2)

(* ------------------------------------------------------------------ *)
(* Slp_spanner (§4.2) *)

let slp_spanner_matches_oracle () =
  let store = Slp.create_store () in
  let rng = X.create 21 in
  let formulas =
    [ "[ab]*!x{a[ab]}[ab]*"; "!x{[ab]*}!y{b}!z{[ab]*}"; "a(!x{b})?[ab]*"; ".*!x{.}.*" ]
  in
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      let engine = Slp_spanner.create e store in
      for _ = 1 to 15 do
        let s = X.string rng "ab" (1 + X.int rng 40) in
        let id = Builder.lz78 store s in
        let via_slp = Slp_spanner.to_relation engine id in
        let oracle = Evset.eval e s in
        if not (Span_relation.equal via_slp oracle) then
          Alcotest.failf "slp_spanner differs from oracle: %s on %S" fs s;
        if Slp_spanner.cardinal engine id <> Span_relation.cardinal oracle then
          Alcotest.failf "cardinal differs: %s on %S" fs s
      done)
    formulas

let slp_spanner_duplicate_free () =
  let store = Slp.create_store () in
  let e = Evset.of_formula (Regex_formula.parse ".*!x{.*}.*") in
  let engine = Slp_spanner.create e store in
  let id = Builder.repeat store "ab" 4 in
  let seen = Hashtbl.create 64 in
  Slp_spanner.iter engine id (fun tuple ->
      let key = Format.asprintf "%a" Span_tuple.pp tuple in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate %s" key;
      Hashtbl.add seen key ());
  (* |D| = 8: 9·10/2 = 45 spans *)
  check Alcotest.int "all spans of (ab)^4" 45 (Hashtbl.length seen)

let slp_spanner_exponential_doc () =
  let store = Slp.create_store () in
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ba}[ab]*") in
  let engine = Slp_spanner.create e store in
  let big = Builder.repeat store "ab" (1 lsl 16) in
  Slp_spanner.prepare engine big;
  check Alcotest.int "count without enumeration" ((1 lsl 16) - 1)
    (Slp_spanner.cardinal engine big);
  check Alcotest.bool "matrices stay compressed" true (Slp_spanner.matrices_computed engine < 150);
  (* enumerate only a prefix: lazy via exception *)
  let seen = ref 0 in
  (try Slp_spanner.iter engine big (fun _ -> incr seen; if !seen >= 10 then raise Exit)
   with Exit -> ());
  check Alcotest.int "early exit" 10 !seen

let slp_spanner_shared_docs () =
  (* one engine over a document database: shared nodes shared in cache *)
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  let e = Evset.of_formula (Regex_formula.parse "[abc]*!x{bca}[abc]*") in
  let engine = Slp_spanner.create e store in
  List.iter
    (fun name ->
      let id = Doc_db.find fig.Figure1.db name in
      let doc = Slp.to_string store id in
      let oracle = Evset.eval e doc in
      if not (Span_relation.equal (Slp_spanner.to_relation engine id) oracle) then
        Alcotest.failf "mismatch on %s" name)
    (Doc_db.names fig.Figure1.db);
  check Alcotest.bool "vars" true (Variable.Set.mem (v "x") (Slp_spanner.vars engine))


(* ------------------------------------------------------------------ *)
(* Slp_hash: compressed fingerprints *)

let slp_hash_vs_strings () =
  let store = Slp.create_store () in
  let h = Slp_hash.create store in
  let rng = X.create 8 in
  for _ = 1 to 200 do
    let s = X.string rng "abc" (1 + X.int rng 120) in
    let id = Builder.lz78 store s in
    let n = String.length s in
    let i = 1 + X.int rng n in
    let j = i + X.int rng (n - i + 1) in
    let i' = 1 + X.int rng n in
    let j' = i' + X.int rng (n - i' + 1) in
    let want = String.sub s (i - 1) (j - i) = String.sub s (i' - 1) (j' - i') in
    if Slp_hash.factor_equal h id (i, j) (i', j') <> want then
      Alcotest.failf "fingerprint mismatch on %S [%d,%d) vs [%d,%d)" s i j i' j'
  done

let slp_hash_node_vs_factor () =
  let store = Slp.create_store () in
  let h = Slp_hash.create store in
  let id = Builder.balanced_of_string store "mississippi" in
  check Alcotest.bool "whole = factor(1..n+1)" true
    (Slp_hash.node_hash h id = Slp_hash.factor_hash h id 1 12);
  check Alcotest.bool "issi = issi" true (Slp_hash.factor_equal h id (2, 6) (5, 9));
  check Alcotest.bool "empty factors equal" true (Slp_hash.factor_equal h id (3, 3) (9, 9));
  check Alcotest.bool "different" false (Slp_hash.factor_equal h id (1, 4) (2, 5));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Slp_hash.factor_hash: bad range [5,20\xe2\x9f\xa9 (length 11)") (fun () ->
      ignore (Slp_hash.factor_hash h id 5 20));
  check Alcotest.bool "cache nonempty" true (Slp_hash.cached_nodes h > 0)

(* ------------------------------------------------------------------ *)
(* Slp_core: core spanners over compressed documents *)

let slp_core_vs_uncompressed () =
  let store = Slp.create_store () in
  let vsl = Variable.set_of_list in
  let core =
    Core_spanner.simplify
      (Algebra.Select (vsl [ v "x"; v "y" ], Algebra.formula "!x{[ab]+};!y{[ab]+};[ab;]*"))
  in
  let sc = Slp_core.create core store in
  let rng = X.create 12 in
  for _ = 1 to 30 do
    let f1 = X.string rng "ab" (1 + X.int rng 3) in
    let doc =
      f1 ^ ";"
      ^ (if X.bool rng then f1 else X.string rng "ab" (1 + X.int rng 3))
      ^ ";" ^ X.string rng "ab;" (X.int rng 10)
    in
    let id = Builder.lz78 store doc in
    let compressed = Slp_core.eval sc id in
    let reference = Core_spanner.eval core doc in
    if not (Span_relation.equal compressed reference) then
      Alcotest.failf "slp_core differs on %S" doc;
    if Slp_core.nonempty_on sc id <> not (Span_relation.is_empty reference) then
      Alcotest.failf "slp_core nonempty differs on %S" doc;
    if Slp_core.count sc id <> Span_relation.cardinal reference then
      Alcotest.failf "slp_core count differs on %S" doc
  done

let slp_core_compressed_win () =
  (* a large repetitive document evaluated without decompression *)
  let store = Slp.create_store () in
  let vsl = Variable.set_of_list in
  let core =
    Core_spanner.simplify
      (Algebra.Select (vsl [ v "x"; v "y" ], Algebra.formula "!x{[ab]+};!y{[ab]+};[ab;]*"))
  in
  let sc = Slp_core.create core store in
  (* (ab;)^k: every adjacent field pair is equal *)
  let id = Builder.repeat store "ab;" 2000 in
  check Alcotest.bool "nonempty" true (Slp_core.nonempty_on sc id)



(* ------------------------------------------------------------------ *)
(* Serialize: on-disk document databases *)

let serialize_roundtrip () =
  let fig = Figure1.build () in
  let _ = Figure1.extend fig in
  let db = fig.Figure1.db in
  let path = Filename.temp_file "slpdb" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Serialize.write_file db path;
      let db' = Serialize.read_file path in
      check (Alcotest.list Alcotest.string) "names preserved" (Doc_db.names db) (Doc_db.names db');
      List.iter
        (fun name ->
          check Alcotest.string ("document " ^ name)
            (Slp.to_string (Doc_db.store db) (Doc_db.find db name))
            (Slp.to_string (Doc_db.store db') (Doc_db.find db' name)))
        (Doc_db.names db);
      (* sharing survives: compressed size identical *)
      check Alcotest.int "compressed size preserved" (Doc_db.compressed_size db)
        (Doc_db.compressed_size db'))

let serialize_large_roundtrip () =
  let db = Doc_db.create () in
  let rng = X.create 77 in
  ignore (Doc_db.add_string db "doc1" (X.string rng "abcd" 2000));
  (* a highly repetitive document dominates the total length, so the
     compressed file is smaller than the plain text *)
  ignore (Doc_db.add_string db "doc2" (String.concat "" (List.init 20000 (fun _ -> "abcabc"))));
  let path = Filename.temp_file "slpdb" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Serialize.write_file db path;
      let db' = Serialize.read_file path in
      List.iter
        (fun name ->
          check Alcotest.string name
            (Slp.to_string (Doc_db.store db) (Doc_db.find db name))
            (Slp.to_string (Doc_db.store db') (Doc_db.find db' name)))
        (Doc_db.names db);
      (* the file is much smaller than the repetitive document *)
      let stat = open_in_bin path in
      let file_size = in_channel_length stat in
      close_in stat;
      check Alcotest.bool "file smaller than plain text" true
        (file_size < Doc_db.total_len db))

let serialize_errors () =
  let path = Filename.temp_file "slpdb" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTSLP!";
      close_out oc;
      match Serialize.read_file path with
      | exception Spanner_util.Limits.Spanner_error (Spanner_util.Limits.Corrupt_input _) -> ()
      | _ -> Alcotest.fail "bad magic accepted")

let () =
  Alcotest.run "slp"
    [
      ("store", [ tc "hash-consing" `Quick store_hashcons; tc "access" `Quick store_access ]);
      ( "figure1",
        [
          tc "documents" `Quick figure1_documents;
          tc "orders and balances (§4.1)" `Quick figure1_orders;
          tc "grey extension (§4.3)" `Quick figure1_extension;
        ] );
      ( "builders",
        [
          tc "roundtrip" `Quick builders_roundtrip;
          tc "compression" `Quick builders_compression;
          tc "guards" `Quick builders_guards;
        ] );
      ( "balance",
        [
          tc "concat/split properties" `Quick balance_properties;
          tc "rebalance" `Quick balance_rebalance;
          tc "extract" `Quick balance_extract;
          tc "figure1 rebalanced" `Quick figure1_rebalanced;
        ] );
      ( "cde",
        [
          tc "operations vs reference" `Quick cde_operations;
          tc "guards" `Quick cde_guards;
          tc "materialize" `Quick cde_materialize;
          tc "replacing a designation" `Quick doc_db_replace;
          tc "boundary positions" `Quick cde_boundaries;
          tc "parse" `Quick cde_parse;
        ] );
      ( "accept",
        [
          tc "matches decompression" `Quick accept_matches_decompression;
          tc "exponentially compressed document" `Quick accept_exponential_doc;
          tc "incremental after CDE" `Quick accept_incremental;
        ] );
      ( "serialize",
        [
          tc "figure1 roundtrip" `Quick serialize_roundtrip;
          tc "large database roundtrip" `Quick serialize_large_roundtrip;
          tc "bad input rejected" `Quick serialize_errors;
        ] );
      ( "slp_hash",
        [
          tc "fingerprints vs strings" `Quick slp_hash_vs_strings;
          tc "node/factor consistency" `Quick slp_hash_node_vs_factor;
        ] );
      ( "slp_core",
        [
          tc "core spanner over SLP vs uncompressed" `Quick slp_core_vs_uncompressed;
          tc "nonempty without decompression" `Quick slp_core_compressed_win;
        ] );
      ( "slp_spanner",
        [
          tc "matches oracle" `Quick slp_spanner_matches_oracle;
          tc "duplicate free" `Quick slp_spanner_duplicate_free;
          tc "exponentially compressed document" `Quick slp_spanner_exponential_doc;
          tc "document database sharing" `Quick slp_spanner_shared_docs;
        ] );
    ]
