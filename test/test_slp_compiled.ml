(* Differential tests for the compressed-domain evaluation engine
   (Slp_spanner on Compiled tables):

   - Slp_spanner = Compiled on the decompressed text, over random
     formulas, random documents, and random SLP builders — including
     heavily-shared stores (many documents in one store) and stores
     grown by CDE editing;
   - the Figure 1 exact-sharing property: evaluating D3 after D1
     computes 0 new matrices;
   - Doc_db.eval_all: `Compressed = `Decompress = per-file Compiled,
     deterministic across domain counts, partial-failure semantics,
     and metered decompression on the legacy path;
   - the deep-SLP regression: preparation and decompression survive a
     10⁶-deep chain SLP (the recursive engine overflowed the stack). *)

open Spanner_core
open Spanner_slp
module Limits = Spanner_util.Limits

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Generators (formula shape shared with test_compiled) *)

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 25))

let gen_formula =
  let open QCheck2.Gen in
  let gen_plain =
    oneofl
      [
        Regex_formula.char 'a';
        Regex_formula.char 'b';
        Regex_formula.char 'c';
        Regex_formula.chars (Spanner_fa.Charset.of_string "ab");
        Regex_formula.chars Spanner_fa.Charset.full;
        Regex_formula.star (Regex_formula.char 'a');
        Regex_formula.star (Regex_formula.chars (Spanner_fa.Charset.of_string "abc"));
        Regex_formula.plus (Regex_formula.char 'b');
        Regex_formula.opt (Regex_formula.char 'c');
        Regex_formula.epsilon;
      ]
  in
  let rec gen_with_vars pool depth =
    if depth = 0 || pool = [] then gen_plain
    else
      frequency
        [
          (3, gen_plain);
          ( 2,
            match pool with
            | x :: rest ->
                gen_with_vars rest (depth - 1) >>= fun body ->
                return (Regex_formula.bind x body)
            | [] -> gen_plain );
          ( 2,
            let left_pool, right_pool =
              List.partition (fun x -> Variable.id x mod 2 = 0) pool
            in
            gen_with_vars left_pool (depth - 1) >>= fun l ->
            gen_with_vars right_pool (depth - 1) >>= fun r ->
            return (Regex_formula.concat l r) );
          ( 1,
            gen_with_vars pool (depth - 1) >>= fun l ->
            gen_with_vars pool (depth - 1) >>= fun r -> return (Regex_formula.alt l r) );
          ( 1,
            gen_with_vars [] (depth - 1) >>= fun body -> return (Regex_formula.star body) );
        ]
  in
  gen_with_vars [ v "x"; v "y"; v "z" ] 3 >>= fun f ->
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Spanner_fa.Charset.full))
       (Regex_formula.concat f
          (Regex_formula.star (Regex_formula.chars Spanner_fa.Charset.full))))

(* An SLP for a given document, by a random builder: the degenerate
   left comb, LZ78, the balanced builder, and rebalanced LZ78 all
   derive the same text with very different DAG shapes. *)
let builders =
  [|
    ("of_string", fun store s -> Slp.of_string store s);
    ("lz78", fun store s -> Builder.lz78 store s);
    ("balanced", fun store s -> Builder.balanced_of_string store s);
    ("lz78+rebalance", fun store s -> Balance.rebalance store (Builder.lz78 store s));
  |]

let gen_builder = QCheck2.Gen.(0 -- (Array.length builders - 1))

let print_case (f, doc, b) =
  Printf.sprintf "%s on %S (%s)" (Regex_formula.to_string f) doc (fst builders.(b))

(* ------------------------------------------------------------------ *)
(* Slp_spanner vs Compiled on the decompressed text *)

let prop_slp_equals_compiled =
  QCheck2.Test.make
    ~name:"slp engine = compiled on decompressed text (random formulas/docs/builders)"
    ~count:400
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      gen_doc >>= fun doc ->
      gen_builder >>= fun b -> return (f, doc, b))
    ~print:print_case
    (fun (f, doc, b) ->
      let store = Slp.create_store () in
      let id = (snd builders.(b)) store doc in
      let e = Evset.of_formula f in
      let engine = Slp_spanner.create e store in
      let oracle = Compiled.eval (Compiled.of_formula f) doc in
      (* deterministic engine: runs are bijective with tuples *)
      let enumerated = ref 0 in
      let r = ref (Span_relation.empty (Slp_spanner.vars engine)) in
      Slp_spanner.iter engine id (fun t ->
          incr enumerated;
          r := Span_relation.add !r t);
      Span_relation.equal !r oracle
      && !enumerated = Span_relation.cardinal oracle
      && Slp_spanner.cardinal engine id = Span_relation.cardinal oracle)

let prop_of_compiled_nondeterministic =
  QCheck2.Test.make
    ~name:"of_compiled (non-deterministic tables): relation still exact" ~count:200
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      gen_doc >>= fun doc ->
      gen_builder >>= fun b -> return (f, doc, b))
    ~print:print_case
    (fun (f, doc, b) ->
      let store = Slp.create_store () in
      let id = (snd builders.(b)) store doc in
      let ct = Compiled.of_formula f in
      let engine = Slp_spanner.of_compiled ct store in
      Span_relation.equal (Slp_spanner.to_relation engine id) (Compiled.eval ct doc))

(* Heavily-shared store: many documents in one store and one engine,
   interleaving preparation — matrices of shared nodes must stay
   valid as the store grows. *)
let prop_shared_store =
  QCheck2.Test.make ~name:"one engine over a growing shared store" ~count:100
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      list_size (2 -- 5) gen_doc >>= fun docs -> return (f, docs))
    ~print:(fun (f, docs) ->
      Printf.sprintf "%s on %d docs" (Regex_formula.to_string f) (List.length docs))
    (fun (f, docs) ->
      let store = Slp.create_store () in
      let e = Evset.of_formula f in
      let engine = Slp_spanner.create e store in
      let ct = Compiled.of_formula f in
      List.for_all
        (fun doc ->
          (* nodes are added after the engine last prepared: exercises
             the snapshot/array refresh *)
          let id = Builder.lz78 store doc in
          Span_relation.equal (Slp_spanner.to_relation engine id) (Compiled.eval ct doc))
        docs)

(* CDE-edited stores: evaluate a document produced by random editing,
   against Compiled on the reference-evaluated (string-level) edit. *)
let gen_cde =
  let open QCheck2.Gen in
  let doc = oneofl [ Cde.Doc "d1"; Cde.Doc "d2" ] in
  let rec expr depth =
    if depth = 0 then doc
    else
      frequency
        [
          (2, doc);
          ( 2,
            expr (depth - 1) >>= fun a ->
            expr (depth - 1) >>= fun b -> return (Cde.Concat (a, b)) );
          ( 1,
            expr (depth - 1) >>= fun a ->
            0 -- 30 >>= fun i ->
            0 -- 30 >>= fun j -> return (Cde.Extract (a, min i j + 1, max i j + 1)) );
          ( 1,
            expr (depth - 1) >>= fun a ->
            0 -- 30 >>= fun i ->
            0 -- 3 >>= fun k -> return (Cde.Delete (a, i + 1, i + 1 + k)) );
          ( 1,
            expr (depth - 1) >>= fun a ->
            expr (depth - 1) >>= fun b ->
            0 -- 30 >>= fun k -> return (Cde.Insert (a, b, k + 1)) );
        ]
  in
  expr 2

let prop_cde_edited =
  QCheck2.Test.make ~name:"engine on CDE-edited stores = compiled on reference edit"
    ~count:150
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      gen_doc >>= fun d1 ->
      gen_doc >>= fun d2 ->
      gen_cde >>= fun e -> return (f, d1, d2, e))
    ~print:(fun (f, d1, d2, e) ->
      Format.asprintf "%s, d1=%S d2=%S, %a" (Regex_formula.to_string f) d1 d2 Cde.pp e)
    (fun (f, d1, d2, e) ->
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "d1" d1);
      ignore (Doc_db.add_string db "d2" d2);
      let lookup = function "d1" -> d1 | "d2" -> d2 | _ -> raise Not_found in
      let expected = try Some (Cde.reference_eval lookup e) with Invalid_argument _ -> None in
      let got = try Some (Cde.eval db e) with Invalid_argument _ -> None in
      match (expected, got) with
      | None, _ | _, None -> true (* out-of-range edit or empty result: nothing to compare *)
      | Some expected, Some id ->
          let ct = Compiled.of_formula f in
          let engine = Slp_spanner.of_compiled ct (Doc_db.store db) in
          Span_relation.equal (Slp_spanner.to_relation engine id) (Compiled.eval ct expected))

(* ------------------------------------------------------------------ *)
(* Doc_db.eval_all: engines agree, parallel determinism *)

let prop_eval_all_engines_agree =
  QCheck2.Test.make
    ~name:"Doc_db.eval_all: compressed = decompress = per-file compiled, any job count"
    ~count:60
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      list_size (1 -- 6) gen_doc >>= fun docs -> return (f, docs))
    ~print:(fun (f, docs) ->
      Printf.sprintf "%s on %d docs" (Regex_formula.to_string f) (List.length docs))
    (fun (f, docs) ->
      let db = Doc_db.create () in
      List.iteri (fun i d -> ignore (Doc_db.add_string db (Printf.sprintf "d%d" i) d)) docs;
      let ct = Compiled.of_formula f in
      let ok results =
        List.for_all2
          (fun doc (_, r) ->
            match r with
            | Ok rel -> Span_relation.equal rel (Compiled.eval ct doc)
            | Error _ -> false)
          docs results
      in
      ok (Doc_db.eval_all ~jobs:1 db ct)
      && ok (Doc_db.eval_all ~jobs:4 db ct)
      && ok (Doc_db.eval_all ~jobs:2 ~engine:`Decompress db ct))

(* ------------------------------------------------------------------ *)
(* Figure 1: exact node-matrix sharing *)

let figure1_sharing () =
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  let e = Evset.of_formula (Regex_formula.parse "[abc]*!x{bca}[abc]*") in
  let engine = Slp_spanner.create e store in
  Slp_spanner.prepare engine fig.Figure1.a1;
  let after_d1 = Slp_spanner.matrices_computed engine in
  check Alcotest.bool "D1 computed matrices" true (after_d1 > 0);
  (* D3's node (A3) is inside D1's DAG: re-preparing computes nothing *)
  Slp_spanner.prepare engine fig.Figure1.a3;
  check Alcotest.int "D3 after D1: 0 new matrices" after_d1
    (Slp_spanner.matrices_computed engine);
  (* and still evaluates correctly *)
  let doc3 = Slp.to_string store fig.Figure1.a3 in
  check Alcotest.bool "D3 relation exact" true
    (Span_relation.equal
       (Slp_spanner.to_relation engine fig.Figure1.a3)
       (Evset.eval e doc3));
  (* a fresh document sharing only some nodes pays only the rest *)
  let a4 = Slp.pair store fig.Figure1.a3 fig.Figure1.b in
  Slp_spanner.prepare engine a4;
  check Alcotest.int "D3·B: exactly one new node" (after_d1 + 2)
    (Slp_spanner.matrices_computed engine)

let eval_all_shares_sweep () =
  (* the database sweep computes each distinct node once, not once per
     document: matrices ≪ 2 × Σ per-document nodes *)
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let ct =
    Compiled.of_evset
      (Evset.determinize (Evset.of_formula (Regex_formula.parse "[abc]*!x{bca}[abc]*")))
  in
  let engine = Slp_spanner.of_compiled ct (Doc_db.store db) in
  let roots = Array.of_list (List.map (Doc_db.find db) (Doc_db.names db)) in
  let results = Slp_spanner.eval_all ~jobs:2 engine roots in
  Array.iteri
    (fun i r ->
      match r with
      | Ok rel ->
          let doc = Slp.to_string (Doc_db.store db) roots.(i) in
          check Alcotest.bool "slot exact" true (Span_relation.equal rel (Compiled.eval ct doc))
      | Error e -> Alcotest.failf "slot %d failed: %s" i (Printexc.to_string e))
    results;
  let distinct = Doc_db.compressed_size db in
  let sum_per_doc =
    List.fold_left
      (fun acc n -> acc + Slp.reachable_size (Doc_db.store db) (Doc_db.find db n))
      0 (Doc_db.names db)
  in
  check Alcotest.int "matrices = 2 × distinct nodes" (2 * distinct)
    (Slp_spanner.matrices_computed engine);
  check Alcotest.bool "sharing: distinct < Σ per-doc nodes" true (distinct < sum_per_doc)

(* ------------------------------------------------------------------ *)
(* Partial failure and metered decompression *)

let eval_all_partial_failure () =
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "small" "aaaa");
  ignore (Doc_db.add_string db "huge" (String.make 80 'a'));
  ignore (Doc_db.add_string db "tiny" "aa");
  let ct = Compiled.of_formula (Regex_formula.parse "[a]*!x{a*}[a]*") in
  List.iter
    (fun engine ->
      let results = Doc_db.eval_all ~jobs:2 ~limits:(Limits.make ~max_tuples:50 ()) ~engine db ct in
      List.iter
        (fun (name, r) ->
          match (name, r) with
          | "huge", Error (Limits.Spanner_error (Limits.Limit_exceeded _)) -> ()
          | "huge", _ -> Alcotest.fail "huge should trip the tuple cap"
          | _, Ok rel ->
              check Alcotest.bool (name ^ " exact") true
                (Span_relation.equal rel
                   (Compiled.eval ct (Slp.to_string (Doc_db.store db) (Doc_db.find db name))))
          | name, Error e -> Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
        results)
    [ `Compressed; `Decompress ]

let decompression_is_metered () =
  (* satellite: the legacy path used to decompress *before* the gauge
     existed; now an over-budget document trips during decompression
     and degrades to its own slot *)
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "big" (String.concat "" (List.init 500 (fun _ -> "abcab"))));
  ignore (Doc_db.add_string db "ok" "abc");
  let ct = Compiled.of_formula (Regex_formula.parse "!x{abc}[abc]*") in
  let results = Doc_db.eval_all ~limits:(Limits.make ~fuel:100 ()) ~engine:`Decompress db ct in
  (match List.assoc "big" results with
  | Error (Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Fuel; _ })) -> ()
  | Ok _ -> Alcotest.fail "2500-byte decompression must exceed 100 fuel"
  | Error e -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e));
  (* the sweep gauge poisons every slot under `Compressed — but a
     budget generous enough for the shared sweep still isolates
     per-document enumeration failures (eval_all_partial_failure) *)
  match List.assoc "ok" results with
  | Ok rel -> check Alcotest.bool "small doc survives" true (Span_relation.equal rel (Compiled.eval ct "abc"))
  | Error e -> Alcotest.failf "ok failed: %s" (Printexc.to_string e)

let frozen_snapshot () =
  let store = Slp.create_store () in
  let id = Slp.of_string store "hello world" in
  let fz = Slp.freeze store in
  let size = Slp.frozen_size fz in
  check Alcotest.int "snapshot covers the store" (Slp.store_size store) size;
  check Alcotest.string "frozen_to_string" "hello world" (Slp.frozen_to_string fz id);
  check Alcotest.int "frozen_len" 11 (Slp.frozen_len fz id);
  (* later nodes are invisible to the old snapshot *)
  let id2 = Slp.of_string store "xyz" in
  check Alcotest.int "snapshot is immutable" size (Slp.frozen_size fz);
  let fz2 = Slp.freeze store in
  check Alcotest.string "new snapshot sees them" "xyz" (Slp.frozen_to_string fz2 id2);
  (* metered decompression trips its gauge *)
  let g = Limits.start (Limits.make ~fuel:5 ()) in
  match Slp.frozen_to_string ~gauge:g fz id with
  | _ -> Alcotest.fail "11 bytes must exceed 5 fuel"
  | exception Limits.Spanner_error (Limits.Limit_exceeded { which = Limits.Fuel; _ }) -> ()

(* ------------------------------------------------------------------ *)
(* Deep-SLP regression (stack safety) *)

let deep_chain depth store =
  (* right chain: a·(a·(a·…)) — every node distinct, depth [depth] *)
  let leaf = Slp.leaf store 'a' in
  let acc = ref leaf in
  for _ = 1 to depth do
    acc := Slp.pair store leaf !acc
  done;
  !acc

let deep_slp_regression () =
  let depth = 1_000_000 in
  let store = Slp.create_store () in
  let right = deep_chain depth store in
  check Alcotest.int "right-chain length" (depth + 1) (Slp.len store right);
  (* decompression, extraction, reachability: all iterative now *)
  check Alcotest.int "to_string survives" (depth + 1)
    (String.length (Slp.to_string store right));
  check Alcotest.string "extract_string survives" "aaa"
    (Slp.extract_string store right (depth - 1) (depth + 2));
  check Alcotest.int "iter_reachable survives" (depth + 1) (Slp.reachable_size store right);
  (* the matrix sweep is an iterative bottom-up pass *)
  let e = Evset.of_formula (Regex_formula.parse "a*!x{aa}a*") in
  let engine = Slp_spanner.create e store in
  Slp_spanner.prepare engine right;
  check Alcotest.int "matrices over the chain" (2 * (depth + 1))
    (Slp_spanner.matrices_computed engine);
  (* left comb via of_string: the other degenerate direction *)
  let left = Slp.of_string store (String.make 100_000 'b') in
  check Alcotest.int "left-comb to_string survives" 100_000
    (String.length (Slp.to_string store left))

let () =
  Alcotest.run "slp_compiled"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_slp_equals_compiled;
            prop_of_compiled_nondeterministic;
            prop_shared_store;
            prop_cde_edited;
            prop_eval_all_engines_agree;
          ] );
      ( "sharing",
        [
          tc "figure 1: D3 after D1 = 0 new matrices" `Quick figure1_sharing;
          tc "eval_all sweeps each distinct node once" `Quick eval_all_shares_sweep;
        ] );
      ( "governance",
        [
          tc "partial failure, both engines" `Quick eval_all_partial_failure;
          tc "decompression is metered" `Quick decompression_is_metered;
          tc "frozen snapshots" `Quick frozen_snapshot;
        ] );
      ("deep", [ tc "10^6-deep SLP" `Quick deep_slp_regression ]);
    ]
