(* Chaos smoke: a short seeded fault-injection run wired into
   `dune runtest` via the @chaos-smoke alias.  Unlike test_chaos.ml
   (which arms faults programmatically) this binary is armed through
   the SPANNER_FAULTS environment variable set in the dune rule, so
   the env-parsing entry point gets exercised on every test run.

   Invariants smoked: the server comes up and answers under faults,
   retried queries land exact answers, injections are observable, and
   shutdown stays clean after disarming. *)

open Spanner_serve
module Fault = Spanner_util.Fault

let () =
  (* armed by the SPANNER_FAULTS in the dune rule, parsed at load *)
  assert (Fault.armed ());
  let path = Printf.sprintf "/tmp/spanner-chaos-smoke-%d.sock" (Unix.getpid ()) in
  let config =
    { (Server.default_config (Server.Unix_socket path)) with Server.workers = Some 2; queue = 8 }
  in
  let server = Server.start config in
  let c = Client.connect ~timeout_ms:5000 (Server.Unix_socket path) in
  let req p = Client.request ~attempts:8 ~backoff_ms:2 c p in
  let ok_frame = function
    | [ one ] -> String.length one >= 2 && String.sub one 0 2 = "OK"
    | _ -> false
  in
  (* setup verbs are not auto-retried; replaying these exact ones is safe *)
  let rec ensure p n =
    assert (n > 0);
    match req p with
    | frames when ok_frame frames -> ()
    | _ -> ensure p (n - 1)
    | exception _ -> ensure p (n - 1)
  in
  ensure "DEFINE q\n[ab]*!x{ab}[ab]*" 50;
  ensure "LOAD s DOC d\nabab" 50;
  let ok = ref 0 in
  for _ = 1 to 20 do
    match req "QUERY q s d format=count" with
    | frames -> (
        match Client.err_code (List.nth frames (List.length frames - 1)) with
        | Some _ -> ()
        | None ->
            assert (frames = [ "OK count 2" ]);
            incr ok)
    | exception _ -> ()
  done;
  assert (!ok > 0);
  assert (Fault.injected_total () > 0);
  Fault.disable ();
  (match req "QUERY q s d format=count" with
  | [ "OK count 2" ] -> ()
  | _ -> assert false);
  (match req "SHUTDOWN" with [ "OK shutting down" ] -> () | _ -> assert false);
  Client.close c;
  Server.wait server;
  assert (not (Sys.file_exists path));
  print_endline "chaos smoke: ok"
