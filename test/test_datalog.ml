(* Tests for datalog over regular spanners (RGXLog, [33]): validation,
   non-recursive coverage of core spanners, recursion (transitive
   closure), semi-naive fixpoint behaviour, and built-ins. *)

open Spanner_core
open Spanner_datalog

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Validation *)

let validation () =
  let reject rules =
    match Datalog.make rules with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "unrestricted head" true
    (reject [ { Datalog.head = ("p", [ "x" ]); body = [] } ]);
  check Alcotest.bool "builtin on unbound" true
    (reject [ { Datalog.head = ("p", []); body = [ Datalog.Content_eq ("x", "y") ] } ]);
  check Alcotest.bool "arity mismatch" true
    (reject
       [
         { Datalog.head = ("p", [ "x" ]); body = [ Datalog.Idb ("q", [ "x" ]) ] };
         { Datalog.head = ("q", [ "x"; "y" ]); body = [ Datalog.Idb ("p", [ "x" ]); Datalog.Idb ("p", [ "y" ]) ] };
       ]);
  (* a correct program is accepted *)
  let field = Evset.of_formula (Regex_formula.parse "!f{a+}") in
  check Alcotest.bool "good program" false
    (reject
       [ { Datalog.head = ("p", [ "x" ]); body = [ Datalog.Spanner (field, [ (v "f", "x") ]) ] } ])

(* ------------------------------------------------------------------ *)
(* Non-recursive: core spanners as datalog (the [33] coverage claim) *)

let covers_core_spanners () =
  let fields = Evset.of_formula (Regex_formula.parse "[ab;]*;?!x{[ab]+};!y{[ab]+};[ab;]*") in
  let p =
    Datalog.make
      [
        {
          Datalog.head = ("out", [ "x"; "y" ]);
          body =
            [
              Datalog.Spanner (fields, [ (v "x", "x"); (v "y", "y") ]);
              Datalog.Content_eq ("x", "y");
            ];
        };
      ]
  in
  let core =
    Core_spanner.simplify
      (Algebra.Select (Variable.set_of_list [ v "x"; v "y" ], Algebra.Automaton fields))
  in
  List.iter
    (fun doc ->
      let r = Datalog.run p doc in
      let reference = Core_spanner.eval core doc in
      check Alcotest.int
        (Printf.sprintf "same cardinality on %S" doc)
        (Span_relation.cardinal reference)
        (Datalog.fact_count r "out");
      (* and the actual rows coincide *)
      List.iter
        (fun row ->
          let tuple = Span_tuple.of_list [ (v "x", row.(0)); (v "y", row.(1)) ] in
          if not (Span_relation.mem reference tuple) then
            Alcotest.failf "spurious datalog fact on %S" doc)
        (Datalog.facts r "out"))
    [ "ab;ab;ba;ab;"; "a;b;"; ""; "ab;ba;"; "aa;aa;aa;" ]

(* ------------------------------------------------------------------ *)
(* Recursion *)

let step_program () =
  let step = Evset.of_formula (Regex_formula.parse "([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*") in
  Datalog.make
    [
      {
        Datalog.head = ("eq_next", [ "x"; "y" ]);
        body =
          [
            Datalog.Spanner (step, [ (v "x", "x"); (v "y", "y") ]);
            Datalog.Content_eq ("x", "y");
          ];
      };
      { Datalog.head = ("chain", [ "x"; "y" ]); body = [ Datalog.Idb ("eq_next", [ "x"; "y" ]) ] };
      {
        Datalog.head = ("chain", [ "x"; "z" ]);
        body = [ Datalog.Idb ("chain", [ "x"; "y" ]); Datalog.Idb ("eq_next", [ "y"; "z" ]) ];
      };
    ]

let transitive_closure () =
  let p = step_program () in
  (* fields: ab ab ab ba ba — eq_next pairs (1,2),(2,3),(4,5); chains
     add (1,3) *)
  let r = Datalog.run p "ab;ab;ab;ba;ba;" in
  check Alcotest.int "eq_next" 3 (Datalog.fact_count r "eq_next");
  check Alcotest.int "chain" 4 (Datalog.fact_count r "chain");
  check Alcotest.bool "fixpoint took several rounds" true (Datalog.iterations r >= 3)

let long_chain () =
  (* k equal fields in a row: eq_next = k−1, chain = k(k−1)/2 *)
  let p = step_program () in
  let k = 8 in
  let doc = String.concat "" (List.init k (fun _ -> "ab;")) in
  let r = Datalog.run p doc in
  check Alcotest.int "eq_next" (k - 1) (Datalog.fact_count r "eq_next");
  check Alcotest.int "chain" (k * (k - 1) / 2) (Datalog.fact_count r "chain")

let empty_fixpoint () =
  let p = step_program () in
  let r = Datalog.run p "a;b;a;" in
  check Alcotest.int "no equal neighbours" 0 (Datalog.fact_count r "chain");
  Alcotest.check_raises "unknown predicate" Not_found (fun () ->
      ignore (Datalog.facts r "nonexistent"))

(* ------------------------------------------------------------------ *)
(* Built-ins *)

let adjacency () =
  let token = Evset.of_formula (Regex_formula.parse "[ab]*!t{[ab]}[ab]*") in
  let p =
    Datalog.make
      [
        {
          Datalog.head = ("bigram", [ "x"; "y" ]);
          body =
            [
              Datalog.Spanner (token, [ (v "t", "x") ]);
              Datalog.Spanner (token, [ (v "t", "y") ]);
              Datalog.Adjacent ("x", "y");
            ];
        };
      ]
  in
  let r = Datalog.run p "abab" in
  (* 3 adjacent character pairs *)
  check Alcotest.int "bigrams" 3 (Datalog.fact_count r "bigram");
  List.iter
    (fun row -> check Alcotest.int "adjacency holds" (Span.right row.(0)) (Span.left row.(1)))
    (Datalog.facts r "bigram")


(* ------------------------------------------------------------------ *)
(* Concrete syntax *)

let surface_syntax () =
  let program = Datalog.parse {|
    % equal neighbours, then the closure
    eq(x, y) :- <([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*>(x, y), streq(x, y).
    chain(x, y) :- eq(x, y).
    chain(x, z) :- chain(x, y), eq(y, z).
  |} in
  let r = Datalog.run program "ab;ab;ab;ba;ba;" in
  check Alcotest.int "eq" 3 (Datalog.fact_count r "eq");
  check Alcotest.int "chain" 4 (Datalog.fact_count r "chain")

let surface_syntax_bindings_and_adj () =
  let p = Datalog.parse
      {| bigram(x, y) :- <[ab]*!t{[ab]}[ab]*>(t=x), <[ab]*!t{[ab]}[ab]*>(t=y), adj(x, y). |}
  in
  let r = Datalog.run p "abab" in
  check Alcotest.int "bigrams" 3 (Datalog.fact_count r "bigram")

let surface_syntax_errors () =
  let fails s =
    match Datalog.parse s with
    | exception Spanner_util.Limits.Spanner_error (Spanner_util.Limits.Parse _) -> true
    | _ -> false
  in
  check Alcotest.bool "missing dot" true (fails "p(x) :- q(x)");
  check Alcotest.bool "missing body" true (fails "p(x).");
  check Alcotest.bool "streq arity" true (fails "p(x) :- <!x{a}>(x), streq(x).");
  check Alcotest.bool "unterminated formula" true (fails "p(x) :- <!x{a}(x).")

let () =
  Alcotest.run "datalog"
    [
      ("validation", [ tc "safety and arity checks" `Quick validation ]);
      ("coverage", [ tc "core spanners as non-recursive programs" `Quick covers_core_spanners ]);
      ( "recursion",
        [
          tc "transitive closure" `Quick transitive_closure;
          tc "long chain counts" `Quick long_chain;
          tc "empty fixpoint / unknown predicate" `Quick empty_fixpoint;
        ] );
      ("builtins", [ tc "adjacency" `Quick adjacency ]);
      ( "syntax",
        [
          tc "program text" `Quick surface_syntax;
          tc "bindings and adj" `Quick surface_syntax_bindings_and_adj;
          tc "errors" `Quick surface_syntax_errors;
        ] );
    ]
