(* Tests for the serve subsystem: wire protocol round-trips (QCheck),
   the bounded scheduler, the registry, and a full in-process server
   driven over a real unix socket. *)

open Spanner_serve
module Limits = Spanner_util.Limits

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame_roundtrip_basic () =
  let payloads = [ ""; "x"; "OK stats"; String.make 4096 'a'; "line1\nline2\n" ] in
  let buf = Buffer.create 64 in
  List.iter (fun p -> Protocol.encode_frame buf p) payloads;
  check
    Alcotest.(list string)
    "decode inverts encode" payloads
    (Protocol.decode_frames (Buffer.contents buf))

let frame_hostile () =
  let corrupt s =
    match Protocol.decode_frames ~max_frame:65536 s with
    | _ -> false
    | exception Limits.Spanner_error (Limits.Corrupt_input _) -> true
  in
  check Alcotest.bool "oversized length prefix" true (corrupt "999999999999999999\nX");
  check Alcotest.bool "truncated frame" true (corrupt "50\nhello");
  check Alcotest.bool "no newline after length" true (corrupt "123");
  check Alcotest.bool "non-digit length" true (corrupt "12a\nhello");
  check Alcotest.bool "negative length" true (corrupt "-3\nabc");
  check Alcotest.bool "just over the cap" true (corrupt "65537\nx")

(* ------------------------------------------------------------------ *)
(* QCheck round-trips *)

let payload_gen =
  (* arbitrary bytes including newlines and digits, the characters
     framing actually cares about *)
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))

let qcheck_frames =
  QCheck2.Test.make ~name:"frame encode/decode round-trip" ~count:500
    QCheck2.Gen.(list_size (int_range 0 8) payload_gen)
    (fun payloads ->
      let buf = Buffer.create 64 in
      List.iter (fun p -> Protocol.encode_frame buf p) payloads;
      Protocol.decode_frames (Buffer.contents buf) = payloads)

let name_gen =
  QCheck2.Gen.(
    string_size
      ~gen:(oneof [ char_range 'a' 'z'; char_range '0' '9'; return '_'; return '.' ])
      (int_range 1 12))

let opts_gen =
  let open QCheck2.Gen in
  let axis = opt (int_range 0 1000) in
  let* limit = axis
  and* offset = int_range 0 50
  and* format = oneofl [ Protocol.Tuples; Protocol.Count; Protocol.First ]
  and* fuel = axis
  and* deadline_ms = axis
  and* max_states = axis
  and* max_tuples = axis in
  return { Protocol.limit; offset; format; fuel; deadline_ms; max_states; max_tuples }

let request_gen =
  let open QCheck2.Gen in
  let body_gen = string_size ~gen:printable (int_range 1 40) in
  let source_gen =
    oneof
      [
        map (fun n -> Protocol.Named n) name_gen;
        (* an inline body is the rest of the payload: any text
           without leading whitespace ambiguity round-trips *)
        map (fun b -> Protocol.Inline ("q" ^ b)) body_gen;
      ]
  in
  oneof
    [
      (let* name = name_gen and* body = body_gen in
       return (Protocol.Define { name; body = "b" ^ body }));
      (let* store = name_gen and* doc = name_gen and* body = body_gen in
       return (Protocol.Load_doc { store; doc; body = "b" ^ body }));
      (let* store = name_gen and* path = name_gen in
       return (Protocol.Load_path { store; path }));
      (let* source = source_gen and* store = name_gen and* doc = name_gen and* opts = opts_gen in
       return (Protocol.Query { source; store; doc; opts }));
      (let* source = source_gen and* opts = opts_gen in
       return (Protocol.Explain { source; opts }));
      return Protocol.Stats;
      return Protocol.Close;
      return Protocol.Shutdown;
    ]

let qcheck_requests =
  QCheck2.Test.make ~name:"request print/parse round-trip" ~count:1000 request_gen
    (fun req -> Protocol.parse_request (Protocol.request_to_string req) = req)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let scheduler_runs_jobs () =
  (* capacity covers every job: nothing may shed here *)
  let s = Scheduler.create ~workers:2 ~capacity:32 () in
  let results =
    List.init 20 (fun i -> Scheduler.submit s (fun () -> i * i))
    |> List.map (function Some t -> Scheduler.await t | None -> Alcotest.fail "shed")
  in
  Scheduler.shutdown s;
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check Alcotest.int "job result" (i * i) v
      | Error _ -> Alcotest.fail "job raised")
    results

let scheduler_sheds () =
  (* one worker wedged on a slow job, capacity 1: the first extra job
     queues, the next is shed *)
  let s = Scheduler.create ~workers:1 ~capacity:1 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let slow =
    Scheduler.submit s (fun () ->
        Mutex.lock gate;
        Mutex.unlock gate)
  in
  (* wait until the worker picked the slow job up, so the queue is
     observably empty before we fill it *)
  let rec settle n =
    if (Scheduler.stats s).Scheduler.queued > 0 then
      if n = 0 then Alcotest.fail "worker never started"
      else begin
        Unix.sleepf 0.001;
        settle (n - 1)
      end
  in
  settle 5_000;
  let queued = Scheduler.submit s (fun () -> ()) in
  let shed = Scheduler.submit s (fun () -> ()) in
  check Alcotest.bool "second job queued" true (queued <> None);
  check Alcotest.bool "third job shed" true (shed = None);
  check Alcotest.int "shed counted" 1 (Scheduler.stats s).Scheduler.shed;
  Mutex.unlock gate;
  (match slow with Some t -> ignore (Scheduler.await t) | None -> ());
  Scheduler.shutdown s

let scheduler_propagates_exn () =
  let s = Scheduler.create ~workers:1 ~capacity:4 () in
  let r = Scheduler.run s (fun () -> failwith "boom") in
  Scheduler.shutdown s;
  match r with
  | Some (Error (Failure m)) -> check Alcotest.string "exn carried" "boom" m
  | _ -> Alcotest.fail "expected Error (Failure _)"

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry () = Registry.create ~defaults:Limits.none ()

let registry_define_and_plan () =
  let r = registry () in
  let p1 = Registry.define r ~name:"q" ~body:"[ab]*!x{ab}[ab]*" in
  (* the same body inline, and under another name, share the entry *)
  let p2 = Registry.plan r (Protocol.Inline "[ab]*!x{ab}[ab]*") in
  let p3 = Registry.define r ~name:"q2" ~body:"[ab]*!x{ab}[ab]*" in
  check Alcotest.bool "inline shares the compiled plan" true (p1 == p2);
  check Alcotest.bool "re-define shares the compiled plan" true (p1 == p3);
  let stats = Registry.plan_cache_stats r in
  check Alcotest.int "one compilation" 1 stats.Registry.misses;
  check Alcotest.int "two cache hits" 2 stats.Registry.hits;
  match Registry.plan r (Protocol.Named "absent") with
  | _ -> Alcotest.fail "unknown name must fail"
  | exception Limits.Spanner_error (Limits.Eval_failure _) -> ()

let registry_docs () =
  let r = registry () in
  let bytes, _nodes = Registry.load_doc r ~store:"s" ~doc:"d" ~text:"abab" in
  check Alcotest.int "bytes" 4 bytes;
  let gauge = Limits.unlimited () in
  check Alcotest.string "decompressed" "abab" (Registry.doc_text r ~gauge ~store:"s" ~doc:"d");
  check Alcotest.string "cached" "abab" (Registry.doc_text r ~gauge ~store:"s" ~doc:"d");
  check Alcotest.int "one decompression" 1 (Registry.doc_cache_stats r).Registry.misses;
  (* reloading the same name must serve the new text, not stale cache *)
  ignore (Registry.load_doc r ~store:"s" ~doc:"d" ~text:"bbbb");
  check Alcotest.string "reload refreshes" "bbbb" (Registry.doc_text r ~gauge ~store:"s" ~doc:"d");
  (match Registry.load_doc r ~store:"s" ~doc:"e" ~text:"" with
  | _ -> Alcotest.fail "empty doc must fail"
  | exception Limits.Spanner_error (Limits.Eval_failure _) -> ());
  let c = Registry.counts r in
  check Alcotest.int "stores" 1 c.Registry.stores;
  check Alcotest.int "docs" 1 c.Registry.docs

let registry_load_path_generation () =
  (* LOAD PATH installs a brand-new Doc_db whose root ids restart
     from zero, so a reloaded document can collide with the replaced
     snapshot's cached (store, doc, id): the per-store generation in
     the text-cache key is what keeps stale text from serving *)
  let r = registry () in
  let write text =
    let db = Spanner_slp.Doc_db.create () in
    ignore (Spanner_slp.Doc_db.add_string db "d" text);
    let path = Filename.temp_file "spanner-slpdb" ".slpdb" in
    Spanner_slp.Serialize.write_file db path;
    path
  in
  (* same length and structure: both snapshots give "d" the same id *)
  let p1 = write "aaaa" and p2 = write "bbbb" in
  Fun.protect
    ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ])
    (fun () ->
      let gauge = Limits.unlimited () in
      check Alcotest.int "one doc" 1 (Registry.load_path r ~store:"s" ~path:p1);
      check Alcotest.string "first snapshot" "aaaa"
        (Registry.doc_text r ~gauge ~store:"s" ~doc:"d");
      check Alcotest.int "reloaded" 1 (Registry.load_path r ~store:"s" ~path:p2);
      check Alcotest.string "reload must not serve stale text" "bbbb"
        (Registry.doc_text r ~gauge ~store:"s" ~doc:"d"))

let registry_native_cursor () =
  let module Cursor = Spanner_engine.Cursor in
  let module Optimizer = Spanner_engine.Optimizer in
  let module Span_relation = Spanner_core.Span_relation in
  let r = registry () in
  let body = "[ab]*!x{ab}[ab]*" in
  let gauge () = Limits.unlimited () in
  (* a highly repetitive document compresses far past the break-even
     ratio, so the query must go native — no decompression *)
  let big = String.concat "" (List.init 512 (fun _ -> "ab")) in
  ignore (Registry.load_doc r ~store:"s" ~doc:"big" ~text:big);
  ignore (Registry.load_doc r ~store:"s" ~doc:"tiny" ~text:"abab");
  let normalized, plan = Registry.plan_normalized r (Protocol.Inline body) in
  let native doc =
    Registry.native_cursor r ~gauge:(gauge ()) ~normalized ~store:"s" ~doc plan
  in
  (match native "big" with
  | None -> Alcotest.fail "compressible doc must take the native path"
  | Some cursor ->
      let oracle =
        Cursor.to_relation
          (Optimizer.cursor plan (Registry.doc_text r ~gauge:(gauge ()) ~store:"s" ~doc:"big"))
      in
      check Alcotest.bool "native stream ≡ decompressed stream" true
        (Span_relation.equal (Cursor.to_relation cursor) oracle);
      check Alcotest.int "512 matches" 512 (Span_relation.cardinal oracle));
  check Alcotest.int "engine cache filled once" 1
    (Registry.engine_cache_stats r).Registry.misses;
  (match native "big" with
  | None -> Alcotest.fail "native path must stay available"
  | Some cursor -> ignore (Cursor.to_list cursor));
  check Alcotest.int "repeat query hits the engine cache" 1
    (Registry.engine_cache_stats r).Registry.hits;
  (* the tiny document barely compresses: decompressed-text fallback *)
  check Alcotest.bool "incompressible doc falls back" true (native "tiny" = None);
  (* LOAD DOC refreshes the snapshot without bumping the generation:
     the node count in the engine key must keep the old engine from
     serving a root it cannot see *)
  let big2 = String.concat "" (List.init 512 (fun _ -> "ba")) in
  ignore (Registry.load_doc r ~store:"s" ~doc:"big2" ~text:big2);
  match native "big2" with
  | None -> Alcotest.fail "refreshed snapshot must still go native"
  | Some cursor ->
      let oracle =
        Cursor.to_relation
          (Optimizer.cursor plan (Registry.doc_text r ~gauge:(gauge ()) ~store:"s" ~doc:"big2"))
      in
      check Alcotest.bool "post-reload native stream is fresh" true
        (Span_relation.equal (Cursor.to_relation cursor) oracle)

let registry_limits_clamp () =
  (* per-request overrides may only tighten the server defaults *)
  let defaults = { Limits.fuel = 100; time_ms = max_int; max_states = 50; max_tuples = max_int } in
  let r = Registry.create ~defaults () in
  let opts =
    {
      Protocol.default_opts with
      Protocol.fuel = Some 1_000_000;
      deadline_ms = Some 500;
      max_states = Some 10;
      max_tuples = None;
    }
  in
  let eff = Registry.effective_limits r opts in
  check Alcotest.int "override cannot raise fuel" 100 eff.Limits.fuel;
  check Alcotest.int "override tightens unbounded time" 500 eff.Limits.time_ms;
  check Alcotest.int "override tightens states" 10 eff.Limits.max_states;
  check Alcotest.int "no override keeps default" max_int eff.Limits.max_tuples

(* ------------------------------------------------------------------ *)
(* In-process server over a real unix socket *)

let with_server f =
  let path = Printf.sprintf "/tmp/spanner-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000) in
  let config =
    { (Server.default_config (Server.Unix_socket path)) with Server.workers = Some 2; queue = 8 }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server)
    (fun () -> f (Server.Unix_socket path))

let server_end_to_end () =
  with_server (fun addr ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let req payload = Client.request c payload in
      (match req "DEFINE q\n[ab]*!x{ab}[ab]*" with
      | [ one ] -> check Alcotest.string "define ok" "OK defined q schema={x} fused=1" one
      | fs -> Alcotest.fail (String.concat "|" fs));
      (match req "LOAD s DOC d\nabab" with
      | [ one ] -> check Alcotest.bool "load ok" true (String.length one > 2 && String.sub one 0 2 = "OK")
      | _ -> Alcotest.fail "load: expected one frame");
      (match req "QUERY q s d" with
      | header :: rest ->
          check Alcotest.string "stream header" "OK stream {x}" header;
          check Alcotest.string "terminal" "END 2" (List.nth rest (List.length rest - 1))
      | [] -> Alcotest.fail "query: empty response");
      (match req "QUERY q s d format=count" with
      | [ one ] -> check Alcotest.string "count" "OK count 2" one
      | _ -> Alcotest.fail "count: expected one frame");
      (* per-request budget failure surfaces as ERR 3, connection stays usable *)
      (match req "QUERY q s d fuel=3" with
      | frames ->
          check Alcotest.(option int) "budget is ERR 3" (Some 3)
            (List.nth frames (List.length frames - 1) |> Client.err_code));
      (match req "QUERY nosuch s d" with
      | [ one ] -> check Alcotest.(option int) "unknown query is ERR 1" (Some 1) (Client.err_code one)
      | _ -> Alcotest.fail "unknown: expected one frame");
      match req "STATS" with
      | [ one ] ->
          check Alcotest.bool "stats ok" true (String.length one >= 8 && String.sub one 0 8 = "OK stats")
      | _ -> Alcotest.fail "stats: expected one frame")

let server_concurrent_clients () =
  with_server (fun addr ->
      (let c = Client.connect addr in
       ignore (Client.request c "DEFINE q\n[ab]*!x{ab}[ab]*");
       ignore (Client.request c "LOAD s DOC d\nabababab");
       Client.close c);
      let errors = Atomic.make 0 in
      let client_thread _ =
        Thread.create
          (fun () ->
            try
              let c = Client.connect addr in
              for _ = 1 to 20 do
                match Client.request c "QUERY q s d format=count" with
                | [ "OK count 4" ] -> ()
                | _ -> Atomic.incr errors
              done;
              Client.close c
            with _ -> Atomic.incr errors)
          ()
      in
      let threads = List.init 8 client_thread in
      List.iter Thread.join threads;
      check Alcotest.int "no client saw a wrong answer" 0 (Atomic.get errors))

let server_shutdown_verb () =
  let path = Printf.sprintf "/tmp/spanner-test-sd-%d.sock" (Unix.getpid ()) in
  let config = { (Server.default_config (Server.Unix_socket path)) with Server.workers = Some 1 } in
  let server = Server.start config in
  let c = Client.connect (Server.Unix_socket path) in
  (match Client.request c "SHUTDOWN" with
  | [ one ] -> check Alcotest.string "ack" "OK shutting down" one
  | _ -> Alcotest.fail "expected one frame");
  Client.close c;
  Server.wait server;
  check Alcotest.bool "socket removed" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          tc "frame round-trip" `Quick frame_roundtrip_basic;
          tc "hostile frames" `Quick frame_hostile;
          QCheck_alcotest.to_alcotest qcheck_frames;
          QCheck_alcotest.to_alcotest qcheck_requests;
        ] );
      ( "scheduler",
        [
          tc "runs jobs" `Quick scheduler_runs_jobs;
          tc "sheds at capacity" `Quick scheduler_sheds;
          tc "propagates exceptions" `Quick scheduler_propagates_exn;
        ] );
      ( "registry",
        [
          tc "define and plan cache" `Quick registry_define_and_plan;
          tc "stores and doc cache" `Quick registry_docs;
          tc "load_path bumps generation" `Quick registry_load_path_generation;
          tc "native compressed-domain cursor" `Quick registry_native_cursor;
          tc "limits clamp to defaults" `Quick registry_limits_clamp;
        ] );
      ( "server",
        [
          tc "end to end" `Quick server_end_to_end;
          tc "concurrent clients" `Quick server_concurrent_clients;
          tc "shutdown verb" `Quick server_shutdown_verb;
        ] );
    ]
