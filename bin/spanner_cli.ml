(* spanner-cli: command-line access to the document-spanner library.

   Subcommands:
     eval     evaluate a regex-formula spanner on a document
     batch    evaluate one spanner on many documents in parallel
     datalog  run a datalog-over-spanners program (RGXLog)
     enum     enumerate result tuples (optionally only the first k)
     refl     evaluate a refl-spanner (with &x references)
     analyze  static analysis of a spanner (§2.4)
     compress compress a document into an SLP and report statistics
     slpeval  evaluate a spanner over the compressed form (§4.2)
     edit     apply CDE edits and re-evaluate incrementally (§4.3)  *)

open Spanner_core
module Slp = Spanner_slp.Slp
module Builder = Spanner_slp.Builder
module Balance = Spanner_slp.Balance
module Slp_spanner = Spanner_slp.Slp_spanner
module Doc_db = Spanner_slp.Doc_db
module Corpus = Spanner_store.Corpus
module Limits = Spanner_util.Limits
module Pool = Spanner_util.Pool
module Cursor = Spanner_engine.Cursor
module Plan = Spanner_engine.Plan
module Optimizer = Spanner_engine.Optimizer

(* Exit-code contract: 0 ok; 1 evaluation failure / some documents of
   a batch failed; 2 usage, parse, or corrupt-input error; 3 resource
   limit exceeded (see Limits.exit_code). *)
exception Usage of string

let usage msg = raise (Usage msg)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (* strip one trailing newline so shell-created files behave *)
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let read_document doc file =
  match (doc, file) with
  | Some d, None -> d
  | None, Some path -> read_file path
  | Some _, Some _ -> usage "give either DOC or --file, not both"
  | None, None -> usage "missing document: give DOC or --file"

let parse_formula s =
  try Regex_formula.parse s
  with Spanner_fa.Regex.Parse_error (msg, pos) ->
    Printf.eprintf "parse error at offset %d: %s\n" pos msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* Streamed rendering (shared by eval/batch/edit).

   Every result now flows through a Plan + Cursor: [restrict] applies
   --offset/--limit as stream operations (no tuple beyond the window
   is ever pulled from the engine), and [render] realises --format.
   The default `Table output materialises the restricted stream and is
   byte-identical to the pre-planner output. *)

let restrict cursor ~offset ~limit =
  if offset > 0 then Cursor.drop cursor offset;
  match limit with Some k -> Cursor.take cursor k | None -> cursor

let render ?doc cursor ~offset ~limit ~format =
  let cursor = restrict cursor ~offset ~limit in
  match format with
  | `Table ->
      let relation = Cursor.to_relation cursor in
      (match doc with
      | Some d -> Format.printf "%a" (Span_relation.pp ~doc:d) relation
      | None -> Format.printf "%a" (Span_relation.pp ?doc:None) relation);
      Format.printf "%d tuple(s)@." (Span_relation.cardinal relation)
  | `Tuples -> Cursor.iter cursor (fun t -> Format.printf "%a@." Span_tuple.pp t)
  | `Count -> Format.printf "%d@." (Cursor.cardinal cursor)
  | `First -> (
      match Cursor.next cursor with
      | Some t -> Format.printf "%a@." Span_tuple.pp t
      | None -> Format.printf "(no tuples)@.")

(* ------------------------------------------------------------------ *)
(* eval *)

let eval_cmd formula doc file contents compiled limits offset limit format =
  let document = read_document doc file in
  (* the planner always evaluates through the compiled engine; the
     flag is kept for compatibility *)
  ignore compiled;
  let ct = Compiled.of_formula ~limits (parse_formula formula) in
  let plan = Plan.make ct (Plan.Doc document) in
  let cursor = Plan.cursor ~limits plan in
  render ?doc:(if contents then Some document else None) cursor ~offset ~limit ~format

(* ------------------------------------------------------------------ *)
(* batch *)

let error_message = function
  | Limits.Spanner_error err -> Limits.to_string err
  | e -> Printexc.to_string e

let batch_cmd formula store files jobs engine limits offset limit format =
  if store = None && files = [] then
    usage "missing documents: give at least one FILE or --store";
  if store <> None && files <> [] then usage "give FILEs or --store, not both";
  if store <> None && engine = `Compiled then
    usage "--store is packed: use --engine compressed or decompress";
  (* Compilation failures (e.g. the state cap) abort the whole batch:
     with no compiled spanner there is nothing to degrade to.  Per-
     document failures below only cost their own slot. *)
  let ct = Compiled.of_formula ~limits (parse_formula formula) in
  Format.printf "compiled: %d states, %d byte classes, %d marker-set labels@."
    (Compiled.states ct) (Compiled.classes ct) (Compiled.alphabet ct);
  let plan =
    match store with
    | Some path ->
        (* mapped arena corpus: zero deserialization, the sweep runs
           straight over the packed columns *)
        let force =
          match engine with
          | `Auto | `Compiled -> None
          | (`Compressed | `Decompress) as e -> Some e
        in
        let c = Corpus.open_path path in
        Format.printf "store: %d shard(s), %d document(s), %d bytes mapped@."
          (Corpus.shard_count c) (Corpus.doc_count c) (Corpus.mapped_bytes c);
        Plan.make ?force ct (Plan.Packed c)
    | None -> (
        match engine with
        | (`Auto | `Compiled) as e ->
            let docs = Array.of_list (List.map (fun f -> (f, read_file f)) files) in
            let force = match e with `Compiled -> Some `Compiled | `Auto -> None in
            Plan.make ?force ct (Plan.Docs docs)
        | (`Compressed | `Decompress) as e ->
            (* Compress the files into one shared-store database, then
               evaluate in the compressed domain (or decompress from a
               frozen snapshot, for comparison). *)
            let db = Doc_db.create () in
            List.iter
              (fun file ->
                let doc = read_file file in
                if String.length doc = 0 then
                  usage (file ^ ": SLPs derive non-empty documents");
                ignore (Doc_db.add_string db file doc))
              files;
            Format.printf "slp: %d shared nodes for %d bytes@."
              (Doc_db.compressed_size db) (Doc_db.total_len db);
            Plan.make ~force:e ct (Plan.Db db))
  in
  let ndocs =
    match Plan.input plan with
    | Plan.Packed c -> Corpus.doc_count c
    | _ -> List.length files
  in
  (* surface the effective domain count when the SPANNER_JOBS override
     is in play — otherwise job selection stays invisible *)
  (match Pool.env_jobs () with
  | Some _ -> Format.printf "jobs: %d (SPANNER_JOBS)@." (Pool.effective_jobs ?jobs ndocs)
  | None -> ());
  let total = ref 0 in
  let failed = ref 0 in
  (match (format, limit, offset) with
  | `Table, None, 0 ->
      (* no streaming flags: the parallel materialising path, output
         identical to the pre-planner batch *)
      Array.iter
        (fun (file, result) ->
          match result with
          | Ok relation ->
              let k = Span_relation.cardinal relation in
              total := !total + k;
              Format.printf "%s: %d tuple(s)@." file k
          | Error e ->
              incr failed;
              Printf.eprintf "%s: %s\n%!" file (error_message e))
        (Plan.relations ?jobs ~limits plan)
  | _ ->
      (* streaming flags: sequential per-document streams, early-
         terminating — no tuple beyond the window is enumerated *)
      Array.iter
        (fun (file, slot) ->
          match
            match slot with
            | Error e -> raise e
            | Ok c -> (
                let c = restrict c ~offset ~limit in
                match format with
                | `Table ->
                    let k = Cursor.cardinal c in
                    total := !total + k;
                    Format.printf "%s: %d tuple(s)@." file k
                | `Count ->
                    let k = Cursor.cardinal c in
                    total := !total + k;
                    Format.printf "%s: %d@." file k
                | `Tuples ->
                    Cursor.iter c (fun t ->
                        incr total;
                        Format.printf "%s: %a@." file Span_tuple.pp t)
                | `First -> (
                    match Cursor.next c with
                    | Some t ->
                        incr total;
                        Format.printf "%s: %a@." file Span_tuple.pp t
                    | None -> Format.printf "%s: (no tuples)@." file))
          with
          | () -> ()
          | exception e ->
              incr failed;
              Printf.eprintf "%s: %s\n%!" file (error_message e))
        (Plan.cursors ~limits plan));
  (match format with
  | `Table ->
      if !failed = 0 then
        Format.printf "%d document(s), %d tuple(s) total@." ndocs !total
      else
        Format.printf "%d document(s), %d failed, %d tuple(s) total@." ndocs !failed !total
  | _ -> ());
  if !failed > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* pack *)

let pack_cmd files dbfile shards out =
  if shards < 1 then usage "--shards must be at least 1";
  let db =
    match (dbfile, files) with
    | Some _, _ :: _ -> usage "give FILEs or --db, not both"
    | Some path, [] -> Spanner_slp.Serialize.read_file path
    | None, [] -> usage "missing documents: give FILEs or --db"
    | None, files ->
        let db = Doc_db.create () in
        List.iter
          (fun file ->
            let doc = read_file file in
            if String.length doc = 0 then
              usage (file ^ ": SLPs derive non-empty documents");
            ignore (Doc_db.add_string db file doc))
          files;
        db
  in
  let written = Corpus.pack db ~shards out in
  Format.printf "packed %d document(s), %d bytes into %d shard(s)@."
    (List.length (Doc_db.names db))
    (Doc_db.total_len db) shards;
  List.iter
    (fun f -> Format.printf "wrote %s: %d bytes@." f (Unix.stat f).Unix.st_size)
    written

(* ------------------------------------------------------------------ *)
(* enum *)

let enum_cmd formula doc file limit =
  let document = read_document doc file in
  let spanner = Evset.of_formula (parse_formula formula) in
  let prepared = Enumerate.prepare spanner document in
  Format.printf "%d result(s); preprocessing: %d nodes, %d edges@."
    (Enumerate.cardinal prepared)
    (Enumerate.stats prepared).Enumerate.nodes
    (Enumerate.stats prepared).Enumerate.edges;
  let shown = ref 0 in
  (try
     Enumerate.iter prepared (fun tuple ->
         Format.printf "%a@." Span_tuple.pp tuple;
         incr shown;
         match limit with Some k when !shown >= k -> raise Exit | _ -> ())
   with Exit -> ())

(* ------------------------------------------------------------------ *)
(* refl *)

let refl_cmd formula doc file contents =
  let document = read_document doc file in
  let spanner =
    try Spanner_refl.Refl_spanner.parse formula
    with
    | Spanner_fa.Regex.Parse_error (msg, pos) ->
        Printf.eprintf "parse error at offset %d: %s\n" pos msg;
        exit 2
    | Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let relation = Spanner_refl.Refl_spanner.eval spanner document in
  if contents then Format.printf "%a" (Span_relation.pp ~doc:document) relation
  else Format.printf "%a" (Span_relation.pp ?doc:None) relation;
  Format.printf "%d tuple(s)@." (Span_relation.cardinal relation)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd formula dot =
  let f = parse_formula formula in
  if dot then begin
    Format.printf "%a" Evset.pp_dot (Evset.of_formula f);
    exit 0
  end;
  Format.printf "formula: %a@." Regex_formula.pp f;
  Format.printf "variables: %a@." Variable.pp_set (Regex_formula.vars f);
  (match Regex_formula.functionality f with
  | Regex_formula.Total -> Format.printf "functionality: total (classical semantics)@."
  | Regex_formula.Schemaless -> Format.printf "functionality: schemaless (some variable optional)@."
  | Regex_formula.Ill_formed reason ->
      Format.printf "ill-formed: %s@." reason;
      exit 1);
  let e = Evset.of_formula f in
  Format.printf "automaton states (extended form): %d@." (Evset.size e);
  Format.printf "satisfiable: %b@." (Evset.satisfiable e);
  Format.printf "hierarchical: %b@." (Evset.hierarchical e);
  match Evset.some_witness e with
  | Some (doc, tuple) -> Format.printf "witness: %S with %a@." doc Span_tuple.pp tuple
  | None -> Format.printf "witness: none@."

(* ------------------------------------------------------------------ *)
(* compress *)

let compress_cmd doc file output =
  let document = read_document doc file in
  if String.length document = 0 then usage "cannot compress the empty document";
  let store = Slp.create_store () in
  let raw = Builder.lz78 store document in
  let balanced = Balance.rebalance store raw in
  (match output with
  | Some path ->
      let db = Spanner_slp.Doc_db.create () in
      let store' = Spanner_slp.Doc_db.store db in
      let raw' = Builder.lz78 store' document in
      Spanner_slp.Doc_db.add db "doc" (Balance.rebalance store' raw');
      Spanner_slp.Serialize.write_file db path;
      Format.printf "wrote %s@." path
  | None -> ());
  let ord, log2 = Balance.depth_stats store balanced in
  Format.printf "document length: %d@." (String.length document);
  Format.printf "LZ78 SLP size:   %d nodes@." (Slp.reachable_size store raw);
  Format.printf "balanced size:   %d nodes (order %d, ⌈log₂ n⌉ = %d)@."
    (Slp.reachable_size store balanced) ord log2;
  Format.printf "strongly balanced: %b, 2-shallow: %b@."
    (Slp.is_strongly_balanced store balanced)
    (Slp.is_c_shallow store ~c:2.0 balanced)

(* ------------------------------------------------------------------ *)
(* slpeval *)

let slpeval_cmd formula doc file limit limits =
  let document = read_document doc file in
  if String.length document = 0 then usage "SLPs derive non-empty documents";
  let store = Slp.create_store () in
  let id = Balance.rebalance store (Builder.lz78 store document) in
  let spanner = Evset.of_formula ~limits (parse_formula formula) in
  let engine = Slp_spanner.create spanner store in
  (* one gauge spans the matrix sweep and the stream: --fuel and
     --deadline-ms govern both, --max-tuples fires mid-stream *)
  let g = Limits.start limits in
  Slp_spanner.prepare_gauge g engine id;
  Format.printf "|D| = %d, SLP nodes = %d, matrices = %d, results = %d@."
    (Slp.len store id)
    (Slp.reachable_size store id)
    (Slp_spanner.matrices_computed engine)
    (Slp_spanner.cardinal engine id);
  (* -n/--limit is now take on the stream — same budget taxonomy as
     --max-tuples, but a window rather than a failure *)
  let cursor = restrict (Cursor.of_slp ~gauge:g engine id) ~offset:0 ~limit in
  Cursor.iter cursor (fun tuple -> Format.printf "%a@." Span_tuple.pp tuple)

(* ------------------------------------------------------------------ *)
(* edit *)

let edit_cmd formula doc file exprs capacity show limits offset limit format =
  let document = read_document doc file in
  if String.length document = 0 then usage "SLPs derive non-empty documents";
  let db = Spanner_slp.Doc_db.create () in
  ignore (Spanner_slp.Doc_db.add_string db "doc" document);
  let store = Spanner_slp.Doc_db.store db in
  let ct = Compiled.of_formula ~limits (parse_formula formula) in
  let session = Spanner_incr.Incr.create ?cache_capacity:capacity ct db in
  (* one plan for the whole session: the designated "doc" is resolved
     at each cursor creation, so edits re-route automatically *)
  let plan = Plan.make ct (Plan.Session (session, "doc")) in
  let evaluate () = Cursor.to_relation (Plan.cursor ~limits plan) in
  let report label id relation =
    Format.printf "%s |D| = %d, %d tuple(s)@." label (Slp.len store id)
      (Span_relation.cardinal relation)
  in
  let bad msg =
    Printf.eprintf "error: %s\n" msg;
    exit 2
  in
  report "doc:" (Spanner_slp.Doc_db.find db "doc") (evaluate ());
  let last = ref None in
  List.iteri
    (fun k src ->
      let e = try Spanner_slp.Cde.parse src with Invalid_argument msg -> bad msg in
      match
        let id = Spanner_slp.Cde.materialize db "doc" e in
        (id, evaluate ())
      with
      | id, relation ->
          report (Format.asprintf "edit %d: %a ->" (k + 1) Spanner_slp.Cde.pp e) id relation;
          last := Some relation
      | exception Invalid_argument msg -> bad msg
      | exception Not_found -> bad ("unknown document name in " ^ src))
    exprs;
  (match (format, limit, offset) with
  | None, None, 0 -> (
      match (show, !last) with
      | true, Some relation -> Format.printf "%a" (Span_relation.pp ?doc:None) relation
      | _ -> ())
  | format, limit, offset ->
      (* streaming flags render the final document state through a
         fresh cursor (cached summaries make the re-walk cheap) *)
      let fmt = match format with Some f -> f | None -> `Table in
      render (Plan.cursor ~limits plan) ~offset ~limit ~format:fmt);
  let st = Spanner_incr.Incr.stats session in
  Format.printf "cache: %d hits, %d misses, %d evictions, %d entries (capacity %d), %d nodes created@."
    st.Spanner_incr.Incr.hits st.Spanner_incr.Incr.misses st.Spanner_incr.Incr.evictions
    st.Spanner_incr.Incr.entries st.Spanner_incr.Incr.capacity
    st.Spanner_incr.Incr.nodes_created

(* ------------------------------------------------------------------ *)
(* query *)

let query_cmd expr doc files jobs fuse_states contents limits offset limit format =
  let e = Algebra.parse ~load:read_file expr in
  (* the sample document prices join operands and annotates the plan;
     for a batch, the first file stands in for the rest *)
  let optimize sample = Optimizer.optimize ~limits ?fuse_states ~sample e in
  let single document =
    let plan = optimize document in
    render
      ?doc:(if contents then Some document else None)
      (Optimizer.cursor ~limits plan document)
      ~offset ~limit ~format
  in
  match (doc, files) with
  | Some _, _ :: _ -> usage "give either DOC or --file, not both"
  | None, [] -> usage "missing document: give DOC or --file"
  | Some document, [] -> single document
  | None, [ path ] -> single (read_file path)
  | None, paths ->
      let docs = List.map (fun f -> (f, read_file f)) paths in
      let plan = optimize (snd (List.hd docs)) in
      (match Optimizer.compiled plan with
      | Some ct -> Format.printf "fused: one automaton, %d states@." (Compiled.states ct)
      | None ->
          Format.printf "fused: %d automata under stream operators@."
            (Optimizer.fused_count plan));
      let total = ref 0 in
      let failed = ref 0 in
      (match (Optimizer.compiled plan, format, limit, offset) with
      | Some ct, `Table, None, 0 ->
          (* the whole query is one automaton: reuse the planner's
             parallel materialising batch path *)
          Array.iter
            (fun (file, result) ->
              match result with
              | Ok relation ->
                  let k = Span_relation.cardinal relation in
                  total := !total + k;
                  Format.printf "%s: %d tuple(s)@." file k
              | Error err ->
                  incr failed;
                  Printf.eprintf "%s: %s\n%!" file (error_message err))
            (Plan.relations ?jobs ~limits (Plan.make ct (Plan.Docs (Array.of_list docs))))
      | _ ->
          (* stream operators above the fused automata: sequential
             per-document cursors, partial failures cost their slot *)
          List.iter
            (fun (file, document) ->
              match
                let c = restrict (Optimizer.cursor ~limits plan document) ~offset ~limit in
                match format with
                | `Table ->
                    let k = Cursor.cardinal c in
                    total := !total + k;
                    Format.printf "%s: %d tuple(s)@." file k
                | `Count ->
                    let k = Cursor.cardinal c in
                    total := !total + k;
                    Format.printf "%s: %d@." file k
                | `Tuples ->
                    Cursor.iter c (fun t ->
                        incr total;
                        Format.printf "%s: %a@." file Span_tuple.pp t)
                | `First -> (
                    match Cursor.next c with
                    | Some t ->
                        incr total;
                        Format.printf "%s: %a@." file Span_tuple.pp t
                    | None -> Format.printf "%s: (no tuples)@." file)
              with
              | () -> ()
              | exception err ->
                  incr failed;
                  Printf.eprintf "%s: %s\n%!" file (error_message err))
            docs);
      (match format with
      | `Table ->
          if !failed = 0 then
            Format.printf "%d document(s), %d tuple(s) total@." (List.length docs) !total
          else
            Format.printf "%d document(s), %d failed, %d tuple(s) total@."
              (List.length docs) !failed !total
      | _ -> ());
      if !failed > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_plan_cmd formula doc file slp session dbfile storefile limits =
  let ct = Compiled.of_formula ~limits (parse_formula formula) in
  let plan =
    match (dbfile, storefile) with
    | Some _, Some _ -> usage "give at most one of --db, --store"
    | _, Some path ->
        if slp || session then usage "give at most one of --slp, --session, --store";
        Plan.make ct (Plan.Packed (Corpus.open_path path))
    | Some path, None ->
        if slp || session then usage "give at most one of --slp, --session, --db";
        Plan.make ct (Plan.Db (Spanner_slp.Serialize.read_file path))
    | None, None ->
        let document = read_document doc file in
        if slp && session then usage "give at most one of --slp, --session, --db";
        if (slp || session) && String.length document = 0 then
          usage "SLPs derive non-empty documents";
        if session then begin
          let db = Spanner_slp.Doc_db.create () in
          ignore (Spanner_slp.Doc_db.add_string db "doc" document);
          let s = Spanner_incr.Incr.create ct db in
          (* warm the summary cache once so the plan reports the state
             a live session would actually be in *)
          ignore (Spanner_incr.Incr.eval_doc ~limits s "doc");
          Plan.make ct (Plan.Session (s, "doc"))
        end
        else if slp then begin
          let store = Slp.create_store () in
          let id = Balance.rebalance store (Builder.lz78 store document) in
          Plan.make ct (Plan.Slp_node (store, id))
        end
        else Plan.make ct (Plan.Doc document)
  in
  Format.printf "%a" Plan.pp plan

let explain_cmd formula doc file slp session dbfile storefile algebra fuse_states limits =
  if algebra then begin
    if slp || session || dbfile <> None || storefile <> None then
      usage "--algebra plans over plain documents (no --slp/--session/--db/--store)";
    let e = Algebra.parse ~load:read_file formula in
    let sample =
      match (doc, file) with None, None -> None | d, f -> Some (read_document d f)
    in
    let plan = Optimizer.optimize ~limits ?fuse_states ?sample e in
    Format.printf "%a" Optimizer.pp plan
  end
  else explain_plan_cmd formula doc file slp session dbfile storefile limits

(* ------------------------------------------------------------------ *)
(* datalog *)

let datalog_cmd program_file doc file query =
  let document = read_document doc file in
  let source =
    let ic = open_in_bin program_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let program =
    try Spanner_datalog.Datalog.parse source
    with
    | Invalid_argument m ->
        Printf.eprintf "%s\n" m;
        exit 2
    | Spanner_fa.Regex.Parse_error (m, pos) ->
        Printf.eprintf "formula parse error at offset %d: %s\n" pos m;
        exit 2
  in
  let result = Spanner_datalog.Datalog.run program document in
  (match query with
  | Some pred -> (
      match Spanner_datalog.Datalog.facts result pred with
      | rows ->
          List.iter
            (fun row ->
              Format.printf "%s(%s)@." pred
                (String.concat ", " (Array.to_list (Array.map Span.to_string row))))
            rows;
          Format.printf "%d fact(s)@." (List.length rows)
      | exception Not_found ->
          Printf.eprintf "unknown predicate %s\n" pred;
          exit 2)
  | None ->
      Format.printf "fixpoint after %d round(s)@." (Spanner_datalog.Datalog.iterations result))

(* ------------------------------------------------------------------ *)
(* Command-line plumbing *)

open Cmdliner

let formula_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc:"Spanner formula.")

let doc_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"DOC" ~doc:"Document (inline).")

let doc_only_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"DOC" ~doc:"Document (inline).")

let file_arg =
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Read the document from $(docv).")

let contents_arg =
  Arg.(value & flag & info [ "c"; "contents" ] ~doc:"Print extracted factor contents next to spans.")

let limit_arg =
  Arg.(value & opt (some int) None & info [ "n"; "limit" ] ~docv:"K" ~doc:"Print at most $(docv) tuples.")

let offset_arg =
  Arg.(
    value & opt int 0
    & info [ "offset" ] ~docv:"K" ~doc:"Skip the first $(docv) result tuples of the stream.")

let format_arg =
  Arg.(
    value
    & opt (some (enum [ ("tuples", `Tuples); ("count", `Count); ("first", `First) ])) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Streamed output instead of the default table: $(b,tuples) prints each tuple as it \
           is pulled, $(b,count) prints only the count, $(b,first) prints the first tuple and \
           stops — with --limit/--offset, no tuple beyond the window is ever enumerated.")

let compiled_arg =
  Arg.(
    value & flag
    & info [ "compiled" ]
        ~doc:"Evaluate through the compiled engine (dense per-spanner transition tables).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Evaluate documents with $(docv) parallel domains (default: all cores).")

let files_arg =
  Arg.(value & pos_right 0 file [] & info [] ~docv:"FILE" ~doc:"Document files.")

let catch f =
  try f () with
  | Usage m ->
      Printf.eprintf "usage error: %s\n" m;
      exit 2
  | Failure m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  | Limits.Spanner_error e ->
      Printf.eprintf "error: %s\n" (Limits.to_string e);
      exit (Limits.exit_code e)
  | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Abort with exit code 3 after $(docv) evaluation steps (default: unbounded).")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Abort with exit code 3 after $(docv) milliseconds of wall-clock time per document.")

let max_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Reject spanners compiling to more than $(docv) automaton states (exit code 3).")

let max_tuples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-tuples" ] ~docv:"N"
        ~doc:"Abort with exit code 3 once a document yields more than $(docv) result tuples.")

let limits_term =
  Term.(
    const (fun fuel time_ms max_states max_tuples ->
        Limits.make ?fuel ?time_ms ?max_states ?max_tuples ())
    $ fuel_arg $ deadline_arg $ max_states_arg $ max_tuples_arg)

let table_default = function Some f -> f | None -> `Table

let eval_term =
  Term.(
    const (fun formula doc file contents compiled limits offset limit format ->
        catch (fun () ->
            eval_cmd formula doc file contents compiled limits offset limit
              (table_default format)))
    $ formula_arg $ doc_arg $ file_arg $ contents_arg $ compiled_arg $ limits_term
    $ offset_arg $ limit_arg $ format_arg)

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", `Auto);
             ("compiled", `Compiled);
             ("compressed", `Compressed);
             ("decompress", `Decompress);
           ])
        `Auto
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine: $(b,auto) lets the planner choose from the input shape \
           (default; see the $(b,explain) subcommand); $(b,compiled) reads the files as-is; \
           $(b,compressed) builds a shared SLP database and evaluates in the compressed \
           domain (§4.2); $(b,decompress) builds the same database but decompresses before \
           evaluating (the baseline the compressed engine is measured against).")

let store_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "store" ] ~docv:"PATH"
        ~doc:
          "Evaluate over the packed corpus at $(docv) — a $(b,pack)-built arena or shard \
           manifest, mapped zero-copy; multi-shard corpora evaluate shard-parallel.")

let batch_term =
  Term.(
    const (fun formula store files jobs engine limits offset limit format ->
        catch (fun () ->
            batch_cmd formula store files jobs engine limits offset limit
              (table_default format)))
    $ formula_arg $ store_arg $ files_arg $ jobs_arg $ engine_arg $ limits_term $ offset_arg
    $ limit_arg $ format_arg)

let pack_files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Document files to pack.")

let pack_db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "db" ] ~docv:"PATH" ~doc:"Pack the documents of the SLPDB database at $(docv).")

let pack_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Split the corpus round-robin into $(docv) arena files behind a manifest \
           (default: one arena, no manifest).")

let pack_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Write the arena (or manifest) to $(docv).")

let pack_term =
  Term.(
    const (fun files dbfile shards out -> catch (fun () -> pack_cmd files dbfile shards out))
    $ pack_files_arg $ pack_db_arg $ pack_shards_arg $ pack_out_arg)

let enum_term =
  Term.(
    const (fun formula doc file limit -> catch (fun () -> enum_cmd formula doc file limit))
    $ formula_arg $ doc_arg $ file_arg $ limit_arg)

let refl_term =
  Term.(
    const (fun formula doc file contents -> catch (fun () -> refl_cmd formula doc file contents))
    $ formula_arg $ doc_arg $ file_arg $ contents_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit the compiled automaton as Graphviz DOT and exit.")

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Datalog program file.")

let doc_arg2 =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"DOC" ~doc:"Document (inline).")

let query_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"PRED" ~doc:"Print the facts of predicate $(docv).")

let datalog_term =
  Term.(
    const (fun program doc file query -> catch (fun () -> datalog_cmd program doc file query))
    $ program_arg $ doc_arg2 $ file_arg $ query_arg)

let analyze_term =
  Term.(
    const (fun formula dot -> catch (fun () -> analyze_cmd formula dot))
    $ formula_arg $ dot_arg)

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Also save the compressed database (SLPDB format) to $(docv).")

let compress_term =
  Term.(
    const (fun doc file output -> catch (fun () -> compress_cmd doc file output))
    $ doc_only_arg $ file_arg $ output_arg)

let slpeval_term =
  Term.(
    const (fun formula doc file limit limits ->
        catch (fun () -> slpeval_cmd formula doc file limit limits))
    $ formula_arg $ doc_arg $ file_arg $ limit_arg $ limits_term)

let exprs_arg =
  Arg.(
    value & pos_right 1 string []
    & info [] ~docv:"EXPR"
        ~doc:
          "CDE-expressions applied in order; each re-designates document $(b,doc). Syntax: \
           concat(e, e), extract(e, i, j), delete(e, i, j), insert(e, e, k), copy(e, i, j, k) \
           over document names.")

let capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "capacity" ] ~docv:"N" ~doc:"Cache at most $(docv) per-node summaries (LRU).")

let show_arg =
  Arg.(value & flag & info [ "show" ] ~doc:"Print the relation after the last edit.")

let edit_term =
  Term.(
    const (fun formula doc file exprs capacity show limits offset limit format ->
        catch (fun () ->
            edit_cmd formula doc file exprs capacity show limits offset limit format))
    $ formula_arg $ doc_arg $ file_arg $ exprs_arg $ capacity_arg $ show_arg $ limits_term
    $ offset_arg $ limit_arg $ format_arg)

let slp_shape_arg =
  Arg.(
    value & flag
    & info [ "slp" ] ~doc:"Plan over the SLP-compressed form of the document (§4.2).")

let session_shape_arg =
  Arg.(
    value & flag
    & info [ "session" ] ~doc:"Plan over a live CDE session holding the document (§4.3).")

let db_shape_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:"Plan over a frozen document database ($(docv) in SLPDB format, see compress -o).")

let algebra_flag =
  Arg.(
    value & flag
    & info [ "algebra" ]
        ~doc:
          "Treat FORMULA as an algebra expression and print the optimizer's rewritten costed \
           plan tree — per-node state estimates and each fuse-vs-materialise decision — \
           instead of the input-shape plan.")

let fuse_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuse-states" ] ~docv:"N"
        ~doc:
          "Fuse budget: compose a Select-free subtree into one automaton only while its \
           estimated product stays within $(docv) states, falling back to materialised \
           evaluation above it (default: 4096, capped by --max-states).")

let store_shape_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "store" ] ~docv:"PATH"
        ~doc:"Plan over the packed arena corpus (or shard manifest) at $(docv).")

let explain_term =
  Term.(
    const (fun formula doc file slp session dbfile storefile algebra fuse_states limits ->
        catch (fun () ->
            explain_cmd formula doc file slp session dbfile storefile algebra fuse_states
              limits))
    $ formula_arg $ doc_arg $ file_arg $ slp_shape_arg $ session_shape_arg $ db_shape_arg
    $ store_shape_arg $ algebra_flag $ fuse_states_arg $ limits_term)

let expr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EXPR"
        ~doc:
          "Algebra expression over spanner formulas: $(b,rgx:\"...\") and $(b,file:\"...\") \
           leaves combined with $(b,|) (union), $(b,&) (join), $(b,pi[x,y](e)) (projection) \
           and $(b,sel[x,y](e)) (string-equality selection); $(b,&) binds tighter than \
           $(b,|), parentheses group.")

let qfiles_arg =
  Arg.(
    value
    & opt_all file []
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Read a document from $(docv); repeat for a batch (compile once, run per file).")

let query_term =
  Term.(
    const (fun expr doc files jobs fuse_states contents limits offset limit format ->
        catch (fun () ->
            query_cmd expr doc files jobs fuse_states contents limits offset limit
              (table_default format)))
    $ expr_arg $ doc_arg $ qfiles_arg $ jobs_arg $ fuse_states_arg $ contents_arg
    $ limits_term $ offset_arg $ limit_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* serve / client *)

module Server = Spanner_serve.Server
module Serve_client = Spanner_serve.Client

let serve_cmd address jobs queue plan_cache doc_cache window max_frame fuse_states limits
    io_timeout_ms idle_timeout_ms drain_ms =
  let address = Server.address_of_string address in
  let config =
    {
      (Server.default_config address) with
      Server.workers = jobs;
      queue;
      plan_cache;
      doc_cache;
      window;
      max_frame;
      fuse_states;
      defaults = limits;
      io_timeout_ms;
      idle_timeout_ms;
      drain_ms;
    }
  in
  let t = Server.start config in
  Printf.eprintf "listening on %s\n%!" (Server.address_to_string address);
  (* the handler must not call Server.stop directly: it takes the
     server mutex, and OCaml signal handlers run at safe points on a
     running thread — if the signal lands inside a locked section the
     error-checking mutex raises from the handler.  So the handler
     only flips an atomic; a watcher thread performs the stop.  (The
     watcher lingers after a SHUTDOWN-verb stop; process exit after
     [wait] reaps it.) *)
  let stop_requested = Atomic.make false in
  let stop_on_signal _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal) with _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal) with _ -> ());
  let _watcher =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_requested) do
          Thread.delay 0.05
        done;
        Server.stop t)
      ()
  in
  Server.wait t

let client_cmd address words body body_file retry_ms backoff_ms =
  if words = [] then raise (Usage "client: expected a protocol command, e.g. STATS");
  let address = Server.address_of_string address in
  let body =
    match (body, body_file) with
    | Some _, Some _ -> raise (Usage "client: --body and --body-file are exclusive")
    | Some b, None -> Some b
    | None, Some f -> Some (In_channel.with_open_bin f In_channel.input_all)
    | None, None -> None
  in
  let payload =
    String.concat " " words ^ match body with Some b -> "\n" ^ b | None -> ""
  in
  (* the server may still be coming up (cram starts it in the
     background): retry the connect within the deadline *)
  let deadline = Unix.gettimeofday () +. (float_of_int retry_ms /. 1000.) in
  let rec connect () =
    try Serve_client.connect address
    with Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) as e ->
      if Unix.gettimeofday () >= deadline then raise e
      else begin
        Unix.sleepf 0.02;
        connect ()
      end
  in
  let conn = connect () in
  let frames =
    Fun.protect ~finally:(fun () -> Serve_client.close conn) (fun () ->
        Serve_client.request ~backoff_ms conn payload)
  in
  List.iter print_endline frames;
  match List.filter_map Serve_client.err_code frames with
  | [] -> ()
  | codes -> exit (List.nth codes (List.length codes - 1))

let address_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:
          "Server address: $(b,unix:PATH) (or a bare socket path) or $(b,tcp:HOST:PORT).")

let serve_jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains executing queries (default: all cores minus one).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission-queue capacity: queries beyond $(docv) waiting are shed with the \
           over-budget status instead of queueing without bound.")

let plan_cache_arg =
  Arg.(
    value & opt int 128
    & info [ "plan-cache" ] ~docv:"N"
        ~doc:"Compiled-plan LRU capacity, in queries (keyed by normalized algebra text).")

let doc_cache_arg =
  Arg.(
    value & opt int 128
    & info [ "doc-cache" ] ~docv:"N"
        ~doc:"Decompressed-document LRU capacity, in documents.")

let window_arg =
  Arg.(
    value & opt int 64
    & info [ "window" ] ~docv:"K"
        ~doc:"Stream at most $(docv) tuples per response frame (backpressure granularity).")

let max_frame_arg =
  Arg.(
    value
    & opt int Spanner_serve.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:"Reject request frames larger than $(docv) bytes (default 4 MiB).")

let io_timeout_arg =
  Arg.(
    value & opt int 0
    & info [ "io-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Cut a connection whose request frame stalls mid-read or whose response write \
           stalls for $(docv) ms (slowloris defense; 0 disables).")

let idle_timeout_arg =
  Arg.(
    value & opt int 0
    & info [ "idle-timeout-ms" ] ~docv:"MS"
        ~doc:"Reap a connection that sends no request for $(docv) ms (0 disables).")

let drain_ms_arg =
  Arg.(
    value & opt int 1000
    & info [ "drain-ms" ] ~docv:"MS"
        ~doc:
          "On SHUTDOWN or SIGTERM, let in-flight requests finish for up to $(docv) ms \
           before force-closing their connections (0 forces immediately).")

let serve_term =
  Term.(
    const
      (fun address jobs queue plan_cache doc_cache window max_frame fuse_states limits
           io_timeout_ms idle_timeout_ms drain_ms ->
        catch (fun () ->
            serve_cmd address jobs queue plan_cache doc_cache window max_frame fuse_states
              limits io_timeout_ms idle_timeout_ms drain_ms))
    $ address_arg $ serve_jobs_arg $ queue_arg $ plan_cache_arg $ doc_cache_arg
    $ window_arg $ max_frame_arg $ fuse_states_arg $ limits_term $ io_timeout_arg
    $ idle_timeout_arg $ drain_ms_arg)

let words_arg =
  Arg.(
    value & pos_right 0 string []
    & info [] ~docv:"WORD"
        ~doc:
          "Protocol command words, e.g. $(b,DEFINE name), $(b,LOAD store DOC doc), \
           $(b,QUERY name store doc limit=10), $(b,STATS), $(b,SHUTDOWN).")

let body_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "body" ] ~docv:"TEXT" ~doc:"Request body (the text after the command line).")

let body_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "body-file" ] ~docv:"FILE" ~doc:"Read the request body from $(docv).")

let retry_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "retry-ms" ] ~docv:"MS"
        ~doc:"Keep retrying a refused connection for up to $(docv) ms (a just-started server).")

let backoff_arg =
  Arg.(
    value & opt int 0
    & info [ "backoff" ] ~docv:"MS"
        ~doc:
          "Retry idempotent requests (QUERY, EXPLAIN, STATS) on transport failures with \
           exponential backoff starting at $(docv) ms plus jitter (0 disables).")

let client_term =
  Term.(
    const (fun address words body body_file retry_ms backoff_ms ->
        catch (fun () ->
            try client_cmd address words body body_file retry_ms backoff_ms
            with Unix.Unix_error (e, _, _) ->
              Printf.eprintf "error: cannot reach server: %s\n" (Unix.error_message e);
              Stdlib.exit 1))
    $ address_arg $ words_arg $ body_arg $ body_file_arg $ retry_ms_arg $ backoff_arg)

let cmds =
  [
    Cmd.v (Cmd.info "eval" ~doc:"Evaluate a regex-formula spanner on a document.") eval_term;
    Cmd.v
      (Cmd.info "batch"
         ~doc:
           "Evaluate one spanner on many document files: compile once, run the \
            linear-time document pass per file, in parallel across domains.")
      batch_term;
    Cmd.v
      (Cmd.info "pack"
         ~doc:
           "Pack documents (or an SLPDB database) into frozen arena files: the SLP laid out \
            as flat columns that map back in O(1) with zero deserialization; --shards \
            splits the corpus behind a manifest for shard-parallel evaluation.")
      pack_term;
    Cmd.v (Cmd.info "enum" ~doc:"Enumerate result tuples with the two-phase algorithm (§2.5).")
      enum_term;
    Cmd.v (Cmd.info "refl" ~doc:"Evaluate a refl-spanner (&x references, §3).") refl_term;
    Cmd.v
      (Cmd.info "datalog" ~doc:"Run a datalog-over-spanners program on a document (RGXLog).")
      datalog_term;
    Cmd.v (Cmd.info "analyze" ~doc:"Static analysis of a spanner (§2.4).") analyze_term;
    Cmd.v (Cmd.info "compress" ~doc:"Compress a document into a balanced SLP (§4.1).")
      compress_term;
    Cmd.v
      (Cmd.info "slpeval" ~doc:"Evaluate a spanner over the SLP-compressed document (§4.2).")
      slpeval_term;
    Cmd.v
      (Cmd.info "edit"
         ~doc:
           "Apply complex document edits and re-evaluate incrementally: per-node transition \
            summaries are cached, so each edit recomputes only the nodes it created (§4.3).")
      edit_term;
    Cmd.v
      (Cmd.info "query"
         ~doc:
           "Evaluate an algebra expression (unions, joins, projections, selections over \
            spanner formulas) through the cost-based optimizer: Select-free subtrees fuse \
            into single automata under a state budget, joins reorder by sampled \
            cardinality, and results stream without intermediate relations.")
      query_term;
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Print the evaluation plan the planner would pick for a query — chosen engine, \
            the input-shape facts it decided from, and why — without running it.")
      explain_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the persistent query service: named spanners and frozen document stores \
            shared across connections, a compiled-plan cache keyed by normalized query \
            text, worker domains behind a bounded admission queue that sheds under \
            overload, and streamed responses with windowed backpressure.")
      serve_term;
    Cmd.v
      (Cmd.info "client"
         ~doc:
           "Send one request to a running spanner service and print the response frames; \
            the exit code follows the server's ERR status (the usual taxonomy).")
      client_term;
  ]

let () =
  let info =
    Cmd.info "spanner-cli" ~version:"1.0.0"
      ~doc:"Document spanners: evaluation, enumeration, refl-spanners, SLP-compressed documents."
  in
  exit (Cmd.eval (Cmd.group info cmds))
