(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md
   (the survey has no measurement tables; its complexity claims are the
   evaluation — see DESIGN.md §2 for the experiment index).

   Run with:  dune exec bench/main.exe

   Each experiment prints a table; the Bechamel section at the end runs
   one micro-benchmark per experiment family through bechamel's OLS
   estimator. *)

open Spanner_core
module Slp = Spanner_slp.Slp
module Builder = Spanner_slp.Builder
module Balance = Spanner_slp.Balance
module Doc_db = Spanner_slp.Doc_db
module Cde = Spanner_slp.Cde
module Accept = Spanner_slp.Accept
module Slp_spanner = Spanner_slp.Slp_spanner
module Figure1 = Spanner_slp.Figure1
module Incr = Spanner_incr.Incr
module Refl_spanner = Spanner_refl.Refl_spanner
module X = Spanner_util.Xoshiro
module Pool = Spanner_util.Pool
module Limits = Spanner_util.Limits
module Nfa = Spanner_fa.Nfa
module Regex = Spanner_fa.Regex
module Cursor = Spanner_engine.Cursor
module Optimizer = Spanner_engine.Optimizer
open Tables

let v = Variable.of_string
let vs = Variable.set_of_list

(* --smoke shrinks every experiment to sanity-check sizes (seconds, not
   minutes) so the whole harness can run under the @bench-smoke alias;
   the shapes the notes describe are not expected to show at these
   sizes, only to execute. *)
let smoke = ref false
let sizes full tiny = if !smoke then tiny else full
let sc full tiny = if !smoke then tiny else full

(* ------------------------------------------------------------------ *)
(* F1: Figure 1, reproduced exactly                                    *)

let figure1 () =
  section "F1: Figure 1 — the example SLP (solid + grey part)";
  let fig = Figure1.build () in
  let store = Doc_db.store fig.Figure1.db in
  let a4, a5 = Figure1.extend fig in
  let named =
    [
      ("A1", fig.Figure1.a1);
      ("A2", fig.Figure1.a2);
      ("A3", fig.Figure1.a3);
      ("B", fig.Figure1.b);
      ("C", fig.Figure1.c);
      ("D", fig.Figure1.d);
      ("E", fig.Figure1.e);
      ("F", fig.Figure1.f);
      ("A4 (grey)", a4);
      ("A5 (grey)", a5);
    ]
  in
  let rows =
    List.map
      (fun (name, id) ->
        [
          name;
          Slp.to_string store id;
          string_of_int (Slp.order store id);
          string_of_int (Slp.balance store id);
        ])
      named
  in
  print_table ~title:"node / derived document / ord / bal (§4.1 values)"
    ~header:[ "node"; "derived document"; "ord"; "bal" ]
    rows;
  note "paper: ord F = ord E = 2, ord C = 3, ord B = 4, ord D = ord A3 = 5, ord A1 = ord A2 = 6";
  note "paper: all nodes balanced except bal A1 = 2, bal A2 = bal A3 = -2";
  note "D(A5) = abbcabcaabbcaabbca as computed in §4.3: %s"
    (if Slp.to_string store a5 = "abbcabcaabbcaabbca" then "reproduced OK" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* E1: enumeration for regular spanners (§2.5)                         *)

let e1_enumeration () =
  section
    "E1: regular-spanner enumeration — linear preprocessing, delay independent of |D| (§2.5)";
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let rng = X.create 1 in
  let rows =
    List.map
      (fun k ->
        let n = 1 lsl k in
        let doc = X.string rng "ab" n in
        let prep = best_of 3 (fun () -> ignore (Enumerate.prepare e doc)) in
        let p = Enumerate.prepare e doc in
        let count = Enumerate.cardinal p in
        Gc.full_major ();
        let max_delay = ref 0.0 and total = ref 0.0 and produced = ref 0 in
        let last = ref (now ()) in
        Enumerate.iter p (fun _ ->
            let t = now () in
            let gap = t -. !last in
            last := t;
            incr produced;
            total := !total +. gap;
            if gap > !max_delay then max_delay := gap);
        [
          pretty_int n;
          pretty_time prep;
          Printf.sprintf "%.1f" (prep *. 1e9 /. float_of_int n);
          pretty_int count;
          pretty_time (!total /. float_of_int (max 1 !produced));
          pretty_time !max_delay;
        ])
      (sizes [ 10; 11; 12; 13; 14; 15; 16; 17 ] [ 6; 7 ])
  in
  print_table ~title:"spanner [ab]*!x{ab}[ab]* on random documents"
    ~header:[ "|D|"; "preprocess"; "ns/char"; "tuples"; "mean delay"; "max delay" ]
    rows;
  note "expected shape: ns/char flat (linear preprocessing); mean delay flat vs |D|."

(* ------------------------------------------------------------------ *)
(* E2: regular vs core evaluation (§2.4)                               *)

let e2_regular_vs_core () =
  section
    "E2: evaluation — polynomial for regular spanners, exponential search space for core (§2.4)";
  let doc = "abababababab" in
  let rows =
    List.map
      (fun n ->
        let formula =
          String.concat "" (List.init n (fun i -> Printf.sprintf "!pv%d{[ab]*}" i))
        in
        let expr =
          let rec add_selections i acc =
            if i + 1 >= n then acc
            else
              add_selections (i + 2)
                (Algebra.Select
                   ( vs [ v (Printf.sprintf "pv%d" i); v (Printf.sprintf "pv%d" (i + 1)) ],
                     acc ))
          in
          add_selections 0 (Algebra.formula formula)
        in
        let s = Core_spanner.simplify expr in
        let auto = s.Core_spanner.automaton in
        let regular_time = best_of 3 (fun () -> ignore (Evset.nonempty_on auto doc)) in
        let splits = Enumerate.cardinal (Enumerate.prepare auto doc) in
        let results, core_time = time (fun () -> Span_relation.cardinal (Core_spanner.eval s doc)) in
        [
          string_of_int n;
          pretty_int splits;
          pretty_time regular_time;
          pretty_time core_time;
          pretty_int results;
        ])
      (sizes [ 2; 3; 4; 5; 6 ] [ 2; 3 ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "pattern matching with variables: x1{S*}...xn{S*} + adjacent-pair selections on %S" doc)
    ~header:[ "n vars"; "automaton tuples"; "regular NonEmpt"; "core eval"; "core results" ]
    rows;
  note
    "expected shape: regular time flat; the core search space (automaton tuples) grows as \
     |D|^(n-1).";
  let e = Evset.of_formula (Regex_formula.parse "!x{a[ab]*}!y{b+}") in
  let rng = X.create 3 in
  let rows =
    List.map
      (fun k ->
        let n = 1 lsl k in
        let doc = X.string rng "a" (n - 2) ^ "bb" in
        let tuple =
          Span_tuple.of_list
            [ (v "x", Span.make 1 (n - 1)); (v "y", Span.make (n - 1) (n + 1)) ]
        in
        let t = best_of 3 (fun () -> ignore (Evset.accepts_tuple e doc tuple)) in
        [ pretty_int n; pretty_time t; Printf.sprintf "%.1f" (t *. 1e9 /. float_of_int n) ])
      (sizes [ 10; 12; 14; 16; 18 ] [ 8; 10 ])
  in
  print_table ~title:"regular ModelChecking scaling" ~header:[ "|D|"; "time"; "ns/char" ] rows

(* ------------------------------------------------------------------ *)
(* E3: core-spanner expressiveness (§2.4)                              *)

let e3_core_expressiveness () =
  section "E3: core spanners express the word-equation relations ~com and ~cyc (§2.4)";
  let com_spanner =
    Core_spanner.simplify
      (Algebra.Select
         ( vs [ v "cbx"; v "cbx2" ],
           Algebra.Select
             ( vs [ v "cby"; v "cby2" ],
               Algebra.Join
                 ( Algebra.formula "!cbx{[ab]*}!cby{[ab]*}",
                   Algebra.formula "!cby2{[ab]*}!cbx2{[ab]*}" ) ) ))
  in
  let cyc_spanner =
    Core_spanner.simplify
      (Algebra.Select
         ( vs [ v "cu1"; v "cv2" ],
           Algebra.Select
             ( vs [ v "cu2"; v "cv1" ],
               Algebra.formula "!cu1{[ab]*}!cu2{[ab]*}#!cv1{[ab]*}!cv2{[ab]*}" ) ))
  in
  let commutes_spanner u w =
    let doc = u ^ w in
    List.exists
      (fun tuple ->
        match Span_tuple.find tuple (v "cbx") with
        | Some sp -> Span.left sp = 1 && Span.right sp = String.length u + 1
        | None -> false)
      (Span_relation.tuples (Core_spanner.eval com_spanner doc))
  in
  let cyc u w = Core_spanner.nonempty_on cyc_spanner (u ^ "#" ^ w) in
  let rng = X.create 17 in
  let samples = 60 in
  let com_agree = ref 0 and cyc_agree = ref 0 in
  let com_time = ref 0.0 and cyc_time = ref 0.0 in
  for _ = 1 to samples do
    let u = X.string rng "ab" (X.int rng 5) in
    let w = X.string rng "ab" (X.int rng 5) in
    let t0 = now () in
    let got_com = commutes_spanner u w in
    com_time := !com_time +. (now () -. t0);
    if got_com = (u ^ w = w ^ u) then incr com_agree;
    let w2 =
      if X.bool rng && String.length u > 0 then
        let k = X.int rng (String.length u) in
        String.sub u k (String.length u - k) ^ String.sub u 0 k
      else w
    in
    let is_shift =
      String.length u = String.length w2
      && (u = ""
         || List.exists
              (fun k -> String.sub u k (String.length u - k) ^ String.sub u 0 k = w2)
              (List.init (String.length u) Fun.id))
    in
    let t1 = now () in
    let got_cyc = cyc u w2 in
    cyc_time := !cyc_time +. (now () -. t1);
    if got_cyc = is_shift then incr cyc_agree
  done;
  print_table ~title:"agreement with direct string predicates (random pairs)"
    ~header:[ "relation"; "agreement"; "mean time per check" ]
    [
      [
        "~com (xy = yx)";
        Printf.sprintf "%d/%d" !com_agree samples;
        pretty_time (!com_time /. float_of_int samples);
      ];
      [
        "~cyc (xz = zy)";
        Printf.sprintf "%d/%d" !cyc_agree samples;
        pretty_time (!cyc_time /. float_of_int samples);
      ];
    ];
  note "expected shape: 100%% agreement — core spanners capture the word-equation relations."

(* ------------------------------------------------------------------ *)
(* E4: refl vs core (§3.3)                                             *)

let e4_refl_vs_core () =
  section "E4: refl-spanner ModelChecking is linear in |D|; the core route explodes (§3.3)";
  let refl = Refl_spanner.parse "!x{[ab]+}c!y{&x}" in
  let core = Refl_spanner.to_core refl in
  let rng = X.create 9 in
  let rows =
    List.map
      (fun k ->
        let half = 1 lsl k in
        let w = X.string rng "ab" half in
        let doc = w ^ "c" ^ w in
        let n = String.length doc in
        let tuple =
          Span_tuple.of_list
            [ (v "x", Span.make 1 (half + 1)); (v "y", Span.make (half + 2) (n + 1)) ]
        in
        let refl_time = best_of 3 (fun () -> ignore (Refl_spanner.model_check refl doc tuple)) in
        assert (Refl_spanner.model_check refl doc tuple);
        let core_time =
          if k <= 9 then
            Some (time_unit (fun () -> ignore (Core_spanner.model_check core doc tuple)))
          else None
        in
        [
          pretty_int n;
          pretty_time refl_time;
          Printf.sprintf "%.1f" (refl_time *. 1e9 /. float_of_int n);
          (match core_time with Some t -> pretty_time t | None -> "(skipped)");
        ])
      (sizes [ 4; 5; 6; 7; 8; 9; 10; 12; 14 ] [ 4; 5 ])
  in
  print_table ~title:"ModelChecking w.c.w with the backreference x = y"
    ~header:[ "|D|"; "refl MC"; "refl ns/char"; "core MC (enumerate+filter)" ]
    rows;
  note "expected shape: refl ns/char flat (linear, §3.3); core time grows superlinearly.";
  let sat_time = best_of 5 (fun () -> ignore (Refl_spanner.satisfiable refl)) in
  note "refl Satisfiability (plain reachability, §3.3): %s" (pretty_time sat_time)

(* ------------------------------------------------------------------ *)
(* E5: NFA acceptance over SLPs (§4.2)                                 *)

let e5_slp_accept () =
  section "E5: NFA acceptance — O(|S|·n³) on the SLP vs linear-time decompression (§4.2)";
  let nfa = Nfa.of_regex (Regex.parse "(ab)*") in
  let rows =
    List.map
      (fun k ->
        let store = Slp.create_store () in
        let id = Builder.repeat store "ab" (1 lsl k) in
        let slp_size = Slp.reachable_size store id in
        let n = Slp.len store id in
        let compressed =
          best_of 3 (fun () ->
              let cache = Accept.make_cache nfa store in
              ignore (Accept.accepts cache id))
        in
        let decompressed =
          if k <= 21 then
            Some (best_of 3 (fun () -> ignore (Accept.accepts_via_decompression nfa store id)))
          else None
        in
        [
          pretty_int n;
          string_of_int slp_size;
          pretty_time compressed;
          (match decompressed with Some t -> pretty_time t | None -> "(skipped)");
          (match decompressed with
          | Some t when compressed > 0.0 -> Printf.sprintf "%.0fx" (t /. compressed)
          | _ -> "-");
        ])
      (sizes [ 8; 10; 12; 14; 16; 18; 20; 22 ] [ 8; 10 ])
  in
  print_table ~title:"membership of (ab)^k in (ab)* — compressed vs decompress-and-run"
    ~header:[ "|D|"; "|S|"; "SLP matrices"; "decompress+NFA"; "speedup" ]
    rows;
  note
    "expected shape: SLP time grows with |S| (about log |D|); baseline grows linearly — \
     crossover, then orders of magnitude."

(* ------------------------------------------------------------------ *)
(* E6: spanner enumeration over SLPs (§4.2)                            *)

let e6_slp_enumeration () =
  section "E6: spanner enumeration over SLPs — preprocessing O(|S|), delay O(log |D|) (§4.2)";
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ba}[ab]*") in
  let rows =
    List.map
      (fun k ->
        let store = Slp.create_store () in
        let id = Builder.repeat store "ab" (1 lsl k) in
        let n = Slp.len store id in
        let slp_size = Slp.reachable_size store id in
        let prep =
          best_of 3 (fun () ->
              let engine = Slp_spanner.create e store in
              Slp_spanner.prepare engine id)
        in
        let engine = Slp_spanner.create e store in
        Slp_spanner.prepare engine id;
        let total = Slp_spanner.cardinal engine id in
        let budget = 500 in
        Gc.full_major ();
        let produced = ref 0 and worst = ref 0.0 and sum = ref 0.0 in
        let last = ref (now ()) in
        (try
           Slp_spanner.iter engine id (fun _ ->
               let t = now () in
               let gap = t -. !last in
               last := t;
               sum := !sum +. gap;
               if gap > !worst then worst := gap;
               incr produced;
               if !produced >= budget then raise Exit)
         with Exit -> ());
        let uncompressed_prep =
          if k <= 16 then begin
            let doc = Slp.to_string store id in
            Some (time_unit (fun () -> ignore (Enumerate.prepare e doc)))
          end
          else None
        in
        [
          pretty_int n;
          string_of_int slp_size;
          pretty_time prep;
          pretty_int total;
          pretty_time (!sum /. float_of_int (max 1 !produced));
          (match uncompressed_prep with Some t -> pretty_time t | None -> "(skipped)");
        ])
      (sizes [ 8; 10; 12; 14; 16; 18; 20 ] [ 8; 10 ])
  in
  print_table ~title:"spanner [ab]*!x{ba}[ab]* over (ab)^k"
    ~header:
      [ "|D|"; "|S|"; "SLP preprocess"; "tuples"; "mean delay (500)"; "uncompressed preprocess" ]
    rows;
  note
    "expected shape: SLP preprocessing grows with |S| (not |D|); delay grows about log |D|; \
     uncompressed preprocessing linear in |D|."

(* ------------------------------------------------------------------ *)
(* E7: CDE updates (§4.3)                                              *)

let e7_cde_updates () =
  section
    "E7: complex document editing in O(|phi| log d) with incremental spanner maintenance (§4.3)";
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ba}[ab]*") in
  let rows =
    List.map
      (fun k ->
        let db = Doc_db.create () in
        let store = Doc_db.store db in
        let id = Builder.repeat store "ab" (1 lsl (k - 1)) in
        Doc_db.add db "base" id;
        let n = Slp.len store id in
        let expr =
          Cde.Insert (Cde.Doc "base", Cde.Extract (Cde.Doc "base", n / 4, n / 2), (2 * n) / 3)
        in
        let update = best_of 5 (fun () -> ignore (Cde.eval db expr)) in
        let engine = Slp_spanner.create e store in
        Slp_spanner.prepare engine id;
        let before = Slp_spanner.matrices_computed engine in
        let edited = Cde.eval db expr in
        Slp_spanner.prepare engine edited;
        let new_matrices = Slp_spanner.matrices_computed engine - before in
        let results = Slp_spanner.cardinal engine edited in
        let rebuild =
          if k <= 18 then begin
            let doc = Slp.to_string store edited in
            Some (time_unit (fun () -> ignore (Builder.lz78 store doc)))
          end
          else None
        in
        [
          pretty_int n;
          pretty_time update;
          string_of_int new_matrices;
          pretty_int results;
          (match rebuild with Some t -> pretty_time t | None -> "(skipped)");
        ])
      (sizes [ 10; 12; 14; 16; 18; 20; 22 ] [ 10; 12 ])
  in
  print_table ~title:"insert(base, extract(base, n/4, n/2), 2n/3) on (ab)^k"
    ~header:[ "|D|"; "CDE update"; "new matrices"; "results after edit"; "recompress baseline" ]
    rows;
  note "expected shape: update time and new matrices grow about log |D|; recompression grows linearly."

(* ------------------------------------------------------------------ *)
(* E8: balancing (§4.1)                                                *)

let e8_balancing () =
  section "E8: strong balancing — size O(|S| log |D|), strongly balanced implies 2-shallow (§4.1)";
  let rng = X.create 33 in
  let store = Slp.create_store () in
  let subjects =
    [
      ("random 4k (lz78)", Builder.lz78 store (X.string rng "abcd" (sc 4096 256)));
      ("random 64k (lz78)", Builder.lz78 store (X.string rng "abcd" (sc 65536 512)));
      ( "periodic 48k (lz78)",
        Builder.lz78 store (String.concat "" (List.init (sc 4096 64) (fun _ -> "abcabcabcabc"))) );
      ("left comb 2k", Slp.of_string store (X.string rng "ab" (sc 2048 256)));
      ("fibonacci F30", Builder.fibonacci store 30);
      ("power (ab)^2^18", Builder.repeat store "ab" (1 lsl sc 18 8));
    ]
  in
  let rows =
    List.map
      (fun (name, id) ->
        let size_before = Slp.reachable_size store id in
        let ord_before = Slp.order store id in
        let balanced, t = time (fun () -> Balance.rebalance store id) in
        let size_after = Slp.reachable_size store balanced in
        let ord_after, log2 = Balance.depth_stats store balanced in
        [
          name;
          pretty_int (Slp.len store id);
          pretty_int size_before;
          string_of_int ord_before;
          pretty_int size_after;
          string_of_int ord_after;
          string_of_int (2 * log2);
          (if Slp.is_strongly_balanced store balanced then "yes" else "NO");
          pretty_time t;
        ])
      subjects
  in
  print_table ~title:"rebalancing across the compressibility spectrum"
    ~header:
      [
        "input"; "|D|"; "|S| before"; "ord before"; "|S| after"; "ord after"; "2 log2 |D|";
        "strongly bal"; "time";
      ]
    rows;
  note "expected shape: ord after <= 2 log2 |D| (2-shallow); |S| grows by at most a log factor."

(* ------------------------------------------------------------------ *)
(* E9: core spanners over compressed documents (Slp_core)              *)

let e9_core_over_slp () =
  section
    "E9: string-equality selections over SLPs — fingerprint filtering without decompression";
  let core =
    Core_spanner.simplify
      (Algebra.Select
         (vs [ v "x"; v "y" ], Algebra.formula "!x{[ab]+};!y{[ab]+};[ab;]*"))
  in
  let rows =
    List.map
      (fun k ->
        let store = Slp.create_store () in
        let id = Builder.repeat store "ab;" (1 lsl k) in
        let n = Slp.len store id in
        let sc = Spanner_slp.Slp_core.create core store in
        let compressed_first =
          best_of 3 (fun () -> ignore (Spanner_slp.Slp_core.nonempty_on sc id))
        in
        let uncompressed =
          if k <= 13 then begin
            let t =
              time_unit (fun () ->
                  let doc = Slp.to_string store id in
                  ignore (Core_spanner.nonempty_on core doc))
            in
            Some t
          end
          else None
        in
        [
          pretty_int n;
          string_of_int (Slp.reachable_size store id);
          pretty_time compressed_first;
          (match uncompressed with Some t -> pretty_time t | None -> "(skipped)");
        ])
      (sizes [ 6; 8; 10; 12; 14; 16 ] [ 6; 8 ])
  in
  print_table
    ~title:"first duplicate adjacent field in (ab;)^k — compressed vs decompress-and-run"
    ~header:[ "|D|"; "|S|"; "compressed NonEmptiness"; "decompress + core NonEmptiness" ]
    rows;
  note
    "expected shape: the compressed route finds the first witness in near-constant time (the \
     first tuples come from the top of the DAG); the baseline pays |D| for decompression and \
     hashing first."

(* ------------------------------------------------------------------ *)
(* E10: context-free spanners ([31])                                   *)

let e10_context_free () =
  section "E10: context-free spanners — O(|D|³) recognition buys beyond-regular extraction ([31])";
  let dyck =
    Spanner_cfg.Cf_spanner.dyck_extractor ~x:(v "cfx") ~open_c:'(' ~close_c:')'
      ~other:(Spanner_fa.Charset.of_string "ab")
  in
  let rng = X.create 41 in
  let rows =
    List.map
      (fun n ->
        (* a random balanced-ish document: nested groups with letters *)
        let buf = Buffer.create n in
        let depth = ref 0 in
        while Buffer.length buf < n - 1 do
          match X.int rng 4 with
          | 0 ->
              Buffer.add_char buf '(';
              incr depth
          | 1 when !depth > 0 ->
              Buffer.add_char buf ')';
              decr depth
          | _ -> Buffer.add_char buf (if X.bool rng then 'a' else 'b')
        done;
        while !depth > 0 do
          Buffer.add_char buf ')';
          decr depth
        done;
        let doc = Buffer.contents buf in
        let recog = best_of 3 (fun () -> ignore (Spanner_cfg.Cf_spanner.nonempty_on dyck doc)) in
        let groups, eval_time =
          time (fun () -> Span_relation.cardinal (Spanner_cfg.Cf_spanner.eval dyck doc))
        in
        [
          pretty_int (String.length doc);
          pretty_time recog;
          Printf.sprintf "%.1f"
            (recog *. 1e9 /. (float_of_int (String.length doc) ** 3.0));
          pretty_int groups;
          pretty_time eval_time;
        ])
      (sizes [ 16; 32; 64; 128; 256 ] [ 16; 32 ])
  in
  print_table ~title:"Dyck-group extraction on random nested documents"
    ~header:[ "|D|"; "recognition"; "ns/char^3"; "groups"; "full eval" ]
    rows;
  note "expected shape: recognition grows cubically (ns/char^3 flat) — the price of leaving the regular class."

(* ------------------------------------------------------------------ *)
(* E11: datalog over spanners ([33])                                   *)

let e11_datalog () =
  section "E11: datalog over regular spanners — recursion on top of extraction ([33])";
  let step =
    Evset.of_formula (Regex_formula.parse "([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*")
  in
  let program =
    Spanner_datalog.Datalog.make
      [
        {
          Spanner_datalog.Datalog.head = ("eq_next", [ "x"; "y" ]);
          body =
            [
              Spanner_datalog.Datalog.Spanner (step, [ (v "x", "x"); (v "y", "y") ]);
              Spanner_datalog.Datalog.Content_eq ("x", "y");
            ];
        };
        {
          Spanner_datalog.Datalog.head = ("chain", [ "x"; "y" ]);
          body = [ Spanner_datalog.Datalog.Idb ("eq_next", [ "x"; "y" ]) ];
        };
        {
          Spanner_datalog.Datalog.head = ("chain", [ "x"; "z" ]);
          body =
            [
              Spanner_datalog.Datalog.Idb ("chain", [ "x"; "y" ]);
              Spanner_datalog.Datalog.Idb ("eq_next", [ "y"; "z" ]);
            ];
        };
      ]
  in
  let rows =
    List.map
      (fun k ->
        let doc = String.concat "" (List.init k (fun _ -> "ab;")) in
        let result, t = time (fun () -> Spanner_datalog.Datalog.run program doc) in
        [
          string_of_int k;
          pretty_int (Spanner_datalog.Datalog.fact_count result "chain");
          string_of_int (Spanner_datalog.Datalog.iterations result);
          pretty_time t;
        ])
      (sizes [ 4; 8; 16; 32; 64 ] [ 4; 8 ])
  in
  print_table ~title:"transitive closure of equal-neighbour fields on (ab;)^k"
    ~header:[ "fields"; "chain facts (k(k-1)/2)"; "semi-naive rounds"; "time" ]
    rows;
  note "expected shape: chain facts quadratic; rounds linear in the longest chain."

(* ------------------------------------------------------------------ *)
(* E12: compiled evaluation engine (§2.5 combined vs data complexity)  *)

let e12_compiled_engine () =
  section
    "E12: compiled evaluation engine — spanner compilation hoisted out of the document pass (§2.5)";
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let ct = Compiled.of_evset e in
  let rng = X.create 23 in
  let rows =
    List.map
      (fun k ->
        let n = 1 lsl k in
        let doc = X.string rng "ab" n in
        let reference = best_of 3 (fun () -> ignore (Enumerate.Reference.prepare e doc)) in
        let compiled = best_of 3 (fun () -> ignore (Compiled.prepare ct doc)) in
        let c_ref = Enumerate.Reference.cardinal (Enumerate.Reference.prepare e doc) in
        let c_cmp = Compiled.cardinal (Compiled.prepare ct doc) in
        [
          pretty_int n;
          pretty_time reference;
          pretty_time compiled;
          Printf.sprintf "%.1fx" (reference /. max compiled 1e-9);
          (if c_ref = c_cmp then pretty_int c_cmp else "MISMATCH");
        ])
      (sizes [ 10; 12; 14; 16; 17 ] [ 8; 10 ])
  in
  print_table
    ~title:
      "preprocessing [ab]*!x{ab}[ab]* — reference engine vs compiled tables (compilation \
       excluded from the compiled column)"
    ~header:[ "|D|"; "reference prepare"; "compiled prepare"; "speedup"; "tuples" ]
    rows;
  note "expected shape: both linear in |D|; compiled ahead by a constant factor (target >= 2x).";
  let docs = Array.init (sc 64 8) (fun i -> X.string rng "ab" ((sc 2048 256) + (61 * i))) in
  let seq = best_of 3 (fun () -> ignore (Compiled.eval_all ~jobs:1 ct docs)) in
  let rows =
    List.map
      (fun j ->
        let t = best_of 3 (fun () -> ignore (Compiled.eval_all ~jobs:j ct docs)) in
        [ string_of_int j; pretty_time t; Printf.sprintf "%.1fx" (seq /. max t 1e-9) ])
      (List.sort_uniq compare [ 1; 2; 4; Pool.default_jobs () ])
  in
  print_table
    ~title:
      (Printf.sprintf "batch eval_all over %d documents (%s chars total, one compiled spanner)"
         (Array.length docs)
         (pretty_int (Array.fold_left (fun acc d -> acc + String.length d) 0 docs)))
    ~header:[ "domains"; "wall time"; "speedup vs 1" ]
    rows;
  note "expected shape: near-linear scaling until domains exceed cores (%d recommended here)."
    (Pool.default_jobs ())

(* ------------------------------------------------------------------ *)
(* E13: incremental evaluation (per-node summary cache, §4.3)          *)

let e13_incremental () =
  section
    "E13: incremental evaluation — cached per-node summaries make re-evaluation after a CDE \
     edit cost O(new nodes), not O(|D|) (§4.3)";
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{ddccbbaa}.*") in
  let rng = X.create 91 in
  let json = ref [] in
  let rows =
    List.map
      (fun k ->
        let n = 1 lsl k in
        let doc = X.string rng "abcd" n in
        let db = Doc_db.create () in
        let store = Doc_db.store db in
        ignore (Doc_db.add_string db "doc" doc);
        let root = Doc_db.find db "doc" in
        let slp_size = Slp.reachable_size store root in
        let session = Incr.create ct db in
        (* cold evaluation summarises every reachable node once *)
        let cold = time_unit (fun () -> ignore (Incr.eval session root)) in
        Incr.reset_stats session;
        let created0 = (Incr.stats session).Incr.nodes_created in
        (* one 64-character insert per trial, at varying positions so
           every trial creates fresh (uncached) nodes *)
        let trials = 8 in
        let total = ref 0.0 in
        for t = 1 to trials do
          let len = Slp.len store (Doc_db.find db "doc") in
          let i = 1 + (t * 7919 mod (len - 64)) in
          let p = 1 + (t * 104729 mod len) in
          let expr = Cde.Insert (Cde.Doc "doc", Cde.Extract (Cde.Doc "doc", i, i + 63), p) in
          total := !total +. time_unit (fun () -> ignore (Incr.edit session "doc" expr))
        done;
        let per_edit = !total /. float_of_int trials in
        let st = Incr.stats session in
        let new_nodes = (st.Incr.nodes_created - created0) / trials in
        let current = Slp.to_string store (Doc_db.find db "doc") in
        let prepare = best_of 3 (fun () -> ignore (Compiled.prepare ct current)) in
        json :=
          (Printf.sprintf "e13/compiled-prepare-%d" n, Some (prepare *. 1e9))
          :: (Printf.sprintf "e13/incr-edit-reeval-%d" n, Some (per_edit *. 1e9))
          :: !json;
        [
          pretty_int n;
          pretty_int slp_size;
          pretty_time cold;
          string_of_int new_nodes;
          pretty_time per_edit;
          pretty_time prepare;
          Printf.sprintf "%.0fx" (prepare /. max per_edit 1e-9);
          pretty_int st.Incr.hits;
          pretty_int st.Incr.misses;
        ])
      (sizes [ 14; 16; 17 ] [ 10; 11 ])
  in
  print_table
    ~title:
      "single CDE edit (insert a 64-char factor) + incremental re-evaluation vs full \
       Compiled.prepare — spanner .*!x{ddccbbaa}.* on random abcd text"
    ~header:
      [
        "|D|"; "|S|"; "cold eval"; "new nodes/edit"; "edit+re-eval"; "compiled prepare";
        "speedup"; "hits"; "misses";
      ]
    rows;
  note
    "expected shape: edit+re-eval flat-ish in |D| (only the O(log d) new nodes are \
     summarised — see misses vs hits); full re-preparation linear in |D|.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E14: resource-governance overhead (DESIGN.md §2c)                   *)

let e14_robustness () =
  section
    "E14: resource governance — amortized budget probes on the evaluation hot path \
     (target: < 5% overhead under a generous budget)";
  let ct = Compiled.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  (* A *generous* budget, not [Limits.none]: every axis is bounded so
     every probe does real work (including the gettimeofday deadline
     probe every ~4K steps) without ever tripping. *)
  let generous =
    Limits.make ~fuel:1_000_000_000 ~time_ms:3_600_000 ~max_states:1_000_000
      ~max_tuples:1_000_000_000 ()
  in
  let rng = X.create 47 in
  let json = ref [] in
  let rows =
    List.map
      (fun k ->
        let n = 1 lsl k in
        let doc = X.string rng "ab" n in
        let free = best_of 5 (fun () -> ignore (Compiled.eval ct doc)) in
        let governed = best_of 5 (fun () -> ignore (Compiled.eval ~limits:generous ct doc)) in
        let overhead = 100.0 *. ((governed /. max free 1e-9) -. 1.0) in
        let c_free = Span_relation.cardinal (Compiled.eval ct doc) in
        let c_gov = Span_relation.cardinal (Compiled.eval ~limits:generous ct doc) in
        json :=
          (Printf.sprintf "e14/eval-governed-%d" n, Some (governed *. 1e9))
          :: (Printf.sprintf "e14/eval-free-%d" n, Some (free *. 1e9))
          :: !json;
        [
          pretty_int n;
          pretty_time free;
          pretty_time governed;
          Printf.sprintf "%+.1f%%" overhead;
          (if c_free = c_gov then pretty_int c_gov else "MISMATCH");
        ])
      (sizes [ 12; 14; 16 ] [ 10; 11 ])
  in
  print_table
    ~title:
      "Compiled.eval [ab]*!x{ab}[ab]* — ungoverned vs a generous 4-axis budget (fuel, \
       deadline, states, tuples all bounded, none tripping)"
    ~header:[ "|D|"; "free"; "governed"; "overhead"; "tuples" ]
    rows;
  note
    "expected shape: overhead a few percent at worst (one increment + compare per step; \
     clock probed every ~4096 steps) and shrinking as output work dominates.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E15: compressed-domain batch evaluation (§4.2, DESIGN.md §2d)       *)

let e15_compressed_batch () =
  section
    "E15: compressed-domain batch evaluation — one matrix sweep over the shared SLP vs \
     decompress-then-evaluate (§4.2)";
  let ct = Compiled.of_formula (Regex_formula.parse "[abcd]*!x{dcba}[abcd]*") in
  let rng = X.create 63 in
  let ndocs = 16 in
  let n = 1 lsl sc 14 9 in
  let json = ref [] in
  let rows =
    List.map
      (fun repeat ->
        (* each document is a random base repeated [repeat] times by
           node doubling: the repeat factor is the compression knob
           (1 ≈ incompressible, 64 ≈ a dedup-style corpus where the
           repetition is structural in the SLP) *)
        let db = Doc_db.create () in
        let store = Doc_db.store db in
        for i = 1 to ndocs do
          let base = Builder.balanced_of_string store (X.string rng "abcd" (n / repeat)) in
          let d = ref base in
          let doublings = int_of_float (Float.round (Float.log2 (float_of_int repeat))) in
          for _ = 1 to doublings do
            d := Slp.pair store !d !d
          done;
          Doc_db.add db (Printf.sprintf "doc%02d" i) !d
        done;
        let total = Doc_db.total_len db in
        let nodes = Doc_db.compressed_size db in
        let check engine =
          List.iter
            (fun (name, r) ->
              match r with
              | Ok _ -> ()
              | Error e -> failwith (name ^ ": " ^ Printexc.to_string e))
            (Doc_db.eval_all ~engine db ct)
        in
        check `Compressed;
        check `Decompress;
        let compressed = best_of 3 (fun () -> ignore (Doc_db.eval_all ~engine:`Compressed db ct)) in
        let decompress = best_of 3 (fun () -> ignore (Doc_db.eval_all ~engine:`Decompress db ct)) in
        let ratio = float_of_int total /. float_of_int nodes in
        json :=
          (Printf.sprintf "e15/compressed-x%d" repeat, Some (compressed *. 1e9))
          :: (Printf.sprintf "e15/decompress-x%d" repeat, Some (decompress *. 1e9))
          :: !json;
        [
          string_of_int repeat;
          pretty_int total;
          pretty_int nodes;
          Printf.sprintf "%.1fx" ratio;
          pretty_time compressed;
          pretty_time decompress;
          Printf.sprintf "%.2fx" (decompress /. max compressed 1e-9);
        ])
      (sizes [ 1; 8; 64 ] [ 1; 8 ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "Doc_db.eval_all, %d documents of %s bytes each — spanner [abcd]*!x{dcba}[abcd]* \
          (sweep + enumeration vs frozen decompression + Compiled.eval, cold engine each run)"
         ndocs (pretty_int n))
    ~header:[ "repeat"; "Σ|D|"; "|S|"; "ratio"; "compressed"; "decompress"; "speedup" ]
    rows;
  note
    "expected shape: at low ratio the sweep pays matrix products per node and roughly breaks \
     even; as the ratio grows the sweep cost collapses with |S| while decompression stays \
     Θ(Σ|D|).";
  (* shared-base database: every document is base·suffix_i as explicit
     nodes, so the sweep's sharing is structural, not a builder
     accident — matrices computed ≪ 2 × Σ per-document nodes *)
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let base = Builder.balanced_of_string store (X.string rng "abcd" (1 lsl sc 16 9)) in
  for i = 1 to ndocs do
    let suffix = Builder.balanced_of_string store (X.string rng "abcd" (sc 512 64)) in
    Doc_db.add db (Printf.sprintf "s%02d" i) (Slp.pair store base suffix)
  done;
  let engine = Slp_spanner.of_compiled ct store in
  let roots =
    Array.of_list (List.map (fun name -> Doc_db.find db name) (Doc_db.names db))
  in
  let sweep = time_unit (fun () -> Array.iter (Slp_spanner.prepare engine) roots) in
  let matrices = Slp_spanner.matrices_computed engine in
  let sum_nodes =
    Array.fold_left (fun acc id -> acc + Slp.reachable_size store id) 0 roots
  in
  let results = Slp_spanner.eval_all engine roots in
  Array.iter (function Ok _ -> () | Error e -> raise e) results;
  print_table
    ~title:
      (Printf.sprintf
         "shared-base database: %d documents = base(64 KiB)·suffix(512 B) in one store"
         ndocs)
    ~header:[ "Σ per-doc nodes"; "distinct nodes"; "matrices"; "sweep"; "sharing" ]
    [
      [
        pretty_int sum_nodes;
        pretty_int (Doc_db.compressed_size db);
        pretty_int matrices;
        pretty_time sweep;
        Printf.sprintf "%.1fx" (float_of_int (2 * sum_nodes) /. float_of_int matrices);
      ];
    ];
  note
    "the sweep computes 2 matrices per *distinct* node: the shared 64 KiB base is paid once, \
     not %d times." ndocs;
  json :=
    ("e15/shared-matrices", Some (float_of_int matrices))
    :: ("e15/shared-sum-node-matrices", Some (float_of_int (2 * sum_nodes)))
    :: !json;
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E16: streaming cursors (DESIGN.md §2e)                              *)

let e16_cursor () =
  section
    "E16: streaming cursors — first-k answers cost O(k) pulls after preprocessing, \
     independent of how many answers exist (§2.5 constant-delay enumeration)";
  let ct = Compiled.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let rng = X.create 101 in
  let k = 10 in
  let json = ref [] in
  let rows =
    List.map
      (fun e ->
        let n = 1 lsl e in
        let doc = X.string rng "ab" n in
        let prepare = best_of 3 (fun () -> ignore (Compiled.prepare ct doc)) in
        let p = Compiled.prepare ct doc in
        let tuples = Compiled.cardinal p in
        (* a fresh cursor over the same prepared document each run:
           take-k times only the pulls, never the document pass *)
        let take_k =
          best_of 5 (fun () ->
              ignore (Cursor.to_list (Cursor.take (Cursor.of_compiled p) k)))
        in
        let full = best_of 3 (fun () -> ignore (Cursor.to_relation (Cursor.of_compiled p))) in
        json :=
          (Printf.sprintf "e16/take%d-%d" k n, Some (take_k *. 1e9))
          :: (Printf.sprintf "e16/full-drain-%d" n, Some (full *. 1e9))
          :: !json;
        [
          pretty_int n;
          pretty_time prepare;
          pretty_time take_k;
          pretty_time (take_k /. float_of_int (min k (max 1 tuples)));
          pretty_time full;
          pretty_int tuples;
        ])
      (sizes [ 12; 16; 18 ] [ 8; 10 ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "spanner [ab]*!x{ab}[ab]* — take-%d through a cursor vs draining to a relation \
          (preprocessing excluded from both)"
         k)
    ~header:[ "|D|"; "prepare"; Printf.sprintf "take-%d" k; "delay/tuple"; "full drain"; "tuples" ]
    rows;
  note
    "expected shape: take-%d and its per-tuple delay flat vs |D| (within ~2x); the full \
     drain linear in the answer count, which grows with |D|."
    k;
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E17: cost-based algebraic optimizer (DESIGN.md §2f)                 *)

let e17_algebra () =
  section
    "E17: algebraic optimizer — a Select-free query (projection over a union and a join) \
     fused into one automaton vs operator-at-a-time Algebra.eval; the oracle materialises \
     a quadratic intermediate relation the fused automaton never builds (§2f)";
  let expr =
    Algebra.parse
      "pi[x]((rgx:\"[ab]*!x{a[ab]*b}[ab]*\" & rgx:\"[ab]*!x{ab}[ab]*\") | \
       rgx:\"[ab]*!x{aba}[ab]*\")"
  in
  let rng = X.create 77 in
  let json = ref [] in
  let rows =
    List.map
      (fun e ->
        let n = 1 lsl e in
        let doc = X.string rng "ab" n in
        let plan_t = best_of 3 (fun () -> ignore (Optimizer.optimize ~sample:doc expr)) in
        let plan = Optimizer.optimize ~sample:doc expr in
        let fused = best_of 3 (fun () -> ignore (Optimizer.eval plan doc)) in
        let eval_t = best_of (sc 2 1) (fun () -> ignore (Algebra.eval expr doc)) in
        let tuples = Span_relation.cardinal (Optimizer.eval plan doc) in
        json :=
          (Printf.sprintf "e17/fused-%d" n, Some (fused *. 1e9))
          :: (Printf.sprintf "e17/eval-%d" n, Some (eval_t *. 1e9))
          :: (Printf.sprintf "e17/optimize-%d" n, Some (plan_t *. 1e9))
          :: !json;
        [
          pretty_int n;
          pretty_time plan_t;
          pretty_time fused;
          pretty_time eval_t;
          Printf.sprintf "%.1fx" (eval_t /. max fused 1e-9);
          pretty_int tuples;
          (if Optimizer.fully_fused plan then "one automaton"
           else Printf.sprintf "%d automata" (Optimizer.fused_count plan));
        ])
      (sizes [ 8; 10; 11 ] [ 5; 6 ])
  in
  print_table
    ~title:
      "pi[x]((a[ab]*b & ab) | aba) — optimize + fused drain vs Algebra.eval \
       (document pass and enumeration included in both)"
    ~header:[ "|D|"; "optimize"; "fused drain"; "Algebra.eval"; "speedup"; "tuples"; "plan" ]
    rows;
  note
    "expected shape: the fused drain linear in |D| + answers; Algebra.eval quadratic (its \
     a[ab]*b operand alone yields ~|D|^2/4 intermediate tuples), so the speedup widens \
     with |D|.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E18: the spanner service under load (DESIGN.md §2g)                 *)

module Serve_server = Spanner_serve.Server
module Serve_client = Spanner_serve.Client

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let e18_serve () =
  section
    "E18: the spanner service — warm-cache request latency vs per-request cold start, \
     concurrent clients, admission-control shedding, and slow-reader isolation (§2g)";
  let doc_bits = sc 8 7 in
  let clients = sc 50 8 in
  let reqs_per_client = sc 40 10 in
  let rng = X.create 4242 in
  let doc = X.string rng "ab" (1 lsl doc_bits) in
  (* a second, larger document for the streaming sections: the
     quadratic spanner on it yields megabytes of tuples, enough to
     fill any socket buffer and to make overload jobs genuinely slow *)
  let doc2 = X.string rng "ab" (1 lsl (doc_bits + 2)) in
  (* a serving-realistic point query: extraction on a small document,
     where the per-request fixed costs a one-shot CLI pays every time
     (process start, parse, optimizer rewrite + compile, document IO)
     dwarf the evaluation itself — exactly what a persistent server
     amortises *)
  let formula = "rgx:\"[ab]*!x{ab}[ab]*\"" in
  let json = ref [] in
  let push k v = json := (k, Some v) :: !json in

  let sock = Printf.sprintf "/tmp/spanner-bench-%d.sock" (Unix.getpid ()) in
  let addr = Serve_server.Unix_socket sock in
  let server =
    Serve_server.start
      { (Serve_server.default_config addr) with Serve_server.queue = 256 }
  in
  let seed = Serve_client.connect addr in
  ignore (Serve_client.request seed (Printf.sprintf "DEFINE q\n%s" formula));
  ignore (Serve_client.request seed (Printf.sprintf "LOAD s DOC d\n%s" doc));
  ignore (Serve_client.request seed (Printf.sprintf "LOAD s DOC d2\n%s" doc2));

  (* --- per-request CLI cold start: the same query through an actual
     spanner_cli subprocess, once per request — process start, parse,
     compile, document read, evaluate, exit.  This is what serving
     without a server costs. *)
  let docfile = Filename.temp_file "spanner-bench-e18" ".txt" in
  let och = open_out docfile in
  output_string och doc;
  close_out och;
  let cli =
    let near =
      Filename.concat
        (Filename.dirname (Filename.dirname Sys.executable_name))
        (Filename.concat "bin" "spanner_cli.exe")
    in
    if Sys.file_exists near then Some near else None
  in
  let cold_cli_t =
    Option.map
      (fun exe ->
        let cmd =
          Printf.sprintf "%s query '%s' -f %s --format first > /dev/null" exe formula docfile
        in
        best_of 5 (fun () -> if Sys.command cmd <> 0 then failwith "cold CLI run failed"))
      cli
  in
  (* --- the same work in-process (no fork/exec), for the breakdown:
     parse, optimizer rewrite + compile, SLP compression, freeze,
     decompress, evaluate the first tuple *)
  let cold_work () =
    let e = Algebra.parse formula in
    let plan = Optimizer.optimize e in
    let db = Doc_db.create () in
    let id = Doc_db.add_string db "d" doc in
    let fz = Doc_db.freeze db in
    let text = Slp.frozen_to_string fz id in
    ignore (Cursor.next (Optimizer.cursor plan text))
  in
  let cold_work_t = best_of 5 cold_work in
  let cold_t = Option.value cold_cli_t ~default:cold_work_t in

  (* --- warm server, one persistent connection: every artefact is
     cached, a request is one round-trip + one cursor pull *)
  let latencies k payload =
    let c = seed in
    Array.init k (fun _ -> time_unit (fun () -> ignore (Serve_client.request c payload)))
  in
  let warm = latencies (sc 400 50) "QUERY q s d format=first" in
  Array.sort compare warm;
  let warm_p50 = percentile warm 0.50 and warm_p99 = percentile warm 0.99 in

  (* --- plan cache, hit vs miss: distinct inline bodies compile every
     time; a repeated body is one LRU probe *)
  let miss_t =
    time_unit (fun () ->
        for i = 0 to 19 do
          ignore
            (Serve_client.request seed
               (Printf.sprintf "QUERY - s d format=count\n[ab]*!x{ab}[ab]*a{0,%d}" (i + 1)))
        done)
    /. 20.
  in
  let hit_t =
    time_unit (fun () ->
        for _ = 0 to 19 do
          ignore (Serve_client.request seed "QUERY - s d format=count\n[ab]*!x{ab}[ab]*a{0,1}")
        done)
    /. 20.
  in

  (* --- open-loop fan-out: [clients] concurrent connections, each
     firing [reqs_per_client] back-to-back queries *)
  let errors = Atomic.make 0 in
  let fanout () =
    let thread _ =
      Thread.create
        (fun () ->
          try
            let c = Serve_client.connect addr in
            for _ = 1 to reqs_per_client do
              match Serve_client.request c "QUERY q s d format=count" with
              | [ one ] when Serve_client.err_code one = None -> ()
              | _ -> Atomic.incr errors
            done;
            Serve_client.close c
          with _ -> Atomic.incr errors)
        ()
    in
    let threads = List.init clients thread in
    List.iter Thread.join threads
  in
  let fan_t = time_unit fanout in
  let total_reqs = clients * reqs_per_client in
  let throughput = float_of_int total_reqs /. fan_t in

  (* --- slow-reader isolation: a client opens a huge stream (the
     quadratic spanner), reads only the header, and stalls; its
     session thread blocks on the socket buffer while a second client
     keeps querying — the stall must not move the fast path *)
  ignore (Serve_client.request seed "DEFINE big\n[ab]*!x{a[ab]*b}[ab]*");
  let slow_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect slow_fd (ADDR_UNIX sock);
  let slow_ic = Unix.in_channel_of_descr slow_fd
  and slow_oc = Unix.out_channel_of_descr slow_fd in
  Spanner_serve.Protocol.write_frame slow_oc "QUERY big s d2";
  (* read only the stream header, then stall: the session thread
     serving this stream blocks once the socket buffer fills *)
  ignore (Spanner_serve.Protocol.read_frame slow_ic);
  let stalled = latencies (sc 200 30) "QUERY q s d format=first" in
  Array.sort compare stalled;
  let stalled_p50 = percentile stalled 0.50 in
  (try Unix.close slow_fd with _ -> ());

  ignore (Serve_client.request seed "STATS");
  ignore (Serve_client.request seed "SHUTDOWN");
  Serve_client.close seed;
  Serve_server.wait server;

  (* --- overload: a one-worker, two-slot server flooded with slow
     queries must shed cleanly (ERR 3) and never hang *)
  let sock2 = Printf.sprintf "/tmp/spanner-bench-ovl-%d.sock" (Unix.getpid ()) in
  let addr2 = Serve_server.Unix_socket sock2 in
  let server2 =
    Serve_server.start
      {
        (Serve_server.default_config addr2) with
        Serve_server.workers = Some 1;
        queue = 2;
      }
  in
  let c2 = Serve_client.connect addr2 in
  ignore (Serve_client.request c2 "DEFINE big\n[ab]*!x{a[ab]*b}[ab]*");
  ignore (Serve_client.request c2 (Printf.sprintf "LOAD s DOC d\n%s" doc2));
  Serve_client.close c2;
  let shed = Atomic.make 0 and answered = Atomic.make 0 in
  let flood_threads =
    List.init (sc 16 6) (fun _ ->
        Thread.create
          (fun () ->
            try
              let c = Serve_client.connect addr2 in
              (match Serve_client.request c "QUERY big s d format=count" with
              | [ one ] when Serve_client.err_code one = Some 3 -> Atomic.incr shed
              | _ -> Atomic.incr answered);
              Serve_client.close c
            with _ -> ())
          ())
  in
  List.iter Thread.join flood_threads;
  let c2 = Serve_client.connect addr2 in
  ignore (Serve_client.request c2 "SHUTDOWN");
  Serve_client.close c2;
  Serve_server.wait server2;

  (try Sys.remove docfile with Sys_error _ -> ());
  push "e18/cold-start" (cold_t *. 1e9);
  push "e18/cold-work" (cold_work_t *. 1e9);
  push "e18/warm-p50" (warm_p50 *. 1e9);
  push "e18/warm-p99" (warm_p99 *. 1e9);
  push "e18/plan-miss" (miss_t *. 1e9);
  push "e18/plan-hit" (hit_t *. 1e9);
  push (Printf.sprintf "e18/throughput-rps-%dc" clients) throughput;
  push "e18/stalled-p50" (stalled_p50 *. 1e9);
  push "e18/shed" (float_of_int (Atomic.get shed));
  print_table ~title:(Printf.sprintf "service vs cold start, |D| = %d" (1 lsl doc_bits))
    ~header:[ "metric"; "value" ]
    [
      [
        (match cold_cli_t with
        | Some _ -> "per-request CLI cold start (fork+exec spanner_cli)"
        | None -> "per-request cold start (CLI missing; in-process work)");
        pretty_time cold_t;
      ];
      [ "  of which query work (parse+compile+compress+eval)"; pretty_time cold_work_t ];
      [ "warm request p50"; pretty_time warm_p50 ];
      [ "warm request p99"; pretty_time warm_p99 ];
      [ "speedup p50 vs cold"; Printf.sprintf "%.0fx" (cold_t /. max warm_p50 1e-9) ];
      [ "inline query, plan-cache miss"; pretty_time miss_t ];
      [ "inline query, plan-cache hit"; pretty_time hit_t ];
      [
        Printf.sprintf "%d clients x %d requests" clients reqs_per_client;
        Printf.sprintf "%s (%.0f req/s)" (pretty_time fan_t) throughput;
      ];
      [ "client errors under fan-out"; pretty_int (Atomic.get errors) ];
      [ "p50 beside a stalled streaming reader"; pretty_time stalled_p50 ];
      [
        "overload (1 worker, queue 2)";
        Printf.sprintf "%d shed / %d answered" (Atomic.get shed) (Atomic.get answered);
      ];
    ];
  note
    "expected shape: warm p50 at least 10x below the per-request CLI cold start (the \
     acceptance bar) — the server amortises process start, parsing, compilation and \
     document IO across requests; the stalled-reader p50 within noise of the plain warm \
     p50; overload sheds with status 3 instead of queueing without bound.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E19: the serve stack under deterministic fault injection            *)

module Fault = Spanner_util.Fault

let e19_chaos () =
  section
    "E19: chaos — availability and error taxonomy under seeded fault injection across \
     the serve stack, worker-domain restarts, and the faults-off p50 baseline (§2h)";
  let doc_bits = sc 8 7 in
  let clients = sc 16 4 in
  let reqs_per_client = sc 40 10 in
  let rng = X.create 1717 in
  let doc = X.string rng "ab" (1 lsl doc_bits) in
  let json = ref [] in
  let push k v = json := (k, Some v) :: !json in

  let sock = Printf.sprintf "/tmp/spanner-bench-chaos-%d.sock" (Unix.getpid ()) in
  let addr = Serve_server.Unix_socket sock in
  let server =
    Serve_server.start
      {
        (Serve_server.default_config addr) with
        Serve_server.workers = Some 2;
        queue = 64;
        io_timeout_ms = 5000;
        idle_timeout_ms = 10000;
        drain_ms = 2000;
      }
  in
  let seed = Serve_client.connect ~timeout_ms:5000 addr in
  let req ?(attempts = 6) p = Serve_client.request ~attempts ~backoff_ms:2 seed p in
  ignore (req (Printf.sprintf "DEFINE q\n%s" "rgx:\"[ab]*!x{ab}[ab]*\""));
  ignore (req (Printf.sprintf "LOAD s DOC d\n%s" doc));

  (* --- faults off: warm request p50 on the instrumented stack.  The
     acceptance bar is that this sits within noise of e18/warm-p50 —
     every disarmed probe is one field load and a never-taken branch. *)
  let off =
    Array.init
      (sc 400 50)
      (fun _ -> time_unit (fun () -> ignore (req "QUERY q s d format=first")))
  in
  Array.sort compare off;
  let p50_off = percentile off 0.50 in
  (* the faults-off answer is the oracle every later reply is held to *)
  let expected =
    match req "QUERY q s d format=count" with
    | [ one ] when Serve_client.err_code one = None -> one
    | _ -> failwith "E19: faults-off baseline query failed"
  in

  (* --- arm moderate fault rates at every serve-stack site and fan
     out.  The client retries transient failures (idempotent verbs
     only) with exponential backoff; every reply that arrives must be
     either the exact answer or a typed ERR — the taxonomy below
     counts silent wrong answers as a distinct (expected-zero) bucket. *)
  Fault.configure ~seed:1717
    [
      { Fault.site = "serve.read"; prob = 0.10; behavior = Fault.Eintr };
      { Fault.site = "serve.write"; prob = 0.05; behavior = Fault.Short };
      { Fault.site = "session.request"; prob = 0.03; behavior = Fault.Exn };
      { Fault.site = "scheduler.worker"; prob = 0.05; behavior = Fault.Exn };
    ];
  let ok = Atomic.make 0
  and typed_err = Atomic.make 0
  and transport = Atomic.make 0
  and wrong = Atomic.make 0 in
  let fanout () =
    let thread _ =
      Thread.create
        (fun () ->
          let c = try Some (Serve_client.connect ~timeout_ms:5000 addr) with _ -> None in
          match c with
          | None -> for _ = 1 to reqs_per_client do Atomic.incr transport done
          | Some c ->
              for _ = 1 to reqs_per_client do
                match Serve_client.request ~attempts:8 ~backoff_ms:2 c "QUERY q s d format=count" with
                | [ one ] when Serve_client.err_code one = None ->
                    if one = expected then Atomic.incr ok else Atomic.incr wrong
                | frames
                  when frames <> []
                       && Serve_client.err_code (List.nth frames (List.length frames - 1))
                          <> None ->
                    Atomic.incr typed_err
                | _ -> Atomic.incr wrong
                | exception _ -> Atomic.incr transport
              done;
              (try Serve_client.close c with _ -> ()))
        ()
    in
    let threads = List.init clients thread in
    List.iter Thread.join threads
  in
  let fan_t = time_unit fanout in
  let injected = Fault.injected_total () in

  (* restarts come out of STATS; under faults the request itself can
     draw an injected typed error, so re-ask until a real stats frame
     lands *)
  let stats =
    let rec go n =
      if n = 0 then ""
      else
        match req ~attempts:8 "STATS" with
        | frames ->
            let s = String.concat "\n" frames in
            if String.length s >= 8 && String.sub s 0 8 = "OK stats" then s else go (n - 1)
        | exception _ -> go (n - 1)
    in
    go 50
  in
  let stat_field key =
    let needle = key ^ "=" in
    let nl = String.length needle and sl = String.length stats in
    let rec find i =
      if i + nl > sl then 0
      else if String.sub stats i nl = needle then (
        let k = ref (i + nl) and v = ref 0 in
        while !k < sl && stats.[!k] >= '0' && stats.[!k] <= '9' do
          v := (10 * !v) + (Char.code stats.[!k] - Char.code '0');
          incr k
        done;
        !v)
      else find (i + 1)
    in
    find 0
  in
  let restarts = stat_field "restarts" in

  (* --- disarm and verify the stack settles back to exact answers *)
  Fault.disable ();
  let settled = match req "QUERY q s d format=count" with [ one ] -> one = expected | _ -> false in
  ignore (req "SHUTDOWN");
  Serve_client.close seed;
  Serve_server.wait server;

  let attempted = clients * reqs_per_client in
  let availability =
    100. *. float_of_int (Atomic.get ok) /. float_of_int (max attempted 1)
  in
  push "e19/warm-p50-faults-off" (p50_off *. 1e9);
  push "e19/availability-pct" availability;
  push "e19/errors-typed" (float_of_int (Atomic.get typed_err));
  push "e19/errors-transport" (float_of_int (Atomic.get transport));
  push "e19/errors-wrong-answer" (float_of_int (Atomic.get wrong));
  push "e19/restarts" (float_of_int restarts);
  push "e19/injected" (float_of_int injected);
  print_table
    ~title:
      (Printf.sprintf
         "serve stack under seed-1717 faults: read=eintr@0.10 write=short@0.05 \
          request=exn@0.03 worker=exn@0.05 (%d clients x %d requests)"
         clients reqs_per_client)
    ~header:[ "metric"; "value" ]
    [
      [ "warm p50, faults off (vs e18/warm-p50)"; pretty_time p50_off ];
      [ "availability (exact answers)"; Printf.sprintf "%.1f%%" availability ];
      [ "typed errors (ERR n on the wire)"; pretty_int (Atomic.get typed_err) ];
      [ "transport failures (after client retries)"; pretty_int (Atomic.get transport) ];
      [ "wrong answers"; pretty_int (Atomic.get wrong) ];
      [ "worker-domain restarts"; pretty_int restarts ];
      [ "faults injected"; pretty_int injected ];
      [ "fan-out wall time"; pretty_time fan_t ];
      [ "exact answer after disarm"; (if settled then "yes" else "NO") ];
    ];
  note
    "expected shape: the faults-off p50 within noise of e18/warm-p50 (disarmed probes \
     are free); availability well above 90%% with every degraded reply a typed ERR and \
     zero wrong answers; restarts > 0 with the pool back at full strength (STATS still \
     reports workers=2); exact answers resume the moment faults disarm.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E20: zero-copy arena stores (DESIGN.md §2i)                         *)

module Serialize = Spanner_slp.Serialize
module Arena = Spanner_store.Arena
module Corpus = Spanner_store.Corpus
module Plan = Spanner_engine.Plan

let e20_store () =
  section
    "E20: zero-copy arena stores — mmap cold start vs SLPDB deserialization, batch \
     throughput over the mapped columns, and shard-parallel scaling (§2i)";
  let doc_bits = sc 16 8 in
  let ndocs = sc 64 4 in
  let rng = X.create 2026 in
  (* corpus shape for the cold-start scenario: one tiny hot document
     next to many large cold ones.  A point lookup on the hot doc is
     where load cost dominates — the SLPDB reader deserializes the
     whole multi-MB corpus to answer it, the arena maps the file and
     touches only the hot doc's pages. *)
  let db = Doc_db.create () in
  ignore (Doc_db.add_string db "hot" "abababab");
  for i = 1 to ndocs do
    ignore (Doc_db.add_string db (Printf.sprintf "doc%02d" i) (X.string rng "ab" (1 lsl doc_bits)))
  done;
  let dir = Filename.temp_file "spanner-bench-e20" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let slpdb = Filename.concat dir "corpus.slpdb" in
  Serialize.write_file db slpdb;
  let arena1 = Filename.concat dir "corpus.slpar" in
  ignore (Corpus.pack db ~shards:1 arena1);
  let ct = Compiled.of_formula (Regex_formula.parse ".*!x{ab}.*") in
  let json = ref [] in
  let push k v = json := (k, Some v) :: !json in

  (* --- cold-start time-to-first-tuple on the hot document *)
  let first_tuple text =
    match Cursor.next (Cursor.of_compiled (Compiled.prepare ct text)) with
    | Some _ -> ()
    | None -> failwith "hot document lost its tuples"
  in
  let ttft_slpdb =
    best_of 3 (fun () ->
        let db = Serialize.read_file slpdb in
        let fz = Doc_db.freeze db in
        first_tuple (Slp.frozen_to_string fz (Doc_db.find db "hot")))
  in
  let ttft_arena =
    best_of 3 (fun () ->
        let c = Corpus.open_path arena1 in
        let si, root = Option.get (Corpus.find c "hot") in
        first_tuple (Slp.frozen_to_string (Arena.frozen_view (Corpus.shards c).(si)) root))
  in
  let load_slpdb = best_of 3 (fun () -> ignore (Serialize.read_file slpdb)) in
  let load_arena = best_of 3 (fun () -> ignore (Corpus.open_path arena1)) in

  (* --- batch throughput: the full corpus through Plan.relations,
     heap Db vs mapped corpus (both take the compressed sweep) *)
  let check_total results =
    Array.fold_left
      (fun acc (_, r) ->
        match r with Ok rel -> acc + Span_relation.cardinal rel | Error e -> raise e)
      0 results
  in
  let batch_heap_total = ref 0 and batch_arena_total = ref 0 in
  let batch_heap =
    let p = Plan.make ~force:`Compressed ct (Plan.Db db) in
    best_of 3 (fun () -> batch_heap_total := check_total (Plan.relations p))
  in
  let corpus1 = Corpus.open_path arena1 in
  let batch_arena =
    let p = Plan.make ~force:`Compressed ct (Plan.Packed corpus1) in
    best_of 3 (fun () -> batch_arena_total := check_total (Plan.relations p))
  in
  if !batch_heap_total <> !batch_arena_total then
    failwith "arena batch disagrees with heap batch";

  (* --- shard-parallel scaling: same corpus split 1/2/4 ways,
     evaluated with 4 domains.  A longer literal keeps the result set
     tiny, isolating the matrix sweep — the serial phase that
     sharding parallelizes (enumeration already fans out per document
     at any shard count). *)
  let ct_sweep = Compiled.of_formula (Regex_formula.parse ".*!x{aaaaaaaaaaaa}.*") in
  let shard_times =
    List.map
      (fun shards ->
        let path = Filename.concat dir (Printf.sprintf "sharded%d" shards) in
        ignore (Corpus.pack db ~shards path);
        let c = Corpus.open_path path in
        let p = Plan.make ~force:`Compressed ct_sweep (Plan.Packed c) in
        let t = best_of 3 (fun () -> ignore (check_total (Plan.relations ~jobs:4 p))) in
        (shards, t))
      [ 1; 2; 4 ]
  in

  let corpus_bytes = (Unix.stat slpdb).Unix.st_size in
  push "e20/ttft-slpdb" (ttft_slpdb *. 1e9);
  push "e20/ttft-arena" (ttft_arena *. 1e9);
  push "e20/ttft-speedup" (ttft_slpdb /. max ttft_arena 1e-9);
  push "e20/load-slpdb" (load_slpdb *. 1e9);
  push "e20/load-arena" (load_arena *. 1e9);
  push "e20/batch-heap" (batch_heap *. 1e9);
  push "e20/batch-arena" (batch_arena *. 1e9);
  List.iter
    (fun (shards, t) -> push (Printf.sprintf "e20/batch-%dshard-4jobs" shards) (t *. 1e9))
    shard_times;
  print_table
    ~title:
      (Printf.sprintf "cold start and batch over %d docs (%s SLPDB on disk)" (ndocs + 1)
         (pretty_int corpus_bytes))
    ~header:[ "metric"; "value" ]
    ([
       [ "SLPDB cold start to first tuple (hot doc)"; pretty_time ttft_slpdb ];
       [ "arena cold start to first tuple (hot doc)"; pretty_time ttft_arena ];
       [ "cold-start speedup"; Printf.sprintf "%.0fx" (ttft_slpdb /. max ttft_arena 1e-9) ];
       [ "  SLPDB load alone"; pretty_time load_slpdb ];
       [ "  arena open alone"; pretty_time load_arena ];
       [
         "batch sweep, heap store";
         Printf.sprintf "%s (%s tuples)" (pretty_time batch_heap) (pretty_int !batch_heap_total);
       ];
       [ "batch sweep, mapped arena"; pretty_time batch_arena ];
     ]
    @ List.map
        (fun (shards, t) ->
          [ Printf.sprintf "batch, %d shard(s), 4 domains" shards; pretty_time t ])
        shard_times);
  note
    "expected shape: arena cold start at least 50x below the SLPDB reader on a multi-MB \
     corpus (the acceptance bar) — open is O(1) in corpus size (header + doc table, no \
     node deserialization) while SLPDB parses every node; the mapped batch within noise \
     of the heap batch (same sweep, different backing); multi-shard batches beating one \
     shard ON A MULTI-CORE BOX, since shards sweep in parallel instead of serializing \
     behind one engine — on a single core the domains time-slice and the rows are flat, \
     with each extra shard adding only its fixed sweep overhead.";
  List.rev !json

(* ------------------------------------------------------------------ *)
(* E21: compressed-domain constant delay (DESIGN.md §2j)               *)

let e21_delay () =
  section
    "E21: compressed-domain constant delay — the native SLP cursor's take-10 per-tuple \
     delay across doubling documents at compression ratio >= 100, and its \
     time-to-first-tuple against the legacy effect-handler inversion (§2j)";
  let rng = X.create 1452 in
  let wlen = sc 20 6 in
  let words = List.init (sc 18 4) (fun _ -> X.string rng "ab" wlen) in
  let word s =
    String.fold_left
      (fun acc c -> Regex_formula.concat acc (Regex_formula.char c))
      Regex_formula.epsilon s
  in
  let dict =
    List.fold_left
      (fun acc w -> Regex_formula.alt acc (word w))
      (word (List.hd words))
      (List.tl words)
  in
  let pad = Regex_formula.star (Regex_formula.chars (Spanner_fa.Charset.of_string "ab")) in
  let f =
    Regex_formula.concat pad (Regex_formula.concat (Regex_formula.bind (v "x") dict) pad)
  in
  (* deliberately NOT determinized: the dictionary NFA is ambiguous, so
     dedup is live on both paths — the comparison isolates the cursor
     machinery, not the automaton shape *)
  let ct = Compiled.of_evset (Evset.of_formula f) in
  let store = Slp.create_store () in
  let clen = sc 256 64 in
  let chunk_s =
    X.string rng "ab" (clen / 2) ^ List.hd words ^ X.string rng "ab" ((clen / 2) - wlen)
  in
  let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in
  (* one planted-match chunk, then pure doubling: len 2^e at ~100 nodes *)
  let exps = sizes [ 22; 24; 26; 28 ] [ 14; 16 ] in
  let roots =
    let r = ref (Builder.balanced_of_string store chunk_s) in
    let cur = ref (lg clen) in
    List.map
      (fun e ->
        while !cur < e do
          r := Slp.pair store !r !r;
          incr cur
        done;
        (e, !r))
      exps
  in
  let engine = Slp_spanner.of_compiled ct store in
  let k = 10 in
  let json = ref [] in
  let rows =
    List.map
      (fun (e, root) ->
        (* later roots share every subtree of earlier ones, so each
           prepare only sweeps the new doubling spine *)
        let prepare = time_unit (fun () -> Slp_spanner.prepare engine root) in
        let len = 1 lsl e in
        let nodes = Slp.reachable_size store root in
        let ttft =
          best_of 20 (fun () ->
              let c = Cursor.of_slp engine root in
              ignore (Cursor.next c))
        in
        let take_k =
          best_of 20 (fun () ->
              ignore (Cursor.to_list (Cursor.take (Cursor.of_slp engine root) k)))
        in
        json :=
          (Printf.sprintf "e21/ttft-native-%d" len, Some (ttft *. 1e9))
          :: ( Printf.sprintf "e21/take%d-perTuple-%d" k len,
               Some (take_k *. 1e9 /. float_of_int k) )
          :: !json;
        [
          pretty_int len;
          pretty_int nodes;
          pretty_int (len / nodes);
          pretty_time prepare;
          pretty_time ttft;
          pretty_time take_k;
          pretty_time (take_k /. float_of_int k);
        ])
      roots
  in
  print_table
    ~title:
      (Printf.sprintf
         "pad.!x{dict of %d words}.pad over a doubling SLP — take-%d through the native \
          cursor (preprocessing excluded)"
         (List.length words) k)
    ~header:
      [ "|D|"; "nodes"; "ratio"; "prepare"; "ttft"; Printf.sprintf "take-%d" k; "delay/tuple" ]
    rows;
  (* the pre-refactor adapter at the largest size: per-cursor
     determinism probe + effect fiber + recursive descent *)
  let _, top = List.nth roots (List.length roots - 1) in
  let legacy_cursor () =
    let dedup = not (Evset.is_deterministic (Compiled.evset (Slp_spanner.compiled engine))) in
    Cursor.of_iter ~dedup ~vars:(Slp_spanner.vars engine) (fun yield ->
        Slp_spanner.iter_prepared engine top yield)
  in
  let native_ttft =
    best_of 20 (fun () ->
        let c = Cursor.of_slp engine top in
        ignore (Cursor.next c))
  in
  let legacy_ttft =
    best_of 20 (fun () ->
        let c = legacy_cursor () in
        ignore (Cursor.next c))
  in
  let speedup = legacy_ttft /. max native_ttft 1e-9 in
  json :=
    ("e21/ttft-legacy", Some (legacy_ttft *. 1e9))
    :: ("e21/ttft-speedup", Some speedup)
    :: !json;
  print_table ~title:"time-to-first-tuple at the largest size, native vs legacy adapter"
    ~header:[ "cursor"; "ttft" ]
    [
      [ "native pull machine"; pretty_time native_ttft ];
      [ "effect-handler of_iter"; pretty_time legacy_ttft ];
      [ "speedup"; Printf.sprintf "%.0fx" speedup ];
    ];
  note
    "expected shape: per-tuple take-%d delay flat (within 2x) from 4 MB to 256 MB — the \
     per-pull work is one fused split scan per grammar level plus dedup against the NFA's \
     ambiguous runs, none of it a function of |D|; native ttft at least 50x below the \
     legacy adapter, whose first pull pays a per-cursor determinism probe (a 256-entry \
     table per state), an effect-fiber spawn, and a recursive descent that probes the \
     transition matrix state-by-state where the native machine runs one word-parallel \
     scan per level."
    k;
  List.rev !json

(* ------------------------------------------------------------------ *)
(* A: ablations of design choices                                      *)

let a1_join_strategy () =
  section "A1 (ablation): relational join — hash join vs nested loops";
  let x = v "x" and y = v "y" in
  let rng = X.create 55 in
  let rows =
    List.map
      (fun size ->
        let mk_rel var =
          Span_relation.of_list
            (vs [ x; y ])
            (List.init size (fun _ ->
                 Span_tuple.of_list
                   [
                     (var, Span.make (1 + X.int rng 50) 60);
                     ((if Variable.equal var x then y else x), Span.make (1 + X.int rng 50) 60);
                   ]))
        in
        let r1 = mk_rel x and r2 = mk_rel y in
        let hash_time = best_of 3 (fun () -> ignore (Span_relation.join r1 r2)) in
        let nested_time =
          best_of 3 (fun () ->
              (* nested-loop baseline *)
              let acc = ref [] in
              List.iter
                (fun t1 ->
                  List.iter
                    (fun t2 ->
                      if Span_tuple.compatible t1 t2 then acc := Span_tuple.merge t1 t2 :: !acc)
                    (Span_relation.tuples r2))
                (Span_relation.tuples r1);
              ignore
                (Span_relation.of_list
                   (Variable.Set.union (Span_relation.schema r1) (Span_relation.schema r2))
                   !acc))
        in
        [
          pretty_int size;
          pretty_time hash_time;
          pretty_time nested_time;
          Printf.sprintf "%.1fx" (nested_time /. max hash_time 1e-9);
        ])
      (sizes [ 100; 400; 1600 ] [ 50; 100 ])
  in
  print_table ~title:"join of two random relations (shared variables x, y)"
    ~header:[ "tuples/side"; "hash join"; "nested loops"; "ratio" ]
    rows

let a2_balanced_editing () =
  section "A2 (ablation): why CDE needs strong balance — AVL concat vs naive pairing";
  let rows =
    List.map
      (fun appends ->
        let store = Slp.create_store () in
        let block = Builder.balanced_of_string store "abcdefgh" in
        (* naive: plain pairs → left comb of depth [appends] *)
        let naive = ref block in
        for _ = 1 to appends do
          naive := Slp.pair store !naive block
        done;
        (* balanced: AVL concat *)
        let balanced = ref block in
        for _ = 1 to appends do
          balanced := Balance.concat store !balanced block
        done;
        let n = Slp.len store !naive in
        let probe id = best_of 3 (fun () -> ignore (Slp.char_at store id (n / 2))) in
        [
          pretty_int appends;
          string_of_int (Slp.order store !naive);
          string_of_int (Slp.order store !balanced);
          pretty_time (probe !naive);
          pretty_time (probe !balanced);
        ])
      (sizes [ 256; 1024; 4096; 16384 ] [ 64; 256 ])
  in
  print_table ~title:"random access after n appends"
    ~header:[ "appends"; "naive order"; "AVL order"; "naive char_at"; "AVL char_at" ]
    rows;
  note "expected shape: naive depth (and access cost) linear in appends; AVL logarithmic."

let a3_equality_strategy () =
  section "A3 (ablation): string-equality filtering — SLP fingerprints vs decompress + hash";
  let rows =
    List.map
      (fun k ->
        let store = Slp.create_store () in
        let id = Builder.repeat store "ab;" (1 lsl k) in
        let n = Slp.len store id in
        let h = Spanner_slp.Slp_hash.create store in
        (* compare the two halves of the document *)
        let fingerprint =
          best_of 3 (fun () ->
              ignore (Spanner_slp.Slp_hash.factor_equal h id (1, (n / 2) + 1) ((n / 2) + 1, n + 1)))
        in
        let decompress =
          best_of 3 (fun () ->
              let doc = Slp.to_string store id in
              let sh = Spanner_util.Strhash.make doc in
              ignore (Spanner_util.Strhash.equal_sub sh 0 (n / 2) (n / 2)))
        in
        [ pretty_int n; pretty_time fingerprint; pretty_time decompress ])
      (sizes [ 8; 12; 16; 20 ] [ 6; 8 ])
  in
  print_table ~title:"half-vs-half factor equality on (ab;)^k"
    ~header:[ "|D|"; "SLP fingerprint"; "decompress + rolling hash" ]
    rows;
  note "expected shape: fingerprints O(log |D|) and flat; decompression linear."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment family      *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (OLS estimates, one per experiment family)";
  let open Bechamel in
  let open Toolkit in
  let rng = X.create 77 in
  let doc4k = X.string rng "ab" (sc 4096 256) in
  let e1_auto = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let e2_core =
    Core_spanner.simplify
      (Algebra.Select (vs [ v "bm1"; v "bm2" ], Algebra.formula "!bm1{[ab]*}!bm2{[ab]*}"))
  in
  let e4_refl = Refl_spanner.parse "!x{[ab]+}c!y{&x}" in
  let e4_doc = doc4k ^ "c" ^ doc4k in
  let e4_tuple =
    Span_tuple.of_list [ (v "x", Span.make 1 4097); (v "y", Span.make 4098 8194) ]
  in
  let e5_store = Slp.create_store () in
  let e5_id = Builder.repeat e5_store "ab" (1 lsl sc 16 8) in
  let e5_nfa = Nfa.of_regex (Regex.parse "(ab)*") in
  let e7_db = Doc_db.create () in
  let e7_id = Builder.repeat (Doc_db.store e7_db) "ab" (1 lsl sc 15 8) in
  Doc_db.add e7_db "base" e7_id;
  let e7_n = Slp.len (Doc_db.store e7_db) e7_id in
  let e7_expr =
    Cde.Insert (Cde.Doc "base", Cde.Extract (Cde.Doc "base", e7_n / 4, e7_n / 2), e7_n / 3)
  in
  let e1_ct = Compiled.of_evset e1_auto in
  let e12_docs = Array.init (sc 16 4) (fun i -> X.string rng "ab" (sc 4096 256 + i)) in
  let tests =
    [
      Test.make ~name:"e1/prepare-4k" (Staged.stage (fun () -> Enumerate.prepare e1_auto doc4k));
      Test.make ~name:"e1/reference-prepare-4k"
        (Staged.stage (fun () -> Enumerate.Reference.prepare e1_auto doc4k));
      Test.make ~name:"e1/compiled-prepare-4k"
        (Staged.stage (fun () -> Compiled.prepare e1_ct doc4k));
      Test.make ~name:"e12/batch-16x4k-seq"
        (Staged.stage (fun () -> Compiled.eval_all ~jobs:1 e1_ct e12_docs));
      Test.make ~name:"e12/batch-16x4k-par"
        (Staged.stage (fun () -> Compiled.eval_all e1_ct e12_docs));
      Test.make ~name:"e2/core-eval-square-12"
        (Staged.stage (fun () -> Core_spanner.eval e2_core "abababababab"));
      Test.make ~name:"e4/refl-modelcheck-8k"
        (Staged.stage (fun () -> Refl_spanner.model_check e4_refl e4_doc e4_tuple));
      Test.make ~name:"e5/slp-accept-131k"
        (Staged.stage (fun () ->
             let cache = Accept.make_cache e5_nfa e5_store in
             Accept.accepts cache e5_id));
      Test.make ~name:"e6/slp-prepare-131k"
        (Staged.stage (fun () ->
             let engine = Slp_spanner.create e1_auto e5_store in
             Slp_spanner.prepare engine e5_id));
      Test.make ~name:"e7/cde-update-65k" (Staged.stage (fun () -> Cde.eval e7_db e7_expr));
    ]
  in
  let grouped = Test.make_grouped ~name:"spanners" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second (sc 0.5 0.05)) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some [ est ] -> Some est | _ -> None
      in
      rows := (name, estimate) :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_table ~title:"OLS time-per-run estimates" ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, estimate) ->
         [
           name;
           (match estimate with Some est -> pretty_time (est /. 1e9) | None -> "n/a");
         ])
       rows);
  rows

(* [write_json file rows] dumps the OLS estimates as a flat JSON object
   mapping benchmark name to ns/run, for machine consumption
   (regression tracking across commits). *)
let write_json file rows =
  let entries = List.filter_map (fun (name, est) -> Option.map (fun e -> (name, e)) est) rows in
  let oc = open_out file in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.2f%s\n" name ns
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  note "wrote %d OLS estimates (ns/run) to %s" (List.length entries) file

(* ------------------------------------------------------------------ *)
(* Registry + CLI                                                      *)

type experiment = {
  id : string;  (* --only key: "F1", "E12", "A2", "OLS" *)
  run : unit -> (string * float option) list;  (* [] when no JSON rows *)
  json : string option;  (* fixed-name JSON sink, written under --json *)
}

let silent f () =
  f ();
  []

let registry =
  [
    { id = "F1"; run = silent figure1; json = None };
    { id = "E1"; run = silent e1_enumeration; json = None };
    { id = "E2"; run = silent e2_regular_vs_core; json = None };
    { id = "E3"; run = silent e3_core_expressiveness; json = None };
    { id = "E4"; run = silent e4_refl_vs_core; json = None };
    { id = "E5"; run = silent e5_slp_accept; json = None };
    { id = "E6"; run = silent e6_slp_enumeration; json = None };
    { id = "E7"; run = silent e7_cde_updates; json = None };
    { id = "E8"; run = silent e8_balancing; json = None };
    { id = "E9"; run = silent e9_core_over_slp; json = None };
    { id = "E10"; run = silent e10_context_free; json = None };
    { id = "E11"; run = silent e11_datalog; json = None };
    { id = "E12"; run = silent e12_compiled_engine; json = None };
    { id = "E13"; run = e13_incremental; json = Some "BENCH_incr.json" };
    { id = "E14"; run = e14_robustness; json = Some "BENCH_robust.json" };
    { id = "E15"; run = e15_compressed_batch; json = Some "BENCH_slp.json" };
    { id = "E16"; run = e16_cursor; json = Some "BENCH_cursor.json" };
    { id = "E17"; run = e17_algebra; json = Some "BENCH_algebra.json" };
    { id = "E18"; run = e18_serve; json = Some "BENCH_serve.json" };
    { id = "E19"; run = e19_chaos; json = Some "BENCH_robust.json" };
    { id = "E20"; run = e20_store; json = Some "BENCH_store.json" };
    { id = "E21"; run = e21_delay; json = Some "BENCH_cursor.json" };
    { id = "A1"; run = silent a1_join_strategy; json = None };
    { id = "A2"; run = silent a2_balanced_editing; json = None };
    { id = "A3"; run = silent a3_equality_strategy; json = None };
    { id = "OLS"; run = bechamel_suite; json = None };
  ]

let usage = "usage: main.exe [--json FILE] [--only ID,ID,...] [--smoke]"

let () =
  let json_file = ref None in
  let only = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse_args rest
    | [ "--json" ] ->
        Printf.eprintf "--json needs a FILE operand (%s)\n" usage;
        exit 2
    | "--only" :: ids :: rest ->
        only :=
          Some
            (String.split_on_char ',' ids |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map String.uppercase_ascii);
        parse_args rest
    | [ "--only" ] ->
        Printf.eprintf "--only needs a comma-separated list of experiment ids (%s)\n" usage;
        exit 2
    | "--smoke" :: rest ->
        smoke := true;
        parse_args rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s (%s)\n" arg usage;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let selected =
    match !only with
    | None -> registry
    | Some ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun e -> e.id = id) registry) then (
              Printf.eprintf "unknown experiment %s (known: %s)\n" id
                (String.concat ", " (List.map (fun e -> e.id) registry));
              exit 2))
          ids;
        List.filter (fun e -> List.mem e.id ids) registry
  in
  note "Document Spanners — benchmark harness (see DESIGN.md section 2 and EXPERIMENTS.md)";
  if !smoke then note "smoke mode: tiny sizes, sanity only — timings are not meaningful";
  (* experiments can share a JSON sink (E14 and E19 both extend
     BENCH_robust.json), so rows accumulate per file and each file is
     written once at the end instead of per experiment *)
  let sinks = ref [] in
  let accumulate file rows =
    match List.assoc_opt file !sinks with
    | Some prev -> sinks := (file, prev @ rows) :: List.remove_assoc file !sinks
    | None -> sinks := (file, rows) :: !sinks
  in
  List.iter
    (fun e ->
      let rows = e.run () in
      match !json_file with
      | None -> ()
      | Some ols_file -> (
          match e.json with
          | Some file -> accumulate file rows
          | None -> if e.id = "OLS" then accumulate ols_file rows))
    selected;
  List.iter (fun (file, rows) -> write_json file rows) (List.rev !sinks);
  note "\nall experiments completed."
