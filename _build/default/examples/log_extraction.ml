(* Information extraction from a synthetic server log — the AQL-style
   workload that motivated document spanners (§1): primitive extractors
   combined with the relational algebra (∪, ⋈, π) and a string-equality
   selection, evaluated through the core-simplification pipeline.

   Run with:  dune exec examples/log_extraction.exe

   Log line shape:   <level> <user> <action>;
   e.g.              "E bob write;I carol read;"

   Extraction tasks:
   1. all (user, action) pairs of error lines
   2. users that appear both with an error and an info line (ς=)     *)

open Spanner_core

let log_doc =
  String.concat ""
    [
      "I alice login;";
      "E bob write;";
      "I carol read;";
      "E alice write;";
      "I bob logout;";
      "E carol read;";
      "E bob read;";
    ]

let () =
  (* Primitive spanner: an error line anywhere in the log, extracting
     the user and the action.  A line starts at the document start or
     right after a ';'. *)
  let error_lines =
    Algebra.formula "(.*;)?E !u{[a-z]+} !act{[a-z]+};.*"
  in
  let u = Variable.of_string "u" in

  Format.printf "== error (user, action) pairs ==@.";
  let errors = Algebra.eval error_lines log_doc in
  Format.printf "%a@." (Span_relation.pp ~doc:log_doc) errors;

  (* Task 2: users with both an error and an info line.  Extract an
     error user u and an info user u2 independently (the join of two
     regular spanners is again regular, §2.2), then select u = u2 and
     project u2 away — a genuine core spanner. *)
  let info_user = Algebra.formula "(.*;)?I !u2{[a-z]+} [a-z]+;.*" in
  let u2 = Variable.of_string "u2" in
  let both =
    Algebra.Project
      ( Variable.set_of_list [ u ],
        Algebra.Select
          (Variable.set_of_list [ u; u2 ], Algebra.Join (error_lines, info_user)) )
  in
  Format.printf "== users with an error AND an info line ==@.";
  let result = Core_spanner.eval_algebra both log_doc in
  Format.printf "%a@." (Span_relation.pp ~doc:log_doc) result;

  (* The two evaluation routes agree (the core-simplification lemma,
     §2.3): *)
  assert (Span_relation.equal result (Algebra.eval both log_doc));

  (* Show the simplified normal form π_Y(ς=_Z1 … (⟦M⟧)) the lemma
     produces. *)
  let simplified = Core_spanner.simplify both in
  Format.printf
    "core-simplification: automaton with %d states, %d string-equality class(es), %d visible \
     column(s)@."
    (Evset.size simplified.Core_spanner.automaton)
    (List.length simplified.Core_spanner.selections)
    (Variable.Set.cardinal simplified.Core_spanner.projection)
