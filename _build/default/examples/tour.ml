(* A guided tour of the whole library, following the paper's sections.

   Run with:  dune exec examples/tour.exe

   Covers: regular spanners and enumeration (§1, §2.5), the algebra and
   core simplification (§2.3), the §2.4 decision problems,
   refl-spanners (§3), SLP-compressed evaluation and editing (§4),
   context-free spanners ([31]), datalog over spanners ([33]), weighted
   spanners ([8]), split-correctness ([7]), and AQL-style
   consolidation. *)

open Spanner_core

let heading title =
  Format.printf "@.=== %s ===@." title

let () =
  let v = Variable.of_string in
  let vs = Variable.set_of_list in

  heading "1. Regular spanners (Example 1.1)";
  let s = Evset.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  Format.printf "%a" (Span_relation.pp ~doc:"ababbab") (Evset.eval s "ababbab");

  heading "2. Enumeration: linear preprocessing, constant delay (§2.5)";
  let p = Enumerate.prepare s "ababbab" in
  Format.printf "%d tuples from %d product nodes@." (Enumerate.cardinal p)
    (Enumerate.stats p).Enumerate.nodes;

  heading "3. The algebra and core simplification (§2.3)";
  let q =
    Algebra.Project
      ( vs [ v "u" ],
        Algebra.Select (vs [ v "u"; v "w" ], Algebra.formula "!u{[ab]+};!w{[ab]+};.*") )
  in
  let simplified = Core_spanner.simplify q in
  Format.printf "π_Y(ς=...(M)): %d automaton states, %d selection class(es)@."
    (Evset.size simplified.Core_spanner.automaton)
    (List.length simplified.Core_spanner.selections);
  Format.printf "%a" (Span_relation.pp ~doc:"ab;ab;x") (Core_spanner.eval simplified "ab;ab;x");

  heading "4. Decision problems (§2.4)";
  Format.printf "satisfiable: %b; hierarchical: %b; equivalent to itself: %b@."
    (Decision.Regular.satisfiability s)
    (Decision.Regular.hierarchicality s)
    (Decision.Regular.equivalence s s);

  heading "5. Refl-spanners: regular string equality (§3)";
  let refl = Spanner_refl.Refl_spanner.parse "!x{[ab]+};!y{&x};.*" in
  Format.printf "%a" (Span_relation.pp ~doc:"ab;ab;cd")
    (Spanner_refl.Refl_spanner.eval refl "ab;ab;cd");
  Format.printf "satisfiability is just reachability: %b@."
    (Spanner_refl.Refl_spanner.satisfiable refl);

  heading "6. Compressed documents: SLPs, evaluation, editing (§4)";
  let module Slp = Spanner_slp.Slp in
  let module Doc_db = Spanner_slp.Doc_db in
  let module Cde = Spanner_slp.Cde in
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let big = String.concat "" (List.init 2000 (fun i -> if i = 777 then "needle;" else "haysta;")) in
  ignore (Doc_db.add_string db "big" big);
  Format.printf "|D| = %d stored in %d nodes@." (Doc_db.total_len db) (Doc_db.compressed_size db);
  let finder = Evset.of_formula (Regex_formula.parse "[a-z;]*!x{needle}[a-z;]*") in
  let engine = Spanner_slp.Slp_spanner.create finder store in
  Format.printf "matches without decompression: %d@."
    (Spanner_slp.Slp_spanner.cardinal engine (Doc_db.find db "big"));
  let edited = Cde.materialize db "edited" (Cde.Copy (Cde.Doc "big", 5437, 5443, 1)) in
  Format.printf "after copy-editing: %d matches (still compressed)@."
    (Spanner_slp.Slp_spanner.cardinal engine edited);

  heading "7. Context-free spanners: beyond regular ([31])";
  let dyck =
    Spanner_cfg.Cf_spanner.dyck_extractor ~x:(v "blk") ~open_c:'(' ~close_c:')'
      ~other:(Spanner_fa.Charset.of_string "ab")
  in
  Format.printf "%a" (Span_relation.pp ~doc:"a((b)a)")
    (Spanner_cfg.Cf_spanner.eval dyck "a((b)a)");

  heading "8. Datalog over spanners: recursion ([33])";
  let program =
    Spanner_datalog.Datalog.parse
      {| eq(x, y) :- <([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*>(x, y), streq(x, y).
         chain(x, y) :- eq(x, y).
         chain(x, z) :- chain(x, y), eq(y, z). |}
  in
  let result = Spanner_datalog.Datalog.run program "ab;ab;ab;" in
  Format.printf "chain facts: %d (fixpoint in %d rounds)@."
    (Spanner_datalog.Datalog.fact_count result "chain")
    (Spanner_datalog.Datalog.iterations result);

  heading "9. Weighted spanners: ambiguity and best match ([8])";
  let module WC = Spanner_weighted.Weighted.Make (Spanner_weighted.Semiring.Count) in
  let ambiguous = Evset.union s s in
  let t =
    Span_tuple.of_list [ (v "x", Span.make 1 2); (v "y", Span.make 2 3); (v "z", Span.make 3 8) ]
  in
  Format.printf "runs for one tuple in S ∪ S: %d@."
    (WC.tuple_weight (WC.uniform ambiguous) "ababbab" t);

  heading "10. Split-correctness ([7])";
  let splitter = Split.segments_splitter ~sep:';' in
  let local = Evset.of_formula (Regex_formula.parse ".*!x{a+}.*") in
  let crossing = Evset.of_formula (Regex_formula.parse ".*!x{a;a}.*") in
  Format.printf "a+ extractor split-correct w.r.t. ';': %b@." (Split.split_correct splitter local);
  Format.printf "separator-crossing extractor: %b@." (Split.split_correct splitter crossing);

  heading "11. AQL-style consolidation";
  let matches = Evset.eval (Evset.of_formula (Regex_formula.parse ".*!x{a+}.*")) "aaabaa" in
  Format.printf "raw matches: %d; maximal only: %d; leftmost-longest: %d@."
    (Span_relation.cardinal matches)
    (Span_relation.cardinal
       (Consolidate.consolidate Consolidate.Contained_within ~on:(v "x") matches))
    (Span_relation.cardinal
       (Consolidate.consolidate Consolidate.Left_to_right ~on:(v "x") matches))
