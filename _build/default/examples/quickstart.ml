(* Quickstart: Example 1.1 of the paper, end to end.

   Run with:  dune exec examples/quickstart.exe

   The spanner extracts, from a document over {a,b}, all ways of
   splitting it into a prefix x, a single b in the middle (y), and a
   suffix z. *)

open Spanner_core

let () =
  (* 1. Write the spanner as a regex formula.  !x{...} binds variable x
        around a sub-expression — the paper's ⊢x … ⊣x. *)
  let formula = Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}" in

  (* 2. Compile it to an (extended) vset-automaton. *)
  let spanner = Evset.of_formula formula in

  (* 3. Evaluate on a document.  The result is a span relation: a set
        of assignments of spans [i,j⟩ to the variables. *)
  let doc = "ababbab" in
  let relation = Evset.eval spanner doc in
  Format.printf "S(%s):@.%a@." doc (Span_relation.pp ~doc) relation;

  (* 4. The same result, tuple by tuple, through the constant-delay
        enumeration pipeline (linear preprocessing, §2.5). *)
  let prepared = Enumerate.prepare spanner doc in
  Format.printf "enumerated %d tuples (preprocessing: %d product nodes)@."
    (Enumerate.cardinal prepared)
    (Enumerate.stats prepared).Enumerate.nodes;
  Enumerate.iter prepared (fun tuple -> Format.printf "  %a@." Span_tuple.pp tuple);

  (* 5. Decision problems (§2.4) are one call each. *)
  Format.printf "satisfiable: %b, hierarchical: %b@." (Evset.satisfiable spanner)
    (Evset.hierarchical spanner);
  let member = Span_tuple.of_list
      [ (Variable.of_string "x", Span.make 1 2);
        (Variable.of_string "y", Span.make 2 3);
        (Variable.of_string "z", Span.make 3 8) ]
  in
  Format.printf "([1,2⟩,[2,3⟩,[3,8⟩) ∈ S(%s): %b@." doc (Evset.accepts_tuple spanner doc member)
