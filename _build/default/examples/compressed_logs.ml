(* Spanner evaluation over an SLP-compressed document database with
   complex document editing — the §4 scenario end to end:

   1. compress highly repetitive "log archives" into one shared SLP;
   2. strongly balance the SLP (§4.1);
   3. evaluate a regular spanner on each document *without
      decompressing* (§4.2: per-node boolean matrices + partial
      decompression during enumeration);
   4. edit the database with CDE expressions and re-query at
      logarithmic cost (§4.3).

   Run with:  dune exec examples/compressed_logs.exe *)

open Spanner_core
open Spanner_slp

let () =
  let db = Doc_db.create () in
  let store = Doc_db.store db in

  (* A very repetitive archive: 10000 "ok;" heartbeats with a few
     "err;" records sprinkled in.  LZ78 + strong balancing stores it in
     a tiny DAG. *)
  let archive =
    String.concat ""
      (List.init 10_000 (fun i -> if i mod 997 = 0 then "err;" else "ok;;"))
  in
  let night_shift = String.concat "" (List.init 5_000 (fun _ -> "ok;;")) in
  ignore (Doc_db.add_string db "day" archive);
  ignore (Doc_db.add_string db "night" night_shift);

  Format.printf "database: %d documents, %d characters total, %d SLP nodes@."
    (List.length (Doc_db.names db))
    (Doc_db.total_len db) (Doc_db.compressed_size db);

  (* The spanner: extract every error record. *)
  let spanner = Evset.of_formula (Regex_formula.parse "[ok;er]*!x{err}[ok;er]*") in
  let engine = Slp_spanner.create spanner store in

  let report name =
    let id = Doc_db.find db name in
    Slp_spanner.prepare engine id;
    Format.printf "%-14s |D| = %-7d errors = %-4d (matrices cached: %d)@." name
      (Slp.len store id)
      (Slp_spanner.cardinal engine id)
      (Slp_spanner.matrices_computed engine)
  in
  List.iter report (Doc_db.names db);

  (* First few matches, enumerated lazily with only partial
     decompression: *)
  let shown = ref 0 in
  (try
     Slp_spanner.iter engine (Doc_db.find db "day") (fun tuple ->
         Format.printf "  match: %a@." Span_tuple.pp tuple;
         incr shown;
         if !shown >= 3 then raise Exit)
   with Exit -> ());

  (* Complex document editing (§4.3): splice the first error region of
     "day" into "night", then append a fresh heartbeat block — all in
     O(|φ|·log d) node work; the spanner indexes update incrementally
     because matrices are memoised per node. *)
  let edit =
    Cde.Concat
      ( Cde.Insert (Cde.Doc "night", Cde.Extract (Cde.Doc "day", 1, 12), 9),
        Cde.Extract (Cde.Doc "night", 1, 40) )
  in
  Format.printf "applying CDE expression: %a@." Cde.pp edit;
  let before = Slp_spanner.matrices_computed engine in
  let patched = Cde.materialize db "night_patched" edit in
  let patched_errors = Slp_spanner.cardinal engine patched in
  let new_matrices = Slp_spanner.matrices_computed engine - before in
  Format.printf "patched:       |D| = %-7d errors = %-4d (new matrices: %d)@."
    (Slp.len store patched) patched_errors new_matrices;

  (* Sanity: the compressed result equals decompress-and-evaluate. *)
  let doc = Slp.to_string store patched in
  assert (
    Span_relation.equal
      (Slp_spanner.to_relation engine patched)
      (Evset.eval spanner doc));
  Format.printf "compressed evaluation verified against decompression ✓@."
