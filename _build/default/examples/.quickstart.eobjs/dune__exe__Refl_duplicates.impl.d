examples/refl_duplicates.ml: Core_spanner Evset Format List Refl_spanner Regex_formula Span Span_relation Span_tuple Spanner_core Spanner_refl Variable
