examples/compressed_logs.mli:
