examples/quickstart.ml: Enumerate Evset Format Regex_formula Span Span_relation Span_tuple Spanner_core Variable
