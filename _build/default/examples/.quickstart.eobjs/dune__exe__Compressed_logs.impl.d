examples/compressed_logs.ml: Cde Doc_db Evset Format List Regex_formula Slp Slp_spanner Span_relation Span_tuple Spanner_core Spanner_slp String
