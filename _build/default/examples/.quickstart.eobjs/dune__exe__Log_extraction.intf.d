examples/log_extraction.mli:
