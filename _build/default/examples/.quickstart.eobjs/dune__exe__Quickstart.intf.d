examples/quickstart.mli:
