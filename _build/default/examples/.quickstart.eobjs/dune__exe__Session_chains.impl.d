examples/session_chains.ml: Array Datalog Evset Format List Regex_formula Span Spanner_core Spanner_datalog Variable
