examples/session_chains.mli:
