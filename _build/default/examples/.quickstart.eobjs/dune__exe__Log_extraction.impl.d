examples/log_extraction.ml: Algebra Core_spanner Evset Format List Span_relation Spanner_core String Variable
