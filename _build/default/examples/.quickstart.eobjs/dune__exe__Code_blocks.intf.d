examples/code_blocks.mli:
