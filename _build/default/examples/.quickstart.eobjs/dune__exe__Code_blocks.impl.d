examples/code_blocks.ml: Cf_spanner Format Span Span_relation Span_tuple Spanner_cfg Spanner_core Spanner_fa Variable
