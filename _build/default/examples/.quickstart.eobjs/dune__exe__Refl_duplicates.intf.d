examples/refl_duplicates.mli:
