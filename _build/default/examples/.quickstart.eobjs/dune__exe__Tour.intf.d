examples/tour.mli:
