(* Datalog over regular spanners (RGXLog, [33]): recursion on top of
   extraction.

   Task: a log contains ';'-separated session tokens.  Two consecutive
   fields with equal content belong to the same "run"; we want the
   *transitive closure* — all pairs of fields connected by a chain of
   equal neighbours.  The chain relation is inherently recursive, so
   no single core spanner expresses it; a 3-rule datalog program does.

   Run with:  dune exec examples/session_chains.exe *)

open Spanner_core
open Spanner_datalog

let () =
  let v = Variable.of_string in
  let doc = "ab;ab;ab;ba;ba;ab;" in

  (* step spanner: two consecutive fields *)
  let step =
    Evset.of_formula (Regex_formula.parse "([ab]+;)*!x{[ab]+};!y{[ab]+};([ab]+;)*")
  in
  let program =
    Datalog.make
      [
        (* eq_next(x, y): consecutive fields with equal content — a
           core-spanner step expressed with the ς= built-in *)
        {
          Datalog.head = ("eq_next", [ "x"; "y" ]);
          body =
            [
              Datalog.Spanner (step, [ (v "x", "x"); (v "y", "y") ]);
              Datalog.Content_eq ("x", "y");
            ];
        };
        (* chain: transitive closure — beyond any single core spanner *)
        { Datalog.head = ("chain", [ "x"; "y" ]); body = [ Datalog.Idb ("eq_next", [ "x"; "y" ]) ] };
        {
          Datalog.head = ("chain", [ "x"; "z" ]);
          body = [ Datalog.Idb ("chain", [ "x"; "y" ]); Datalog.Idb ("eq_next", [ "y"; "z" ]) ];
        };
      ]
  in
  let result = Datalog.run program doc in
  Format.printf "document: %s@." doc;
  Format.printf "fixpoint reached after %d semi-naive rounds@." (Datalog.iterations result);
  Format.printf "eq_next (%d facts):@." (Datalog.fact_count result "eq_next");
  List.iter
    (fun row ->
      Format.printf "  %a=%S ~ %a=%S@." Span.pp row.(0)
        (Span.content row.(0) doc)
        Span.pp row.(1)
        (Span.content row.(1) doc))
    (Datalog.facts result "eq_next");
  Format.printf "chain (%d facts):@." (Datalog.fact_count result "chain");
  List.iter
    (fun row -> Format.printf "  %a ~* %a@." Span.pp row.(0) Span.pp row.(1))
    (Datalog.facts result "chain")
