(* Refl-spanners (§3): string equality as a *regular* feature.

   Task: in a ';'-separated record, find fields that occur twice — a
   backreference-style query.  As a core spanner this needs a
   string-equality selection (with all the §2.4 hardness that brings);
   as a refl-spanner the equality is a reference meta-symbol &x and the
   spanner stays "purely regular": satisfiability is a reachability
   check, and membership of a given tuple is testable in linear time
   (§3.3).

   Run with:  dune exec examples/refl_duplicates.exe *)

open Spanner_core
open Spanner_refl

let () =
  let doc = "red;green;blue;green;cyan;red;" in

  (* x captures a field; &x later demands a literal copy of it. *)
  let spanner = Refl_spanner.parse "([a-z]*;)*!x{[a-z]+};([a-z]*;)*!y{&x};([a-z]*;)*" in

  Format.printf "document: %s@." doc;
  Format.printf "duplicated fields:@.%a@."
    (Span_relation.pp ~doc)
    (Refl_spanner.eval spanner doc);

  (* §3.3: the nice static analysis — satisfiability is cheap. *)
  Format.printf "satisfiable: %b, reference-bounded: %b@."
    (Refl_spanner.satisfiable spanner)
    (Refl_spanner.reference_bounded spanner);

  (* Linear-time model checking of a candidate tuple. *)
  let x = Variable.of_string "x" and y = Variable.of_string "y" in
  let candidate = Span_tuple.of_list [ (x, Span.make 5 10); (y, Span.make 16 21) ] in
  Format.printf "(green, green) tuple accepted: %b@."
    (Refl_spanner.model_check spanner doc candidate);

  (* §3.2: translate to an equivalent core spanner and cross-check. *)
  let core = Refl_spanner.to_core spanner in
  let agree = Span_relation.equal (Refl_spanner.eval spanner doc) (Core_spanner.eval core doc) in
  Format.printf "refl→core translation agrees: %b@." agree;
  Format.printf "core form: %d selection class(es) over %d automaton states@."
    (List.length core.Core_spanner.selections)
    (Evset.size core.Core_spanner.automaton);

  (* And the other direction (β/β′-style): a core spanner with one
     non-overlapping selection becomes a refl-spanner.  The two content
     languages differ, so the representative is rebound to their
     intersection. *)
  let f = Regex_formula.parse "!u{a[ab]*};!w{[ab]*b};[ab;]*" in
  let refl =
    Refl_spanner.of_core_formula ~formula:f
      ~selections:[ Variable.set_of_list [ Variable.of_string "u"; Variable.of_string "w" ] ]
  in
  let doc2 = "ab;ab;ba;" in
  Format.printf "core→refl on %S:@.%a@." doc2
    (Span_relation.pp ~doc:doc2)
    (Refl_spanner.eval refl doc2)
