(* Context-free spanners ([31], §2.1): extraction beyond regular.

   Task: extract every parenthesised block from a configuration-like
   document — including nested ones.  Balanced brackets are the
   textbook non-regular language, so no regular spanner can do this;
   the context-free spanner framework of [31] (the "replace regular by
   context-free" instantiation of §2.1's declarative view) handles it
   directly.

   Run with:  dune exec examples/code_blocks.exe *)

open Spanner_core
open Spanner_cfg
module Charset = Spanner_fa.Charset

let () =
  let doc = "let f = (g (h x) (k y)) in (f z)" in
  let x = Variable.of_string "block" in
  let spanner =
    Cf_spanner.dyck_extractor ~x ~open_c:'(' ~close_c:')'
      ~other:(Charset.diff Charset.full (Charset.of_string "()"))
  in
  Format.printf "document: %s@." doc;
  Format.printf "parenthesised blocks (nested included):@.%a@."
    (Span_relation.pp ~doc)
    (Cf_spanner.eval spanner doc);

  (* decision problems work for context-free spanners too *)
  Format.printf "satisfiable: %b@." (Cf_spanner.satisfiable spanner);
  let tuple = Span_tuple.of_list [ (x, Span.make 9 24) ] in
  Format.printf "block [9,24⟩ %S member: %b@."
    (Span.content (Span.make 9 24) doc)
    (Cf_spanner.accepts_tuple spanner doc tuple);

  (* even-length palindromes: a second beyond-regular spanner *)
  let pal = Cf_spanner.palindrome_extractor ~x:(Variable.of_string "pal") in
  let doc2 = "abbaab" in
  Format.printf "@.even palindromes of %s:@.%a@." doc2
    (Span_relation.pp ~doc:doc2)
    (Cf_spanner.eval pal doc2)
