(** Deterministic finite automata over the byte alphabet.

    Built from {!Nfa} by subset construction; supports the complete
    classical toolbox: totalisation, complement, product, Moore
    minimisation, emptiness, membership, containment and equivalence.
    Used by the spanner layer wherever the paper reduces a spanner
    problem to a regular-language problem (Containment and Equivalence
    of regular spanners, §2.4; content-language intersection in the
    core→refl translation, §3.2). *)

type t

type state = int

(** [of_nfa n] is the subset construction.  Only reachable subsets are
    materialised; the result is total (a sink is added if needed). *)
val of_nfa : Nfa.t -> t

(** [of_regex r] is [of_nfa (Nfa.of_regex r)]. *)
val of_regex : Regex.t -> t

(** [size d] is the number of states. *)
val size : t -> int

(** [initial d] is the initial state. *)
val initial : t -> state

(** [is_final d q] tests acceptance. *)
val is_final : t -> state -> bool

(** [step d q c] is the unique successor of [q] on [c]. *)
val step : t -> state -> char -> state

(** [accepts d w] tests membership in O(|w|). *)
val accepts : t -> string -> bool

(** [complement d] accepts the complement language. *)
val complement : t -> t

(** [inter a b], [diff a b] are product constructions for ∩ and \. *)
val inter : t -> t -> t

val diff : t -> t -> t

(** [is_empty_lang d] tests emptiness. *)
val is_empty_lang : t -> bool

(** [minimize d] is the canonical minimal DFA (Moore partition
    refinement over the trimmed, total automaton). *)
val minimize : t -> t

(** [contains a b] tests L(b) ⊆ L(a). *)
val contains : t -> t -> bool

(** [equal_lang a b] tests L(a) = L(b). *)
val equal_lang : t -> t -> bool

(** [to_nfa d] forgets determinism. *)
val to_nfa : t -> Nfa.t

(** [shortest_word d] is a shortest accepted word, if any. *)
val shortest_word : t -> string option
