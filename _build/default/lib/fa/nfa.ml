module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec

type state = int

type t = {
  n : int;
  initial : state;
  final_set : Bitset.t;
  trans : (Charset.t * state) list array;
  eps : state list array;
}

module Builder = struct
  type t = {
    mutable count : int;
    btrans : (Charset.t * state) list Vec.t;
    beps : state list Vec.t;
  }

  let create () = { count = 0; btrans = Vec.create (); beps = Vec.create () }

  let add_state b =
    ignore (Vec.push b.btrans []);
    ignore (Vec.push b.beps []);
    let q = b.count in
    b.count <- b.count + 1;
    q

  let add_eps b src dst = Vec.set b.beps src (dst :: Vec.get b.beps src)

  let add_chars b src cs dst =
    if not (Charset.is_empty cs) then Vec.set b.btrans src ((cs, dst) :: Vec.get b.btrans src)

  let add_char b src c dst = add_chars b src (Charset.singleton c) dst

  let finish b ~initial ~finals =
    let final_set = Bitset.create (max b.count 1) in
    List.iter (Bitset.add final_set) finals;
    {
      n = b.count;
      initial;
      final_set;
      trans = Vec.to_array b.btrans;
      eps = Vec.to_array b.beps;
    }
end

let size a = a.n

let initial a = a.initial

let finals a = Bitset.elements a.final_set

let is_final a q = Bitset.mem a.final_set q

let iter_transitions a q f = List.iter (fun (cs, dst) -> f cs dst) a.trans.(q)

let iter_eps a q f = List.iter f a.eps.(q)

(* ------------------------------------------------------------------ *)
(* Thompson construction                                               *)

let of_regex r =
  let b = Builder.create () in
  (* Each fragment has one entry and one exit state. *)
  let rec build r =
    let entry = Builder.add_state b and exit_ = Builder.add_state b in
    (match r with
    | Regex.Empty -> ()
    | Regex.Epsilon -> Builder.add_eps b entry exit_
    | Regex.Chars cs -> Builder.add_chars b entry cs exit_
    | Regex.Concat (x, y) ->
        let ex, xx = build x and ey, xy = build y in
        Builder.add_eps b entry ex;
        Builder.add_eps b xx ey;
        Builder.add_eps b xy exit_
    | Regex.Alt (x, y) ->
        let ex, xx = build x and ey, xy = build y in
        Builder.add_eps b entry ex;
        Builder.add_eps b entry ey;
        Builder.add_eps b xx exit_;
        Builder.add_eps b xy exit_
    | Regex.Star x ->
        let ex, xx = build x in
        Builder.add_eps b entry exit_;
        Builder.add_eps b entry ex;
        Builder.add_eps b xx ex;
        Builder.add_eps b xx exit_
    | Regex.Plus x ->
        let ex, xx = build x in
        Builder.add_eps b entry ex;
        Builder.add_eps b xx ex;
        Builder.add_eps b xx exit_
    | Regex.Opt x ->
        let ex, xx = build x in
        Builder.add_eps b entry exit_;
        Builder.add_eps b entry ex;
        Builder.add_eps b xx exit_);
    (entry, exit_)
  in
  let entry, exit_ = build r in
  Builder.finish b ~initial:entry ~finals:[ exit_ ]

(* ------------------------------------------------------------------ *)
(* Language operations                                                 *)

(* [embed b a offset] copies all states and transitions of [a] into
   builder [b]; states of [a] map to [state + offset]. *)
let embed b a =
  let offset = Vec.length b.Builder.btrans in
  for _ = 1 to a.n do
    ignore (Builder.add_state b)
  done;
  for q = 0 to a.n - 1 do
    List.iter (fun (cs, dst) -> Builder.add_chars b (q + offset) cs (dst + offset)) a.trans.(q);
    List.iter (fun dst -> Builder.add_eps b (q + offset) (dst + offset)) a.eps.(q)
  done;
  offset

let union a c =
  let b = Builder.create () in
  let start = Builder.add_state b in
  let oa = embed b a and oc = embed b c in
  Builder.add_eps b start (a.initial + oa);
  Builder.add_eps b start (c.initial + oc);
  let finals =
    List.map (fun q -> q + oa) (finals a) @ List.map (fun q -> q + oc) (finals c)
  in
  Builder.finish b ~initial:start ~finals

let concat a c =
  let b = Builder.create () in
  let oa = embed b a and oc = embed b c in
  List.iter (fun q -> Builder.add_eps b (q + oa) (c.initial + oc)) (finals a);
  Builder.finish b ~initial:(a.initial + oa) ~finals:(List.map (fun q -> q + oc) (finals c))

let star a =
  let b = Builder.create () in
  let start = Builder.add_state b in
  let oa = embed b a in
  Builder.add_eps b start (a.initial + oa);
  List.iter (fun q -> Builder.add_eps b (q + oa) start) (finals a);
  Builder.finish b ~initial:start ~finals:[ start ]

let inter a c =
  let b = Builder.create () in
  let index = Hashtbl.create 64 in
  let pending = Queue.create () in
  let state_of (qa, qc) =
    match Hashtbl.find_opt index (qa, qc) with
    | Some q -> q
    | None ->
        let q = Builder.add_state b in
        Hashtbl.add index (qa, qc) q;
        Queue.add (qa, qc, q) pending;
        q
  in
  let start = state_of (a.initial, c.initial) in
  let finals = ref [] in
  while not (Queue.is_empty pending) do
    let qa, qc, q = Queue.take pending in
    if is_final a qa && is_final c qc then finals := q :: !finals;
    List.iter (fun dst -> Builder.add_eps b q (state_of (dst, qc))) a.eps.(qa);
    List.iter (fun dst -> Builder.add_eps b q (state_of (qa, dst))) c.eps.(qc);
    List.iter
      (fun (cs1, d1) ->
        List.iter
          (fun (cs2, d2) ->
            let cs = Charset.inter cs1 cs2 in
            if not (Charset.is_empty cs) then Builder.add_chars b q cs (state_of (d1, d2)))
          c.trans.(qc))
      a.trans.(qa)
  done;
  Builder.finish b ~initial:start ~finals:!finals

(* ------------------------------------------------------------------ *)
(* Decision procedures                                                 *)

let eps_closure a set =
  let stack = ref (Bitset.elements set) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun dst ->
            if not (Bitset.mem set dst) then begin
              Bitset.add set dst;
              stack := dst :: !stack
            end)
          a.eps.(q);
        loop ()
  in
  loop ();
  set

let accepts a w =
  let current = ref (eps_closure a (Bitset.of_list a.n [ a.initial ])) in
  String.iter
    (fun c ->
      let next = Bitset.create a.n in
      Bitset.iter
        (fun q ->
          List.iter (fun (cs, dst) -> if Charset.mem cs c then Bitset.add next dst) a.trans.(q))
        !current;
      current := eps_closure a next)
    w;
  Bitset.fold (fun q acc -> acc || is_final a q) !current false

let reachable_from_initial a =
  let seen = Bitset.of_list (max a.n 1) [ a.initial ] in
  let stack = ref [ a.initial ] in
  let visit dst =
    if not (Bitset.mem seen dst) then begin
      Bitset.add seen dst;
      stack := dst :: !stack
    end
  in
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter (fun (_, dst) -> visit dst) a.trans.(q);
        List.iter visit a.eps.(q);
        loop ()
  in
  loop ();
  seen

let coreachable_to_final a =
  (* Reverse reachability from final states. *)
  let preds = Array.make (max a.n 1) [] in
  for q = 0 to a.n - 1 do
    List.iter (fun (_, dst) -> preds.(dst) <- q :: preds.(dst)) a.trans.(q);
    List.iter (fun dst -> preds.(dst) <- q :: preds.(dst)) a.eps.(q)
  done;
  let seen = Bitset.create (max a.n 1) in
  let stack = ref [] in
  Bitset.iter
    (fun q ->
      Bitset.add seen q;
      stack := q :: !stack)
    a.final_set;
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not (Bitset.mem seen p) then begin
              Bitset.add seen p;
              stack := p :: !stack
            end)
          preds.(q);
        loop ()
  in
  loop ();
  seen

let is_empty_lang a =
  let reach = reachable_from_initial a in
  not (Bitset.fold (fun q acc -> acc || is_final a q) reach false)

let shortest_word a =
  (* 0-1 BFS: ε-edges cost 0, labelled edges cost 1.  [how.(q)] records
     the breadcrumb used to reach [q] for word reconstruction. *)
  let dist = Array.make (max a.n 1) max_int in
  let how = Array.make (max a.n 1) None in
  let front = ref [ a.initial ] and back = ref [] in
  dist.(a.initial) <- 0;
  let result = ref None in
  let take () =
    match !front with
    | q :: rest ->
        front := rest;
        Some q
    | [] -> (
        match List.rev !back with
        | [] -> None
        | q :: rest ->
            front := rest;
            back := [];
            Some q)
  in
  let rec loop () =
    match take () with
    | None -> ()
    | Some q ->
        if is_final a q && !result = None then begin
          let buf = Buffer.create 8 in
          let rec walk q =
            match how.(q) with
            | None -> ()
            | Some (p, c) ->
                walk p;
                (match c with Some c -> Buffer.add_char buf c | None -> ())
          in
          walk q;
          result := Some (Buffer.contents buf)
        end;
        if !result = None then begin
          List.iter
            (fun dst ->
              if dist.(q) < dist.(dst) then begin
                dist.(dst) <- dist.(q);
                how.(dst) <- Some (q, None);
                front := dst :: !front
              end)
            a.eps.(q);
          List.iter
            (fun (cs, dst) ->
              if dist.(q) + 1 < dist.(dst) then
                match Charset.choose cs with
                | Some c ->
                    dist.(dst) <- dist.(q) + 1;
                    how.(dst) <- Some (q, Some c);
                    back := dst :: !back
                | None -> ())
            a.trans.(q);
          loop ()
        end
  in
  loop ();
  !result

let trim a =
  let useful = Bitset.inter (reachable_from_initial a) (coreachable_to_final a) in
  if not (Bitset.mem useful a.initial) then begin
    let b = Builder.create () in
    let q = Builder.add_state b in
    Builder.finish b ~initial:q ~finals:[]
  end
  else begin
    let b = Builder.create () in
    let remap = Array.make a.n (-1) in
    Bitset.iter (fun q -> remap.(q) <- Builder.add_state b) useful;
    Bitset.iter
      (fun q ->
        List.iter
          (fun (cs, dst) -> if remap.(dst) >= 0 then Builder.add_chars b remap.(q) cs remap.(dst))
          a.trans.(q);
        List.iter
          (fun dst -> if remap.(dst) >= 0 then Builder.add_eps b remap.(q) remap.(dst))
          a.eps.(q))
      useful;
    let finals =
      Bitset.fold (fun q acc -> if is_final a q then remap.(q) :: acc else acc) useful []
    in
    Builder.finish b ~initial:remap.(a.initial) ~finals
  end

(* Containment L(c) ⊆ L(a) by simulating c against the determinized
   subsets of a, on the fly.  A violation is a reachable pair (qc, S)
   with qc accepting in c and S containing no accepting state of a. *)
let contains a c =
  let key set = Bitset.hash set in
  let module Tbl = Hashtbl in
  let seen : (int, (int * Bitset.t) list) Tbl.t = Tbl.create 64 in
  let visited (qc, set) =
    let k = key set lxor (qc * 0x9e3779b9) in
    let bucket = Option.value ~default:[] (Tbl.find_opt seen k) in
    if List.exists (fun (q, s) -> q = qc && Bitset.equal s set) bucket then true
    else begin
      Tbl.replace seen k ((qc, set) :: bucket);
      false
    end
  in
  let has_final set = Bitset.fold (fun q acc -> acc || is_final a q) set false in
  let start = eps_closure a (Bitset.of_list a.n [ a.initial ]) in
  let start_c = Bitset.of_list c.n [ c.initial ] in
  let _ = eps_closure c start_c in
  let ok = ref true in
  let pending = Queue.create () in
  Bitset.iter (fun qc -> if not (visited (qc, start)) then Queue.add (qc, start) pending) start_c;
  while !ok && not (Queue.is_empty pending) do
    let qc, set = Queue.take pending in
    if is_final c qc && not (has_final set) then ok := false
    else
      List.iter
        (fun (cs, dst) ->
          (* Different characters of [cs] may drive [a] to different
             subsets, so step per character. *)
          Charset.iter
            (fun ch ->
              let next = Bitset.create a.n in
              Bitset.iter
                (fun q ->
                  List.iter
                    (fun (cs', d') -> if Charset.mem cs' ch then Bitset.add next d')
                    a.trans.(q))
                set;
              let next = eps_closure a next in
              let dst_closure = Bitset.of_list c.n [ dst ] in
              let _ = eps_closure c dst_closure in
              Bitset.iter
                (fun qc' -> if not (visited (qc', next)) then Queue.add (qc', next) pending)
                dst_closure)
            cs)
        c.trans.(qc)
  done;
  !ok

let equal_lang a b = contains a b && contains b a
