module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec

type state = int

(* [trans] is a flat [size * 256] table: the successor of state [q] on
   character [c] is [trans.(q * 256 + Char.code c)].  DFAs here are
   always total, so every entry is a valid state. *)
type t = { size : int; initial : state; finals : Bitset.t; trans : int array }

let size d = d.size

let initial d = d.initial

let is_final d q = Bitset.mem d.finals q

let step d q c = d.trans.((q * 256) + Char.code c)

let accepts d w =
  let q = ref d.initial in
  String.iter (fun c -> q := step d !q c) w;
  is_final d !q

let of_nfa nfa =
  let n = Nfa.size nfa in
  let closure set = Nfa.eps_closure nfa set in
  let start = closure (Bitset.of_list (max n 1) [ Nfa.initial nfa ]) in
  let index = Hashtbl.create 64 in
  let subsets = Vec.create () in
  let pending = Queue.create () in
  let state_of set =
    let k = Bitset.hash set in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt index k) in
    match List.find_opt (fun (s, _) -> Bitset.equal s set) bucket with
    | Some (_, q) -> q
    | None ->
        let q = Vec.push subsets set in
        Hashtbl.replace index k ((set, q) :: bucket);
        Queue.add q pending;
        q
  in
  let q0 = state_of start in
  let rows = Vec.create () in
  while not (Queue.is_empty pending) do
    let q = Queue.take pending in
    let set = Vec.get subsets q in
    (* For each character, the successor subset. Group characters by
       iterating the 256 bytes once; per byte we scan the outgoing
       transitions of the member states. *)
    let row = Array.make 256 (-1) in
    for code = 0 to 255 do
      let c = Char.chr code in
      let next = Bitset.create (max n 1) in
      let nonempty = ref false in
      Bitset.iter
        (fun s ->
          Nfa.iter_transitions nfa s (fun cs dst ->
              if Charset.mem cs c then begin
                Bitset.add next dst;
                nonempty := true
              end))
        set;
      if !nonempty then row.(code) <- state_of (closure next)
    done;
    (* Vec.push appends at index [q] because subsets are processed in
       allocation order... not guaranteed once the queue interleaves, so
       store rows keyed by state. *)
    while Vec.length rows <= q do
      ignore (Vec.push rows [||])
    done;
    Vec.set rows q row
  done;
  let count = Vec.length subsets in
  (* Totalise: route missing transitions to a sink. *)
  let needs_sink =
    let found = ref false in
    Vec.iter (fun row -> if Array.exists (fun x -> x < 0) row then found := true) rows;
    !found
  in
  let total = if needs_sink then count + 1 else count in
  let sink = count in
  let trans = Array.make (total * 256) sink in
  Vec.iteri
    (fun q row ->
      Array.iteri (fun code dst -> trans.((q * 256) + code) <- (if dst < 0 then sink else dst)) row)
    rows;
  if needs_sink then
    for code = 0 to 255 do
      trans.((sink * 256) + code) <- sink
    done;
  let finals = Bitset.create total in
  Vec.iteri
    (fun q set ->
      if Bitset.fold (fun s acc -> acc || Nfa.is_final nfa s) set false then Bitset.add finals q)
    subsets;
  { size = total; initial = q0; finals; trans }

let of_regex r = of_nfa (Nfa.of_regex r)

let complement d =
  let finals = Bitset.create d.size in
  for q = 0 to d.size - 1 do
    if not (Bitset.mem d.finals q) then Bitset.add finals q
  done;
  { d with finals }

let product keep a b =
  let index = Hashtbl.create 64 in
  let pending = Queue.create () in
  let pairs = Vec.create () in
  let state_of p =
    match Hashtbl.find_opt index p with
    | Some q -> q
    | None ->
        let q = Vec.push pairs p in
        Hashtbl.add index p q;
        Queue.add (p, q) pending;
        q
  in
  let q0 = state_of (a.initial, b.initial) in
  let rows = Vec.create () in
  while not (Queue.is_empty pending) do
    let (qa, qb), q = Queue.take pending in
    let row = Array.init 256 (fun code ->
        state_of (a.trans.((qa * 256) + code), b.trans.((qb * 256) + code)))
    in
    while Vec.length rows <= q do
      ignore (Vec.push rows [||])
    done;
    Vec.set rows q row
  done;
  let count = Vec.length pairs in
  let trans = Array.make (count * 256) 0 in
  Vec.iteri (fun q row -> Array.iteri (fun code dst -> trans.((q * 256) + code) <- dst) row) rows;
  let finals = Bitset.create count in
  Vec.iteri
    (fun q (qa, qb) ->
      if keep (Bitset.mem a.finals qa) (Bitset.mem b.finals qb) then Bitset.add finals q)
    pairs;
  { size = count; initial = q0; finals; trans }

let inter a b = product ( && ) a b

let diff a b = product (fun x y -> x && not y) a b

let is_empty_lang d = Bitset.is_empty d.finals

let shortest_word d =
  let dist = Array.make d.size (-1) in
  let parent = Array.make d.size None in
  let q = Queue.create () in
  dist.(d.initial) <- 0;
  Queue.add d.initial q;
  let goal = ref None in
  while !goal = None && not (Queue.is_empty q) do
    let s = Queue.take q in
    if is_final d s then goal := Some s
    else
      for code = 0 to 255 do
        let t = d.trans.((s * 256) + code) in
        if dist.(t) < 0 then begin
          dist.(t) <- dist.(s) + 1;
          parent.(t) <- Some (s, Char.chr code);
          Queue.add t q
        end
      done
  done;
  match !goal with
  | None -> None
  | Some s ->
      let buf = Buffer.create 8 in
      let rec walk s =
        match parent.(s) with
        | None -> ()
        | Some (p, c) ->
            walk p;
            Buffer.add_char buf c
      in
      walk s;
      Some (Buffer.contents buf)

let minimize d =
  (* Moore partition refinement.  Start from {finals, nonfinals} and
     split classes until the transition profile is constant per class. *)
  let cls = Array.make d.size 0 in
  for q = 0 to d.size - 1 do
    cls.(q) <- (if Bitset.mem d.finals q then 1 else 0)
  done;
  let changed = ref true in
  let ncls = ref 2 in
  while !changed do
    changed := false;
    let profile = Hashtbl.create d.size in
    let next_cls = Array.make d.size 0 in
    let fresh = ref 0 in
    for q = 0 to d.size - 1 do
      let key =
        (cls.(q), Array.init 256 (fun code -> cls.(d.trans.((q * 256) + code))))
      in
      match Hashtbl.find_opt profile key with
      | Some c -> next_cls.(q) <- c
      | None ->
          Hashtbl.add profile key !fresh;
          next_cls.(q) <- !fresh;
          incr fresh
    done;
    if !fresh <> !ncls then changed := true;
    ncls := !fresh;
    Array.blit next_cls 0 cls 0 d.size
  done;
  let count = !ncls in
  let trans = Array.make (count * 256) 0 in
  let finals = Bitset.create count in
  for q = 0 to d.size - 1 do
    let c = cls.(q) in
    for code = 0 to 255 do
      trans.((c * 256) + code) <- cls.(d.trans.((q * 256) + code))
    done;
    if Bitset.mem d.finals q then Bitset.add finals c
  done;
  { size = count; initial = cls.(d.initial); finals; trans }

let contains a b = is_empty_lang (diff b a)

let equal_lang a b = contains a b && contains b a

let to_nfa d =
  let b = Nfa.Builder.create () in
  for _ = 1 to d.size do
    ignore (Nfa.Builder.add_state b)
  done;
  for q = 0 to d.size - 1 do
    (* Group consecutive characters with the same successor into one
       charset edge. *)
    let by_dst = Hashtbl.create 8 in
    for code = 0 to 255 do
      let dst = d.trans.((q * 256) + code) in
      let cs = Option.value ~default:Charset.empty (Hashtbl.find_opt by_dst dst) in
      Hashtbl.replace by_dst dst (Charset.add cs (Char.chr code))
    done;
    Hashtbl.iter (fun dst cs -> Nfa.Builder.add_chars b q cs dst) by_dst
  done;
  Nfa.Builder.finish b ~initial:d.initial ~finals:(Bitset.elements d.finals)
