lib/fa/dfa.mli: Nfa Regex
