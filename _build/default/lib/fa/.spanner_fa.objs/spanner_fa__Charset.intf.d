lib/fa/charset.mli: Format
