lib/fa/to_regex.mli: Dfa Nfa Regex
