lib/fa/to_regex.ml: Array Dfa List Nfa Regex
