lib/fa/regex.mli: Charset Format
