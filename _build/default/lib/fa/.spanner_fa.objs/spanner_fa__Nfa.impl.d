lib/fa/nfa.ml: Array Buffer Charset Hashtbl List Option Queue Regex Spanner_util String
