lib/fa/regex.ml: Buffer Char Charset Format List Printf String
