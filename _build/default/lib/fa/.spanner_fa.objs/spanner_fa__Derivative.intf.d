lib/fa/derivative.mli: Regex
