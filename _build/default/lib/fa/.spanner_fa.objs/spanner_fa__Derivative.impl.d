lib/fa/derivative.ml: Charset Regex String
