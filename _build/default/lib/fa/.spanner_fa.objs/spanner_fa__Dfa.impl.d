lib/fa/dfa.ml: Array Buffer Char Charset Hashtbl List Nfa Option Queue Spanner_util String
