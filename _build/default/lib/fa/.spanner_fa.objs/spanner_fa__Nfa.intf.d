lib/fa/nfa.mli: Charset Regex Spanner_util
