lib/fa/charset.ml: Array Buffer Char Format List String
