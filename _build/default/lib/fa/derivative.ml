let rec derive r c =
  match r with
  | Regex.Empty | Regex.Epsilon -> Regex.empty
  | Regex.Chars cs -> if Charset.mem cs c then Regex.epsilon else Regex.empty
  | Regex.Concat (a, b) ->
      let left = Regex.concat (derive a c) b in
      if Regex.nullable a then Regex.alt left (derive b c) else left
  | Regex.Alt (a, b) -> Regex.alt (derive a c) (derive b c)
  | Regex.Star a -> Regex.concat (derive a c) (Regex.star a)
  | Regex.Plus a -> Regex.concat (derive a c) (Regex.star a)
  | Regex.Opt a -> derive a c

let matches r w =
  let final = String.fold_left derive r w in
  Regex.nullable final
