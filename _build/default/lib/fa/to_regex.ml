(* Classical state elimination over a generalised NFA whose arcs are
   labelled by regular expressions. *)

let of_nfa nfa =
  let nfa = Nfa.trim nfa in
  let n = Nfa.size nfa in
  (* Generalised automaton: states 0..n+1 where n = fresh initial and
     n+1 = fresh final; arcs.(i).(j) is the regex from i to j. *)
  let total = n + 2 in
  let start = n and stop = n + 1 in
  let arcs = Array.make_matrix total total Regex.empty in
  let add i j r = arcs.(i).(j) <- Regex.alt arcs.(i).(j) r in
  for q = 0 to n - 1 do
    Nfa.iter_transitions nfa q (fun cs dst -> add q dst (Regex.chars cs));
    Nfa.iter_eps nfa q (fun dst -> add q dst Regex.epsilon)
  done;
  add start (Nfa.initial nfa) Regex.epsilon;
  List.iter (fun q -> add q stop Regex.epsilon) (Nfa.finals nfa);
  (* Eliminate the original states one by one: for every pair (i, j)
     passing through q, route around it with  in · loop* · out. *)
  for q = 0 to n - 1 do
    let loop = Regex.star arcs.(q).(q) in
    for i = 0 to total - 1 do
      if i <> q && not (Regex.is_empty_lang arcs.(i).(q)) then
        for j = 0 to total - 1 do
          if j <> q && not (Regex.is_empty_lang arcs.(q).(j)) then
            add i j (Regex.concat arcs.(i).(q) (Regex.concat loop arcs.(q).(j)))
        done
    done;
    (* Disconnect q. *)
    for i = 0 to total - 1 do
      arcs.(i).(q) <- Regex.empty;
      arcs.(q).(i) <- Regex.empty
    done
  done;
  arcs.(start).(stop)

let of_dfa d = of_nfa (Dfa.to_nfa d)

let intersection_regex = function
  | [] -> invalid_arg "To_regex.intersection_regex: empty list"
  | r :: rest ->
      let nfa =
        List.fold_left (fun acc r' -> Nfa.inter acc (Nfa.of_regex r')) (Nfa.of_regex r) rest
      in
      (* Minimise through the DFA to keep the eliminated expression
         small. *)
      of_dfa (Dfa.minimize (Dfa.of_nfa nfa))
