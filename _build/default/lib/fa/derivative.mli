(** Brzozowski derivatives of regular expressions.

    An automaton-free matcher: the derivative of [r] w.r.t. [c] denotes
    { w : cw ∈ L(r) }, so [w ∈ L(r)] iff the derivative of [r] by all
    of [w]'s characters in turn is nullable.  Used as an independent
    implementation to cross-check the Thompson/NFA pipeline in the test
    suite (two matchers built on different theories agreeing on random
    inputs is strong evidence both are right). *)

(** [derive r c] is the Brzozowski derivative ∂_c(r). *)
val derive : Regex.t -> char -> Regex.t

(** [matches r w] tests w ∈ L(r) by iterated derivation, O(|w| · |r|')
    where |r|' is the derivative size (kept small by the smart
    constructors). *)
val matches : Regex.t -> string -> bool
