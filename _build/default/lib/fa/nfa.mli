(** Nondeterministic finite automata with ε-transitions over the byte
    alphabet.

    States are dense integers.  Construction is by mutation through
    {!Builder}; a finished automaton is immutable.  All the classical
    closure properties the paper relies on (§2.1, §2.4) are provided:
    union, concatenation, star, intersection (product), and the
    decision procedures membership, emptiness, containment and
    equivalence (the latter two via {!Dfa}). *)

type t

type state = int

(** {1 Construction} *)

module Builder : sig
  type nfa := t
  type t

  (** [create ()] is an empty builder with no states. *)
  val create : unit -> t

  (** [add_state b] allocates a fresh state. *)
  val add_state : t -> state

  (** [add_eps b src dst] adds an ε-transition. *)
  val add_eps : t -> state -> state -> unit

  (** [add_chars b src cs dst] adds a transition reading any character
      of [cs]. *)
  val add_chars : t -> state -> Charset.t -> state -> unit

  (** [add_char b src c dst] is [add_chars] with a singleton. *)
  val add_char : t -> state -> char -> state -> unit

  (** [finish b ~initial ~finals] freezes the builder. *)
  val finish : t -> initial:state -> finals:state list -> nfa
end

(** [of_regex r] is the Thompson construction for [r]. *)
val of_regex : Regex.t -> t

(** {1 Accessors} *)

(** [size n] is the number of states. *)
val size : t -> int

(** [initial n] is the initial state. *)
val initial : t -> state

(** [finals n] is the accepting states. *)
val finals : t -> state list

(** [is_final n q] tests acceptance of state [q]. *)
val is_final : t -> state -> bool

(** [iter_transitions n q f] applies [f cs dst] to each labelled
    transition out of [q] ([cs] never empty), and [f] is not called on
    ε-transitions. *)
val iter_transitions : t -> state -> (Charset.t -> state -> unit) -> unit

(** [iter_eps n q f] applies [f dst] to each ε-transition out of [q]. *)
val iter_eps : t -> state -> (state -> unit) -> unit

(** {1 Language operations} *)

(** [union a b] accepts L(a) ∪ L(b). *)
val union : t -> t -> t

(** [concat a b] accepts L(a)·L(b). *)
val concat : t -> t -> t

(** [star a] accepts L(a){^ *}. *)
val star : t -> t

(** [inter a b] accepts L(a) ∩ L(b) (product construction; the
    operation §2.1 of the paper singles out as the one a language class
    must be closed under to serve as a spanner representation). *)
val inter : t -> t -> t

(** {1 Decision procedures} *)

(** [eps_closure n set] saturates a state set under ε-transitions,
    in place; the argument is returned for convenience. *)
val eps_closure : t -> Spanner_util.Bitset.t -> Spanner_util.Bitset.t

(** [accepts n w] tests [w ∈ L(n)] by on-the-fly subset simulation,
    O(|w|·|n|). *)
val accepts : t -> string -> bool

(** [is_empty_lang n] tests L(n) = ∅ (reachability). *)
val is_empty_lang : t -> bool

(** [shortest_word n] is a shortest member of L(n), or [None] if the
    language is empty (breadth-first search). *)
val shortest_word : t -> string option

(** [reachable_from_initial n] is the set of reachable states. *)
val reachable_from_initial : t -> Spanner_util.Bitset.t

(** [coreachable_to_final n] is the set of states from which some final
    state is reachable. *)
val coreachable_to_final : t -> Spanner_util.Bitset.t

(** [trim n] restricts [n] to useful (reachable and co-reachable)
    states.  The result accepts the same language; if the language is
    empty the result has a single non-accepting state. *)
val trim : t -> t

(** [contains a b] tests L(b) ⊆ L(a), via determinization. *)
val contains : t -> t -> bool

(** [equal_lang a b] tests L(a) = L(b), via determinization. *)
val equal_lang : t -> t -> bool
