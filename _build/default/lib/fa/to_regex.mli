(** Conversion from automata back to regular expressions, by state
    elimination.

    Needed by the core→refl translation of §3.2: when a string-equality
    class {x, y} has different content languages for x and y (the β
    example of the paper), the refl encoding binds the first variable
    to the *intersection* of the content languages — which is computed
    on automata and must be rendered back as a regular (sub)expression
    of the produced refl regex. *)

(** [of_nfa n] is a regular expression with L(of_nfa n) = L(n). *)
val of_nfa : Nfa.t -> Regex.t

(** [of_dfa d] is [of_nfa (Dfa.to_nfa d)]. *)
val of_dfa : Dfa.t -> Regex.t

(** [intersection_regex rs] is a regular expression for ⋂ L(r_i)
    (empty intersection of zero expressions is rejected).
    @raise Invalid_argument on an empty list. *)
val intersection_regex : Regex.t list -> Regex.t
