(** Context-free document spanners ([31], pointed to in §2.1).

    The spanner denoted by a context-free language L of subword-marked
    words is ⟦L⟧(D) = { st(w) : w ∈ L, e(w) = D } — exactly the
    declarative semantics of §2.1 with "regular" replaced by
    "context-free".  Such spanners strictly extend regular ones: they
    can extract, e.g., balanced-bracket regions (see
    {!val:dyck_extractor}).

    Evaluation is a CYK-style chart computation over document
    *boundaries* in which marker terminals derive zero width:
    recognition is O(|D|³·|G|); {!eval} additionally carries, per chart
    cell, the set of marker-placement fragments (worst-case
    exponential, as expected — [31]'s refined enumeration algorithms
    are out of scope; this module is the faithful semantics plus
    polynomial decision procedures). *)

open Spanner_core

type t

(** [of_cfg g] compiles (binarizes) a grammar. *)
val of_cfg : Cfg.t -> t

(** [of_formula f] embeds a regex formula — used by tests to check the
    context-free evaluator against the regular one. *)
val of_formula : Regex_formula.t -> t

val vars : t -> Variable.Set.t

(** [eval s doc] is the full span relation ⟦s⟧(doc). *)
val eval : t -> string -> Span_relation.t

(** [nonempty_on s doc] decides ⟦s⟧(doc) ≠ ∅ in time O(|doc|³·|G|)
    (recognition only — no fragment sets). *)
val nonempty_on : t -> string -> bool

(** [accepts_tuple s doc t] decides t ∈ ⟦s⟧(doc) — ModelChecking — by
    CYK over the subword-marked word assembled from [(doc, t)], in time
    O((|doc| + 2k)³·|G|). *)
val accepts_tuple : t -> string -> Span_tuple.t -> bool

(** [satisfiable s] decides ∃D. ⟦s⟧(D) ≠ ∅ — context-free emptiness
    via the standard productive-nonterminal fixpoint. *)
val satisfiable : t -> bool

(** {1 Showcase grammars} *)

(** [dyck_extractor ~x ~open_c ~close_c ~other] is the canonical
    beyond-regular spanner: it binds [x] to every *parenthesised
    group* of the document — a factor starting with [open_c], ending
    with the matching [close_c], balanced in between, with characters
    from [other] allowed inside and arbitrary context around. *)
val dyck_extractor :
  x:Variable.t -> open_c:char -> close_c:char -> other:Spanner_fa.Charset.t -> t

(** [palindrome_extractor ~x] binds [x] to every *even-length
    palindrome* factor over {a, b} — a second beyond-regular showcase
    (and a contrast to §2.4: palindromes u·uᴿ are context-free, while
    the copies u·u of the string-equality selection are not). *)
val palindrome_extractor : x:Variable.t -> t
