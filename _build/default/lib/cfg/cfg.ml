open Spanner_core
module Charset = Spanner_fa.Charset
module Vec = Spanner_util.Vec

type nt = int

type symbol = Term of Charset.t | Mark of Marker.t | Nt of nt

type rule = { lhs : nt; rhs : symbol list }

type t = { start : nt; rules : rule list; names : string array }

module Builder = struct
  type b = { names : string Vec.t; mutable brules : rule list }

  type t = b

  let create () = { names = Vec.create (); brules = [] }

  let fresh b name = Vec.push b.names name

  let add_rule b lhs rhs = b.brules <- { lhs; rhs } :: b.brules

  let finish b ~start =
    let count = Vec.length b.names in
    let check_nt x =
      if x < 0 || x >= count then
        invalid_arg (Printf.sprintf "Cfg.Builder.finish: unknown nonterminal %d" x)
    in
    check_nt start;
    List.iter
      (fun { lhs; rhs } ->
        check_nt lhs;
        List.iter (function Nt x -> check_nt x | Term _ | Mark _ -> ()) rhs)
      b.brules;
    { start; rules = List.rev b.brules; names = Vec.to_array b.names }
end

let start g = g.start

let rules g = g.rules

let nt_count g = Array.length g.names

let nt_name g x = g.names.(x)

let vars g =
  List.fold_left
    (fun acc { rhs; _ } ->
      List.fold_left
        (fun acc symbol ->
          match symbol with
          | Mark m -> Variable.Set.add (Marker.variable m) acc
          | Term _ | Nt _ -> acc)
        acc rhs)
    Variable.Set.empty g.rules

(* ------------------------------------------------------------------ *)
(* Regular embedding                                                   *)

let of_formula formula =
  (match Regex_formula.functionality formula with
  | Regex_formula.Ill_formed reason -> invalid_arg ("Cfg.of_formula: ill-formed formula: " ^ reason)
  | Regex_formula.Total | Regex_formula.Schemaless -> ());
  let b = Builder.create () in
  (* Each sub-formula becomes one nonterminal. *)
  let rec build f =
    let a = Builder.fresh b "f" in
    (match f with
    | Regex_formula.Empty -> ()
    | Regex_formula.Epsilon -> Builder.add_rule b a []
    | Regex_formula.Chars cs -> Builder.add_rule b a [ Term cs ]
    | Regex_formula.Bind (x, inner) ->
        let i = build inner in
        Builder.add_rule b a [ Mark (Marker.Open x); Nt i; Mark (Marker.Close x) ]
    | Regex_formula.Concat (f1, f2) ->
        let n1 = build f1 and n2 = build f2 in
        Builder.add_rule b a [ Nt n1; Nt n2 ]
    | Regex_formula.Alt (f1, f2) ->
        let n1 = build f1 and n2 = build f2 in
        Builder.add_rule b a [ Nt n1 ];
        Builder.add_rule b a [ Nt n2 ]
    | Regex_formula.Star inner ->
        let i = build inner in
        Builder.add_rule b a [];
        Builder.add_rule b a [ Nt i; Nt a ]
    | Regex_formula.Plus inner ->
        let i = build inner in
        Builder.add_rule b a [ Nt i ];
        Builder.add_rule b a [ Nt i; Nt a ]
    | Regex_formula.Opt inner ->
        let i = build inner in
        Builder.add_rule b a [];
        Builder.add_rule b a [ Nt i ]);
    a
  in
  let s = build formula in
  Builder.finish b ~start:s

(* ------------------------------------------------------------------ *)
(* Binarization                                                        *)

type binary = {
  bstart : nt;
  bnt_count : int;
  pairs : (nt * nt * nt) list;
  units : (nt * nt) list;
  terms : (nt * Charset.t) list;
  marks : (nt * Marker.t) list;
  nulls : nt list;
}

let binarize g =
  let counter = ref (nt_count g) in
  let fresh () =
    let x = !counter in
    incr counter;
    x
  in
  let pairs = ref [] and units = ref [] and terms = ref [] and marks = ref [] and nulls = ref [] in
  (* Wrap a symbol as a nonterminal. *)
  let nt_of_symbol = function
    | Nt x -> x
    | Term cs ->
        let x = fresh () in
        terms := (x, cs) :: !terms;
        x
    | Mark m ->
        let x = fresh () in
        marks := (x, m) :: !marks;
        x
  in
  List.iter
    (fun { lhs; rhs } ->
      match rhs with
      | [] -> nulls := lhs :: !nulls
      | [ Nt x ] -> units := (lhs, x) :: !units
      | [ Term cs ] -> terms := (lhs, cs) :: !terms
      | [ Mark m ] -> marks := (lhs, m) :: !marks
      | first :: rest ->
          (* fold the tail into a right-leaning chain *)
          let rec chain lhs symbols =
            match symbols with
            | [ s1; s2 ] -> pairs := (lhs, nt_of_symbol s1, nt_of_symbol s2) :: !pairs
            | s1 :: rest ->
                let cont = fresh () in
                pairs := (lhs, nt_of_symbol s1, cont) :: !pairs;
                chain cont rest
            | [] -> assert false
          in
          chain lhs (first :: rest))
    g.rules;
  {
    bstart = g.start;
    bnt_count = !counter;
    pairs = !pairs;
    units = !units;
    terms = !terms;
    marks = !marks;
    nulls = !nulls;
  }

let pp ppf g =
  let pp_symbol ppf = function
    | Term cs -> Charset.pp ppf cs
    | Mark m -> Marker.pp ppf m
    | Nt x -> Format.fprintf ppf "<%s%d>" g.names.(x) x
  in
  List.iter
    (fun { lhs; rhs } ->
      Format.fprintf ppf "<%s%d> → %a@." g.names.(lhs) lhs
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_symbol)
        rhs)
    g.rules
