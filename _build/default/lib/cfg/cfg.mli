(** Context-free grammars over Σ ∪ markers.

    §2.1 of the paper points out that the declarative view — a spanner
    is a language of subword-marked words — works for *any* language
    class: "one now can replace 'regular' by any established language
    class".  The case of context-free languages is the subject of [31]
    (Peterfreund, "Grammars for Document Spanners", ICDT 2021); this
    module provides the grammar representation, and {!Cf_spanner} the
    spanner semantics.

    Terminals are character classes or marker symbols; marker terminals
    derive zero document width.  Grammars are built through {!Builder}
    and frozen into an immutable {!t}; {!binarize} produces the
    2-normal form the CYK-style algorithms consume. *)

open Spanner_core

type nt = int
(** Nonterminals are dense integers scoped to one grammar. *)

type symbol =
  | Term of Spanner_fa.Charset.t  (** one document character from the class *)
  | Mark of Marker.t  (** a marker meta-symbol (zero width) *)
  | Nt of nt

type rule = { lhs : nt; rhs : symbol list }

type t

module Builder : sig
  type grammar := t

  type t

  val create : unit -> t

  (** [fresh b name] allocates a nonterminal (the name is only used for
      printing). *)
  val fresh : t -> string -> nt

  (** [add_rule b a rhs] adds the production [a → rhs] ([rhs = []] is
      an ε-rule). *)
  val add_rule : t -> nt -> symbol list -> unit

  (** [finish b ~start] freezes the grammar.
      @raise Invalid_argument if a rule references an unknown
      nonterminal. *)
  val finish : t -> start:nt -> grammar
end

val start : t -> nt

val rules : t -> rule list

val nt_count : t -> int

val nt_name : t -> nt -> string

(** [vars g] is the set of variables whose markers occur in rules. *)
val vars : t -> Variable.Set.t

(** [of_formula f] embeds a regex formula: regular spanners are a
    special case of context-free ones.
    @raise Invalid_argument on ill-formed formulas. *)
val of_formula : Regex_formula.t -> t

(** {1 Normal form} *)

(** A binarized grammar: every production is one of
    [A → B C], [A → B], [A → class], [A → marker], [A → ε]. *)
type binary = {
  bstart : nt;
  bnt_count : int;
  pairs : (nt * nt * nt) list;  (** A → B C *)
  units : (nt * nt) list;  (** A → B *)
  terms : (nt * Spanner_fa.Charset.t) list;  (** A → class *)
  marks : (nt * Marker.t) list;  (** A → marker *)
  nulls : nt list;  (** A → ε *)
}

(** [binarize g] converts to the 2-normal form (introducing chain
    nonterminals for long right-hand sides; ε- and unit rules are
    kept and handled by the parser's same-cell fixpoint). *)
val binarize : t -> binary

val pp : Format.formatter -> t -> unit
