lib/cfg/cf_spanner.mli: Cfg Regex_formula Span_relation Span_tuple Spanner_core Spanner_fa Variable
