lib/cfg/cfg.mli: Format Marker Regex_formula Spanner_core Spanner_fa Variable
