lib/cfg/cfg.ml: Array Format List Marker Printf Regex_formula Spanner_core Spanner_fa Spanner_util Variable
