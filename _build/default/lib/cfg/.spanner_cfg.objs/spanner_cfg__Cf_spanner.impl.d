lib/cfg/cf_spanner.ml: Array Bytes Cfg Hashtbl List Marker Option Ref_word Set Span Span_relation Span_tuple Spanner_core Spanner_fa Stdlib String Variable
