open Spanner_core
module Charset = Spanner_fa.Charset

type t = { binary : Cfg.binary; vars : Variable.Set.t }

let of_cfg g = { binary = Cfg.binarize g; vars = Cfg.vars g }

let of_formula f = of_cfg (Cfg.of_formula f)

let vars s = s.vars

(* ------------------------------------------------------------------ *)
(* Recognition chart over document boundaries                          *)

(* Chart cells are indexed by (nonterminal, i, j) with 0 ≤ i ≤ j ≤ n;
   markers derive zero width, so (a, i, i) cells are meaningful and
   same-width dependencies are resolved by a per-cell fixpoint. *)

module Chart = struct
  type t = { bits : Bytes.t; n1 : int }

  let create nts n = { bits = Bytes.make (nts * (n + 1) * (n + 1)) '\000'; n1 = n + 1 }

  let idx c a i j = ((a * c.n1) + i) * c.n1 + j

  let get c a i j = Bytes.get (c.bits) (idx c a i j) <> '\000'

  let set c a i j =
    let k = idx c a i j in
    if Bytes.get c.bits k = '\000' then begin
      Bytes.set c.bits k '\001';
      true
    end
    else false
end

let recognize (b : Cfg.binary) doc =
  let n = String.length doc in
  let chart = Chart.create b.Cfg.bnt_count n in
  (* One pass for a fixed cell (i, j): apply all rules whose premises
     are available; returns whether anything changed. *)
  let cell_pass i j =
    let changed = ref false in
    List.iter
      (fun (a, x) -> if Chart.get chart x i j && Chart.set chart a i j then changed := true)
      b.Cfg.units;
    List.iter
      (fun (a, x, y) ->
        if not (Chart.get chart a i j) then
          let rec split k =
            if k > j then ()
            else if Chart.get chart x i k && Chart.get chart y k j then begin
              if Chart.set chart a i j then changed := true
            end
            else split (k + 1)
          in
          split i)
      b.Cfg.pairs;
    !changed
  in
  (* width 0 *)
  for i = 0 to n do
    List.iter (fun a -> ignore (Chart.set chart a i i)) b.Cfg.nulls;
    List.iter (fun (a, _) -> ignore (Chart.set chart a i i)) b.Cfg.marks;
    while cell_pass i i do
      ()
    done
  done;
  (* widths 1..n *)
  for width = 1 to n do
    for i = 0 to n - width do
      let j = i + width in
      if width = 1 then
        List.iter
          (fun (a, cs) -> if Charset.mem cs doc.[i] then ignore (Chart.set chart a i j))
          b.Cfg.terms;
      while cell_pass i j do
        ()
      done
    done
  done;
  chart

let nonempty_on s doc =
  let chart = recognize s.binary doc in
  Chart.get chart s.binary.Cfg.bstart 0 (String.length doc)

(* ------------------------------------------------------------------ *)
(* Evaluation: per-cell sets of marker placements                      *)

module Fragment = struct
  (* a sorted association list marker → boundary *)
  type t = (Marker.t * int) list

  let compare = Stdlib.compare

  let empty : t = []

  let singleton m pos : t = [ (m, pos) ]

  (* merge two placements; None if some marker occurs in both *)
  let merge (a : t) (b : t) : t option =
    let rec go a b =
      match (a, b) with
      | [], rest | rest, [] -> Some rest
      | (ma, pa) :: ra, (mb, pb) :: rb ->
          let c = Marker.compare ma mb in
          if c = 0 then None
          else if c < 0 then Option.map (fun rest -> (ma, pa) :: rest) (go ra b)
          else Option.map (fun rest -> (mb, pb) :: rest) (go a rb)
    in
    go a b
end

module Frag_set = Set.Make (Fragment)

let eval s doc =
  let b = s.binary in
  let n = String.length doc in
  let n1 = n + 1 in
  let cells = Array.make (b.Cfg.bnt_count * n1 * n1) Frag_set.empty in
  let idx a i j = ((a * n1) + i) * n1 + j in
  let add a i j frag =
    let k = idx a i j in
    if Frag_set.mem frag cells.(k) then false
    else begin
      cells.(k) <- Frag_set.add frag cells.(k);
      true
    end
  in
  let cell_pass i j =
    let changed = ref false in
    List.iter
      (fun (a, x) ->
        Frag_set.iter (fun f -> if add a i j f then changed := true) cells.(idx x i j))
      b.Cfg.units;
    List.iter
      (fun (a, x, y) ->
        for k = i to j do
          let left = cells.(idx x i k) and right = cells.(idx y k j) in
          if not (Frag_set.is_empty left || Frag_set.is_empty right) then
            Frag_set.iter
              (fun f1 ->
                Frag_set.iter
                  (fun f2 ->
                    match Fragment.merge f1 f2 with
                    | Some f -> if add a i j f then changed := true
                    | None -> ())
                  right)
              left
        done)
      b.Cfg.pairs;
    !changed
  in
  for i = 0 to n do
    List.iter (fun a -> ignore (add a i i Fragment.empty)) b.Cfg.nulls;
    List.iter (fun (a, m) -> ignore (add a i i (Fragment.singleton m i))) b.Cfg.marks;
    while cell_pass i i do
      ()
    done
  done;
  for width = 1 to n do
    for i = 0 to n - width do
      let j = i + width in
      if width = 1 then
        List.iter
          (fun (a, cs) -> if Charset.mem cs doc.[i] then ignore (add a i j Fragment.empty))
          b.Cfg.terms;
      while cell_pass i j do
        ()
      done
    done
  done;
  let result = ref (Span_relation.empty s.vars) in
  Frag_set.iter
    (fun frag ->
      (* convert a placement into a span tuple; ill-formed placements
         (unsound grammars) are skipped *)
      let opens = Hashtbl.create 4 in
      let tuple = ref (Some Span_tuple.empty) in
      List.iter
        (fun (m, pos) ->
          match (m, !tuple) with
          | _, None -> ()
          | Marker.Open x, Some _ -> Hashtbl.replace opens x pos
          | Marker.Close x, Some t -> (
              match Hashtbl.find_opt opens x with
              | Some left when left <= pos ->
                  tuple := Some (Span_tuple.bind t x (Span.make (left + 1) (pos + 1)))
              | Some _ | None -> tuple := None))
        (* process opens before closes per variable: sort by marker *)
        (List.stable_sort (fun (m1, _) (m2, _) -> Marker.compare m1 m2) frag);
      match !tuple with
      | Some t when Variable.Set.cardinal (Span_tuple.domain t) * 2 = List.length frag ->
          result := Span_relation.add !result t
      | Some _ | None -> ())
    cells.(idx b.Cfg.bstart 0 n);
  !result

(* ------------------------------------------------------------------ *)
(* ModelChecking: CYK over the explicit subword-marked word            *)

(* CYK over an explicit item sequence (markers are width-1 tokens). *)
let cyk_items (b : Cfg.binary) items =
  let m = Array.length items in
  let chart = Chart.create b.Cfg.bnt_count m in
  let cell_pass i j =
    let changed = ref false in
    List.iter
      (fun (a, x) -> if Chart.get chart x i j && Chart.set chart a i j then changed := true)
      b.Cfg.units;
    List.iter
      (fun (a, x, y) ->
        if not (Chart.get chart a i j) then
          let rec split k =
            if k > j then ()
            else if Chart.get chart x i k && Chart.get chart y k j then begin
              if Chart.set chart a i j then changed := true
            end
            else split (k + 1)
          in
          split i)
      b.Cfg.pairs;
    !changed
  in
  for i = 0 to m do
    List.iter (fun a -> ignore (Chart.set chart a i i)) b.Cfg.nulls;
    while cell_pass i i do
      ()
    done
  done;
  for width = 1 to m do
    for i = 0 to m - width do
      let j = i + width in
      (if width = 1 then
         match items.(i) with
         | Ref_word.Char c ->
             List.iter
               (fun (a, cs) -> if Charset.mem cs c then ignore (Chart.set chart a i j))
               b.Cfg.terms
         | Ref_word.Mark mk ->
             List.iter
               (fun (a, mk') -> if Marker.equal mk mk' then ignore (Chart.set chart a i j))
               b.Cfg.marks);
      while cell_pass i j do
        ()
      done
    done
  done;
  Chart.get chart b.Cfg.bstart 0 m

let accepts_tuple s doc tuple =
  if
    List.exists (fun (_, sp) -> not (Span.fits sp doc)) (Span_tuple.bindings tuple)
    || not (Variable.Set.subset (Span_tuple.domain tuple) s.vars)
  then false
  else begin
    let items = Ref_word.of_doc_tuple doc tuple in
    (* The chart accepts one fixed marker order; consecutive markers
       commute (Â§2.2), but the grammar may derive same-boundary markers
       in a different order than the canonical word uses, so if the
       canonical order fails, every per-boundary permutation is tried
       (boundary marker sets are tiny in practice). *)
    if cyk_items s.binary items then true
    else begin
      let doc', sets = Ref_word.to_extended items in
      let rec perms = function
        | [] -> [ [] ]
        | xs ->
            List.concat_map
              (fun x ->
                List.map
                  (fun rest -> x :: rest)
                  (perms (List.filter (fun y -> not (Marker.equal x y)) xs)))
              xs
      in
      let boundary_perms =
        Array.to_list (Array.map (fun set -> perms (Marker.Set.elements set)) sets)
      in
      let rec product = function
        | [] -> [ [] ]
        | choices :: rest ->
            List.concat_map (fun c -> List.map (fun r -> c :: r) (product rest)) choices
      in
      List.exists
        (fun boundary_orders ->
          let out = ref [] in
          List.iteri
            (fun bdy marks ->
              List.iter (fun mk -> out := Ref_word.Mark mk :: !out) marks;
              if bdy < String.length doc' then out := Ref_word.Char doc'.[bdy] :: !out)
            boundary_orders;
          cyk_items s.binary (Array.of_list (List.rev !out)))
        (product boundary_perms)
    end
  end

(* ------------------------------------------------------------------ *)
(* Satisfiability: productivity                                        *)

let satisfiable s =
  let b = s.binary in
  let productive = Array.make b.Cfg.bnt_count false in
  List.iter (fun a -> productive.(a) <- true) b.Cfg.nulls;
  List.iter (fun (a, _) -> productive.(a) <- true) b.Cfg.marks;
  List.iter (fun (a, cs) -> if not (Charset.is_empty cs) then productive.(a) <- true) b.Cfg.terms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, x) ->
        if productive.(x) && not productive.(a) then begin
          productive.(a) <- true;
          changed := true
        end)
      b.Cfg.units;
    List.iter
      (fun (a, x, y) ->
        if productive.(x) && productive.(y) && not productive.(a) then begin
          productive.(a) <- true;
          changed := true
        end)
      b.Cfg.pairs
  done;
  productive.(b.Cfg.bstart)

(* ------------------------------------------------------------------ *)
(* Showcase grammars                                                   *)

let dyck_extractor ~x ~open_c ~close_c ~other =
  let b = Cfg.Builder.create () in
  let any = Cfg.Builder.fresh b "Any" in
  let inner = Cfg.Builder.fresh b "Inner" in
  let group = Cfg.Builder.fresh b "Group" in
  let top = Cfg.Builder.fresh b "Top" in
  let everything = Charset.add (Charset.add other open_c) close_c in
  (* Any: arbitrary well- or ill-bracketed context around the match. *)
  Cfg.Builder.add_rule b any [];
  Cfg.Builder.add_rule b any [ Cfg.Term everything; Cfg.Nt any ];
  (* Inner: balanced content — other characters and nested groups. *)
  Cfg.Builder.add_rule b inner [];
  Cfg.Builder.add_rule b inner [ Cfg.Term other; Cfg.Nt inner ];
  Cfg.Builder.add_rule b inner [ Cfg.Nt group; Cfg.Nt inner ];
  (* Group: one parenthesised region. *)
  Cfg.Builder.add_rule b group
    [ Cfg.Term (Charset.singleton open_c); Cfg.Nt inner; Cfg.Term (Charset.singleton close_c) ];
  Cfg.Builder.add_rule b top
    [ Cfg.Nt any; Cfg.Mark (Marker.Open x); Cfg.Nt group; Cfg.Mark (Marker.Close x); Cfg.Nt any ];
  of_cfg (Cfg.Builder.finish b ~start:top)

let palindrome_extractor ~x =
  let b = Cfg.Builder.create () in
  let any = Cfg.Builder.fresh b "Any" in
  let pal = Cfg.Builder.fresh b "Pal" in
  let palne = Cfg.Builder.fresh b "PalNE" in
  let top = Cfg.Builder.fresh b "Top" in
  let ab = Charset.of_string "ab" in
  let a = Charset.singleton 'a' and bb = Charset.singleton 'b' in
  Cfg.Builder.add_rule b any [];
  Cfg.Builder.add_rule b any [ Cfg.Term ab; Cfg.Nt any ];
  Cfg.Builder.add_rule b pal [];
  Cfg.Builder.add_rule b pal [ Cfg.Term a; Cfg.Nt pal; Cfg.Term a ];
  Cfg.Builder.add_rule b pal [ Cfg.Term bb; Cfg.Nt pal; Cfg.Term bb ];
  Cfg.Builder.add_rule b palne [ Cfg.Term a; Cfg.Nt pal; Cfg.Term a ];
  Cfg.Builder.add_rule b palne [ Cfg.Term bb; Cfg.Nt pal; Cfg.Term bb ];
  Cfg.Builder.add_rule b top
    [ Cfg.Nt any; Cfg.Mark (Marker.Open x); Cfg.Nt palne; Cfg.Mark (Marker.Close x); Cfg.Nt any ];
  of_cfg (Cfg.Builder.finish b ~start:top)
