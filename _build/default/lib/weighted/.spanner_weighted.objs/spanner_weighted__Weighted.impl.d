lib/weighted/weighted.ml: Array Enumerate Evset List Marker Ref_word Semiring Span Span_relation Span_tuple Spanner_core Spanner_fa String Variable
