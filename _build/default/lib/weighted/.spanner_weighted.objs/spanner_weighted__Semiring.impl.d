lib/weighted/semiring.ml: Bool Format Int Option
