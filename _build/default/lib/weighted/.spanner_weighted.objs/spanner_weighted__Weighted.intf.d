lib/weighted/weighted.mli: Evset Marker Semiring Span_tuple Spanner_core
