lib/weighted/semiring.mli: Format
