(** Semirings for weighted spanners ([8], "Weight Annotation in
    Information Extraction", cited in §1).

    A commutative semiring (K, ⊕, ⊗, 0, 1): ⊕ aggregates across
    alternative runs, ⊗ multiplies along a run. *)

module type S = sig
  type t

  val zero : t
  (** neutral for ⊕ and absorbing for ⊗ *)

  val one : t
  (** neutral for ⊗ *)

  val plus : t -> t -> t

  val times : t -> t -> t

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** any total order compatible with {!equal}; used to present
      weighted relations deterministically and to pick "best"
      annotations *)

  val pp : Format.formatter -> t -> unit
end

(** The Boolean semiring ({false, true}, ∨, ∧): weighted evaluation
    degenerates to ordinary spanner evaluation. *)
module Boolean : S with type t = bool

(** The counting semiring (ℕ, +, ×): the weight of a tuple is its
    number of accepting runs — the ambiguity degree of the extraction
    (provenance counting). *)
module Count : S with type t = int

(** The tropical semiring (ℕ ∪ {∞}, min, +): the weight of a tuple is
    the cost of its cheapest accepting run — best-match extraction. *)
module Min_plus : S with type t = int option
(** [None] is ∞ (the semiring zero). *)

(** The max-plus (Viterbi-style) semiring (ℕ ∪ {−∞}, max, +). *)
module Max_plus : S with type t = int option
