module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Boolean = struct
  type t = bool

  let zero = false
  let one = true
  let plus = ( || )
  let times = ( && )
  let equal = Bool.equal
  let compare = Bool.compare
  let pp ppf b = Format.pp_print_bool ppf b
end

module Count = struct
  type t = int

  let zero = 0
  let one = 1
  let plus = ( + )
  let times = ( * )
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf n = Format.pp_print_int ppf n
end

module Min_plus = struct
  type t = int option (* None = ∞ *)

  let zero = None
  let one = Some 0

  let plus a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)

  let times a b =
    match (a, b) with None, _ | _, None -> None | Some a, Some b -> Some (a + b)

  let equal = Option.equal Int.equal

  let compare a b =
    (* ∞ sorts last *)
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> 1
    | Some _, None -> -1
    | Some a, Some b -> Int.compare a b

  let pp ppf = function
    | None -> Format.pp_print_string ppf "∞"
    | Some n -> Format.pp_print_int ppf n
end

module Max_plus = struct
  type t = int option (* None = −∞ *)

  let zero = None
  let one = Some 0

  let plus a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (max a b)

  let times a b =
    match (a, b) with None, _ | _, None -> None | Some a, Some b -> Some (a + b)

  let equal = Option.equal Int.equal

  let compare a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some a, Some b -> Int.compare a b

  let pp ppf = function
    | None -> Format.pp_print_string ppf "-∞"
    | Some n -> Format.pp_print_int ppf n
end
