open Spanner_core
module Charset = Spanner_fa.Charset

module Make (K : Semiring.S) = struct
  type t = {
    auto : Evset.t;
    letter_weight : char -> K.t;
    set_weight : Marker.Set.t -> K.t;
  }

  let of_evset auto ~letter_weight ~set_weight = { auto; letter_weight; set_weight }

  let uniform auto = { auto; letter_weight = (fun _ -> K.one); set_weight = (fun _ -> K.one) }

  let n_states w = Evset.size w.auto

  (* One boundary step reading exactly the marker set [s] (∅ = no set
     arc taken, vector unchanged). *)
  let boundary_step w vec s =
    if Marker.Set.is_empty s then vec
    else begin
      let next = Array.make (n_states w) K.zero in
      Array.iteri
        (fun q wq ->
          if not (K.equal wq K.zero) then
            Evset.iter_set_arcs w.auto q (fun s' dst ->
                if Marker.Set.equal s s' then
                  next.(dst) <- K.plus next.(dst) (K.times wq (w.set_weight s))))
        vec;
      next
    end

  (* One boundary step with a free choice: skip or take any set arc. *)
  let free_boundary_step w vec =
    let next = Array.copy vec in
    Array.iteri
      (fun q wq ->
        if not (K.equal wq K.zero) then
          Evset.iter_set_arcs w.auto q (fun s dst ->
              next.(dst) <- K.plus next.(dst) (K.times wq (w.set_weight s))))
      vec;
    next

  let letter_step w vec c =
    let next = Array.make (n_states w) K.zero in
    let wc = w.letter_weight c in
    Array.iteri
      (fun q wq ->
        if not (K.equal wq K.zero) then
          Evset.iter_letter_arcs w.auto q (fun cs dst ->
              if Charset.mem cs c then next.(dst) <- K.plus next.(dst) (K.times wq wc)))
      vec;
    next

  let finish w vec =
    let total = ref K.zero in
    Array.iteri (fun q wq -> if Evset.is_final w.auto q then total := K.plus !total wq) vec;
    !total

  let initial_vec w =
    let vec = Array.make (n_states w) K.zero in
    vec.(Evset.initial w.auto) <- K.one;
    vec

  let tuple_weight w doc tuple =
    if
      List.exists (fun (_, sp) -> not (Span.fits sp doc)) (Span_tuple.bindings tuple)
      || not (Variable.Set.subset (Span_tuple.domain tuple) (Evset.vars w.auto))
    then K.zero
    else begin
      let marked = Ref_word.of_doc_tuple doc tuple in
      let _, sets = Ref_word.to_extended marked in
      let n = String.length doc in
      let vec = ref (initial_vec w) in
      for i = 0 to n - 1 do
        vec := boundary_step w !vec sets.(i);
        vec := letter_step w !vec doc.[i]
      done;
      vec := boundary_step w !vec sets.(n);
      finish w !vec
    end

  let total_weight w doc =
    let vec = ref (initial_vec w) in
    String.iter
      (fun c ->
        vec := free_boundary_step w !vec;
        vec := letter_step w !vec c)
      doc;
    vec := free_boundary_step w !vec;
    finish w !vec

  let weighted_relation w doc =
    let tuples = Enumerate.to_relation w.auto doc in
    let weighted =
      List.map (fun t -> (t, tuple_weight w doc t)) (Span_relation.tuples tuples)
    in
    List.sort
      (fun (t1, w1) (t2, w2) ->
        let c = K.compare w1 w2 in
        if c <> 0 then c else Span_tuple.compare t1 t2)
      weighted

  let best w doc = match weighted_relation w doc with [] -> None | x :: _ -> Some x
end
