(** Weighted document spanners ([8], cited in §1): K-annotators.

    A weighted spanner maps each (document, tuple) pair to a semiring
    value: the ⊕-sum over all accepting runs producing the tuple of the
    ⊗-product of the arc weights along the run.  Instantiations:

    - {!Semiring.Boolean}: ordinary spanners;
    - {!Semiring.Count}: how many runs produce a tuple (the ambiguity
      of the extraction — a provenance measure);
    - {!Semiring.Min_plus} / {!Semiring.Max_plus}: cheapest/most
      confident extraction, with weights as costs/scores.

    Weights are assigned to the arcs of an extended vset-automaton:
    per character read and per marker-set taken. *)

open Spanner_core

module Make (K : Semiring.S) : sig
  type t

  (** [of_evset e ~letter_weight ~set_weight] annotates the automaton's
      arcs.  [letter_weight c] is the cost of reading [c];
      [set_weight s] the cost of taking a set arc labelled [s]. *)
  val of_evset :
    Evset.t -> letter_weight:(char -> K.t) -> set_weight:(Marker.Set.t -> K.t) -> t

  (** [uniform e] weights every arc {!K.one}: tuple weights become run
      counts under {!Semiring.Count}, and acceptance under
      {!Semiring.Boolean}. *)
  val uniform : Evset.t -> t

  (** [tuple_weight w doc t] is ⟦w⟧(doc)(t) — the ⊕ over accepting runs
      consistent with [t], in time O(|doc|·|Q|²). *)
  val tuple_weight : t -> string -> Span_tuple.t -> K.t

  (** [total_weight w doc] is the ⊕ over *all* accepting runs on [doc]
      (the aggregate annotation of the whole result). *)
  val total_weight : t -> string -> K.t

  (** [weighted_relation w doc] pairs every tuple of the underlying
      spanner's result with its weight, sorted by weight
      ({!K.compare}), then tuple. *)
  val weighted_relation : t -> string -> (Span_tuple.t * K.t) list

  (** [best w doc] is a tuple with the {!K.compare}-least weight
      (e.g. the cheapest extraction under {!Semiring.Min_plus}). *)
  val best : t -> string -> (Span_tuple.t * K.t) option
end
