(** String interning: a bijection between names and small integer ids.

    Spanner variables and alphabet symbols are interned so the hot
    automata code manipulates integers, while all user-facing output
    keeps the original names. *)

type t

(** [create ()] is an empty interner. *)
val create : unit -> t

(** [intern t name] is the id of [name], allocating a fresh one on
    first sight.  Ids are dense, starting at 0. *)
val intern : t -> string -> int

(** [find t name] is the id of [name] if already interned. *)
val find : t -> string -> int option

(** [name t id] is the name with id [id].
    @raise Invalid_argument on an unknown id. *)
val name : t -> int -> string

(** [count t] is the number of interned names. *)
val count : t -> int

(** [names t] is all interned names in id order. *)
val names : t -> string list
