lib/util/vec.mli:
