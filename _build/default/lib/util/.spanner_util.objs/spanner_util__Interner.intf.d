lib/util/interner.mli:
