lib/util/strhash.mli:
