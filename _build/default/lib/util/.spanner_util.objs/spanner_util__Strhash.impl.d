lib/util/strhash.ml: Array Char Printf String
