lib/util/xoshiro.mli:
