lib/util/bitmatrix.ml: Array Bitset
