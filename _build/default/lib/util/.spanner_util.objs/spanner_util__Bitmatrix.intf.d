lib/util/bitmatrix.mli: Bitset
