lib/util/bitset.ml: Array Bytes Hashtbl Int List Printf
