lib/util/bitset.mli:
