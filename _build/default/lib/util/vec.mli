(** Growable arrays.

    OCaml 5.1 does not yet ship [Dynarray]; this is a small, safe
    equivalent used throughout the library for building automata and
    SLP node tables incrementally. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [make n x] is a vector holding [n] copies of [x]. *)
val make : int -> 'a -> 'a t

(** [length v] is the number of elements currently stored. *)
val length : 'a t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [last v] is the last element without removing it.
    @raise Invalid_argument on an empty vector. *)
val last : 'a t -> 'a

(** [clear v] removes all elements (capacity is retained). *)
val clear : 'a t -> unit

(** [truncate v n] drops all elements at index [n] and above; no-op if
    [length v <= n]. *)
val truncate : 'a t -> int -> unit

(** [iter f v] applies [f] to every element, in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] is [iter] with the index. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold_left f init v] folds over the elements in index order. *)
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** [to_list v] is the elements as a list, in index order. *)
val to_list : 'a t -> 'a list

(** [to_array v] is a fresh array of the elements. *)
val to_array : 'a t -> 'a array

(** [of_list xs] is a vector with the elements of [xs]. *)
val of_list : 'a list -> 'a t

(** [exists p v] tests whether some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool
