(** Constant-time substring equality via double rolling hashes.

    Section 3.3 of the paper notes that refl-spanner model checking runs
    in time linear in |D| "by using standard string data-structures":
    when the automaton follows a reference arc for variable [x], the
    algorithm must compare a factor of the document against the content
    of span [t(x)] in O(1).  This module provides that primitive with
    two independent polynomial hashes (collision probability ~ 1/2^60 on
    adversarial-free inputs), plus an exact fallback used by tests. *)

type t

(** [make doc] preprocesses [doc] in O(|doc|). *)
val make : string -> t

(** [length h] is the length of the underlying document. *)
val length : t -> int

(** [equal_sub h i j len] tests [doc[i..i+len) = doc[j..j+len)]
    (0-based offsets) in O(1). *)
val equal_sub : t -> int -> int -> int -> bool

(** [equal_span h ~a:(i, j) ~b:(i', j')] tests equality of the factors
    addressed by two 0-based half-open offset intervals. *)
val equal_span : t -> a:int * int -> b:int * int -> bool

(** [hash_sub h i len] is a 2-tuple hash of [doc[i..i+len)], usable as
    a dictionary key for grouping equal factors. *)
val hash_sub : t -> int -> int -> int * int
