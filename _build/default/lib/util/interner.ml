type t = { table : (string, int) Hashtbl.t; names : string Vec.t }

let create () = { table = Hashtbl.create 16; names = Vec.create () }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some id -> id
  | None ->
      let id = Vec.push t.names name in
      Hashtbl.add t.table name id;
      id

let find t name = Hashtbl.find_opt t.table name

let name t id =
  if id < 0 || id >= Vec.length t.names then invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  Vec.get t.names id

let count t = Vec.length t.names

let names t = Vec.to_list t.names
