(* Two independent polynomial rolling hashes modulo Mersenne-ish primes
   below 2^31, so products fit in OCaml's 63-bit native ints. *)

let m1 = 2147483647 (* 2^31 - 1 *)
let m2 = 2147483629
let b1 = 131
let b2 = 137

type t = {
  doc : string;
  prefix1 : int array; (* prefix1.(i) = hash of doc[0..i) mod m1 *)
  prefix2 : int array;
  pow1 : int array; (* pow1.(i) = b1^i mod m1 *)
  pow2 : int array;
}

let make doc =
  let n = String.length doc in
  let prefix1 = Array.make (n + 1) 0 and prefix2 = Array.make (n + 1) 0 in
  let pow1 = Array.make (n + 1) 1 and pow2 = Array.make (n + 1) 1 in
  for i = 0 to n - 1 do
    let c = Char.code doc.[i] + 1 in
    prefix1.(i + 1) <- ((prefix1.(i) * b1) + c) mod m1;
    prefix2.(i + 1) <- ((prefix2.(i) * b2) + c) mod m2;
    pow1.(i + 1) <- pow1.(i) * b1 mod m1;
    pow2.(i + 1) <- pow2.(i) * b2 mod m2
  done;
  { doc; prefix1; prefix2; pow1; pow2 }

let length h = String.length h.doc

let check h i len =
  if i < 0 || len < 0 || i + len > String.length h.doc then
    invalid_arg
      (Printf.sprintf "Strhash: range [%d, %d+%d) out of bounds (length %d)" i i len
         (String.length h.doc))

let hash_sub h i len =
  check h i len;
  let h1 = (h.prefix1.(i + len) - (h.prefix1.(i) * h.pow1.(len) mod m1) + (m1 * m1)) mod m1 in
  let h2 = (h.prefix2.(i + len) - (h.prefix2.(i) * h.pow2.(len) mod m2) + (m2 * m2)) mod m2 in
  (h1, h2)

let equal_sub h i j len =
  check h i len;
  check h j len;
  i = j || (hash_sub h i len = hash_sub h j len)

let equal_span h ~a:(i, j) ~b:(i', j') =
  let len = j - i and len' = j' - i' in
  len = len' && equal_sub h i i' len
