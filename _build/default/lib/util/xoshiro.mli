(** Deterministic pseudo-random numbers (splitmix64 + xoshiro256 "starstar").

    Every workload generator in the benchmark harness draws from this
    PRNG with a fixed seed so that benches and tests are reproducible
    across runs and machines.  The stdlib [Random] is avoided because
    its sequence is not guaranteed stable across OCaml versions. *)

type t

(** [create seed] is a generator seeded deterministically from [seed]. *)
val create : int -> t

(** [next t] is the next 64-bit value (as a native int, top bit
    cleared). *)
val next : t -> int

(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [choose t arr] is a uniformly chosen element of [arr]. *)
val choose : t -> 'a array -> 'a

(** [string t alphabet len] is a random string of length [len] over
    the characters of [alphabet]. *)
val string : t -> string -> int -> string
