type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  mutable dummy : 'a option; (* element used to pad the backing array *)
}

let create () = { data = [||]; size = 0; dummy = None }

let make n x = { data = Array.make (max n 1) x; size = n; dummy = Some x }

let length v = v.size

let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i v.size)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let capacity = Array.length v.data in
  if v.size = capacity then begin
    let capacity' = if capacity = 0 then 8 else 2 * capacity in
    let data' = Array.make capacity' x in
    Array.blit v.data 0 data' 0 v.size;
    v.data <- data'
  end

let push v x =
  grow v x;
  if v.dummy = None then v.dummy <- Some x;
  v.data.(v.size) <- x;
  v.size <- v.size + 1;
  v.size - 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop: empty";
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  (match v.dummy with Some d -> v.data.(v.size) <- d | None -> ());
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.size - 1)

let clear v = v.size <- 0

let truncate v n = if n >= 0 && n < v.size then v.size <- n

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.size - 1) []

let to_array v = Array.sub v.data 0 v.size

let of_list xs =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0
