lib/datalog/datalog.mli: Evset Span Spanner_core Variable
