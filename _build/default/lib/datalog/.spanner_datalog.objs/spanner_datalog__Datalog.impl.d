lib/datalog/datalog.ml: Array Enumerate Evset Hashtbl List Option Printf Regex_formula Set Span Span_relation Span_tuple Spanner_core Spanner_util Stdlib String Variable
