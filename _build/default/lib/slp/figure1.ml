type t = {
  db : Doc_db.t;
  a1 : Slp.id;
  a2 : Slp.id;
  a3 : Slp.id;
  b : Slp.id;
  c : Slp.id;
  d : Slp.id;
  e : Slp.id;
  f : Slp.id;
}

let build () =
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let ta = Slp.leaf store 'a' and tb = Slp.leaf store 'b' and tc = Slp.leaf store 'c' in
  let e = Slp.pair store ta tb in
  let f = Slp.pair store tb tc in
  let c = Slp.pair store f ta in
  let b = Slp.pair store e c in
  let a3 = Slp.pair store e b in
  let a1 = Slp.pair store a3 c in
  let d = Slp.pair store c b in
  let a2 = Slp.pair store c d in
  Doc_db.add db "D1" a1;
  Doc_db.add db "D2" a2;
  Doc_db.add db "D3" a3;
  { db; a1; a2; a3; b; c; d; e; f }

let extend fig =
  let store = Doc_db.store fig.db in
  let g = Slp.pair store fig.d fig.b in
  let a4 = Slp.pair store fig.a2 fig.a1 in
  let a5 = Slp.pair store fig.b g in
  Doc_db.add fig.db "D4" a4;
  Doc_db.add fig.db "D5" a5;
  (a4, a5)
