(** Persistence for SLP document databases.

    A compressed document database is the natural at-rest format for
    the §4 pipeline: compress once, store the SLP, evaluate spanners on
    it forever after.  This module writes a {!Doc_db.t} to a compact
    binary file and reads it back.

    Format (little-endian, all integers as LEB128-style varints):

    {v
      magic "SLPDB1\n"
      node count
      per node: tag 0 (leaf) + byte, or tag 1 (pair) + left id + right id
      document count
      per document: name length + name bytes + root node id
    v}

    Node ids in the file are ordered topologically (children first), so
    reading is a single pass; hash-consing on load re-shares structure
    with anything already in the target store. *)

(** [write_file db path] serialises the database (only nodes reachable
    from designated documents are written). *)
val write_file : Doc_db.t -> string -> unit

(** [read_file path] loads a database into a fresh store.
    @raise Failure on a malformed or truncated file. *)
val read_file : string -> Doc_db.t

(** [write_channel db oc] / [read_channel ic] are the channel-level
    variants. *)
val write_channel : Doc_db.t -> out_channel -> unit

val read_channel : in_channel -> Doc_db.t
