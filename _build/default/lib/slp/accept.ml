module Nfa = Spanner_fa.Nfa
module Charset = Spanner_fa.Charset
module Bitmatrix = Spanner_util.Bitmatrix
module Bitset = Spanner_util.Bitset

type cache = {
  nfa : Nfa.t;
  store : Slp.store;
  closure : Bitmatrix.t; (* reflexive-transitive ε-reachability *)
  step : (char, Bitmatrix.t) Hashtbl.t; (* closure · δ_c · closure *)
  memo : (Slp.id, Bitmatrix.t) Hashtbl.t;
}

let make_cache nfa store =
  let n = Nfa.size nfa in
  let eps = Bitmatrix.create n in
  for q = 0 to n - 1 do
    Nfa.iter_eps nfa q (fun dst -> Bitmatrix.set eps q dst)
  done;
  let closure = Bitmatrix.transitive_closure eps in
  { nfa; store; closure; step = Hashtbl.create 16; memo = Hashtbl.create 256 }

let step_matrix cache c =
  match Hashtbl.find_opt cache.step c with
  | Some m -> m
  | None ->
      let n = Nfa.size cache.nfa in
      let delta = Bitmatrix.create n in
      for q = 0 to n - 1 do
        Nfa.iter_transitions cache.nfa q (fun cs dst ->
            if Charset.mem cs c then Bitmatrix.set delta q dst)
      done;
      let m = Bitmatrix.mul cache.closure (Bitmatrix.mul delta cache.closure) in
      Hashtbl.add cache.step c m;
      m

let rec matrix cache id =
  match Hashtbl.find_opt cache.memo id with
  | Some m -> m
  | None ->
      let m =
        match Slp.node cache.store id with
        | Slp.Leaf c -> step_matrix cache c
        | Slp.Pair (l, r) -> Bitmatrix.mul (matrix cache l) (matrix cache r)
      in
      Hashtbl.add cache.memo id m;
      m

let accepts cache id =
  let m = matrix cache id in
  let finals = Bitset.of_list (Nfa.size cache.nfa) (Nfa.finals cache.nfa) in
  (* closure already wraps both sides of m *)
  Bitset.fold (fun q acc -> acc || Bitset.mem (Bitmatrix.row m (Nfa.initial cache.nfa)) q)
    finals false

let accepts_via_decompression nfa store id = Nfa.accepts nfa (Slp.to_string store id)

let cached_nodes cache = Hashtbl.length cache.memo
