(** NFA membership for SLP-compressed strings (§4.2).

    The classical algorithm the paper recalls: for each SLP node [A]
    compute a boolean matrix [M_A] over the NFA's states with
    [M_A(p, q)] true iff reading 𝔇(A) can take the NFA from [p] to
    [q]; for [A = BC], [M_A = M_B · M_C].  Checking 𝔇(S) ∈ L(M) then
    costs O(|S| · n³) — independent of |𝔇(S)|, which may be
    exponentially larger.

    Matrices are memoised per node in a {!cache}, so (a) shared nodes
    are computed once across documents of a database, and (b) nodes
    created later by CDE updates only pay for themselves — the
    incremental-maintenance property used in §4.3. *)

type cache

(** [make_cache nfa store] prepares a cache for [nfa] (ε-closure is
    precomputed once). *)
val make_cache : Spanner_fa.Nfa.t -> Slp.store -> cache

(** [matrix cache id] is M_{id}, computed (and memoised) on demand;
    entry (p, q) includes ε-closure on both sides. *)
val matrix : cache -> Slp.id -> Spanner_util.Bitmatrix.t

(** [accepts cache id] decides 𝔇(id) ∈ L(nfa). *)
val accepts : cache -> Slp.id -> bool

(** [accepts_via_decompression nfa store id] is the baseline:
    decompress and simulate, O(|𝔇(id)| · |nfa|). *)
val accepts_via_decompression : Spanner_fa.Nfa.t -> Slp.store -> Slp.id -> bool

(** [cached_nodes cache] is the number of memoised node matrices (for
    the experiments' bookkeeping). *)
val cached_nodes : cache -> int
