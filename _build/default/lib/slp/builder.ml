let balanced_of_string store s =
  if String.length s = 0 then invalid_arg "Builder.balanced_of_string: empty document";
  let rec build lo hi =
    (* [lo, hi) non-empty *)
    if hi - lo = 1 then Slp.leaf store s.[lo]
    else
      let mid = (lo + hi) / 2 in
      Slp.pair store (build lo mid) (build mid hi)
  in
  build 0 (String.length s)

(* Dictionary trie of LZ78 phrases; each trie node carries the SLP node
   of its phrase. *)
type trie = { node : Slp.id option; children : (char, trie) Hashtbl.t }

let lz78 store s =
  if String.length s = 0 then invalid_arg "Builder.lz78: empty document";
  let fresh node = { node; children = Hashtbl.create 4 } in
  let root = fresh None in
  let phrases = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (* Longest dictionary match starting at !i, then one fresh char. *)
    let cursor = ref root in
    let j = ref !i in
    let continue_ = ref true in
    while !continue_ && !j < n do
      match Hashtbl.find_opt !cursor.children s.[!j] with
      | Some child ->
          cursor := child;
          incr j
      | None -> continue_ := false
    done;
    let matched = !cursor.node in
    if !j < n then begin
      let c = s.[!j] in
      let leaf = Slp.leaf store c in
      let phrase_node = match matched with None -> leaf | Some p -> Slp.pair store p leaf in
      Hashtbl.replace !cursor.children c (fresh (Some phrase_node));
      phrases := phrase_node :: !phrases;
      i := !j + 1
    end
    else begin
      (* Input ends inside a known phrase: it becomes the final one. *)
      (match matched with
      | Some p -> phrases := p :: !phrases
      | None -> assert false (* !j < n would have held *));
      i := !j
    end
  done;
  let phrases = List.rev !phrases in
  (* Join the (comb-shaped) phrase nodes; rebalance each phrase first
     so the fold stays within Balance.concat's precondition. *)
  match phrases with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun acc p -> Balance.concat store acc (Balance.rebalance store p))
        (Balance.rebalance store first)
        rest

let power store base k =
  if k < 1 then invalid_arg "Builder.power: exponent must be positive";
  let rec go k =
    if k = 1 then base
    else
      let half = go (k / 2) in
      let doubled = Slp.pair store half half in
      if k land 1 = 0 then doubled else Balance.concat store doubled base
  in
  go k

let repeat store s k = power store (balanced_of_string store s) k

let fibonacci store k =
  if k < 1 then invalid_arg "Builder.fibonacci: index must be positive";
  if k = 1 then Slp.leaf store 'b'
  else begin
    let prev = ref (Slp.leaf store 'b') and cur = ref (Slp.leaf store 'a') in
    for _ = 3 to k do
      let next = Slp.pair store !cur !prev in
      prev := !cur;
      cur := next
    done;
    !cur
  end
