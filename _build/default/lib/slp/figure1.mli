(** The example SLP of Figure 1 of the paper, reconstructed exactly.

    Solid part: nodes E = (Tₐ, T_b), F = (T_b, T_c), C = (F, Tₐ),
    B = (E, C), A3 = (E, B), A1 = (A3, C), D = (C, B), A2 = (C, D),
    with designated documents

    {v
      𝔇(A1) = ababbcabca   𝔇(A2) = bcabcaabbca   𝔇(A3) = ababbca
    v}

    and the orders/balances reported in §4.1: ord F = ord E = 2,
    ord C = 3, ord B = 4, ord D = ord A3 = 5, ord A1 = ord A2 = 6; all
    nodes balanced except bal A1 = 2 and bal A2 = bal A3 = −2.

    Grey extension (§4.3): G = (D, B), A4 = (A2, A1), A5 = (B, G) with
    𝔇(A4) = 𝔇(A2)·𝔇(A1) and 𝔇(A5) = abbcabcaabbcaabbca. *)

type t = {
  db : Doc_db.t;  (** documents "D1", "D2", "D3" designated *)
  a1 : Slp.id;
  a2 : Slp.id;
  a3 : Slp.id;
  b : Slp.id;
  c : Slp.id;
  d : Slp.id;
  e : Slp.id;
  f : Slp.id;
}

(** [build ()] constructs the solid part of the figure. *)
val build : unit -> t

(** [extend fig] adds the grey part and designates "D4" and "D5";
    returns [(a4, a5)]. *)
val extend : t -> Slp.id * Slp.id
