(** Balancing of SLPs (§4.1) and the balanced primitives behind
    complex document editing (§4.3).

    A node is balanced when bal ∈ {−1, 0, 1}; strongly balanced when
    all descendants are too.  Strongly balanced SLPs are 2-shallow, so
    every root-to-leaf descent — random access, splitting, matrix
    look-ups during enumeration — costs O(log |𝔇(A)|).

    {!concat} and {!split} are AVL-style persistent rope operations:
    they create O(|order difference|) ≤ O(log |D|) new nodes and keep
    strong balance, exactly the property [40] needs for CDE updates
    ("we only have to move nodes a constant number of times along a
    path", §4.3).  {!rebalance} is the [36]-flavoured global
    restructuring with the O(|S|·log |D|) size bound quoted in §4.1. *)

(** [concat store a b] is a strongly balanced node deriving
    𝔇(a)·𝔇(b), given strongly balanced [a] and [b].  Time and new
    nodes O(|order a − order b|). *)
val concat : Slp.store -> Slp.id -> Slp.id -> Slp.id

(** [split store a i] is [(l, r)] with 𝔇(l) = 𝔇(a)[1..i] and
    𝔇(r) = 𝔇(a)[i+1..]; [None] sides are empty ([i = 0] or
    [i = len a]).  Both parts are strongly balanced.  O(log²) worst
    case through the chain of concats.
    @raise Invalid_argument if [i] is out of [0..len a]. *)
val split : Slp.store -> Slp.id -> int -> Slp.id option * Slp.id option

(** [extract store a i j] is a strongly balanced node for the factor
    from position [i] to [j] *inclusive* (1-based, as in the paper's
    extract(D, i, j)).
    @raise Invalid_argument if the range is empty or out of bounds. *)
val extract : Slp.store -> Slp.id -> int -> int -> Slp.id

(** [rebalance store a] is a strongly balanced node deriving 𝔇(a),
    built bottom-up with one balanced concatenation per original node
    (memoised over the DAG): size O(|S|·log |𝔇(a)|), the Rytter bound
    the survey cites for strong balancing. *)
val rebalance : Slp.store -> Slp.id -> Slp.id

(** [depth_stats store a] is [(order, ceil_log2_len)] — the numbers
    compared by c-shallowness reports (experiment E8). *)
val depth_stats : Slp.store -> Slp.id -> int * int
