open Spanner_core

type t = { core : Core_spanner.t; engine : Slp_spanner.engine; hash : Slp_hash.t }

let create core store =
  {
    core;
    engine = Slp_spanner.create core.Core_spanner.automaton store;
    hash = Slp_hash.create store;
  }

let selections_hold t id tuple =
  List.for_all
    (fun z ->
      let spans =
        Variable.Set.fold
          (fun x acc -> match Span_tuple.find tuple x with None -> acc | Some s -> s :: acc)
          z []
      in
      match spans with
      | [] | [ _ ] -> true
      | first :: rest ->
          let range s = (Span.left s, Span.right s) in
          List.for_all (fun s -> Slp_hash.factor_equal t.hash id (range first) (range s)) rest)
    t.core.Core_spanner.selections

let eval t id =
  let result = ref (Span_relation.empty (Core_spanner.schema t.core)) in
  Slp_spanner.iter t.engine id (fun tuple ->
      if selections_hold t id tuple then
        result :=
          Span_relation.add !result (Span_tuple.project t.core.Core_spanner.projection tuple));
  !result

let nonempty_on t id =
  let exception Found in
  try
    Slp_spanner.iter t.engine id (fun tuple ->
        if selections_hold t id tuple then raise Found);
    false
  with Found -> true

let count t id = Span_relation.cardinal (eval t id)
