(** SLP construction (§4).

    Computing a *smallest* SLP is NP-complete (survey footnote 4), but
    fast practical compressors exist; this module provides the builders
    the experiments need, spanning the compressibility spectrum:

    - {!balanced_of_string}: no compression, strongly balanced — the
      shape obtained from an incompressible document;
    - {!lz78}: dictionary compression in the Lempel-Ziv family the
      survey names as covered by SLPs — genuine sharing on repetitive
      text (comb-shaped; balance with {!Balance.rebalance});
    - {!power} and {!fibonacci}: exponentially compressible families —
      the "SLP exponentially smaller than the string" best case. *)

(** [balanced_of_string store s] is a perfectly balanced parse of [s]
    (divide and conquer), order ⌈log₂ |s|⌉ + 1.
    @raise Invalid_argument on the empty string. *)
val balanced_of_string : Slp.store -> string -> Slp.id

(** [lz78 store s] parses [s] into LZ78 phrases (each phrase = an
    earlier phrase plus one character, i.e. exactly one new node) and
    joins the phrase nodes with balanced concatenations.  The phrase
    dictionary part is shared; size O(#phrases·log).
    @raise Invalid_argument on the empty string. *)
val lz78 : Slp.store -> string -> Slp.id

(** [power store base k] derives 𝔇(base)^k with O(log k) new nodes
    (binary exponentiation).
    @raise Invalid_argument if [k < 1]. *)
val power : Slp.store -> Slp.id -> int -> Slp.id

(** [repeat store s k] is [power] of a balanced parse of [s]. *)
val repeat : Slp.store -> string -> int -> Slp.id

(** [fibonacci store k] is the k-th Fibonacci word F_k (F₁ = b,
    F₂ = a, F_k = F_{k−1}·F_{k−2}): length Fib(k) with k − 1 nodes.
    Every node has bal = +1, so Fibonacci SLPs are strongly balanced —
    they are exactly the extremal AVL shape, witnessing that the
    2-shallowness bound of §4.1 (order ≤ 2·log₂ length) is tight up to
    the constant 1/log₂ φ ≈ 1.44.
    @raise Invalid_argument if [k < 1]. *)
val fibonacci : Slp.store -> int -> Slp.id
