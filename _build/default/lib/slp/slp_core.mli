(** Core spanners over SLP-compressed documents.

    Combines the two §4 pipelines with the §2.3 normal form: the core
    spanner π_Y(ς=_Z1 … ς=_Zk(⟦M⟧)) is evaluated on a compressed
    document by

    + enumerating ⟦M⟧'s tuples with the compressed engine
      ({!Slp_spanner}, no decompression),
    + filtering the string-equality selections with O(log |D|)
      fingerprint comparisons ({!Slp_hash}, no decompression),
    + projecting to the visible schema.

    This goes beyond the survey's explicit scope (which treats regular
    spanners over SLPs) but is the natural composition of its parts,
    and the selection filter inherits the core-spanner worst case: the
    number of automaton tuples explored may be exponential (§2.4). *)

open Spanner_core

type t

(** [create core store] prepares engines for the core spanner's
    automaton part and a fingerprint cache over [store]. *)
val create : Core_spanner.t -> Slp.store -> t

(** [eval t id] is the core spanner's relation on 𝔇(id), computed
    without decompressing. *)
val eval : t -> Slp.id -> Span_relation.t

(** [nonempty_on t id] decides non-emptiness lazily (first satisfying
    automaton tuple wins). *)
val nonempty_on : t -> Slp.id -> bool

(** [count t id] is the number of result tuples (after selections and
    projection — requires full evaluation, unlike the regular case). *)
val count : t -> Slp.id -> int
