(** Regular-spanner evaluation over SLP-compressed documents
    (§4.2, [39]).

    The engine combines the two ideas the paper describes:

    - {b matrices along the DAG}: for every SLP node [A], boolean
      matrices over the states of a *deterministic* extended
      vset-automaton record which state pairs are connected by reading
      𝔇(A) — one matrix for marker-free runs ([Pure_A]) and one for
      runs that place at least one marker ([Mixed_A]), composed as
      [Pure_AB = Pure_A·Pure_B] and
      [Mixed_AB = Mixed_A·Full_B ∪ Pure_A·Mixed_B].
      Preprocessing is therefore O(|S|) matrix products — linear in
      the *compressed* size, never in |𝔇(A)|.

    - {b enumeration by partial decompression}: a result tuple is
      produced by descending only into the nodes where its markers
      lie; marker-free stretches are skipped through the matrices.
      On a c-shallow SLP each of the ≤ 2k+1 descents costs O(log |D|)
      — the paper's O(log |D|) delay (§4.2).

    Determinism of the automaton makes runs bijective with result
    tuples, so the enumeration is duplicate-free without any
    deduplication state.

    Matrices are memoised per node: documents sharing nodes share
    preprocessing, and nodes created by CDE updates (§4.3) pay only
    for themselves — evaluating a spanner after an update costs
    O(log d) new matrices, which is the incremental-maintenance bound
    of [40]. *)

open Spanner_core

type engine

(** [create e store] builds an engine for the spanner ⟦e⟧ (the
    automaton is determinised internally unless it already is). *)
val create : Evset.t -> Slp.store -> engine

(** [vars engine] is the spanner's variable set. *)
val vars : engine -> Variable.Set.t

(** [prepare engine id] forces the matrices of every node reachable
    from [id] — the preprocessing phase, O(number of new nodes). *)
val prepare : engine -> Slp.id -> unit

(** [iter engine id f] enumerates ⟦e⟧(𝔇(id)) without repetition,
    calling [f] once per tuple. *)
val iter : engine -> Slp.id -> (Span_tuple.t -> unit) -> unit

(** [cardinal engine id] counts |⟦e⟧(𝔇(id))| by dynamic programming
    over run counts — no enumeration, O(|S|·|Q|²) after preparation. *)
val cardinal : engine -> Slp.id -> int

(** [to_relation engine id] materialises the result. *)
val to_relation : engine -> Slp.id -> Span_relation.t

(** [matrices_computed engine] is the number of memoised node
    matrices (preprocessing bookkeeping for the experiments). *)
val matrices_computed : engine -> int
