let magic = "SLPDB1\n"

(* unsigned LEB128 *)
let write_varint oc n =
  let rec go n =
    if n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Serialize: negative varint";
  go n

let read_varint ic =
  let rec go shift acc =
    let b = try input_byte ic with End_of_file -> failwith "Serialize: truncated file" in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let write_channel db oc =
  output_string oc magic;
  let store = Doc_db.store db in
  (* topological numbering of reachable nodes, children first *)
  let file_id = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  List.iter
    (fun name ->
      Slp.iter_reachable store (Doc_db.find db name) (fun id ->
          if not (Hashtbl.mem file_id id) then begin
            Hashtbl.add file_id id !count;
            incr count;
            order := id :: !order
          end))
    (Doc_db.names db);
  let nodes = List.rev !order in
  write_varint oc !count;
  List.iter
    (fun id ->
      match Slp.node store id with
      | Slp.Leaf c ->
          output_byte oc 0;
          output_char oc c
      | Slp.Pair (l, r) ->
          output_byte oc 1;
          write_varint oc (Hashtbl.find file_id l);
          write_varint oc (Hashtbl.find file_id r))
    nodes;
  let names = Doc_db.names db in
  write_varint oc (List.length names);
  List.iter
    (fun name ->
      write_varint oc (String.length name);
      output_string oc name;
      write_varint oc (Hashtbl.find file_id (Doc_db.find db name)))
    names

let read_channel ic =
  let header = really_input_string ic (String.length magic) in
  if header <> magic then failwith "Serialize: bad magic (not an SLPDB file)";
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  let count = read_varint ic in
  let ids = Array.make (max count 1) (-1) in
  for i = 0 to count - 1 do
    match input_byte ic with
    | 0 -> ids.(i) <- Slp.leaf store (input_char ic)
    | 1 ->
        let l = read_varint ic in
        let r = read_varint ic in
        if l >= i || r >= i then failwith "Serialize: node references a later node";
        ids.(i) <- Slp.pair store ids.(l) ids.(r)
    | _ -> failwith "Serialize: bad node tag"
    | exception End_of_file -> failwith "Serialize: truncated file"
  done;
  let ndocs = read_varint ic in
  for _ = 1 to ndocs do
    let len = read_varint ic in
    let name = really_input_string ic len in
    let root = read_varint ic in
    if root >= count then failwith "Serialize: document root out of range";
    Doc_db.add db name ids.(root)
  done;
  db

let write_file db path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel db oc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
