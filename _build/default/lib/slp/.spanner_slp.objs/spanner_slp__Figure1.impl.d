lib/slp/figure1.ml: Doc_db Slp
