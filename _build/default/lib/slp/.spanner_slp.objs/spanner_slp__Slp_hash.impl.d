lib/slp/slp_hash.ml: Char Hashtbl Printf Slp
