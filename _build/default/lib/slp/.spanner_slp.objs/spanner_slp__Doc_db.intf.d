lib/slp/doc_db.mli: Slp
