lib/slp/slp_hash.mli: Slp
