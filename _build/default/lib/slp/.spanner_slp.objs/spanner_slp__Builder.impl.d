lib/slp/builder.ml: Balance Hashtbl List Slp String
