lib/slp/serialize.ml: Array Doc_db Fun Hashtbl List Slp String
