lib/slp/balance.mli: Slp
