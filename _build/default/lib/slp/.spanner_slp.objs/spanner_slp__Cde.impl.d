lib/slp/cde.ml: Balance Doc_db Format Printf Slp String
