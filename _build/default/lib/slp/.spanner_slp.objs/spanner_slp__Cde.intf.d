lib/slp/cde.mli: Doc_db Format Slp
