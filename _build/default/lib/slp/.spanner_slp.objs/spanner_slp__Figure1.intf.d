lib/slp/figure1.mli: Doc_db Slp
