lib/slp/accept.mli: Slp Spanner_fa Spanner_util
