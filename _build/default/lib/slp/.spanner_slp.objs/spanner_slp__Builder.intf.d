lib/slp/builder.mli: Slp
