lib/slp/serialize.mli: Doc_db
