lib/slp/slp_spanner.mli: Evset Slp Span_relation Span_tuple Spanner_core Variable
