lib/slp/balance.ml: Hashtbl Printf Slp
