lib/slp/slp.ml: Buffer Float Hashtbl Printf Spanner_util String
