lib/slp/slp.mli:
