lib/slp/doc_db.ml: Balance Builder Hashtbl List Slp Spanner_util
