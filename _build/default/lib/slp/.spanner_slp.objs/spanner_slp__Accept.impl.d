lib/slp/accept.ml: Hashtbl Slp Spanner_fa Spanner_util
