lib/slp/slp_core.mli: Core_spanner Slp Span_relation Spanner_core
