lib/slp/slp_core.ml: Core_spanner List Slp_hash Slp_spanner Span Span_relation Span_tuple Spanner_core Variable
