lib/slp/slp_spanner.ml: Evset Hashtbl List Marker Option Slp Span Span_relation Span_tuple Spanner_core Spanner_fa Spanner_util
