open Spanner_core
module Charset = Spanner_fa.Charset
module Bitmatrix = Spanner_util.Bitmatrix
module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec

type engine = {
  auto : Evset.t; (* deterministic *)
  store : Slp.store;
  pure : (Slp.id, Bitmatrix.t) Hashtbl.t;
  mixed : (Slp.id, Bitmatrix.t) Hashtbl.t;
  pure_leaf : (char, Bitmatrix.t) Hashtbl.t;
  mixed_leaf : (char, Bitmatrix.t) Hashtbl.t;
  counts : (Slp.id * int * int, int) Hashtbl.t; (* mixed-run counts *)
}

let create e store =
  let auto = if Evset.is_deterministic e then e else Evset.determinize e in
  {
    auto;
    store;
    pure = Hashtbl.create 256;
    mixed = Hashtbl.create 256;
    pure_leaf = Hashtbl.create 8;
    mixed_leaf = Hashtbl.create 8;
    counts = Hashtbl.create 256;
  }

let vars engine = Evset.vars engine.auto

let nstates engine = Evset.size engine.auto

let letter_matrix engine c =
  match Hashtbl.find_opt engine.pure_leaf c with
  | Some m -> m
  | None ->
      let n = nstates engine in
      let m = Bitmatrix.create n in
      for q = 0 to n - 1 do
        Evset.iter_letter_arcs engine.auto q (fun cs dst ->
            if Charset.mem cs c then Bitmatrix.set m q dst)
      done;
      Hashtbl.add engine.pure_leaf c m;
      m

let mixed_leaf_matrix engine c =
  match Hashtbl.find_opt engine.mixed_leaf c with
  | Some m -> m
  | None ->
      let n = nstates engine in
      let set_step = Bitmatrix.create n in
      for q = 0 to n - 1 do
        Evset.iter_set_arcs engine.auto q (fun _ dst -> Bitmatrix.set set_step q dst)
      done;
      let m = Bitmatrix.mul set_step (letter_matrix engine c) in
      Hashtbl.add engine.mixed_leaf c m;
      m

let rec pure_matrix engine id =
  match Hashtbl.find_opt engine.pure id with
  | Some m -> m
  | None ->
      let m =
        match Slp.node engine.store id with
        | Slp.Leaf c -> letter_matrix engine c
        | Slp.Pair (l, r) -> Bitmatrix.mul (pure_matrix engine l) (pure_matrix engine r)
      in
      Hashtbl.add engine.pure id m;
      m

let rec mixed_matrix engine id =
  match Hashtbl.find_opt engine.mixed id with
  | Some m -> m
  | None ->
      let m =
        match Slp.node engine.store id with
        | Slp.Leaf c -> mixed_leaf_matrix engine c
        | Slp.Pair (l, r) ->
            let full_r = Bitmatrix.union (pure_matrix engine r) (mixed_matrix engine r) in
            Bitmatrix.union
              (Bitmatrix.mul (mixed_matrix engine l) full_r)
              (Bitmatrix.mul (pure_matrix engine l) (mixed_matrix engine r))
      in
      Hashtbl.add engine.mixed id m;
      m

let prepare engine id =
  ignore (pure_matrix engine id);
  ignore (mixed_matrix engine id)

let matrices_computed engine = Hashtbl.length engine.pure + Hashtbl.length engine.mixed

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

(* Enumerate every run p→q over node [id] that places ≥ 1 marker.
   Picks (0-based boundary, marker set) accumulate in [picks]; [k] is
   invoked once per complete run.  Matrices guarantee every recursive
   branch taken yields at least one run, so there is no dead search. *)
let enum_mixed engine picks id0 p0 q0 offset0 k0 =
  let n = nstates engine in
  let rec go id p q offset k =
    match Slp.node engine.store id with
    | Slp.Leaf c ->
        Evset.iter_set_arcs engine.auto p (fun s p' ->
            if Bitmatrix.get (letter_matrix engine c) p' q then begin
              ignore (Vec.push picks (offset, s));
              k ();
              ignore (Vec.pop picks)
            end)
    | Slp.Pair (l, r) ->
        let m = Slp.len engine.store l in
        let pure_l = pure_matrix engine l and mixed_l = mixed_matrix engine l in
        let pure_r = pure_matrix engine r and mixed_r = mixed_matrix engine r in
        for mid = 0 to n - 1 do
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
            go l p mid offset k;
          if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
            go r mid q (offset + m) k;
          if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
            go l p mid offset (fun () -> go r mid q (offset + m) k)
        done
  in
  go id0 p0 q0 offset0 k0

let tuple_of_picks picks extra =
  let opens = Hashtbl.create 4 in
  let tuple = ref Span_tuple.empty in
  let apply (boundary, s) =
    Marker.Set.iter
      (function
        | Marker.Open x -> Hashtbl.replace opens x (boundary + 1)
        | Marker.Close x ->
            let left = Option.value ~default:(boundary + 1) (Hashtbl.find_opt opens x) in
            tuple := Span_tuple.bind !tuple x (Span.make left (boundary + 1)))
      s
  in
  Vec.iter apply picks;
  (match extra with Some pick -> apply pick | None -> ());
  !tuple

let iter engine id f =
  prepare engine id;
  let auto = engine.auto in
  let n = nstates engine in
  let doc_len = Slp.len engine.store id in
  let init = Evset.initial auto in
  let pure_root = pure_matrix engine id and mixed_root = mixed_matrix engine id in
  let picks = Vec.create () in
  for q = 0 to n - 1 do
    let reach_pure = Bitmatrix.get pure_root init q in
    let reach_mixed = Bitmatrix.get mixed_root init q in
    if reach_pure || reach_mixed then begin
      (* runs ending at q, then the trailing boundary. *)
      let endings = ref [] in
      if Evset.is_final auto q then endings := None :: !endings;
      Evset.iter_set_arcs auto q (fun s q' ->
          if Evset.is_final auto q' then endings := Some (doc_len, s) :: !endings);
      List.iter
        (fun ending ->
          if reach_pure then f (tuple_of_picks picks ending);
          if reach_mixed then
            enum_mixed engine picks id init q 0 (fun () -> f (tuple_of_picks picks ending)))
        !endings
    end
  done

let cardinal engine id =
  prepare engine id;
  let auto = engine.auto in
  let n = nstates engine in
  (* mixed-run counts per (node, p, q), memoised. *)
  let rec count id p q =
    match Hashtbl.find_opt engine.counts (id, p, q) with
    | Some c -> c
    | None ->
        let c =
          match Slp.node engine.store id with
          | Slp.Leaf ch ->
              let total = ref 0 in
              Evset.iter_set_arcs auto p (fun _ p' ->
                  if Bitmatrix.get (letter_matrix engine ch) p' q then incr total);
              !total
          | Slp.Pair (l, r) ->
              let pure_l = pure_matrix engine l and mixed_l = mixed_matrix engine l in
              let pure_r = pure_matrix engine r and mixed_r = mixed_matrix engine r in
              let total = ref 0 in
              for mid = 0 to n - 1 do
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get pure_r mid q then
                  total := !total + count l p mid;
                if Bitmatrix.get pure_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + count r mid q;
                if Bitmatrix.get mixed_l p mid && Bitmatrix.get mixed_r mid q then
                  total := !total + (count l p mid * count r mid q)
              done;
              !total
        in
        Hashtbl.add engine.counts (id, p, q) c;
        c
  in
  let init = Evset.initial auto in
  let pure_root = pure_matrix engine id and mixed_root = mixed_matrix engine id in
  let total = ref 0 in
  for q = 0 to n - 1 do
    if Bitmatrix.get pure_root init q || Bitmatrix.get mixed_root init q then begin
      let endings = ref 0 in
      if Evset.is_final auto q then incr endings;
      Evset.iter_set_arcs auto q (fun _ q' -> if Evset.is_final auto q' then incr endings);
      let runs =
        (if Bitmatrix.get pure_root init q then 1 else 0)
        + if Bitmatrix.get mixed_root init q then count id init q else 0
      in
      total := !total + (runs * !endings)
    end
  done;
  !total

let to_relation engine id =
  let r = ref (Span_relation.empty (vars engine)) in
  iter engine id (fun t -> r := Span_relation.add !r t);
  !r
