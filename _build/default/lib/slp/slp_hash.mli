(** Karp–Rabin fingerprints of SLP-compressed documents.

    Rolling hashes compose over concatenation
    (H(uv) = H(u)·B^|v| + H(v)), so a fingerprint per SLP *node* can be
    computed bottom-up in O(|S|) and the fingerprint of an arbitrary
    factor 𝔇(A)[i..j⟩ in O(order A) — O(log |D|) on balanced SLPs —
    by decomposing the factor along the DAG.

    This is the "algorithmics on compressed strings" primitive (§4,
    footnote 5) that lets the *string-equality selection* of core
    spanners run over compressed documents without decompression: two
    factors are compared in O(log |D|) instead of O(factor length).
    Used by {!Slp_core}. *)

type t

(** [create store] is an empty fingerprint cache over [store]. *)
val create : Slp.store -> t

(** [node_hash h id] is the fingerprint of 𝔇(id), memoised per node. *)
val node_hash : t -> Slp.id -> int * int

(** [factor_hash h id i j] is the fingerprint of 𝔇(id)[i..j⟩ (1-based,
    half-open, like spans).
    @raise Invalid_argument if the range is out of bounds. *)
val factor_hash : t -> Slp.id -> int -> int -> int * int

(** [factor_equal h id (i, j) (i', j')] tests 𝔇(id)[i..j⟩ = 𝔇(id)[i'..j'⟩
    in O(order id) (Monte-Carlo: double 31-bit fingerprints). *)
val factor_equal : t -> Slp.id -> int * int -> int * int -> bool

(** [cached_nodes h] is the number of memoised node fingerprints. *)
val cached_nodes : t -> int
