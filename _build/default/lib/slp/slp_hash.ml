(* Double polynomial fingerprints modulo primes below 2^31 (products
   fit in 63-bit native ints), matching Spanner_util.Strhash. *)

let m1 = 2147483647
let m2 = 2147483629
let b1 = 131
let b2 = 137

type t = {
  store : Slp.store;
  memo : (Slp.id, int * int) Hashtbl.t;
  pow_memo : (int, int * int) Hashtbl.t; (* len → (b1^len mod m1, b2^len mod m2) *)
}

let create store = { store; memo = Hashtbl.create 256; pow_memo = Hashtbl.create 64 }

let rec modpow base m e = if e = 0 then 1 else
    let half = modpow base m (e / 2) in
    let sq = half * half mod m in
    if e land 1 = 1 then sq * base mod m else sq

let pows h len =
  match Hashtbl.find_opt h.pow_memo len with
  | Some p -> p
  | None ->
      let p = (modpow b1 m1 len, modpow b2 m2 len) in
      Hashtbl.add h.pow_memo len p;
      p

(* H(uv) = H(u)·B^|v| + H(v) *)
let combine h (h1, h2) (g1, g2) vlen =
  let p1, p2 = pows h vlen in
  (((h1 * p1) + g1) mod m1, ((h2 * p2) + g2) mod m2)

let rec node_hash h id =
  match Hashtbl.find_opt h.memo id with
  | Some v -> v
  | None ->
      let v =
        match Slp.node h.store id with
        | Slp.Leaf c -> (Char.code c + 1, Char.code c + 1)
        | Slp.Pair (l, r) ->
            combine h (node_hash h l) (node_hash h r) (Slp.len h.store r)
      in
      Hashtbl.add h.memo id v;
      v

let factor_hash h id i j =
  let n = Slp.len h.store id in
  if i < 1 || j < i || j > n + 1 then
    invalid_arg (Printf.sprintf "Slp_hash.factor_hash: bad range [%d,%d⟩ (length %d)" i j n);
  (* fh over 0-based half-open [lo, hi) relative to the node *)
  let rec fh id lo hi =
    if lo >= hi then (0, 0)
    else if lo = 0 && hi = Slp.len h.store id then node_hash h id
    else
      match Slp.node h.store id with
      | Slp.Leaf _ -> node_hash h id (* lo=0, hi=1 handled above; unreachable *)
      | Slp.Pair (l, r) ->
          let ll = Slp.len h.store l in
          if hi <= ll then fh l lo hi
          else if lo >= ll then fh r (lo - ll) (hi - ll)
          else combine h (fh l lo ll) (fh r 0 (hi - ll)) (hi - ll)
  in
  fh id (i - 1) (j - 1)

let factor_equal h id (i, j) (i', j') =
  j - i = j' - i' && ((i = i' && j = j') || factor_hash h id i j = factor_hash h id i' j')

let cached_nodes h = Hashtbl.length h.memo
