(* AVL-style persistent rope algebra over the node store.  All the
   rotations create new (hash-consed) nodes; originals are untouched,
   so documents sharing structure keep sharing it. *)

let ord = Slp.order

(* Balanced pairing of two trees whose orders differ by at most 2:
   a single or double rotation restores |bal| ≤ 1 (the "mildly
   unbalanced nodes re-balanced by suitable rotations" of §4.3). *)
let rec mk store l r =
  let dl = ord store l and dr = ord store r in
  if abs (dl - dr) <= 1 then Slp.pair store l r
  else if dl = dr + 2 then begin
    match Slp.node store l with
    | Slp.Leaf _ -> assert false (* a leaf has order 1 < dr + 2 *)
    | Slp.Pair (ll, lr) ->
        if ord store ll >= ord store lr then
          (* single right rotation *)
          mk_careful store ll (mk store lr r)
        else begin
          match Slp.node store lr with
          | Slp.Leaf _ -> assert false
          | Slp.Pair (lrl, lrr) ->
              (* double rotation *)
              mk_careful store (mk store ll lrl) (mk store lrr r)
        end
  end
  else if dr = dl + 2 then begin
    match Slp.node store r with
    | Slp.Leaf _ -> assert false
    | Slp.Pair (rl, rr) ->
        if ord store rr >= ord store rl then mk_careful store (mk store l rl) rr
        else begin
          match Slp.node store rl with
          | Slp.Leaf _ -> assert false
          | Slp.Pair (rll, rlr) -> mk_careful store (mk store l rll) (mk store rlr rr)
        end
  end
  else invalid_arg "Balance.mk: order difference exceeds 2"

(* After a rotation the recombined sides can again differ by 2, so
   route through [mk] once more; it terminates because the total order
   strictly decreases into the recursive calls. *)
and mk_careful store l r =
  if abs (ord store l - ord store r) <= 2 then mk store l r
  else concat store l r

(* AVL join: descend the spine of the higher tree until the orders are
   close enough, then rebuild with rotations on the way out. *)
and concat store a b =
  let da = ord store a and db = ord store b in
  if abs (da - db) <= 1 then Slp.pair store a b
  else if da > db then begin
    match Slp.node store a with
    | Slp.Leaf _ -> assert false
    | Slp.Pair (l, r) -> mk store l (concat store r b)
  end
  else begin
    match Slp.node store b with
    | Slp.Leaf _ -> assert false
    | Slp.Pair (l, r) -> mk store (concat store a l) r
  end

let concat store a b = concat store a b

let opt_concat store a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (concat store a b)

let split store a i =
  let n = Slp.len store a in
  if i < 0 || i > n then
    invalid_arg (Printf.sprintf "Balance.split: position %d out of range (length %d)" i n);
  let rec go a i =
    (* 0 < i < len a *)
    match Slp.node store a with
    | Slp.Leaf _ -> assert false
    | Slp.Pair (l, r) ->
        let ll = Slp.len store l in
        if i = ll then (Some l, Some r)
        else if i < ll then begin
          let left, mid = go l i in
          (left, opt_concat store mid (Some r))
        end
        else begin
          let mid, right = go r (i - ll) in
          (opt_concat store (Some l) mid, right)
        end
  in
  if i = 0 then (None, Some a) else if i = n then (Some a, None) else go a i

let extract store a i j =
  let n = Slp.len store a in
  if i < 1 || j < i || j > n then
    invalid_arg (Printf.sprintf "Balance.extract: bad range [%d..%d] (length %d)" i j n);
  let _, right = split store a (i - 1) in
  match right with
  | None -> assert false (* i ≤ j ≤ n implies a non-empty right part *)
  | Some right ->
      let mid, _ = split store right (j - i + 1) in
      (match mid with Some m -> m | None -> assert false)

let rebalance store a =
  let memo = Hashtbl.create 64 in
  let rec go a =
    match Hashtbl.find_opt memo a with
    | Some b -> b
    | None ->
        let b =
          match Slp.node store a with
          | Slp.Leaf _ -> a
          | Slp.Pair (l, r) -> concat store (go l) (go r)
        in
        Hashtbl.add memo a b;
        b
  in
  go a

let depth_stats store a =
  let n = Slp.len store a in
  let rec ceil_log2 acc v = if v <= 1 then acc else ceil_log2 (acc + 1) ((v + 1) / 2) in
  (Slp.order store a, ceil_log2 0 n)
