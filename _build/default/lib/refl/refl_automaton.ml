open Spanner_core
module Charset = Spanner_fa.Charset
module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec

type state = int

type label = Eps | Chars of Charset.t | Mark of Marker.t | Ref of Variable.t

type t = {
  n : int;
  initial : state;
  final_set : Bitset.t;
  trans : (label * state) list array;
  vars : Variable.Set.t;
}

module Builder = struct
  type t = { mutable count : int; btrans : (label * state) list Vec.t }

  let create () = { count = 0; btrans = Vec.create () }

  let add_state b =
    ignore (Vec.push b.btrans []);
    let q = b.count in
    b.count <- b.count + 1;
    q

  let add b src label dst = Vec.set b.btrans src ((label, dst) :: Vec.get b.btrans src)

  let finish b ~initial ~finals ~vars =
    let final_set = Bitset.create (max b.count 1) in
    List.iter (Bitset.add final_set) finals;
    { n = b.count; initial; final_set; trans = Vec.to_array b.btrans; vars }
end

let size a = a.n

let initial a = a.initial

let finals a = Bitset.elements a.final_set

let is_final a q = Bitset.mem a.final_set q

let vars a = a.vars

let iter_transitions a q f = List.iter (fun (label, dst) -> f label dst) a.trans.(q)

let of_regex r =
  let b = Builder.create () in
  let rec build r =
    let entry = Builder.add_state b and exit_ = Builder.add_state b in
    (match r with
    | Refl_regex.Empty -> ()
    | Refl_regex.Epsilon -> Builder.add b entry Eps exit_
    | Refl_regex.Chars cs -> Builder.add b entry (Chars cs) exit_
    | Refl_regex.Ref x -> Builder.add b entry (Ref x) exit_
    | Refl_regex.Bind (x, inner) ->
        let ei, xi = build inner in
        Builder.add b entry (Mark (Marker.Open x)) ei;
        Builder.add b xi (Mark (Marker.Close x)) exit_
    | Refl_regex.Concat (r1, r2) ->
        let e1, x1 = build r1 and e2, x2 = build r2 in
        Builder.add b entry Eps e1;
        Builder.add b x1 Eps e2;
        Builder.add b x2 Eps exit_
    | Refl_regex.Alt (r1, r2) ->
        let e1, x1 = build r1 and e2, x2 = build r2 in
        Builder.add b entry Eps e1;
        Builder.add b entry Eps e2;
        Builder.add b x1 Eps exit_;
        Builder.add b x2 Eps exit_
    | Refl_regex.Star inner ->
        let ei, xi = build inner in
        Builder.add b entry Eps exit_;
        Builder.add b entry Eps ei;
        Builder.add b xi Eps ei;
        Builder.add b xi Eps exit_
    | Refl_regex.Plus inner ->
        let ei, xi = build inner in
        Builder.add b entry Eps ei;
        Builder.add b xi Eps ei;
        Builder.add b xi Eps exit_
    | Refl_regex.Opt inner ->
        let ei, xi = build inner in
        Builder.add b entry Eps exit_;
        Builder.add b entry Eps ei;
        Builder.add b xi Eps exit_);
    (entry, exit_)
  in
  let entry, exit_ = build r in
  Builder.finish b ~initial:entry ~finals:[ exit_ ] ~vars:(Refl_regex.vars r)

(* ------------------------------------------------------------------ *)
(* Reachability helpers                                                *)

let coreachable a =
  let preds = Array.make (max a.n 1) [] in
  Array.iteri
    (fun q arcs -> List.iter (fun (_, dst) -> preds.(dst) <- q :: preds.(dst)) arcs)
    a.trans;
  let seen = Bitset.create (max a.n 1) in
  let stack = ref [] in
  Bitset.iter
    (fun q ->
      Bitset.add seen q;
      stack := q :: !stack)
    a.final_set;
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not (Bitset.mem seen p) then begin
              Bitset.add seen p;
              stack := p :: !stack
            end)
          preds.(q);
        loop ()
  in
  loop ();
  seen

let reachable a =
  let seen = Bitset.of_list (max a.n 1) [ a.initial ] in
  let stack = ref [ a.initial ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun (_, dst) ->
            if not (Bitset.mem seen dst) then begin
              Bitset.add seen dst;
              stack := dst :: !stack
            end)
          a.trans.(q);
        loop ()
  in
  loop ();
  seen

let useful a = Bitset.inter (reachable a) (coreachable a)

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)

module Config = struct
  type t = state * Variable.Set.t * Variable.Set.t

  let compare = Stdlib.compare
end

module Config_set = Set.Make (Config)

let soundness a =
  let exception Unsound of string in
  let live = useful a in
  try
    let seen = ref Config_set.empty in
    let rec explore ((q, opened, closed) as config) =
      if (not (Config_set.mem config !seen)) && Bitset.mem live q then begin
        seen := Config_set.add config !seen;
        List.iter
          (fun (label, dst) ->
            if Bitset.mem live dst then
              match label with
              | Eps | Chars _ -> explore (dst, opened, closed)
              | Ref x ->
                  if not (Variable.Set.mem x closed) then
                    raise
                      (Unsound
                         (Printf.sprintf "reference to %s reachable before ⊣%s" (Variable.name x)
                            (Variable.name x)))
                  else explore (dst, opened, closed)
              | Mark (Marker.Open x) ->
                  if Variable.Set.mem x opened then
                    raise (Unsound (Printf.sprintf "⊢%s reachable twice" (Variable.name x)))
                  else explore (dst, Variable.Set.add x opened, closed)
              | Mark (Marker.Close x) ->
                  if not (Variable.Set.mem x opened) then
                    raise
                      (Unsound (Printf.sprintf "⊣%s before ⊢%s" (Variable.name x) (Variable.name x)))
                  else if Variable.Set.mem x closed then
                    raise (Unsound (Printf.sprintf "⊣%s reachable twice" (Variable.name x)))
                  else explore (dst, opened, Variable.Set.add x closed))
          a.trans.(q)
      end
    in
    explore (a.initial, Variable.Set.empty, Variable.Set.empty);
    Config_set.iter
      (fun (q, opened, closed) ->
        if is_final a q && not (Variable.Set.is_empty (Variable.Set.diff opened closed)) then
          raise
            (Unsound
               (Printf.sprintf "⊢%s can reach acceptance unclosed"
                  (Variable.name (Variable.Set.choose (Variable.Set.diff opened closed))))))
      !seen;
    Ok ()
  with Unsound reason -> Error reason

(* ------------------------------------------------------------------ *)
(* Reference boundedness (§3.2)                                        *)

(* Tarjan SCCs restricted to useful states. *)
let sccs a live =
  let index = Array.make (max a.n 1) (-1) in
  let lowlink = Array.make (max a.n 1) 0 in
  let on_stack = Array.make (max a.n 1) false in
  let comp = Array.make (max a.n 1) (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (_, w) ->
        if Bitset.mem live w then
          if index.(w) < 0 then begin
            strongconnect w;
            lowlink.(v) <- min lowlink.(v) lowlink.(w)
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      a.trans.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !ncomp in
      incr ncomp;
      let rec popall () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- c;
            if w <> v then popall ()
      in
      popall ()
    end
  in
  Bitset.iter (fun v -> if index.(v) < 0 then strongconnect v) live;
  (comp, !ncomp)

let reference_bounded a =
  let live = useful a in
  let comp, _ = sccs a live in
  let bounded = ref true in
  Bitset.iter
    (fun q ->
      List.iter
        (fun (label, dst) ->
          match label with
          | Ref _ when Bitset.mem live dst && comp.(q) = comp.(dst) -> bounded := false
          | Ref _ | Eps | Chars _ | Mark _ -> ())
        a.trans.(q))
    live;
  !bounded

let max_ref_counts a =
  if not (reference_bounded a) then
    invalid_arg "Refl_automaton.max_ref_counts: not reference-bounded";
  let live = useful a in
  let comp, ncomp = sccs a live in
  let result = ref Variable.Map.empty in
  let count_for x =
    (* Longest path in the condensation, edge weight 1 on Ref-x arcs.
       Tarjan numbers components in reverse topological order, so
       iterating components 0..ncomp-1 processes successors first. *)
    let best = Array.make (max ncomp 1) min_int in
    Bitset.iter
      (fun q -> if is_final a q then best.(comp.(q)) <- max best.(comp.(q)) 0)
      a.final_set;
    (* Components must be processed in topological order of the DAG;
       Tarjan assigns component ids such that every edge goes from a
       higher id to a lower or equal id is NOT guaranteed in general,
       but for Tarjan it is: comp(u) >= comp(v) for an edge u→v.
       So process component ids ascending (sinks first). *)
    let nodes_by_comp = Array.make (max ncomp 1) [] in
    Bitset.iter (fun q -> nodes_by_comp.(comp.(q)) <- q :: nodes_by_comp.(comp.(q))) live;
    for c = 0 to ncomp - 1 do
      (* Relax intra-component first via iteration to fixpoint (cheap:
         intra edges have weight 0 and share the same best value), then
         outgoing edges. *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun q ->
            List.iter
              (fun (label, dst) ->
                if Bitset.mem live dst then begin
                  let w = match label with Ref y when Variable.equal x y -> 1 | _ -> 0 in
                  let cand =
                    if best.(comp.(dst)) = min_int then min_int else best.(comp.(dst)) + w
                  in
                  if cand > best.(c) && comp.(q) = c then begin
                    best.(c) <- cand;
                    changed := true
                  end
                end)
              a.trans.(q))
          nodes_by_comp.(c)
      done
    done;
    if Bitset.mem live a.initial && best.(comp.(a.initial)) > min_int then
      best.(comp.(a.initial))
    else 0
  in
  Variable.Set.iter (fun x -> result := Variable.Map.add x (count_for x) !result) a.vars;
  !result
