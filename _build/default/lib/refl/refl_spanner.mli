(** Refl-spanners: evaluation, decision problems, and the translations
    to and from core spanners (§3).

    A refl-spanner is given by an automaton accepting a regular
    ref-language; its semantics is ⟦L⟧(D) = { st(𝔡(w)) : w ∈ L,
    e(𝔡(w)) = D }.  Refl-spanners sit strictly between regular and
    core spanners: string equalities are expressed as regular meta
    symbols (references), which keeps most static analysis tractable
    (§3.3) while covering the non-overlapping fragment of core
    spanners (§3.2). *)

open Spanner_core

type t

(** [of_automaton a] wraps a ref-language automaton.
    @raise Invalid_argument if [a] is not sound
    (see {!Refl_automaton.soundness}). *)
val of_automaton : Refl_automaton.t -> t

(** [of_regex r] is [of_automaton (Refl_automaton.of_regex r)]. *)
val of_regex : Refl_regex.t -> t

(** [parse s] is [of_regex (Refl_regex.parse s)]. *)
val parse : string -> t

val automaton : t -> Refl_automaton.t

val vars : t -> Variable.Set.t

(** {1 Evaluation and decision problems (§3.3)} *)

(** [model_check s doc tuple] decides tuple ∈ ⟦s⟧(doc) in time linear
    in |doc| (for a fixed spanner): marker arcs are matched against the
    tuple's boundaries and reference arcs become O(1) factor
    comparisons backed by rolling hashes — the algorithm sketched in
    §3.3. *)
val model_check : t -> string -> Span_tuple.t -> bool

(** [eval s doc] materialises ⟦s⟧(doc).  Worst-case exponential — as
    it must be, since NonEmptiness for refl-spanners is NP-hard
    (§3.3) — but pruned by per-position reachability. *)
val eval : t -> string -> Span_relation.t

(** [nonempty_on s doc] decides ⟦s⟧(doc) ≠ ∅ (NP-hard in general). *)
val nonempty_on : t -> string -> bool

(** [satisfiable s] decides ∃D. ⟦s⟧(D) ≠ ∅ — efficient for
    refl-spanners (plain reachability, §3.3), in contrast to core
    spanners. *)
val satisfiable : t -> bool

(** {1 Translations (§3.2)} *)

(** [to_core s] translates a *reference-bounded* refl-spanner into an
    equivalent core spanner: the i-th reference occurrence of x
    becomes a fresh variable y_{x,i} bound to Σ*, with the selection
    ς=_{x, y_{x,1}, …}; the y's are projected away.
    @raise Invalid_argument if [s] is not reference-bounded (such
    refl-spanners are provably not core spanners, §3.2). *)
val to_core : t -> Core_spanner.t

(** [of_core_formula ~formula ~selections] translates the core spanner
    ς=_{Z1} … ς=_{Zk}(⟦formula⟧) into a refl-spanner, for the fragment
    §3.2 treats constructively: within each class Z_i the bindings must
    be parallel (none nested in another binding, none under iteration)
    and have reference-free, variable-free bodies.  The first binding
    of each class is rebound to the *intersection* of the class's
    content languages (the β/β′ refinement of §3.2) and the remaining
    ones become references.
    @raise Invalid_argument outside the fragment, with a reason. *)
val of_core_formula :
  formula:Regex_formula.t -> selections:Variable.Set.t list -> t

(** {1 Introspection} *)

(** [reference_bounded s] — see {!Refl_automaton.reference_bounded}. *)
val reference_bounded : t -> bool

(** [contains_sound big small] is a *sound but incomplete* containment
    test: when the ref-language of [small] is contained in that of
    [big] (as languages over Σ ∪ markers ∪ references), then
    ⟦small⟧(D) ⊆ ⟦big⟧(D) for every D, because ⟦·⟧ is monotone in the
    ref-language.  A [false] answer is inconclusive (two different
    ref-languages can denote the same spanner).  §3.3 shows full
    Containment decidable only for refl-spanners whose references are
    privately extracted; this language-level check is the practical
    sound fragment and is exact whenever spanners are compared under
    the same reference discipline. *)
val contains_sound : t -> t -> bool
