(** Ref-words: subword-marked words with references (§3.1).

    Besides markers ⊢x / ⊣x, a ref-word may contain the variable x
    itself as a meta symbol — a *reference* denoting a copy of whatever
    factor is extracted in x's span.  The dereference function 𝔡(·)
    substitutes references (in dependency order, as in the worked
    example of §3.1) and yields a plain subword-marked word.

    Well-formedness (checked by {!validate}): each marker at most
    once, ⊢x before ⊣x, and a reference to x occurs only after ⊣x —
    in particular never between x's own markers, which both makes 𝔡
    well-defined and rules out cyclic dependencies. *)

open Spanner_core

type item = Char of char | Mark of Marker.t | Ref of Variable.t

type t = item array

(** [validate vars w] checks well-formedness over the variable set. *)
val validate : Variable.Set.t -> t -> (unit, string) result

(** [deref w] is 𝔡(w): the subword-marked word with all references
    substituted.
    @raise Invalid_argument if [w] is not well-formed. *)
val deref : t -> Ref_word.t

(** [doc w] is e(𝔡(w)). *)
val doc : t -> string

(** [span_tuple w] is st(𝔡(w)). *)
val span_tuple : t -> Span_tuple.t

(** [ref_count w x] is |w|_x, the number of occurrences of the
    reference x (the quantity bounded by reference-boundedness,
    §3.2). *)
val ref_count : t -> Variable.t -> int

(** [of_string s] parses the rendering of {!to_string}: characters,
    markers ⊢x/⊣x, and references [&x]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
