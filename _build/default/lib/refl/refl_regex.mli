(** Regular expressions denoting ref-languages (§3.1).

    The regex-formula syntax extended with references: [&x] matches a
    copy of whatever x's span extracted.  Example (3) of the paper,

    {v  a b* ⊢x (a∨b)* ⊣x (b∨c)* ⊢y x ⊣y b*  v}

    is written [ab*!x{[ab]*}[bc]*!y{&x}b*]. *)

open Spanner_core

type t =
  | Empty
  | Epsilon
  | Chars of Spanner_fa.Charset.t
  | Bind of Variable.t * t
  | Ref of Variable.t
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

(** {1 Smart constructors} *)

val empty : t
val epsilon : t
val chars : Spanner_fa.Charset.t -> t
val char : char -> t
val str : string -> t
val bind : Variable.t -> t -> t
val reference : Variable.t -> t
val concat : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
val opt : t -> t
val concat_list : t list -> t
val alt_list : t list -> t

(** [of_formula f] embeds a plain regex formula (no references). *)
val of_formula : Regex_formula.t -> t

(** [vars r] is the set of variables bound or referenced. *)
val vars : t -> Variable.Set.t

(** [size r] is the number of AST nodes. *)
val size : t -> int

(** [parse s] parses the concrete syntax.
    @raise Spanner_fa.Regex.Parse_error on malformed input. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
