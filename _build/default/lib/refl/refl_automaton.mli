(** Automata accepting regular ref-languages (§3.1).

    NFAs over Σ ∪ markers ∪ references: like vset-automata, with
    additional arcs labelled by a variable x that read the meta symbol
    x (a reference).  Refl-spanners are exactly the spanners described
    by such automata (via 𝔡(·), see {!Refl_word.deref}). *)

open Spanner_core

type state = int

type label =
  | Eps
  | Chars of Spanner_fa.Charset.t
  | Mark of Marker.t
  | Ref of Variable.t

type t

module Builder : sig
  type automaton := t

  type t

  val create : unit -> t
  val add_state : t -> state
  val add : t -> state -> label -> state -> unit
  val finish : t -> initial:state -> finals:state list -> vars:Variable.Set.t -> automaton
end

(** [of_regex r] is the Thompson construction for a refl regex. *)
val of_regex : Refl_regex.t -> t

val size : t -> int
val initial : t -> state
val finals : t -> state list
val is_final : t -> state -> bool
val vars : t -> Variable.Set.t
val iter_transitions : t -> state -> (label -> state -> unit) -> unit

(** [soundness a] checks that every accepted word is a well-formed
    ref-word (marker discipline; references only after the variable's
    close marker).  [Ok ()] certifies the evaluation algorithms'
    assumptions. *)
val soundness : t -> (unit, string) result

(** [reference_bounded a] tests reference-boundedness (§3.2): no
    accepting path traverses a cycle containing a reference arc, so
    some k bounds |w|_x for all accepted w.  Unbounded refl-spanners
    (e.g. ⊢x b+ ⊣x (a+ x)*, [9, Thm 6.1]) are provably not core
    spanners. *)
val reference_bounded : t -> bool

(** [max_ref_counts a] is, per variable, the maximum number of
    reference occurrences over accepting paths (only meaningful when
    {!reference_bounded}; used by the refl→core translation).
    @raise Invalid_argument if unbounded. *)
val max_ref_counts : t -> int Variable.Map.t
