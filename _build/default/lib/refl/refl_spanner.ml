open Spanner_core
module Charset = Spanner_fa.Charset
module Regex = Spanner_fa.Regex
module To_regex = Spanner_fa.To_regex
module Bitset = Spanner_util.Bitset
module Strhash = Spanner_util.Strhash

type t = { automaton : Refl_automaton.t }

let of_automaton a =
  match Refl_automaton.soundness a with
  | Ok () -> { automaton = a }
  | Error reason -> invalid_arg ("Refl_spanner.of_automaton: unsound automaton: " ^ reason)

let of_regex r = of_automaton (Refl_automaton.of_regex r)

let parse s = of_regex (Refl_regex.parse s)

let automaton s = s.automaton

let vars s = Refl_automaton.vars s.automaton

let reference_bounded s = Refl_automaton.reference_bounded s.automaton

(* ------------------------------------------------------------------ *)
(* Model checking (§3.3): linear in |doc|                              *)

let boundary_sets doc tuple =
  let n = String.length doc in
  let sets = Array.make (n + 1) Marker.Set.empty in
  List.iter
    (fun (x, s) ->
      sets.(Span.left s - 1) <- Marker.Set.add (Marker.Open x) sets.(Span.left s - 1);
      sets.(Span.right s - 1) <- Marker.Set.add (Marker.Close x) sets.(Span.right s - 1))
    (Span_tuple.bindings tuple);
  sets

let model_check s doc tuple =
  let a = s.automaton in
  let n = String.length doc in
  if
    List.exists (fun (_, sp) -> not (Span.fits sp doc)) (Span_tuple.bindings tuple)
    || not (Variable.Set.subset (Span_tuple.domain tuple) (Refl_automaton.vars a))
  then false
  else begin
    let sets = boundary_sets doc tuple in
    (* prefix.(b) = number of markers at boundaries < b, for O(1)
       "no markers strictly inside a range" tests on reference jumps. *)
    let prefix = Array.make (n + 2) 0 in
    for b = 0 to n do
      prefix.(b + 1) <- prefix.(b) + Marker.Set.cardinal sets.(b)
    done;
    let markers_between lo hi = if hi <= lo then 0 else prefix.(hi) - prefix.(lo) in
    let hash = Strhash.make doc in
    let domain = Span_tuple.domain tuple in
    let module Key = struct
      type t = int * int * Marker.Set.t (* state, boundary, consumed *)

      let compare = Stdlib.compare
    end in
    let module Key_set = Set.Make (Key) in
    let seen = ref Key_set.empty in
    let accept = ref false in
    let rec explore q b consumed =
      let key = (q, b, consumed) in
      if (not !accept) && not (Key_set.mem key !seen) then begin
        seen := Key_set.add key !seen;
        let ready = Marker.Set.equal consumed sets.(b) in
        if b = n && ready && Refl_automaton.is_final a q then accept := true
        else
          Refl_automaton.iter_transitions a q (fun label dst ->
              match label with
              | Refl_automaton.Eps -> explore dst b consumed
              | Refl_automaton.Mark m ->
                  if Marker.Set.mem m sets.(b) && not (Marker.Set.mem m consumed) then
                    explore dst b (Marker.Set.add m consumed)
              | Refl_automaton.Chars cs ->
                  if ready && b < n && Charset.mem cs doc.[b] then
                    explore dst (b + 1) Marker.Set.empty
              | Refl_automaton.Ref x ->
                  if ready && Variable.Set.mem x domain then begin
                    let sp = Span_tuple.get tuple x in
                    let len = Span.len sp in
                    if
                      b + len <= n
                      && markers_between (b + 1) (b + len) = 0
                      && Strhash.equal_sub hash b (Span.left sp - 1) len
                    then explore dst (b + len) Marker.Set.empty
                  end)
      end
    in
    explore (Refl_automaton.initial a) 0 Marker.Set.empty;
    !accept
  end

(* ------------------------------------------------------------------ *)
(* Materialising evaluation                                            *)

module Eval_config = struct
  type t = int * int * int Variable.Map.t * Span.t Variable.Map.t
  (* state, boundary, open positions, closed spans *)

  let compare = Stdlib.compare
end

module Eval_set = Set.Make (Eval_config)

let eval_general ~stop_at_first s doc =
  let a = s.automaton in
  let n = String.length doc in
  let hash = Strhash.make doc in
  (* Static pruning: only explore states that can reach a final
     state. *)
  let coreach =
    let preds = Array.make (max (Refl_automaton.size a) 1) [] in
    for q = 0 to Refl_automaton.size a - 1 do
      Refl_automaton.iter_transitions a q (fun _ dst -> preds.(dst) <- q :: preds.(dst))
    done;
    let seen = Bitset.create (max (Refl_automaton.size a) 1) in
    let stack = ref [] in
    List.iter
      (fun q ->
        Bitset.add seen q;
        stack := q :: !stack)
      (Refl_automaton.finals a);
    let rec loop () =
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          List.iter
            (fun p ->
              if not (Bitset.mem seen p) then begin
                Bitset.add seen p;
                stack := p :: !stack
              end)
            preds.(q);
          loop ()
    in
    loop ();
    seen
  in
  let result = ref (Span_relation.empty (Refl_automaton.vars a)) in
  let exception Done in
  let seen = ref Eval_set.empty in
  let rec explore q b opens closes =
    let config = (q, b, opens, closes) in
    if Bitset.mem coreach q && not (Eval_set.mem config !seen) then begin
      seen := Eval_set.add config !seen;
      if b = n && Refl_automaton.is_final a q then begin
        let tuple =
          Variable.Map.fold (fun x sp acc -> Span_tuple.bind acc x sp) closes Span_tuple.empty
        in
        result := Span_relation.add !result tuple;
        if stop_at_first then raise Done
      end;
      Refl_automaton.iter_transitions a q (fun label dst ->
          match label with
          | Refl_automaton.Eps -> explore dst b opens closes
          | Refl_automaton.Mark (Marker.Open x) ->
              explore dst b (Variable.Map.add x (b + 1) opens) closes
          | Refl_automaton.Mark (Marker.Close x) -> (
              match Variable.Map.find_opt x opens with
              | Some left ->
                  explore dst b (Variable.Map.remove x opens)
                    (Variable.Map.add x (Span.make left (b + 1)) closes)
              | None -> ())
          | Refl_automaton.Chars cs ->
              if b < n && Charset.mem cs doc.[b] then explore dst (b + 1) opens closes
          | Refl_automaton.Ref x -> (
              match Variable.Map.find_opt x closes with
              | Some sp ->
                  let len = Span.len sp in
                  if b + len <= n && Strhash.equal_sub hash b (Span.left sp - 1) len then
                    explore dst (b + len) opens closes
              | None -> ()))
    end
  in
  (try explore (Refl_automaton.initial a) 0 Variable.Map.empty Variable.Map.empty
   with Done -> ());
  !result

let eval s doc = eval_general ~stop_at_first:false s doc

let nonempty_on s doc = not (Span_relation.is_empty (eval_general ~stop_at_first:true s doc))

let satisfiable s =
  (* Soundness (certified at construction) makes any accepting graph
     path a well-formed ref-word, so plain reachability suffices
     (§3.3). *)
  let a = s.automaton in
  let seen = Bitset.create (max (Refl_automaton.size a) 1) in
  Bitset.add seen (Refl_automaton.initial a);
  let stack = ref [ Refl_automaton.initial a ] in
  let found = ref false in
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        if Refl_automaton.is_final a q then found := true
        else
          Refl_automaton.iter_transitions a q (fun _ dst ->
              if not (Bitset.mem seen dst) then begin
                Bitset.add seen dst;
                stack := dst :: !stack
              end)
  done;
  !found

(* ------------------------------------------------------------------ *)
(* refl → core (§3.2)                                                  *)

let to_core s =
  if not (reference_bounded s) then
    invalid_arg "Refl_spanner.to_core: spanner is not reference-bounded (not a core spanner)";
  let a = s.automaton in
  let b = Vset.Builder.create () in
  for _ = 1 to Refl_automaton.size a do
    ignore (Vset.Builder.add_state b)
  done;
  let copies : Variable.t list Variable.Map.t ref = ref Variable.Map.empty in
  let fresh_copy =
    let counter = ref 0 in
    fun x ->
      incr counter;
      let y = Variable.of_string (Printf.sprintf "__ref_%s_%d" (Variable.name x) !counter) in
      copies :=
        Variable.Map.update x
          (fun prev -> Some (y :: Option.value ~default:[] prev))
          !copies;
      y
  in
  for q = 0 to Refl_automaton.size a - 1 do
    Refl_automaton.iter_transitions a q (fun label dst ->
        match label with
        | Refl_automaton.Eps -> Vset.Builder.add_eps b q dst
        | Refl_automaton.Chars cs -> Vset.Builder.add_chars b q cs dst
        | Refl_automaton.Mark m -> Vset.Builder.add_mark b q m dst
        | Refl_automaton.Ref x ->
            (* q --⊢y--> m --Σ loop--> m --⊣y--> dst *)
            let y = fresh_copy x in
            let m = Vset.Builder.add_state b in
            Vset.Builder.add_mark b q (Marker.Open y) m;
            Vset.Builder.add_chars b m Charset.full m;
            Vset.Builder.add_mark b m (Marker.Close y) dst)
  done;
  let copy_vars =
    Variable.Map.fold
      (fun _ ys acc -> List.fold_left (fun acc y -> Variable.Set.add y acc) acc ys)
      !copies Variable.Set.empty
  in
  let all_vars = Variable.Set.union (Refl_automaton.vars a) copy_vars in
  let vset =
    Vset.Builder.finish b ~initial:(Refl_automaton.initial a)
      ~finals:(Refl_automaton.finals a) ~vars:all_vars
  in
  let selections =
    Variable.Map.fold
      (fun x ys acc ->
        if ys = [] then acc else Variable.Set.of_list (x :: ys) :: acc)
      !copies []
  in
  {
    Core_spanner.automaton = Evset.of_vset vset;
    selections;
    projection = Refl_automaton.vars a;
  }

(* ------------------------------------------------------------------ *)
(* core → refl for the non-overlapping fragment (§3.2)                 *)

let rec formula_to_regex = function
  | Regex_formula.Empty -> Regex.Empty
  | Regex_formula.Epsilon -> Regex.Epsilon
  | Regex_formula.Chars cs -> Regex.Chars cs
  | Regex_formula.Bind (x, _) ->
      invalid_arg
        (Printf.sprintf
           "Refl_spanner.of_core_formula: binding of %s nested inside a selected binding"
           (Variable.name x))
  | Regex_formula.Concat (f, g) -> Regex.concat (formula_to_regex f) (formula_to_regex g)
  | Regex_formula.Alt (f, g) -> Regex.alt (formula_to_regex f) (formula_to_regex g)
  | Regex_formula.Star f -> Regex.star (formula_to_regex f)
  | Regex_formula.Plus f -> Regex.plus (formula_to_regex f)
  | Regex_formula.Opt f -> Regex.opt (formula_to_regex f)

let of_core_formula ~formula ~selections =
  (* Drop degenerate classes; merge classes sharing a variable. *)
  let selections = List.filter (fun z -> Variable.Set.cardinal z >= 2) selections in
  let rec merge acc = function
    | [] -> acc
    | z :: rest ->
        let touching, disjoint =
          List.partition (fun z' -> not (Variable.Set.is_empty (Variable.Set.inter z z'))) acc
        in
        merge (List.fold_left Variable.Set.union z touching :: disjoint) rest
  in
  let classes = merge [] selections in
  let selected =
    List.fold_left Variable.Set.union Variable.Set.empty classes
  in
  (* Fragment check 1: selected variables must always be bound. *)
  (match Regex_formula.functionality formula with
  | Regex_formula.Ill_formed reason -> invalid_arg ("Refl_spanner.of_core_formula: " ^ reason)
  | Regex_formula.Total -> ()
  | Regex_formula.Schemaless ->
      (* Fine as long as the *selected* variables are always bound;
         verified during collection below. *)
      ());
  (* Collect the in-order sequence of selected bindings with their
     content regexes, rejecting nesting/iteration around them. *)
  let order = ref [] in
  let bodies = ref Variable.Map.empty in
  let rec collect ~ctx f =
    match f with
    | Regex_formula.Empty | Regex_formula.Epsilon | Regex_formula.Chars _ -> ()
    | Regex_formula.Bind (x, body) ->
        if Variable.Set.mem x selected then begin
          (match ctx with
          | `Top -> ()
          | `Branch ->
              invalid_arg
                (Printf.sprintf
                   "Refl_spanner.of_core_formula: selected variable %s under alternation or \
                    iteration is outside the supported fragment"
                   (Variable.name x)));
          order := x :: !order;
          bodies := Variable.Map.add x (formula_to_regex body) !bodies
        end
        else collect ~ctx:`Branch body
    | Regex_formula.Concat (f1, f2) ->
        collect ~ctx f1;
        collect ~ctx f2
    | Regex_formula.Alt (f1, f2) ->
        collect ~ctx:`Branch f1;
        collect ~ctx:`Branch f2
    | Regex_formula.Star f1 | Regex_formula.Plus f1 | Regex_formula.Opt f1 ->
        collect ~ctx:`Branch f1
  in
  collect ~ctx:`Top formula;
  let order = List.rev !order in
  List.iter
    (fun z ->
      Variable.Set.iter
        (fun x ->
          if not (Variable.Map.mem x !bodies) then
            invalid_arg
              (Printf.sprintf
                 "Refl_spanner.of_core_formula: selected variable %s is optional or missing"
                 (Variable.name x)))
        z)
    classes;
  (* Per class: the representative is its first binding in document
     order; its content language is refined to the intersection of the
     class (the β/β′ example of §3.2). *)
  let class_of x = List.find_opt (fun z -> Variable.Set.mem x z) classes in
  let position x =
    let rec find i = function
      | [] -> invalid_arg "Refl_spanner.of_core_formula: internal: variable not collected"
      | y :: rest -> if Variable.equal x y then i else find (i + 1) rest
    in
    find 0 order
  in
  let representative z =
    List.fold_left
      (fun best x -> if position x < position best then x else best)
      (Variable.Set.choose z) (Variable.Set.elements z)
  in
  let rec rewrite f =
    match f with
    | Regex_formula.Empty -> Refl_regex.Empty
    | Regex_formula.Epsilon -> Refl_regex.Epsilon
    | Regex_formula.Chars cs -> Refl_regex.Chars cs
    | Regex_formula.Bind (x, body) -> (
        match class_of x with
        | None -> Refl_regex.Bind (x, rewrite body)
        | Some z ->
            let repr = representative z in
            if Variable.equal x repr then begin
              let contents =
                List.map
                  (fun y -> Variable.Map.find y !bodies)
                  (Variable.Set.elements z)
              in
              let refined = To_regex.intersection_regex contents in
              Refl_regex.Bind (x, Refl_regex.of_formula (Regex_formula.of_regex refined))
            end
            else Refl_regex.Bind (x, Refl_regex.Ref repr))
    | Regex_formula.Concat (f1, f2) -> Refl_regex.concat (rewrite f1) (rewrite f2)
    | Regex_formula.Alt (f1, f2) -> Refl_regex.alt (rewrite f1) (rewrite f2)
    | Regex_formula.Star f1 -> Refl_regex.star (rewrite f1)
    | Regex_formula.Plus f1 -> Refl_regex.plus (rewrite f1)
    | Regex_formula.Opt f1 -> Refl_regex.opt (rewrite f1)
  in
  of_regex (rewrite formula)

(* ------------------------------------------------------------------ *)
(* Sound containment via ref-language containment (§3.3 discussion)    *)

let contains_sound big small =
  let a = big.automaton and b = small.automaton in
  let eps_closure auto set =
    let stack = ref (Bitset.elements set) in
    let rec loop () =
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          Refl_automaton.iter_transitions auto q (fun label dst ->
              match label with
              | Refl_automaton.Eps when not (Bitset.mem set dst) ->
                  Bitset.add set dst;
                  stack := dst :: !stack
              | Refl_automaton.Eps | Refl_automaton.Chars _ | Refl_automaton.Mark _
              | Refl_automaton.Ref _ -> ());
          loop ()
    in
    loop ();
    set
  in
  let step_a set atom =
    let next = Bitset.create (Refl_automaton.size a) in
    Bitset.iter
      (fun q ->
        Refl_automaton.iter_transitions a q (fun label dst ->
            match (atom, label) with
            | `Char c, Refl_automaton.Chars cs when Charset.mem cs c -> Bitset.add next dst
            | `Mark m, Refl_automaton.Mark m' when Marker.equal m m' -> Bitset.add next dst
            | `Ref x, Refl_automaton.Ref y when Variable.equal x y -> Bitset.add next dst
            | (`Char _ | `Mark _ | `Ref _), _ -> ()))
      set;
    eps_closure a next
  in
  let has_final set =
    Bitset.fold (fun q acc -> acc || Refl_automaton.is_final a q) set false
  in
  (* explore (state of b, subset of a) pairs *)
  let seen : (int, (int * Bitset.t) list) Hashtbl.t = Hashtbl.create 64 in
  let visited qb set =
    let k = Bitset.hash set lxor (qb * 31) in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen k) in
    if List.exists (fun (q, s) -> q = qb && Bitset.equal s set) bucket then true
    else begin
      Hashtbl.replace seen k ((qb, set) :: bucket);
      false
    end
  in
  let start_a =
    eps_closure a (Bitset.of_list (Refl_automaton.size a) [ Refl_automaton.initial a ])
  in
  let start_b =
    let s = Bitset.of_list (Refl_automaton.size b) [ Refl_automaton.initial b ] in
    let stack = ref (Bitset.elements s) in
    let rec loop () =
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          Refl_automaton.iter_transitions b q (fun label dst ->
              match label with
              | Refl_automaton.Eps when not (Bitset.mem s dst) ->
                  Bitset.add s dst;
                  stack := dst :: !stack
              | _ -> ());
          loop ()
    in
    loop ();
    s
  in
  let ok = ref true in
  let pending = Queue.create () in
  Bitset.iter
    (fun qb -> if not (visited qb start_a) then Queue.add (qb, start_a) pending)
    start_b;
  while !ok && not (Queue.is_empty pending) do
    let qb, set = Queue.take pending in
    if Refl_automaton.is_final b qb && not (has_final set) then ok := false
    else
      Refl_automaton.iter_transitions b qb (fun label dst ->
          let push atom =
            let next = step_a set atom in
            (* close b-side eps from dst *)
            let dsts = Bitset.of_list (Refl_automaton.size b) [ dst ] in
            let stack = ref (Bitset.elements dsts) in
            let rec loop () =
              match !stack with
              | [] -> ()
              | q :: rest ->
                  stack := rest;
                  Refl_automaton.iter_transitions b q (fun l d ->
                      match l with
                      | Refl_automaton.Eps when not (Bitset.mem dsts d) ->
                          Bitset.add dsts d;
                          stack := d :: !stack
                      | _ -> ());
                  loop ()
            in
            loop ();
            Bitset.iter (fun q -> if not (visited q next) then Queue.add (q, next) pending) dsts
          in
          match label with
          | Refl_automaton.Eps -> ()
          | Refl_automaton.Chars cs -> Charset.iter (fun c -> push (`Char c)) cs
          | Refl_automaton.Mark m -> push (`Mark m)
          | Refl_automaton.Ref x -> push (`Ref x))
  done;
  !ok
