lib/refl/refl_word.ml: Array Buffer Format Hashtbl List Marker Printf Ref_word Spanner_core String Variable
