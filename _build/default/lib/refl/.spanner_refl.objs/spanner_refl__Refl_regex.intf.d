lib/refl/refl_regex.mli: Format Regex_formula Spanner_core Spanner_fa Variable
