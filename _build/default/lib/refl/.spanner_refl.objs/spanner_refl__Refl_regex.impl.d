lib/refl/refl_regex.ml: Format List Printf Regex_formula Spanner_core Spanner_fa String Variable
