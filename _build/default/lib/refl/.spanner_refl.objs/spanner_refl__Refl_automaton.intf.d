lib/refl/refl_automaton.mli: Marker Refl_regex Spanner_core Spanner_fa Variable
