lib/refl/refl_automaton.ml: Array List Marker Printf Refl_regex Set Spanner_core Spanner_fa Spanner_util Stdlib Variable
