lib/refl/refl_word.mli: Format Marker Ref_word Span_tuple Spanner_core Variable
