lib/refl/refl_spanner.mli: Core_spanner Refl_automaton Refl_regex Regex_formula Span_relation Span_tuple Spanner_core Variable
