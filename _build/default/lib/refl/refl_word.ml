open Spanner_core

type item = Char of char | Mark of Marker.t | Ref of Variable.t

type t = item array

let validate vars w =
  let exception Bad of string in
  try
    let opened = Hashtbl.create 8 and closed = Hashtbl.create 8 in
    Array.iter
      (fun item ->
        match item with
        | Char _ -> ()
        | Mark m ->
            let x = Marker.variable m in
            if not (Variable.Set.mem x vars) then
              raise (Bad (Printf.sprintf "marker for foreign variable %s" (Variable.name x)));
            if Marker.is_open m then begin
              if Hashtbl.mem opened x then
                raise (Bad (Printf.sprintf "⊢%s occurs twice" (Variable.name x)));
              Hashtbl.add opened x ()
            end
            else begin
              if not (Hashtbl.mem opened x) then
                raise (Bad (Printf.sprintf "⊣%s before ⊢%s" (Variable.name x) (Variable.name x)));
              if Hashtbl.mem closed x then
                raise (Bad (Printf.sprintf "⊣%s occurs twice" (Variable.name x)));
              Hashtbl.add closed x ()
            end
        | Ref x ->
            if not (Variable.Set.mem x vars) then
              raise (Bad (Printf.sprintf "reference to foreign variable %s" (Variable.name x)));
            if not (Hashtbl.mem closed x) then
              raise
                (Bad
                   (Printf.sprintf "reference to %s before ⊣%s" (Variable.name x)
                      (Variable.name x))))
      w;
    Hashtbl.iter
      (fun x () ->
        if not (Hashtbl.mem closed x) then
          raise (Bad (Printf.sprintf "⊢%s never closed" (Variable.name x))))
      opened;
    Ok ()
  with Bad reason -> Error reason

let all_vars w =
  Array.fold_left
    (fun acc item ->
      match item with
      | Char _ -> acc
      | Mark m -> Variable.Set.add (Marker.variable m) acc
      | Ref x -> Variable.Set.add x acc)
    Variable.Set.empty w

(* [resolve w] is a memoised map from each closed variable to the plain
   string its span derives after substituting inner references. *)
let resolver w =
  let bounds = Hashtbl.create 8 in
  Array.iteri
    (fun i item ->
      match item with
      | Mark (Marker.Open x) -> Hashtbl.replace bounds x (i, -1)
      | Mark (Marker.Close x) ->
          let start, _ = Hashtbl.find bounds x in
          Hashtbl.replace bounds x (start, i)
      | Char _ | Ref _ -> ())
    w;
  let memo = Hashtbl.create 8 in
  let rec resolve x =
    match Hashtbl.find_opt memo x with
    | Some (Some content) -> content
    | Some None ->
        invalid_arg
          (Printf.sprintf "Refl_word: cyclic reference through variable %s" (Variable.name x))
    | None -> (
        match Hashtbl.find_opt bounds x with
        | None | Some (_, -1) ->
            invalid_arg
              (Printf.sprintf "Refl_word: reference to unmarked variable %s" (Variable.name x))
        | Some (start, stop) ->
            Hashtbl.replace memo x None;
            let buf = Buffer.create 8 in
            for i = start + 1 to stop - 1 do
              match w.(i) with
              | Char c -> Buffer.add_char buf c
              | Ref y -> Buffer.add_string buf (resolve y)
              | Mark _ -> ()
            done;
            let content = Buffer.contents buf in
            Hashtbl.replace memo x (Some content);
            content)
  in
  resolve

let deref w =
  (match validate (all_vars w) w with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Refl_word.deref: " ^ reason));
  let resolve = resolver w in
  let out = ref [] in
  Array.iter
    (fun item ->
      match item with
      | Char c -> out := Ref_word.Char c :: !out
      | Mark m -> out := Ref_word.Mark m :: !out
      | Ref x -> String.iter (fun c -> out := Ref_word.Char c :: !out) (resolve x))
    w;
  Array.of_list (List.rev !out)

let doc w = Ref_word.doc (deref w)

let span_tuple w = Ref_word.span_tuple (deref w)

let ref_count w x =
  Array.fold_left
    (fun acc item -> match item with Ref y when Variable.equal x y -> acc + 1 | _ -> acc)
    0 w

(* Rendering convention shared with {!Spanner_core.Ref_word}: bare
   names for single-character variables, parenthesised otherwise, so
   the output parses back unambiguously. *)
let pp_name ppf x =
  let name = Variable.name x in
  if String.length name = 1 then Format.pp_print_string ppf name
  else Format.fprintf ppf "(%s)" name

let pp ppf w =
  Array.iter
    (fun item ->
      match item with
      | Char c -> Format.pp_print_char ppf c
      | Mark m -> Format.fprintf ppf "%s%a" (if Marker.is_open m then "⊢" else "⊣") pp_name (Marker.variable m)
      | Ref x -> Format.fprintf ppf "&%a" pp_name x)
    w

let to_string w = Format.asprintf "%a" pp w

let scan_name s i =
  let n = String.length s in
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  if i < n && s.[i] = '(' then begin
    let stop =
      try String.index_from s i ')'
      with Not_found -> invalid_arg "Refl_word.of_string: unterminated variable name"
    in
    (Variable.of_string (String.sub s (i + 1) (stop - i - 1)), stop + 1)
  end
  else if i < n && is_ident s.[i] then (Variable.of_string (String.make 1 s.[i]), i + 1)
  else invalid_arg "Refl_word.of_string: expected a variable name"

let of_string s =
  let items = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if
      !i + 2 < n && s.[!i] = '\xE2' && s.[!i + 1] = '\x8A'
      && (s.[!i + 2] = '\xA2' || s.[!i + 2] = '\xA3')
    then begin
      let open_marker = s.[!i + 2] = '\xA2' in
      let x, next = scan_name s (!i + 3) in
      i := next;
      items := Mark (if open_marker then Marker.Open x else Marker.Close x) :: !items
    end
    else if s.[!i] = '&' then begin
      let x, next = scan_name s (!i + 1) in
      i := next;
      items := Ref x :: !items
    end
    else begin
      items := Char s.[!i] :: !items;
      incr i
    end
  done;
  Array.of_list (List.rev !items)
