(** The decision problems of §2.4, for regular and core spanners.

    {v
    problem          regular spanners        core spanners
    --------------------------------------------------------------
    ModelChecking    O(|D|·|M|)              NP-hard
    NonEmptiness     O(|D|·|M|)              NP-hard
    Satisfiability   O(|M|)                  PSpace-complete
    Hierarchicality  O(poly |M|)             PSpace-complete
    Containment      PSpace-complete         undecidable
    Equivalence      PSpace-complete         undecidable
    v}

    The regular-spanner procedures are complete.  The core-spanner
    procedures are exhaustive (worst-case exponential — exactly as the
    hardness results predict) for the evaluation problems, and bounded
    semi-procedures for the static-analysis problems whose unbounded
    versions are PSpace-hard or undecidable. *)

module Regular : sig
  type spanner = Evset.t

  (** [model_checking s doc t] decides t ∈ ⟦s⟧(doc). *)
  val model_checking : spanner -> string -> Span_tuple.t -> bool

  (** [non_emptiness s doc] decides ⟦s⟧(doc) ≠ ∅ by the ε-interpretation
      of marker arcs (§3.3). *)
  val non_emptiness : spanner -> string -> bool

  (** [satisfiability s] decides ∃D. ⟦s⟧(D) ≠ ∅. *)
  val satisfiability : spanner -> bool

  (** [hierarchicality s] decides that no extracted tuple has strictly
      overlapping spans. *)
  val hierarchicality : spanner -> bool

  (** [containment a b] decides ⟦a⟧(D) ⊆ ⟦b⟧(D) for all D. *)
  val containment : spanner -> spanner -> bool

  (** [equivalence a b] decides ⟦a⟧ = ⟦b⟧. *)
  val equivalence : spanner -> spanner -> bool
end

module Core : sig
  type spanner = Core_spanner.t

  val model_checking : spanner -> string -> Span_tuple.t -> bool

  val non_emptiness : spanner -> string -> bool

  (** Bounded: documents up to [max_len] over the automaton alphabet. *)
  val satisfiability : max_len:int -> spanner -> Core_spanner.bounded

  (** [hierarchicality ~max_len s]: [`Yes] when already the underlying
      regular spanner is hierarchical (selections only remove tuples);
      [`No] when a bounded search finds an overlapping output tuple;
      [`Unknown] otherwise. *)
  val hierarchicality : max_len:int -> spanner -> Core_spanner.bounded

  val containment : max_len:int -> spanner -> spanner -> Core_spanner.bounded

  val equivalence : max_len:int -> spanner -> spanner -> Core_spanner.bounded
end
