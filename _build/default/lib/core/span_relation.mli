(** Span relations: sets of span tuples with a schema.

    An (X, D)-relation is a set of (X, D)-tuples (§1).  The schema [X]
    is carried explicitly; under the classical semantics every tuple is
    total on the schema, under the schemaless semantics ([27], §2.2)
    tuples may leave schema variables unbound. *)

type t

(** [empty vars] is the empty relation with schema [vars]. *)
val empty : Variable.Set.t -> t

(** [schema r] is the relation's variable set X. *)
val schema : t -> Variable.Set.t

(** [add r t] inserts tuple [t] (its domain must be ⊆ schema).
    @raise Invalid_argument if the tuple binds a variable outside the
    schema. *)
val add : t -> Span_tuple.t -> t

(** [of_list vars ts] builds a relation from a list of tuples. *)
val of_list : Variable.Set.t -> Span_tuple.t list -> t

(** [tuples r] is the tuples in canonical ({!Span_tuple.compare})
    order. *)
val tuples : t -> Span_tuple.t list

(** [cardinal r] is the number of tuples. *)
val cardinal : t -> int

(** [mem r t] tests membership. *)
val mem : t -> Span_tuple.t -> bool

(** [is_empty r] tests for zero tuples. *)
val is_empty : t -> bool

(** [is_functional r] tests that every tuple is total on the schema
    (§2.2). *)
val is_functional : t -> bool

(** [equal a b] tests same schema and same tuples. *)
val equal : t -> t -> bool

(** {1 The algebra of §1}

    Union, natural join, projection, and string-equality selection —
    the operations whose closure over regex formulas defines the core
    spanners (§2.3). *)

(** [union a b] has schema [schema a ∪ schema b].  (The classical
    definition requires equal schemas; the schemaless generalisation
    unions them.) *)
val union : t -> t -> t

(** [join a b] is the natural join: pairs of compatible tuples,
    merged.  Schema is the union.  Implemented as a hash join on the
    shared bound variables. *)
val join : t -> t -> t

(** [project vars r] keeps only the columns in [vars]. *)
val project : Variable.Set.t -> t -> t

(** [select_equal doc vars r] is the string-equality selection
    ς=_{vars} over document [doc]. *)
val select_equal : string -> Variable.Set.t -> t -> t

(** [fuse vars ~into r] lifts {!Span_tuple.fuse} to relations
    (§3.2). *)
val fuse : Variable.Set.t -> into:Variable.t -> t -> t

(** [pp ?doc ppf r] prints the relation as a table like Example 1.1;
    when [doc] is given, a content column is printed next to each
    span. *)
val pp : ?doc:string -> Format.formatter -> t -> unit
