(** Spanner variables.

    The set X of variables of the paper (§1).  Variables are interned
    process-wide: the same name always denotes the same variable, so
    spanners built independently can be joined on shared variables, as
    the algebra of §1 requires. *)

type t

(** [of_string name] is the variable named [name].  Names must be
    nonempty and consist of letters, digits and underscores, starting
    with a letter or underscore (so they can appear in the concrete
    regex-formula syntax [!x{...}]).
    @raise Invalid_argument on a malformed name. *)
val of_string : string -> t

(** [name x] is the variable's name. *)
val name : t -> string

(** [id x] is the variable's dense intern id (stable within a
    process). *)
val id : t -> int

(** [compare], [equal], [hash] make [t] usable in functors and
    hashtables.  The order is by intern id, which is the order used to
    canonicalise consecutive markers (§2.2, Option 1). *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [pp ppf x] prints the variable name. *)
val pp : Format.formatter -> t -> unit

(** Sets and maps over variables. *)
module Set : Set.S with type elt = t

module Map : Map.S with type key = t

(** [set_of_list xs] is a convenience constructor. *)
val set_of_list : t list -> Set.t

(** [pp_set ppf s] prints [{x, y, z}]. *)
val pp_set : Format.formatter -> Set.t -> unit
