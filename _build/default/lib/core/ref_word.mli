(** Subword-marked words (a.k.a. ref-words without references).

    A subword-marked word over Σ and X is a word over Σ ∪ markers in
    which, for every variable, ⊢x and ⊣x occur exactly once and in this
    order (§2.1).  Such a word [w] represents the document [e w] (erase
    markers) and the span tuple [st w] (read marker positions as span
    boundaries).  Every spanner is a set of subword-marked words and
    vice versa — this is the declarative formalisation the whole paper
    is built on.

    Two normal forms of §2.2 are supported: the canonical marker order
    (Option 1; {!canonicalize}) and the extended form whose boundary
    factors are marker *sets* (Option 2; {!to_extended}). *)

type item = Char of char | Mark of Marker.t

type t = item array

(** {1 Conversions between (D, t) pairs and marked words} *)

(** [of_doc_tuple doc t] is the canonical subword-marked word
    representing [(doc, t)]: markers of each boundary appear in
    {!Marker.compare} order.
    @raise Invalid_argument if some span of [t] does not fit [doc]. *)
val of_doc_tuple : string -> Span_tuple.t -> t

(** [doc w] is e(w): the document obtained by erasing markers. *)
val doc : t -> string

(** [span_tuple w] is st(w): the tuple encoded by marker positions.
    Requires [w] to be valid (each present variable opened once, then
    closed once); @raise Invalid_argument otherwise. *)
val span_tuple : t -> Span_tuple.t

(** {1 Validity (§2.1) and functionality (§2.2)} *)

type validity =
  | Valid of { functional : bool }
      (** a proper subword-marked word; [functional] iff every variable
          of the given set X occurs *)
  | Invalid of string  (** human-readable reason *)

(** [validate vars w] checks that [w] is a subword-marked word over Σ
    and [vars] — every marker belongs to [vars], occurs at most once,
    and ⊢x precedes ⊣x whenever x occurs (schemaless reading: absent
    variables are allowed and reported through [functional = false]). *)
val validate : Variable.Set.t -> t -> validity

(** {1 Normal forms} *)

(** [canonicalize w] reorders each factor of consecutive markers into
    the canonical order (Option 1 of §2.2).  Represents the same
    (document, tuple) pair. *)
val canonicalize : t -> t

(** [to_extended w] is the extended form (Option 2 of §2.2): the pair
    of the plain document and the array of [|doc| + 1] marker sets, one
    per boundary ([sets.(i)] sits before character [i]). *)
val to_extended : t -> string * Marker.Set.t array

(** [of_extended doc sets] rebuilds a canonical marked word.
    @raise Invalid_argument if [Array.length sets <> |doc| + 1]. *)
val of_extended : string -> Marker.Set.t array -> t

(** {1 Misc} *)

(** [equal a b] is item-wise equality. *)
val equal : t -> t -> bool

(** [represents_same a b] tests that [a] and [b] encode the same
    (document, tuple) pair — equality modulo consecutive marker
    order. *)
val represents_same : t -> t -> bool

(** [of_string s] parses the rendering produced by {!to_string}:
    plain characters plus marker escapes [⊢x] / [⊣x] for
    single-character variable names and [⊢(name)] / [⊣(name)] for
    longer ones (parentheses keep the rendering unambiguous). *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
