(** Regex formulas (the class RGX of [9], §1/§2.2).

    Regular expressions over Σ in which proper sub-expressions may be
    enclosed in variable bindings ⊢x … ⊣x.  By construction the
    bindings of a regex formula are hierarchical: bracket pairs for
    different variables are nested or disjoint, which is why RGX
    describes strictly fewer spanners than vset-automata but the same
    class once closed under {∪, ⋈, π} (§2.2).

    Concrete syntax: the classical regex syntax of
    {!Spanner_fa.Regex.parse} extended with

    {v  !x{ α }     binding of variable x around sub-formula α  v}

    For instance Example 1.1 of the paper is
    [!x{[ab]*}!y{b}!z{[ab]*}]. *)

type t =
  | Empty
  | Epsilon
  | Chars of Spanner_fa.Charset.t
  | Bind of Variable.t * t  (** ⊢x α ⊣x *)
  | Concat of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

(** {1 Smart constructors} *)

val empty : t
val epsilon : t
val chars : Spanner_fa.Charset.t -> t
val char : char -> t
val str : string -> t
val bind : Variable.t -> t -> t
val concat : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
val opt : t -> t
val concat_list : t list -> t
val alt_list : t list -> t

(** [of_regex r] embeds a plain regex. *)
val of_regex : Spanner_fa.Regex.t -> t

(** {1 Analysis} *)

(** [vars f] is the set of variables bound anywhere in [f]. *)
val vars : t -> Variable.Set.t

(** Functionality classification of a formula (§2.2):
    - [Total]: on every word of the formula's language, every variable
      of [vars f] is marked exactly once — the spanner is functional.
    - [Schemaless]: every variable is marked at most once, but some
      alternative or optional branch can omit one — meaningful under
      the schemaless semantics of [27].
    - [Ill_formed reason]: some derivation could mark a variable twice
      (a binding under [*]/[+], a variable bound on both sides of a
      concatenation, or nested bindings of the same variable) — such an
      expression does not denote a subword-marked language. *)
type functionality = Total | Schemaless | Ill_formed of string

val functionality : t -> functionality

(** [is_well_formed f] is [functionality f <> Ill_formed _]. *)
val is_well_formed : t -> bool

(** [size f] is the number of AST nodes. *)
val size : t -> int

(** {1 Parsing and printing} *)

(** [parse s] parses the concrete syntax above.
    @raise Spanner_fa.Regex.Parse_error on malformed input. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
