module Interner = Spanner_util.Interner

type t = int

let registry = Interner.create ()

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let of_string name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Variable.of_string: malformed name %S" name);
  Interner.intern registry name

let name x = Interner.name registry x

let id x = x

let compare = Int.compare

let equal = Int.equal

let hash x = x

let pp ppf x = Format.pp_print_string ppf (name x)

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list xs = Set.of_list xs

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
    (Set.elements s)
