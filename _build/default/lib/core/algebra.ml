type t =
  | Formula of Regex_formula.t
  | Automaton of Evset.t
  | Union of t * t
  | Join of t * t
  | Project of Variable.Set.t * t
  | Select of Variable.Set.t * t

let formula s = Formula (Regex_formula.parse s)

let rec schema = function
  | Formula f -> Regex_formula.vars f
  | Automaton a -> Evset.vars a
  | Union (a, b) | Join (a, b) -> Variable.Set.union (schema a) (schema b)
  | Project (vars, e) -> Variable.Set.inter vars (schema e)
  | Select (_, e) -> schema e

let rec is_regular = function
  | Formula _ | Automaton _ -> true
  | Union (a, b) | Join (a, b) -> is_regular a && is_regular b
  | Project (_, e) -> is_regular e
  | Select _ -> false

let rec compile_regular = function
  | Formula f -> Evset.of_formula f
  | Automaton a -> a
  | Union (a, b) -> Evset.union (compile_regular a) (compile_regular b)
  | Join (a, b) -> Evset.join (compile_regular a) (compile_regular b)
  | Project (vars, e) -> Evset.project vars (compile_regular e)
  | Select _ -> invalid_arg "Algebra.compile_regular: expression contains a string-equality selection"

let rec eval e doc =
  match e with
  | Formula f -> Evset.eval (Evset.of_formula f) doc
  | Automaton a -> Evset.eval a doc
  | Union (a, b) -> Span_relation.union (eval a doc) (eval b doc)
  | Join (a, b) -> Span_relation.join (eval a doc) (eval b doc)
  | Project (vars, e) -> Span_relation.project vars (eval e doc)
  | Select (vars, e) -> Span_relation.select_equal doc vars (eval e doc)

let rec size = function
  | Formula _ | Automaton _ -> 1
  | Union (a, b) | Join (a, b) -> 1 + size a + size b
  | Project (_, e) | Select (_, e) -> 1 + size e

let rec pp ppf = function
  | Formula f -> Format.fprintf ppf "⟦%a⟧" Regex_formula.pp f
  | Automaton a -> Format.fprintf ppf "⟦automaton:%d states⟧" (Evset.size a)
  | Union (a, b) -> Format.fprintf ppf "(%a ∪ %a)" pp a pp b
  | Join (a, b) -> Format.fprintf ppf "(%a ⋈ %a)" pp a pp b
  | Project (vars, e) -> Format.fprintf ppf "π_%a(%a)" Variable.pp_set vars pp e
  | Select (vars, e) -> Format.fprintf ppf "ς=_%a(%a)" Variable.pp_set vars pp e
