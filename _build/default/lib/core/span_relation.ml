module Tuple_set = Set.Make (Span_tuple)

type t = { schema : Variable.Set.t; tuples : Tuple_set.t }

let empty schema = { schema; tuples = Tuple_set.empty }

let schema r = r.schema

let add r t =
  if not (Variable.Set.subset (Span_tuple.domain t) r.schema) then
    invalid_arg "Span_relation.add: tuple binds a variable outside the schema";
  { r with tuples = Tuple_set.add t r.tuples }

let of_list schema ts = List.fold_left add (empty schema) ts

let tuples r = Tuple_set.elements r.tuples

let cardinal r = Tuple_set.cardinal r.tuples

let mem r t = Tuple_set.mem t r.tuples

let is_empty r = Tuple_set.is_empty r.tuples

let is_functional r =
  Tuple_set.for_all (fun t -> Span_tuple.is_functional_on t r.schema) r.tuples

let equal a b = Variable.Set.equal a.schema b.schema && Tuple_set.equal a.tuples b.tuples

let union a b =
  { schema = Variable.Set.union a.schema b.schema; tuples = Tuple_set.union a.tuples b.tuples }

let join a b =
  let shared = Variable.Set.inter a.schema b.schema in
  let schema = Variable.Set.union a.schema b.schema in
  (* Hash join: key each tuple of [b] by its bindings restricted to the
     shared variables that it actually binds... compatibility is subtler
     under partial tuples (an unbound shared variable matches anything),
     so bucket only on *fully bound* shared keys and fall back to a scan
     for tuples leaving some shared variable unbound. *)
  let fully_bound t = Variable.Set.for_all (fun x -> Span_tuple.find t x <> None) shared in
  let key t = List.map (fun x -> Span_tuple.get t x) (Variable.Set.elements shared) in
  let buckets = Hashtbl.create 64 in
  let partial_b = ref [] in
  Tuple_set.iter
    (fun t ->
      if fully_bound t then
        let k = key t in
        Hashtbl.replace buckets k (t :: Option.value ~default:[] (Hashtbl.find_opt buckets k))
      else partial_b := t :: !partial_b)
    b.tuples;
  let out = ref Tuple_set.empty in
  let emit ta tb =
    if Span_tuple.compatible ta tb then out := Tuple_set.add (Span_tuple.merge ta tb) !out
  in
  Tuple_set.iter
    (fun ta ->
      (if fully_bound ta then
         match Hashtbl.find_opt buckets (key ta) with
         | Some matches -> List.iter (emit ta) matches
         | None -> ()
       else
         (* ta leaves a shared variable unbound: it may join with any
            bucket, so scan. *)
         Hashtbl.iter (fun _ ts -> List.iter (emit ta) ts) buckets);
      List.iter (emit ta) !partial_b)
    a.tuples;
  { schema; tuples = !out }

let project vars r =
  {
    schema = Variable.Set.inter vars r.schema;
    tuples = Tuple_set.map (Span_tuple.project vars) r.tuples;
  }

let select_equal doc vars r =
  { r with tuples = Tuple_set.filter (fun t -> Span_tuple.satisfies_equality t doc vars) r.tuples }

let fuse vars ~into r =
  let schema = Variable.Set.add into (Variable.Set.diff r.schema vars) in
  { schema; tuples = Tuple_set.map (Span_tuple.fuse vars ~into) r.tuples }

let pp ?doc ppf r =
  let vars = Variable.Set.elements r.schema in
  let cell t x =
    match Span_tuple.find t x with
    | None -> "⊥"
    | Some s -> (
        match doc with
        | None -> Span.to_string s
        | Some d -> Printf.sprintf "%s %S" (Span.to_string s) (Span.content s d))
  in
  let header = List.map (fun x -> Variable.name x) vars in
  let rows = List.map (fun t -> List.map (cell t) vars) (tuples r) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row cells =
    Format.fprintf ppf "| %s |@\n"
      (String.concat " | " (List.map2 pad cells widths))
  in
  print_row header;
  Format.fprintf ppf "|%s|@\n"
    (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows
