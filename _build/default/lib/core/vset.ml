module Charset = Spanner_fa.Charset
module Bitset = Spanner_util.Bitset
module Vec = Spanner_util.Vec

type state = int

type label = Eps | Chars of Charset.t | Mark of Marker.t

type t = {
  n : int;
  initial : state;
  final_set : Bitset.t;
  trans : (label * state) list array;
  vars : Variable.Set.t;
}

module Builder = struct
  type t = { mutable count : int; btrans : (label * state) list Vec.t }

  let create () = { count = 0; btrans = Vec.create () }

  let add_state b =
    ignore (Vec.push b.btrans []);
    let q = b.count in
    b.count <- b.count + 1;
    q

  let add_label b src label dst = Vec.set b.btrans src ((label, dst) :: Vec.get b.btrans src)

  let add_eps b src dst = add_label b src Eps dst

  let add_chars b src cs dst = if not (Charset.is_empty cs) then add_label b src (Chars cs) dst

  let add_char b src c dst = add_chars b src (Charset.singleton c) dst

  let add_mark b src m dst = add_label b src (Mark m) dst

  let finish b ~initial ~finals ~vars =
    let used = ref Variable.Set.empty in
    Vec.iter
      (List.iter (fun (label, _) ->
           match label with
           | Mark m -> used := Variable.Set.add (Marker.variable m) !used
           | Eps | Chars _ -> ()))
      b.btrans;
    if not (Variable.Set.subset !used vars) then
      invalid_arg "Vset.Builder.finish: a marker arc uses a variable outside ~vars";
    let final_set = Bitset.create (max b.count 1) in
    List.iter (Bitset.add final_set) finals;
    { n = b.count; initial; final_set; trans = Vec.to_array b.btrans; vars }
end

let size v = v.n

let initial v = v.initial

let finals v = Bitset.elements v.final_set

let is_final v q = Bitset.mem v.final_set q

let vars v = v.vars

let iter_transitions v q f = List.iter (fun (label, dst) -> f label dst) v.trans.(q)

(* ------------------------------------------------------------------ *)
(* Compilation from regex formulas                                     *)

let of_formula formula =
  (match Regex_formula.functionality formula with
  | Ill_formed reason -> invalid_arg ("Vset.of_formula: ill-formed formula: " ^ reason)
  | Total | Schemaless -> ());
  let b = Builder.create () in
  let rec build f =
    let entry = Builder.add_state b and exit_ = Builder.add_state b in
    (match f with
    | Regex_formula.Empty -> ()
    | Regex_formula.Epsilon -> Builder.add_eps b entry exit_
    | Regex_formula.Chars cs -> Builder.add_chars b entry cs exit_
    | Regex_formula.Bind (x, inner) ->
        let ei, xi = build inner in
        Builder.add_mark b entry (Marker.Open x) ei;
        Builder.add_mark b xi (Marker.Close x) exit_
    | Regex_formula.Concat (f1, f2) ->
        let e1, x1 = build f1 and e2, x2 = build f2 in
        Builder.add_eps b entry e1;
        Builder.add_eps b x1 e2;
        Builder.add_eps b x2 exit_
    | Regex_formula.Alt (f1, f2) ->
        let e1, x1 = build f1 and e2, x2 = build f2 in
        Builder.add_eps b entry e1;
        Builder.add_eps b entry e2;
        Builder.add_eps b x1 exit_;
        Builder.add_eps b x2 exit_
    | Regex_formula.Star inner ->
        let ei, xi = build inner in
        Builder.add_eps b entry exit_;
        Builder.add_eps b entry ei;
        Builder.add_eps b xi ei;
        Builder.add_eps b xi exit_
    | Regex_formula.Plus inner ->
        let ei, xi = build inner in
        Builder.add_eps b entry ei;
        Builder.add_eps b xi ei;
        Builder.add_eps b xi exit_
    | Regex_formula.Opt inner ->
        let ei, xi = build inner in
        Builder.add_eps b entry exit_;
        Builder.add_eps b entry ei;
        Builder.add_eps b xi exit_);
    (entry, exit_)
  in
  let entry, exit_ = build formula in
  Builder.finish b ~initial:entry ~finals:[ exit_ ] ~vars:(Regex_formula.vars formula)

let of_regex r = of_formula (Regex_formula.of_regex r)

(* ------------------------------------------------------------------ *)
(* Language operations                                                 *)

let embed b v =
  let offset =
    let o = ref None in
    for _ = 1 to v.n do
      let q = Builder.add_state b in
      if !o = None then o := Some q
    done;
    Option.value ~default:0 !o
  in
  Array.iteri
    (fun q arcs ->
      List.iter
        (fun (label, dst) -> Builder.add_label b (q + offset) label (dst + offset))
        arcs)
    v.trans;
  offset

let union a c =
  let b = Builder.create () in
  let start = Builder.add_state b in
  let oa = embed b a and oc = embed b c in
  Builder.add_eps b start (a.initial + oa);
  Builder.add_eps b start (c.initial + oc);
  let finals = List.map (( + ) oa) (finals a) @ List.map (( + ) oc) (finals c) in
  Builder.finish b ~initial:start ~finals ~vars:(Variable.Set.union a.vars c.vars)

let project keep v =
  let keep = Variable.Set.inter keep v.vars in
  let trans =
    Array.map
      (List.map (fun (label, dst) ->
           match label with
           | Mark m when not (Variable.Set.mem (Marker.variable m) keep) -> (Eps, dst)
           | Eps | Chars _ | Mark _ -> (label, dst)))
      v.trans
  in
  { v with trans; vars = keep }

(* ------------------------------------------------------------------ *)
(* Direct membership over the extended alphabet                        *)

let accepts_marked v w =
  let eps_closure set =
    let stack = ref (Bitset.elements set) in
    let rec loop () =
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          List.iter
            (fun (label, dst) ->
              if label = Eps && not (Bitset.mem set dst) then begin
                Bitset.add set dst;
                stack := dst :: !stack
              end)
            v.trans.(q);
          loop ()
    in
    loop ();
    set
  in
  let current = ref (eps_closure (Bitset.of_list v.n [ v.initial ])) in
  Array.iter
    (fun item ->
      let next = Bitset.create v.n in
      Bitset.iter
        (fun q ->
          List.iter
            (fun (label, dst) ->
              match (item, label) with
              | Ref_word.Char c, Chars cs when Charset.mem cs c -> Bitset.add next dst
              | Ref_word.Mark m, Mark m' when Marker.equal m m' -> Bitset.add next dst
              | (Ref_word.Char _ | Ref_word.Mark _), (Eps | Chars _ | Mark _) -> ())
            v.trans.(q))
        !current;
      current := eps_closure next)
    w;
  Bitset.fold (fun q acc -> acc || is_final v q) !current false

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)

module Config = struct
  type t = state * Variable.Set.t * Variable.Set.t (* state, opened, closed *)

  let compare = Stdlib.compare
end

module Config_set = Set.Make (Config)

let soundness v =
  let exception Unsound of string in
  (* Explore (state, opened, closed) configurations; marker discipline
     violations reachable on a path to acceptance make the automaton
     unsound.  We do not trim first: a violation on a non-accepting
     path is harmless, so acceptance-reachability is checked on the
     fly by only reporting violations that are co-reachable.  For
     simplicity we over-approximate co-reachability by plain graph
     co-reachability (exact for violation *transitions* because the
     suffix discipline can only forbid, never enable). *)
  let coreach =
    (* states from which a final state is reachable via any arcs *)
    let preds = Array.make (max v.n 1) [] in
    Array.iteri
      (fun q arcs -> List.iter (fun (_, dst) -> preds.(dst) <- q :: preds.(dst)) arcs)
      v.trans;
    let seen = Bitset.create (max v.n 1) in
    let stack = ref [] in
    Bitset.iter
      (fun q ->
        Bitset.add seen q;
        stack := q :: !stack)
      v.final_set;
    let rec loop () =
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          List.iter
            (fun p ->
              if not (Bitset.mem seen p) then begin
                Bitset.add seen p;
                stack := p :: !stack
              end)
            preds.(q);
          loop ()
    in
    loop ();
    seen
  in
  try
    let seen = ref Config_set.empty in
    let all_functional = ref true in
    let rec explore ((q, opened, closed) as config) =
      if (not (Config_set.mem config !seen)) && Bitset.mem coreach q then begin
        seen := Config_set.add config !seen;
        if is_final v q then
          if not (Variable.Set.equal closed v.vars) then all_functional := false;
        List.iter
          (fun (label, dst) ->
            match label with
            | Eps | Chars _ -> explore (dst, opened, closed)
            | Mark (Marker.Open x) when Bitset.mem coreach dst ->
                if Variable.Set.mem x opened then
                  raise
                    (Unsound (Printf.sprintf "⊢%s reachable twice on a path" (Variable.name x)))
                else explore (dst, Variable.Set.add x opened, closed)
            | Mark (Marker.Close x) when Bitset.mem coreach dst ->
                if not (Variable.Set.mem x opened) then
                  raise (Unsound (Printf.sprintf "⊣%s before ⊢%s" (Variable.name x) (Variable.name x)))
                else if Variable.Set.mem x closed then
                  raise
                    (Unsound (Printf.sprintf "⊣%s reachable twice on a path" (Variable.name x)))
                else explore (dst, opened, Variable.Set.add x closed)
            | Mark _ -> ())
          v.trans.(q)
      end
    in
    explore (v.initial, Variable.Set.empty, Variable.Set.empty);
    (* A final configuration with an open-but-unclosed variable is also
       unsound (the word has ⊢x but no ⊣x). *)
    Config_set.iter
      (fun (q, opened, closed) ->
        if is_final v q && not (Variable.Set.is_empty (Variable.Set.diff opened closed)) then
          raise
            (Unsound
               (Printf.sprintf "⊢%s can reach acceptance unclosed"
                  (Variable.name (Variable.Set.choose (Variable.Set.diff opened closed))))))
      !seen;
    Ok !all_functional
  with Unsound reason -> Error reason
