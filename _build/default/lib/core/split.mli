(** Split-correctness ([7], "Split-Correctness in Information
    Extraction", cited in §1).

    Large documents are processed by *splitting* them (into lines,
    paragraphs, records) and running the spanner on each split.  A
    {e splitter} is a spanner with a single variable: its tuples are
    the split regions.  A spanner S is {e split-correct} w.r.t. a
    splitter P if evaluating S inside every split (and shifting spans
    back) yields exactly S(D) on every document D:

    {v  S(D)  =  ⋃ {shift(S(D_split), split) : split ∈ P(D)}  v}

    For regular S and P this is decidable: the right-hand side is again
    a regular spanner — the {!compose}d automaton simulates P on the
    whole document and S inside the split region — so split-correctness
    reduces to spanner {e equivalence} (§2.4). *)

open Spanner_fa

type splitter = private { spanner : Evset.t; var : Variable.t }

(** [splitter e x] wraps a spanner as a splitter.
    @raise Invalid_argument unless [Evset.vars e = {x}]. *)
val splitter : Evset.t -> Variable.t -> splitter

(** [segments_splitter ~sep] splits at every maximal [sep]-free block
    over the byte alphabet — the "lines" splitter for separator
    character [sep]. *)
val segments_splitter : sep:char -> splitter

(** [windows_splitter ~alphabet ~size] splits into all length-[size]
    windows over [alphabet] — the sliding-window splitter (a splitter
    that is rarely split-correct, useful as a negative example). *)
val windows_splitter : alphabet:Charset.t -> size:int -> splitter

(** [splits p doc] is the list of split spans of [doc]. *)
val splits : splitter -> string -> Span.t list

(** [split_eval p s doc] evaluates [s] on every split of [doc] and
    shifts the results back into [doc]'s coordinates — the distributed
    evaluation strategy. *)
val split_eval : splitter -> Evset.t -> string -> Span_relation.t

(** [compose p s] is the regular spanner denoting the right-hand side
    above: D ↦ ⋃ {shift(S(D_split), split)} — P simulated on the whole
    document, S inside the region.  The splitter's variable is not part
    of the output schema. *)
val compose : splitter -> Evset.t -> Evset.t

(** [split_correct_on p s doc] checks the equation on one document
    (runtime validation). *)
val split_correct_on : splitter -> Evset.t -> string -> bool

(** [split_correct p s] decides split-correctness on *all* documents,
    via {!compose} and spanner equivalence (§2.4) — the [7] decision
    problem for regular spanners. *)
val split_correct : splitter -> Evset.t -> bool
