(** Vset-automata: NFAs over Σ ∪ markers.

    The automaton model of [9] for regular spanners (§1, §2.1): a
    finite automaton that, besides letters, may read marker symbols
    ⊢x / ⊣x on its arcs.  Its language, when restricted to valid
    subword-marked words, denotes a spanner.

    This module provides the construction surface — compilation from
    regex formulas, Thompson-style combinators, soundness checking —
    while all evaluation goes through the extended form {!Evset}
    (§2.2, Option 2), which resolves the consecutive-marker-order
    ambiguity discussed at the end of §2.2. *)

type state = int

type label = Eps | Chars of Spanner_fa.Charset.t | Mark of Marker.t

type t

(** {1 Construction} *)

module Builder : sig
  type vset := t

  type t

  val create : unit -> t
  val add_state : t -> state
  val add_eps : t -> state -> state -> unit
  val add_chars : t -> state -> Spanner_fa.Charset.t -> state -> unit
  val add_char : t -> state -> char -> state -> unit
  val add_mark : t -> state -> Marker.t -> state -> unit

  (** [finish b ~initial ~finals ~vars] freezes the builder; [vars]
      must cover every variable used in a marker. *)
  val finish : t -> initial:state -> finals:state list -> vars:Variable.Set.t -> vset
end

(** [of_formula f] compiles a regex formula by the Thompson
    construction, turning each binding ⊢x…⊣x into a pair of marker
    arcs.
    @raise Invalid_argument if [f] is ill-formed
    (see {!Regex_formula.functionality}). *)
val of_formula : Regex_formula.t -> t

(** [of_regex r] is a vset-automaton with no variables. *)
val of_regex : Spanner_fa.Regex.t -> t

(** {1 Accessors} *)

val size : t -> int
val initial : t -> state
val finals : t -> state list
val is_final : t -> state -> bool
val vars : t -> Variable.Set.t

(** [iter_transitions v q f] applies [f label dst] to every arc out of
    [q]. *)
val iter_transitions : t -> state -> (label -> state -> unit) -> unit

(** {1 Language-level operations} *)

(** [union a b] denotes the spanner D ↦ a(D) ∪ b(D). *)
val union : t -> t -> t

(** [project vars v] denotes π_vars ∘ ⟦v⟧: marker arcs of projected-out
    variables become ε-arcs. *)
val project : Variable.Set.t -> t -> t

(** [accepts_marked v w] tests whether the exact word [w] (markers in
    the given order) is in L(v) — plain NFA membership over the
    extended alphabet. *)
val accepts_marked : t -> Ref_word.t -> bool

(** {1 Soundness}

    A vset-automaton is *sound* if every word of its language is a
    valid subword-marked word — the implicit well-formedness assumption
    of §2.1.  Compilation from regex formulas always yields sound
    automata; hand-built automata can be checked. *)

(** [soundness v] is [Ok functional] where [functional] reports whether
    additionally every accepted word marks *all* variables (classical
    total semantics), or [Error reason]. *)
val soundness : t -> (bool, string) result
