(* line_starts.(k) = 1-based document position of the first character
   of line k+1; line_starts.(0) = 1. *)
type t = { line_starts : int array; doc_len : int }

let make doc =
  let starts = ref [ 1 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 2) :: !starts) doc;
  { line_starts = Array.of_list (List.rev !starts); doc_len = String.length doc }

type position = { line : int; column : int }

let position_of idx i =
  if i < 1 || i > idx.doc_len + 1 then
    invalid_arg (Printf.sprintf "Location.position_of: position %d out of range" i);
  (* binary search: greatest line start ≤ i *)
  let lo = ref 0 and hi = ref (Array.length idx.line_starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if idx.line_starts.(mid) <= i then lo := mid else hi := mid - 1
  done;
  { line = !lo + 1; column = i - idx.line_starts.(!lo) + 1 }

let range_of idx span = (position_of idx (Span.left span), position_of idx (Span.right span))

let pp_position ppf p = Format.fprintf ppf "%d:%d" p.line p.column

let pp_range idx ppf span =
  let start, stop = range_of idx span in
  Format.fprintf ppf "%a-%a" pp_position start pp_position stop

let line_count idx = Array.length idx.line_starts
