(** The spanner algebra of [9] (§1): expressions over primitive
    spanners built from union ∪, natural join ⋈, projection π and
    string-equality selection ς=.

    Expressions without [Select] denote *regular* spanners and can be
    compiled to a single extended vset-automaton ({!compile_regular} —
    the closure results of §2.2).  Expressions with [Select] denote
    *core* spanners; they are evaluated here by materialisation, and
    compiled to the simplified normal form by {!Core_spanner} (§2.3). *)

type t =
  | Formula of Regex_formula.t  (** a primitive RGX spanner *)
  | Automaton of Evset.t  (** a primitive automaton spanner *)
  | Union of t * t
  | Join of t * t
  | Project of Variable.Set.t * t
  | Select of Variable.Set.t * t  (** ς=_Z *)

(** [formula s] parses a regex formula into a primitive expression. *)
val formula : string -> t

(** [schema e] is the expression's output variable set. *)
val schema : t -> Variable.Set.t

(** [is_regular e] tests for the absence of [Select]. *)
val is_regular : t -> bool

(** [compile_regular e] compiles a [Select]-free expression to one
    automaton.
    @raise Invalid_argument if [e] contains [Select]. *)
val compile_regular : t -> Evset.t

(** [eval e doc] evaluates by structural recursion over materialised
    relations — the textbook semantics, used as the oracle for
    {!Core_spanner.simplify}. *)
val eval : t -> string -> Span_relation.t

(** [size e] is the number of algebra nodes. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
