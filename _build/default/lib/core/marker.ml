type t = Open of Variable.t | Close of Variable.t

let variable = function Open x | Close x -> x

let is_open = function Open _ -> true | Close _ -> false

let rank = function Open x -> (0, Variable.id x) | Close x -> (1, Variable.id x)

let compare a b = Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash m = Hashtbl.hash (rank m)

let all_markers vars =
  let opens = List.map (fun x -> Open x) (Variable.Set.elements vars) in
  let closes = List.map (fun x -> Close x) (Variable.Set.elements vars) in
  opens @ closes

let pp ppf = function
  | Open x -> Format.fprintf ppf "⊢%a" Variable.pp x
  | Close x -> Format.fprintf ppf "⊣%a" Variable.pp x

let to_string m = Format.asprintf "%a" pp m

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
    (Set.elements s)

let set_variables s = Set.fold (fun m acc -> Variable.Set.add (variable m) acc) s Variable.Set.empty
