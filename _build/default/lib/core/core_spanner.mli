(** Core spanners and the core-simplification lemma (§2.3).

    The core spanners are [RGX]^{∪,⋈,π,ς=} — the closure of the
    primitive regex-formula spanners under the full algebra.  The
    core-simplification lemma states that every core spanner can be
    written as

    {v  π_Y ( ς=_{Z1} … ς=_{Zk} ( ⟦M⟧ ) )  v}

    for a single regular spanner M: in terms of expressive power, the
    string-equality selection is the *only* non-regular feature.
    {!simplify} implements the lemma constructively under the
    schemaless semantics, for which it holds verbatim ([38] + [27], as
    discussed in §2.3).

    Evaluation of the simplified form makes the complexity difference
    of §2.4 concrete: the automaton part is evaluated by the efficient
    machinery of {!Enumerate}, and the selections are then a filter —
    whose satisfying assignment may require exploring exponentially
    many automaton tuples, exactly the NP-hardness mechanism of the
    pattern-matching-with-variables encoding shown in §2.4. *)

type t = {
  automaton : Evset.t;  (** the regular spanner M *)
  selections : Variable.Set.t list;  (** Z₁ … Z_k *)
  projection : Variable.Set.t;  (** Y *)
}

(** [simplify e] is the core-simplification of an algebra expression.
    The result's visible schema equals [Algebra.schema e]; auxiliary
    variables introduced by the construction are hidden behind the
    projection. *)
val simplify : Algebra.t -> t

(** [of_regular e] wraps a plain regular spanner (no selections). *)
val of_regular : Evset.t -> t

(** [schema s] is the visible schema Y. *)
val schema : t -> Variable.Set.t

(** [select vars s] appends a string-equality selection on visible
    variables.
    @raise Invalid_argument if [vars ⊄ schema s]. *)
val select : Variable.Set.t -> t -> t

(** [project vars s] restricts the visible schema. *)
val project : Variable.Set.t -> t -> t

(** {1 Evaluation (§2.4 complexities)} *)

(** [eval s doc] materialises the result relation: enumerate the
    automaton's tuples, filter by the selections (O(1) factor
    comparisons via rolling hashes), project, deduplicate. *)
val eval : t -> string -> Span_relation.t

(** [eval_algebra e doc] is [eval (simplify e) doc]. *)
val eval_algebra : Algebra.t -> string -> Span_relation.t

(** [nonempty_on s doc] decides ⟦s⟧(doc) ≠ ∅ lazily (first satisfying
    automaton tuple wins).  NP-hard in general (§2.4): worst case
    explores every automaton tuple. *)
val nonempty_on : t -> string -> bool

(** [model_check s doc t] decides t ∈ ⟦s⟧(doc) (ModelChecking, NP-hard
    for core spanners, §2.4). *)
val model_check : t -> string -> Span_tuple.t -> bool

(** {1 Bounded static analysis}

    Satisfiability is PSpace-complete and Containment/Equivalence are
    undecidable for core spanners (§2.4); these bounded procedures
    search documents over the automaton's alphabet up to a length
    bound and answer [`Unknown`] beyond it. *)

type bounded = [ `Yes | `No | `Unknown ]

(** [satisfiable ~max_len s] searches for a document of length
    ≤ [max_len] with non-empty result.  Returns [`Yes] on a witness;
    [`No] only when the underlying automaton is unsatisfiable (a sound
    certificate); [`Unknown] otherwise. *)
val satisfiable : max_len:int -> t -> bounded

(** [contained_in ~max_len a b] tests ⟦a⟧(D) ⊆ ⟦b⟧(D) for all D up to
    the bound; [`No] is certified by a witness document. *)
val contained_in : max_len:int -> t -> t -> bounded

(** [equivalent ~max_len a b] is two-sided {!contained_in}. *)
val equivalent : max_len:int -> t -> t -> bounded
