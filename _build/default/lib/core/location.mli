(** Line/column reporting for spans.

    Spans are 1-based character intervals (§1); tools that extract from
    real files want line:column coordinates.  An index over the
    document's newline positions converts in O(log #lines). *)

type t

(** [make doc] indexes the newline positions of [doc], O(|doc|). *)
val make : string -> t

type position = { line : int; column : int }
(** 1-based line and column. *)

(** [position_of idx i] is the line/column of document position [i]
    (1-based; [i] may be |doc| + 1, the end-of-document boundary).
    @raise Invalid_argument if out of range. *)
val position_of : t -> int -> position

(** [range_of idx span] is the (start, end) positions of a span; the
    end position is that of the first character *after* the span
    (half-open, like the span itself). *)
val range_of : t -> Span.t -> position * position

(** [pp_position ppf p] prints [line:column]. *)
val pp_position : Format.formatter -> position -> unit

(** [pp_range idx ppf span] prints [l1:c1-l2:c2]. *)
val pp_range : t -> Format.formatter -> Span.t -> unit

(** [line_count idx] is the number of lines (≥ 1; a trailing newline
    starts a final empty line). *)
val line_count : t -> int
