module Charset = Spanner_fa.Charset

type splitter = { spanner : Evset.t; var : Variable.t }

let splitter e x =
  if not (Variable.Set.equal (Evset.vars e) (Variable.Set.singleton x)) then
    invalid_arg "Split.splitter: a splitter has exactly one variable";
  { spanner = e; var = x }

let split_var_name = "__split"

let segments_splitter ~sep =
  let x = Variable.of_string split_var_name in
  let not_sep = Charset.complement (Charset.singleton sep) in
  (* optional prefix ending in sep, then x binds a sep-free block,
     then an optional sep-started suffix: maximal sep-free blocks *)
  let f =
    Regex_formula.concat_list
      [
        Regex_formula.opt
          (Regex_formula.concat
             (Regex_formula.star (Regex_formula.chars Charset.full))
             (Regex_formula.char sep));
        Regex_formula.bind x (Regex_formula.star (Regex_formula.chars not_sep));
        Regex_formula.opt
          (Regex_formula.concat (Regex_formula.char sep)
             (Regex_formula.star (Regex_formula.chars Charset.full)));
      ]
  in
  { spanner = Evset.of_formula f; var = x }

let windows_splitter ~alphabet ~size =
  let x = Variable.of_string split_var_name in
  let block = Regex_formula.concat_list (List.init size (fun _ -> Regex_formula.chars alphabet)) in
  let f =
    Regex_formula.concat_list
      [
        Regex_formula.star (Regex_formula.chars alphabet);
        Regex_formula.bind x block;
        Regex_formula.star (Regex_formula.chars alphabet);
      ]
  in
  { spanner = Evset.of_formula f; var = x }

let splits p doc =
  List.filter_map
    (fun t -> Span_tuple.find t p.var)
    (Span_relation.tuples (Evset.eval p.spanner doc))

let shift_tuple offset t =
  List.fold_left
    (fun acc (x, s) ->
      Span_tuple.bind acc x (Span.make (Span.left s + offset) (Span.right s + offset)))
    Span_tuple.empty (Span_tuple.bindings t)

let split_eval p s doc =
  List.fold_left
    (fun acc split ->
      let piece = Span.content split doc in
      let local = Evset.eval s piece in
      List.fold_left
        (fun acc t -> Span_relation.add acc (shift_tuple (Span.left split - 1) t))
        acc (Span_relation.tuples local))
    (Span_relation.empty (Evset.vars s))
    (splits p doc)

(* ------------------------------------------------------------------ *)
(* Composition: P on the whole document, S inside the split region.    *)

let compose p s =
  let np = Evset.size p.spanner and ns = Evset.size s in
  let b = Vset.Builder.create () in
  (* state layout: Out p = p;  In (p, q) = np + p*ns + q; marker-chain
     states are appended by the chain helper. *)
  let out_states = Array.init np (fun _ -> Vset.Builder.add_state b) in
  let in_states = Array.init np (fun _ -> Array.init ns (fun _ -> Vset.Builder.add_state b)) in
  (* chain src --m1,m2,...--> dst through fresh states *)
  let add_marker_chain src set dst =
    let marks = Marker.Set.elements set in
    let rec go src = function
      | [] -> Vset.Builder.add_eps b src dst
      | [ m ] -> Vset.Builder.add_mark b src m dst
      | m :: rest ->
          let mid = Vset.Builder.add_state b in
          Vset.Builder.add_mark b src m mid;
          go mid rest
    in
    go src marks
  in
  let is_open_z set = Marker.Set.equal set (Marker.Set.singleton (Marker.Open p.var)) in
  let is_close_z set = Marker.Set.equal set (Marker.Set.singleton (Marker.Close p.var)) in
  let is_empty_z set =
    Marker.Set.equal set (Marker.Set.of_list [ Marker.Open p.var; Marker.Close p.var ])
  in
  (* S's behaviour on the empty document: runs initial →(optional set)→
     final; collect the emitted sets (∅ for a direct accept). *)
  let s_empty_runs =
    let acc = ref [] in
    if Evset.is_final s (Evset.initial s) then acc := Marker.Set.empty :: !acc;
    Evset.iter_set_arcs s (Evset.initial s) (fun set dst ->
        if Evset.is_final s dst then acc := set :: !acc);
    !acc
  in
  for pq = 0 to np - 1 do
    (* outside: P's letter arcs *)
    Evset.iter_letter_arcs p.spanner pq (fun cs dst ->
        Vset.Builder.add_chars b out_states.(pq) cs out_states.(dst));
    (* P's boundary arcs *)
    Evset.iter_set_arcs p.spanner pq (fun set dst ->
        if is_open_z set then begin
          (* enter the split region: S starts at its initial state;
             S may immediately take a set arc at the same boundary *)
          Vset.Builder.add_eps b out_states.(pq) in_states.(dst).(Evset.initial s)
        end
        else if is_empty_z set then
          (* empty split: S must accept ε; emit its set *)
          List.iter
            (fun sset -> add_marker_chain out_states.(pq) sset out_states.(dst))
            s_empty_runs
        else if is_close_z set then
          (* exits are added from the In states below *)
          ()
        else
          invalid_arg "Split.compose: splitter automaton uses an unexpected marker set");
    for sq = 0 to ns - 1 do
      let here = in_states.(pq).(sq) in
      (* inside: synchronised letter steps *)
      Evset.iter_letter_arcs p.spanner pq (fun cs_p dst_p ->
          Evset.iter_letter_arcs s sq (fun cs_s dst_s ->
              let cs = Charset.inter cs_p cs_s in
              if not (Charset.is_empty cs) then
                Vset.Builder.add_chars b here cs in_states.(dst_p).(dst_s)));
      (* inside: S's boundary arcs (P stays) *)
      Evset.iter_set_arcs s sq (fun set dst_s ->
          add_marker_chain here set in_states.(pq).(dst_s));
      (* leave the region: P takes ⊣z, S must be final *)
      if Evset.is_final s sq then
        Evset.iter_set_arcs p.spanner pq (fun set dst_p ->
            if is_close_z set then Vset.Builder.add_eps b here out_states.(dst_p))
    done
  done;
  let finals =
    List.filter_map
      (fun pq -> if Evset.is_final p.spanner pq then Some out_states.(pq) else None)
      (List.init np Fun.id)
  in
  let vset =
    Vset.Builder.finish b
      ~initial:out_states.(Evset.initial p.spanner)
      ~finals ~vars:(Evset.vars s)
  in
  Evset.of_vset vset

let split_correct_on p s doc = Span_relation.equal (split_eval p s doc) (Evset.eval s doc)

let split_correct p s = Evset.equal_spanner s (compose p s)
