type t = Span.t Variable.Map.t

let empty = Variable.Map.empty

let bind t x s = Variable.Map.add x s t

let of_list bindings = List.fold_left (fun t (x, s) -> bind t x s) empty bindings

let find t x = Variable.Map.find_opt x t

let get t x = Variable.Map.find x t

let domain t = Variable.Map.fold (fun x _ acc -> Variable.Set.add x acc) t Variable.Set.empty

let is_functional_on t vars = Variable.Set.for_all (fun x -> Variable.Map.mem x t) vars

let bindings t = Variable.Map.bindings t

let equal a b = Variable.Map.equal Span.equal a b

let compare a b = Variable.Map.compare Span.compare a b

let hash t =
  Variable.Map.fold (fun x s acc -> (acc * 31) + (Variable.hash x lxor Span.hash s)) t 17

let project vars t = Variable.Map.filter (fun x _ -> Variable.Set.mem x vars) t

let compatible a b =
  Variable.Map.for_all
    (fun x s -> match find b x with None -> true | Some s' -> Span.equal s s')
    a

let merge a b =
  if not (compatible a b) then invalid_arg "Span_tuple.merge: incompatible tuples";
  Variable.Map.union (fun _ s _ -> Some s) a b

let fuse vars ~into t =
  let fused =
    Variable.Map.fold
      (fun x s acc ->
        if Variable.Set.mem x vars then
          match acc with None -> Some s | Some s' -> Some (Span.fuse s s')
        else acc)
      t None
  in
  let without = Variable.Map.filter (fun x _ -> not (Variable.Set.mem x vars)) t in
  match fused with None -> without | Some s -> bind without into s

let satisfies_equality t doc vars =
  let contents =
    Variable.Set.fold
      (fun x acc -> match find t x with None -> acc | Some s -> Span.content s doc :: acc)
      vars []
  in
  match contents with
  | [] | [ _ ] -> true
  | first :: rest -> List.for_all (String.equal first) rest

let hierarchical t =
  let spans = List.map snd (bindings t) in
  let rec pairs = function
    | [] -> true
    | s :: rest -> List.for_all (Span.hierarchical s) rest && pairs rest
  in
  pairs spans

let pp ppf t =
  let pp_binding ppf (x, s) = Format.fprintf ppf "%a ↦ %a" Variable.pp x Span.pp s in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_binding)
    (bindings t)
