module Charset = Spanner_fa.Charset
module Strhash = Spanner_util.Strhash

type t = {
  automaton : Evset.t;
  selections : Variable.Set.t list;
  projection : Variable.Set.t;
}

let of_regular e = { automaton = e; selections = []; projection = Evset.vars e }

let schema s = s.projection

let select vars s =
  if not (Variable.Set.subset vars s.projection) then
    invalid_arg "Core_spanner.select: selection variables must be visible";
  { s with selections = vars :: s.selections }

let project vars s = { s with projection = Variable.Set.inter vars s.projection }

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)

let fresh_hidden =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Variable.of_string (Printf.sprintf "__h%d" !counter)

(* Rewrite a simplified spanner so that (1) every variable mentioned by
   a selection is hidden and private (fresh shadows replace visible
   selection variables), and (2) every hidden variable is globally
   fresh.  After isolation, unioning or joining two spanners can keep
   both selection lists: each list only constrains variables the other
   operand never binds, which is vacuous under schemaless semantics. *)
let isolate s =
  let visible_sel_vars =
    List.fold_left
      (fun acc z -> Variable.Set.union acc (Variable.Set.inter z s.projection))
      Variable.Set.empty s.selections
  in
  (* Step 1: shadow visible selection variables. *)
  let shadow_map =
    Variable.Set.fold (fun v acc -> Variable.Map.add v (fresh_hidden ()) acc) visible_sel_vars
      Variable.Map.empty
  in
  let automaton =
    Variable.Map.fold (fun v v' a -> Evset.duplicate_var a v v') shadow_map s.automaton
  in
  let reselect z =
    Variable.Set.map
      (fun v -> match Variable.Map.find_opt v shadow_map with Some v' -> v' | None -> v)
      z
  in
  let selections = List.map reselect s.selections in
  (* Step 2: freshen the pre-existing hidden variables. *)
  let hidden = Variable.Set.diff (Evset.vars automaton) s.projection in
  let old_hidden = Variable.Set.diff hidden (Variable.Set.of_list (List.map snd (Variable.Map.bindings shadow_map))) in
  let freshen_map =
    Variable.Set.fold (fun v acc -> Variable.Map.add v (fresh_hidden ()) acc) old_hidden
      Variable.Map.empty
  in
  let rename v = match Variable.Map.find_opt v freshen_map with Some v' -> v' | None -> v in
  let automaton = Evset.rename_vars rename automaton in
  let selections = List.map (Variable.Set.map rename) selections in
  { automaton; selections; projection = s.projection }

let rec simplify (e : Algebra.t) =
  match e with
  | Algebra.Formula f ->
      let a = Evset.of_formula f in
      { automaton = a; selections = []; projection = Evset.vars a }
  | Algebra.Automaton a -> { automaton = a; selections = []; projection = Evset.vars a }
  | Algebra.Project (vars, e) -> project vars (simplify e)
  | Algebra.Select (vars, e) ->
      let s = simplify e in
      select (Variable.Set.inter vars (Algebra.schema e)) s
  | Algebra.Union (e1, e2) ->
      let s1 = isolate (simplify e1) and s2 = isolate (simplify e2) in
      {
        automaton = Evset.union s1.automaton s2.automaton;
        selections = s1.selections @ s2.selections;
        projection = Variable.Set.union s1.projection s2.projection;
      }
  | Algebra.Join (e1, e2) ->
      let s1 = isolate (simplify e1) and s2 = isolate (simplify e2) in
      {
        automaton = Evset.join s1.automaton s2.automaton;
        selections = s1.selections @ s2.selections;
        projection = Variable.Set.union s1.projection s2.projection;
      }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let selections_hold hash selections tuple =
  List.for_all
    (fun z ->
      let spans =
        Variable.Set.fold
          (fun x acc -> match Span_tuple.find tuple x with None -> acc | Some s -> s :: acc)
          z []
      in
      match spans with
      | [] | [ _ ] -> true
      | first :: rest ->
          let range s = (Span.left s - 1, Span.right s - 1) in
          List.for_all (fun s -> Strhash.equal_span hash ~a:(range first) ~b:(range s)) rest)
    selections

let satisfying_tuples s doc =
  let hash = Strhash.make doc in
  let p = Enumerate.prepare s.automaton doc in
  Seq.filter (selections_hold hash s.selections) (Enumerate.to_seq p)

let eval s doc =
  Seq.fold_left
    (fun acc u -> Span_relation.add acc (Span_tuple.project s.projection u))
    (Span_relation.empty s.projection)
    (satisfying_tuples s doc)

let eval_algebra e doc = eval (simplify e) doc

let nonempty_on s doc = not (Seq.is_empty (satisfying_tuples s doc))

let model_check s doc t =
  Seq.exists
    (fun u -> Span_tuple.equal (Span_tuple.project s.projection u) t)
    (satisfying_tuples s doc)

(* ------------------------------------------------------------------ *)
(* Bounded static analysis                                             *)

type bounded = [ `Yes | `No | `Unknown ]

let alphabet_of e =
  let cs = ref Charset.empty in
  for q = 0 to Evset.size e - 1 do
    Evset.iter_letter_arcs e q (fun c _ -> cs := Charset.union !cs c)
  done;
  Charset.elements !cs

let rec doc_candidates alphabet len =
  (* All documents over [alphabet] of length exactly [len], lazily. *)
  if len = 0 then Seq.return ""
  else
    Seq.concat_map
      (fun shorter -> List.to_seq (List.map (fun c -> shorter ^ String.make 1 c) alphabet))
      (doc_candidates alphabet (len - 1))

let all_docs alphabet max_len =
  Seq.concat_map (fun len -> doc_candidates alphabet len) (Seq.init (max_len + 1) Fun.id)

let satisfiable ~max_len s =
  if not (Evset.satisfiable s.automaton) then `No
  else if s.selections = [] then `Yes
  else
    let alphabet = alphabet_of s.automaton in
    if Seq.exists (fun doc -> nonempty_on s doc) (all_docs alphabet max_len) then `Yes
    else `Unknown

let contained_in ~max_len a b =
  let alphabet =
    List.sort_uniq Char.compare (alphabet_of a.automaton @ alphabet_of b.automaton)
  in
  let counterexample doc =
    let ra = eval a doc and rb = eval b doc in
    List.exists (fun t -> not (Span_relation.mem rb t)) (Span_relation.tuples ra)
  in
  if Seq.exists counterexample (all_docs alphabet max_len) then `No else `Unknown

let equivalent ~max_len a b =
  match (contained_in ~max_len a b, contained_in ~max_len b a) with
  | `No, _ | _, `No -> `No
  | _ -> `Unknown
