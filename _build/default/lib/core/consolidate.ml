type policy = Contained_within | Not_contained_within | Left_to_right | Exact_overlap

module Span_set = Set.Make (Span)

let strictly_contained inner outer = Span.contains outer inner && not (Span.equal inner outer)

let dominant_spans policy spans =
  let distinct = Span_set.elements (Span_set.of_list spans) in
  match policy with
  | Contained_within ->
      List.filter
        (fun s -> not (List.exists (fun s' -> strictly_contained s s') distinct))
        distinct
  | Not_contained_within ->
      List.filter (fun s -> List.exists (fun s' -> strictly_contained s s') distinct) distinct
  | Exact_overlap -> distinct
  | Left_to_right ->
      (* sort by left endpoint, ties broken by longer span; then greedy *)
      let ordered =
        List.sort
          (fun a b ->
            let c = Int.compare (Span.left a) (Span.left b) in
            if c <> 0 then c else Int.compare (Span.right b) (Span.right a))
          distinct
      in
      let rec greedy kept = function
        | [] -> List.rev kept
        | s :: rest ->
            if List.exists (fun k -> not (Span.disjoint k s)) kept then greedy kept rest
            else greedy (s :: kept) rest
      in
      greedy [] ordered

let consolidate policy ~on r =
  if not (Variable.Set.mem on (Span_relation.schema r)) then
    invalid_arg "Consolidate.consolidate: the consolidation variable is not in the schema";
  let tuples = Span_relation.tuples r in
  let bound, unbound =
    List.partition (fun t -> Span_tuple.find t on <> None) tuples
  in
  let spans = List.map (fun t -> Span_tuple.get t on) bound in
  let kept_spans = Span_set.of_list (dominant_spans policy spans) in
  let kept =
    match policy with
    | Exact_overlap ->
        (* one representative per span: tuples arrive in canonical
           order, so keep the first for each span *)
        let seen = ref Span_set.empty in
        List.filter
          (fun t ->
            let s = Span_tuple.get t on in
            if Span_set.mem s !seen then false
            else begin
              seen := Span_set.add s !seen;
              true
            end)
          bound
    | Contained_within | Not_contained_within | Left_to_right ->
        List.filter (fun t -> Span_set.mem (Span_tuple.get t on) kept_spans) bound
  in
  Span_relation.of_list (Span_relation.schema r) (kept @ unbound)
