(** Span tuples: (partial) assignments of spans to variables.

    An (X, D)-tuple is a function X → Spans(D) (§1).  Following the
    schemaless semantics of [27] discussed in §2.2, the representation
    is a *partial* map: [find t x = None] encodes t(x) = ⊥.  A tuple
    that is total on a variable set is called functional on it. *)

type t

(** [empty] assigns no variable. *)
val empty : t

(** [bind t x s] is [t] with [x ↦ s] (overriding any previous
    binding). *)
val bind : t -> Variable.t -> Span.t -> t

(** [of_list bindings] builds a tuple from a list of bindings. *)
val of_list : (Variable.t * Span.t) list -> t

(** [find t x] is the span of [x], if bound. *)
val find : t -> Variable.t -> Span.t option

(** [get t x] is the span of [x].
    @raise Not_found if unbound. *)
val get : t -> Variable.t -> Span.t

(** [domain t] is the set of bound variables. *)
val domain : t -> Variable.Set.t

(** [is_functional_on t vars] tests that every variable of [vars] is
    bound (total-function semantics of [9]). *)
val is_functional_on : t -> Variable.Set.t -> bool

(** [bindings t] lists the bindings in variable order. *)
val bindings : t -> (Variable.t * Span.t) list

(** [equal a b], [compare a b], [hash t] are structural. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val hash : t -> int

(** {1 Algebraic operations on tuples} *)

(** [project vars t] restricts [t] to [vars]. *)
val project : Variable.Set.t -> t -> t

(** [compatible a b] tests that [a] and [b] agree on their common
    bound variables — the join condition of ⋈ (§1). *)
val compatible : t -> t -> bool

(** [merge a b] is the union of two {!compatible} tuples.
    @raise Invalid_argument if they are not compatible. *)
val merge : t -> t -> t

(** [fuse vars ~into t] is the column-fusion ⨄_{vars → into} of §3.2:
    the variables of [vars] are removed and [into] is bound to the span
    from the minimum left bound to the maximum right bound of their
    spans.  Unbound members of [vars] are ignored; if none is bound,
    [into] is left unbound. *)
val fuse : Variable.Set.t -> into:Variable.t -> t -> t

(** [satisfies_equality t doc vars] tests the string-equality
    selection ς=_{vars} on [t] over [doc]: all *bound* variables of
    [vars] address equal factors of [doc] (§1).  Vacuously true if
    fewer than two are bound. *)
val satisfies_equality : t -> string -> Variable.Set.t -> bool

(** [hierarchical t] tests that no two bound spans strictly overlap
    (§2.2). *)
val hierarchical : t -> bool

(** [pp ppf t] prints [(x ↦ [1,3⟩, y ↦ ⊥)]-style renderings. *)
val pp : Format.formatter -> t -> unit
