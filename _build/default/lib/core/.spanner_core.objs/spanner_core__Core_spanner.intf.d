lib/core/core_spanner.mli: Algebra Evset Span_relation Span_tuple Variable
