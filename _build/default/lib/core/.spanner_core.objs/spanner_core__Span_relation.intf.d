lib/core/span_relation.mli: Format Span_tuple Variable
