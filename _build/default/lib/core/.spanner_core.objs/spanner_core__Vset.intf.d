lib/core/vset.mli: Marker Ref_word Regex_formula Spanner_fa Variable
