lib/core/location.mli: Format Span
