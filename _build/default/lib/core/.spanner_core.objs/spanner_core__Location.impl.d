lib/core/location.ml: Array Format List Printf Span String
