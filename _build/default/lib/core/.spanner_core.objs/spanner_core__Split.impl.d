lib/core/split.ml: Array Evset Fun List Marker Regex_formula Span Span_relation Span_tuple Spanner_fa Variable Vset
