lib/core/marker.mli: Format Set Variable
