lib/core/span_tuple.mli: Format Span Variable
