lib/core/evset.ml: Array Buffer Char Format Fun Hashtbl Int List Marker Option Printf Queue Ref_word Set Span Span_relation Span_tuple Spanner_fa Spanner_util String Variable Vset
