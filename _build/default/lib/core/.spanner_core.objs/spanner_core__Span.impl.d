lib/core/span.ml: Format Int Printf String
