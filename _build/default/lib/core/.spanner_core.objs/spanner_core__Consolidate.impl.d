lib/core/consolidate.ml: Int List Set Span Span_relation Span_tuple Variable
