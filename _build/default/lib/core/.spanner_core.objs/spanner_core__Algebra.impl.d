lib/core/algebra.ml: Evset Format Regex_formula Span_relation Variable
