lib/core/split.mli: Charset Evset Span Span_relation Spanner_fa Variable
