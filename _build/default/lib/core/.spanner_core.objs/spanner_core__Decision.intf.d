lib/core/decision.mli: Core_spanner Evset Span_tuple
