lib/core/core_spanner.ml: Algebra Char Enumerate Evset Fun List Printf Seq Span Span_relation Span_tuple Spanner_fa Spanner_util String Variable
