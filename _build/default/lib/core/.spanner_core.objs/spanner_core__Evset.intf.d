lib/core/evset.mli: Format Marker Regex_formula Span_relation Span_tuple Spanner_fa Variable Vset
