lib/core/decision.ml: Core_spanner Evset Fun List Seq Span_relation Span_tuple Spanner_fa String
