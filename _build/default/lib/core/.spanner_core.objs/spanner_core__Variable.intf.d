lib/core/variable.mli: Format Map Set
