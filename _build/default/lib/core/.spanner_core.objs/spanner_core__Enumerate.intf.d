lib/core/enumerate.mli: Evset Seq Span_relation Span_tuple
