lib/core/algebra.mli: Evset Format Regex_formula Span_relation Variable
