lib/core/ref_word.mli: Format Marker Span_tuple Variable
