lib/core/regex_formula.mli: Format Spanner_fa Variable
