lib/core/enumerate.ml: Array Evset Hashtbl List Marker Option Queue Seq Span Span_relation Span_tuple Spanner_fa Spanner_util String
