lib/core/vset.ml: Array List Marker Option Printf Ref_word Regex_formula Set Spanner_fa Spanner_util Stdlib Variable
