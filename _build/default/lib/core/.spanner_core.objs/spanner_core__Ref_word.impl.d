lib/core/ref_word.ml: Array Buffer Format Hashtbl List Marker Printf Span Span_tuple String Variable
