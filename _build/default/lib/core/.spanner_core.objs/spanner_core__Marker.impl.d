lib/core/marker.ml: Format Hashtbl List Set Stdlib Variable
