lib/core/span_tuple.ml: Format List Span String Variable
