lib/core/consolidate.mli: Span Span_relation Variable
