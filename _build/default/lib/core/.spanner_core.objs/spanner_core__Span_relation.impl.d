lib/core/span_relation.ml: Format Hashtbl List Option Printf Set Span Span_tuple String Variable
