lib/core/regex_formula.ml: Format List Printf Spanner_fa String Variable
