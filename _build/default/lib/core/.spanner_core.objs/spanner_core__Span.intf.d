lib/core/span.mli: Format
