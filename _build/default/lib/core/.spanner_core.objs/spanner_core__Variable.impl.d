lib/core/variable.ml: Format Int Map Printf Set Spanner_util String
