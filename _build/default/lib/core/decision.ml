module Regular = struct
  type spanner = Evset.t

  let model_checking = Evset.accepts_tuple

  let non_emptiness = Evset.nonempty_on

  let satisfiability = Evset.satisfiable

  let hierarchicality = Evset.hierarchical

  let containment a b = Evset.contains b a

  let equivalence = Evset.equal_spanner
end

module Core = struct
  type spanner = Core_spanner.t

  let model_checking = Core_spanner.model_check

  let non_emptiness = Core_spanner.nonempty_on

  let satisfiability = Core_spanner.satisfiable

  let hierarchicality ~max_len (s : spanner) =
    let projected = Evset.project s.Core_spanner.projection s.Core_spanner.automaton in
    if Evset.hierarchical projected then `Yes
    else begin
      (* The regular over-approximation overlaps; search for an actual
         output tuple that overlaps. *)
      let alphabet =
        let cs = ref Spanner_fa.Charset.empty in
        for q = 0 to Evset.size projected - 1 do
          Evset.iter_letter_arcs projected q (fun c _ -> cs := Spanner_fa.Charset.union !cs c)
        done;
        Spanner_fa.Charset.elements !cs
      in
      let rec of_len len =
        if len = 0 then Seq.return ""
        else
          Seq.concat_map
            (fun shorter -> List.to_seq (List.map (fun c -> shorter ^ String.make 1 c) alphabet))
            (of_len (len - 1))
      in
      let all = Seq.concat_map of_len (Seq.init (max_len + 1) Fun.id) in
      let overlapping doc =
        List.exists
          (fun t -> not (Span_tuple.hierarchical t))
          (Span_relation.tuples (Core_spanner.eval s doc))
      in
      if Seq.exists overlapping all then `No else `Unknown
    end

  let containment = Core_spanner.contained_in

  let equivalence = Core_spanner.equivalent
end
