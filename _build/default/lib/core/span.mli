(** Spans of a document.

    A span [⟨i, j⟩] with [1 ≤ i ≤ j ≤ |D| + 1] represents the factor
    [a_i … a_{j-1}] of a document [D = a_1 … a_n] (§1 of the paper;
    positions are 1-based and the interval is half-open, written
    [[i, j⟩] there). *)

type t = private { left : int; right : int }

(** [make i j] is the span [[i, j⟩].
    @raise Invalid_argument unless [1 ≤ i ≤ j]. *)
val make : int -> int -> t

(** [left s] and [right s] are the endpoints [i] and [j]. *)
val left : t -> int

val right : t -> int

(** [len s] is the length [j - i] of the represented factor. *)
val len : t -> int

(** [is_empty s] tests [i = j]. *)
val is_empty : t -> bool

(** [fits s doc] tests that [s] is a span *of* [doc], i.e.
    [j ≤ |doc| + 1]. *)
val fits : t -> string -> bool

(** [content s doc] is the factor of [doc] represented by [s].
    @raise Invalid_argument if [not (fits s doc)]. *)
val content : t -> string -> string

(** [all doc] is Spans(doc): every span of [doc], in lexicographic
    order — |doc|·(|doc|+1)/2 + |doc| + 1 of them. *)
val all : string -> t list

(** {1 Relative position predicates} *)

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [compare a b] orders by left endpoint, then right. *)
val compare : t -> t -> int

(** [contains a b] tests that [b] lies within [a]
    ([a.left ≤ b.left] and [b.right ≤ a.right]). *)
val contains : t -> t -> bool

(** [disjoint a b] tests that the half-open intervals do not
    intersect. *)
val disjoint : t -> t -> bool

(** [overlapping a b] tests that [a] and [b] overlap *strictly*: they
    intersect but neither contains the other.  This is the notion of
    overlap whose combination with string-equality selection drives the
    hardness results of §2.4 and is outlawed by refl-spanners (§3). *)
val overlapping : t -> t -> bool

(** [hierarchical a b] tests that [a] and [b] are either disjoint or
    nested (§2.2). *)
val hierarchical : t -> t -> bool

(** [fuse a b] is the column-fusion of two spans (§3.2): the smallest
    span covering both. *)
val fuse : t -> t -> t

(** [pp ppf s] prints [[i,j⟩]. *)
val pp : Format.formatter -> t -> unit

(** [to_string s] is {!pp} to a string. *)
val to_string : t -> string

(** [hash s] is a structural hash. *)
val hash : t -> int
