(** Consolidation policies, as in SystemT's AQL.

    The paper's framework formalises the query language AQL of IBM's
    SystemT (§1).  Besides the algebra, AQL provides {e consolidation}:
    resolving overlapping matches of one extractor according to a
    policy.  Consolidation is a post-processing step on span relations
    — it commutes with everything upstream, so it composes with every
    evaluation route in this library (materialised, enumerated,
    compressed).

    All policies operate on the spans of a designated column [on] and
    keep a subset of the tuples. *)

type policy =
  | Contained_within
      (** drop a tuple if its [on]-span is strictly contained in
          another tuple's [on]-span (keep maximal matches) *)
  | Not_contained_within
      (** keep only tuples whose [on]-span is contained in another's —
          the complement view (AQL's retain-inner variant) *)
  | Left_to_right
      (** greedy scan: repeatedly keep the leftmost match (breaking
          ties by longer span) and drop everything overlapping it —
          the classical leftmost-longest tokenisation policy *)
  | Exact_overlap
      (** collapse tuples with identical [on]-spans to one (the first
          in canonical tuple order) *)

(** [consolidate policy ~on r] applies the policy to relation [r].
    Tuples not binding [on] are kept untouched.
    @raise Invalid_argument if [on] is not in the schema. *)
val consolidate : policy -> on:Variable.t -> Span_relation.t -> Span_relation.t

(** [dominant_spans policy spans] exposes the span-level decision:
    the subset of [spans] the policy keeps (used by tests and by
    {!consolidate}). *)
val dominant_spans : policy -> Span.t list -> Span.t list
