type t = { left : int; right : int }

let make i j =
  if not (1 <= i && i <= j) then
    invalid_arg (Printf.sprintf "Span.make: invalid span [%d,%d⟩" i j);
  { left = i; right = j }

let left s = s.left

let right s = s.right

let len s = s.right - s.left

let is_empty s = s.left = s.right

let fits s doc = s.right <= String.length doc + 1

let content s doc =
  if not (fits s doc) then
    invalid_arg
      (Printf.sprintf "Span.content: span [%d,%d⟩ does not fit document of length %d" s.left
         s.right (String.length doc));
  String.sub doc (s.left - 1) (len s)

let all doc =
  let n = String.length doc in
  let acc = ref [] in
  for i = n + 1 downto 1 do
    for j = n + 1 downto i do
      acc := { left = i; right = j } :: !acc
    done
  done;
  !acc

let equal a b = a.left = b.left && a.right = b.right

let compare a b =
  let c = Int.compare a.left b.left in
  if c <> 0 then c else Int.compare a.right b.right

let contains a b = a.left <= b.left && b.right <= a.right

let disjoint a b = a.right <= b.left || b.right <= a.left

let overlapping a b = (not (disjoint a b)) && (not (contains a b)) && not (contains b a)

let hierarchical a b = not (overlapping a b)

let fuse a b = { left = min a.left b.left; right = max a.right b.right }

let pp ppf s = Format.fprintf ppf "[%d,%d⟩" s.left s.right

let to_string s = Format.asprintf "%a" pp s

let hash s = (s.left * 1000003) lxor s.right
