type item = Char of char | Mark of Marker.t

type t = item array

let of_doc_tuple doc tuple =
  let n = String.length doc in
  let boundary = Array.make (n + 2) [] in
  List.iter
    (fun (x, s) ->
      if not (Span.fits s doc) then
        invalid_arg
          (Format.asprintf "Ref_word.of_doc_tuple: span %a of %a does not fit" Span.pp s
             Variable.pp x);
      boundary.(Span.left s) <- Marker.Open x :: boundary.(Span.left s);
      boundary.(Span.right s) <- Marker.Close x :: boundary.(Span.right s))
    (Span_tuple.bindings tuple);
  let items = ref [] in
  for b = n + 1 downto 1 do
    if b <= n then items := Char doc.[b - 1] :: !items;
    let marks = List.sort Marker.compare boundary.(b) in
    items := List.map (fun m -> Mark m) marks @ !items
  done;
  Array.of_list !items

let doc w =
  let buf = Buffer.create (Array.length w) in
  Array.iter (function Char c -> Buffer.add_char buf c | Mark _ -> ()) w;
  Buffer.contents buf

let span_tuple w =
  let pos = ref 1 in
  let opens = Hashtbl.create 8 in
  let tuple = ref Span_tuple.empty in
  Array.iter
    (function
      | Char _ -> incr pos
      | Mark (Marker.Open x) ->
          if Hashtbl.mem opens x then
            invalid_arg
              (Printf.sprintf "Ref_word.span_tuple: variable %s opened twice" (Variable.name x));
          Hashtbl.add opens x !pos
      | Mark (Marker.Close x) -> (
          match Hashtbl.find_opt opens x with
          | Some left when Span_tuple.find !tuple x = None ->
              tuple := Span_tuple.bind !tuple x (Span.make left !pos)
          | Some _ ->
              invalid_arg
                (Printf.sprintf "Ref_word.span_tuple: variable %s closed twice" (Variable.name x))
          | None ->
              invalid_arg
                (Printf.sprintf "Ref_word.span_tuple: variable %s closed before opened"
                   (Variable.name x))))
    w;
  Hashtbl.iter
    (fun x _ ->
      if Span_tuple.find !tuple x = None then
        invalid_arg
          (Printf.sprintf "Ref_word.span_tuple: variable %s opened but never closed"
             (Variable.name x)))
    opens;
  !tuple

type validity = Valid of { functional : bool } | Invalid of string

let validate vars w =
  let exception Bad of string in
  try
    let opened = Hashtbl.create 8 and closed = Hashtbl.create 8 in
    Array.iter
      (function
        | Char _ -> ()
        | Mark m ->
            let x = Marker.variable m in
            if not (Variable.Set.mem x vars) then
              raise (Bad (Printf.sprintf "marker for foreign variable %s" (Variable.name x)));
            if Marker.is_open m then begin
              if Hashtbl.mem opened x then
                raise (Bad (Printf.sprintf "⊢%s occurs twice" (Variable.name x)));
              Hashtbl.add opened x ()
            end
            else begin
              if not (Hashtbl.mem opened x) then
                raise (Bad (Printf.sprintf "⊣%s before ⊢%s" (Variable.name x) (Variable.name x)));
              if Hashtbl.mem closed x then
                raise (Bad (Printf.sprintf "⊣%s occurs twice" (Variable.name x)));
              Hashtbl.add closed x ()
            end)
      w;
    Hashtbl.iter
      (fun x () ->
        if not (Hashtbl.mem closed x) then
          raise (Bad (Printf.sprintf "⊢%s never closed" (Variable.name x))))
      opened;
    let functional = Variable.Set.for_all (Hashtbl.mem closed) vars in
    Valid { functional }
  with Bad reason -> Invalid reason

let canonicalize w = of_doc_tuple (doc w) (span_tuple w)

let to_extended w =
  let d = doc w in
  let sets = Array.make (String.length d + 1) Marker.Set.empty in
  let pos = ref 0 in
  Array.iter
    (function
      | Char _ -> incr pos
      | Mark m -> sets.(!pos) <- Marker.Set.add m sets.(!pos))
    w;
  (d, sets)

let of_extended d sets =
  if Array.length sets <> String.length d + 1 then
    invalid_arg "Ref_word.of_extended: need |doc| + 1 boundary sets";
  let items = ref [] in
  for b = String.length d downto 0 do
    if b < String.length d then items := Char d.[b] :: !items;
    let marks = List.sort Marker.compare (Marker.Set.elements sets.(b)) in
    items := List.map (fun m -> Mark m) marks @ !items
  done;
  Array.of_list !items

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Char c, Char c' -> c = c'
         | Mark m, Mark m' -> Marker.equal m m'
         | Char _, Mark _ | Mark _, Char _ -> false)
       a b

let represents_same a b = equal (canonicalize a) (canonicalize b)

(* A marker is rendered as ⊢x for a single-character variable name and
   ⊢(name) otherwise — the parenthesised form keeps the rendering
   unambiguous (a bare multi-character name would swallow the document
   letters that follow it). *)
let pp_marker ppf m =
  let name = Variable.name (Marker.variable m) in
  let symbol = if Marker.is_open m then "⊢" else "⊣" in
  if String.length name = 1 then Format.fprintf ppf "%s%s" symbol name
  else Format.fprintf ppf "%s(%s)" symbol name

let pp ppf w =
  Array.iter (function Char c -> Format.pp_print_char ppf c | Mark m -> pp_marker ppf m) w

let to_string w = Format.asprintf "%a" pp w

(* [scan_marker_name s i] reads a variable name at offset [i]: either a
   parenthesised identifier or exactly one identifier character. *)
let scan_marker_name s i =
  let n = String.length s in
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  if i < n && s.[i] = '(' then begin
    let stop = try String.index_from s i ')' with Not_found ->
      invalid_arg "Ref_word.of_string: unterminated variable name"
    in
    (Variable.of_string (String.sub s (i + 1) (stop - i - 1)), stop + 1)
  end
  else if i < n && is_ident s.[i] then (Variable.of_string (String.make 1 s.[i]), i + 1)
  else invalid_arg "Ref_word.of_string: marker without variable name"

let of_string s =
  (* The markers ⊢ (0xE2 0x8A 0xA2) and ⊣ (0xE2 0x8A 0xA3) are the only
     multi-byte sequences recognised; everything else is taken as a raw
     byte. *)
  let items = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + 2 < n && s.[!i] = '\xE2' && s.[!i + 1] = '\x8A'
       && (s.[!i + 2] = '\xA2' || s.[!i + 2] = '\xA3')
    then begin
      let open_marker = s.[!i + 2] = '\xA2' in
      let x, next = scan_marker_name s (!i + 3) in
      i := next;
      items := Mark (if open_marker then Marker.Open x else Marker.Close x) :: !items
    end
    else begin
      items := Char s.[!i] :: !items;
      incr i
    end
  done;
  Array.of_list (List.rev !items)
