(** Marker meta-symbols ⊢x and ⊣x.

    The symbols written [ᵡ▷] and [◁ᵡ] in the paper (§1): inserting
    them into a document materialises where a span opens and closes.
    Words over Σ ∪ markers are the subword-marked words of §2.1. *)

type t =
  | Open of Variable.t  (** ⊢x : the span of x starts here *)
  | Close of Variable.t  (** ⊣x : the span of x ends here *)

(** [variable m] is the variable the marker belongs to. *)
val variable : t -> Variable.t

(** [is_open m] tests for [Open _]. *)
val is_open : t -> bool

(** [compare] is the canonical marker order used to normalise factors
    of consecutive markers (§2.2, Option 1): all [Open]s (by variable)
    precede all [Close]s (by variable).  Opens-first guarantees that
    the canonical rendering of an empty span [⊢x ⊣x] is itself valid. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [all_markers vars] is the 2·|vars| markers of a variable set, in
    canonical order. *)
val all_markers : Variable.Set.t -> t list

(** [pp ppf m] prints [⊢x] or [⊣x]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Sets of markers, e.g. the factor alphabet of extended
    vset-automata (§2.2, Option 2). *)
module Set : Set.S with type elt = t

(** [pp_set ppf s] prints [{⊢x, ⊣y}]. *)
val pp_set : Format.formatter -> Set.t -> unit

(** [set_variables s] is the set of variables with a marker in [s]. *)
val set_variables : Set.t -> Variable.Set.t
