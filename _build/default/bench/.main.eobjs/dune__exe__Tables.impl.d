bench/tables.ml: Buffer Int64 List Monotonic_clock Printf String
