bench/main.mli:
