(* Small helpers for the benchmark harness: wall-clock timing and
   aligned table printing. *)

(* bechamel's monotonic clock (nanoseconds) *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* [time f] is (result, seconds). *)
let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

(* [time_unit f] like [time] but for unit actions. *)
let time_unit f = snd (time f)

(* [best_of k f] is the minimum wall time of [k] runs. *)
let best_of k f =
  let rec go k acc = if k = 0 then acc else go (k - 1) (min acc (time_unit f)) in
  go (k - 1) (time_unit f)

let pretty_time seconds =
  if seconds < 1e-6 then Printf.sprintf "%.0f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Printf.sprintf "%.1f µs" (seconds *. 1e6)
  else if seconds < 1.0 then Printf.sprintf "%.2f ms" (seconds *. 1e3)
  else Printf.sprintf "%.2f s" seconds

let pretty_int n =
  (* thousands separators for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [print_table ~title ~header rows] prints an aligned ASCII table. *)
let print_table ~title ~header rows =
  Printf.printf "\n### %s\n\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h)
          rows)
      header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells = Printf.printf "| %s |\n" (String.concat " | " (List.map2 pad cells widths)) in
  line header;
  Printf.printf "|%s|\n" (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter line rows;
  flush stdout

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  flush stdout

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt
