test/test_refl.mli:
