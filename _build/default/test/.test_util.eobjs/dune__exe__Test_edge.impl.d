test/test_edge.ml: Alcotest Char Consolidate Enumerate Evset Format Hashtbl List Printf Regex_formula Span Span_relation Span_tuple Spanner_core Spanner_refl Spanner_slp Spanner_util String Variable
