test/test_util.ml: Alcotest Bitmatrix Bitset Interner List Spanner_util Strhash String Vec Xoshiro
