test/test_algebra.ml: Alcotest Algebra Core_spanner Decision Evset List Printf Regex_formula Span Span_relation Span_tuple Spanner_core String Variable
