test/test_automata.ml: Alcotest Array Decision Enumerate Evset Format Hashtbl List Marker Printf Ref_word Regex_formula Seq Span Span_relation Span_tuple Spanner_core String Variable Vset
