test/test_cfg.ml: Alcotest Cf_spanner Cfg Evset Fun List Marker Printf Regex_formula Span Span_relation Span_tuple Spanner_cfg Spanner_core Spanner_fa String Variable
