test/test_fa.ml: Alcotest Char Charset Derivative Dfa List Nfa Regex Spanner_fa Spanner_util To_regex
