test/test_refl.ml: Alcotest Algebra Core_spanner List Refl_automaton Refl_regex Refl_spanner Refl_word Regex_formula Span Span_relation Span_tuple Spanner_core Spanner_refl Variable
