test/test_core.ml: Alcotest Array Consolidate Fmt Format List Location Marker Ref_word Regex_formula Span Span_relation Span_tuple Spanner_core Spanner_fa Spanner_util String Variable
