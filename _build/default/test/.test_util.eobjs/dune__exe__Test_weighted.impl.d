test/test_weighted.ml: Alcotest Evset List Regex_formula Semiring Span Span_relation Span_tuple Spanner_core Spanner_weighted Variable Weighted
