test/test_datalog.ml: Alcotest Algebra Array Core_spanner Datalog Evset List Printf Regex_formula Span Span_relation Span_tuple Spanner_core Spanner_datalog String Variable
