test/test_fa.mli:
