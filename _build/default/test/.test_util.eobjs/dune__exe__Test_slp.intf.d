test/test_slp.mli:
