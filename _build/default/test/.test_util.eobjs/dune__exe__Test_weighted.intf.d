test/test_weighted.mli:
