test/test_split.ml: Alcotest Evset List Regex_formula Span Span_relation Spanner_core Spanner_fa Split Variable
