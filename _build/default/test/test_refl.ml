(* Tests for refl-spanners (§3): ref-words and dereferencing, refl
   regexes and automata, evaluation, the linear-time model checking of
   §3.3, reference-boundedness, and the two translations of §3.2. *)

open Spanner_core
open Spanner_refl

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list

let relation =
  Alcotest.testable (fun ppf r -> Span_relation.pp ?doc:None ppf r) Span_relation.equal

let t bindings = Span_tuple.of_list (List.map (fun (x, i, j) -> (v x, Span.make i j)) bindings)

let rel vars tuples = Span_relation.of_list (vs (List.map v vars)) tuples

(* ------------------------------------------------------------------ *)
(* Ref-words and 𝔡(·) *)

let paper_deref_example () =
  (* §3.1: w = ⊢x aa ⊢y bbb ⊣x cc x ⊣y abc y derives
     aabbbccaabbbabcbbbccaabbb *)
  let w = Refl_word.of_string "⊢xaa⊢ybbb⊣xcc&x⊣yabc&y" in
  check Alcotest.string "𝔡 then e" "aabbbccaabbbabcbbbccaabbb" (Refl_word.doc w);
  let tuple = Refl_word.span_tuple w in
  (* x's span covers "aabbb" = [1,6⟩; y's span covers bbb cc aabbb = [3,13⟩ *)
  check Alcotest.int "x left" 1 (Span.left (Span_tuple.get tuple (v "x")));
  check Alcotest.int "x right" 6 (Span.right (Span_tuple.get tuple (v "x")));
  check Alcotest.int "y left" 3 (Span.left (Span_tuple.get tuple (v "y")));
  check Alcotest.int "y right" 13 (Span.right (Span_tuple.get tuple (v "y")))

let refl_word_validate () =
  let ok s = Refl_word.validate (vs [ v "x"; v "y" ]) (Refl_word.of_string s) = Ok () in
  check Alcotest.bool "simple" true (ok "⊢xa⊣xb&x");
  check Alcotest.bool "ref before close" false (ok "⊢xa&x⊣x");
  check Alcotest.bool "ref before open" false (ok "&x⊢xa⊣x");
  check Alcotest.bool "ref inside other var" true (ok "⊢xa⊣x⊢y&x⊣y");
  check Alcotest.bool "unclosed" false (ok "⊢xab");
  check Alcotest.bool "foreign ref" false (ok "&z_foreign")

let refl_word_counts_and_parse () =
  let w = Refl_word.of_string "⊢xa⊣x&x&x b &x" in
  check Alcotest.int "ref count x" 3 (Refl_word.ref_count w (v "x"));
  check Alcotest.int "ref count y" 0 (Refl_word.ref_count w (v "y"));
  check Alcotest.string "print roundtrip" "⊢xa⊣x&x&x b &x"
    (Refl_word.to_string (Refl_word.of_string "⊢xa⊣x&x&x b &x"))

(* ------------------------------------------------------------------ *)
(* Refl regex and automaton *)

let refl_regex_parse () =
  let r = Refl_regex.parse "ab*!x{[ab]*}[bc]*!y{&x}b*" in
  check Alcotest.int "vars" 2 (Variable.Set.cardinal (Refl_regex.vars r));
  let printed = Refl_regex.to_string r in
  check Alcotest.string "stable print" printed (Refl_regex.to_string (Refl_regex.parse printed));
  check Alcotest.bool "size positive" true (Refl_regex.size r > 5)

let refl_automaton_soundness () =
  let sound s = Refl_automaton.soundness (Refl_automaton.of_regex (Refl_regex.parse s)) = Ok () in
  check Alcotest.bool "good" true (sound "!x{a*}b&x");
  check Alcotest.bool "ref before close" false (sound "!x{a&x}");
  check Alcotest.bool "ref before open" false (sound "&x!x{a}");
  check Alcotest.bool "ref on dead branch is fine" true (sound "!x{a}(&x|b)")

let refl_reference_bounded () =
  let bounded s = Refl_automaton.reference_bounded (Refl_automaton.of_regex (Refl_regex.parse s)) in
  check Alcotest.bool "no refs" true (bounded "!x{a*}b");
  check Alcotest.bool "two refs" true (bounded "!x{a}&x&x");
  check Alcotest.bool "starred ref unbounded" false (bounded "!x{b+}(a+&x)*a");
  check Alcotest.bool "plus ref unbounded" false (bounded "!x{b}(&x)+");
  (* max counts *)
  let a = Refl_automaton.of_regex (Refl_regex.parse "!x{a}(&x|&x&x)b!y{c}&y") in
  let counts = Refl_automaton.max_ref_counts a in
  check Alcotest.int "x max 2" 2 (Variable.Map.find (v "x") counts);
  check Alcotest.int "y max 1" 1 (Variable.Map.find (v "y") counts)

(* ------------------------------------------------------------------ *)
(* Evaluation and the §3.3 decision problems *)

let refl_eval_paper_example () =
  (* Example (3): a b* ⊢x (a∨b)* ⊣x (b∨c)* ⊢y x ⊣y b* *)
  let s = Refl_spanner.parse "ab*!x{[ab]*}[bc]*!y{&x}b*" in
  let r = Refl_spanner.eval s "abacabb" in
  check relation "single tuple" (rel [ "x"; "y" ] [ t [ ("x", 3, 4); ("y", 5, 6) ] ]) r;
  (* equal a-blocks: x{a+} b y{&x} *)
  let s2 = Refl_spanner.parse "!x{a+}b!y{&x}" in
  check relation "aa b aa"
    (rel [ "x"; "y" ] [ t [ ("x", 1, 3); ("y", 4, 6) ] ])
    (Refl_spanner.eval s2 "aabaa");
  check Alcotest.int "a b aa has none" 0 (Span_relation.cardinal (Refl_spanner.eval s2 "abaa"))

let refl_model_check () =
  let s = Refl_spanner.parse "!x{[ab]+}c!y{&x}[ab]*" in
  let doc = "abcabab" in
  check Alcotest.bool "yes" true (Refl_spanner.model_check s doc (t [ ("x", 1, 3); ("y", 4, 6) ]));
  check Alcotest.bool "no: unequal" false
    (Refl_spanner.model_check s doc (t [ ("x", 1, 3); ("y", 5, 7) ]));
  check Alcotest.bool "no: missing var" false (Refl_spanner.model_check s doc (t [ ("x", 1, 3) ]));
  check Alcotest.bool "no: span too large" false
    (Refl_spanner.model_check s doc (t [ ("x", 1, 3); ("y", 4, 9) ]));
  (* agreement with eval on every tuple of a document *)
  let r = Refl_spanner.eval s doc in
  List.iter
    (fun tuple ->
      if not (Refl_spanner.model_check s doc tuple) then
        Alcotest.failf "eval tuple rejected by model_check")
    (Span_relation.tuples r);
  (* a marker at the reference's left edge is fine... *)
  let s3 = Refl_spanner.parse "!x{ab}!y{a}&x" in
  check Alcotest.bool "marker at reference edge accepted" true
    (Refl_spanner.model_check s3 "abaab" (t [ ("x", 1, 3); ("y", 3, 4) ]));
  (* ...but a marker strictly inside the region a reference must read
     can never be produced (references substitute to plain strings) *)
  let s4 = Refl_spanner.parse "!x{ab}&x!y{[bc]}" in
  check Alcotest.bool "valid tuple accepted" true
    (Refl_spanner.model_check s4 "ababb" (t [ ("x", 1, 3); ("y", 5, 6) ]));
  check Alcotest.bool "marker inside reference region rejected" false
    (Refl_spanner.model_check s4 "ababb" (t [ ("x", 1, 3); ("y", 4, 5) ]))

let refl_nonempty_satisfiable () =
  let s = Refl_spanner.parse "!x{[ab]+}c&x" in
  check Alcotest.bool "nonempty abcab" true (Refl_spanner.nonempty_on s "abcab");
  check Alcotest.bool "empty abcba" false (Refl_spanner.nonempty_on s "abcba");
  check Alcotest.bool "satisfiable" true (Refl_spanner.satisfiable s);
  let dead = Refl_spanner.parse "!x{a[]}&x" in
  check Alcotest.bool "unsatisfiable" false (Refl_spanner.satisfiable dead)

(* ------------------------------------------------------------------ *)
(* Translations (§3.2) *)

let refl_to_core () =
  let cases = [ "!x{a+}b&x"; "ab*!x{[ab]*}[bc]*!y{&x}b*"; "!x{a}&x&x"; "!x{ab|ba}c&x" ] in
  let docs = [ "aba"; "aabaa"; "abcab"; "aaa"; "abacabb"; "bacba"; "abcabab"; "a" ] in
  List.iter
    (fun rs ->
      let s = Refl_spanner.parse rs in
      let core = Refl_spanner.to_core s in
      List.iter
        (fun doc ->
          let r1 = Refl_spanner.eval s doc in
          let r2 = Core_spanner.eval core doc in
          if not (Span_relation.equal r1 r2) then Alcotest.failf "%s differs on %S" rs doc)
        docs)
    cases

let refl_to_core_unbounded_rejected () =
  let unbounded = Refl_spanner.parse "a+!x{b+}(a+&x)*a+" in
  check Alcotest.bool "detected unbounded" false (Refl_spanner.reference_bounded unbounded);
  Alcotest.check_raises "to_core refuses"
    (Invalid_argument "Refl_spanner.to_core: spanner is not reference-bounded (not a core spanner)")
    (fun () -> ignore (Refl_spanner.to_core unbounded))

let unbounded_refl_semantics () =
  (* ⟦a+ x{b+} (a+ x)* a+⟧: the [9, Thm 6.1]-style non-core spanner —
     still evaluable here. *)
  let s = Refl_spanner.parse "a+!x{b+}(a+&x)*a+" in
  check Alcotest.int "two repetitions" 1
    (Span_relation.cardinal (Refl_spanner.eval s "abbabbabba"));
  check Alcotest.int "one repetition" 1 (Span_relation.cardinal (Refl_spanner.eval s "abbabba"));
  check Alcotest.int "mismatched block" 0 (Span_relation.cardinal (Refl_spanner.eval s "abbaba"));
  check Alcotest.int "zero repetitions fine" 1
    (Span_relation.cardinal (Refl_spanner.eval s "abba"))

let core_to_refl_beta_example () =
  (* The β/β′ refinement of §3.2: bodies a(a|b)* and (a|b)*b, class
     {x, y}: the representative must be rebound to the intersection. *)
  let f = Regex_formula.parse "ab*!x{a[ab]*}[bc]*!y{[ab]*b}b*" in
  let refl = Refl_spanner.of_core_formula ~formula:f ~selections:[ vs [ v "x"; v "y" ] ] in
  let core =
    Core_spanner.simplify (Algebra.Select (vs [ v "x"; v "y" ], Algebra.Formula f))
  in
  List.iter
    (fun doc ->
      let r1 = Refl_spanner.eval refl doc in
      let r2 = Core_spanner.eval core doc in
      if not (Span_relation.equal r1 r2) then Alcotest.failf "beta example differs on %S" doc)
    [ "aabcab"; "aabab"; "abab"; "aabcaab"; "abcab"; "aabbcaabb"; "ab"; "aabbabb" ]

let core_to_refl_three_way_class () =
  let f = Regex_formula.parse "!x{[ab]+}c!y{[ab]+}c!z{[ab]+}" in
  let refl =
    Refl_spanner.of_core_formula ~formula:f ~selections:[ vs [ v "x"; v "y"; v "z" ] ]
  in
  let core =
    Core_spanner.simplify
      (Algebra.Select (vs [ v "x"; v "y"; v "z" ], Algebra.Formula f))
  in
  List.iter
    (fun doc ->
      if not (Span_relation.equal (Refl_spanner.eval refl doc) (Core_spanner.eval core doc))
      then Alcotest.failf "three-way differs on %S" doc)
    [ "abcabcab"; "acaca"; "abcabcba"; "aacaacaa" ]

let core_to_refl_fragment_guards () =
  let reject formula selections =
    match Refl_spanner.of_core_formula ~formula:(Regex_formula.parse formula) ~selections with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "optional selected variable" true
    (reject "(!x{a})?!y{a}" [ vs [ v "x"; v "y" ] ]);
  check Alcotest.bool "nested selected binding" true
    (reject "!x{a!y{b}c}d!z{bc}" [ vs [ v "x"; v "z" ] ]);
  check Alcotest.bool "selected var under alternation" true
    (reject "(!x{a}|!x{b})!y{[ab]}" [ vs [ v "x"; v "y" ] ]);
  (* degenerate selections are fine *)
  check Alcotest.bool "singleton class dropped" false
    (reject "!x{a}!y{b}" [ vs [ v "x" ] ])

let refl_unsound_rejected () =
  Alcotest.check_raises "unsound automaton rejected"
    (Invalid_argument
       "Refl_spanner.of_automaton: unsound automaton: reference to x reachable before ⊣x")
    (fun () -> ignore (Refl_spanner.parse "!x{a&x}"))


let refl_contains_sound () =
  let small = Refl_spanner.parse "!x{a+}b&x" in
  let big = Refl_spanner.parse "!x{[ab]+}b&x" in
  check Alcotest.bool "smaller language contained" true (Refl_spanner.contains_sound big small);
  check Alcotest.bool "not the other way" false (Refl_spanner.contains_sound small big);
  check Alcotest.bool "reflexive" true (Refl_spanner.contains_sound small small);
  (* distinct ref-languages denoting overlapping spanners: sound test
     may say false — incompleteness is allowed, never unsoundness *)
  let alt = Refl_spanner.parse "!x{a+|b+}b&x" in
  check Alcotest.bool "superset language" true (Refl_spanner.contains_sound alt small)

let () =
  Alcotest.run "refl"
    [
      ( "refl_word",
        [
          tc "paper 𝔡 example (§3.1)" `Quick paper_deref_example;
          tc "validation" `Quick refl_word_validate;
          tc "ref counts / parsing" `Quick refl_word_counts_and_parse;
        ] );
      ( "refl_automaton",
        [
          tc "regex parse/print" `Quick refl_regex_parse;
          tc "soundness" `Quick refl_automaton_soundness;
          tc "reference boundedness (§3.2)" `Quick refl_reference_bounded;
        ] );
      ( "refl_spanner",
        [
          tc "eval (paper example (3))" `Quick refl_eval_paper_example;
          tc "model checking (§3.3)" `Quick refl_model_check;
          tc "nonemptiness/satisfiability (§3.3)" `Quick refl_nonempty_satisfiable;
          tc "unsound input rejected" `Quick refl_unsound_rejected;
          tc "sound containment (§3.3)" `Quick refl_contains_sound;
        ] );
      ( "translations",
        [
          tc "refl→core" `Quick refl_to_core;
          tc "refl→core guards" `Quick refl_to_core_unbounded_rejected;
          tc "unbounded refl semantics" `Quick unbounded_refl_semantics;
          tc "core→refl β example" `Quick core_to_refl_beta_example;
          tc "core→refl three-way class" `Quick core_to_refl_three_way_class;
          tc "core→refl fragment guards" `Quick core_to_refl_fragment_guards;
        ] );
    ]
