  $ spanner_cli eval '!x{[ab]*}!y{b}!z{[ab]*}' ababbab
  $ spanner_cli enum '.*!x{..}.*' abcd -n 2
  $ spanner_cli analyze '!x{a+}(!y{b})?'
  $ spanner_cli analyze '(!x{a})*'
  $ spanner_cli refl '!x{[a-z]+};&x' 'abc;abc' -c
  $ spanner_cli slpeval '[ab]*!x{ab}[ab]*' abababab -n 2
  $ spanner_cli eval '!x{' a
