(* Tests for the spanner algebra, core spanners and the
   core-simplification lemma (§2.3), plus the §2.4 hardness-mechanism
   encodings: pattern matching with variables, regular-language
   intersection emptiness, and the word-equation relations ~com and
   ~cyc. *)

open Spanner_core

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list

let t bindings = Span_tuple.of_list (List.map (fun (x, i, j) -> (v x, Span.make i j)) bindings)

let docs =
  [ ""; "a"; "b"; "ab"; "ba"; "aa"; "aab"; "aba"; "abab"; "abba"; "aabaa"; "abaaab"; "bbaabb" ]

(* ------------------------------------------------------------------ *)
(* Algebra basics *)

let algebra_schema_regular () =
  let e =
    Algebra.Project
      ( vs [ v "x" ],
        Algebra.Join (Algebra.formula "!x{a+}!y{b+}", Algebra.formula "!x{a+}[ab]*") )
  in
  check Alcotest.int "schema after projection" 1 (Variable.Set.cardinal (Algebra.schema e));
  check Alcotest.bool "regular" true (Algebra.is_regular e);
  let sel = Algebra.Select (vs [ v "x" ], e) in
  check Alcotest.bool "not regular with select" false (Algebra.is_regular sel);
  Alcotest.check_raises "compile_regular rejects select"
    (Invalid_argument "Algebra.compile_regular: expression contains a string-equality selection")
    (fun () -> ignore (Algebra.compile_regular sel));
  check Alcotest.int "size" 5 (Algebra.size sel)

let algebra_compile_regular () =
  (* compiled automaton evaluates like the materialised algebra *)
  let exprs =
    [
      Algebra.Union (Algebra.formula "!x{a}b", Algebra.formula "a!x{b}");
      Algebra.Join (Algebra.formula "!x{a+}.*", Algebra.formula ".*!y{b+}");
      Algebra.Project (vs [ v "x" ], Algebra.formula "!x{a*}!y{b*}");
      Algebra.Union
        ( Algebra.Project (vs [ v "x" ], Algebra.formula "!x{a}!y{b}"),
          Algebra.Join (Algebra.formula "!x{a}b*", Algebra.formula "!x{a}b*") );
    ]
  in
  List.iter
    (fun e ->
      let auto = Algebra.compile_regular e in
      List.iter
        (fun doc ->
          if not (Span_relation.equal (Evset.eval auto doc) (Algebra.eval e doc)) then
            Alcotest.failf "compile_regular differs on %S" doc)
        docs)
    exprs

(* ------------------------------------------------------------------ *)
(* Core simplification (§2.3) *)

let simplification_cases : (string * Algebra.t) list =
  [
    ("plain selection", Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{[ab]*}[ab]*!y{a*b*}"));
    ( "projection over selection",
      Algebra.Project
        (vs [ v "x" ], Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{[ab][ab]}.*!y{[ab][ab]}"))
    );
    ( "union of selections",
      Algebra.Union
        ( Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a+}!y{a+}"),
          Algebra.formula "!x{b}!y{b}" ) );
    ( "join with selection",
      Algebra.Join
        ( Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a*}b!y{a*}"),
          Algebra.formula "!x{a*}b.*" ) );
    ( "selection over join",
      Algebra.Select
        ( vs [ v "x"; v "y" ],
          Algebra.Join (Algebra.formula "!x{a+}[ab]*", Algebra.formula "[ab]*!y{a+}") ) );
    ( "nested unions",
      Algebra.Union
        ( Algebra.Union
            ( Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a*}!y{a*}"),
              Algebra.formula "b!x{a}!y{a}" ),
          Algebra.Project
            (vs [ v "x"; v "y" ], Algebra.Select (vs [ v "y"; v "z" ], Algebra.formula "!x{a}!y{b*}!z{b*}"))
        ) );
    ( "schemaless join with selection",
      Algebra.Join
        ( Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "(!x{a})?!y{a}b*"),
          Algebra.formula "!x{a}[ab]*|[ab]*" ) );
  ]

let core_simplification_matches_algebra () =
  List.iter
    (fun (name, e) ->
      let simplified = Core_spanner.simplify e in
      check Alcotest.bool
        (name ^ ": visible schema")
        true
        (Variable.Set.equal (Core_spanner.schema simplified) (Algebra.schema e));
      List.iter
        (fun doc ->
          let reference = Algebra.eval e doc in
          let via_simplified = Core_spanner.eval simplified doc in
          if not (Span_relation.equal reference via_simplified) then
            Alcotest.failf "%s differs on %S" name doc)
        docs)
    simplification_cases

let simplified_form_shape () =
  (* the lemma's normal form: one automaton, selections, a projection *)
  let e =
    Algebra.Union
      ( Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a+}!y{a+}"),
        Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{b+}!y{b+}") )
  in
  let s = Core_spanner.simplify e in
  check Alcotest.int "two selection classes" 2 (List.length s.Core_spanner.selections);
  (* all selection variables are hidden behind the projection *)
  List.iter
    (fun z ->
      check Alcotest.bool "selection variables hidden" true
        (Variable.Set.is_empty (Variable.Set.inter z s.Core_spanner.projection)))
    s.Core_spanner.selections

(* ------------------------------------------------------------------ *)
(* §2.4: the hardness-mechanism encodings *)

(* Pattern matching with variables: w ∈ {uu : u ∈ Σ*}? Encoded as
   π_∅(ς={x1,x2}(x1{Σ*} x2{Σ*})). *)
let copy_language () =
  let e =
    Algebra.Project
      ( Variable.Set.empty,
        Algebra.Select (vs [ v "x1"; v "x2" ], Algebra.formula "!x1{[ab]*}!x2{[ab]*}") )
  in
  let s = Core_spanner.simplify e in
  let is_square doc = Core_spanner.nonempty_on s doc in
  check Alcotest.bool "abab is a square" true (is_square "abab");
  check Alcotest.bool "aa is a square" true (is_square "aa");
  check Alcotest.bool "empty is a square" true (is_square "");
  check Alcotest.bool "aba is not" false (is_square "aba");
  check Alcotest.bool "abaaba is a square" true (is_square "abaaba");
  check Alcotest.bool "odd length never" false (is_square "ababa")

(* Intersection non-emptiness: ς={x1..xn}(x1{r1}...xn{rn}) is satisfiable
   iff ∩L(ri) ≠ ∅. *)
let intersection_nonemptiness () =
  let build rs =
    let formulas =
      List.mapi (fun i r -> Printf.sprintf "!ix%d{%s}" i r) rs |> String.concat ""
    in
    let cls = vs (List.mapi (fun i _ -> v (Printf.sprintf "ix%d" i)) rs) in
    Core_spanner.simplify (Algebra.Select (cls, Algebra.formula formulas))
  in
  let nonempty_inter = build [ "a[ab]*"; "[ab]*b"; "[ab][ab]" ] in
  check Alcotest.bool "ab witnesses" true
    (Core_spanner.satisfiable ~max_len:6 nonempty_inter = `Yes);
  let empty_inter = build [ "a+"; "b+" ] in
  (* a+ ∩ b+ = ∅: bounded search cannot certify emptiness, only Unknown *)
  check Alcotest.bool "no witness found" true
    (Core_spanner.satisfiable ~max_len:4 empty_inter = `Unknown)

(* ~com (xy = yx) and ~cyc (xz = zy): the word-equation relations of
   §2.4 expressed as core spanners, checked against direct string
   predicates. *)
let commutation_relation () =
  (* S_com over doc = u v (x = prefix u, y = suffix v): u and v commute
     iff both are powers of a common word.  Encode: doc = x y with
     xy = yx, i.e. select on two shadow copies laid over the document:
     x{...}y{...} with doc = xy and xy = yx ⟺ doc = yx as well.
     We use the spanner x{Σ*} y{Σ*} (covering the doc) joined with
     y'{Σ*} x'{Σ*} (covering the doc the other way) and selections
     x = x', y = y'. *)
  let e =
    Algebra.Select
      ( vs [ v "cx"; v "cx2" ],
        Algebra.Select
          ( vs [ v "cy"; v "cy2" ],
            Algebra.Join
              (Algebra.formula "!cx{[ab]*}!cy{[ab]*}", Algebra.formula "!cy2{[ab]*}!cx2{[ab]*}")
          ) )
  in
  let s = Core_spanner.simplify e in
  let commutes u w =
    (* search for a tuple with cx = [1, |u|+1⟩ *)
    let doc = u ^ w in
    let r = Core_spanner.eval s doc in
    List.exists
      (fun tuple ->
        match Span_tuple.find tuple (v "cx") with
        | Some sp -> Span.left sp = 1 && Span.right sp = String.length u + 1
        | None -> false)
      (Span_relation.tuples r)
  in
  check Alcotest.bool "ab, abab commute" true (commutes "ab" "abab");
  check Alcotest.bool "a, aa commute" true (commutes "a" "aa");
  check Alcotest.bool "ab, ba do not" false (commutes "ab" "ba");
  check Alcotest.bool "empty commutes" true (commutes "" "ab");
  (* direct predicate: u v = v u *)
  List.iter
    (fun (u, w) ->
      check Alcotest.bool
        (Printf.sprintf "agreement on (%s, %s)" u w)
        (u ^ w = w ^ u) (commutes u w))
    [ ("a", "ab"); ("aa", "a"); ("ab", "ab"); ("ba", "baba"); ("b", "a") ]

let cyclic_shift_relation () =
  (* u ~cyc v iff u = w1 w2 and v = w2 w1.  Over doc = u#v: spanner
     u1{Σ*} u2{Σ*} # v1{Σ*} v2{Σ*} with u1 = v2 and u2 = v1. *)
  let e =
    Algebra.Select
      ( vs [ v "u1"; v "v2" ],
        Algebra.Select
          ( vs [ v "u2"; v "v1" ],
            Algebra.formula "!u1{[ab]*}!u2{[ab]*}#!v1{[ab]*}!v2{[ab]*}" ) )
  in
  let s = Core_spanner.simplify e in
  let cyc u w = Core_spanner.nonempty_on s (u ^ "#" ^ w) in
  check Alcotest.bool "abc-style shift" true (cyc "aab" "aba");
  check Alcotest.bool "identity shift" true (cyc "ab" "ab");
  check Alcotest.bool "not a shift" false (cyc "aab" "abb");
  check Alcotest.bool "full rotation" true (cyc "ab" "ba");
  check Alcotest.bool "empty" true (cyc "" "")

(* ------------------------------------------------------------------ *)
(* Core-spanner decision problems *)

let core_model_checking () =
  let s =
    Core_spanner.simplify
      (Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula ".*!x{.+}.*!y{.+}.*"))
  in
  check Alcotest.bool "repeated ab found" true
    (Core_spanner.model_check s "abcab" (t [ ("x", 1, 3); ("y", 4, 6) ]));
  check Alcotest.bool "unequal rejected" false
    (Core_spanner.model_check s "abcab" (t [ ("x", 1, 3); ("y", 3, 5) ]));
  check Alcotest.bool "nonempty" true (Core_spanner.nonempty_on s "abcab");
  check Alcotest.bool "empty on short" false (Core_spanner.nonempty_on s "ab")

let core_static_analysis () =
  let equal_pair = Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a+}b!y{a+}") in
  let s = Core_spanner.simplify equal_pair in
  check Alcotest.bool "satisfiable" true (Core_spanner.satisfiable ~max_len:4 s = `Yes);
  let dead =
    Core_spanner.simplify (Algebra.Select (vs [ v "x" ], Algebra.formula "!x{a}[]"))
  in
  check Alcotest.bool "dead automaton certified" true
    (Core_spanner.satisfiable ~max_len:4 dead = `No);
  (* containment of x(a)b in x(a or b)b *)
  let sub = Core_spanner.simplify (Algebra.formula "!x{a}b") in
  let super = Core_spanner.simplify (Algebra.formula "!x{a|b}b") in
  check Alcotest.bool "bounded containment: no counterexample" true
    (Core_spanner.contained_in ~max_len:4 sub super = `Unknown);
  check Alcotest.bool "bounded containment: counterexample" true
    (Core_spanner.contained_in ~max_len:4 super sub = `No);
  check Alcotest.bool "equivalence: no" true (Core_spanner.equivalent ~max_len:4 super sub = `No)

let core_decision_facade () =
  let s =
    Core_spanner.simplify (Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{a+}!y{a+}"))
  in
  check Alcotest.bool "mc" true
    (Decision.Core.model_checking s "aa" (t [ ("x", 1, 2); ("y", 2, 3) ]));
  check Alcotest.bool "ne" true (Decision.Core.non_emptiness s "aa");
  check Alcotest.bool "sat" true (Decision.Core.satisfiability ~max_len:4 s = `Yes);
  check Alcotest.bool "hierarchical" true (Decision.Core.hierarchicality ~max_len:3 s = `Yes)

let select_guard () =
  let s = Core_spanner.of_regular (Evset.of_formula (Regex_formula.parse "!x{a}")) in
  Alcotest.check_raises "selection on hidden variable"
    (Invalid_argument "Core_spanner.select: selection variables must be visible") (fun () ->
      ignore (Core_spanner.select (vs [ v "not_visible_zz" ]) s))

let () =
  Alcotest.run "algebra"
    [
      ( "algebra",
        [
          tc "schema/regularity" `Quick algebra_schema_regular;
          tc "compile_regular" `Quick algebra_compile_regular;
        ] );
      ( "core-simplification",
        [
          tc "matches materialised algebra" `Quick core_simplification_matches_algebra;
          tc "normal form shape" `Quick simplified_form_shape;
        ] );
      ( "hardness-encodings (§2.4)",
        [
          tc "copy language / pattern matching" `Quick copy_language;
          tc "intersection non-emptiness" `Quick intersection_nonemptiness;
          tc "commutation ~com" `Quick commutation_relation;
          tc "cyclic shift ~cyc" `Quick cyclic_shift_relation;
        ] );
      ( "core-decision",
        [
          tc "model checking / nonemptiness" `Quick core_model_checking;
          tc "bounded static analysis" `Quick core_static_analysis;
          tc "decision facade" `Quick core_decision_facade;
          tc "select guard" `Quick select_guard;
        ] );
    ]
