(* Cross-library integration tests: full pipelines combining the
   spanner layers with the SLP substrate — the end-to-end scenarios the
   paper's sections compose (compress → balance → evaluate → edit →
   re-evaluate), plus a consistency matrix pitting all four evaluation
   routes against each other. *)

open Spanner_core
open Spanner_refl
open Spanner_slp
module X = Spanner_util.Xoshiro

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list

(* ------------------------------------------------------------------ *)
(* Four-way consistency: naive oracle, uncompressed enumeration,
   compressed enumeration, and ModelChecking of every produced tuple *)

let four_way_consistency () =
  let rng = X.create 2024 in
  let store = Slp.create_store () in
  let formulas =
    [ "!x{[ab]+}c!y{[ab]+}"; "[abc]*!x{ab?c}[abc]*"; "(!x{a+})?!y{[bc]+}"; ".*!x{..}.*" ]
  in
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      let engine = Slp_spanner.create e store in
      for _ = 1 to 10 do
        let doc = X.string rng "abc" (1 + X.int rng 30) in
        let oracle = Evset.eval e doc in
        let enum = Enumerate.to_relation e doc in
        let slp = Slp_spanner.to_relation engine (Builder.lz78 store doc) in
        if not (Span_relation.equal oracle enum) then
          Alcotest.failf "%s/%S: enumeration diverges" fs doc;
        if not (Span_relation.equal oracle slp) then
          Alcotest.failf "%s/%S: compressed evaluation diverges" fs doc;
        List.iter
          (fun tuple ->
            if not (Evset.accepts_tuple e doc tuple) then
              Alcotest.failf "%s/%S: ModelChecking rejects an output tuple" fs doc)
          (Span_relation.tuples oracle)
      done)
    formulas

(* ------------------------------------------------------------------ *)
(* The compress → balance → query → edit → re-query pipeline of §4 *)

let compressed_editing_pipeline () =
  let db = Doc_db.create () in
  let store = Doc_db.store db in
  (* two "log files" with heavy repetition *)
  let log1 = String.concat "" (List.init 50 (fun i -> if i mod 7 = 0 then "err;" else "ok;;")) in
  let log2 = String.concat "" (List.init 30 (fun _ -> "ok;;")) in
  ignore (Doc_db.add_string db "log1" log1);
  ignore (Doc_db.add_string db "log2" log2);
  check Alcotest.bool "db balanced" true
    (List.for_all
       (fun n -> Slp.is_strongly_balanced store (Doc_db.find db n))
       (Doc_db.names db));
  let spanner = Evset.of_formula (Regex_formula.parse "[ok;er]*!x{err}[ok;er]*") in
  let engine = Slp_spanner.create spanner store in
  let count name = Slp_spanner.cardinal engine (Doc_db.find db name) in
  check Alcotest.int "log1 errors" 8 (count "log1");
  check Alcotest.int "log2 errors" 0 (count "log2");
  (* edit: splice the head of log1 (with its error) into log2 *)
  let edited =
    Cde.materialize db "log2_patched"
      (Cde.Insert (Cde.Doc "log2", Cde.Extract (Cde.Doc "log1", 1, 8), 5))
  in
  check Alcotest.bool "edit keeps balance" true (Slp.is_strongly_balanced store edited);
  check Alcotest.int "patched has the error" 1 (count "log2_patched");
  (* the compressed answer agrees with decompress-and-run *)
  let doc = Slp.to_string store edited in
  check Alcotest.int "vs uncompressed" (Span_relation.cardinal (Evset.eval spanner doc))
    (count "log2_patched")

(* ------------------------------------------------------------------ *)
(* Core spanner over a compressed document: simplified form evaluated
   by the compressed automaton pipeline + selection post-filter *)

let core_spanner_over_slp () =
  let store = Slp.create_store () in
  let core =
    Core_spanner.simplify
      (Algebra.Select (vs [ v "x"; v "y" ], Algebra.formula "!x{[ab]+};!y{[ab]+};[ab;]*"))
  in
  let doc = "ab;ab;aa;bb;" in
  let id = Builder.lz78 store doc in
  (* evaluate the regular part compressed, then filter *)
  let engine = Slp_spanner.create core.Core_spanner.automaton store in
  let hash = Spanner_util.Strhash.make doc in
  let filtered = ref [] in
  Slp_spanner.iter engine id (fun tuple ->
      let ok =
        List.for_all
          (fun z ->
            let spans =
              Variable.Set.fold
                (fun x acc ->
                  match Span_tuple.find tuple x with None -> acc | Some s -> s :: acc)
                z []
            in
            match spans with
            | [] | [ _ ] -> true
            | first :: rest ->
                List.for_all
                  (fun s ->
                    Spanner_util.Strhash.equal_span hash
                      ~a:(Span.left first - 1, Span.right first - 1)
                      ~b:(Span.left s - 1, Span.right s - 1))
                  rest)
          core.Core_spanner.selections
      in
      if ok then filtered := Span_tuple.project core.Core_spanner.projection tuple :: !filtered);
  let compressed_result =
    Span_relation.of_list (Core_spanner.schema core) !filtered
  in
  let reference = Core_spanner.eval core doc in
  check Alcotest.bool "core spanner over SLP matches" true
    (Span_relation.equal compressed_result reference);
  check Alcotest.bool "found the repeated field" true
    (Span_relation.mem reference
       (Span_tuple.of_list [ (v "x", Span.make 1 3); (v "y", Span.make 4 6) ]))

(* ------------------------------------------------------------------ *)
(* Refl-spanner vs its core translation on documents reconstructed
   from an SLP *)

let refl_core_slp_roundtrip () =
  let store = Slp.create_store () in
  let refl = Refl_spanner.parse "!x{[ab]+};&x;[ab;]*" in
  let core = Refl_spanner.to_core refl in
  let rng = X.create 5 in
  for _ = 1 to 10 do
    let field = X.string rng "ab" (1 + X.int rng 4) in
    let doc = field ^ ";" ^ field ^ ";" ^ X.string rng "ab;" (X.int rng 8) in
    let id = Builder.lz78 store doc in
    let doc' = Slp.to_string store id in
    check Alcotest.string "slp roundtrip" doc doc';
    let r1 = Refl_spanner.eval refl doc' in
    let r2 = Core_spanner.eval core doc' in
    if not (Span_relation.equal r1 r2) then Alcotest.failf "refl/core diverge on %S" doc;
    check Alcotest.bool "found" true (Span_relation.cardinal r1 >= 1)
  done

(* ------------------------------------------------------------------ *)
(* Figure 1 database queried end to end *)

let figure1_end_to_end () =
  let fig = Figure1.build () in
  let db = fig.Figure1.db in
  let store = Doc_db.store db in
  let _ = Figure1.extend fig in
  (* spanner: occurrences of "bca" *)
  let e = Evset.of_formula (Regex_formula.parse "[abc]*!x{bca}[abc]*") in
  let engine = Slp_spanner.create e store in
  let counts =
    List.map
      (fun name -> (name, Slp_spanner.cardinal engine (Doc_db.find db name)))
      (Doc_db.names db)
  in
  List.iter
    (fun (name, count) ->
      let doc = Slp.to_string store (Doc_db.find db name) in
      let expected = Span_relation.cardinal (Evset.eval e doc) in
      check Alcotest.int (name ^ " occurrences") expected count)
    counts;
  (* D1 = ababbcabca has bca at positions 4..6 and 8..10 *)
  check Alcotest.int "D1 = 2 occurrences" 2 (List.assoc "D1" counts);
  (* enumeration yields the same spans as the uncompressed route *)
  let d1 = Doc_db.find db "D1" in
  let r = Slp_spanner.to_relation engine d1 in
  check Alcotest.bool "span [5,8⟩" true
    (Span_relation.mem r (Span_tuple.of_list [ (v "x", Span.make 5 8) ]));
  check Alcotest.bool "span [8,11⟩" true
    (Span_relation.mem r (Span_tuple.of_list [ (v "x", Span.make 8 11) ]))

(* ------------------------------------------------------------------ *)
(* Decision problems agree across representations *)

let decisions_across_representations () =
  let f = Regex_formula.parse "!x{a+}b!y{a+}" in
  let e = Evset.of_formula f in
  let d = Evset.determinize e in
  let docs = [ "aba"; "aabaa"; "ab"; "ba"; "aabb" ] in
  List.iter
    (fun doc ->
      check Alcotest.bool ("nonempty agree on " ^ doc) (Evset.nonempty_on e doc)
        (Evset.nonempty_on d doc))
    docs;
  check Alcotest.bool "equal spanners" true (Evset.equal_spanner e d);
  check Alcotest.bool "both satisfiable" true (Evset.satisfiable e && Evset.satisfiable d);
  (* joining with itself is identity for spanners *)
  check Alcotest.bool "self join identity" true (Evset.equal_spanner e (Evset.join e e));
  (* union with itself is identity *)
  check Alcotest.bool "self union identity" true (Evset.equal_spanner e (Evset.union e e))

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          tc "four-way evaluation consistency" `Quick four_way_consistency;
          tc "compress-balance-query-edit (§4)" `Quick compressed_editing_pipeline;
          tc "core spanner over SLP" `Quick core_spanner_over_slp;
          tc "refl/core over SLP documents" `Quick refl_core_slp_roundtrip;
          tc "Figure 1 end to end" `Quick figure1_end_to_end;
          tc "decisions across representations" `Quick decisions_across_representations;
        ] );
    ]
