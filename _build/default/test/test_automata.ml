(* Tests for the automaton layer: vset-automata, extended vset-automata
   (evaluation, algebra on automata, decision problems, determinisation)
   and the two-phase enumeration of §2.5. *)

open Spanner_core

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list

let relation =
  Alcotest.testable (fun ppf r -> Span_relation.pp ?doc:None ppf r) Span_relation.equal

let eval_formula s doc = Evset.eval (Evset.of_formula (Regex_formula.parse s)) doc

let t bindings = Span_tuple.of_list (List.map (fun (x, i, j) -> (v x, Span.make i j)) bindings)

let rel vars tuples = Span_relation.of_list (vs (List.map v vars)) tuples

(* ------------------------------------------------------------------ *)
(* Example 1.1 of the paper *)

let example_1_1 () =
  let r = eval_formula "!x{[ab]*}!y{b}!z{[ab]*}" "ababbab" in
  let expected =
    rel [ "x"; "y"; "z" ]
      [
        t [ ("x", 1, 2); ("y", 2, 3); ("z", 3, 8) ];
        t [ ("x", 1, 4); ("y", 4, 5); ("z", 5, 8) ];
        t [ ("x", 1, 5); ("y", 5, 6); ("z", 6, 8) ];
        t [ ("x", 1, 7); ("y", 7, 8); ("z", 8, 8) ];
      ]
  in
  check relation "paper table" expected r

(* ------------------------------------------------------------------ *)
(* Vset *)

let vset_compile_and_accept () =
  let a = Vset.of_formula (Regex_formula.parse "!x{a+}b") in
  check Alcotest.bool "accepts marked" true (Vset.accepts_marked a (Ref_word.of_string "⊢xaa⊣xb"));
  check Alcotest.bool "wrong marker position" false
    (Vset.accepts_marked a (Ref_word.of_string "⊢xa⊣xab"));
  check Alcotest.bool "missing marker" false (Vset.accepts_marked a (Ref_word.of_string "aab"));
  check Alcotest.int "vars" 1 (Variable.Set.cardinal (Vset.vars a))

let vset_soundness () =
  (* compiled formulas are always sound *)
  (match Vset.soundness (Vset.of_formula (Regex_formula.parse "!x{a*}(!y{b})?")) with
  | Ok functional -> check Alcotest.bool "schemaless formula not functional" false functional
  | Error e -> Alcotest.failf "unexpectedly unsound: %s" e);
  (match Vset.soundness (Vset.of_formula (Regex_formula.parse "!x{a*}!y{b}")) with
  | Ok functional -> check Alcotest.bool "total formula functional" true functional
  | Error e -> Alcotest.failf "unexpectedly unsound: %s" e);
  (* hand-built unsound automaton: ⊢x on a loop *)
  let b = Vset.Builder.create () in
  let s0 = Vset.Builder.add_state b in
  let s1 = Vset.Builder.add_state b in
  Vset.Builder.add_mark b s0 (Marker.Open (v "x")) s1;
  Vset.Builder.add_eps b s1 s0;
  Vset.Builder.add_mark b s1 (Marker.Close (v "x")) s1;
  let a = Vset.Builder.finish b ~initial:s0 ~finals:[ s1 ] ~vars:(vs [ v "x" ]) in
  (match Vset.soundness a with
  | Ok _ -> Alcotest.fail "loop automaton should be unsound"
  | Error _ -> ());
  (* builder guards foreign variables *)
  let b2 = Vset.Builder.create () in
  let q0 = Vset.Builder.add_state b2 in
  let q1 = Vset.Builder.add_state b2 in
  Vset.Builder.add_mark b2 q0 (Marker.Open (v "x")) q1;
  Alcotest.check_raises "foreign marker"
    (Invalid_argument "Vset.Builder.finish: a marker arc uses a variable outside ~vars")
    (fun () -> ignore (Vset.Builder.finish b2 ~initial:q0 ~finals:[ q1 ] ~vars:Variable.Set.empty))

let vset_projection_union () =
  let a = Vset.of_formula (Regex_formula.parse "!x{a}!y{b}") in
  let p = Vset.project (vs [ v "x" ]) a in
  let r = Evset.eval (Evset.of_vset p) "ab" in
  check relation "projection drops y" (rel [ "x" ] [ t [ ("x", 1, 2) ] ]) r;
  let u = Vset.union a (Vset.of_formula (Regex_formula.parse "!x{ab}")) in
  let r = Evset.eval (Evset.of_vset u) "ab" in
  check Alcotest.int "union has both" 2 (Span_relation.cardinal r)

(* ------------------------------------------------------------------ *)
(* Evset: evaluation and ModelChecking *)

let evset_eval_empty_doc () =
  check Alcotest.int "x{a*} on empty doc" 1 (Span_relation.cardinal (eval_formula "!x{a*}" ""));
  check Alcotest.int "x{a+} on empty doc" 0 (Span_relation.cardinal (eval_formula "!x{a+}" ""))

let evset_eval_all_spans () =
  (* .* x{.*} .* extracts every span: (n+1)(n+2)/2 tuples *)
  let r = eval_formula ".*!x{.*}.*" "abcd" in
  check Alcotest.int "all spans" 15 (Span_relation.cardinal r)

let evset_accepts_tuple () =
  let e = Evset.of_formula (Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}") in
  check Alcotest.bool "in" true
    (Evset.accepts_tuple e "ababbab" (t [ ("x", 1, 4); ("y", 4, 5); ("z", 5, 8) ]));
  check Alcotest.bool "out: y not on b" false
    (Evset.accepts_tuple e "ababbab" (t [ ("x", 1, 2); ("y", 2, 4); ("z", 4, 8) ]));
  check Alcotest.bool "out: partial tuple" false
    (Evset.accepts_tuple e "ababbab" (t [ ("x", 1, 4); ("y", 4, 5) ]));
  (* schemaless: partial tuples are members when the run omits the var *)
  let e2 = Evset.of_formula (Regex_formula.parse "a(!x{b})?c") in
  check Alcotest.bool "schemaless empty tuple" true (Evset.accepts_tuple e2 "ac" (t []));
  check Alcotest.bool "schemaless bound" true (Evset.accepts_tuple e2 "abc" (t [ ("x", 2, 3) ]));
  check Alcotest.bool "schemaless wrong" false (Evset.accepts_tuple e2 "abc" (t []))

let evset_nonempty_satisfiable () =
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  check Alcotest.bool "nonempty" true (Evset.nonempty_on e "aab");
  check Alcotest.bool "empty" false (Evset.nonempty_on e "bba");
  check Alcotest.bool "satisfiable" true (Evset.satisfiable e);
  let dead = Evset.of_formula (Regex_formula.parse "!x{a}[]") in
  check Alcotest.bool "unsatisfiable" false (Evset.satisfiable dead);
  (match Evset.some_witness e with
  | Some (doc, tuple) ->
      check Alcotest.bool "witness checks" true (Evset.accepts_tuple e doc tuple)
  | None -> Alcotest.fail "expected a witness");
  check Alcotest.bool "no witness for dead" true (Evset.some_witness dead = None)

(* ------------------------------------------------------------------ *)
(* Evset: algebra on automata vs relational algebra *)

let docs = [ ""; "a"; "b"; "ab"; "ba"; "aab"; "abb"; "abab"; "baab"; "ababb" ]

let check_equal_on_docs msg sym_eval rel_eval =
  List.iter
    (fun doc ->
      let symbolic = sym_eval doc and relational = rel_eval doc in
      if not (Span_relation.equal symbolic relational) then
        Alcotest.failf "%s differs on %S" msg doc)
    docs

let evset_union_vs_relational () =
  let e1 = Evset.of_formula (Regex_formula.parse "!x{a}b*") in
  let e2 = Evset.of_formula (Regex_formula.parse "a*!x{b}") in
  check_equal_on_docs "union"
    (fun doc -> Evset.eval (Evset.union e1 e2) doc)
    (fun doc -> Span_relation.union (Evset.eval e1 doc) (Evset.eval e2 doc))

let evset_join_vs_relational () =
  let cases =
    [
      ("!x{a+}[ab]*", "[ab]*!y{b+}");
      ("!x{a+}!y{b*}", "!x{a+}b*");
      ("(!x{a})?b*", "!x{a}b*|[ab]*");
      ("!x{[ab]}.*", ".!x{[ab]}.*|!x{[ab]}.*");
    ]
  in
  List.iter
    (fun (f1, f2) ->
      let e1 = Evset.of_formula (Regex_formula.parse f1) in
      let e2 = Evset.of_formula (Regex_formula.parse f2) in
      check_equal_on_docs
        (Printf.sprintf "join %s vs %s" f1 f2)
        (fun doc -> Evset.eval (Evset.join e1 e2) doc)
        (fun doc -> Span_relation.join (Evset.eval e1 doc) (Evset.eval e2 doc)))
    cases

let evset_project_vs_relational () =
  let e = Evset.of_formula (Regex_formula.parse "!x{a*}!y{b*}!z{a*}") in
  let keep = vs [ v "x"; v "z" ] in
  check_equal_on_docs "project"
    (fun doc -> Evset.eval (Evset.project keep e) doc)
    (fun doc -> Span_relation.project keep (Evset.eval e doc))

(* ------------------------------------------------------------------ *)
(* Evset: containment / equivalence / hierarchicality *)

let evset_containment () =
  let small = Evset.of_formula (Regex_formula.parse "!x{a}b") in
  let big = Evset.of_formula (Regex_formula.parse "!x{a|b}b") in
  check Alcotest.bool "small contained in big" true (Evset.contains big small);
  check Alcotest.bool "big not contained in small" false (Evset.contains small big);
  check Alcotest.bool "not equal" false (Evset.equal_spanner small big);
  (* same spanner, different formulas *)
  let a1 = Evset.of_formula (Regex_formula.parse "!x{a|b}c") in
  let a2 =
    Evset.union
      (Evset.of_formula (Regex_formula.parse "!x{a}c"))
      (Evset.of_formula (Regex_formula.parse "!x{b}c"))
  in
  check Alcotest.bool "union decomposition equal" true (Evset.equal_spanner a1 a2);
  (* marker positions matter, not just the language of documents *)
  let l = Evset.of_formula (Regex_formula.parse "!x{a}a") in
  let r = Evset.of_formula (Regex_formula.parse "a!x{a}") in
  check Alcotest.bool "same docs, different spans" false (Evset.equal_spanner l r)

let evset_hierarchical () =
  check Alcotest.bool "formula spanners are hierarchical" true
    (Evset.hierarchical (Evset.of_formula (Regex_formula.parse "!x{a!y{b}c}d!z{e}")));
  (* hand-built overlapping spanner: ⊢x a ⊢y a ⊣x a ⊣y *)
  let b = Vset.Builder.create () in
  let states = Array.init 8 (fun _ -> Vset.Builder.add_state b) in
  Vset.Builder.add_mark b states.(0) (Marker.Open (v "x")) states.(1);
  Vset.Builder.add_char b states.(1) 'a' states.(2);
  Vset.Builder.add_mark b states.(2) (Marker.Open (v "y")) states.(3);
  Vset.Builder.add_char b states.(3) 'a' states.(4);
  Vset.Builder.add_mark b states.(4) (Marker.Close (v "x")) states.(5);
  Vset.Builder.add_char b states.(5) 'a' states.(6);
  Vset.Builder.add_mark b states.(6) (Marker.Close (v "y")) states.(7);
  let ov =
    Evset.of_vset
      (Vset.Builder.finish b ~initial:states.(0) ~finals:[ states.(7) ]
         ~vars:(vs [ v "x"; v "y" ]))
  in
  check Alcotest.bool "overlap possible x,y" true (Evset.overlap_possible ov (v "x") (v "y"));
  check Alcotest.bool "overlap not possible y,x" false (Evset.overlap_possible ov (v "y") (v "x"));
  check Alcotest.bool "not hierarchical" false (Evset.hierarchical ov);
  (* nested spans do NOT strictly overlap *)
  check Alcotest.bool "nested not overlap" false
    (Evset.overlap_possible (Evset.of_formula (Regex_formula.parse "!x{a!y{b}c}")) (v "x") (v "y"))

let evset_rename_duplicate () =
  let e = Evset.of_formula (Regex_formula.parse "!x{a+}b") in
  let renamed = Evset.rename_vars (fun _ -> v "renamed_w") e in
  let r = Evset.eval renamed "aab" in
  check relation "renamed" (rel [ "renamed_w" ] [ t [ ("renamed_w", 1, 3) ] ]) r;
  let dup = Evset.duplicate_var e (v "x") (v "x_shadow") in
  let r = Evset.eval dup "ab" in
  check relation "shadow binds same span"
    (rel [ "x"; "x_shadow" ] [ t [ ("x", 1, 2); ("x_shadow", 1, 2) ] ])
    r;
  Alcotest.check_raises "duplicate of unknown"
    (Invalid_argument "Evset.duplicate_var: unknown variable") (fun () ->
      ignore (Evset.duplicate_var e (v "nonexistent_var_q") (v "q2")))

let evset_determinize () =
  let formulas =
    [ "!x{[ab]*}!y{b}!z{[ab]*}"; "[ab]*!x{a[ab]}[ab]*"; "a(!x{b})?c"; "!x{a*}|!x{a}a*" ]
  in
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      let d = Evset.determinize e in
      if not (Evset.is_deterministic d) then Alcotest.failf "%s: not deterministic" fs;
      if not (Evset.equal_spanner e d) then Alcotest.failf "%s: language changed" fs)
    formulas


let evset_to_vset_roundtrip () =
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      let vv = Evset.to_vset e in
      (match Vset.soundness vv with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: to_vset unsound: %s" fs m);
      if not (Evset.equal_spanner e (Evset.of_vset vv)) then
        Alcotest.failf "%s: to_vset roundtrip changed the spanner" fs)
    [ "!x{[ab]*}!y{b}!z{[ab]*}"; "a(!x{b})?c"; "!x{a*}|!x{a}a*"; "!x{!y{a}b}" ]

let evset_pp_dot () =
  let e = Evset.of_formula (Regex_formula.parse "!x{ab}") in
  let dot = Format.asprintf "%a" Evset.pp_dot e in
  check Alcotest.bool "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions dashed set arcs" true (contains_sub dot "style=dashed");
  check Alcotest.bool "mentions accepting state" true (contains_sub dot "doublecircle")

(* ------------------------------------------------------------------ *)
(* Enumeration (§2.5) *)

let enumeration_matches_oracle () =
  let formulas =
    [
      "!x{[ab]*}!y{b}!z{[ab]*}";
      "[ab]*!x{a[ab]}[ab]*";
      ".*!x{.*}.*";
      "a(!x{b})?c";
      "!x{a*}!y{b*}";
      "(!x{a+}|!y{b+})[ab]*";
    ]
  in
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      List.iter
        (fun doc ->
          let oracle = Evset.eval e doc in
          let enum = Enumerate.to_relation e doc in
          if not (Span_relation.equal oracle enum) then
            Alcotest.failf "%s on %S: enumeration differs from oracle" fs doc)
        docs)
    formulas

let enumeration_duplicate_free () =
  let e = Evset.of_formula (Regex_formula.parse ".*!x{.*}.*") in
  let p = Enumerate.prepare e "aaaa" in
  let seen = Hashtbl.create 16 in
  Enumerate.iter p (fun tuple ->
      let key = Format.asprintf "%a" Span_tuple.pp tuple in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate tuple %s" key;
      Hashtbl.add seen key ());
  check Alcotest.int "15 spans of aaaa" 15 (Hashtbl.length seen)

let enumeration_cardinal () =
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{a}[ab]*") in
  let p = Enumerate.prepare e "abaabbba" in
  check Alcotest.int "cardinal = #a" 4 (Enumerate.cardinal p);
  check Alcotest.int "empty doc" 0 (Enumerate.cardinal (Enumerate.prepare e ""));
  let p2 = Enumerate.prepare e "bbb" in
  check Alcotest.int "no match" 0 (Enumerate.cardinal p2);
  check Alcotest.bool "first none" true (Enumerate.first p2 = None);
  check Alcotest.bool "first some" true (Enumerate.first p <> None)

let enumeration_seq_lazy () =
  let e = Evset.of_formula (Regex_formula.parse "[a]*!x{a}[a]*") in
  let p = Enumerate.prepare e (String.make 50 'a') in
  let s = Enumerate.to_seq p in
  let first3 = List.of_seq (Seq.take 3 s) in
  check Alcotest.int "take 3" 3 (List.length first3);
  check Alcotest.int "full count" 50 (List.length (List.of_seq s))

let enumeration_stats () =
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let p = Enumerate.prepare e "abababab" in
  let stats = Enumerate.stats p in
  check Alcotest.int "boundaries" 9 stats.Enumerate.boundaries;
  check Alcotest.bool "nodes positive" true (stats.Enumerate.nodes > 0);
  check Alcotest.bool "edges positive" true (stats.Enumerate.edges > 0)

(* ------------------------------------------------------------------ *)
(* Decision-module façade *)

let decision_regular () =
  let e = Evset.of_formula (Regex_formula.parse "!x{a+}b") in
  check Alcotest.bool "model checking" true
    (Decision.Regular.model_checking e "aab" (t [ ("x", 1, 3) ]));
  check Alcotest.bool "non emptiness" true (Decision.Regular.non_emptiness e "ab");
  check Alcotest.bool "satisfiability" true (Decision.Regular.satisfiability e);
  check Alcotest.bool "hierarchicality" true (Decision.Regular.hierarchicality e);
  check Alcotest.bool "containment self" true (Decision.Regular.containment e e);
  check Alcotest.bool "equivalence self" true (Decision.Regular.equivalence e e)

let () =
  Alcotest.run "automata"
    [
      ("example", [ tc "Example 1.1" `Quick example_1_1 ]);
      ( "vset",
        [
          tc "compile/accepts_marked" `Quick vset_compile_and_accept;
          tc "soundness" `Quick vset_soundness;
          tc "projection/union" `Quick vset_projection_union;
        ] );
      ( "evset-eval",
        [
          tc "empty documents" `Quick evset_eval_empty_doc;
          tc "all spans" `Quick evset_eval_all_spans;
          tc "ModelChecking" `Quick evset_accepts_tuple;
          tc "NonEmptiness/Satisfiability" `Quick evset_nonempty_satisfiable;
        ] );
      ( "evset-algebra",
        [
          tc "union vs relational" `Quick evset_union_vs_relational;
          tc "join vs relational" `Quick evset_join_vs_relational;
          tc "project vs relational" `Quick evset_project_vs_relational;
          tc "rename/duplicate" `Quick evset_rename_duplicate;
        ] );
      ( "evset-static",
        [
          tc "containment/equivalence" `Quick evset_containment;
          tc "hierarchicality" `Quick evset_hierarchical;
          tc "determinisation" `Quick evset_determinize;
          tc "to_vset roundtrip" `Quick evset_to_vset_roundtrip;
          tc "dot export" `Quick evset_pp_dot;
        ] );
      ( "enumerate",
        [
          tc "matches oracle" `Quick enumeration_matches_oracle;
          tc "duplicate free" `Quick enumeration_duplicate_free;
          tc "cardinal" `Quick enumeration_cardinal;
          tc "lazy sequence" `Quick enumeration_seq_lazy;
          tc "stats" `Quick enumeration_stats;
        ] );
      ("decision", [ tc "regular facade" `Quick decision_regular ]);
    ]
