(* Tests for context-free spanners ([31], §2.1's "replace regular by
   any language class"): grammar construction, the regular embedding
   checked against the automaton evaluator, beyond-regular extraction
   (Dyck groups, palindromes) checked against brute force, and the
   decision procedures. *)

open Spanner_core
open Spanner_cfg
module Charset = Spanner_fa.Charset

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

let relation =
  Alcotest.testable (fun ppf r -> Span_relation.pp ?doc:None ppf r) Span_relation.equal

(* ------------------------------------------------------------------ *)
(* Grammar plumbing *)

let builder_guards () =
  let b = Cfg.Builder.create () in
  let s = Cfg.Builder.fresh b "S" in
  Cfg.Builder.add_rule b s [ Cfg.Nt 42 ];
  Alcotest.check_raises "unknown nonterminal"
    (Invalid_argument "Cfg.Builder.finish: unknown nonterminal 42") (fun () ->
      ignore (Cfg.Builder.finish b ~start:s))

let grammar_accessors () =
  let b = Cfg.Builder.create () in
  let s = Cfg.Builder.fresh b "S" in
  let a = Cfg.Builder.fresh b "A" in
  Cfg.Builder.add_rule b s [ Cfg.Nt a; Cfg.Mark (Marker.Open (v "x")) ];
  Cfg.Builder.add_rule b a [ Cfg.Term (Charset.singleton 'q') ];
  let g = Cfg.Builder.finish b ~start:s in
  check Alcotest.int "nt_count" 2 (Cfg.nt_count g);
  check Alcotest.string "nt_name" "A" (Cfg.nt_name g a);
  check Alcotest.int "rules" 2 (List.length (Cfg.rules g));
  check Alcotest.bool "vars" true (Variable.Set.mem (v "x") (Cfg.vars g));
  check Alcotest.int "start" s (Cfg.start g)

let binarize_shapes () =
  let b = Cfg.Builder.create () in
  let s = Cfg.Builder.fresh b "S" in
  Cfg.Builder.add_rule b s
    [ Cfg.Term (Charset.singleton 'a'); Cfg.Term (Charset.singleton 'b');
      Cfg.Term (Charset.singleton 'c'); Cfg.Nt s ];
  Cfg.Builder.add_rule b s [];
  let bin = Cfg.binarize (Cfg.Builder.finish b ~start:s) in
  check Alcotest.bool "chain nonterminals introduced" true (bin.Cfg.bnt_count > 1);
  check Alcotest.int "one null" 1 (List.length bin.Cfg.nulls);
  check Alcotest.int "three binary rules from the 4-symbol rhs" 3 (List.length bin.Cfg.pairs)

(* ------------------------------------------------------------------ *)
(* Regular embedding: CF evaluator ≡ automaton evaluator *)

let regular_embedding () =
  let formulas =
    [
      "!x{[ab]*}!y{b}!z{[ab]*}";
      "a(!x{b})?c";
      "[ab]*!x{a[ab]}[ab]*";
      "!x{a*}|!x{a}a*";
      "!x{a+}!y{b+}";
      ".*!x{..}.*";
    ]
  in
  let docs = [ ""; "a"; "ab"; "ababbab"; "abc"; "ac"; "baab"; "aabb" ] in
  List.iter
    (fun fs ->
      let cf = Cf_spanner.of_formula (Regex_formula.parse fs) in
      let re = Evset.of_formula (Regex_formula.parse fs) in
      List.iter
        (fun doc ->
          let r_cf = Cf_spanner.eval cf doc in
          let r_re = Evset.eval re doc in
          if not (Span_relation.equal r_cf r_re) then
            Alcotest.failf "%s differs on %S" fs doc;
          if Cf_spanner.nonempty_on cf doc <> not (Span_relation.is_empty r_re) then
            Alcotest.failf "%s: nonempty_on differs on %S" fs doc;
          List.iter
            (fun t ->
              if not (Cf_spanner.accepts_tuple cf doc t) then
                Alcotest.failf "%s: member tuple rejected on %S" fs doc)
            (Span_relation.tuples r_re))
        docs)
    formulas

let model_checking_rejects () =
  let cf = Cf_spanner.of_formula (Regex_formula.parse "!x{a+}b") in
  check Alcotest.bool "yes" true
    (Cf_spanner.accepts_tuple cf "aab" (Span_tuple.of_list [ (v "x", Span.make 1 3) ]));
  check Alcotest.bool "wrong span" false
    (Cf_spanner.accepts_tuple cf "aab" (Span_tuple.of_list [ (v "x", Span.make 1 2) ]));
  check Alcotest.bool "foreign var" false
    (Cf_spanner.accepts_tuple cf "aab"
       (Span_tuple.of_list [ (v "zz_cfg_foreign", Span.make 1 2) ]));
  check Alcotest.bool "span too big" false
    (Cf_spanner.accepts_tuple cf "aab" (Span_tuple.of_list [ (v "x", Span.make 1 9) ]))

(* ------------------------------------------------------------------ *)
(* Beyond-regular extraction *)

let balanced_group s =
  String.length s >= 2
  && s.[0] = '('
  && s.[String.length s - 1] = ')'
  &&
  let d = ref 0 and ok = ref true in
  String.iteri
    (fun i c ->
      if c = '(' then incr d
      else if c = ')' then begin
        decr d;
        if !d < 0 then ok := false;
        if !d = 0 && i < String.length s - 1 then ok := false
      end)
    s;
  !ok && !d = 0

let dyck_vs_bruteforce () =
  let dyck =
    Cf_spanner.dyck_extractor ~x:(v "x") ~open_c:'(' ~close_c:')'
      ~other:(Charset.of_string "ab")
  in
  List.iter
    (fun doc ->
      let got = Cf_spanner.eval dyck doc in
      let expected = ref (Span_relation.empty (Variable.Set.singleton (v "x"))) in
      for i = 1 to String.length doc do
        for j = i to String.length doc do
          if balanced_group (String.sub doc (i - 1) (j - i + 1)) then
            expected :=
              Span_relation.add !expected
                (Span_tuple.of_list [ (v "x", Span.make i (j + 1)) ])
        done
      done;
      check relation (Printf.sprintf "groups of %S" doc) !expected got)
    [ "a(()(ab))b()"; "()"; "(("; "))(("; ""; "(a(b)a)(b)"; "((((a))))" ]

let palindromes_vs_bruteforce () =
  let pal = Cf_spanner.palindrome_extractor ~x:(v "x") in
  let is_even_palindrome s =
    let n = String.length s in
    n > 0 && n mod 2 = 0
    && List.for_all (fun i -> s.[i] = s.[n - 1 - i]) (List.init (n / 2) Fun.id)
  in
  List.iter
    (fun doc ->
      let got = Cf_spanner.eval pal doc in
      let expected = ref (Span_relation.empty (Variable.Set.singleton (v "x"))) in
      for i = 1 to String.length doc do
        for j = i to String.length doc do
          if is_even_palindrome (String.sub doc (i - 1) (j - i + 1)) then
            expected :=
              Span_relation.add !expected
                (Span_tuple.of_list [ (v "x", Span.make i (j + 1)) ])
        done
      done;
      check relation (Printf.sprintf "palindromes of %S" doc) !expected got)
    [ "abbaab"; "aaaa"; "ab"; "a"; ""; "abab" ]

let dyck_is_not_regular_note () =
  (* sanity: the Dyck extractor accepts deeply nested groups that any
     fixed-depth regular approximation would miss *)
  let dyck =
    Cf_spanner.dyck_extractor ~x:(v "x") ~open_c:'(' ~close_c:')' ~other:Charset.empty
  in
  let deep = String.make 30 '(' ^ String.make 30 ')' in
  let r = Cf_spanner.eval dyck deep in
  (* groups: ((((...)))) at every depth: exactly 30 *)
  check Alcotest.int "30 nested groups" 30 (Span_relation.cardinal r);
  check Alcotest.bool "whole doc is a group" true
    (Span_relation.mem r (Span_tuple.of_list [ (v "x", Span.make 1 61) ]))

(* ------------------------------------------------------------------ *)
(* Satisfiability *)

let satisfiability () =
  let sat = Cf_spanner.of_formula (Regex_formula.parse "!x{a+}") in
  check Alcotest.bool "satisfiable" true (Cf_spanner.satisfiable sat);
  let unsat = Cf_spanner.of_formula (Regex_formula.parse "!x{a}[]") in
  check Alcotest.bool "unsatisfiable" false (Cf_spanner.satisfiable unsat);
  (* a nonterminal that only derives itself is unproductive *)
  let b = Cfg.Builder.create () in
  let s = Cfg.Builder.fresh b "S" in
  Cfg.Builder.add_rule b s [ Cfg.Nt s ];
  check Alcotest.bool "self loop unproductive" false
    (Cf_spanner.satisfiable (Cf_spanner.of_cfg (Cfg.Builder.finish b ~start:s)))

let () =
  Alcotest.run "cfg"
    [
      ( "grammar",
        [
          tc "builder guards" `Quick builder_guards;
          tc "accessors" `Quick grammar_accessors;
          tc "binarisation" `Quick binarize_shapes;
        ] );
      ( "regular-embedding",
        [
          tc "eval = automaton eval" `Quick regular_embedding;
          tc "model checking rejections" `Quick model_checking_rejects;
        ] );
      ( "beyond-regular",
        [
          tc "Dyck groups vs brute force" `Quick dyck_vs_bruteforce;
          tc "palindromes vs brute force" `Quick palindromes_vs_bruteforce;
          tc "deep nesting" `Quick dyck_is_not_regular_note;
        ] );
      ("decision", [ tc "satisfiability" `Quick satisfiability ]);
    ]
