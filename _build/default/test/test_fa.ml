(* Unit tests for the classical finite-automata substrate: charsets,
   regex parsing/printing, Thompson NFAs, DFAs, minimisation,
   containment/equivalence, and state elimination back to regexes. *)

open Spanner_fa

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Charset *)

let charset_basic () =
  let cs = Charset.of_string "abc" in
  check Alcotest.bool "mem a" true (Charset.mem cs 'a');
  check Alcotest.bool "mem d" false (Charset.mem cs 'd');
  check Alcotest.int "cardinal" 3 (Charset.cardinal cs);
  check Alcotest.bool "full has everything" true (Charset.mem Charset.full '\255');
  check Alcotest.int "full cardinal" 256 (Charset.cardinal Charset.full);
  check Alcotest.bool "empty" true (Charset.is_empty Charset.empty)

let charset_ops () =
  let a = Charset.range 'a' 'f' and b = Charset.range 'd' 'k' in
  check Alcotest.int "union" 11 (Charset.cardinal (Charset.union a b));
  check Alcotest.int "inter" 3 (Charset.cardinal (Charset.inter a b));
  check Alcotest.int "diff" 3 (Charset.cardinal (Charset.diff a b));
  let comp = Charset.complement a in
  check Alcotest.bool "complement excludes" false (Charset.mem comp 'c');
  check Alcotest.bool "complement includes" true (Charset.mem comp 'z');
  check Alcotest.int "complement cardinal" 250 (Charset.cardinal comp)

let charset_elements () =
  let cs = Charset.of_string "cab" in
  check (Alcotest.list Alcotest.char) "sorted" [ 'a'; 'b'; 'c' ] (Charset.elements cs);
  check (Alcotest.option Alcotest.char) "choose" (Some 'a') (Charset.choose cs);
  check (Alcotest.option Alcotest.char) "choose empty" None (Charset.choose Charset.empty);
  check Alcotest.bool "equal" true (Charset.equal cs (Charset.of_string "abc"))

let charset_boundaries () =
  (* word boundaries at 63/64 and 127/128 *)
  let cs = Charset.range (Char.chr 60) (Char.chr 130) in
  check Alcotest.int "cardinal across words" 71 (Charset.cardinal cs);
  check Alcotest.bool "mem 63" true (Charset.mem cs (Char.chr 63));
  check Alcotest.bool "mem 64" true (Charset.mem cs (Char.chr 64));
  check Alcotest.bool "mem 131" false (Charset.mem cs (Char.chr 131));
  check Alcotest.bool "mem 59" false (Charset.mem cs (Char.chr 59))

(* ------------------------------------------------------------------ *)
(* Regex parsing and printing *)

let accepts r w = Nfa.accepts (Nfa.of_regex (Regex.parse r)) w

let regex_literals () =
  check Alcotest.bool "literal" true (accepts "abc" "abc");
  check Alcotest.bool "literal mismatch" false (accepts "abc" "abd");
  check Alcotest.bool "escaped star" true (accepts {|a\*b|} "a*b");
  check Alcotest.bool "escaped backslash" true (accepts {|a\\b|} {|a\b|});
  check Alcotest.bool "dot" true (accepts "a.c" "axc");
  check Alcotest.bool "empty regex accepts empty" true (accepts "" "")

let regex_operators () =
  check Alcotest.bool "alternation" true (accepts "ab|cd" "cd");
  check Alcotest.bool "star zero" true (accepts "a*" "");
  check Alcotest.bool "star many" true (accepts "a*" "aaaa");
  check Alcotest.bool "plus zero" false (accepts "a+" "");
  check Alcotest.bool "plus one" true (accepts "a+" "a");
  check Alcotest.bool "opt present" true (accepts "ab?c" "abc");
  check Alcotest.bool "opt absent" true (accepts "ab?c" "ac");
  check Alcotest.bool "grouping" true (accepts "(ab)+" "ababab");
  check Alcotest.bool "grouping no partial" false (accepts "(ab)+" "aba");
  check Alcotest.bool "precedence: concat over alt" true (accepts "ab|cd" "ab");
  check Alcotest.bool "precedence: star over concat" true (accepts "ab*" "abbb")

let regex_classes () =
  check Alcotest.bool "class" true (accepts "[abc]+" "cab");
  check Alcotest.bool "range" true (accepts "[a-z]+" "hello");
  check Alcotest.bool "range excludes" false (accepts "[a-z]+" "Hello");
  check Alcotest.bool "negated" true (accepts "[^0-9]+" "abc");
  check Alcotest.bool "negated excludes" false (accepts "[^0-9]+" "ab3");
  check Alcotest.bool "literal dash" true (accepts "[a-]+" "a-a");
  check Alcotest.bool "escaped bracket" true (accepts {|[\]]+|} "]]");
  check Alcotest.bool "empty class = empty lang" false (accepts "x[]" "x")

let regex_errors () =
  let fails s =
    match Regex.parse s with
    | exception Regex.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "unbalanced paren" true (fails "(ab");
  check Alcotest.bool "dangling star" true (fails "*a");
  check Alcotest.bool "unterminated class" true (fails "[ab");
  check Alcotest.bool "dangling escape" true (fails {|ab\|});
  check Alcotest.bool "reserved brace" true (fails "a{b");
  check Alcotest.bool "reserved amp" true (fails "a&b");
  check Alcotest.bool "reserved bang" true (fails "a!b");
  check Alcotest.bool "trailing junk" true (fails "a)b")


let regex_bounded_repetition () =
  check Alcotest.bool "exact" true (accepts "a{3}" "aaa");
  check Alcotest.bool "exact under" false (accepts "a{3}" "aa");
  check Alcotest.bool "exact over" false (accepts "a{3}" "aaaa");
  check Alcotest.bool "range low" true (accepts "a{2,4}" "aa");
  check Alcotest.bool "range high" true (accepts "a{2,4}" "aaaa");
  check Alcotest.bool "range over" false (accepts "a{2,4}" "aaaaa");
  check Alcotest.bool "open-ended" true (accepts "a{2,}" "aaaaaa");
  check Alcotest.bool "open-ended under" false (accepts "a{2,}" "a");
  check Alcotest.bool "group repetition" true (accepts "(ab){2}c" "ababc");
  check Alcotest.bool "zero lower bound" true (accepts "a{0,2}" "");
  let fails s = match Regex.parse s with exception Regex.Parse_error _ -> true | _ -> false in
  check Alcotest.bool "inverted bounds" true (fails "a{3,2}");
  check Alcotest.bool "empty braces" true (fails "a{}");
  check Alcotest.bool "unterminated" true (fails "a{2")

let regex_print_parse_roundtrip () =
  let cases =
    [ "abc"; "a|b"; "(a|b)*c"; "a+b?c*"; "[a-f]+"; "a(bc|de)*f"; {|a\*b|}; "x[]"; "(ab)?" ]
  in
  List.iter
    (fun s ->
      let r = Regex.parse s in
      let printed = Regex.to_string r in
      let r' = Regex.parse printed in
      if not (Nfa.equal_lang (Nfa.of_regex r) (Nfa.of_regex r')) then
        Alcotest.failf "roundtrip failed for %s -> %s" s printed)
    cases

let regex_smart_constructors () =
  check Alcotest.bool "empty annihilates" true (Regex.concat Regex.empty (Regex.char 'a') = Regex.Empty);
  check Alcotest.bool "epsilon unit" true (Regex.concat Regex.epsilon (Regex.char 'a') = Regex.char 'a');
  check Alcotest.bool "star of empty" true (Regex.star Regex.empty = Regex.Epsilon);
  check Alcotest.bool "nullable eps" true (Regex.nullable Regex.epsilon);
  check Alcotest.bool "nullable star" true (Regex.nullable (Regex.star (Regex.char 'a')));
  check Alcotest.bool "not nullable char" false (Regex.nullable (Regex.char 'a'));
  check Alcotest.bool "is_empty_lang" true (Regex.is_empty_lang (Regex.concat (Regex.char 'a') Regex.empty));
  check Alcotest.bool "escape roundtrip" true (accepts (Regex.escape "a*b|c") "a*b|c")

(* ------------------------------------------------------------------ *)
(* NFA operations *)

let nfa_ops () =
  let a = Nfa.of_regex (Regex.parse "ab") in
  let b = Nfa.of_regex (Regex.parse "cd") in
  check Alcotest.bool "union left" true (Nfa.accepts (Nfa.union a b) "ab");
  check Alcotest.bool "union right" true (Nfa.accepts (Nfa.union a b) "cd");
  check Alcotest.bool "union neither" false (Nfa.accepts (Nfa.union a b) "ad");
  check Alcotest.bool "concat" true (Nfa.accepts (Nfa.concat a b) "abcd");
  check Alcotest.bool "star empty" true (Nfa.accepts (Nfa.star a) "");
  check Alcotest.bool "star twice" true (Nfa.accepts (Nfa.star a) "abab");
  let i = Nfa.inter (Nfa.of_regex (Regex.parse "a*b*")) (Nfa.of_regex (Regex.parse "a?b?")) in
  check Alcotest.bool "inter ab" true (Nfa.accepts i "ab");
  check Alcotest.bool "inter aab" false (Nfa.accepts i "aab")

let nfa_decision () =
  check Alcotest.bool "empty lang" true (Nfa.is_empty_lang (Nfa.of_regex Regex.empty));
  check Alcotest.bool "nonempty" false (Nfa.is_empty_lang (Nfa.of_regex (Regex.parse "a")));
  check (Alcotest.option Alcotest.string) "shortest" (Some "ad")
    (Nfa.shortest_word (Nfa.of_regex (Regex.parse "a(bc)*d")));
  check (Alcotest.option Alcotest.string) "shortest of empty" None
    (Nfa.shortest_word (Nfa.of_regex Regex.empty));
  check (Alcotest.option Alcotest.string) "shortest epsilon" (Some "")
    (Nfa.shortest_word (Nfa.of_regex (Regex.parse "a*")))

let nfa_containment () =
  let sub = Nfa.of_regex (Regex.parse "(ab)+") in
  let sup = Nfa.of_regex (Regex.parse "[ab]*") in
  check Alcotest.bool "contained" true (Nfa.contains sup sub);
  check Alcotest.bool "not contained" false (Nfa.contains sub sup);
  check Alcotest.bool "self equal" true (Nfa.equal_lang sub sub);
  check Alcotest.bool "a*a* = a*" true
    (Nfa.equal_lang (Nfa.of_regex (Regex.parse "a*a*")) (Nfa.of_regex (Regex.parse "a*")))

let nfa_trim () =
  (* Build an NFA with junk states by unioning with the empty language *)
  let a = Nfa.union (Nfa.of_regex (Regex.parse "ab")) (Nfa.of_regex Regex.empty) in
  let t = Nfa.trim a in
  check Alcotest.bool "same language" true (Nfa.equal_lang a t);
  check Alcotest.bool "fewer or equal states" true (Nfa.size t <= Nfa.size a)

(* ------------------------------------------------------------------ *)
(* DFA *)

let dfa_accepts () =
  let d = Dfa.of_regex (Regex.parse "(a|b)*abb") in
  check Alcotest.bool "accepts" true (Dfa.accepts d "aabb");
  check Alcotest.bool "accepts long" true (Dfa.accepts d "abababb");
  check Alcotest.bool "rejects" false (Dfa.accepts d "ab");
  check Alcotest.bool "rejects empty" false (Dfa.accepts d "")

let dfa_complement () =
  let d = Dfa.of_regex (Regex.parse "a+") in
  let c = Dfa.complement d in
  check Alcotest.bool "complement rejects a" false (Dfa.accepts c "aa");
  check Alcotest.bool "complement accepts empty" true (Dfa.accepts c "");
  check Alcotest.bool "complement accepts b" true (Dfa.accepts c "b");
  check Alcotest.bool "double complement" true (Dfa.equal_lang d (Dfa.complement c))

let dfa_products () =
  let a = Dfa.of_regex (Regex.parse "a*b") and b = Dfa.of_regex (Regex.parse "ab*") in
  check Alcotest.bool "inter ab" true (Dfa.accepts (Dfa.inter a b) "ab");
  check Alcotest.bool "inter aab" false (Dfa.accepts (Dfa.inter a b) "aab");
  check Alcotest.bool "diff aab" true (Dfa.accepts (Dfa.diff a b) "aab");
  check Alcotest.bool "diff ab" false (Dfa.accepts (Dfa.diff a b) "ab")

let dfa_minimize () =
  (* (a|b)*abb has a canonical 4-state DFA (plus nothing else). *)
  let d = Dfa.of_regex (Regex.parse "(a|b)*abb") in
  let m = Dfa.minimize d in
  check Alcotest.bool "language preserved" true (Dfa.equal_lang d m);
  (* 4 textbook states plus the sink for bytes outside {a, b} *)
  check Alcotest.int "canonical size" 5 (Dfa.size m);
  (* Minimising twice is idempotent. *)
  check Alcotest.int "idempotent" (Dfa.size m) (Dfa.size (Dfa.minimize m))

let dfa_shortest () =
  check (Alcotest.option Alcotest.string) "shortest" (Some "abb")
    (Dfa.shortest_word (Dfa.of_regex (Regex.parse "(a|b)*abb")));
  check (Alcotest.option Alcotest.string) "none" None (Dfa.shortest_word (Dfa.of_regex Regex.empty))

let dfa_to_nfa () =
  let d = Dfa.of_regex (Regex.parse "a(b|c)d*") in
  let n = Dfa.to_nfa d in
  check Alcotest.bool "same language" true (Nfa.equal_lang n (Nfa.of_regex (Regex.parse "a(b|c)d*")))

(* ------------------------------------------------------------------ *)
(* To_regex *)

let to_regex_roundtrip () =
  let cases = [ "a"; "ab*c"; "(a|b)*abb"; "a+b+"; "(ab|ba)*"; "a?b?c?" ] in
  List.iter
    (fun s ->
      let n = Nfa.of_regex (Regex.parse s) in
      let r = To_regex.of_nfa n in
      if not (Nfa.equal_lang n (Nfa.of_regex r)) then
        Alcotest.failf "state elimination changed the language of %s (got %s)" s
          (Regex.to_string r))
    cases

let to_regex_intersection () =
  let i = To_regex.intersection_regex [ Regex.parse "a[ab]*"; Regex.parse "[ab]*b"; Regex.parse "..*" ] in
  let n = Nfa.of_regex i in
  check Alcotest.bool "ab in" true (Nfa.accepts n "ab");
  check Alcotest.bool "aab in" true (Nfa.accepts n "aab");
  check Alcotest.bool "a out" false (Nfa.accepts n "a");
  check Alcotest.bool "ba out" false (Nfa.accepts n "ba");
  Alcotest.check_raises "empty list" (Invalid_argument "To_regex.intersection_regex: empty list")
    (fun () -> ignore (To_regex.intersection_regex []))


(* ------------------------------------------------------------------ *)
(* Brzozowski derivatives: independent matcher cross-check *)

let derivative_basics () =
  let m r w = Derivative.matches (Regex.parse r) w in
  check Alcotest.bool "literal" true (m "abc" "abc");
  check Alcotest.bool "mismatch" false (m "abc" "abd");
  check Alcotest.bool "star" true (m "(ab)*" "abab");
  check Alcotest.bool "class" true (m "[a-c]+" "cab");
  check Alcotest.bool "alt" true (m "x|y" "y");
  check Alcotest.bool "empty regex" true (m "" "");
  check Alcotest.bool "plus needs one" false (m "a+" "")

let derivative_vs_nfa () =
  let rng = Spanner_util.Xoshiro.create 90 in
  let regexes = [ "a(b|c)*d"; "(ab|ba)+"; "[abc]*abc"; "a?b?c?d?"; "((a|b)(c|d))*"; "a{2,4}b" ] in
  List.iter
    (fun rs ->
      let r = Regex.parse rs in
      let nfa = Nfa.of_regex r in
      for _ = 1 to 200 do
        let w = Spanner_util.Xoshiro.string rng "abcd" (Spanner_util.Xoshiro.int rng 12) in
        if Derivative.matches r w <> Nfa.accepts nfa w then
          Alcotest.failf "derivative and NFA disagree: %s on %S" rs w
      done)
    regexes

let () =
  Alcotest.run "fa"
    [
      ( "charset",
        [
          tc "basic" `Quick charset_basic;
          tc "set operations" `Quick charset_ops;
          tc "elements/choose" `Quick charset_elements;
          tc "word boundaries" `Quick charset_boundaries;
        ] );
      ( "regex",
        [
          tc "literals/escapes" `Quick regex_literals;
          tc "operators" `Quick regex_operators;
          tc "character classes" `Quick regex_classes;
          tc "parse errors" `Quick regex_errors;
          tc "bounded repetition" `Quick regex_bounded_repetition;
          tc "print/parse roundtrip" `Quick regex_print_parse_roundtrip;
          tc "smart constructors" `Quick regex_smart_constructors;
        ] );
      ( "nfa",
        [
          tc "closure operations" `Quick nfa_ops;
          tc "decision procedures" `Quick nfa_decision;
          tc "containment/equivalence" `Quick nfa_containment;
          tc "trim" `Quick nfa_trim;
        ] );
      ( "dfa",
        [
          tc "membership" `Quick dfa_accepts;
          tc "complement" `Quick dfa_complement;
          tc "products" `Quick dfa_products;
          tc "minimisation" `Quick dfa_minimize;
          tc "shortest word" `Quick dfa_shortest;
          tc "to_nfa" `Quick dfa_to_nfa;
        ] );
      ( "derivative",
        [
          tc "basics" `Quick derivative_basics;
          tc "agrees with NFA on random words" `Quick derivative_vs_nfa;
        ] );
      ( "to_regex",
        [
          tc "state elimination roundtrip" `Quick to_regex_roundtrip;
          tc "intersection regex" `Quick to_regex_intersection;
        ] );
    ]
