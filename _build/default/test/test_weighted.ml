(* Tests for weighted spanners ([8]): semiring laws, the Boolean
   degeneration to ordinary semantics, run counting (ambiguity),
   tropical best-match extraction, and the union-doubling law. *)

open Spanner_core
open Spanner_weighted
module WB = Weighted.Make (Semiring.Boolean)
module WC = Weighted.Make (Semiring.Count)
module WMin = Weighted.Make (Semiring.Min_plus)
module WMax = Weighted.Make (Semiring.Max_plus)

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Semiring laws (spot checks on all instances) *)

let semiring_laws () =
  let module Check (K : Semiring.S) (N : sig
    val name : string

    val samples : K.t list
  end) =
  struct
    let () =
      List.iter
        (fun a ->
          if not (K.equal (K.plus a K.zero) a) then Alcotest.failf "%s: a⊕0 ≠ a" N.name;
          if not (K.equal (K.times a K.one) a) then Alcotest.failf "%s: a⊗1 ≠ a" N.name;
          if not (K.equal (K.times a K.zero) K.zero) then Alcotest.failf "%s: a⊗0 ≠ 0" N.name;
          List.iter
            (fun b ->
              if not (K.equal (K.plus a b) (K.plus b a)) then
                Alcotest.failf "%s: ⊕ not commutative" N.name;
              if not (K.equal (K.times a b) (K.times b a)) then
                Alcotest.failf "%s: ⊗ not commutative" N.name;
              List.iter
                (fun c ->
                  if
                    not
                      (K.equal
                         (K.times a (K.plus b c))
                         (K.plus (K.times a b) (K.times a c)))
                  then Alcotest.failf "%s: distributivity fails" N.name)
                N.samples)
            N.samples)
        N.samples
  end in
  let module _ =
    Check
      (Semiring.Boolean)
      (struct
        let name = "bool"

        let samples = [ true; false ]
      end)
  in
  let module _ =
    Check
      (Semiring.Count)
      (struct
        let name = "count"

        let samples = [ 0; 1; 2; 5 ]
      end)
  in
  let module _ =
    Check
      (Semiring.Min_plus)
      (struct
        let name = "min-plus"

        let samples = [ None; Some 0; Some 1; Some 7 ]
      end)
  in
  let module _ =
    Check
      (Semiring.Max_plus)
      (struct
        let name = "max-plus"

        let samples = [ None; Some 0; Some 1; Some 7 ]
      end)
  in
  ()

(* ------------------------------------------------------------------ *)
(* Boolean degeneration: weighted = ordinary *)

let boolean_degeneration () =
  let formulas = [ "[ab]*!x{ab}[ab]*"; "!x{a*}!y{b*}"; "a(!x{b})?c" ] in
  let docs = [ ""; "ab"; "abab"; "ac"; "abc"; "aabb" ] in
  List.iter
    (fun fs ->
      let e = Evset.of_formula (Regex_formula.parse fs) in
      let w = WB.uniform e in
      List.iter
        (fun doc ->
          let r = Evset.eval e doc in
          (* members weigh true *)
          List.iter
            (fun t ->
              if not (WB.tuple_weight w doc t) then Alcotest.failf "%s/%S: member weighs false" fs doc)
            (Span_relation.tuples r);
          (* total = nonemptiness *)
          if WB.total_weight w doc <> not (Span_relation.is_empty r) then
            Alcotest.failf "%s/%S: total ≠ nonempty" fs doc)
        docs)
    formulas

(* ------------------------------------------------------------------ *)
(* Counting: ambiguity *)

let count_deterministic_is_one () =
  let e = Evset.determinize (Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*")) in
  let w = WC.uniform e in
  let doc = "ababab" in
  let r = Evset.eval e doc in
  List.iter
    (fun t ->
      check Alcotest.int "1 run per tuple (deterministic)" 1 (WC.tuple_weight w doc t))
    (Span_relation.tuples r);
  check Alcotest.int "total = #tuples" (Span_relation.cardinal r) (WC.total_weight w doc)

let count_union_doubles () =
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let u = Evset.union e e in
  let doc = "abab" in
  let t = Span_tuple.of_list [ (v "x", Span.make 1 3) ] in
  let base = WC.tuple_weight (WC.uniform e) doc t in
  check Alcotest.bool "base positive" true (base > 0);
  check Alcotest.int "union doubles tuple count" (2 * base)
    (WC.tuple_weight (WC.uniform u) doc t);
  check Alcotest.int "union doubles total" (2 * WC.total_weight (WC.uniform e) doc)
    (WC.total_weight (WC.uniform u) doc)

let count_nonmember_is_zero () =
  let e = Evset.of_formula (Regex_formula.parse "!x{a+}b") in
  let w = WC.uniform e in
  check Alcotest.int "nonmember" 0
    (WC.tuple_weight w "aab" (Span_tuple.of_list [ (v "x", Span.make 1 2) ]));
  check Alcotest.int "foreign variable" 0
    (WC.tuple_weight w "aab" (Span_tuple.of_list [ (v "zz_wt", Span.make 1 2) ]))

(* ------------------------------------------------------------------ *)
(* Tropical semirings: best-match extraction *)

let minplus_costs () =
  (* cost model: 'b' outside the match costs 1, everything else 0 —
     prefer tuples in b-sparse contexts.  doc: the two matches of a+
     sit before 0 and 2 b's respectively. *)
  let e = Evset.determinize (Evset.of_formula (Regex_formula.parse "[ab]*!x{a+}[ab]*")) in
  let w =
    WMin.of_evset e
      ~letter_weight:(fun c -> if c = 'b' then Some 1 else Some 0)
      ~set_weight:(fun _ -> Some 0)
  in
  let doc = "abba" in
  (* every run reads the whole doc: cost = #b = 2 for all tuples *)
  check Alcotest.bool "uniform cost over full doc" true
    (List.for_all (fun (_, k) -> k = Some 2) (WMin.weighted_relation w doc));
  (* length-rewarding max-plus: set arcs free, letters inside x score…
     letters are not position-aware here, so score total length: every
     run scores |D|; check the aggregate *)
  let wmax =
    WMax.of_evset e ~letter_weight:(fun _ -> Some 1) ~set_weight:(fun _ -> Some 0)
  in
  check Alcotest.bool "max-plus total is |D|" true (WMax.total_weight wmax doc = Some 4)

let weighted_relation_sorted () =
  let e = Evset.of_formula (Regex_formula.parse "[ab]*!x{ab}[ab]*") in
  let u = Evset.union e (Evset.union e e) in
  let w = WC.uniform u in
  let rel = WC.weighted_relation w "abab" in
  check Alcotest.int "two tuples" 2 (List.length rel);
  let weights = List.map snd rel in
  check Alcotest.bool "sorted ascending" true (List.sort compare weights = weights);
  (match WC.best w "abab" with
  | Some (_, k) -> check Alcotest.int "best is least" (List.hd weights) k
  | None -> Alcotest.fail "expected a best tuple")

let () =
  Alcotest.run "weighted"
    [
      ("semirings", [ tc "laws" `Quick semiring_laws ]);
      ("boolean", [ tc "degenerates to ordinary semantics" `Quick boolean_degeneration ]);
      ( "count",
        [
          tc "deterministic = 1 run/tuple" `Quick count_deterministic_is_one;
          tc "union doubles" `Quick count_union_doubles;
          tc "nonmembers weigh zero" `Quick count_nonmember_is_zero;
        ] );
      ( "tropical",
        [
          tc "min-plus costs" `Quick minplus_costs;
          tc "weighted relation sorted / best" `Quick weighted_relation_sorted;
        ] );
    ]
