(* Tests for split-correctness ([7]): splitters, distributed
   evaluation, the composition automaton, and the decision procedure
   via spanner equivalence. *)

open Spanner_core

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

let spanner s = Evset.of_formula (Regex_formula.parse s)

let docs = [ ""; "a"; ";"; "aa;a"; "a;aa;"; ";;aa"; "ab;ba;ab"; "aba"; "a;b;a;b" ]

(* ------------------------------------------------------------------ *)
(* Splitters *)

let segments () =
  let p = Split.segments_splitter ~sep:';' in
  let spans doc = List.map (fun s -> (Span.left s, Span.right s)) (Split.splits p doc) in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "a;bb" [ (1, 2); (3, 5) ] (spans "a;bb");
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "empty segments" [ (1, 1); (2, 2) ] (spans ";");
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "no separator" [ (1, 3) ] (spans "ab")

let windows () =
  let p = Split.windows_splitter ~alphabet:(Spanner_fa.Charset.of_string "ab") ~size:2 in
  check Alcotest.int "3 windows of length 2 in abab" 3 (List.length (Split.splits p "abab"));
  check Alcotest.int "no window in short doc" 0 (List.length (Split.splits p "a"))

let splitter_guard () =
  Alcotest.check_raises "two variables rejected"
    (Invalid_argument "Split.splitter: a splitter has exactly one variable") (fun () ->
      ignore (Split.splitter (spanner "!x{a}!y{b}") (v "x")))

(* ------------------------------------------------------------------ *)
(* Composition correctness: compose = split_eval on every document *)

let compose_matches_split_eval () =
  let p = Split.segments_splitter ~sep:';' in
  let spanners =
    [ "[^;]*!x{a+}[^;]*"; "!x{[ab]*}"; "[^;]*!x{a}!y{b?}[^;]*"; "(!x{aa})?[^;]*" ]
  in
  List.iter
    (fun ss ->
      let s = spanner ss in
      let composed = Split.compose p s in
      List.iter
        (fun doc ->
          let via_compose = Evset.eval composed doc in
          let via_split = Split.split_eval p s doc in
          if not (Span_relation.equal via_compose via_split) then
            Alcotest.failf "compose ≠ split_eval for %s on %S" ss doc)
        docs)
    spanners

(* ------------------------------------------------------------------ *)
(* Split-correctness: per-document and the decision procedure *)

let per_document () =
  let p = Split.segments_splitter ~sep:';' in
  (* matches never cross ';' → correct on these documents *)
  let local = spanner ".*!x{a+}.*" in
  List.iter
    (fun doc ->
      if not (Split.split_correct_on p local doc) then
        Alcotest.failf "expected split-correct on %S" doc)
    docs;
  (* matches that cross ';' break *)
  let crossing = spanner ".*!x{a;a}.*" in
  check Alcotest.bool "crossing spanner not split-correct on a;a" false
    (Split.split_correct_on p crossing "a;a")

let decision_procedure () =
  let p = Split.segments_splitter ~sep:';' in
  let local = spanner ".*!x{a+}.*" in
  check Alcotest.bool "local spanner split-correct (all documents)" true
    (Split.split_correct p local);
  let crossing = spanner ".*!x{a;a}.*" in
  check Alcotest.bool "crossing spanner rejected" false (Split.split_correct p crossing);
  (* a spanner anchored to the whole document is not split-correct
     either: on "a;a" it matches nothing per segment *)
  let anchored = spanner "!x{.+;.+}" in
  check Alcotest.bool "anchored spanner rejected" false (Split.split_correct p anchored)

let windows_rarely_correct () =
  let p = Split.windows_splitter ~alphabet:(Spanner_fa.Charset.of_string "ab") ~size:2 in
  (* single-character extraction: every char is inside some window of a
     length-≥2 doc, but NOT of a length-1 doc → not split-correct *)
  let s = spanner "[ab]*!x{[ab]}[ab]*" in
  check Alcotest.bool "not correct on short docs" false (Split.split_correct p s);
  check Alcotest.bool "fails concretely on single char" false (Split.split_correct_on p s "a");
  check Alcotest.bool "fine on longer docs" true (Split.split_correct_on p s "abab")

let () =
  Alcotest.run "split"
    [
      ( "splitters",
        [
          tc "segments" `Quick segments;
          tc "windows" `Quick windows;
          tc "guard" `Quick splitter_guard;
        ] );
      ("composition", [ tc "compose = split_eval" `Quick compose_matches_split_eval ]);
      ( "split-correctness",
        [
          tc "per document" `Quick per_document;
          tc "decision procedure ([7])" `Quick decision_procedure;
          tc "window splitter counterexamples" `Quick windows_rarely_correct;
        ] );
    ]
