(* Adversarial and edge-case tests across the stack: full-byte-range
   documents (the library works on arbitrary bytes, not just text),
   pathological ambiguity, deep nesting, empty languages, and
   scale smoke tests. *)

open Spanner_core
module X = Spanner_util.Xoshiro

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string

(* ------------------------------------------------------------------ *)
(* Arbitrary bytes *)

let binary_documents () =
  (* documents containing NUL, 0xFF and friends flow through the whole
     pipeline *)
  let doc = "\x00\xffa\x00b\xff\x00" in
  let e = Evset.of_formula (Regex_formula.parse ".*!x{\x00}.*") in
  let r = Evset.eval e doc in
  check Alcotest.int "three NULs" 3 (Span_relation.cardinal r);
  check Alcotest.bool "enumeration agrees" true
    (Span_relation.equal r (Enumerate.to_relation e doc));
  (* negated classes across the byte range *)
  let e2 = Evset.of_formula (Regex_formula.parse "[^\x00]*") in
  check Alcotest.bool "no NUL" true (Evset.nonempty_on e2 "abc\xff");
  check Alcotest.bool "has NUL" false (Evset.nonempty_on e2 "a\x00b")

let binary_slp () =
  let store = Spanner_slp.Slp.create_store () in
  let rng = X.create 3 in
  for _ = 1 to 20 do
    let doc = String.init (1 + X.int rng 100) (fun _ -> Char.chr (X.int rng 256)) in
    let id = Spanner_slp.Builder.lz78 store doc in
    if Spanner_slp.Slp.to_string store id <> doc then
      Alcotest.failf "binary roundtrip failed"
  done

(* ------------------------------------------------------------------ *)
(* Pathological ambiguity *)

let highly_ambiguous_enumeration () =
  (* (a|a|aa)* is massively ambiguous as a language; the spanner still
     enumerates each *tuple* exactly once *)
  let e = Evset.of_formula (Regex_formula.parse "(a|aa)*!x{a?}(a|aa)*") in
  let doc = String.make 14 'a' in
  let p = Enumerate.prepare e doc in
  let seen = Hashtbl.create 64 in
  Enumerate.iter p (fun t ->
      let key = Format.asprintf "%a" Span_tuple.pp t in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate %s" key;
      Hashtbl.add seen key ());
  (* x binds either an empty span (15 positions) or one a (14) — plus
     the schemaless unbound case is impossible (x always bound) *)
  check Alcotest.int "tuples" 29 (Hashtbl.length seen);
  check Alcotest.int "cardinal agrees" 29 (Enumerate.cardinal p)

let quadratic_output () =
  (* all spans of a^60: 61·62/2 = 1891 tuples through all three routes *)
  let e = Evset.of_formula (Regex_formula.parse ".*!x{.*}.*") in
  let doc = String.make 60 'a' in
  check Alcotest.int "enumerate" 1891 (Enumerate.cardinal (Enumerate.prepare e doc));
  let store = Spanner_slp.Slp.create_store () in
  let engine = Spanner_slp.Slp_spanner.create e store in
  check Alcotest.int "compressed" 1891
    (Spanner_slp.Slp_spanner.cardinal engine (Spanner_slp.Builder.lz78 store doc))

(* ------------------------------------------------------------------ *)
(* Deep structures *)

let deeply_nested_formula () =
  (* 50 nested bindings *)
  let vars = List.init 50 (fun i -> v (Printf.sprintf "nest%d" i)) in
  let f =
    List.fold_left (fun inner x -> Regex_formula.bind x inner) (Regex_formula.char 'a') vars
  in
  let e = Evset.of_formula f in
  let r = Evset.eval e "a" in
  check Alcotest.int "one tuple" 1 (Span_relation.cardinal r);
  let t = List.hd (Span_relation.tuples r) in
  check Alcotest.int "all 50 bound" 50 (Variable.Set.cardinal (Span_tuple.domain t));
  List.iter
    (fun x -> check Alcotest.bool "span is [1,2⟩" true
        (Span.equal (Span_tuple.get t x) (Span.make 1 2)))
    vars

let long_linear_document () =
  (* linear-time paths stay fast at 1M characters (smoke, not timing) *)
  let n = 1 lsl 20 in
  let doc = String.make (n - 1) 'a' ^ "b" in
  let e = Evset.of_formula (Regex_formula.parse "!x{a*}b") in
  let t = Span_tuple.of_list [ (v "x", Span.make 1 n) ] in
  check Alcotest.bool "model check 1M" true (Evset.accepts_tuple e doc t);
  check Alcotest.bool "nonempty 1M" true (Evset.nonempty_on e doc);
  let refl = Spanner_refl.Refl_spanner.parse "!x{a+}b&x" in
  let half = String.make 1000 'a' in
  let doc2 = half ^ "b" ^ half in
  let t2 = Span_tuple.of_list [ (v "x", Span.make 1 1001) ] in
  check Alcotest.bool "refl mc large" true (Spanner_refl.Refl_spanner.model_check refl doc2 t2)

(* ------------------------------------------------------------------ *)
(* Empty languages and degenerate inputs *)

let degenerate_cases () =
  let dead = Evset.of_formula (Regex_formula.parse "!x{a}[]") in
  check Alcotest.int "eval of dead spanner" 0 (Span_relation.cardinal (Evset.eval dead "aaa"));
  check Alcotest.int "enumerate dead" 0 (Enumerate.cardinal (Enumerate.prepare dead "aaa"));
  check Alcotest.bool "join with dead is dead" false
    (Evset.satisfiable (Evset.join dead (Evset.of_formula (Regex_formula.parse "!x{a}"))));
  (* empty doc through every route *)
  let opt = Evset.of_formula (Regex_formula.parse "(!x{a})?") in
  check Alcotest.int "empty doc schemaless" 1 (Span_relation.cardinal (Evset.eval opt ""));
  check Alcotest.bool "empty tuple member" true (Evset.accepts_tuple opt "" Span_tuple.empty);
  (* union of a spanner with itself is itself *)
  check Alcotest.bool "idempotent union" true (Evset.equal_spanner opt (Evset.union opt opt))

let strhash_adversarial () =
  (* many equal-length distinct factors: no false positives observed *)
  let rng = X.create 1234 in
  let doc = X.string rng "ab" 4000 in
  let h = Spanner_util.Strhash.make doc in
  let len = 16 in
  for _ = 1 to 2000 do
    let i = X.int rng (4000 - len) in
    let j = X.int rng (4000 - len) in
    let want = String.sub doc i len = String.sub doc j len in
    if Spanner_util.Strhash.equal_sub h i j len <> want then
      Alcotest.failf "hash disagreement at %d/%d" i j
  done

let consolidation_after_compressed_route () =
  (* policies compose with the compressed evaluation route *)
  let e = Evset.of_formula (Regex_formula.parse ".*!x{a+}.*") in
  let store = Spanner_slp.Slp.create_store () in
  let engine = Spanner_slp.Slp_spanner.create e store in
  let doc = "aaabaa" in
  let id = Spanner_slp.Builder.lz78 store doc in
  let r = Spanner_slp.Slp_spanner.to_relation engine id in
  let maximal = Consolidate.consolidate Consolidate.Contained_within ~on:(v "x") r in
  check Alcotest.int "maximal a-runs" 2 (Span_relation.cardinal maximal)

let () =
  Alcotest.run "edge-cases"
    [
      ( "bytes",
        [ tc "binary documents" `Quick binary_documents; tc "binary SLPs" `Quick binary_slp ] );
      ( "ambiguity",
        [
          tc "duplicate-free under heavy ambiguity" `Quick highly_ambiguous_enumeration;
          tc "quadratic output" `Quick quadratic_output;
        ] );
      ( "depth-and-scale",
        [
          tc "50 nested bindings" `Quick deeply_nested_formula;
          tc "megabyte documents" `Slow long_linear_document;
        ] );
      ( "degenerate",
        [
          tc "empty languages / empty docs" `Quick degenerate_cases;
          tc "strhash adversarial" `Quick strhash_adversarial;
          tc "consolidation after compression" `Quick consolidation_after_compressed_route;
        ] );
    ]
