(* Unit tests for the basic spanner data model: spans, span tuples,
   span relations, markers, subword-marked words, regex formulas. *)

open Spanner_core

let check = Alcotest.check
let tc = Alcotest.test_case
let v = Variable.of_string
let vs = Variable.set_of_list
let span = Alcotest.testable (Fmt.of_to_string Span.to_string) Span.equal

let tuple =
  Alcotest.testable (Fmt.of_to_string (Format.asprintf "%a" Span_tuple.pp)) Span_tuple.equal

(* ------------------------------------------------------------------ *)
(* Variable *)

let variable_interning () =
  check Alcotest.bool "same name same var" true (Variable.equal (v "x") (v "x"));
  check Alcotest.bool "different names differ" false (Variable.equal (v "x") (v "y"));
  check Alcotest.string "name roundtrip" "my_var1" (Variable.name (v "my_var1"));
  Alcotest.check_raises "empty name" (Invalid_argument "Variable.of_string: malformed name \"\"")
    (fun () -> ignore (v ""));
  Alcotest.check_raises "digit start" (Invalid_argument "Variable.of_string: malformed name \"1x\"")
    (fun () -> ignore (v "1x"));
  Alcotest.check_raises "bad char" (Invalid_argument "Variable.of_string: malformed name \"a-b\"")
    (fun () -> ignore (v "a-b"))

let variable_sets () =
  let s = vs [ v "a"; v "b"; v "a" ] in
  check Alcotest.int "dedup" 2 (Variable.Set.cardinal s);
  check Alcotest.bool "mem" true (Variable.Set.mem (v "b") s)

(* ------------------------------------------------------------------ *)
(* Span *)

let span_construction () =
  let s = Span.make 2 5 in
  check Alcotest.int "left" 2 (Span.left s);
  check Alcotest.int "right" 5 (Span.right s);
  check Alcotest.int "len" 3 (Span.len s);
  check Alcotest.bool "nonempty" false (Span.is_empty s);
  check Alcotest.bool "empty span" true (Span.is_empty (Span.make 3 3));
  Alcotest.check_raises "inverted" (Invalid_argument "Span.make: invalid span [5,2⟩") (fun () ->
      ignore (Span.make 5 2));
  Alcotest.check_raises "zero position" (Invalid_argument "Span.make: invalid span [0,2⟩")
    (fun () -> ignore (Span.make 0 2))

let span_content () =
  let doc = "ababbab" in
  check Alcotest.string "paper Example 1.1 x" "a" (Span.content (Span.make 1 2) doc);
  check Alcotest.string "whole doc" doc (Span.content (Span.make 1 8) doc);
  check Alcotest.string "empty at end" "" (Span.content (Span.make 8 8) doc);
  check Alcotest.bool "fits" true (Span.fits (Span.make 8 8) doc);
  check Alcotest.bool "does not fit" false (Span.fits (Span.make 8 9) doc)

let span_all () =
  (* |Spans(D)| = (n+1)(n+2)/2 for |D| = n *)
  check Alcotest.int "spans of length-3 doc" 10 (List.length (Span.all "abc"));
  check Alcotest.int "spans of empty doc" 1 (List.length (Span.all ""))

let span_predicates () =
  let a = Span.make 1 5 and b = Span.make 2 4 and c = Span.make 3 7 and d = Span.make 5 6 in
  check Alcotest.bool "contains" true (Span.contains a b);
  check Alcotest.bool "not contains" false (Span.contains b a);
  check Alcotest.bool "overlap" true (Span.overlapping a c);
  check Alcotest.bool "overlap symmetric" true (Span.overlapping c a);
  check Alcotest.bool "nested not overlapping" false (Span.overlapping a b);
  check Alcotest.bool "disjoint" true (Span.disjoint a d);
  check Alcotest.bool "disjoint not overlapping" false (Span.overlapping a d);
  check Alcotest.bool "hierarchical nested" true (Span.hierarchical a b);
  check Alcotest.bool "hierarchical disjoint" true (Span.hierarchical a d);
  check Alcotest.bool "not hierarchical" false (Span.hierarchical a c);
  check span "fuse" (Span.make 1 7) (Span.fuse a c);
  (* touching spans are disjoint, not overlapping *)
  check Alcotest.bool "touching disjoint" true (Span.disjoint (Span.make 1 3) (Span.make 3 5))

let span_fusion_example () =
  (* §3.2 worked example: t = ([1,3⟩, [2,6⟩, [3,7⟩), fusing x1 and x3
     into y gives ([1,7⟩, [2,6⟩). *)
  let t =
    Span_tuple.of_list
      [ (v "x1", Span.make 1 3); (v "x2", Span.make 2 6); (v "x3", Span.make 3 7) ]
  in
  let fused = Span_tuple.fuse (vs [ v "x1"; v "x3" ]) ~into:(v "fuse_y") t in
  check (Alcotest.option span) "y" (Some (Span.make 1 7)) (Span_tuple.find fused (v "fuse_y"));
  check (Alcotest.option span) "x2 kept" (Some (Span.make 2 6)) (Span_tuple.find fused (v "x2"));
  check (Alcotest.option span) "x1 gone" None (Span_tuple.find fused (v "x1"))

(* ------------------------------------------------------------------ *)
(* Span_tuple *)

let tuple_basics () =
  let t = Span_tuple.bind Span_tuple.empty (v "x") (Span.make 1 2) in
  check (Alcotest.option span) "bound" (Some (Span.make 1 2)) (Span_tuple.find t (v "x"));
  check (Alcotest.option span) "unbound" None (Span_tuple.find t (v "y"));
  check Alcotest.bool "functional on {x}" true (Span_tuple.is_functional_on t (vs [ v "x" ]));
  check Alcotest.bool "not functional on {x,y}" false
    (Span_tuple.is_functional_on t (vs [ v "x"; v "y" ]));
  check Alcotest.int "domain" 1 (Variable.Set.cardinal (Span_tuple.domain t));
  let t2 = Span_tuple.bind t (v "x") (Span.make 3 4) in
  check (Alcotest.option span) "rebind overrides" (Some (Span.make 3 4))
    (Span_tuple.find t2 (v "x"))

let tuple_merge () =
  let t1 = Span_tuple.of_list [ (v "x", Span.make 1 2); (v "y", Span.make 2 3) ] in
  let t2 = Span_tuple.of_list [ (v "y", Span.make 2 3); (v "z", Span.make 3 4) ] in
  check Alcotest.bool "compatible" true (Span_tuple.compatible t1 t2);
  let m = Span_tuple.merge t1 t2 in
  check Alcotest.int "merged domain" 3 (Variable.Set.cardinal (Span_tuple.domain m));
  let t3 = Span_tuple.of_list [ (v "y", Span.make 9 9) ] in
  check Alcotest.bool "incompatible" false (Span_tuple.compatible t1 t3);
  Alcotest.check_raises "merge incompatible"
    (Invalid_argument "Span_tuple.merge: incompatible tuples") (fun () ->
      ignore (Span_tuple.merge t1 t3));
  (* unbound variables are compatible with anything (schemaless) *)
  let partial = Span_tuple.of_list [ (v "z", Span.make 1 1) ] in
  check Alcotest.bool "partial compatible" true (Span_tuple.compatible t1 partial)

let tuple_project_equality () =
  let t = Span_tuple.of_list [ (v "x", Span.make 1 3); (v "y", Span.make 4 6); (v "z", Span.make 1 2) ] in
  let p = Span_tuple.project (vs [ v "x"; v "z" ]) t in
  check Alcotest.int "projected domain" 2 (Variable.Set.cardinal (Span_tuple.domain p));
  (* string equality over "abcabc": x = "ab", y = "ab" *)
  let doc = "abcabc" in
  check Alcotest.bool "x = y contents" true
    (Span_tuple.satisfies_equality t doc (vs [ v "x"; v "y" ]));
  check Alcotest.bool "x != z contents" false
    (Span_tuple.satisfies_equality t doc (vs [ v "x"; v "z" ]));
  (* vacuous: at most one bound member *)
  check Alcotest.bool "vacuous on unbound" true
    (Span_tuple.satisfies_equality t doc (vs [ v "x"; v "unbound_w" ]))

let tuple_hierarchical () =
  let nested = Span_tuple.of_list [ (v "x", Span.make 1 5); (v "y", Span.make 2 3) ] in
  check Alcotest.bool "nested ok" true (Span_tuple.hierarchical nested);
  let overlap = Span_tuple.of_list [ (v "x", Span.make 1 4); (v "y", Span.make 2 6) ] in
  check Alcotest.bool "overlap detected" false (Span_tuple.hierarchical overlap)

let tuple_order () =
  let t1 = Span_tuple.of_list [ (v "x", Span.make 1 2) ] in
  let t2 = Span_tuple.of_list [ (v "x", Span.make 1 3) ] in
  check Alcotest.bool "compare distinguishes" true (Span_tuple.compare t1 t2 <> 0);
  check Alcotest.int "compare equal" 0
    (Span_tuple.compare t1 (Span_tuple.of_list [ (v "x", Span.make 1 2) ]))

(* ------------------------------------------------------------------ *)
(* Span_relation *)

let relation_algebra () =
  let x = v "x" and y = v "y" in
  let r1 =
    Span_relation.of_list (vs [ x ])
      [ Span_tuple.of_list [ (x, Span.make 1 2) ]; Span_tuple.of_list [ (x, Span.make 2 3) ] ]
  in
  let r2 =
    Span_relation.of_list (vs [ x; y ])
      [
        Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 5 6) ];
        Span_tuple.of_list [ (x, Span.make 9 9); (y, Span.make 6 7) ];
      ]
  in
  let j = Span_relation.join r1 r2 in
  check Alcotest.int "join size" 1 (Span_relation.cardinal j);
  check Alcotest.bool "join content" true
    (Span_relation.mem j (Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 5 6) ]));
  let u = Span_relation.union r1 r1 in
  check Alcotest.int "idempotent union" 2 (Span_relation.cardinal u);
  let p = Span_relation.project (vs [ y ]) r2 in
  check Alcotest.int "projection schema" 1 (Variable.Set.cardinal (Span_relation.schema p));
  check Alcotest.int "projection size" 2 (Span_relation.cardinal p)

let relation_join_partial () =
  (* schemaless join: an unbound shared variable joins with anything *)
  let x = v "x" and y = v "y" in
  let r1 =
    Span_relation.of_list (vs [ x; y ]) [ Span_tuple.of_list [ (y, Span.make 1 1) ] ]
  in
  let r2 = Span_relation.of_list (vs [ x ]) [ Span_tuple.of_list [ (x, Span.make 2 3) ] ] in
  let j = Span_relation.join r1 r2 in
  check Alcotest.int "partial joins" 1 (Span_relation.cardinal j);
  check Alcotest.bool "merged binds both" true
    (Span_relation.mem j (Span_tuple.of_list [ (x, Span.make 2 3); (y, Span.make 1 1) ]))

let relation_select () =
  let x = v "x" and y = v "y" in
  let doc = "abaab" in
  let r =
    Span_relation.of_list (vs [ x; y ])
      [
        Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 3 4) ];
        Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 2 3) ];
      ]
  in
  let s = Span_relation.select_equal doc (vs [ x; y ]) r in
  check Alcotest.int "selection filters" 1 (Span_relation.cardinal s);
  check Alcotest.bool "functional check" true (Span_relation.is_functional r);
  let r' = Span_relation.add r (Span_tuple.of_list [ (x, Span.make 1 1) ]) in
  check Alcotest.bool "partial tuple breaks functionality" false (Span_relation.is_functional r')

let relation_schema_guard () =
  let r = Span_relation.empty (vs [ v "x" ]) in
  Alcotest.check_raises "foreign variable"
    (Invalid_argument "Span_relation.add: tuple binds a variable outside the schema") (fun () ->
      ignore (Span_relation.add r (Span_tuple.of_list [ (v "zz_not_in_schema", Span.make 1 1) ])))

(* ------------------------------------------------------------------ *)
(* Marker *)

let marker_order () =
  let x = v "x" and y = v "y" in
  check Alcotest.bool "open < close same var" true
    (Marker.compare (Marker.Open x) (Marker.Close x) < 0);
  check Alcotest.bool "open y < close x" true
    (Marker.compare (Marker.Open y) (Marker.Close x) < 0);
  check Alcotest.int "all markers count" 4 (List.length (Marker.all_markers (vs [ x; y ])));
  check Alcotest.string "pp open" "⊢x" (Marker.to_string (Marker.Open x));
  check Alcotest.string "pp close" "⊣x" (Marker.to_string (Marker.Close x));
  check Alcotest.bool "is_open" true (Marker.is_open (Marker.Open x));
  check Alcotest.bool "variable" true (Variable.equal x (Marker.variable (Marker.Close x)))

let marker_sets () =
  let x = v "x" and y = v "y" in
  let s = Marker.Set.of_list [ Marker.Close y; Marker.Open x ] in
  check Alcotest.int "set vars" 2 (Variable.Set.cardinal (Marker.set_variables s));
  check Alcotest.string "pp_set" "{⊢x, ⊣y}" (Format.asprintf "%a" Marker.pp_set s)

(* ------------------------------------------------------------------ *)
(* Ref_word (subword-marked words) *)

let ref_word_roundtrip () =
  let doc = "abcacacbbaa" in
  (* §2.1 example: x = [2,6⟩, y = [4,8⟩, z = [1,8⟩ *)
  let t =
    Span_tuple.of_list
      [ (v "x", Span.make 2 6); (v "y", Span.make 4 8); (v "z", Span.make 1 8) ]
  in
  let w = Ref_word.of_doc_tuple doc t in
  check Alcotest.string "e(w)" doc (Ref_word.doc w);
  check tuple "st(w)" t (Ref_word.span_tuple w);
  check Alcotest.string "rendering" "⊢za⊢xbc⊢yac⊣xac⊣y⊣zbbaa" (Ref_word.to_string w)

let ref_word_of_string () =
  let w = Ref_word.of_string "⊢za⊢xbc⊢yac⊣xac⊣y⊣zbbaa" in
  check Alcotest.string "parse/print" "⊢za⊢xbc⊢yac⊣xac⊣y⊣zbbaa" (Ref_word.to_string w);
  check Alcotest.string "doc" "abcacacbbaa" (Ref_word.doc w)

let ref_word_validate () =
  let ok w =
    match Ref_word.validate (vs [ v "x"; v "y" ]) (Ref_word.of_string w) with
    | Ref_word.Valid { functional } -> Some functional
    | Ref_word.Invalid _ -> None
  in
  check (Alcotest.option Alcotest.bool) "functional" (Some true) (ok "⊢xa⊣x⊢yb⊣y");
  check (Alcotest.option Alcotest.bool) "schemaless" (Some false) (ok "⊢xa⊣xb");
  check (Alcotest.option Alcotest.bool) "empty spans ok" (Some true) (ok "⊢x⊣x⊢y⊣yab");
  check (Alcotest.option Alcotest.bool) "close before open" None (ok "⊣xa⊢x");
  check (Alcotest.option Alcotest.bool) "double open" None (ok "⊢x⊢xa⊣x");
  check (Alcotest.option Alcotest.bool) "double close" None (ok "⊢xa⊣x⊣x");
  check (Alcotest.option Alcotest.bool) "unclosed" None (ok "⊢xab");
  check (Alcotest.option Alcotest.bool) "foreign variable" None (ok "⊢(zz1)a⊣(zz1)")

let ref_word_canonical () =
  (* ⊣x and ⊢y at the same boundary: canonical order puts opens first *)
  let w1 = Ref_word.of_string "⊢xa⊣x⊢yb⊣y" in
  let w2 = Ref_word.of_string "⊢xa⊢y⊣xb⊣y" in
  check Alcotest.bool "same (doc, tuple)" true (Ref_word.represents_same w1 w2);
  check Alcotest.bool "canonicalize w1 = canonicalize w2" true
    (Ref_word.equal (Ref_word.canonicalize w1) (Ref_word.canonicalize w2));
  check Alcotest.string "canonical order" "⊢xa⊢y⊣xb⊣y"
    (Ref_word.to_string (Ref_word.canonicalize w1))

let ref_word_extended () =
  let w = Ref_word.of_string "⊢xa⊢y⊣xb⊣y" in
  let doc, sets = Ref_word.to_extended w in
  check Alcotest.string "extended doc" "ab" doc;
  check Alcotest.int "boundary count" 3 (Array.length sets);
  check Alcotest.int "boundary 0" 1 (Marker.Set.cardinal sets.(0));
  check Alcotest.int "boundary 1" 2 (Marker.Set.cardinal sets.(1));
  check Alcotest.int "boundary 2" 1 (Marker.Set.cardinal sets.(2));
  let w' = Ref_word.of_extended doc sets in
  check Alcotest.bool "roundtrip" true (Ref_word.represents_same w w')

(* ------------------------------------------------------------------ *)
(* Regex_formula *)

let formula_parse () =
  let f = Regex_formula.parse "!x{[ab]*}!y{b}!z{[ab]*}" in
  check Alcotest.int "vars" 3 (Variable.Set.cardinal (Regex_formula.vars f));
  check Alcotest.bool "total" true (Regex_formula.functionality f = Regex_formula.Total);
  let printed = Regex_formula.to_string f in
  let f' = Regex_formula.parse printed in
  check Alcotest.string "print stable" printed (Regex_formula.to_string f')

let formula_functionality () =
  let fn s = Regex_formula.functionality (Regex_formula.parse s) in
  check Alcotest.bool "total" true (fn "!x{a}b" = Regex_formula.Total);
  check Alcotest.bool "alt both total" true (fn "!x{a}|!x{b}" = Regex_formula.Total);
  check Alcotest.bool "opt schemaless" true (fn "(!x{a})?b" = Regex_formula.Schemaless);
  check Alcotest.bool "alt one side schemaless" true (fn "!x{a}|b" = Regex_formula.Schemaless);
  let ill s = match fn s with Regex_formula.Ill_formed _ -> true | _ -> false in
  check Alcotest.bool "star over binding" true (ill "(!x{a})*");
  check Alcotest.bool "plus over binding" true (ill "(!x{a})+");
  check Alcotest.bool "concat duplicate" true (ill "!x{a}!x{b}");
  check Alcotest.bool "self nesting" true (ill "!x{!x{a}}");
  check Alcotest.bool "nested distinct ok" false (ill "!x{a!y{b}c}")

let formula_errors () =
  let fails s =
    match Regex_formula.parse s with exception Spanner_fa.Regex.Parse_error _ -> true | _ -> false
  in
  check Alcotest.bool "unclosed binding" true (fails "!x{ab");
  check Alcotest.bool "missing name" true (fails "!{ab}");
  check Alcotest.bool "bare brace" true (fails "a}b");
  check Alcotest.bool "reference not allowed in RGX" true (fails "!x{a}&x")


(* ------------------------------------------------------------------ *)
(* Consolidation (AQL-style, §1 motivation) *)

let consolidation_policies () =
  let x = v "x" in
  let mk spans = Span_relation.of_list (vs [ x ])
      (List.map (fun (i, j) -> Span_tuple.of_list [ (x, Span.make i j) ]) spans) in
  let spans r =
    List.map (fun t -> (Span.left (Span_tuple.get t x), Span.right (Span_tuple.get t x)))
      (Span_relation.tuples r) in
  let input = mk [ (1, 5); (2, 4); (4, 8); (6, 7); (10, 11) ] in
  (* contained-within keeps maximal matches *)
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "maximal"
    [ (1, 5); (4, 8); (10, 11) ]
    (spans (Consolidate.consolidate Consolidate.Contained_within ~on:x input));
  (* not-contained-within keeps the dominated ones *)
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "dominated"
    [ (2, 4); (6, 7) ]
    (spans (Consolidate.consolidate Consolidate.Not_contained_within ~on:x input));
  (* left-to-right greedy: [1,5) wins, [4,8) overlaps it and dies,
     [6,7) survives (disjoint from [1,5)), [10,11) survives *)
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "leftmost greedy"
    [ (1, 5); (6, 7); (10, 11) ]
    (spans (Consolidate.consolidate Consolidate.Left_to_right ~on:x input));
  Alcotest.check_raises "foreign column"
    (Invalid_argument "Consolidate.consolidate: the consolidation variable is not in the schema")
    (fun () -> ignore (Consolidate.consolidate Consolidate.Contained_within
                         ~on:(v "zz_cons") input))

let consolidation_leftmost_ties () =
  (* ties at the same left endpoint: longer span wins *)
  let kept = Consolidate.dominant_spans Consolidate.Left_to_right
      [ Span.make 1 3; Span.make 1 5; Span.make 4 6; Span.make 5 9 ] in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "ties"
    [ (1, 5); (5, 9) ]
    (List.map (fun s -> (Span.left s, Span.right s)) kept)

let consolidation_exact_overlap () =
  let x = v "x" and y = v "y" in
  let r = Span_relation.of_list (vs [ x; y ])
      [ Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 3 4) ];
        Span_tuple.of_list [ (x, Span.make 1 2); (y, Span.make 5 6) ];
        Span_tuple.of_list [ (x, Span.make 2 3); (y, Span.make 3 4) ] ] in
  let out = Consolidate.consolidate Consolidate.Exact_overlap ~on:x r in
  check Alcotest.int "one per x-span" 2 (Span_relation.cardinal out)


(* ------------------------------------------------------------------ *)
(* Location: line/column reporting *)

let location_basics () =
  let doc = "ab\ncde\n\nf" in
  let idx = Location.make doc in
  check Alcotest.int "line count" 4 (Location.line_count idx);
  let pos i = let p = Location.position_of idx i in (p.Location.line, p.Location.column) in
  check (Alcotest.pair Alcotest.int Alcotest.int) "start" (1, 1) (pos 1);
  check (Alcotest.pair Alcotest.int Alcotest.int) "newline char" (1, 3) (pos 3);
  check (Alcotest.pair Alcotest.int Alcotest.int) "line 2" (2, 1) (pos 4);
  check (Alcotest.pair Alcotest.int Alcotest.int) "empty line" (3, 1) (pos 8);
  check (Alcotest.pair Alcotest.int Alcotest.int) "last line" (4, 1) (pos 9);
  check (Alcotest.pair Alcotest.int Alcotest.int) "eof boundary" (4, 2) (pos 10);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Location.position_of: position 11 out of range") (fun () ->
      ignore (Location.position_of idx 11));
  check Alcotest.string "range pp" "2:1-2:3"
    (Format.asprintf "%a" (Location.pp_range idx) (Span.make 4 6))

let location_exhaustive () =
  (* cross-check against a naive scan on random documents *)
  let rng = Spanner_util.Xoshiro.create 6 in
  for _ = 1 to 30 do
    let n = 1 + Spanner_util.Xoshiro.int rng 80 in
    let doc = String.init n (fun _ ->
        if Spanner_util.Xoshiro.int rng 4 = 0 then '\n' else 'x') in
    let idx = Location.make doc in
    let line = ref 1 and col = ref 1 in
    for i = 1 to n + 1 do
      let p = Location.position_of idx i in
      if (p.Location.line, p.Location.column) <> (!line, !col) then
        Alcotest.failf "mismatch at %d in %S" i doc;
      if i <= n then
        if doc.[i - 1] = '\n' then begin incr line; col := 1 end else incr col
    done
  done

let () =
  Alcotest.run "core-data-model"
    [
      ("variable", [ tc "interning" `Quick variable_interning; tc "sets" `Quick variable_sets ]);
      ( "span",
        [
          tc "construction" `Quick span_construction;
          tc "content" `Quick span_content;
          tc "all spans" `Quick span_all;
          tc "predicates" `Quick span_predicates;
          tc "fusion (§3.2 example)" `Quick span_fusion_example;
        ] );
      ( "span_tuple",
        [
          tc "basics" `Quick tuple_basics;
          tc "merge/compatibility" `Quick tuple_merge;
          tc "project/equality" `Quick tuple_project_equality;
          tc "hierarchical" `Quick tuple_hierarchical;
          tc "ordering" `Quick tuple_order;
        ] );
      ( "span_relation",
        [
          tc "algebra" `Quick relation_algebra;
          tc "schemaless join" `Quick relation_join_partial;
          tc "string-equality selection" `Quick relation_select;
          tc "schema guard" `Quick relation_schema_guard;
        ] );
      ("marker", [ tc "canonical order" `Quick marker_order; tc "sets" `Quick marker_sets ]);
      ( "ref_word",
        [
          tc "roundtrip (§2.1 example)" `Quick ref_word_roundtrip;
          tc "of_string" `Quick ref_word_of_string;
          tc "validation" `Quick ref_word_validate;
          tc "canonical marker order (§2.2)" `Quick ref_word_canonical;
          tc "extended form (§2.2)" `Quick ref_word_extended;
        ] );
      ( "location",
        [
          tc "line/column basics" `Quick location_basics;
          tc "exhaustive vs scan" `Quick location_exhaustive;
        ] );
      ( "consolidate",
        [
          tc "policies (AQL)" `Quick consolidation_policies;
          tc "leftmost ties" `Quick consolidation_leftmost_ties;
          tc "exact overlap" `Quick consolidation_exact_overlap;
        ] );
      ( "regex_formula",
        [
          tc "parsing" `Quick formula_parse;
          tc "functionality analysis" `Quick formula_functionality;
          tc "parse errors" `Quick formula_errors;
        ] );
    ]
