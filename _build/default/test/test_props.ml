(* Property-based tests (QCheck, registered as alcotest cases).

   Each property targets an invariant of a core data structure or an
   algebraic law the paper states:
   - ref-word encode/decode bijection (§2.1),
   - invariance under consecutive-marker reordering (§2.2),
   - spanner-algebra laws on automata (§1),
   - core-simplification correctness on random algebra terms (§2.3),
   - enumeration = oracle on random documents (§2.5),
   - SLP operations vs string operations, balance invariants (§4),
   - compressed evaluation = uncompressed evaluation (§4.2). *)

open Spanner_core
open Spanner_slp

let v = Variable.of_string
let vs = Variable.set_of_list

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_doc = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 25))

let gen_doc_nonempty = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (1 -- 60))

(* A random span tuple over a document. *)
let gen_tuple_for doc =
  let n = String.length doc in
  QCheck2.Gen.(
    let gen_span =
      int_range 1 (n + 1) >>= fun i ->
      int_range i (n + 1) >>= fun j -> return (Span.make i j)
    in
    list_size (0 -- 3)
      (pair (oneofl [ v "x"; v "y"; v "z" ]) gen_span)
    >>= fun bindings -> return (Span_tuple.of_list bindings))

(* A random well-formed regex formula over {a,b,c} and a variable pool.
   Bindings are kept out of iterations and distinct per concatenation,
   so the result is always well-formed (Total or Schemaless). *)
let gen_formula =
  let open QCheck2.Gen in
  let gen_plain =
    oneofl
      [
        Regex_formula.char 'a';
        Regex_formula.char 'b';
        Regex_formula.char 'c';
        Regex_formula.chars (Spanner_fa.Charset.of_string "ab");
        Regex_formula.chars Spanner_fa.Charset.full;
        Regex_formula.star (Regex_formula.char 'a');
        Regex_formula.star (Regex_formula.chars (Spanner_fa.Charset.of_string "abc"));
        Regex_formula.plus (Regex_formula.char 'b');
        Regex_formula.opt (Regex_formula.char 'c');
        Regex_formula.epsilon;
      ]
  in
  let rec gen_with_vars pool depth =
    if depth = 0 || pool = [] then gen_plain
    else
      frequency
        [
          (3, gen_plain);
          ( 2,
            match pool with
            | x :: rest ->
                gen_with_vars rest (depth - 1) >>= fun body ->
                return (Regex_formula.bind x body)
            | [] -> gen_plain );
          ( 2,
            (* split the pool across a concatenation *)
            let left_pool, right_pool =
              List.partition (fun x -> Variable.id x mod 2 = 0) pool
            in
            gen_with_vars left_pool (depth - 1) >>= fun l ->
            gen_with_vars right_pool (depth - 1) >>= fun r ->
            return (Regex_formula.concat l r) );
          ( 1,
            gen_with_vars pool (depth - 1) >>= fun l ->
            gen_with_vars pool (depth - 1) >>= fun r -> return (Regex_formula.alt l r) );
          ( 1,
            gen_with_vars [] (depth - 1) >>= fun body -> return (Regex_formula.star body) );
        ]
  in
  gen_with_vars [ v "x"; v "y"; v "z" ] 3 >>= fun f ->
  (* ensure satisfiable often enough; pad with .* on both sides *)
  return
    (Regex_formula.concat
       (Regex_formula.star (Regex_formula.chars Spanner_fa.Charset.full))
       (Regex_formula.concat f
          (Regex_formula.star (Regex_formula.chars Spanner_fa.Charset.full))))

let formula_print f = Regex_formula.to_string f

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_ref_word_roundtrip =
  QCheck2.Test.make ~name:"ref_word: (D,t) -> word -> (D,t) is the identity" ~count:500
    QCheck2.Gen.(gen_doc >>= fun doc -> gen_tuple_for doc >>= fun t -> return (doc, t))
    (fun (doc, t) ->
      let w = Ref_word.of_doc_tuple doc t in
      String.equal (Ref_word.doc w) doc && Span_tuple.equal (Ref_word.span_tuple w) t)

let prop_ref_word_validate =
  QCheck2.Test.make ~name:"ref_word: encoded words validate" ~count:500
    QCheck2.Gen.(gen_doc >>= fun doc -> gen_tuple_for doc >>= fun t -> return (doc, t))
    (fun (doc, t) ->
      let w = Ref_word.of_doc_tuple doc t in
      match Ref_word.validate (vs [ v "x"; v "y"; v "z" ]) w with
      | Ref_word.Valid _ -> true
      | Ref_word.Invalid _ -> false)

let prop_extended_roundtrip =
  QCheck2.Test.make ~name:"ref_word: extended form roundtrips (§2.2)" ~count:500
    QCheck2.Gen.(gen_doc >>= fun doc -> gen_tuple_for doc >>= fun t -> return (doc, t))
    (fun (doc, t) ->
      let w = Ref_word.of_doc_tuple doc t in
      let d, sets = Ref_word.to_extended w in
      Ref_word.represents_same w (Ref_word.of_extended d sets))

let prop_formula_eval_matches_enumeration =
  QCheck2.Test.make ~name:"enumeration = oracle on random formulas/documents (§2.5)" ~count:150
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    ~print:(fun (f, doc) -> Printf.sprintf "%s on %S" (formula_print f) doc)
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      Span_relation.equal (Evset.eval e doc) (Enumerate.to_relation e doc))

let prop_model_checking_consistent =
  QCheck2.Test.make ~name:"t ∈ eval(D) iff accepts_tuple (ModelChecking)" ~count:100
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    ~print:(fun (f, doc) -> Printf.sprintf "%s on %S" (formula_print f) doc)
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      let r = Evset.eval e doc in
      (* every member accepted; a few random non-members rejected *)
      List.for_all (fun t -> Evset.accepts_tuple e doc t) (Span_relation.tuples r))

let prop_union_commutes =
  QCheck2.Test.make ~name:"automaton union = relational union" ~count:80
    QCheck2.Gen.(
      gen_formula >>= fun f1 ->
      gen_formula >>= fun f2 ->
      gen_doc >>= fun doc -> return (f1, f2, doc))
    (fun (f1, f2, doc) ->
      let e1 = Evset.of_formula f1 and e2 = Evset.of_formula f2 in
      Span_relation.equal
        (Evset.eval (Evset.union e1 e2) doc)
        (Span_relation.union (Evset.eval e1 doc) (Evset.eval e2 doc)))

let prop_project_commutes =
  QCheck2.Test.make ~name:"automaton projection = relational projection" ~count:80
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      let keep = vs [ v "x" ] in
      Span_relation.equal
        (Evset.eval (Evset.project keep e) doc)
        (Span_relation.project keep (Evset.eval e doc)))

let prop_join_commutes =
  QCheck2.Test.make ~name:"automaton join = relational join" ~count:60
    QCheck2.Gen.(
      gen_formula >>= fun f1 ->
      gen_formula >>= fun f2 ->
      gen_doc >>= fun doc -> return (f1, f2, doc))
    ~print:(fun (f1, f2, doc) ->
      Printf.sprintf "%s JOIN %s on %S" (formula_print f1) (formula_print f2) doc)
    (fun (f1, f2, doc) ->
      let e1 = Evset.of_formula f1 and e2 = Evset.of_formula f2 in
      Span_relation.equal
        (Evset.eval (Evset.join e1 e2) doc)
        (Span_relation.join (Evset.eval e1 doc) (Evset.eval e2 doc)))

let prop_determinize_preserves =
  QCheck2.Test.make ~name:"determinisation preserves the spanner" ~count:60
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      let d = Evset.determinize e in
      Evset.is_deterministic d && Span_relation.equal (Evset.eval e doc) (Evset.eval d doc))

let prop_simplification =
  QCheck2.Test.make ~name:"core simplification = materialised algebra (§2.3)" ~count:60
    QCheck2.Gen.(
      gen_formula >>= fun f1 ->
      gen_formula >>= fun f2 ->
      gen_doc >>= fun doc ->
      oneofl
        [
          `Sel_union;
          `Sel_join;
          `Sel_project;
        ]
      >>= fun shape -> return (f1, f2, doc, shape))
    (fun (f1, f2, doc, shape) ->
      let z = vs [ v "x"; v "y" ] in
      let expr =
        match shape with
        | `Sel_union ->
            Algebra.Union (Algebra.Select (z, Algebra.Formula f1), Algebra.Formula f2)
        | `Sel_join ->
            Algebra.Join (Algebra.Select (z, Algebra.Formula f1), Algebra.Formula f2)
        | `Sel_project ->
            Algebra.Project (vs [ v "x" ], Algebra.Select (z, Algebra.Formula f1))
      in
      Span_relation.equal (Algebra.eval expr doc) (Core_spanner.eval_algebra expr doc))

(* ------------------------------------------------------------------ *)
(* SLP properties *)

let prop_slp_roundtrip =
  QCheck2.Test.make ~name:"slp: builders roundtrip" ~count:300 gen_doc_nonempty (fun s ->
      let store = Slp.create_store () in
      String.equal (Slp.to_string store (Builder.lz78 store s)) s
      && String.equal (Slp.to_string store (Builder.balanced_of_string store s)) s)

let prop_slp_char_at =
  QCheck2.Test.make ~name:"slp: char_at agrees with string indexing" ~count:300
    QCheck2.Gen.(
      gen_doc_nonempty >>= fun s ->
      int_range 1 (String.length s) >>= fun i -> return (s, i))
    (fun (s, i) ->
      let store = Slp.create_store () in
      let id = Builder.lz78 store s in
      Slp.char_at store id i = s.[i - 1])

let prop_slp_extract =
  QCheck2.Test.make ~name:"slp: extract_string = String.sub" ~count:300
    QCheck2.Gen.(
      gen_doc_nonempty >>= fun s ->
      int_range 1 (String.length s) >>= fun i ->
      int_range i (String.length s) >>= fun j -> return (s, i, j))
    (fun (s, i, j) ->
      let store = Slp.create_store () in
      let id = Builder.balanced_of_string store s in
      String.equal (Slp.extract_string store id i (j + 1)) (String.sub s (i - 1) (j - i + 1)))

let prop_balance_concat =
  QCheck2.Test.make ~name:"balance: concat is string concatenation + strong balance" ~count:200
    QCheck2.Gen.(pair gen_doc_nonempty gen_doc_nonempty)
    (fun (s1, s2) ->
      let store = Slp.create_store () in
      let a = Builder.lz78 store s1 and b = Builder.lz78 store s2 in
      let c = Balance.concat store a b in
      String.equal (Slp.to_string store c) (s1 ^ s2) && Slp.is_strongly_balanced store c)

let prop_balance_split =
  QCheck2.Test.make ~name:"balance: split inverts concat" ~count:200
    QCheck2.Gen.(
      gen_doc_nonempty >>= fun s ->
      int_range 0 (String.length s) >>= fun i -> return (s, i))
    (fun (s, i) ->
      let store = Slp.create_store () in
      let id = Builder.lz78 store s in
      let l, r = Balance.split store id i in
      let sl = Option.fold ~none:"" ~some:(Slp.to_string store) l in
      let sr = Option.fold ~none:"" ~some:(Slp.to_string store) r in
      String.equal (sl ^ sr) s && String.length sl = i)

let prop_rebalance =
  QCheck2.Test.make ~name:"balance: rebalance preserves document, ensures invariant" ~count:200
    gen_doc_nonempty (fun s ->
      let store = Slp.create_store () in
      let comb = Slp.of_string store s in
      let bal = Balance.rebalance store comb in
      String.equal (Slp.to_string store bal) s && Slp.is_strongly_balanced store bal)

let gen_cde_expr =
  (* random CDE expression over two base documents, with positions kept
     in range by construction; returns (s1, s2, expr) *)
  let open QCheck2.Gen in
  pair gen_doc_nonempty gen_doc_nonempty >>= fun (s1, s2) ->
  let rec gen depth current =
    (* [current] is the string value of the expression built so far *)
    if depth = 0 then return (Cde.Doc "A", s1)
    else
      let la = String.length current in
      frequency
        [
          (1, return (Cde.Doc "A", s1));
          (1, return (Cde.Doc "B", s2));
          ( 2,
            gen (depth - 1) current >>= fun (e1, v1) ->
            gen (depth - 1) current >>= fun (e2, v2) -> return (Cde.Concat (e1, e2), v1 ^ v2) );
          ( 2,
            gen (depth - 1) current >>= fun (e1, v1) ->
            if String.length v1 = 0 then return (e1, v1)
            else
              int_range 1 (String.length v1) >>= fun i ->
              int_range i (String.length v1) >>= fun j ->
              return (Cde.Extract (e1, i, j), String.sub v1 (i - 1) (j - i + 1)) );
          ( 1,
            gen (depth - 1) current >>= fun (e1, v1) ->
            gen (depth - 1) current >>= fun (e2, v2) ->
            int_range 1 (String.length v1 + 1) >>= fun k ->
            return
              ( Cde.Insert (e1, e2, k),
                String.sub v1 0 (k - 1) ^ v2 ^ String.sub v1 (k - 1) (String.length v1 - k + 1)
              ) );
        ]
      >>= fun (e, value) -> ignore la; return (e, value)
  in
  gen 3 s1 >>= fun (e, value) -> return (s1, s2, e, value)

let prop_cde =
  QCheck2.Test.make ~name:"cde: eval = reference string semantics (§4.3)" ~count:150 gen_cde_expr
    ~print:(fun (s1, s2, e, _) ->
      Format.asprintf "A=%S B=%S expr=%a" s1 s2 Cde.pp e)
    (fun (s1, s2, e, expected) ->
      let db = Doc_db.create () in
      ignore (Doc_db.add_string db "A" s1);
      ignore (Doc_db.add_string db "B" s2);
      let store = Doc_db.store db in
      let got = Cde.eval db e in
      String.equal (Slp.to_string store got) expected
      && Slp.is_strongly_balanced store got)

let prop_slp_spanner =
  QCheck2.Test.make ~name:"compressed evaluation = uncompressed (§4.2)" ~count:80
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc_nonempty >>= fun doc -> return (f, doc))
    ~print:(fun (f, doc) -> Printf.sprintf "%s on %S" (formula_print f) doc)
    (fun (f, doc) ->
      let store = Slp.create_store () in
      let e = Evset.of_formula f in
      let engine = Slp_spanner.create e store in
      let id = Builder.lz78 store doc in
      let compressed = Slp_spanner.to_relation engine id in
      let uncompressed = Evset.eval e doc in
      Span_relation.equal compressed uncompressed
      && Slp_spanner.cardinal engine id = Span_relation.cardinal uncompressed)

let prop_accept =
  QCheck2.Test.make ~name:"slp acceptance = decompressed acceptance (§4.2)" ~count:200
    gen_doc_nonempty (fun s ->
      let store = Slp.create_store () in
      let nfa = Spanner_fa.Nfa.of_regex (Spanner_fa.Regex.parse "[abc]*ab[abc]*c?") in
      let cache = Accept.make_cache nfa store in
      let id = Builder.lz78 store s in
      Accept.accepts cache id = Spanner_fa.Nfa.accepts nfa s)


(* ------------------------------------------------------------------ *)
(* Extension libraries: context-free, weighted, split                  *)

let prop_cf_regular_embedding =
  QCheck2.Test.make ~name:"context-free evaluator = automaton evaluator on regular formulas (E10)"
    ~count:40
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    ~print:(fun (f, doc) -> Printf.sprintf "%s on %S" (formula_print f) doc)
    (fun (f, doc) ->
      (* CYK is cubic: keep documents small *)
      let doc = if String.length doc > 12 then String.sub doc 0 12 else doc in
      let cf = Spanner_cfg.Cf_spanner.of_formula f in
      let re = Evset.of_formula f in
      Span_relation.equal (Spanner_cfg.Cf_spanner.eval cf doc) (Evset.eval re doc))

module Wbool = Spanner_weighted.Weighted.Make (Spanner_weighted.Semiring.Boolean)
module Wcount = Spanner_weighted.Weighted.Make (Spanner_weighted.Semiring.Count)

let prop_weighted_boolean =
  QCheck2.Test.make ~name:"boolean-weighted = ordinary semantics" ~count:60
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    (fun (f, doc) ->
      let e = Evset.of_formula f in
      let w = Wbool.uniform e in
      let r = Evset.eval e doc in
      List.for_all (fun t -> Wbool.tuple_weight w doc t) (Span_relation.tuples r)
      && Wbool.total_weight w doc = not (Span_relation.is_empty r))

let prop_weighted_det_count =
  QCheck2.Test.make ~name:"deterministic automaton: total count = cardinality" ~count:40
    QCheck2.Gen.(gen_formula >>= fun f -> gen_doc >>= fun doc -> return (f, doc))
    (fun (f, doc) ->
      let e = Evset.determinize (Evset.of_formula f) in
      let w = Wcount.uniform e in
      Wcount.total_weight w doc = Span_relation.cardinal (Evset.eval e doc))

let prop_split_compose =
  QCheck2.Test.make ~name:"split composition = distributed evaluation" ~count:40
    QCheck2.Gen.(
      gen_formula >>= fun f ->
      string_size ~gen:(oneofl [ 'a'; 'b'; ';' ]) (0 -- 14) >>= fun doc -> return (f, doc))
    ~print:(fun (f, doc) -> Printf.sprintf "%s on %S" (formula_print f) doc)
    (fun (f, doc) ->
      let p = Split.segments_splitter ~sep:';' in
      let s = Evset.of_formula f in
      Span_relation.equal
        (Evset.eval (Split.compose p s) doc)
        (Split.split_eval p s doc))


let gen_spans =
  QCheck2.Gen.(
    list_size (1 -- 25)
      ( int_range 1 30 >>= fun i ->
        int_range i 30 >>= fun j -> return (Span.make i j) ))

let prop_consolidate_maximal =
  QCheck2.Test.make ~name:"consolidation: contained-within keeps exactly the maximal spans"
    ~count:300 gen_spans (fun spans ->
      let kept = Consolidate.dominant_spans Consolidate.Contained_within spans in
      (* no kept span strictly contained in any input span *)
      List.for_all
        (fun k ->
          not
            (List.exists (fun s -> Span.contains s k && not (Span.equal s k)) spans))
        kept
      (* every dropped span is strictly contained in some kept one's cover *)
      && List.for_all
           (fun s ->
             List.exists (fun k -> Span.contains k s) kept)
           spans)

let prop_consolidate_leftmost_disjoint =
  QCheck2.Test.make ~name:"consolidation: leftmost-longest output is pairwise disjoint"
    ~count:300 gen_spans (fun spans ->
      let kept = Consolidate.dominant_spans Consolidate.Left_to_right spans in
      let rec pairwise = function
        | [] -> true
        | s :: rest -> List.for_all (Span.disjoint s) rest && pairwise rest
      in
      pairwise kept)

let prop_consolidate_idempotent =
  QCheck2.Test.make ~name:"consolidation: policies are idempotent" ~count:300 gen_spans
    (fun spans ->
      List.for_all
        (fun policy ->
          let once = Consolidate.dominant_spans policy spans in
          let twice = Consolidate.dominant_spans policy once in
          List.length once = List.length twice
          && List.for_all2 Span.equal (List.sort Span.compare once)
               (List.sort Span.compare twice))
        [ Consolidate.Contained_within; Consolidate.Left_to_right; Consolidate.Exact_overlap ])

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "ref_word",
        to_alcotest [ prop_ref_word_roundtrip; prop_ref_word_validate; prop_extended_roundtrip ]
      );
      ( "spanners",
        to_alcotest
          [
            prop_formula_eval_matches_enumeration;
            prop_model_checking_consistent;
            prop_union_commutes;
            prop_project_commutes;
            prop_join_commutes;
            prop_determinize_preserves;
            prop_simplification;
          ] );
      ( "consolidation",
        to_alcotest
          [
            prop_consolidate_maximal;
            prop_consolidate_leftmost_disjoint;
            prop_consolidate_idempotent;
          ] );
      ( "extensions",
        to_alcotest
          [
            prop_cf_regular_embedding;
            prop_weighted_boolean;
            prop_weighted_det_count;
            prop_split_compose;
          ] );
      ( "slp",
        to_alcotest
          [
            prop_slp_roundtrip;
            prop_slp_char_at;
            prop_slp_extract;
            prop_balance_concat;
            prop_balance_split;
            prop_rebalance;
            prop_cde;
            prop_slp_spanner;
            prop_accept;
          ] );
    ]
