(** Bounded-prefix cardinality sampling: cheap per-spanner estimates
    for cost-based planning.

    Evaluating an operand exactly to learn its cardinality would cost
    as much as the query itself, so the {!Optimizer} prices operands on
    a {e bounded prefix} of the document instead: one
    {!Spanner_core.Compiled.prepare} pass over the first
    {!default_bytes} bytes is O(prefix), and its O(1)
    {!Spanner_core.Compiled.cardinal} / {!Spanner_core.Compiled.stats}
    counters give a tuple count and DAG size that order join operands
    well in practice (matches on a prefix are representative for the
    homogeneous documents the benchmarks use; a skewed tail can fool
    the estimate, which only ever costs plan quality, never
    correctness).  {!estimate_evset} is the same probe through
    {!Spanner_core.Enumerate} for spanners that were never compiled. *)

open Spanner_core

(** Default prefix bound, in bytes. *)
val default_bytes : int

type estimate = {
  sample_bytes : int;  (** bytes actually sampled (≤ the document) *)
  doc_bytes : int;  (** full document length *)
  tuples : int;  (** result tuples on the sampled prefix *)
  nodes : int;  (** useful product-DAG nodes on the prefix *)
}

(** [prefix ?bytes doc] is the first [bytes] (default
    {!default_bytes}) bytes of [doc], or all of it if shorter. *)
val prefix : ?bytes:int -> string -> string

(** [estimate ?limits ?bytes ct doc] prepares [ct] on
    [prefix ?bytes doc] and reads the counters. *)
val estimate : ?limits:Spanner_util.Limits.t -> ?bytes:int -> Compiled.t -> string -> estimate

(** [estimate_evset ?limits ?bytes ev doc] is {!estimate} through the
    uncompiled {!Spanner_core.Enumerate} engine. *)
val estimate_evset : ?limits:Spanner_util.Limits.t -> ?bytes:int -> Evset.t -> string -> estimate

(** [projected e] linearly extrapolates the sampled tuple count to the
    full document length — a coarse total-cardinality guess for
    display; operand {e ordering} uses the raw sampled counts. *)
val projected : estimate -> float
