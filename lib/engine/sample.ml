open Spanner_core
module Limits = Spanner_util.Limits

let default_bytes = 4096

type estimate = {
  sample_bytes : int;
  doc_bytes : int;
  tuples : int;
  nodes : int;
}

let prefix ?(bytes = default_bytes) doc =
  let bytes = max 0 bytes in
  if String.length doc <= bytes then doc else String.sub doc 0 bytes

let of_prepared ~doc_bytes ~sample_bytes ~tuples ~nodes =
  { sample_bytes; doc_bytes; tuples; nodes }

let estimate ?limits ?bytes ct doc =
  let sample = prefix ?bytes doc in
  let p = Compiled.prepare ?limits ct sample in
  let st = Compiled.stats p in
  of_prepared ~doc_bytes:(String.length doc) ~sample_bytes:(String.length sample)
    ~tuples:(Compiled.cardinal p) ~nodes:st.Compiled.nodes

let estimate_evset ?limits ?bytes ev doc =
  let sample = prefix ?bytes doc in
  let p = Enumerate.prepare ?limits ev sample in
  let st = Enumerate.stats p in
  of_prepared ~doc_bytes:(String.length doc) ~sample_bytes:(String.length sample)
    ~tuples:(Enumerate.cardinal p) ~nodes:st.Enumerate.nodes

let projected e =
  if e.sample_bytes <= 0 then float_of_int e.tuples
  else
    float_of_int e.tuples *. (float_of_int e.doc_bytes /. float_of_int e.sample_bytes)
