(** Representation-aware query planning: one front door for every
    evaluation engine.

    The library grew four ways to answer the same question — the
    dense-table document pass ({!Spanner_core.Compiled}), the
    compressed-domain matrix sweep ({!Spanner_slp.Slp_spanner}), the
    decompress-then-evaluate baseline, and the summary-cached
    incremental engine ({!Spanner_incr.Incr}) — and until now every
    caller hand-picked one.  A plan binds a compiled spanner to an
    input {e shape} (plain string, SLP node, frozen document batch,
    live CDE session), chooses the engine from what the shape exposes
    (document vs compressed size, cache state) and keeps the rationale
    printable, so [spanner-cli explain] can show {e why} — the same
    facts the choice was made from.

    Execution goes through {!Cursor}: {!cursor} streams one document's
    results, {!cursors} gives per-document streams of a batch, and
    {!relations} is the materialising fold (parallel across a
    {!Spanner_util.Pool} for batch shapes) that reproduces the
    pre-planner entry points result-for-result. *)

open Spanner_core
module Slp := Spanner_slp.Slp
module Doc_db := Spanner_slp.Doc_db
module Corpus := Spanner_store.Corpus
module Incr := Spanner_incr.Incr

(** What the query runs over.  Batch shapes ([Docs], [Db], [Packed])
    evaluate many documents under one plan; the others stream a single
    result. *)
type input =
  | Doc of string  (** one plain (uncompressed) document *)
  | Docs of (string * string) array  (** plain documents, [(name, contents)] *)
  | Slp_node of Slp.store * Slp.id  (** one SLP-compressed document *)
  | Db of Doc_db.t  (** a shared-store document database *)
  | Packed of Corpus.t
      (** a mapped arena corpus: the sweep runs straight over the
          frozen columns, one engine per shard, shard-parallel *)
  | Session of Incr.session * string
      (** a live CDE session and a designated document name, resolved
          at cursor-creation time (edits may re-designate it) *)

type choice = [ `Compiled | `Compressed | `Decompress | `Incr ]

type t

(** [make ?force ct input] plans the evaluation of [ct] over [input].
    Plain documents take the compiled per-document pass; compressed
    inputs compare compressed against decompressed size — a matrix
    sweep is linear in SLP {e nodes}, so it wins exactly when the
    document is actually compressible (ratio ≥ 2), otherwise the
    decompress-then-evaluate baseline is cheaper; a session always
    evaluates incrementally from its summary cache.  [force] overrides
    the choice (the CLI's explicit [--engine] flag), recorded in the
    rationale.
    @raise Invalid_argument when [force] does not fit the shape
    (e.g. [`Incr] without a session). *)
val make : ?force:choice -> Compiled.t -> input -> t

val choice : t -> choice
val input : t -> input

(** [rationale p] is the planner's evidence: labelled facts (input
    shape, sizes, compression ratio, automaton dimensions, cache
    state) followed by a one-line justification. *)
val rationale : t -> (string * string) list * string

(** [pp ppf p] prints the plan — choice, facts, justification — in the
    stable format [spanner-cli explain] locks in its cram test. *)
val pp : Format.formatter -> t -> unit

(** {1 Execution} *)

(** [cursor ?limits p] streams the results of a single-document plan
    ([Doc], [Slp_node], [Session]).  Preprocessing (document pass,
    matrix sweep, summary filling) happens here, under the same gauge
    that meters the stream — one budget spans both phases.
    @raise Invalid_argument on batch shapes (use {!cursors}). *)
val cursor : ?limits:Spanner_util.Limits.t -> t -> Cursor.t

(** [cursors ?limits p] prepares every document of a batch plan and
    returns per-document streams in input order, each metered by its
    own gauge; a document whose preprocessing trips degrades to its
    [Error] slot (enumeration-stage errors surface from the cursor's
    pulls instead).  Single-document plans return one slot. *)
val cursors :
  ?limits:Spanner_util.Limits.t -> t -> (string * (Cursor.t, exn) result) array

(** [relations ?jobs ?limits p] materialises every document of the
    plan — {!cursors} + {!Cursor.to_relation}, fanned out across
    [jobs] domains for the parallel-safe shapes ([Docs], [Db]'s
    enumeration after its shared sweep, and [Packed]).  A multi-shard
    [Packed] corpus fans out {e per shard}: each domain owns one shard
    end to end (engine over the mapped columns, sweep, enumeration),
    so a failing shard poisons only its own documents.  Matches the
    pre-planner batch entry points
    ({!Spanner_core.Compiled.eval_all_result},
    {!Spanner_slp.Slp_spanner.eval_all}) result-for-result, including
    partial-failure semantics. *)
val relations :
  ?jobs:int ->
  ?limits:Spanner_util.Limits.t ->
  t ->
  (string * (Span_relation.t, exn) result) array
