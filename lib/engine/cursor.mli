(** Streaming result cursors: every engine's answers as one pull
    protocol.

    The survey's headline complexity claim (§2.5, §4.2) is
    {e constant-delay enumeration after linear preprocessing}: results
    are meant to be streamed, not materialised.  This module makes the
    stream a first-class value.  A cursor yields the result tuples of
    one evaluation on demand — [next] resumes the underlying engine
    exactly where the previous tuple left it, so consuming the first
    [k] tuples performs O(k) engine pulls regardless of how many
    answers exist.

    Every pull is gauge-probed ({!Spanner_util.Limits.tick_tuple}):
    deadlines and tuple caps fire {e mid-stream}, between two tuples,
    with the same error taxonomy and counts as the materialising entry
    points they replace.  {!to_relation} is a thin fold, so draining a
    cursor reproduces the engine's pre-cursor relation exactly.

    Constructors cover the three native engines, and all three are
    {e native pull producers}: {!of_compiled} walks
    {!Spanner_core.Compiled}'s trimmed product DAG (duplicate-free by
    construction), {!of_slp} resumes
    {!Spanner_slp.Slp_spanner.cursor}'s explicit enumeration machine
    over the prepared SLP matrices, and {!of_incr} resumes
    {!Spanner_incr.Incr.cursor}'s machine over cached summaries.  No
    constructor pays a fiber, an effect handler, or a per-pull context
    switch; the delay between two pulls is the engine's own descent
    work, nothing more.  When the underlying automaton is
    nondeterministic (a fact each engine computes once, at
    construction) the stream deduplicates on the fly so streamed
    counts agree with set semantics — and the dedup table itself is
    metered: every run it absorbs consumes a gauge step, so fuel
    budgets see the memory the stream retains.

    {!of_iter} remains as the generic adapter for {e external}
    iter-style producers: it inverts a callback enumerator into a pull
    stream with an OCaml 5 effect handler.  The native engines no
    longer come through it. *)

open Spanner_core

type t

(** {1 Constructors} *)

(** [of_fun ?gauge ~vars pull] wraps a raw pull function ([pull ()]
    returns the next tuple or [None] at end of stream, and must keep
    returning [None] after that). *)
val of_fun :
  ?gauge:Spanner_util.Limits.gauge -> vars:Variable.Set.t -> (unit -> Span_tuple.t option) -> t

(** [of_iter ?gauge ?dedup ~vars iter] inverts an iter-style enumerator
    into a pull stream: [iter f] must call [f] once per tuple;
    the cursor runs it under an effect handler that suspends the
    producer at each tuple until the consumer pulls again.  Nothing
    runs before the first pull.  With [~dedup:true] (default [false])
    tuples already seen are skipped — for producers that enumerate
    runs of a nondeterministic automaton, each absorbed run consuming
    one gauge step.  An exception raised by [iter] (e.g. a tripping
    gauge inside the engine) surfaces at the pull that hits it. *)
val of_iter :
  ?gauge:Spanner_util.Limits.gauge ->
  ?dedup:bool ->
  vars:Variable.Set.t ->
  ((Span_tuple.t -> unit) -> unit) ->
  t

(** [of_compiled ?gauge p] streams the tuples of a prepared document
    through {!Spanner_core.Compiled}'s native DAG cursor.
    Duplicate-free; constant delay per pull after preprocessing. *)
val of_compiled : ?gauge:Spanner_util.Limits.gauge -> Compiled.prepared -> t

(** [of_slp ?gauge engine id] streams ⟦e⟧(𝔇(id)) by partial
    decompression, resuming the native machine
    ({!Spanner_slp.Slp_spanner.cursor}) at every pull — delay is the
    descent work alone, independent of the decompressed length.  The
    matrices reachable from [id] must already be forced
    ({!Spanner_slp.Slp_spanner.prepare} / [prepare_gauge]) — the
    cursor only reads them, so cursors over different roots of one
    prepared engine are safe concurrently.  Deduplicates (metered)
    unless the engine's automaton is deterministic.
    @raise Invalid_argument if [id] was never prepared. *)
val of_slp : ?gauge:Spanner_util.Limits.gauge -> Spanner_slp.Slp_spanner.engine -> Spanner_slp.Slp.id -> t

(** [of_incr ?gauge session id] streams ⟦ct⟧(𝔇(id)) from the
    session's cached summaries, resuming the native machine
    ({!Spanner_incr.Incr.cursor}) at every pull; the same [gauge]
    meters summary misses, enumeration branches (the root summary is
    forced — and metered — at construction) and the per-pull probe.
    Deduplicates (metered) unless the compiled automaton is
    deterministic. *)
val of_incr : ?gauge:Spanner_util.Limits.gauge -> Spanner_incr.Incr.session -> Spanner_slp.Slp.id -> t

(** [of_relation r] streams an already-materialised relation (in
    {!Span_relation.tuples} order) — the degenerate cursor, for
    uniform plumbing. *)
val of_relation : Span_relation.t -> t

(** {1 Consuming} *)

(** [vars c] is the schema of the streamed tuples. *)
val vars : t -> Variable.Set.t

(** [next c] pulls the next tuple ([None] once exhausted, and forever
    after).  Each successful pull consumes one gauge step and probes
    the tuple cap at the running pull count
    ({!Spanner_util.Limits.tick_tuple}).
    @raise Spanner_util.Limits.Spanner_error mid-stream when the
    budget trips. *)
val next : t -> Span_tuple.t option

(** [peek c] is the next tuple without consuming it: the following
    {!next} returns the same tuple.  Pulls the engine (and meters) at
    most once per distinct tuple. *)
val peek : t -> Span_tuple.t option

(** [drop c k] discards up to [k] tuples (stops early at end of
    stream). *)
val drop : t -> int -> unit

(** [take c k] is a view delivering at most [k] further tuples of [c].
    The view shares the underlying stream: tuples it delivers are
    consumed from [c], and after it is exhausted [c] continues with
    the remainder.  No tuple beyond the [k]th is ever pulled from the
    engine. *)
val take : t -> int -> t

(** [iter c f] drains the remainder of [c], calling [f] on each
    tuple. *)
val iter : t -> (Span_tuple.t -> unit) -> unit

(** [fold c init f] folds [f] over the remainder of [c]. *)
val fold : t -> 'a -> ('a -> Span_tuple.t -> 'a) -> 'a

(** [cardinal c] counts the remaining tuples by draining [c]. *)
val cardinal : t -> int

(** [to_list c] drains [c] into a list, in stream order. *)
val to_list : t -> Span_tuple.t list

(** [to_relation c] drains [c] into a relation — the thin fold that
    recovers the materialising API on top of the stream. *)
val to_relation : t -> Span_relation.t

(** [pulls c] is the number of tuples pulled from the underlying
    engine so far (shared with {!take} views of the same stream) —
    the instrumentation behind the "[take k] never enumerates more
    than [k] tuples" guarantee. *)
val pulls : t -> int
