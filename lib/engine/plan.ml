open Spanner_core
module Limits = Spanner_util.Limits
module Pool = Spanner_util.Pool
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db
module Slp_spanner = Spanner_slp.Slp_spanner
module Arena = Spanner_store.Arena
module Corpus = Spanner_store.Corpus
module Incr = Spanner_incr.Incr

type input =
  | Doc of string
  | Docs of (string * string) array
  | Slp_node of Slp.store * Slp.id
  | Db of Doc_db.t
  | Packed of Corpus.t
  | Session of Incr.session * string

type choice = [ `Compiled | `Compressed | `Decompress | `Incr ]

type t = {
  ct : Compiled.t;
  input : input;
  choice : choice;
  facts : (string * string) list;
  why : string;
}

let choice p = p.choice
let input p = p.input
let rationale p = (p.facts, p.why)

(* A matrix sweep costs O(nodes) boolean products against the O(bytes)
   dense-table scan; below this compression ratio the products lose. *)
let sweep_threshold = 2.0

let ratio bytes nodes = float_of_int bytes /. float_of_int (max 1 nodes)
let pp_ratio r = Printf.sprintf "%.1fx" r

let spanner_fact ct =
  ( "spanner",
    Printf.sprintf "%d states, %d byte classes, %d marker-set labels" (Compiled.states ct)
      (Compiled.classes ct) (Compiled.alphabet ct) )

let fits input (c : choice) =
  match (input, c) with
  | (Doc _ | Docs _), `Compiled -> true
  | (Slp_node _ | Db _ | Packed _), (`Compressed | `Decompress) -> true
  | Session _, `Incr -> true
  | _ -> false

let make ?force ct input =
  let pick auto = match force with None -> auto | Some c -> c in
  (match force with
  | Some c when not (fits input c) ->
      invalid_arg "Plan.make: forced engine does not fit the input shape"
  | _ -> ());
  let choice, facts, why =
    match input with
    | Doc doc ->
        ( pick `Compiled,
          [ ("input", "plain document"); ("bytes", string_of_int (String.length doc)) ],
          "uncompressed input: one linear dense-table pass, nothing to share" )
    | Docs docs ->
        let bytes = Array.fold_left (fun n (_, d) -> n + String.length d) 0 docs in
        ( pick `Compiled,
          [
            ("input", "plain documents");
            ("documents", string_of_int (Array.length docs));
            ("bytes", string_of_int bytes);
          ],
          "plain files: compile once, parallel dense-table pass per document" )
    | Slp_node (store, id) ->
        let bytes = Slp.len store id and nodes = Slp.reachable_size store id in
        let r = ratio bytes nodes in
        let auto = if r >= sweep_threshold then `Compressed else `Decompress in
        ( pick auto,
          [
            ("input", "SLP document");
            ("bytes", string_of_int bytes);
            ("nodes", string_of_int nodes);
            ("ratio", pp_ratio r);
          ],
          if r >= sweep_threshold then
            "compressible: the matrix sweep is linear in SLP nodes, not in the text"
          else "barely compressible: decompress-then-scan beats the matrix products" )
    | Db db ->
        let bytes = Doc_db.total_len db and nodes = Doc_db.compressed_size db in
        let r = ratio bytes nodes in
        let auto = if r >= sweep_threshold then `Compressed else `Decompress in
        ( pick auto,
          [
            ("input", "document database");
            ("documents", string_of_int (List.length (Doc_db.names db)));
            ("bytes", string_of_int bytes);
            ("shared nodes", string_of_int nodes);
            ("ratio", pp_ratio r);
          ],
          if r >= sweep_threshold then
            "compressible: one shared sweep covers every document, enumeration fans out"
          else "barely compressible: decompress-then-scan beats the matrix products" )
    | Packed c ->
        let bytes = Corpus.total_len c and nodes = Corpus.node_count c in
        let r = ratio bytes nodes in
        let auto = if r >= sweep_threshold then `Compressed else `Decompress in
        ( pick auto,
          [
            ("input", "packed corpus");
            ("shards", string_of_int (Corpus.shard_count c));
            ("documents", string_of_int (Corpus.doc_count c));
            ("bytes", string_of_int bytes);
            ("nodes", string_of_int nodes);
            ("ratio", pp_ratio r);
            ("mapped", string_of_int (Corpus.mapped_bytes c) ^ " bytes");
          ],
          if r >= sweep_threshold then
            "packed shards: per-shard sweeps run over the mapped columns, shard-parallel"
          else "barely compressible: decompress-then-scan beats the matrix products" )
    | Session (s, name) ->
        let db = Incr.database s in
        let store = Doc_db.store db in
        let id = Doc_db.find db name in
        let st = Incr.stats s in
        ( pick `Incr,
          [
            ("input", "CDE session");
            ("document", name);
            ("bytes", string_of_int (Slp.len store id));
            ("nodes", string_of_int (Slp.reachable_size store id));
            ( "cached summaries",
              Printf.sprintf "%d/%d" st.Incr.entries st.Incr.capacity );
          ],
          "live session: cached per-node summaries price re-evaluation at new nodes only" )
  in
  let why = match force with None -> why | Some _ -> "forced by --engine: " ^ why in
  { ct; input; choice; facts = spanner_fact ct :: facts; why }

let choice_name = function
  | `Compiled -> "compiled"
  | `Compressed -> "compressed"
  | `Decompress -> "decompress"
  | `Incr -> "incr"

let pp ppf p =
  Format.fprintf ppf "plan: %s@." (choice_name p.choice);
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s: %s@." k v) p.facts;
  Format.fprintf ppf "  why: %s@." p.why

(* ------------------------------------------------------------------ *)
(* Execution *)

let slp_engine ct store = Slp_spanner.of_compiled ct store

(* Decompress-then-evaluate one frozen document under [g]: the
   decompression, the document pass and the stream all draw on the
   same budget (the `Decompress contract of Doc_db.eval_all). *)
let decompress_cursor g ct fz id =
  let doc = Slp.frozen_to_string ~gauge:g fz id in
  Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g ct doc)

let single_cursor ?(limits = Limits.none) p =
  let g = Limits.start limits in
  match (p.input, p.choice) with
  | Doc doc, _ -> Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g p.ct doc)
  | Slp_node (store, id), `Compressed ->
      let engine = slp_engine p.ct store in
      Slp_spanner.prepare_gauge g engine id;
      Cursor.of_slp ~gauge:g engine id
  | Slp_node (store, id), _ ->
      let fz = Slp.freeze store in
      decompress_cursor g p.ct fz id
  | Session (s, name), _ -> Cursor.of_incr ~gauge:g s (Doc_db.find (Incr.database s) name)
  | (Docs _ | Db _ | Packed _), _ -> invalid_arg "Plan.cursor: batch input, use Plan.cursors"

let cursor ?limits p = single_cursor ?limits p

let single_name p =
  match p.input with Session (_, name) -> name | Slp_node _ -> "slp" | _ -> "doc"

let cursors ?(limits = Limits.none) p =
  match p.input with
  | Doc _ | Slp_node _ | Session _ ->
      [|
        ( single_name p,
          match single_cursor ~limits p with c -> Ok c | exception e -> Error e );
      |]
  | Docs docs ->
      Array.map
        (fun (name, doc) ->
          ( name,
            match
              let g = Limits.start limits in
              Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g p.ct doc)
            with
            | c -> Ok c
            | exception e -> Error e ))
        docs
  | Db db -> (
      let names = Array.of_list (Doc_db.names db) in
      let roots = Array.map (Doc_db.find db) names in
      match p.choice with
      | `Decompress ->
          let fz = Doc_db.freeze db in
          Array.map2
            (fun name id ->
              ( name,
                match decompress_cursor (Limits.start limits) p.ct fz id with
                | c -> Ok c
                | exception e -> Error e ))
            names roots
      | _ -> (
          (* one sweep covers every root (shared nodes once, single
             gauge); if it trips there is nothing to enumerate from,
             so every slot degrades to that error *)
          let engine = slp_engine p.ct (Doc_db.store db) in
          match
            let g = Limits.start limits in
            Array.iter (fun id -> Slp_spanner.prepare_gauge g engine id) roots
          with
          | exception e -> Array.map (fun name -> (name, Error e)) names
          | () ->
              Array.map2
                (fun name id ->
                  (name, Ok (Cursor.of_slp ~gauge:(Limits.start limits) engine id)))
                names roots))
  | Packed c -> (
      let shards = Corpus.shards c in
      let docs = Corpus.docs c in
      match p.choice with
      | `Decompress ->
          Array.map
            (fun (name, si, root) ->
              ( name,
                match
                  decompress_cursor (Limits.start limits) p.ct
                    (Arena.frozen_view shards.(si)) root
                with
                | cur -> Ok cur
                | exception e -> Error e ))
            docs
      | _ ->
          (* one engine and one sweep per shard, straight over the
             mapped columns; a shard whose sweep trips poisons only
             its own documents *)
          let swept =
            Array.mapi
              (fun si a ->
                let engine = Slp_spanner.of_frozen p.ct (Arena.frozen_view a) in
                match
                  let g = Limits.start limits in
                  Array.iter
                    (fun (_, sj, root) ->
                      if sj = si then Slp_spanner.prepare_gauge g engine root)
                    docs
                with
                | () -> Ok engine
                | exception e -> Error e)
              shards
          in
          Array.map
            (fun (name, si, root) ->
              match swept.(si) with
              | Error e -> (name, Error e)
              | Ok engine ->
                  (name, Ok (Cursor.of_slp ~gauge:(Limits.start limits) engine root)))
            docs)

let relations ?jobs ?(limits = Limits.none) p =
  let drain c = Cursor.to_relation c in
  match p.input with
  | Doc _ | Slp_node _ | Session _ ->
      Array.map
        (fun (name, r) ->
          ( name,
            match r with
            | Error e -> Error e
            | Ok c -> ( match drain c with r -> Ok r | exception e -> Error e) ))
        (cursors ~limits p)
  | Docs docs ->
      let names = Array.map fst docs in
      let results =
        Pool.map_result ?jobs
          (fun (_, doc) ->
            let g = Limits.start limits in
            drain (Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g p.ct doc)))
          docs
      in
      Array.map2 (fun name r -> (name, r)) names results
  | Db db -> (
      let names = Array.of_list (Doc_db.names db) in
      let roots = Array.map (Doc_db.find db) names in
      match p.choice with
      | `Decompress ->
          let fz = Doc_db.freeze db in
          let results =
            Pool.map_result ?jobs
              (fun id -> drain (decompress_cursor (Limits.start limits) p.ct fz id))
              roots
          in
          Array.map2 (fun name r -> (name, r)) names results
      | _ -> (
          let engine = slp_engine p.ct (Doc_db.store db) in
          match
            let g = Limits.start limits in
            Array.iter (fun id -> Slp_spanner.prepare_gauge g engine id) roots
          with
          | exception e -> Array.map (fun name -> (name, Error e)) names
          | () ->
              (* enumeration only reads the frozen snapshot and filled
                 matrix slots — safe to fan out across domains *)
              let results =
                Pool.map_result ?jobs
                  (fun id ->
                    drain (Cursor.of_slp ~gauge:(Limits.start limits) engine id))
                  roots
              in
              Array.map2 (fun name r -> (name, r)) names results))
  | Packed c -> (
      let shards = Corpus.shards c in
      let docs = Corpus.docs c in
      match p.choice with
      | `Decompress ->
          let results =
            Pool.map_result ?jobs
              (fun (_, si, root) ->
                drain
                  (decompress_cursor (Limits.start limits) p.ct
                     (Arena.frozen_view shards.(si)) root))
              docs
          in
          Array.map2 (fun (name, _, _) r -> (name, r)) docs results
      | _ when Array.length shards = 1 ->
          (* single arena: one shared sweep over the mapped columns,
             then enumeration fans out per document (mirrors Db) *)
          let engine = Slp_spanner.of_frozen p.ct (Arena.frozen_view shards.(0)) in
          (match
             let g = Limits.start limits in
             Array.iter (fun (_, _, root) -> Slp_spanner.prepare_gauge g engine root) docs
           with
          | exception e -> Array.map (fun (name, _, _) -> (name, Error e)) docs
          | () ->
              let results =
                Pool.map_result ?jobs
                  (fun (_, _, root) ->
                    drain (Cursor.of_slp ~gauge:(Limits.start limits) engine root))
                  docs
              in
              Array.map2 (fun (name, _, _) r -> (name, r)) docs results)
      | _ ->
          (* shard-parallel in two waves.  Wave 1 fans out over shards:
             each domain builds an engine over its shard's mapped
             columns and sweeps that shard's documents under one gauge
             — the serial bottleneck of the single-store path.  A sweep
             failure poisons the shard's documents only.  Wave 2 fans
             out over all documents at once (enumeration only reads
             the mapped columns and filled matrix slots, so engines
             are safely shared across domains); a drain failure
             poisons one document only. *)
          let swept =
            Pool.map_result ?jobs
              (fun si ->
                let engine = Slp_spanner.of_frozen p.ct (Arena.frozen_view shards.(si)) in
                let g = Limits.start limits in
                Array.iter
                  (fun (_, sj, root) ->
                    if sj = si then Slp_spanner.prepare_gauge g engine root)
                  docs;
                engine)
              (Array.init (Array.length shards) Fun.id)
          in
          Pool.map_result ?jobs
            (fun (_, si, root) ->
              match swept.(si) with
              | Error e -> raise e
              | Ok engine -> drain (Cursor.of_slp ~gauge:(Limits.start limits) engine root))
            docs
          |> Array.map2 (fun (name, _, _) r -> (name, r)) docs)
