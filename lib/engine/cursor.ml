open Spanner_core
module Limits = Spanner_util.Limits
module Slp_spanner = Spanner_slp.Slp_spanner
module Incr = Spanner_incr.Incr
module Tuple_set = Set.Make (Span_tuple)

(* Take-views share the underlying stream with their parent, so the
   pull state (engine position, lookahead slot, pull count) lives in
   shared refs; only [budget] — how many tuples this view may still
   deliver — is per-view. *)
type t = {
  vars : Variable.Set.t;
  gauge : Limits.gauge;
  pull : unit -> Span_tuple.t option;
  pulled : int ref;
  finished : bool ref;
  peeked : Span_tuple.t option ref;
  mutable budget : int;
}

(* ------------------------------------------------------------------ *)
(* Constructors *)

let of_fun ?(gauge = Limits.unlimited ()) ~vars pull =
  {
    vars;
    gauge;
    pull;
    pulled = ref 0;
    finished = ref false;
    peeked = ref None;
    budget = max_int;
  }

(* Set-semantics view of a run enumeration: tuples already seen are
   skipped.  The table is real memory and real work that the caller's
   budget must see, so every pulled run — a skipped duplicate as much
   as a retained insert — consumes one gauge step; only retained
   tuples reach the per-pull tuple cap probe in [engine_pull]. *)
let dedup_wrap gauge pull =
  let seen = ref Tuple_set.empty in
  let rec fresh () =
    match pull () with
    | None -> None
    | Some t ->
        Limits.check gauge;
        if Tuple_set.mem t !seen then fresh ()
        else begin
          seen := Tuple_set.add t !seen;
          Some t
        end
  in
  fresh

(* Invert an iter-style enumerator into a pull function: the producer
   runs under an effect handler and is suspended at every yielded
   tuple; [next] resumes the captured continuation.  The effect
   constructor is local to each call, so cursors can nest (a pull
   inside another producer's callback) without stealing each other's
   yields.  This is the generic adapter for external iter-style
   producers — the native engines below no longer come through here. *)
let of_iter ?(gauge = Limits.unlimited ()) ?(dedup = false) ~vars iter =
  let module G = struct
    type _ Effect.t += Yield : Span_tuple.t -> unit Effect.t
  end in
  let open Effect.Deep in
  let resume : (unit, Span_tuple.t option) continuation option ref = ref None in
  let started = ref false in
  let run () =
    match_with
      (fun () -> iter (fun t -> Effect.perform (G.Yield t)))
      ()
      {
        retc = (fun () -> None);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | G.Yield t ->
                Some
                  (fun (k : (a, Span_tuple.t option) continuation) ->
                    resume := Some k;
                    Some t)
            | _ -> None);
      }
  in
  let raw () =
    if not !started then begin
      started := true;
      run ()
    end
    else
      match !resume with
      | None -> None
      | Some k ->
          resume := None;
          continue k ()
  in
  let pull = if dedup then dedup_wrap gauge raw else raw in
  of_fun ~gauge ~vars pull

let of_compiled ?gauge p =
  let cur = Compiled.cursor p in
  of_fun ?gauge ~vars:(Compiled.prepared_vars p) (fun () -> Compiled.cursor_next cur)

(* The native engines pull their own machines directly — no effect
   handler, no fiber, no per-pull context switch.  Deduplication (only
   when the automaton can repeat tuples, a fact each engine caches at
   construction) goes through the metered wrapper above. *)

let of_slp ?(gauge = Limits.unlimited ()) engine id =
  let cur = Slp_spanner.cursor engine id in
  let raw () = Slp_spanner.cursor_next cur in
  let pull = if Slp_spanner.nondeterministic engine then dedup_wrap gauge raw else raw in
  of_fun ~gauge ~vars:(Slp_spanner.vars engine) pull

let of_incr ?(gauge = Limits.unlimited ()) session id =
  let cur = Incr.cursor ~gauge session id in
  let raw () = Incr.cursor_next cur in
  let pull = if Incr.nondeterministic session then dedup_wrap gauge raw else raw in
  of_fun ~gauge ~vars:(Compiled.vars (Incr.compiled session)) pull

let of_relation r =
  let rest = ref (Span_relation.tuples r) in
  of_fun ~vars:(Span_relation.schema r) (fun () ->
      match !rest with
      | [] -> None
      | t :: ts ->
          rest := ts;
          Some t)

(* ------------------------------------------------------------------ *)
(* Consuming *)

let vars c = c.vars
let pulls c = !(c.pulled)

(* One metered engine pull, through the shared lookahead slot. *)
let engine_pull c =
  match !(c.peeked) with
  | Some _ as t ->
      c.peeked := None;
      t
  | None ->
      if !(c.finished) then None
      else (
        match c.pull () with
        | None ->
            c.finished := true;
            None
        | Some _ as t ->
            incr c.pulled;
            Limits.tick_tuple c.gauge !(c.pulled);
            t)

let next c =
  if c.budget <= 0 then None
  else
    match engine_pull c with
    | None -> None
    | Some _ as t ->
        c.budget <- c.budget - 1;
        t

let peek c =
  if c.budget <= 0 then None
  else
    match !(c.peeked) with
    | Some _ as t -> t
    | None -> (
        match engine_pull c with
        | None -> None
        | Some _ as t ->
            c.peeked := t;
            t)

let rec drop c k = if k > 0 then match next c with None -> () | Some _ -> drop c (k - 1)
let take c k = { c with budget = min c.budget (max 0 k) }

let iter c f =
  let rec go () =
    match next c with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  go ()

let fold c init f =
  let acc = ref init in
  iter c (fun t -> acc := f !acc t);
  !acc

let cardinal c = fold c 0 (fun n _ -> n + 1)
let to_list c = List.rev (fold c [] (fun acc t -> t :: acc))
let to_relation c = fold c (Span_relation.empty c.vars) Span_relation.add
