open Spanner_core
module Limits = Spanner_util.Limits
module Slp_spanner = Spanner_slp.Slp_spanner
module Incr = Spanner_incr.Incr
module Tuple_set = Set.Make (Span_tuple)

(* Take-views share the underlying stream with their parent, so the
   pull state (engine position, lookahead slot, pull count) lives in
   shared refs; only [budget] — how many tuples this view may still
   deliver — is per-view. *)
type t = {
  vars : Variable.Set.t;
  gauge : Limits.gauge;
  pull : unit -> Span_tuple.t option;
  pulled : int ref;
  finished : bool ref;
  peeked : Span_tuple.t option ref;
  mutable budget : int;
}

(* ------------------------------------------------------------------ *)
(* Constructors *)

let of_fun ?(gauge = Limits.unlimited ()) ~vars pull =
  {
    vars;
    gauge;
    pull;
    pulled = ref 0;
    finished = ref false;
    peeked = ref None;
    budget = max_int;
  }

(* Invert an iter-style enumerator into a pull function: the producer
   runs under an effect handler and is suspended at every yielded
   tuple; [next] resumes the captured continuation.  The effect
   constructor is local to each call, so cursors can nest (a pull
   inside another producer's callback) without stealing each other's
   yields. *)
let of_iter ?gauge ?(dedup = false) ~vars iter =
  let module G = struct
    type _ Effect.t += Yield : Span_tuple.t -> unit Effect.t
  end in
  let open Effect.Deep in
  let resume : (unit, Span_tuple.t option) continuation option ref = ref None in
  let started = ref false in
  let run () =
    match_with
      (fun () -> iter (fun t -> Effect.perform (G.Yield t)))
      ()
      {
        retc = (fun () -> None);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | G.Yield t ->
                Some
                  (fun (k : (a, Span_tuple.t option) continuation) ->
                    resume := Some k;
                    Some t)
            | _ -> None);
      }
  in
  let raw () =
    if not !started then begin
      started := true;
      run ()
    end
    else
      match !resume with
      | None -> None
      | Some k ->
          resume := None;
          continue k ()
  in
  let pull =
    if not dedup then raw
    else begin
      let seen = ref Tuple_set.empty in
      let rec fresh () =
        match raw () with
        | None -> None
        | Some t when Tuple_set.mem t !seen -> fresh ()
        | Some t ->
            seen := Tuple_set.add t !seen;
            Some t
      in
      fresh
    end
  in
  of_fun ?gauge ~vars pull

let of_compiled ?gauge p =
  let cur = Compiled.cursor p in
  of_fun ?gauge ~vars:(Compiled.prepared_vars p) (fun () -> Compiled.cursor_next cur)

let needs_dedup ct = not (Evset.is_deterministic (Compiled.evset ct))

let of_slp ?gauge engine id =
  of_iter ?gauge
    ~dedup:(needs_dedup (Slp_spanner.compiled engine))
    ~vars:(Slp_spanner.vars engine)
    (fun f -> Slp_spanner.iter_prepared engine id f)

let of_incr ?gauge session id =
  let ct = Incr.compiled session in
  of_iter ?gauge ~dedup:(needs_dedup ct) ~vars:(Compiled.vars ct) (fun f ->
      Incr.iter_runs ?gauge session id f)

let of_relation r =
  let rest = ref (Span_relation.tuples r) in
  of_fun ~vars:(Span_relation.schema r) (fun () ->
      match !rest with
      | [] -> None
      | t :: ts ->
          rest := ts;
          Some t)

(* ------------------------------------------------------------------ *)
(* Consuming *)

let vars c = c.vars
let pulls c = !(c.pulled)

(* One metered engine pull, through the shared lookahead slot. *)
let engine_pull c =
  match !(c.peeked) with
  | Some _ as t ->
      c.peeked := None;
      t
  | None ->
      if !(c.finished) then None
      else (
        match c.pull () with
        | None ->
            c.finished := true;
            None
        | Some _ as t ->
            incr c.pulled;
            Limits.tick_tuple c.gauge !(c.pulled);
            t)

let next c =
  if c.budget <= 0 then None
  else
    match engine_pull c with
    | None -> None
    | Some _ as t ->
        c.budget <- c.budget - 1;
        t

let peek c =
  if c.budget <= 0 then None
  else
    match !(c.peeked) with
    | Some _ as t -> t
    | None -> (
        match engine_pull c with
        | None -> None
        | Some _ as t ->
            c.peeked := t;
            t)

let rec drop c k = if k > 0 then match next c with None -> () | Some _ -> drop c (k - 1)
let take c k = { c with budget = min c.budget (max 0 k) }

let iter c f =
  let rec go () =
    match next c with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  go ()

let fold c init f =
  let acc = ref init in
  iter c (fun t -> acc := f !acc t);
  !acc

let cardinal c = fold c 0 (fun n _ -> n + 1)
let to_list c = List.rev (fold c [] (fun acc t -> t :: acc))
let to_relation c = fold c (Span_relation.empty c.vars) Span_relation.add
