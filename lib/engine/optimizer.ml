open Spanner_core
module Limits = Spanner_util.Limits
module Strhash = Spanner_util.Strhash
module Tuple_set = Set.Make (Span_tuple)

let default_fuse_states = 4096

(* ------------------------------------------------------------------ *)
(* Rewrite rules.

   All three pushes preserve the schemaless semantics of Algebra.eval:

   - π below ∪ and ⋈: projection distributes over union, and over a
     natural join as long as every shared variable survives on both
     sides (compatibility of two tuples only constrains their common
     variables, and those bindings are untouched by the projection).
   - π ∘ π collapses to the intersection, and a projection that keeps
     the whole schema disappears.
   - ς moves towards the automaton it filters: through a projection
     whose variables it survives (its unbound variables are ignored by
     satisfies_equality either way), below a union, and into the one
     join operand that mentions its variables.  A ς is only pushed
     while the subtree underneath still contains another ς — over a
     Select-free subtree it stays put, so the subtree below remains
     fusable into a single automaton and the ς runs as one stream
     filter on top.
   - ς over ≤ 1 in-schema variable is a tautology and is dropped.  *)

let rec rewrite e =
  match e with
  | Algebra.Formula _ | Algebra.Automaton _ -> e
  | Algebra.Union (a, b) -> Algebra.Union (rewrite a, rewrite b)
  | Algebra.Join (a, b) -> Algebra.Join (rewrite a, rewrite b)
  | Algebra.Project (v, e) -> push_project v (rewrite e)
  | Algebra.Select (z, e) -> push_select z (rewrite e)

and push_project v e =
  if Variable.Set.subset (Algebra.schema e) v then e
  else
    let reproject inner =
      let v = Variable.Set.inter v (Algebra.schema inner) in
      if Variable.Set.subset (Algebra.schema inner) v then inner
      else Algebra.Project (v, inner)
    in
    match e with
    | Algebra.Project (w, e') -> push_project (Variable.Set.inter v w) e'
    | Algebra.Union (a, b) -> Algebra.Union (push_project v a, push_project v b)
    | Algebra.Join (a, b) ->
        let shared = Variable.Set.inter (Algebra.schema a) (Algebra.schema b) in
        let keep = Variable.Set.union v shared in
        reproject (Algebra.Join (push_project keep a, push_project keep b))
    | Algebra.Select (z, e') ->
        let keep = Variable.Set.union v (Variable.Set.inter z (Algebra.schema e')) in
        reproject (Algebra.Select (z, push_project keep e'))
    | Algebra.Formula _ | Algebra.Automaton _ ->
        Algebra.Project (Variable.Set.inter v (Algebra.schema e), e)

and push_select z e =
  let z = Variable.Set.inter z (Algebra.schema e) in
  if Variable.Set.cardinal z <= 1 then e
  else if Algebra.is_regular e then Algebra.Select (z, e)
  else
    match e with
    | Algebra.Union (a, b) -> Algebra.Union (push_select z a, push_select z b)
    | Algebra.Join (a, b)
      when Variable.Set.is_empty (Variable.Set.inter z (Algebra.schema b)) ->
        Algebra.Join (push_select z a, b)
    | Algebra.Join (a, b)
      when Variable.Set.is_empty (Variable.Set.inter z (Algebra.schema a)) ->
        Algebra.Join (a, push_select z b)
    | Algebra.Project (v, e') ->
        (* z ⊆ v by the intersection above, so ς and π commute *)
        push_project v (push_select z e')
    | Algebra.Select (z', e') -> Algebra.Select (z', push_select z e')
    | Algebra.Join _ | Algebra.Formula _ | Algebra.Automaton _ -> Algebra.Select (z, e)

(* ------------------------------------------------------------------ *)
(* The annotated physical plan *)

type node = {
  expr : Algebra.t;
  schema : Variable.Set.t;
  shape : shape;
  mutable sampled : Sample.estimate option;
}

and shape =
  | Fused of { ct : Compiled.t; est_states : int }
  | Stream_union of node * node * string
  | Stream_join of node * node * string
  | Stream_project of Variable.Set.t * node
  | Stream_select of Variable.Set.t * node

type t = {
  original : Algebra.t;
  rewritten : Algebra.t;
  root : node;
  threshold : int;
  sample_bytes : int option;
  reordered : bool;
}

let original t = t.original
let rewritten t = t.rewritten
let schema t = t.root.schema
let threshold t = t.threshold

let rec count_fused node =
  match node.shape with
  | Fused _ -> 1
  | Stream_union (a, b, _) | Stream_join (a, b, _) -> count_fused a + count_fused b
  | Stream_project (_, sub) | Stream_select (_, sub) -> count_fused sub

let fused_count t = count_fused t.root
let fully_fused t = match t.root.shape with Fused _ -> true | _ -> false
let compiled t = match t.root.shape with Fused { ct; _ } -> Some ct | _ -> None

(* ------------------------------------------------------------------ *)
(* Fusion with the cost guard *)

let mul_cap a b = if a > 0 && b > 0 && a > max_int / b then max_int else a * b

(* A subtree still open for fusion carries its symbolic automaton and
   the state estimate its construction was approved under; a [Done]
   subtree has committed to a physical shape. *)
type built = Auto of Algebra.t * Evset.t * int | Done of node

let seal ~limits built =
  match built with
  | Done node -> node
  | Auto (expr, ev, est) ->
      {
        expr;
        schema = Evset.vars ev;
        shape = Fused { ct = Compiled.of_evset ~limits ev; est_states = est };
        sampled = None;
      }

let stream_reason = "operand contains a string-equality selection"

(* a Done operand either carries a selection somewhere in its subtree
   or was split by the fuse guard — tell the explain reader which *)
let rec has_select node =
  match node.shape with
  | Stream_select _ -> true
  | Fused _ -> false
  | Stream_project (_, a) -> has_select a
  | Stream_union (a, b, _) | Stream_join (a, b, _) -> has_select a || has_select b

let done_reason na nb =
  if has_select na || has_select nb then stream_reason
  else "operand already split by the fuse budget"

let guard_reason est threshold =
  Printf.sprintf "estimated %s states > fuse budget %d"
    (if est = max_int then "overflowing" else string_of_int est)
    threshold

let build ~limits ~threshold ~sample expr =
  let reordered = ref false in
  let rec go expr =
    match expr with
    | Algebra.Formula f ->
        let ev = Evset.of_formula ~limits f in
        Auto (expr, ev, Evset.size ev)
    | Algebra.Automaton ev -> Auto (expr, ev, Evset.size ev)
    | Algebra.Project (v, e) -> (
        match go e with
        | Auto (_, ev, est) -> Auto (expr, Evset.project v ev, est)
        | Done sub ->
            Done
              {
                expr;
                schema = Variable.Set.inter v sub.schema;
                shape = Stream_project (v, sub);
                sampled = None;
              })
    | Algebra.Select (z, e) ->
        let sub = seal ~limits (go e) in
        Done { expr; schema = sub.schema; shape = Stream_select (z, sub); sampled = None }
    | Algebra.Union (a, b) -> (
        match (go a, go b) with
        | Auto (_, eva, ea), Auto (_, evb, eb) when 1 + ea + eb <= threshold ->
            Auto (expr, Evset.union eva evb, 1 + ea + eb)
        | ba, bb ->
            let na = seal ~limits ba and nb = seal ~limits bb in
            let reason =
              match (ba, bb) with
              | Auto (_, _, ea), Auto (_, _, eb) -> guard_reason (1 + ea + eb) threshold
              | _ -> done_reason na nb
            in
            Done
              {
                expr;
                schema = Variable.Set.union na.schema nb.schema;
                shape = Stream_union (na, nb, reason);
                sampled = None;
              })
    | Algebra.Join _ ->
        let operands = flatten expr [] in
        let operands = List.map go operands in
        let operands = order operands in
        join_chain operands
  and flatten expr acc =
    match expr with
    | Algebra.Join (a, b) -> flatten a (flatten b acc)
    | e -> e :: acc
  and order operands =
    (* Reorder a ⋈-chain cheapest-first, by sampled cardinality of each
       fusable operand (a bounded-prefix document pass per operand);
       operands that cannot fuse keep their automaton cost unknown and
       go last.  Joins are AC under the schemaless semantics, so any
       order is correct — this one keeps the accumulated left side
       small, both for the product construction and for the
       materialised fallback's hash tables. *)
    match sample with
    | None -> operands
    | Some doc ->
        let keyed =
          List.map
            (fun b ->
              let key =
                match b with
                | Auto (_, ev, _) -> (
                    match Sample.estimate ~limits (Compiled.of_evset ~limits ev) doc with
                    | e -> (e.Sample.tuples, e.Sample.nodes)
                    | exception Limits.Spanner_error _ -> (max_int, max_int))
                | Done _ -> (max_int, max_int)
              in
              (key, b))
            operands
        in
        let sorted = List.stable_sort (fun (ka, _) (kb, _) -> compare ka kb) keyed in
        reordered := !reordered || List.exists2 (fun (_, b) b' -> b != b') sorted operands;
        List.map snd sorted
  and join_chain operands =
    match operands with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun acc b ->
            let expr =
              let expr_of = function Auto (e, _, _) -> e | Done n -> n.expr in
              Algebra.Join (expr_of acc, expr_of b)
            in
            match (acc, b) with
            | Auto (_, eva, ea), Auto (_, evb, eb) ->
                let branches = Evset.join_branches eva evb in
                (* per-branch product ≤ ea·eb states, plus one fresh
                   initial state per union folding the branches *)
                let est =
                  match mul_cap (mul_cap ea eb) branches with
                  | e when e = max_int -> max_int
                  | e -> e + branches
                in
                if est <= threshold then
                  let ev = Evset.join eva evb in
                  (* the product explored only reachable pairs; charge
                     parents for what was actually built *)
                  Auto (expr, ev, max est (Evset.size ev))
                else
                  let na = seal ~limits acc and nb = seal ~limits b in
                  Done
                    {
                      expr;
                      schema = Variable.Set.union na.schema nb.schema;
                      shape = Stream_join (na, nb, guard_reason est threshold);
                      sampled = None;
                    }
            | _ ->
                let na = seal ~limits acc and nb = seal ~limits b in
                Done
                  {
                    expr;
                    schema = Variable.Set.union na.schema nb.schema;
                    shape = Stream_join (na, nb, done_reason na nb);
                    sampled = None;
                  })
          first rest
  in
  let root = seal ~limits (go expr) in
  (root, !reordered)

let rec annotate ~limits ~doc node =
  (match node.shape with
  | Fused { ct; _ } -> (
      match Sample.estimate ~limits ct doc with
      | e -> node.sampled <- Some e
      | exception Limits.Spanner_error _ -> ())
  | Stream_union (a, b, _) | Stream_join (a, b, _) ->
      annotate ~limits ~doc a;
      annotate ~limits ~doc b
  | Stream_project (_, sub) | Stream_select (_, sub) -> annotate ~limits ~doc sub);
  ()

let optimize ?(limits = Limits.none) ?(fuse_states = default_fuse_states) ?sample expr =
  let threshold = max 1 (min fuse_states limits.Limits.max_states) in
  let rewritten = rewrite expr in
  let root, reordered = build ~limits ~threshold ~sample rewritten in
  (match sample with None -> () | Some doc -> annotate ~limits ~doc root);
  {
    original = expr;
    rewritten;
    root;
    threshold;
    sample_bytes = Option.map (fun d -> String.length (Sample.prefix d)) sample;
    reordered;
  }

(* ------------------------------------------------------------------ *)
(* Execution: results stream out of the fused automata; the remaining
   operators run as stream combinators on top. *)

(* Strhash-backed string-equality filter: same semantics as
   Span_tuple.satisfies_equality (unbound variables of [z] are
   ignored), but each comparison is O(1) against the document's rolling
   hashes instead of O(span length). *)
let selection_holds hash z tuple =
  let spans =
    Variable.Set.fold
      (fun x acc -> match Span_tuple.find tuple x with Some s -> s :: acc | None -> acc)
      z []
  in
  match spans with
  | [] | [ _ ] -> true
  | s0 :: rest ->
      let range s = (Span.left s - 1, Span.right s - 1) in
      List.for_all (fun s -> Strhash.equal_span hash ~a:(range s0) ~b:(range s)) rest

let cursor ?(limits = Limits.none) t doc =
  let g = Limits.start limits in
  let hash = lazy (Strhash.make doc) in
  let rec go node =
    match node.shape with
    | Fused { ct; _ } -> Cursor.of_compiled ~gauge:g (Compiled.prepare_with_gauge g ct doc)
    | Stream_select (z, sub) ->
        let c = go sub in
        let rec pull () =
          match Cursor.next c with
          | None -> None
          | Some tu when selection_holds (Lazy.force hash) z tu -> Some tu
          | Some _ -> pull ()
        in
        Cursor.of_fun ~vars:node.schema pull
    | Stream_project (v, sub) ->
        let c = go sub in
        let seen = ref Tuple_set.empty in
        let rec pull () =
          match Cursor.next c with
          | None -> None
          | Some tu ->
              let tu = Span_tuple.project v tu in
              if Tuple_set.mem tu !seen then pull ()
              else begin
                seen := Tuple_set.add tu !seen;
                Some tu
              end
        in
        Cursor.of_fun ~vars:node.schema pull
    | Stream_union (a, b, _) ->
        let ca = go a and cb = go b in
        let seen = ref Tuple_set.empty in
        let on_b = ref false in
        let rec pull () =
          let next = if !on_b then Cursor.next cb else Cursor.next ca in
          match next with
          | None ->
              if !on_b then None
              else begin
                on_b := true;
                pull ()
              end
          | Some tu when Tuple_set.mem tu !seen -> pull ()
          | Some tu ->
              seen := Tuple_set.add tu !seen;
              Some tu
        in
        Cursor.of_fun ~vars:node.schema pull
    | Stream_join (a, b, _) ->
        (* the documented fallback: both operands stream in, the join
           itself materialises (hash join), and the result streams out *)
        let ra = Cursor.to_relation (go a) in
        let rb = Cursor.to_relation (go b) in
        let r = Span_relation.join ra rb in
        let k = Span_relation.cardinal r in
        Limits.charge g k;
        Limits.check_tuples g k;
        Cursor.of_relation r
  in
  go t.root

let eval ?limits t doc = Cursor.to_relation (cursor ?limits t doc)

(* ------------------------------------------------------------------ *)
(* The costed plan tree, in the stable format explain locks in cram *)

let pp_vars ppf vars =
  Format.fprintf ppf "[%s]"
    (String.concat ", " (List.map Variable.name (Variable.Set.elements vars)))

let pp_sampled ppf node =
  match node.sampled with
  | None -> ()
  | Some e ->
      Format.fprintf ppf "; sample: %d tuple(s) in %d bytes" e.Sample.tuples
        e.Sample.sample_bytes

let rec pp_node ppf ~indent node =
  let pad = String.make indent ' ' in
  (match node.shape with
  | Fused { ct; est_states } ->
      Format.fprintf ppf "%sfuse: %d states (est %d)%a <- %a@." pad (Compiled.states ct)
        est_states pp_sampled node Algebra.pp node.expr
  | Stream_union (a, b, reason) ->
      Format.fprintf ppf "%sunion (stream, dedup: %s)@." pad reason;
      pp_node ppf ~indent:(indent + 2) a;
      pp_node ppf ~indent:(indent + 2) b
  | Stream_join (a, b, reason) ->
      Format.fprintf ppf "%sjoin (materialise: %s)@." pad reason;
      pp_node ppf ~indent:(indent + 2) a;
      pp_node ppf ~indent:(indent + 2) b
  | Stream_project (v, sub) ->
      Format.fprintf ppf "%sproject %a (stream, dedup)@." pad pp_vars v;
      pp_node ppf ~indent:(indent + 2) sub
  | Stream_select (z, sub) ->
      Format.fprintf ppf "%sselect %a (stream: Strhash equality filter)@." pad pp_vars z;
      pp_node ppf ~indent:(indent + 2) sub);
  ()

let pp ppf t =
  let fused = fused_count t in
  Format.fprintf ppf "plan: algebra (%s)@."
    (if fully_fused t then "fully fused: one automaton"
     else Printf.sprintf "%d fused automat%s under stream operators" fused
         (if fused = 1 then "on" else "a"));
  Format.fprintf ppf "  rewritten: %a@." Algebra.pp t.rewritten;
  Format.fprintf ppf "  fuse budget: %d states@." t.threshold;
  (match t.sample_bytes with
  | Some b ->
      Format.fprintf ppf "  sample: %d bytes%s@." b
        (if t.reordered then "; join chain reordered by sampled cardinality" else "")
  | None -> Format.fprintf ppf "  sample: none (join chains keep their written order)@.");
  pp_node ppf ~indent:2 t.root
