(** Cost-based algebraic optimization: fuse whole queries into one
    automaton.

    [Algebra.eval] is operator-at-a-time: every ∪/⋈/π node
    materialises a full intermediate relation.  But the Select-free
    fragment of the algebra is {e closed under automaton composition}
    (§2.2 — Peterfreund et al.'s complexity bounds for relational
    algebra over spanners make this the tractable evaluation route):
    union, join and projection compose symbolically through
    {!Spanner_core.Evset}, so a whole subtree can run as a single
    compiled automaton with one O(|doc|) document pass and streaming
    enumeration — no intermediate relation at all.

    {!optimize} turns an {!Spanner_core.Algebra.t} into a physical
    plan in three steps:

    + {b Rewrite}: projections are pushed below unions and joins
      (shrinking automaton variable sets before products are taken),
      π∘π collapses, trivial selections (≤ 1 in-schema variable) are
      dropped, and each string-equality selection moves towards the
      operand automaton it filters — but never into a Select-free
      subtree, which must stay whole so it can fuse.
    + {b Reorder}: each maximal ⋈-chain is flattened and re-ordered
      cheapest-first by sampled cardinality ({!Sample}: one bounded-
      prefix document pass per operand) when a sample document is
      given.  Joins are AC, so any order is correct.
    + {b Fuse, under a cost guard}: every maximal Select-free subtree
      is composed bottom-up into one {!Spanner_core.Evset.t} and
      compiled.  Before each symbolic join the planner prices the
      product — [size a · size b · join_branches a b] — and when the
      estimate exceeds the fuse budget ([min fuse_states
      limits.max_states]) that node {e falls back to materialised
      evaluation} (hash join over its operands' streams) instead of
      building the product.  The guard bounds construction work by
      checking estimates {e before} paying for them.

    Execution ({!cursor}) streams straight out of the fused automata
    through the {!Cursor} protocol.  Residual operators run as stream
    combinators: selections filter tuples through
    {!Spanner_util.Strhash} O(1) substring equality, projections and
    unions deduplicate on the fly, and only a guard-tripped or
    Select-blocked join materialises.  {!pp} prints the rewritten
    costed tree — per-node state estimates, sampled cardinalities and
    each fuse-vs-materialise decision — in the stable format the CLI's
    [explain --algebra] locks in cram. *)

open Spanner_core

type t

(** Default fuse budget: a fused subtree may cost at most this many
    product states before the guard falls back to materialisation. *)
val default_fuse_states : int

(** [optimize ?limits ?fuse_states ?sample e] plans [e].  [limits]
    governs leaf compilation and caps the fuse budget at its
    [max_states]; [sample] is a representative document (usually the
    one about to be queried) whose bounded prefix prices join operands
    and annotates the plan with cardinality estimates.
    @raise Spanner_util.Limits.Spanner_error when a {e leaf} automaton
    alone exceeds [limits] — there is nothing to fall back to. *)
val optimize : ?limits:Spanner_util.Limits.t -> ?fuse_states:int -> ?sample:string -> Algebra.t -> t

val original : t -> Algebra.t

(** [rewritten t] is the algebra expression after the rewrite passes —
    what the physical plan was built from. *)
val rewritten : t -> Algebra.t

(** [schema t] is the output variable set. *)
val schema : t -> Variable.Set.t

(** [threshold t] is the effective fuse budget in states. *)
val threshold : t -> int

(** [fused_count t] is the number of fused automata in the plan. *)
val fused_count : t -> int

(** [fully_fused t] holds when the whole query became one automaton —
    evaluation is then a single document pass plus enumeration. *)
val fully_fused : t -> bool

(** [compiled t] is the single fused automaton of a {!fully_fused}
    plan ([None] otherwise) — hand it to {!Plan.make} to route a whole
    algebra query through any engine/input shape. *)
val compiled : t -> Compiled.t option

(** [cursor ?limits t doc] streams ⟦t⟧(doc).  One gauge spans every
    fused document pass and all stream combinators; selections hash
    [doc] once, lazily. *)
val cursor : ?limits:Spanner_util.Limits.t -> t -> string -> Cursor.t

(** [eval ?limits t doc] drains {!cursor} into a relation. *)
val eval : ?limits:Spanner_util.Limits.t -> t -> string -> Span_relation.t

(** [pp ppf t] prints the rewritten expression and the costed plan
    tree (stable across runs given the same inputs). *)
val pp : Format.formatter -> t -> unit
