(* Deterministic, seeded fault injection (see the .mli for the user
   contract).

   Design constraints, in order:

   1. The disarmed probe must be invisible on the serve fast path: a
      [site] is a record whose [active] field is [None] outside chaos
      runs, so [io]/[point] are one load and one never-taken branch —
      no lock, no PRNG draw, no allocation.
   2. Armed decisions must be reproducible.  Global mutable PRNG state
      shared across threads would make the fault schedule depend on
      scheduling; instead every armed site owns a private Xoshiro
      stream seeded from (global seed, site name) behind a per-site
      mutex, so the sequence of decisions AT A SITE is a pure function
      of the spec.  Which thread observes which decision still depends
      on interleaving — that is inherent and fine: liveness invariants
      must hold under every interleaving anyway.
   3. Arming is dynamic (tests flip faults on and off around phases),
      so rules are kept and re-applied to sites registered later. *)

type behavior = Eintr | Short | Exn | Oom | Delay of int
type rule = { site : string; prob : float; behavior : behavior }

exception Injected of string

type compiled = {
  prob : float;
  behavior : behavior;
  rng : Xoshiro.t;
  lock : Mutex.t;
}

type site = {
  name : string;
  mutable active : compiled option;
  mutable fired : int;
}

(* The registry of every site ever created, plus the current spec so
   sites created after [configure] still arm.  All registry mutation
   happens under [registry_lock]; the hot path never touches it. *)
let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()
let spec : (int * rule list) option ref = ref None

let site_seed global name =
  (* splitmix-style scramble of the name hash so "a"/"b" do not get
     adjacent streams *)
  let h = Hashtbl.hash name in
  global lxor ((h * 0x9e3779b1) land max_int) lxor ((h lsl 17) land max_int)

let arm_one seed rules s =
  s.fired <- 0;
  let compiled =
    List.find_opt (fun (r : rule) -> r.site = s.name) rules
    |> Option.map (fun (r : rule) ->
           {
             prob = r.prob;
             behavior = r.behavior;
             rng = Xoshiro.create (site_seed seed s.name);
             lock = Mutex.create ();
           })
  in
  s.active <- compiled

let locked_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let configure ~seed rules =
  locked_registry (fun () ->
      spec := Some (seed, rules);
      Hashtbl.iter (fun _ s -> arm_one seed rules s) registry)

let disable () =
  locked_registry (fun () ->
      spec := None;
      Hashtbl.iter (fun _ s -> s.active <- None) registry)

let armed () = !spec <> None

let site name =
  locked_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
          let s = { name; active = None; fired = 0 } in
          (match !spec with Some (seed, rules) -> arm_one seed rules s | None -> ());
          Hashtbl.replace registry name s;
          s)

let site_name s = s.name

type advice = Full | Partial

let fire s c =
  Mutex.lock c.lock;
  let hit = Xoshiro.float c.rng < c.prob in
  if hit then s.fired <- s.fired + 1;
  Mutex.unlock c.lock;
  if not hit then Full
  else
    match c.behavior with
    | Short -> Partial
    | Delay ms ->
        Unix.sleepf (float_of_int ms /. 1000.);
        Full
    | Eintr -> raise (Unix.Unix_error (EINTR, "fault", s.name))
    | Oom -> raise (Unix.Unix_error (ENOMEM, "fault", s.name))
    | Exn -> raise (Injected s.name)

let io s = match s.active with None -> Full | Some c -> fire s c
let point s = ignore (io s)
let injected s = s.fired

let stats () =
  locked_registry (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s.fired) :: acc) registry [])
  |> List.sort compare

let injected_total () = List.fold_left (fun acc (_, n) -> acc + n) 0 (stats ())

(* ------------------------------------------------------------------ *)
(* SPANNER_FAULTS=seed:site=behavior[@prob],... *)

let parse_behavior s =
  match s with
  | "eintr" -> Ok Eintr
  | "short" -> Ok Short
  | "exn" -> Ok Exn
  | "oom" -> Ok Oom
  | _ ->
      let is_delay = String.length s > 5 && String.sub s 0 5 = "delay" in
      if is_delay then
        match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some ms when ms >= 0 -> Ok (Delay ms)
        | _ -> Error (Printf.sprintf "bad delay in %S (expected delayMS)" s)
      else
        Error (Printf.sprintf "unknown behavior %S (expected eintr, short, exn, oom or delayMS)" s)

let parse_rule s =
  match String.index_opt s '=' with
  | None | Some 0 -> Error (Printf.sprintf "expected site=behavior[@prob], got %S" s)
  | Some eq -> (
      let site = String.sub s 0 eq in
      let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
      let bstr, prob =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1.0)
        | Some at -> (
            let p = String.sub rest (at + 1) (String.length rest - at - 1) in
            ( String.sub rest 0 at,
              match float_of_string_opt p with
              | Some f when f > 0. && f <= 1. -> Ok f
              | _ -> Error (Printf.sprintf "probability %S not in (0, 1]" p) ))
      in
      match (parse_behavior bstr, prob) with
      | Ok behavior, Ok prob -> Ok { site; prob; behavior }
      | (Error _ as e), _ | _, (Error _ as e) -> e)

let parse_spec s =
  match String.index_opt s ':' with
  | None -> Error "expected seed:site=behavior[@prob],..."
  | Some colon -> (
      match int_of_string_opt (String.sub s 0 colon) with
      | None -> Error (Printf.sprintf "seed %S is not an integer" (String.sub s 0 colon))
      | Some seed ->
          let rest = String.sub s (colon + 1) (String.length s - colon - 1) in
          String.split_on_char ',' rest
          |> List.filter (fun r -> r <> "")
          |> List.fold_left
               (fun acc r ->
                 match (acc, parse_rule r) with
                 | Ok rules, Ok rule -> Ok (rule :: rules)
                 | (Error _ as e), _ | _, (Error _ as e) -> e)
               (Ok [])
          |> Result.map (fun rules -> (seed, List.rev rules)))

let () =
  match Sys.getenv_opt "SPANNER_FAULTS" with
  | None | Some "" -> ()
  | Some s -> (
      match parse_spec s with
      | Ok (seed, rules) -> configure ~seed rules
      | Error msg ->
          Printf.eprintf "warning: ignoring SPANNER_FAULTS: %s\n%!" msg)
