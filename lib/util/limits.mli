(** Resource governance: work budgets and the unified error taxonomy.

    The survey's complexity results are a warning label: combined
    complexity of spanner evaluation is intractable in general
    (§2.4/§2.5, and Peterfreund et al. on relational algebra over
    spanners), so an engine that serves untrusted formulas and
    documents must bound its own work instead of running until the
    machine gives out.  This module provides the two halves of that
    contract:

    - {!t}, an immutable budget specification (step fuel, wall-clock
      deadline, automaton-state cap, output-tuple cap), and {!gauge},
      the mutable per-run meter derived from it.  Hot loops call
      {!check} (or {!charge}) once per unit of work; the fast path is
      one increment and one comparison, and the wall clock is probed
      only every ~4K steps, so a generous budget costs a few percent
      at worst (EXPERIMENTS.md E14).
    - {!spanner_error}, the typed error vocabulary shared by every
      layer (parsers, deserializer, evaluation engines, CLI), with
      {!to_string} for humans and {!exit_code} for shells.

    A gauge is single-domain mutable state: parallel batch runs
    ({!Spanner_util.Pool}) must {!start} one gauge per work item from
    the shared spec, never share one across domains. *)

(** Which budget axis was exhausted. *)
type which = Fuel | Deadline | States | Tuples

type spanner_error =
  | Parse of { what : string; pos : int; msg : string }
      (** Syntax error in [what] (e.g. ["formula"], ["cde"],
          ["datalog"]) at byte offset [pos]. *)
  | Limit_exceeded of { which : which; spent : int }
      (** A budget axis tripped after spending [spent] units (steps,
          milliseconds, states, or tuples, per [which]). *)
  | Corrupt_input of { what : string; msg : string }
      (** Malformed binary input (truncated, overflowing, or
          inconsistent), e.g. an SLPDB file. *)
  | Eval_failure of { what : string; msg : string }
      (** A well-formed input that cannot be evaluated (unknown
          document name, empty document where an SLP is required, …). *)

exception Spanner_error of spanner_error

(** Raise helpers (each raises {!Spanner_error}). *)

val error : spanner_error -> 'a
val parse_error : what:string -> pos:int -> string -> 'a
val corrupt : what:string -> string -> 'a
val eval_failure : what:string -> string -> 'a

val which_to_string : which -> string

(** [to_string e] is a one-line human-readable rendering. *)
val to_string : spanner_error -> string

(** [exit_code e] maps the taxonomy onto the CLI exit-code contract:
    2 for [Parse] and [Corrupt_input] (bad input, usage-class), 3 for
    [Limit_exceeded], 1 for [Eval_failure]. *)
val exit_code : spanner_error -> int

(** {1 Budgets} *)

(** An immutable budget specification.  [max_int] on any axis (and
    [time_ms]) means unbounded. *)
type t = {
  fuel : int;  (** total abstract work steps *)
  time_ms : int;  (** wall-clock milliseconds per run *)
  max_states : int;  (** automaton states (construction-time cap) *)
  max_tuples : int;  (** output tuples per relation *)
}

(** [none] bounds nothing. *)
val none : t

val is_none : t -> bool

(** [make ()] is {!none} with the given axes bounded.
    @raise Invalid_argument on negative bounds (zero is allowed: it
    trips at the first probe). *)
val make :
  ?fuel:int -> ?time_ms:int -> ?max_states:int -> ?max_tuples:int -> unit -> t

(** {1 Gauges} *)

(** A running meter: step counter plus the absolute deadline captured
    at {!start} time. *)
type gauge

(** [start spec] begins metering now (the deadline is [now +
    time_ms]). *)
val start : t -> gauge

(** [unlimited ()] is [start none] — a gauge that never trips, for
    internal call sites whose caller imposed no budget. *)
val unlimited : unit -> gauge

(** [spec g] is the specification [g] was started from. *)
val spec : gauge -> t

(** [steps g] is the work consumed so far. *)
val steps : gauge -> int

(** [check g] consumes one step.  Amortized O(1): fuel and deadline
    are actually probed every ~4096 steps (and exactly at the fuel
    boundary).
    @raise Spanner_error [Limit_exceeded] when fuel or deadline is
    exhausted. *)
val check : gauge -> unit

(** [charge g n] consumes [n] steps at once (bulk work, e.g. one
    matrix multiplication of [n] rows). *)
val charge : gauge -> int -> unit

(** [check_states g n] fails iff [n] exceeds the state cap. *)
val check_states : gauge -> int -> unit

(** [check_tuples g n] fails iff [n] exceeds the tuple cap. *)
val check_tuples : gauge -> int -> unit

(** [tick_tuple g n] accounts for one streamed output tuple — one step
    of work ({!check}) plus the tuple-cap probe at running count [n]
    ({!check_tuples}).  The per-pull probe of streaming cursors
    ({!Spanner_engine.Cursor}): deadlines and tuple caps fire
    mid-stream, between two pulls. *)
val tick_tuple : gauge -> int -> unit
