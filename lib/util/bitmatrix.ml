type t = { rows : Bitset.t array; n : int }

let create n = { rows = Array.init n (fun _ -> Bitset.create n); n }

let identity n =
  let m = create n in
  for i = 0 to n - 1 do
    Bitset.add m.rows.(i) i
  done;
  m

let dim m = m.n

let get m i j = Bitset.mem m.rows.(i) j

let set m i j = Bitset.add m.rows.(i) j

let row m i = m.rows.(i)

let mul a b =
  if a.n <> b.n then invalid_arg "Bitmatrix.mul: dimension mismatch";
  let r = create a.n in
  for i = 0 to a.n - 1 do
    let row_i = r.rows.(i) in
    Bitset.iter (fun k -> ignore (Bitset.union_into ~into:row_i b.rows.(k))) a.rows.(i)
  done;
  r

let mul_add ~into a b =
  if into.n <> a.n || a.n <> b.n then invalid_arg "Bitmatrix.mul_add: dimension mismatch";
  for i = 0 to a.n - 1 do
    let row_i = into.rows.(i) in
    Bitset.iter (fun k -> ignore (Bitset.union_into ~into:row_i b.rows.(k))) a.rows.(i)
  done

let union a b =
  if a.n <> b.n then invalid_arg "Bitmatrix.union: dimension mismatch";
  let r = create a.n in
  for i = 0 to a.n - 1 do
    ignore (Bitset.union_into ~into:r.rows.(i) a.rows.(i));
    ignore (Bitset.union_into ~into:r.rows.(i) b.rows.(i))
  done;
  r

let copy m = { rows = Array.map Bitset.copy m.rows; n = m.n }

let transitive_closure m =
  (* Floyd–Warshall specialised to booleans: if i reaches k, fold k's row
     into i's. Rows are bitsets, so each fold is word-parallel. *)
  let r = copy m in
  for i = 0 to r.n - 1 do
    Bitset.add r.rows.(i) i
  done;
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      if Bitset.mem r.rows.(i) k then ignore (Bitset.union_into ~into:r.rows.(i) r.rows.(k))
    done
  done;
  r

let apply_row m s =
  if Bitset.capacity s <> m.n then invalid_arg "Bitmatrix.apply_row: dimension mismatch";
  let out = Bitset.create m.n in
  Bitset.iter (fun i -> ignore (Bitset.union_into ~into:out m.rows.(i))) s;
  out

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.rows b.rows
