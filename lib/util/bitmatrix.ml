type t = { rows : Bitset.t array; n : int }

let create n = { rows = Array.init n (fun _ -> Bitset.create n); n }

let identity n =
  let m = create n in
  for i = 0 to n - 1 do
    Bitset.add m.rows.(i) i
  done;
  m

let dim m = m.n

let get m i j = Bitset.mem m.rows.(i) j

let set m i j = Bitset.add m.rows.(i) j

let row m i = m.rows.(i)

let mul a b =
  if a.n <> b.n then invalid_arg "Bitmatrix.mul: dimension mismatch";
  let r = create a.n in
  for i = 0 to a.n - 1 do
    let row_i = r.rows.(i) in
    Bitset.iter (fun k -> ignore (Bitset.union_into ~into:row_i b.rows.(k))) a.rows.(i)
  done;
  r

let mul_add ~into a b =
  if into.n <> a.n || a.n <> b.n then invalid_arg "Bitmatrix.mul_add: dimension mismatch";
  for i = 0 to a.n - 1 do
    let row_i = into.rows.(i) in
    Bitset.iter (fun k -> ignore (Bitset.union_into ~into:row_i b.rows.(k))) a.rows.(i)
  done

let union a b =
  if a.n <> b.n then invalid_arg "Bitmatrix.union: dimension mismatch";
  let r = create a.n in
  for i = 0 to a.n - 1 do
    ignore (Bitset.union_into ~into:r.rows.(i) a.rows.(i));
    ignore (Bitset.union_into ~into:r.rows.(i) b.rows.(i))
  done;
  r

let copy m = { rows = Array.map Bitset.copy m.rows; n = m.n }

let transitive_closure m =
  (* Floyd–Warshall specialised to booleans: if i reaches k, fold k's row
     into i's. Rows are bitsets, so each fold is word-parallel. *)
  let r = copy m in
  for i = 0 to r.n - 1 do
    Bitset.add r.rows.(i) i
  done;
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      if Bitset.mem r.rows.(i) k then ignore (Bitset.union_into ~into:r.rows.(i) r.rows.(k))
    done
  done;
  r

(* 8×8 bit-block transpose by delta swaps, on an OCaml int.  Bit
   [8k + c] is block cell (row k, col c); cell (7,7) would live at bit
   63, which a 63-bit int cannot hold — the caller keeps it out of [x]
   and moves it separately.  None of the masks/shifts below let bit 62
   overflow or read the missing bit 63 into a kept position. *)
let transpose8 x =
  let t = (x lxor (x lsr 7)) land 0x00AA00AA00AA00AA in
  let x = x lxor t lxor (t lsl 7) in
  let t = (x lxor (x lsr 14)) land 0x0000CCCC0000CCCC in
  let x = x lxor t lxor (t lsl 14) in
  let t = (x lxor (x lsr 28)) land 0x00000000F0F0F0F0 in
  x lxor t lxor (t lsl 28)

let transpose m =
  let r = create m.n in
  if m.n > 0 then begin
    let nb = Bitset.byte_length m.rows.(0) in
    for bi = 0 to nb - 1 do
      let rmax = min 7 (m.n - 1 - (bi lsl 3)) in
      for bj = 0 to nb - 1 do
        let cmax = min 7 (m.n - 1 - (bj lsl 3)) in
        (* gather: byte k of [w] = source row 8bi+k, byte bj *)
        let w = ref 0 in
        let top = ref 0 in
        for k = 0 to rmax do
          let b = Bitset.get_byte m.rows.((bi lsl 3) lor k) bj in
          if k = 7 then begin
            top := b lsr 7;
            w := !w lor ((b land 0x7F) lsl 56)
          end
          else w := !w lor (b lsl (k lsl 3))
        done;
        if !w <> 0 || !top <> 0 then begin
          let x = transpose8 !w in
          for c = 0 to cmax do
            let b = (x lsr (c lsl 3)) land 0xFF in
            let b = if c = 7 && !top <> 0 then b lor 0x80 else b in
            if b <> 0 then Bitset.set_byte r.rows.((bj lsl 3) lor c) bi b
          done
        end
      done
    done
  end;
  r

let apply_row m s =
  if Bitset.capacity s <> m.n then invalid_arg "Bitmatrix.apply_row: dimension mismatch";
  let out = Bitset.create m.n in
  Bitset.iter (fun i -> ignore (Bitset.union_into ~into:out m.rows.(i))) s;
  out

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.rows b.rows
