(** Dense, fixed-capacity bitsets.

    Used for NFA state sets during subset construction and simulation,
    and as the rows of {!Bitmatrix}. *)

type t

(** [create n] is an empty bitset with capacity for elements [0..n-1]. *)
val create : int -> t

(** [capacity s] is the number of addressable elements. *)
val capacity : t -> int

(** [copy s] is an independent copy. *)
val copy : t -> t

(** [add s i] sets bit [i]. *)
val add : t -> int -> unit

(** [remove s i] clears bit [i]. *)
val remove : t -> int -> unit

(** [mem s i] tests bit [i]. *)
val mem : t -> int -> bool

(** [is_empty s] tests whether no bit is set. *)
val is_empty : t -> bool

(** [cardinal s] is the number of set bits. *)
val cardinal : t -> int

(** [equal a b] tests equality of contents (capacities must match). *)
val equal : t -> t -> bool

(** [subset a b] tests whether every bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [union_into ~into src] sets [into := into ∪ src]; returns [true]
    if [into] changed. *)
val union_into : into:t -> t -> bool

(** [inter a b] is a fresh intersection. *)
val inter : t -> t -> t

(** [iter f s] applies [f] to every set bit index, ascending. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over the set bit indices, ascending. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] is the list of set bit indices, ascending. *)
val elements : t -> int list

(** [of_list n xs] is the bitset of capacity [n] holding [xs]. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest set bit, or [None] if empty. *)
val choose : t -> int option

(** [first_from s i] is the smallest set bit [>= i], or [-1] if none.
    Byte-parallel: zero bytes are skipped eight candidates at a time,
    so scanning a sparse row costs O(capacity/8) rather than
    O(capacity) membership probes. *)
val first_from : t -> int -> int

(** [first_common_from a b i] is the smallest [j >= i] set in both [a]
    and [b], or [-1] — [first_from (inter a b) i] without building the
    intersection.  The candidate-skipping step of the native SLP
    enumerator ({!Spanner_slp.Slp_spanner}): one call finds the next
    viable split state of a grammar node. *)
val first_common_from : t -> t -> int -> int

(** [first_split_from a b c d i] is the smallest [j >= i] set in
    [(a ∧ c) ∨ (a ∧ d) ∨ (b ∧ d)], or [-1] — the split-candidate scan
    of matrix enumeration, fused so each scanned window is read once
    instead of six times across three {!first_common_from} passes.
    @raise Invalid_argument on a capacity mismatch. *)
val first_split_from : t -> t -> t -> t -> int -> int

(** {2 Raw byte access}

    Byte [k] holds bits [8k .. 8k+7], low bit first ([byte_length]
    bytes total).  For byte-parallel algorithms that outgrow the
    element-wise API (e.g. {!Bitmatrix.transpose}'s 8×8 block
    transpose); not intended for general use. *)

val byte_length : t -> int
val get_byte : t -> int -> int

(** [set_byte s k b] overwrites byte [k] with [b] (bits [8k..8k+7]).
    The caller must keep bits at or above [capacity s] clear. *)
val set_byte : t -> int -> int -> unit

(** [clear s] unsets every bit. *)
val clear : t -> unit

(** [hash s] is a content hash, compatible with {!equal}. *)
val hash : t -> int

(** [key s] is the canonical content key of [s]: two bitsets of equal
    capacity have equal keys iff they are {!equal}.  Intended as a
    hashtable key for interning state subsets without bucket scans. *)
val key : t -> string

(** [compare a b] is a total order compatible with {!equal}. *)
val compare : t -> t -> int
