(** Dense, fixed-capacity bitsets.

    Used for NFA state sets during subset construction and simulation,
    and as the rows of {!Bitmatrix}. *)

type t

(** [create n] is an empty bitset with capacity for elements [0..n-1]. *)
val create : int -> t

(** [capacity s] is the number of addressable elements. *)
val capacity : t -> int

(** [copy s] is an independent copy. *)
val copy : t -> t

(** [add s i] sets bit [i]. *)
val add : t -> int -> unit

(** [remove s i] clears bit [i]. *)
val remove : t -> int -> unit

(** [mem s i] tests bit [i]. *)
val mem : t -> int -> bool

(** [is_empty s] tests whether no bit is set. *)
val is_empty : t -> bool

(** [cardinal s] is the number of set bits. *)
val cardinal : t -> int

(** [equal a b] tests equality of contents (capacities must match). *)
val equal : t -> t -> bool

(** [subset a b] tests whether every bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [union_into ~into src] sets [into := into ∪ src]; returns [true]
    if [into] changed. *)
val union_into : into:t -> t -> bool

(** [inter a b] is a fresh intersection. *)
val inter : t -> t -> t

(** [iter f s] applies [f] to every set bit index, ascending. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over the set bit indices, ascending. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] is the list of set bit indices, ascending. *)
val elements : t -> int list

(** [of_list n xs] is the bitset of capacity [n] holding [xs]. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest set bit, or [None] if empty. *)
val choose : t -> int option

(** [clear s] unsets every bit. *)
val clear : t -> unit

(** [hash s] is a content hash, compatible with {!equal}. *)
val hash : t -> int

(** [key s] is the canonical content key of [s]: two bitsets of equal
    capacity have equal keys iff they are {!equal}.  Intended as a
    hashtable key for interning state subsets without bucket scans. *)
val key : t -> string

(** [compare a b] is a total order compatible with {!equal}. *)
val compare : t -> t -> int
