(* A mutex around Lru: the server registry is probed from session
   threads and worker domains concurrently, and Lru's intrusive
   recency list cannot tolerate interleaved updates.  Every operation
   takes the lock for O(1) expected time; [find_or_add] deliberately
   computes *outside* the lock, so a slow computation (compiling a
   plan, decompressing a document) never serialises unrelated cache
   traffic — two racing misses may both compute, and the second add
   simply replaces the first with an equal value. *)

type ('k, 'v) t = { mutex : Mutex.t; lru : ('k, 'v) Lru.t }

let create ~capacity () = { mutex = Mutex.create (); lru = Lru.create ~capacity () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t k = locked t (fun () -> Lru.find t.lru k)
let add t k v = locked t (fun () -> Lru.add t.lru k v)
let remove t k = locked t (fun () -> Lru.remove t.lru k)
let length t = locked t (fun () -> Lru.length t.lru)
let capacity t = t.lru |> Lru.capacity
let stats t = locked t (fun () -> Lru.stats t.lru)
let reset_stats t = locked t (fun () -> Lru.reset_stats t.lru)
let clear t = locked t (fun () -> Lru.clear t.lru)

let find_or_add t k compute =
  match find t k with
  | Some v -> v
  | None ->
      let v = compute () in
      add t k v;
      v
