(** Bounded least-recently-used cache with usage statistics.

    Backing store for the incremental evaluation subsystem
    ({!Spanner_incr.Incr}): per-SLP-node transition summaries are
    memoised here, and the hit/miss/eviction counters are what the
    CLI and benchmarks report.  The structure is a hash table over an
    intrusive doubly-linked recency list, so every operation is O(1)
    expected time. *)

type ('k, 'v) t

(** Cumulative usage counters since creation (or the last
    {!reset_stats}).  Explicit {!remove}s are not counted as
    evictions. *)
type stats = { hits : int; misses : int; evictions : int }

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries; inserting into a full cache evicts the least recently
    used one.
    @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> ('k, 'v) t

(** [capacity t] is the bound given at creation. *)
val capacity : ('k, 'v) t -> int

(** [length t] is the number of entries currently cached. *)
val length : ('k, 'v) t -> int

(** [find t k] is the cached value for [k], refreshing its recency;
    counts one hit or one miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [mem t k] tests presence without touching recency or counters. *)
val mem : ('k, 'v) t -> 'k -> bool

(** [add t k v] binds [k] to [v] as the most recently used entry,
    replacing any previous binding; evicts the least recently used
    entry if the cache is full. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [remove t k] drops [k]'s entry if present (not an eviction). *)
val remove : ('k, 'v) t -> 'k -> unit

(** [clear t] drops every entry; counters are kept. *)
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats

(** [reset_stats t] zeroes the counters, keeping the entries. *)
val reset_stats : ('k, 'v) t -> unit
