type t = { bits : Bytes.t; n : int }

(* Bits are packed little-endian into bytes: bit [i] lives in byte
   [i lsr 3] at position [i land 7]. Bytes (not int arrays) keep
   copying and hashing simple and allocation-cheap. *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity s = s.n

let copy s = { bits = Bytes.copy s.bits; n = s.n }

let check s i =
  if i < 0 || i >= s.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of bounds (capacity %d)" i s.n)

let add s i =
  check s i;
  let b = Bytes.get_uint8 s.bits (i lsr 3) in
  Bytes.set_uint8 s.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let remove s i =
  check s i;
  let b = Bytes.get_uint8 s.bits (i lsr 3) in
  Bytes.set_uint8 s.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem s i =
  check s i;
  Bytes.get_uint8 s.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let is_empty s =
  let rec loop i = i >= Bytes.length s.bits || (Bytes.get s.bits i = '\000' && loop (i + 1)) in
  loop 0

let popcount_byte =
  let table = Array.init 256 (fun b ->
      let rec count b = if b = 0 then 0 else (b land 1) + count (b lsr 1) in
      count b)
  in
  fun b -> table.(b)

let cardinal s =
  let total = ref 0 in
  for i = 0 to Bytes.length s.bits - 1 do
    total := !total + popcount_byte (Bytes.get_uint8 s.bits i)
  done;
  !total

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let rec loop i =
    i >= Bytes.length a.bits
    || (Bytes.get_uint8 a.bits i land lnot (Bytes.get_uint8 b.bits i) = 0 && loop (i + 1))
  in
  loop 0

let union_into ~into src =
  if into.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  let changed = ref false in
  for i = 0 to Bytes.length into.bits - 1 do
    let old = Bytes.get_uint8 into.bits i in
    let merged = old lor Bytes.get_uint8 src.bits i in
    if merged <> old then begin
      changed := true;
      Bytes.set_uint8 into.bits i merged
    end
  done;
  !changed

let inter a b =
  if a.n <> b.n then invalid_arg "Bitset.inter: capacity mismatch";
  let r = create a.n in
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.set_uint8 r.bits i (Bytes.get_uint8 a.bits i land Bytes.get_uint8 b.bits i)
  done;
  r

(* lowest set bit of a byte (8 for 0): the byte-at-a-time scans below
   skip zero bytes and finish each hit with one table lookup *)
let low_bit =
  let table = Array.make 256 8 in
  for b = 1 to 255 do
    let rec low i = if b land (1 lsl i) <> 0 then i else low (i + 1) in
    table.(b) <- low 0
  done;
  fun b -> table.(b)

(* The forward scans below run 48 bits at a stride: three unboxed
   16-bit reads build a 48-bit window in a native int (int64 reads
   would box), zero windows are skipped word-parallel, and a hit
   narrows to its byte before the final table lookup.  Bits >= n are
   never set, so no trailing masking is needed — the remainder after
   the last full window falls back to the byte loop. *)
let window bits b =
  Bytes.get_uint16_le bits b
  lor (Bytes.get_uint16_le bits (b + 2) lsl 16)
  lor (Bytes.get_uint16_le bits (b + 4) lsl 32)

(* lowest set bit of a nonzero 48-bit window, as index [base*8 ..] *)
let low_of_window base w =
  let rec narrow k =
    let byte = (w lsr (k lsl 3)) land 0xFF in
    if byte <> 0 then ((base + k) lsl 3) lor low_bit byte else narrow (k + 1)
  in
  narrow 0

let first_from s i =
  if i >= s.n then -1
  else begin
    let i = max i 0 in
    let bits = s.bits in
    let nb = Bytes.length bits in
    let rec bytes b =
      if b >= nb then -1
      else
        let cur = Bytes.get_uint8 bits b in
        if cur <> 0 then (b lsl 3) lor low_bit cur else bytes (b + 1)
    in
    let rec words b =
      if b + 6 > nb then bytes b
      else
        let w = window bits b in
        if w <> 0 then low_of_window b w else words (b + 6)
    in
    let b0 = i lsr 3 in
    let cur = Bytes.get_uint8 bits b0 land (0xFF lsl (i land 7)) land 0xFF in
    if cur <> 0 then (b0 lsl 3) lor low_bit cur else words (b0 + 1)
  end

let first_common_from a b i =
  if a.n <> b.n then invalid_arg "Bitset.first_common_from: capacity mismatch";
  if i >= a.n then -1
  else begin
    let i = max i 0 in
    let ab = a.bits and bb = b.bits in
    let nb = Bytes.length ab in
    let rec bytes k =
      if k >= nb then -1
      else
        let cur = Bytes.get_uint8 ab k land Bytes.get_uint8 bb k in
        if cur <> 0 then (k lsl 3) lor low_bit cur else bytes (k + 1)
    in
    let rec words k =
      if k + 6 > nb then bytes k
      else
        let w = window ab k land window bb k in
        if w <> 0 then low_of_window k w else words (k + 6)
    in
    let b0 = i lsr 3 in
    let cur =
      Bytes.get_uint8 ab b0 land Bytes.get_uint8 bb b0
      land (0xFF lsl (i land 7))
      land 0xFF
    in
    if cur <> 0 then (b0 lsl 3) lor low_bit cur else words (b0 + 1)
  end

(* first_from of (a∧c) ∨ (a∧d) ∨ (b∧d), fused into one pass: the
   split-candidate scan of matrix enumeration asks, per position, for
   the earliest index viable under any of three pairings, and scanning
   the four sets together reads each window once instead of six times
   across three two-set scans. *)
let first_split_from a b c d i =
  if a.n <> b.n || b.n <> c.n || c.n <> d.n then
    invalid_arg "Bitset.first_split_from: capacity mismatch";
  if i >= a.n then -1
  else begin
    let i = max i 0 in
    let ab = a.bits and bb = b.bits and cb = c.bits and db = d.bits in
    let nb = Bytes.length ab in
    let combine wa wb wc wd = (wa land (wc lor wd)) lor (wb land wd) in
    let rec bytes k =
      if k >= nb then -1
      else
        let cur =
          combine (Bytes.get_uint8 ab k) (Bytes.get_uint8 bb k) (Bytes.get_uint8 cb k)
            (Bytes.get_uint8 db k)
        in
        if cur <> 0 then (k lsl 3) lor low_bit cur else bytes (k + 1)
    in
    let rec words k =
      if k + 6 > nb then bytes k
      else
        let w = combine (window ab k) (window bb k) (window cb k) (window db k) in
        if w <> 0 then low_of_window k w else words (k + 6)
    in
    let b0 = i lsr 3 in
    let cur =
      combine (Bytes.get_uint8 ab b0) (Bytes.get_uint8 bb b0) (Bytes.get_uint8 cb b0)
        (Bytes.get_uint8 db b0)
      land (0xFF lsl (i land 7))
      land 0xFF
    in
    if cur <> 0 then (b0 lsl 3) lor low_bit cur else words (b0 + 1)
  end

(* Raw byte access for byte-parallel algorithms ({!Bitmatrix.transpose}).
   Byte [k] holds bits [8k .. 8k+7], low bit first. *)
let byte_length s = Bytes.length s.bits
let get_byte s k = Bytes.get_uint8 s.bits k
let set_byte s k b = Bytes.set_uint8 s.bits k b

let iter f s =
  for byte = 0 to Bytes.length s.bits - 1 do
    let b = Bytes.get_uint8 s.bits byte in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let choose s =
  let result = ref None in
  (try
     iter
       (fun i ->
         result := Some i;
         raise Exit)
       s
   with Exit -> ());
  !result

let clear s = Bytes.fill s.bits 0 (Bytes.length s.bits) '\000'

let hash s = Hashtbl.hash (Bytes.to_string s.bits)

let key s = Bytes.to_string s.bits

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Bytes.compare a.bits b.bits
