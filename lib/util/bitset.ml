type t = { bits : Bytes.t; n : int }

(* Bits are packed little-endian into bytes: bit [i] lives in byte
   [i lsr 3] at position [i land 7]. Bytes (not int arrays) keep
   copying and hashing simple and allocation-cheap. *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity s = s.n

let copy s = { bits = Bytes.copy s.bits; n = s.n }

let check s i =
  if i < 0 || i >= s.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of bounds (capacity %d)" i s.n)

let add s i =
  check s i;
  let b = Bytes.get_uint8 s.bits (i lsr 3) in
  Bytes.set_uint8 s.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let remove s i =
  check s i;
  let b = Bytes.get_uint8 s.bits (i lsr 3) in
  Bytes.set_uint8 s.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem s i =
  check s i;
  Bytes.get_uint8 s.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let is_empty s =
  let rec loop i = i >= Bytes.length s.bits || (Bytes.get s.bits i = '\000' && loop (i + 1)) in
  loop 0

let popcount_byte =
  let table = Array.init 256 (fun b ->
      let rec count b = if b = 0 then 0 else (b land 1) + count (b lsr 1) in
      count b)
  in
  fun b -> table.(b)

let cardinal s =
  let total = ref 0 in
  for i = 0 to Bytes.length s.bits - 1 do
    total := !total + popcount_byte (Bytes.get_uint8 s.bits i)
  done;
  !total

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let rec loop i =
    i >= Bytes.length a.bits
    || (Bytes.get_uint8 a.bits i land lnot (Bytes.get_uint8 b.bits i) = 0 && loop (i + 1))
  in
  loop 0

let union_into ~into src =
  if into.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  let changed = ref false in
  for i = 0 to Bytes.length into.bits - 1 do
    let old = Bytes.get_uint8 into.bits i in
    let merged = old lor Bytes.get_uint8 src.bits i in
    if merged <> old then begin
      changed := true;
      Bytes.set_uint8 into.bits i merged
    end
  done;
  !changed

let inter a b =
  if a.n <> b.n then invalid_arg "Bitset.inter: capacity mismatch";
  let r = create a.n in
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.set_uint8 r.bits i (Bytes.get_uint8 a.bits i land Bytes.get_uint8 b.bits i)
  done;
  r

let iter f s =
  for byte = 0 to Bytes.length s.bits - 1 do
    let b = Bytes.get_uint8 s.bits byte in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let choose s =
  let result = ref None in
  (try
     iter
       (fun i ->
         result := Some i;
         raise Exit)
       s
   with Exit -> ());
  !result

let clear s = Bytes.fill s.bits 0 (Bytes.length s.bits) '\000'

let hash s = Hashtbl.hash (Bytes.to_string s.bits)

let key s = Bytes.to_string s.bits

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Bytes.compare a.bits b.bits
