type which = Fuel | Deadline | States | Tuples

type spanner_error =
  | Parse of { what : string; pos : int; msg : string }
  | Limit_exceeded of { which : which; spent : int }
  | Corrupt_input of { what : string; msg : string }
  | Eval_failure of { what : string; msg : string }

exception Spanner_error of spanner_error

let error e = raise (Spanner_error e)
let parse_error ~what ~pos msg = error (Parse { what; pos; msg })
let corrupt ~what msg = error (Corrupt_input { what; msg })
let eval_failure ~what msg = error (Eval_failure { what; msg })

let which_to_string = function
  | Fuel -> "fuel"
  | Deadline -> "deadline"
  | States -> "states"
  | Tuples -> "tuples"

let which_unit = function
  | Fuel -> "steps"
  | Deadline -> "ms"
  | States -> "states"
  | Tuples -> "tuples"

let to_string = function
  | Parse { what; pos; msg } ->
      Printf.sprintf "%s parse error at offset %d: %s" what pos msg
  | Limit_exceeded { which; spent } ->
      Printf.sprintf "%s limit exceeded (spent %d %s)" (which_to_string which)
        spent (which_unit which)
  | Corrupt_input { what; msg } -> Printf.sprintf "corrupt %s input: %s" what msg
  | Eval_failure { what; msg } -> Printf.sprintf "%s evaluation failure: %s" what msg

let exit_code = function
  | Parse _ | Corrupt_input _ -> 2
  | Limit_exceeded _ -> 3
  | Eval_failure _ -> 1

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)

type t = { fuel : int; time_ms : int; max_states : int; max_tuples : int }

let none = { fuel = max_int; time_ms = max_int; max_states = max_int; max_tuples = max_int }

let is_none l = l = none

let make ?(fuel = max_int) ?(time_ms = max_int) ?(max_states = max_int)
    ?(max_tuples = max_int) () =
  if fuel < 0 || time_ms < 0 || max_states < 0 || max_tuples < 0 then
    invalid_arg "Limits.make: bounds must be non-negative";
  { fuel; time_ms; max_states; max_tuples }

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

(* Probing the wall clock per step would dominate fine-grained loops,
   so [check] only increments [steps] and compares against [probe_at];
   the slow path re-arms [probe_at] at the next multiple-of-interval
   point, clamped so the fuel boundary itself is always probed
   exactly. *)

let interval = 4096

type gauge = {
  limits : t;
  started : float;
  deadline : float; (* absolute, [infinity] when unbounded *)
  mutable steps : int;
  mutable probe_at : int;
}

let next_probe limits steps =
  let next = steps + interval in
  if limits.fuel <> max_int && next > limits.fuel then limits.fuel + 1 else next

let start limits =
  let now = if limits.time_ms = max_int then 0.0 else Unix.gettimeofday () in
  let deadline =
    if limits.time_ms = max_int then infinity
    else now +. (float_of_int limits.time_ms /. 1000.0)
  in
  { limits; started = now; deadline; steps = 0; probe_at = next_probe limits 0 }

let unlimited () = start none

let spec g = g.limits
let steps g = g.steps

let trip which spent = error (Limit_exceeded { which; spent })

let probe g =
  if g.steps > g.limits.fuel then trip Fuel g.steps;
  if g.deadline < infinity then begin
    let now = Unix.gettimeofday () in
    if now > g.deadline then
      trip Deadline (int_of_float ((now -. g.started) *. 1000.0))
  end;
  g.probe_at <- next_probe g.limits g.steps

let[@inline] check g =
  g.steps <- g.steps + 1;
  if g.steps >= g.probe_at then probe g

let[@inline] charge g n =
  g.steps <- g.steps + n;
  if g.steps >= g.probe_at then probe g

let check_states g n = if n > g.limits.max_states then trip States n
let check_tuples g n = if n > g.limits.max_tuples then trip Tuples n

let[@inline] tick_tuple g n =
  check g;
  if n > g.limits.max_tuples then trip Tuples n
