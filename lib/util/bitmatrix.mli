(** Square boolean matrices.

    The SLP algorithms of Section 4.2 of the paper reduce NFA acceptance
    over a compressed string to boolean matrix products computed
    bottom-up along the SLP DAG: for a node [A = BC],
    [M_A = M_B * M_C].  Rows are {!Bitset}s so a product row is a
    word-parallel union of rows. *)

type t

(** [create n] is the [n×n] all-zero matrix. *)
val create : int -> t

(** [identity n] is the [n×n] identity matrix. *)
val identity : int -> t

(** [dim m] is the dimension [n]. *)
val dim : t -> int

(** [get m i j] is entry [(i, j)]. *)
val get : t -> int -> int -> bool

(** [set m i j] sets entry [(i, j)] to [true]. *)
val set : t -> int -> int -> unit

(** [row m i] is the [i]-th row (shared, do not mutate). *)
val row : t -> int -> Bitset.t

(** [mul a b] is the boolean matrix product [a * b]:
    entry [(i,j)] is true iff some [k] has [a(i,k) && b(k,j)]. *)
val mul : t -> t -> t

(** [mul_add ~into a b] accumulates the product into an existing
    matrix: [into := into ∪ a·b].  The batch-product primitive of the
    SLP sweep — a mixed matrix [Mixed_A·Full_B ∪ Pure_A·Mixed_B] is
    three [mul_add]s into one accumulator, with no temporary union
    matrices.  [into] must be a different matrix from [a] and [b]. *)
val mul_add : into:t -> t -> t -> unit

(** [union a b] is the entrywise disjunction. *)
val union : t -> t -> t

(** [transitive_closure m] is the reflexive-transitive closure
    [I ∪ m ∪ m² ∪ …]. *)
val transitive_closure : t -> t

(** [apply_row m s] is the set [{ j | ∃ i ∈ s, m(i,j) }]:
    the image of the state set [s] under one matrix step. *)
val apply_row : t -> Bitset.t -> Bitset.t

(** [transpose m] is the transposed matrix: [get (transpose m) i j =
    get m j i].  A row of the transpose is a {e column} of [m], so a
    consumer that needs columns as bitsets (the native SLP enumerator
    intersects a left child's row with a right child's column per
    descent step) pays one transpose at preprocessing time instead of
    [dim m] probes per access.  Implemented as 8×8 bit-block transposes
    — O(n²/64) word work, cheaper than re-deriving the transpose as a
    reversed matrix product. *)
val transpose : t -> t

(** [equal a b] is entrywise equality. *)
val equal : t -> t -> bool

(** [copy m] is an independent copy. *)
val copy : t -> t
