(** Thread-safe wrapper around {!Lru}: one mutex per cache.

    The serve registry shares its caches (compiled plans, decompressed
    document texts) between session threads and worker domains; this
    wrapper makes each {!Lru} operation atomic.  Counters have the
    same meaning as in {!Lru.stats}. *)

type ('k, 'v) t

(** [create ~capacity ()] is an empty bounded cache ({!Lru.create}).
    @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> ('k, 'v) t

(** [find t k] is the cached value, refreshing recency; one hit or one
    miss is counted, atomically. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] binds [k] atomically, evicting the least recently used
    entry if full. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t k compute] is the cached value for [k], or
    [compute ()] added under [k].  The computation runs {e outside}
    the lock: concurrent misses on the same key may compute twice
    (last add wins) — by design, so an expensive compute cannot block
    the cache.  [compute]'s exceptions propagate; nothing is added. *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val remove : ('k, 'v) t -> 'k -> unit
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val stats : ('k, 'v) t -> Lru.stats
val reset_stats : ('k, 'v) t -> unit
val clear : ('k, 'v) t -> unit
