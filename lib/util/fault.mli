(** Deterministic, seeded fault injection for chaos testing.

    The serve stack threads named {e sites} through its hot paths —
    frame reads and writes, the session request loop, worker-domain
    bodies, the accept loop.  Production runs leave the subsystem
    disarmed: probing a site is then one field load and a never-taken
    branch — no allocation, no lock, no syscall (E19 measures warm
    request latency unchanged).  A chaos run arms it, programmatically
    ({!configure}) or through the environment at process start:

    {v SPANNER_FAULTS="<seed>:<site>=<behavior>[@<prob>],..." v}

    e.g. [SPANNER_FAULTS="42:serve.read=eintr@0.2,scheduler.worker=exn@0.05"].

    Each armed site draws from its own {!Xoshiro} stream seeded from
    the global seed and the site name, so the decision sequence {e at
    a site} is a pure function of the spec: rerunning a seed replays
    the same faults in the same per-site order, independent of thread
    interleaving.  A malformed [SPANNER_FAULTS] prints one warning and
    leaves the subsystem disarmed (never aborts the process). *)

(** What an armed site does when its probability fires. *)
type behavior =
  | Eintr  (** simulated [EINTR]: raises [Unix_error (EINTR, _, _)];
               correct callers retry the call *)
  | Short  (** truncate the I/O transfer to one byte; correct callers
               loop until done *)
  | Exn  (** raise {!Injected} — an escaped-exception fault *)
  | Oom  (** raise [Unix_error (ENOMEM, _, _)] — an allocation-style
             environment failure *)
  | Delay of int  (** sleep this many milliseconds, then proceed *)

type rule = { site : string; prob : float; behavior : behavior }

(** Raised by a site armed with {!Exn}; carries the site name. *)
exception Injected of string

(** [parse_spec s] parses the [SPANNER_FAULTS] syntax
    ["seed:site=behavior[@prob],..."] — behaviors [eintr], [short],
    [exn], [oom], [delayMS]; probabilities in (0, 1], default 1. *)
val parse_spec : string -> (int * rule list, string) result

(** [configure ~seed rules] arms the named sites (existing and
    future) and zeroes every injection counter. *)
val configure : seed:int -> rule list -> unit

(** [disable ()] disarms every site; probes return to the no-op path.
    Injection counters are kept until the next {!configure}. *)
val disable : unit -> unit

val armed : unit -> bool

(** A named injection point.  Creation is idempotent: the same name
    always yields the same site. *)
type site

val site : string -> site
val site_name : site -> string

(** Advice to an I/O call site. *)
type advice =
  | Full  (** perform the transfer as requested *)
  | Partial  (** cap the transfer at one byte (a short read/write) *)

(** [io s] probes site [s] before an I/O syscall.  Disarmed: [Full].
    Armed and the roll fires: [Partial] for {!Short}, sleeps for
    {!Delay}, raises for {!Eintr}/{!Oom}/{!Exn}. *)
val io : site -> advice

(** [point s] probes a non-I/O site ({!Short} is a no-op there). *)
val point : site -> unit

(** [injected s] is how many times [s] actually fired since the last
    {!configure}. *)
val injected : site -> int

val injected_total : unit -> int

(** [stats ()] lists every registered site with its injection count,
    sorted by name. *)
val stats : unit -> (string * int) list
