(* Hash table over an intrusive doubly-linked recency list: the list
   head is the most recently used entry, the tail the eviction
   candidate.  Links are options so no sentinel values of type 'k/'v
   are needed. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) entry option; (* towards the head (more recent) *)
  mutable next : ('k, 'v) entry option; (* towards the tail (less recent) *)
}

type stats = { hits : int; misses : int; evictions : int }

(* Defined after [stats] so the unqualified counter fields below refer
   to this record. *)
type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable head : ('k, 'v) entry option;
  mutable tail : ('k, 'v) entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t e =
  (match e.prev with None -> t.head <- e.next | Some p -> p.next <- e.next);
  (match e.next with None -> t.tail <- e.prev | Some n -> n.prev <- e.prev);
  e.prev <- None;
  e.next <- None

let push_head t e =
  e.next <- t.head;
  (match t.head with None -> t.tail <- Some e | Some h -> h.prev <- Some e);
  t.head <- Some e

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_head t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table e.key;
      t.evictions <- t.evictions + 1

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some e ->
      e.value <- v;
      unlink t e;
      push_head t e
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_tail t;
      let e = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.table k e;
      push_head t e)

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats t : stats = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
