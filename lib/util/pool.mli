(** A small work pool over OCaml 5 domains (stdlib only).

    Built for the document-database workload: one spanner, many
    documents, every document independent.  Work items are claimed
    from a shared atomic counter, so long documents do not stall the
    short ones behind a static partition, and each result is written
    to its input's slot — output order is deterministic regardless of
    scheduling.

    Worker functions must be safe to run concurrently: they may only
    share immutable data (compiled spanner tables, input strings) and
    must not touch mutable global state. *)

(** [default_jobs ()] is the recommended parallelism for this machine
    ({!Domain.recommended_domain_count}), at least 1.  The
    [SPANNER_JOBS] environment variable (a positive integer) overrides
    the machine default; an ill-formed or non-positive value is
    rejected with a one-time warning on stderr and the machine default
    is used. *)
val default_jobs : unit -> int

(** [parse_jobs s] validates a job-count string as [SPANNER_JOBS]
    does: trimmed, an integer, at least 1.  [Error] carries the reason
    the value was rejected. *)
val parse_jobs : string -> (int, string) result

(** [env_jobs ()] is the [SPANNER_JOBS] override if one is set and
    well-formed — lets callers report where the job count came from.
    The first ill-formed value observed warns on stderr (once per
    process) and is treated as unset. *)
val env_jobs : unit -> int option

(** [effective_jobs ?jobs n] is the domain count {!map} actually uses
    for [n] work items: [jobs] (or {!default_jobs}) clamped to [n],
    at least 1. *)
val effective_jobs : ?jobs:int -> int -> int

(** [map ?jobs f a] is [Array.map f a], evaluated by [jobs] domains
    (default {!default_jobs}; clamped to [Array.length a]; [jobs <= 1]
    runs sequentially in the calling domain).  The result array is in
    input order.  If any [f x] raises, one such exception is re-raised
    in the calling domain after all workers have stopped. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi ?jobs f a] is {!map} with the element index. *)
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [mapi_result ?jobs f a] is {!mapi} with partial-failure batch
    semantics: an [f i x] that raises fills slot [i] with [Error]
    instead of aborting the batch, so every healthy item still
    completes and the result array is always fully populated, in input
    order.  The batch itself never raises from worker code. *)
val mapi_result : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> ('b, exn) result array

(** [map_result ?jobs f a] is {!mapi_result} without the index. *)
val map_result : ?jobs:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
