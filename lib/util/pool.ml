let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Dynamic work claiming: workers race on [next] for the lowest
   unclaimed index.  Each slot of [results] is written by exactly one
   domain, and [Domain.join] publishes those writes to the caller, so
   no per-slot synchronisation is needed. *)
let mapi ?jobs f a =
  let n = Array.length a in
  let jobs = min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n in
  if jobs <= 1 then Array.mapi f a
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f i a.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              (* keep the first failure; losers keep their exception
                 silent — the batch is aborted either way *)
              ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
        Array.map
          (function
            | Some y -> y
            | None -> assert false (* every index below [n] was claimed *))
          results
  end

let map ?jobs f a = mapi ?jobs (fun _ x -> f x) a

(* Partial-failure variant: one poisoned item degrades to its [Error]
   slot instead of tearing down the batch, so [mapi_result] never
   raises from worker code and always fills every slot. *)
let mapi_result ?jobs f a =
  let wrap i x = match f i x with y -> Ok y | exception e -> Error e in
  mapi ?jobs wrap a

let map_result ?jobs f a = mapi_result ?jobs (fun _ x -> f x) a
