(* SPANNER_JOBS overrides the machine default so operators can pin the
   domain count without threading a flag through every entry point.  A
   batch must not die on a stray env var, so an ill-formed value still
   falls back to the machine default — but loudly: silently ignoring
   "SPANNER_JOBS=all" or "=0" makes an operator believe the pin took
   effect when it did not. *)
let parse_jobs s =
  let s = String.trim s in
  if s = "" then Error "empty value"
  else
    match int_of_string_opt s with
    | None -> Error "not an integer"
    | Some n when n < 1 -> Error (Printf.sprintf "%d is not a positive job count" n)
    | Some n -> Ok n

(* Warn once per process: the pool is consulted per batch, and a
   repeated warning for the same stray variable is noise. *)
let warned = ref false

let env_jobs () =
  match Sys.getenv_opt "SPANNER_JOBS" with
  | None -> None
  | Some s -> (
      match parse_jobs s with
      | Ok n -> Some n
      | Error why ->
          if not !warned then begin
            warned := true;
            Printf.eprintf
              "warning: ignoring SPANNER_JOBS=%S (%s); using the machine default\n%!" s why
          end;
          None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let effective_jobs ?jobs n =
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  max 1 (min j n)

(* Dynamic work claiming: workers race on [next] for the lowest
   unclaimed index.  Each slot of [results] is written by exactly one
   domain, and [Domain.join] publishes those writes to the caller, so
   no per-slot synchronisation is needed. *)
let mapi ?jobs f a =
  let n = Array.length a in
  let jobs = min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n in
  if jobs <= 1 then Array.mapi f a
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f i a.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              (* keep the first failure; losers keep their exception
                 silent — the batch is aborted either way *)
              ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
        Array.map
          (function
            | Some y -> y
            | None -> assert false (* every index below [n] was claimed *))
          results
  end

let map ?jobs f a = mapi ?jobs (fun _ x -> f x) a

(* Partial-failure variant: one poisoned item degrades to its [Error]
   slot instead of tearing down the batch, so [mapi_result] never
   raises from worker code and always fills every slot. *)
let mapi_result ?jobs f a =
  let wrap i x = match f i x with y -> Ok y | exception e -> Error e in
  mapi ?jobs wrap a

let map_result ?jobs f a = mapi_result ?jobs (fun _ x -> f x) a
