module Limits = Spanner_util.Limits
module Slp = Spanner_slp.Slp

let magic = "SLPAR1\n\x00"
let version = 1
let header_bytes = 64
let header_words = 8
let byte_table_words = 256

let corrupt msg = Limits.corrupt ~what:"SLPAR1" msg
let corruptf fmt = Printf.ksprintf corrupt fmt

(* FNV-1a with the offset basis folded into 62 bits, so checksums are
   non-negative OCaml ints and round-trip through a stored word. *)
let fnv_prime = 0x100000001b3
let fnv_seed = 0x3bf29ce484222325

let fnv_update h byte = (h lxor byte) * fnv_prime land max_int

type chars = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  ints : Slp.int_array;  (* the whole file as 8-byte words *)
  chars : chars;  (* the same bytes, for the name blob and checksums *)
  size : int;  (* file bytes *)
  backing : string option;  (* absolute path of the mapping, if any *)
  node_count : int;
  name_blob_off : int;  (* byte offset of the name blob *)
  name_blob_len : int;
  frozen : Slp.frozen;
  docs : (string * Slp.id) array;  (* file order *)
  table : (string, Slp.id) Hashtbl.t;
}

let pad8 n = (n + 7) land lnot 7

(* Section offsets in words, from the node/doc/blob counts. *)
let geometry ~n ~d ~b =
  let w_left = header_words in
  let w_right = w_left + n in
  let w_len = w_right + n in
  let w_bytetab = w_len + n in
  let w_roots = w_bytetab + byte_table_words in
  let w_noff = w_roots + d in
  let w_nlen = w_noff + d in
  let blob_off = 8 * (w_nlen + d) in
  let total = blob_off + pad8 b in
  (w_left, w_right, w_len, w_bytetab, w_roots, w_noff, w_nlen, blob_off, total)

(* ------------------------------------------------------------------ *)
(* Writing *)

let pack_bytes store docs =
  (* topological renumbering of the nodes reachable from the roots:
     children first, so ascending file ids are a valid sweep order *)
  let file_id = Hashtbl.create 256 in
  let order = ref [] in
  let count = ref 0 in
  List.iter
    (fun (_, root) ->
      Slp.iter_reachable store root (fun id ->
          if not (Hashtbl.mem file_id id) then begin
            Hashtbl.add file_id id !count;
            incr count;
            order := id :: !order
          end))
    docs;
  let nodes = Array.of_list (List.rev !order) in
  let n = !count and d = List.length docs in
  let blob = Buffer.create 256 in
  let name_offs = Array.make d 0 and name_lens = Array.make d 0 in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Arena.pack_bytes: duplicate document name %S" name);
      Hashtbl.add seen name ();
      name_offs.(i) <- Buffer.length blob;
      name_lens.(i) <- String.length name;
      Buffer.add_string blob name)
    docs;
  let b = Buffer.length blob in
  let w_left, w_right, w_len, w_bytetab, w_roots, w_noff, w_nlen, blob_off, total =
    geometry ~n ~d ~b
  in
  let out = Bytes.make total '\000' in
  let set_word w v = Bytes.set_int64_le out (8 * w) (Int64.of_int v) in
  Bytes.blit_string magic 0 out 0 8;
  set_word 1 version;
  set_word 2 n;
  set_word 3 d;
  set_word 4 b;
  set_word 6 total;
  for i = 0 to byte_table_words - 1 do
    set_word (w_bytetab + i) (-1)
  done;
  Array.iteri
    (fun f id ->
      match Slp.node store id with
      | Slp.Leaf c ->
          set_word (w_left + f) (-(1 + Char.code c));
          set_word (w_right + f) 0;
          set_word (w_len + f) 1;
          set_word (w_bytetab + Char.code c) f
      | Slp.Pair (l, r) ->
          set_word (w_left + f) (Hashtbl.find file_id l);
          set_word (w_right + f) (Hashtbl.find file_id r);
          set_word (w_len + f) (Slp.len store id))
    nodes;
  List.iteri
    (fun i (_, root) -> set_word (w_roots + i) (Hashtbl.find file_id root))
    docs;
  Array.iteri (fun i off -> set_word (w_noff + i) off) name_offs;
  Array.iteri (fun i len -> set_word (w_nlen + i) len) name_lens;
  Bytes.blit_string (Buffer.contents blob) 0 out blob_off b;
  let checksum lo hi =
    let h = ref fnv_seed in
    for i = lo to hi - 1 do
      h := fnv_update !h (Char.code (Bytes.unsafe_get out i))
    done;
    !h
  in
  set_word 5 (checksum header_bytes total);
  set_word 7 (checksum 0 (8 * 7));
  Bytes.unsafe_to_string out

let write_file store docs path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (pack_bytes store docs))

(* ------------------------------------------------------------------ *)
(* Opening *)

let word (ints : Slp.int_array) w = Bigarray.Array1.get ints w

(* [open_arrays] is the shared validation core: O(1) header and
   geometry checks plus the O(d) document table — never O(n). *)
let open_arrays ~backing (chars : chars) (ints : Slp.int_array) size =
  if size < header_bytes then corrupt "truncated header";
  if size land 7 <> 0 then corrupt "file size not a multiple of 8";
  for i = 0 to String.length magic - 1 do
    if Bigarray.Array1.get chars i <> magic.[i] then
      corrupt "bad magic (not an SLPAR1 arena)"
  done;
  let h = ref fnv_seed in
  for i = 0 to (8 * 7) - 1 do
    h := fnv_update !h (Char.code (Bigarray.Array1.get chars i))
  done;
  if word ints 7 <> !h then corrupt "header checksum mismatch";
  if word ints 1 <> version then corruptf "unsupported version %d" (word ints 1);
  let n = word ints 2 and d = word ints 3 and b = word ints 4 in
  (* bound each count by what could possibly fit before multiplying,
     so hostile counts cannot overflow the geometry arithmetic *)
  if n < 0 || n > size / 8 then corruptf "node count %d out of range" n;
  if d < 0 || d > size / 8 then corruptf "document count %d out of range" d;
  if b < 0 || b > size then corruptf "name blob size %d out of range" b;
  let _, _, _, _, w_roots, w_noff, w_nlen, blob_off, total = geometry ~n ~d ~b in
  if total <> size || word ints 6 <> size then
    corruptf "geometry mismatch: %d nodes, %d documents and %d name bytes do not fill %d file bytes"
      n d b size;
  let w_left = header_words in
  let sub off len = Bigarray.Array1.sub ints off len in
  let frozen =
    Slp.frozen_of_columns ~count:n ~left:(sub w_left n) ~right:(sub (w_left + n) n)
      ~lens:(sub (w_left + (2 * n)) n)
  in
  let table = Hashtbl.create (max 16 d) in
  let docs =
    Array.init d (fun i ->
        let root = word ints (w_roots + i) in
        if root < 0 || root >= n then corruptf "document %d root out of range" i;
        let off = word ints (w_noff + i) and len = word ints (w_nlen + i) in
        if off < 0 || len < 0 || off + len > b then
          corruptf "document %d name outside the name blob" i;
        let name = String.init len (fun j -> Bigarray.Array1.get chars (blob_off + off + j)) in
        if Hashtbl.mem table name then corruptf "duplicate document name %S" name;
        Hashtbl.add table name root;
        (name, root))
  in
  {
    ints;
    chars;
    size;
    backing;
    node_count = n;
    name_blob_off = blob_off;
    name_blob_len = b;
    frozen;
    docs;
    table;
  }

let openfile p =
  let fd =
    try Unix.openfile p [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      corruptf "cannot open %s: %s" p (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_bytes then corrupt "truncated header";
      if size land 7 <> 0 then corrupt "file size not a multiple of 8";
      (* two views of one mapping: words for the columns, bytes for
         the name blob and checksums; the kernel shares the pages *)
      let ints =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int Bigarray.c_layout false [| size / 8 |])
      in
      let chars =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |])
      in
      let backing = Some (try Unix.realpath p with Unix.Unix_error _ -> p) in
      open_arrays ~backing chars ints size)

let of_string s =
  let size = String.length s in
  if size < header_bytes then corrupt "truncated header";
  if size land 7 <> 0 then corrupt "file size not a multiple of 8";
  let chars = Bigarray.Array1.create Bigarray.char Bigarray.c_layout size in
  String.iteri (fun i c -> Bigarray.Array1.set chars i c) s;
  let ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (size / 8) in
  let bs = Bytes.unsafe_of_string s in
  for w = 0 to (size / 8) - 1 do
    Bigarray.Array1.set ints w (Int64.to_int (Bytes.get_int64_le bs (8 * w)))
  done;
  open_arrays ~backing:None chars ints size

(* ------------------------------------------------------------------ *)
(* Deferred full validation *)

let validate t =
  let h = ref fnv_seed in
  for i = header_bytes to t.size - 1 do
    h := fnv_update !h (Char.code (Bigarray.Array1.unsafe_get t.chars i))
  done;
  if word t.ints 5 <> !h then corrupt "body checksum mismatch";
  let n = t.node_count in
  let w_left = header_words in
  let left i = word t.ints (w_left + i)
  and right i = word t.ints (w_left + n + i)
  and len i = word t.ints (w_left + (2 * n) + i) in
  for i = 0 to n - 1 do
    let l = left i in
    if l < 0 then begin
      if -l - 1 > 255 then corruptf "node %d: leaf byte out of range" i;
      if len i <> 1 then corruptf "node %d: leaf with length %d" i (len i)
    end
    else begin
      let r = right i in
      if l >= i || r < 0 || r >= i then
        corruptf "node %d: pair child out of topological order" i;
      if len i <> len l + len r then corruptf "node %d: inconsistent derived length" i
    end
  done;
  let w_bytetab = w_left + (3 * n) in
  for c = 0 to 255 do
    let e = word t.ints (w_bytetab + c) in
    if e <> -1 then begin
      if e < 0 || e >= n then corruptf "byte table entry %d out of range" c;
      if left e <> -(1 + c) then corruptf "byte table entry %d points at the wrong node" c
    end
  done

(* ------------------------------------------------------------------ *)
(* Access *)

let frozen_view t = t.frozen
let node_count t = t.node_count
let docs t = Array.copy t.docs
let find t name = Hashtbl.find_opt t.table name

let leaf t c =
  let e = word t.ints (header_words + (3 * t.node_count) + Char.code c) in
  if e < 0 then None else Some e

let total_len t =
  Array.fold_left (fun acc (_, root) -> acc + Slp.frozen_len t.frozen root) 0 t.docs

let path t = t.backing
let mapped_bytes t = t.size

(* Sum of the resident set of this file's mappings, from
   /proc/self/smaps.  The arena is mapped twice (word and byte views
   of the same pages), so take the larger VMA's Rss rather than
   double-counting shared physical pages. *)
let resident_bytes t =
  match t.backing with
  | None -> t.size
  | Some p -> (
      match open_in "/proc/self/smaps" with
      | exception Sys_error _ -> 0
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let best = ref 0 in
              let ours = ref false in
              (try
                 while true do
                   let line = input_line ic in
                   let ln = String.length line and pn = String.length p in
                   if ln > pn && String.sub line (ln - pn) pn = p
                      && String.contains line '-'
                   then ours := true
                   else if String.length line >= 4 && String.sub line 0 4 = "Rss:" then begin
                     if !ours then begin
                       let kb =
                         try Scanf.sscanf (String.sub line 4 (ln - 4)) " %d" Fun.id
                         with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0
                       in
                       best := max !best (kb * 1024)
                     end;
                     ours := false
                   end
                 done
               with End_of_file -> ());
              !best))
