module Limits = Spanner_util.Limits

let magic = "SLPMF1"

let corrupt msg = Limits.corrupt ~what:"SLPMF1" msg
let corruptf fmt = Printf.ksprintf corrupt fmt

let looks_like s =
  String.length s >= String.length magic && String.sub s 0 (String.length magic) = magic

let to_string shards =
  let buf = Buffer.create 128 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      if p = "" || String.contains p '\n' then
        invalid_arg "Manifest.to_string: bad shard path";
      Buffer.add_string buf "shard ";
      Buffer.add_string buf p;
      Buffer.add_char buf '\n')
    shards;
  Buffer.contents buf

let of_string s =
  match String.split_on_char '\n' s with
  | [] -> corrupt "empty manifest"
  | header :: rest ->
      if header <> magic then corrupt "bad magic (not an SLPMF1 manifest)";
      let seen = Hashtbl.create 8 in
      let shards =
        List.filter_map
          (fun line ->
            if line = "" then None
            else if String.length line > 6 && String.sub line 0 6 = "shard " then begin
              let p = String.sub line 6 (String.length line - 6) in
              if Hashtbl.mem seen p then corruptf "duplicate shard %S" p;
              Hashtbl.add seen p ();
              Some p
            end
            else corruptf "unknown manifest line %S" line)
          rest
      in
      if shards = [] then corrupt "manifest lists no shards";
      shards

let write_file shards path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string shards))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
