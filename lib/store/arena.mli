(** SLPAR1: frozen SLP stores as flat, mmap-friendly arenas.

    An arena lays a frozen document store out as structs-of-int-arrays
    in one contiguous buffer — node left/right/len columns (the leaf
    tag folded into the sign of the left column), a 256-entry
    byte→leaf table, document root/name tables — using {e offsets
    instead of pointers}, so the bytes on disk are already the
    in-memory representation.  {!openfile} mmaps the file and verifies
    a checksummed fixed-size header; no node is parsed, copied, or
    even touched, so load cost is O(header + document table),
    independent of corpus bytes and SLP size, and N processes mapping
    the same arena share one physical copy through the page cache.

    {!frozen_view} is the arena's {!Spanner_slp.Slp.frozen} — a flat
    view ({!Spanner_slp.Slp.frozen_of_columns}) satisfying the whole
    frozen-store access surface ([frozen_node]/[frozen_len]/the
    [Slp_spanner] sweep) directly over the mapping, zero
    deserialization.

    Layout (all integers host little-endian 64-bit words holding
    OCaml [int] values; every section 8-byte aligned):

    {v
      word 0       magic "SLPAR1\n\x00"
      word 1       version (1)
      word 2       node count n
      word 3       document count d
      word 4       name-blob bytes b
      word 5       body checksum  (FNV-1a folded to 62 bits, bytes 64..)
      word 6       total file bytes
      word 7       header checksum (bytes 0..55)
      words 8..    left column   (n words; leaf byte c as -(1+c))
                   right column  (n words)
                   len column    (n words)
                   byte→leaf     (256 words; leaf id or -1)
                   doc roots     (d words)
                   doc name offsets, doc name lengths (d words each)
                   name blob     (b bytes, zero-padded to 8)
    v}

    Trust model: the header checksum and section geometry are verified
    at open (O(1)); the body checksum is written by {!pack_bytes} but
    only verified by an explicit {!validate} (keeping open O(1)).
    Until then the columns are untrusted — the flat frozen view
    validates each node it touches in O(1) and raises a typed
    [Corrupt_input], so a hostile arena degrades to an error, never a
    crash (fuzz target ["arena"]). *)

module Slp := Spanner_slp.Slp

type t

(** {1 Writing} *)

(** [pack_bytes store docs] serialises the nodes reachable from the
    designated roots — renumbered topologically, children first — into
    arena bytes, with both checksums filled in.
    @raise Invalid_argument on duplicate document names. *)
val pack_bytes : Slp.store -> (string * Slp.id) list -> string

(** [write_file store docs path] is {!pack_bytes} written to [path]. *)
val write_file : Slp.store -> (string * Slp.id) list -> string -> unit

(** {1 Opening} *)

(** [openfile path] maps the arena at [path] read-only and verifies
    magic, geometry and header checksum — O(1) in the number of
    nodes; the document table (O(d)) is the only part read eagerly.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on a
    truncated, misaligned, or checksum-failing header, or a malformed
    document table. *)
val openfile : string -> t

(** [of_string s] opens arena bytes held in memory (tests, fuzzing):
    same validation as {!openfile}, no file backing. *)
val of_string : string -> t

(** [validate t] verifies everything {!openfile} deferred: the body
    checksum and the full structural invariants (leaf bytes, child
    ordering, exact derived lengths, byte-table consistency).  O(file
    size).  {!pack_bytes} output always validates.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]). *)
val validate : t -> unit

(** {1 Access} *)

(** [frozen_view t] is the zero-copy frozen store over the mapping. *)
val frozen_view : t -> Slp.frozen

val node_count : t -> int

(** [docs t] is the document table in file order. *)
val docs : t -> (string * Slp.id) array

val find : t -> string -> Slp.id option

(** [leaf t c] is the leaf node for byte [c], from the byte→leaf
    table, if the arena contains one. *)
val leaf : t -> char -> Slp.id option

(** [total_len t] is the summed derived length of all documents. *)
val total_len : t -> int

(** [path t] is the backing file, if any. *)
val path : t -> string option

(** [mapped_bytes t] is the size of the mapping (the file size). *)
val mapped_bytes : t -> int

(** [resident_bytes t] estimates how much of the mapping is physically
    resident, from [/proc/self/smaps] (Linux; 0 where unavailable).
    In-memory arenas report {!mapped_bytes}. *)
val resident_bytes : t -> int
