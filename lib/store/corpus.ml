module Limits = Spanner_util.Limits
module Slp = Spanner_slp.Slp
module Doc_db = Spanner_slp.Doc_db

let corrupt msg = Limits.corrupt ~what:"SLPMF1" msg
let corruptf fmt = Printf.ksprintf corrupt fmt

type t = {
  shards : Arena.t array;
  docs : (string * int * Slp.id) array;
  table : (string, int * Slp.id) Hashtbl.t;
}

let of_arenas arenas =
  let table = Hashtbl.create 64 in
  let docs = ref [] in
  Array.iteri
    (fun si a ->
      Array.iter
        (fun (name, root) ->
          if Hashtbl.mem table name then
            corruptf "overlapping shards: document %S appears in more than one shard" name;
          Hashtbl.add table name (si, root);
          docs := (name, si, root) :: !docs)
        (Arena.docs a))
    arenas;
  { shards = arenas; docs = Array.of_list (List.rev !docs); table }

let sniff path =
  let ic =
    try open_in_bin path
    with Sys_error m -> corrupt ("cannot open " ^ m)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = min 8 (in_channel_length ic) in
      really_input_string ic n)

let open_path path =
  let head = sniff path in
  if Manifest.looks_like head then begin
    let dir = Filename.dirname path in
    let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
    let shard_paths = Manifest.read_file path in
    of_arenas (Array.of_list (List.map (fun p -> Arena.openfile (resolve p)) shard_paths))
  end
  else of_arenas [| Arena.openfile path |]

(* ------------------------------------------------------------------ *)
(* Packing *)

let pack db ~shards path =
  if shards < 1 then invalid_arg "Corpus.pack: need at least one shard";
  let store = Doc_db.store db in
  let docs =
    List.map (fun name -> (name, Doc_db.find db name)) (Doc_db.names db)
  in
  if shards = 1 then begin
    Arena.write_file store docs path;
    [ path ]
  end
  else begin
    (* round-robin assignment: document i goes to shard (i mod N) *)
    let buckets = Array.make shards [] in
    List.iteri (fun i doc -> buckets.(i mod shards) <- doc :: buckets.(i mod shards)) docs;
    let shard_files =
      Array.to_list
        (Array.mapi
           (fun si bucket ->
             let f = Printf.sprintf "%s.%d.slpar" path si in
             Arena.write_file store (List.rev bucket) f;
             f)
           buckets)
    in
    Manifest.write_file (List.map Filename.basename shard_files) path;
    shard_files @ [ path ]
  end

(* ------------------------------------------------------------------ *)
(* Access *)

let shards t = t.shards
let shard_count t = Array.length t.shards
let docs t = Array.copy t.docs
let find t name = Hashtbl.find_opt t.table name
let doc_count t = Array.length t.docs

let sum f t = Array.fold_left (fun acc a -> acc + f a) 0 t.shards

let node_count = sum Arena.node_count
let total_len = sum Arena.total_len
let mapped_bytes = sum Arena.mapped_bytes
let resident_bytes = sum Arena.resident_bytes
