(** SLPMF1: the shard manifest of a packed corpus.

    A corpus split across N arena files is described by a small text
    manifest — one [shard] line per arena, in shard order:

    {v
      SLPMF1
      shard corpus.0.slpar
      shard corpus.1.slpar
    v}

    Shard paths are resolved relative to the manifest's own directory
    when read from a file ({!Corpus.open_path} does the resolution);
    the parser itself only validates the text.  The parser treats its
    input as hostile (fuzz target ["arena"]): it raises a typed
    [Corrupt_input] on a bad header, an unknown directive, an empty or
    duplicate shard path, or a manifest with no shards at all. *)

(** [to_string shards] renders a manifest for [shards], in order. *)
val to_string : string list -> string

(** [of_string s] parses a manifest back into its shard paths.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]). *)
val of_string : string -> string list

val write_file : string list -> string -> unit

val read_file : string -> string list

(** [looks_like s] is true when [s] starts with the manifest magic
    (used by {!Corpus.open_path} to sniff the file kind). *)
val looks_like : string -> bool
