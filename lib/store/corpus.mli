(** A sharded packed corpus: one or more {!Arena}s behind a single
    document namespace.

    {!pack} splits a document database round-robin into N arena files
    plus an {!Manifest}; {!open_path} sniffs a path (arena magic vs
    manifest magic) and maps whatever it finds.  Document names must
    be unique {e across} shards — overlapping shard manifests are
    rejected with a typed [Corrupt_input] — so a document resolves to
    exactly one (shard, root) pair and shard-level work (the
    per-shard sweep of [Plan]'s batch path, per-shard partial
    failure) routes by that pair. *)

module Slp := Spanner_slp.Slp
module Doc_db := Spanner_slp.Doc_db

type t

(** {1 Packing} *)

(** [pack db ~shards path] packs [db] into [shards] arena files.
    With one shard, [path] is the arena itself; with N > 1, documents
    are assigned round-robin (document [i] to shard [i mod N], so
    every shard carries a similar share), shard [i] is written next
    to the manifest as [path ^ ".i.slpar"], and [path] is the
    manifest.  Returns the written file paths, manifest last.
    Shards with no documents are still written (empty arenas).
    @raise Invalid_argument when [shards < 1]. *)
val pack : Doc_db.t -> shards:int -> string -> string list

(** {1 Opening} *)

(** [open_path path] maps the corpus at [path] — a single [SLPAR1]
    arena or an [SLPMF1] manifest whose shard paths resolve relative
    to the manifest's directory.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on bad
    magic, a hostile arena/manifest, or document names overlapping
    between shards. *)
val open_path : string -> t

(** [of_arenas arenas] assembles an already-opened shard list.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on
    overlapping document names. *)
val of_arenas : Arena.t array -> t

(** {1 Access} *)

val shards : t -> Arena.t array

val shard_count : t -> int

(** [docs t] is every document as [(name, shard, root)], shards in
    manifest order, documents in file order within a shard. *)
val docs : t -> (string * int * Slp.id) array

(** [find t name] is the owning shard and root of a document. *)
val find : t -> string -> (int * Slp.id) option

val doc_count : t -> int

(** [node_count t] sums nodes over shards (shared structure between
    shards is counted per shard — shards are self-contained). *)
val node_count : t -> int

(** [total_len t] sums document lengths over shards. *)
val total_len : t -> int

val mapped_bytes : t -> int

val resident_bytes : t -> int
