(* Admission control: a bounded job queue in front of a fixed crew of
   worker domains.

   The CLI's Pool spawns domains per batch; a server cannot afford
   that (domain spawn is ~ms and unbounded concurrent spawns defeat
   admission control), so the scheduler spawns its workers once and
   feeds them through one mutex-guarded queue.  [submit] is the
   admission decision: when the queue already holds [capacity] jobs
   the request is *shed* — the caller gets [None] immediately and
   maps it onto the over-budget wire status, so an overloaded server
   degrades by rejecting cleanly instead of queueing without bound or
   blocking the accept path.

   Results travel through tickets (mutex + condition per ticket);
   [await] blocks only the session thread that owns the request.
   Worker domains never touch a socket: they run the compute closure
   and signal, so a slow client can never pin a worker.

   Workers are supervised: an exception that escapes a worker body
   (jobs themselves are caught into their ticket, so in practice this
   means a crash in the runtime around the job — modelled by the
   "scheduler.worker" fault site) respawns a replacement into the same
   slot and counts a restart, instead of silently shrinking the crew.
   The dying domain parks its own handle on [retired] so [shutdown]
   can still join every domain ever spawned. *)

module Fault = Spanner_util.Fault

let worker_site = Fault.site "scheduler.worker"

type stats = {
  workers : int;
  capacity : int;
  submitted : int;
  completed : int;
  shed : int;
  queued : int;
  max_queued : int;
  restarts : int;
}

type job = { run : unit -> unit }

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  capacity : int;
  mutable workers : unit Domain.t array;
  mutable retired : unit Domain.t list;
  mutable stopping : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable max_queued : int;
  mutable restarts : int;
}

type 'a ticket = {
  tm : Mutex.t;
  done_ : Condition.t;
  mutable result : ('a, exn) result option;
}

let rec worker t slot () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      job.run ();
      Mutex.lock t.mutex;
      t.completed <- t.completed + 1;
      Mutex.unlock t.mutex;
      (* the crash probe sits BETWEEN jobs, after the ticket was
         signalled — a fault here kills the worker without stranding
         any [await]er, which is the invariant the chaos suite pins *)
      Fault.point worker_site;
      loop ()
    end
  in
  try loop ()
  with _ ->
    (* Supervision: respawn a replacement into our slot (unless the
       scheduler is stopping) and park our own handle for [shutdown]
       to join.  The stopping check and the spawn happen under the
       same mutex as [shutdown]'s snapshot, so no domain is ever
       spawned after the snapshot or lost from it. *)
    Mutex.lock t.mutex;
    if not t.stopping then begin
      t.restarts <- t.restarts + 1;
      t.retired <- t.workers.(slot) :: t.retired;
      t.workers.(slot) <- Domain.spawn (worker t slot)
    end;
    Mutex.unlock t.mutex

let create ?workers ~capacity () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity must be at least 1";
  let n =
    match workers with
    | Some w when w >= 1 -> w
    | Some w -> invalid_arg (Printf.sprintf "Scheduler.create: %d workers" w)
    | None ->
        (* leave one domain's worth of headroom for the accept loop
           and session threads, which all live on the main domain *)
        max 1 (Spanner_util.Pool.default_jobs () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity;
      workers = [||];
      retired = [];
      stopping = false;
      submitted = 0;
      completed = 0;
      shed = 0;
      max_queued = 0;
      restarts = 0;
    }
  in
  (* spawn under the mutex: a worker that crashes instantly (armed
     fault sites) must not observe the placeholder [||] when it
     retires its slot *)
  Mutex.lock t.mutex;
  t.workers <- Array.init n (fun slot -> Domain.spawn (worker t slot));
  Mutex.unlock t.mutex;
  t

let submit t f =
  let ticket = { tm = Mutex.create (); done_ = Condition.create (); result = None } in
  let run () =
    let r = match f () with v -> Ok v | exception e -> Error e in
    Mutex.lock ticket.tm;
    ticket.result <- Some r;
    Condition.signal ticket.done_;
    Mutex.unlock ticket.tm
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.mutex;
    None
  end
  else if Queue.length t.queue >= t.capacity then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.mutex;
    None
  end
  else begin
    Queue.push { run } t.queue;
    t.submitted <- t.submitted + 1;
    t.max_queued <- max t.max_queued (Queue.length t.queue);
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    Some ticket
  end

let await ticket =
  Mutex.lock ticket.tm;
  while ticket.result = None do
    Condition.wait ticket.done_ ticket.tm
  done;
  let r = Option.get ticket.result in
  Mutex.unlock ticket.tm;
  r

(* [run t f] — submit + await, or [None] when shed. *)
let run t f = Option.map await (submit t f)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      workers = Array.length t.workers;
      capacity = t.capacity;
      submitted = t.submitted;
      completed = t.completed;
      shed = t.shed;
      queued = Queue.length t.queue;
      max_queued = t.max_queued;
      restarts = t.restarts;
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  (* snapshot under the same mutex that gates respawns: once
     [stopping] is set no new domain can appear, and every domain
     ever spawned is in [workers] or [retired] *)
  let crew = Array.to_list t.workers @ t.retired in
  Mutex.unlock t.mutex;
  List.iter Domain.join crew
