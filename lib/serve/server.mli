(** The spanner service: a persistent, concurrent query server.

    One accept systhread, one session systhread per connection
    ({!Session}), a fixed crew of worker domains ({!Scheduler}) doing
    all compute, and one shared {!Registry}.  See DESIGN.md §2g. *)

type address = Unix_socket of string | Tcp of string * int

val address_to_string : address -> string

(** [address_of_string s] parses ["unix:PATH"], ["tcp:HOST:PORT"],
    ["HOST:PORT"], or a bare filesystem path (a unix socket).
    @raise Spanner_util.Limits.Spanner_error ([Parse]) otherwise. *)
val address_of_string : string -> address

type config = {
  address : address;
  workers : int option;  (** worker domains; [None]: machine default - 1 *)
  queue : int;  (** admission-queue capacity; beyond it requests shed *)
  plan_cache : int;  (** compiled-plan LRU capacity (entries) *)
  doc_cache : int;  (** decompressed-text LRU capacity (entries) *)
  window : int;  (** tuples per stream frame *)
  max_frame : int;  (** request frame-size cap, bytes *)
  fuse_states : int option;  (** optimizer fusion budget *)
  defaults : Spanner_util.Limits.t;  (** server-side budget defaults *)
  io_timeout_ms : int;
      (** deadline for a frame read in progress or a response write
          (slowloris / stalled-consumer defense); 0 disables *)
  idle_timeout_ms : int;
      (** reap a session whose client sends nothing between requests
          for this long; 0 disables *)
  drain_ms : int;
      (** on {!stop}, let in-flight sessions finish for up to this
          long before force-closing them; 0 forces immediately *)
}

(** [default_config address] is the documented defaults: queue 64,
    caches 128 entries, window 64 tuples, 4 MiB frames, unbounded
    budgets, no io/idle deadlines, 1 s drain. *)
val default_config : address -> config

(** [ignore_sigpipe ()] makes a vanished peer surface as a write
    exception instead of killing the process; {!start} and
    {!Client.connect} both call it. *)
val ignore_sigpipe : unit -> unit

type t

(** [start config] binds, listens and returns immediately; a stale
    unix socket file is unlinked first.  SIGPIPE is ignored
    process-wide (a vanished client must not kill the server). *)
val start : config -> t

(** [stop t] initiates shutdown (idempotent, callable from any
    thread, including a session handling the SHUTDOWN verb): closes
    the listener, then drains — in-flight sessions get up to
    [config.drain_ms] to finish before being force-closed.
    Completion is observed via {!wait}. *)
val stop : t -> unit

(** [wait t] blocks until the server has fully stopped — accept and
    drain threads joined, all sessions joined, worker domains
    retired, unix socket file removed. *)
val wait : t -> unit

val registry : t -> Registry.t
val scheduler : t -> Scheduler.t
val address : t -> address
