(* The wire protocol of the spanner service.

   Framing: every message — request or response — is one frame,

     <decimal byte length> '\n' <payload>

   The length line is 1..19 ASCII digits (no sign, no leading
   whitespace) and counts exactly the payload bytes after the
   newline.  A length above the negotiated cap is rejected *before*
   any allocation, so a hostile "999999999\n" prefix cannot reserve
   memory; a frame that ends early is a truncation error, not a
   partial parse.

   Request payloads are text: the first line is the command, the
   remainder (after the first '\n', if any) is the body — a formula,
   an algebra expression, or a document.  Responses are also text;
   their first token is the status: [OK] (success / stream header),
   [R] (a window of result rows), [END n] (stream trailer), or
   [ERR code msg] with [code] from the CLI exit-code taxonomy
   (1 evaluation failure, 2 parse/corrupt input, 3 over budget or
   load-shed).

   Everything in this module is pure (strings in, strings or typed
   errors out) — the fuzz harness drives [decode_frames] and
   [parse_request] directly, and the QCheck suite round-trips
   [request_to_string] ∘ [parse_request]. *)

module Limits = Spanner_util.Limits
module Fault = Spanner_util.Fault

let default_max_frame = 4 * 1024 * 1024

(* Fault-injection sites on the two syscall wrappers every byte of
   the protocol moves through (see Spanner_util.Fault): disarmed in
   production, they are one load + never-taken branch. *)
let read_site = Fault.site "serve.read"
let write_site = Fault.site "serve.write"

exception Io_timeout of [ `Idle | `Read | `Write ]

let timeout_to_string = function
  | `Idle -> "idle timeout: no request within the idle window"
  | `Read -> "io timeout: request frame stalled mid-read"
  | `Write -> "io timeout: response write stalled"

(* ------------------------------------------------------------------ *)
(* Framing *)

let corrupt msg = Limits.corrupt ~what:"frame" msg

let encode_frame buf payload =
  Buffer.add_string buf (string_of_int (String.length payload));
  Buffer.add_char buf '\n';
  Buffer.add_string buf payload

let frame payload =
  let buf = Buffer.create (String.length payload + 12) in
  encode_frame buf payload;
  Buffer.contents buf

(* [decode_length s pos ~max_frame] reads the length line starting at
   [pos]: (payload length, offset just past the '\n').  [None] when
   [s] ends cleanly at [pos] (no more frames). *)
let decode_length s pos ~max_frame =
  let n = String.length s in
  if pos >= n then None
  else begin
    let stop = ref pos in
    while !stop < n && s.[!stop] <> '\n' do incr stop done;
    let digits = !stop - pos in
    if digits = 0 then corrupt "empty length line";
    if digits > 19 then corrupt "length line longer than 19 digits";
    for i = pos to !stop - 1 do
      if s.[i] < '0' || s.[i] > '9' then
        corrupt (Printf.sprintf "non-digit byte 0x%02x in length line" (Char.code s.[i]))
    done;
    if !stop >= n then corrupt "truncated frame: length line without newline";
    match int_of_string_opt (String.sub s pos digits) with
    | None -> corrupt "length overflows"
    | Some len ->
        if len > max_frame then
          corrupt (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame);
        Some (len, !stop + 1)
  end

(* [decode_frames s] splits a byte string into its complete frames;
   raises on any malformation, including a trailing partial frame. *)
let decode_frames ?(max_frame = default_max_frame) s =
  let n = String.length s in
  let rec go pos acc =
    match decode_length s pos ~max_frame with
    | None -> List.rev acc
    | Some (len, body) ->
        if body + len > n then
          corrupt (Printf.sprintf "truncated frame: %d payload bytes missing" (body + len - n));
        go (body + len) (String.sub s body len :: acc)
  in
  go 0 []

(* [length_of_digits ~max_frame digits] validates a complete length
   line (shared by the channel and conn readers, which enforce the
   19-digit cap while accumulating). *)
let length_of_digits ~max_frame digits =
  if digits = "" then corrupt "empty length line";
  String.iter
    (fun c ->
      if c < '0' || c > '9' then
        corrupt (Printf.sprintf "non-digit byte 0x%02x in length line" (Char.code c)))
    digits;
  match int_of_string_opt digits with
  | None -> corrupt "length overflows"
  | Some len ->
      if len > max_frame then
        corrupt (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame);
      len

(* Channel-level framing, kept for in-process harnesses (the bench
   drives raw channels at a server); the live server and client use
   the fd-level [conn] below.  A clean EOF before any length byte is
   the end of the conversation ([None]); EOF inside a frame is a
   truncation error. *)
let read_frame ?(max_frame = default_max_frame) ic =
  let line = Buffer.create 20 in
  let rec read_length () =
    match input_char ic with
    | '\n' -> Buffer.contents line
    | c ->
        if Buffer.length line >= 19 then corrupt "length line longer than 19 digits";
        Buffer.add_char line c;
        read_length ()
    | exception End_of_file ->
        if Buffer.length line = 0 then raise End_of_file
        else corrupt "truncated frame: length line without newline"
  in
  match read_length () with
  | exception End_of_file -> None
  | digits -> (
      match length_of_digits ~max_frame digits with
      | len -> (
          try Some (really_input_string ic len)
          with End_of_file -> corrupt "truncated frame: payload cut short"))

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(* ------------------------------------------------------------------ *)
(* Connection-level framing on raw file descriptors.

   The live server and client no longer speak through stdlib channels:
   a [conn] owns the fd and a read buffer, every [Unix.read]/[write]
   retries EINTR and loops partial transfers (a signal during a large
   --body-file send can no longer corrupt a frame), and — when
   configured — per-connection deadlines ride on SO_RCVTIMEO /
   SO_SNDTIMEO.  A deadline that trips surfaces as {!Io_timeout},
   classified [`Idle] (no byte of a new frame yet — a parked
   connection), [`Read] (stalled mid-frame — the slowloris shape) or
   [`Write] (a stream consumer that stopped reading). *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  max_frame : int;
  idle_timeout : float;  (* seconds; 0. = unbounded *)
  io_timeout : float;  (* seconds; 0. = unbounded *)
  mutable cur_rcv : float;  (* last SO_RCVTIMEO written, to skip redundant syscalls *)
}

let conn_of_fd ?(max_frame = default_max_frame) ?(idle_timeout_ms = 0) ?(io_timeout_ms = 0) fd =
  let io_timeout = float_of_int io_timeout_ms /. 1000. in
  (* the write deadline is static: SO_SNDTIMEO's clock restarts on
     every syscall, so it bounds zero-progress stalls, which is the
     failure mode that matters (a consumer that stopped reading) *)
  if io_timeout > 0. then
    (try Unix.setsockopt_float fd SO_SNDTIMEO io_timeout with Unix.Unix_error _ -> ());
  {
    fd;
    rbuf = Bytes.create 65536;
    rpos = 0;
    rlen = 0;
    max_frame;
    idle_timeout = float_of_int idle_timeout_ms /. 1000.;
    io_timeout;
    cur_rcv = 0.;
  }

let conn_fd c = c.fd

let set_rcv c v =
  if v <> c.cur_rcv then begin
    (try Unix.setsockopt_float c.fd SO_RCVTIMEO v with Unix.Unix_error _ -> ());
    c.cur_rcv <- v
  end

(* [refill c ~started] blocks for more bytes; false on EOF.  [started]
   selects the deadline (idle before the first byte of a frame, io
   after) and the timeout classification. *)
let refill c ~started =
  if c.idle_timeout > 0. || c.io_timeout > 0. then
    set_rcv c (if started then c.io_timeout else c.idle_timeout);
  let rec go () =
    match
      let cap = match Fault.io read_site with Fault.Full -> Bytes.length c.rbuf | Fault.Partial -> 1 in
      Unix.read c.fd c.rbuf 0 cap
    with
    | 0 -> false
    | n ->
        c.rpos <- 0;
        c.rlen <- n;
        true
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        raise (Io_timeout (if started then `Read else `Idle))
  in
  go ()

let getc c ~started =
  if c.rpos >= c.rlen then if not (refill c ~started) then raise End_of_file;
  let ch = Bytes.get c.rbuf c.rpos in
  c.rpos <- c.rpos + 1;
  ch

let read_frame_conn c =
  let line = Buffer.create 20 in
  let rec read_length ~started =
    match getc c ~started with
    | '\n' -> Buffer.contents line
    | ch ->
        if Buffer.length line >= 19 then corrupt "length line longer than 19 digits";
        Buffer.add_char line ch;
        read_length ~started:true
    | exception End_of_file ->
        if Buffer.length line = 0 && not started then raise End_of_file
        else corrupt "truncated frame: length line without newline"
  in
  match read_length ~started:false with
  | exception End_of_file -> None
  | digits ->
      let len = length_of_digits ~max_frame:c.max_frame digits in
      let payload = Bytes.create len in
      let filled = ref 0 in
      while !filled < len do
        if c.rpos >= c.rlen then
          if not (refill c ~started:true) then corrupt "truncated frame: payload cut short";
        let take = min (c.rlen - c.rpos) (len - !filled) in
        Bytes.blit c.rbuf c.rpos payload !filled take;
        c.rpos <- c.rpos + take;
        filled := !filled + take
      done;
      Some (Bytes.unsafe_to_string payload)

let write_frame_conn c payload =
  let msg = frame payload in
  let len = String.length msg in
  let off = ref 0 in
  while !off < len do
    match
      let cap =
        match Fault.io write_site with Fault.Full -> len - !off | Fault.Partial -> 1
      in
      Unix.write_substring c.fd msg !off cap
    with
    | n -> off := !off + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise (Io_timeout `Write)
  done

(* ------------------------------------------------------------------ *)
(* Requests *)

type format = Tuples | Count | First

type opts = {
  limit : int option;
  offset : int;
  format : format;
  fuel : int option;
  deadline_ms : int option;
  max_states : int option;
  max_tuples : int option;
}

let default_opts =
  {
    limit = None;
    offset = 0;
    format = Tuples;
    fuel = None;
    deadline_ms = None;
    max_states = None;
    max_tuples = None;
  }

type source = Named of string | Inline of string

type request =
  | Define of { name : string; body : string }
  | Load_doc of { store : string; doc : string; body : string }
  | Load_path of { store : string; path : string }
  | Query of { source : source; store : string; doc : string; opts : opts }
  | Explain of { source : source; opts : opts }
  | Stats
  | Close
  | Shutdown

let perror pos msg = Limits.parse_error ~what:"request" ~pos msg

let max_name_len = 128

let valid_name s =
  let ok = ref (String.length s >= 1 && String.length s <= max_name_len) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> ()
      | _ -> ok := false)
    s;
  !ok

let check_name ~pos what s =
  if not (valid_name s) then
    perror pos
      (Printf.sprintf "invalid %s %S: 1-%d characters from [A-Za-z0-9_.-]" what s max_name_len)

(* Tokenize the command line, keeping each token's byte offset for
   error positions.  Runs of spaces separate tokens; no other
   whitespace is special (the body begins after the first newline). *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && line.[!i] = ' ' do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' do incr i done;
      toks := (start, String.sub line start (!i - start)) :: !toks
    end
  done;
  List.rev !toks

let parse_nat ~pos ~key v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | Some n -> perror pos (Printf.sprintf "option %s=%d: must be non-negative" key n)
  | None -> perror pos (Printf.sprintf "option %s=%S: not an integer" key v)

let parse_opts toks =
  List.fold_left
    (fun (opts, seen) (pos, tok) ->
      match String.index_opt tok '=' with
      | None -> perror pos (Printf.sprintf "expected option key=value, got %S" tok)
      | Some eq ->
          let key = String.sub tok 0 eq in
          let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
          if List.mem key seen then perror pos (Printf.sprintf "duplicate option %s" key);
          let opts =
            match key with
            | "limit" -> { opts with limit = Some (parse_nat ~pos ~key v) }
            | "offset" -> { opts with offset = parse_nat ~pos ~key v }
            | "fuel" -> { opts with fuel = Some (parse_nat ~pos ~key v) }
            | "deadline-ms" -> { opts with deadline_ms = Some (parse_nat ~pos ~key v) }
            | "max-states" -> { opts with max_states = Some (parse_nat ~pos ~key v) }
            | "max-tuples" -> { opts with max_tuples = Some (parse_nat ~pos ~key v) }
            | "format" -> (
                match v with
                | "tuples" -> { opts with format = Tuples }
                | "count" -> { opts with format = Count }
                | "first" -> { opts with format = First }
                | _ ->
                    perror pos
                      (Printf.sprintf "option format=%S: expected tuples, count or first" v))
            | _ -> perror pos (Printf.sprintf "unknown option %S" key)
          in
          (opts, key :: seen))
    (default_opts, []) toks
  |> fst

let parse_source ~pos tok =
  if tok = "-" then `Body
  else begin
    check_name ~pos "query name" tok;
    `Named tok
  end

(* [parse_request payload] — the hardened front door.  Every failure
   is a typed [Parse] error with a byte offset into the payload. *)
let parse_request payload =
  let line, body =
    match String.index_opt payload '\n' with
    | None -> (payload, "")
    | Some i -> (String.sub payload 0 i, String.sub payload (i + 1) (String.length payload - i - 1))
  in
  let require_body ~pos what =
    if body = "" then perror pos (what ^ " requires a body after the command line")
  in
  let no_body verb = if body <> "" then perror 0 (verb ^ " takes no body") in
  let resolve_source ~pos tok =
    match parse_source ~pos tok with
    | `Named n -> Named n
    | `Body ->
        require_body ~pos "inline query (-)";
        Inline body
  in
  match tokenize line with
  | [] -> perror 0 "empty request"
  | (_, "DEFINE") :: rest -> (
      match rest with
      | [ (pos, name) ] ->
          check_name ~pos "query name" name;
          require_body ~pos "DEFINE";
          Define { name; body }
      | _ -> perror 0 "usage: DEFINE <name> + body")
  | (_, "LOAD") :: rest -> (
      match rest with
      | [ (spos, store); (_, "DOC"); (dpos, doc) ] ->
          check_name ~pos:spos "store name" store;
          check_name ~pos:dpos "document name" doc;
          require_body ~pos:dpos "LOAD ... DOC";
          Load_doc { store; doc; body }
      | [ (spos, store); (_, "PATH"); (_, path) ] ->
          check_name ~pos:spos "store name" store;
          no_body "LOAD ... PATH";
          Load_path { store; path }
      | _ -> perror 0 "usage: LOAD <store> DOC <doc> + body, or LOAD <store> PATH <file>")
  | (_, "QUERY") :: rest -> (
      match rest with
      | (qpos, src) :: (spos, store) :: (dpos, doc) :: opts ->
          let source = resolve_source ~pos:qpos src in
          (if source <> Inline body then no_body "QUERY by name");
          check_name ~pos:spos "store name" store;
          check_name ~pos:dpos "document name" doc;
          Query { source; store; doc; opts = parse_opts opts }
      | _ -> perror 0 "usage: QUERY <name|-> <store> <doc> [option=value...]")
  | (_, "EXPLAIN") :: rest -> (
      match rest with
      | (qpos, src) :: opts ->
          let source = resolve_source ~pos:qpos src in
          (if source <> Inline body then no_body "EXPLAIN by name");
          Explain { source; opts = parse_opts opts }
      | _ -> perror 0 "usage: EXPLAIN <name|-> [option=value...]")
  | [ (_, "STATS") ] ->
      no_body "STATS";
      Stats
  | [ (_, "CLOSE") ] ->
      no_body "CLOSE";
      Close
  | [ (_, "SHUTDOWN") ] ->
      no_body "SHUTDOWN";
      Shutdown
  | (pos, verb) :: _ ->
      perror pos
        (Printf.sprintf
           "unknown command %S (expected DEFINE, LOAD, QUERY, EXPLAIN, STATS, CLOSE or SHUTDOWN)"
           verb)

(* ------------------------------------------------------------------ *)
(* Printing — the canonical form [parse_request] round-trips on *)

let opts_to_tokens o =
  let toks = ref [] in
  let add s = toks := s :: !toks in
  (match o.limit with Some k -> add (Printf.sprintf "limit=%d" k) | None -> ());
  if o.offset > 0 then add (Printf.sprintf "offset=%d" o.offset);
  (match o.format with
  | Tuples -> ()
  | Count -> add "format=count"
  | First -> add "format=first");
  (match o.fuel with Some k -> add (Printf.sprintf "fuel=%d" k) | None -> ());
  (match o.deadline_ms with Some k -> add (Printf.sprintf "deadline-ms=%d" k) | None -> ());
  (match o.max_states with Some k -> add (Printf.sprintf "max-states=%d" k) | None -> ());
  (match o.max_tuples with Some k -> add (Printf.sprintf "max-tuples=%d" k) | None -> ());
  List.rev !toks

let request_to_string r =
  let line tokens = String.concat " " tokens in
  match r with
  | Define { name; body } -> line [ "DEFINE"; name ] ^ "\n" ^ body
  | Load_doc { store; doc; body } -> line [ "LOAD"; store; "DOC"; doc ] ^ "\n" ^ body
  | Load_path { store; path } -> line [ "LOAD"; store; "PATH"; path ]
  | Query { source; store; doc; opts } ->
      let src, body =
        match source with Named n -> (n, "") | Inline b -> ("-", "\n" ^ b)
      in
      line ([ "QUERY"; src; store; doc ] @ opts_to_tokens opts) ^ body
  | Explain { source; opts } ->
      let src, body =
        match source with Named n -> (n, "") | Inline b -> ("-", "\n" ^ b)
      in
      line ([ "EXPLAIN"; src ] @ opts_to_tokens opts) ^ body
  | Stats -> "STATS"
  | Close -> "CLOSE"
  | Shutdown -> "SHUTDOWN"

(* ------------------------------------------------------------------ *)
(* Response statuses *)

(* [status_of_exn e] maps any server-side failure onto the wire status:
   the exit-code taxonomy of Spanner_util.Limits, with untyped
   exceptions conservatively classed as evaluation failures. *)
let status_of_exn = function
  | Limits.Spanner_error e -> (Limits.exit_code e, Limits.to_string e)
  | Spanner_fa.Regex.Parse_error (msg, pos) ->
      (2, Printf.sprintf "parse error at offset %d: %s" pos msg)
  | Invalid_argument msg -> (2, msg)
  | Failure msg -> (1, msg)
  | Fault.Injected site -> (1, Printf.sprintf "injected fault at %s" site)
  | Io_timeout k -> (3, timeout_to_string k)
  | e -> (1, Printexc.to_string e)

(* [fuzz_entry s] — the surface the fuzz harness drives: split [s]
   into frames under a small cap, parse every payload as a request,
   and round-trip the canonical printing of whatever parses. *)
let fuzz_entry s =
  let payloads = decode_frames ~max_frame:65536 s in
  List.iter
    (fun p ->
      let r = parse_request p in
      let r' = parse_request (request_to_string r) in
      if r <> r' then failwith "request print/parse round-trip mismatch")
    payloads
