(** One connected client: the per-connection request/response loop.

    Sessions are systhreads owning all socket IO for one client; every
    heavy step of a QUERY (plan resolution and compilation, document
    decompression, cursor construction, offset skipping, count/first
    drains) runs as a {!Scheduler} job on a worker domain, and only
    the O(output) streaming of an already-prepared cursor happens on
    the session thread — so a slow reader pins its own thread, never a
    worker.  Response framing is documented in README.md ("The serve
    protocol"). *)

type ctx = {
  registry : Registry.t;
  scheduler : Scheduler.t;
  window : int;  (** tuples ([R]-lines) per stream frame *)
  max_frame : int;  (** request frame-size cap, bytes *)
  extra_stats : unit -> string list;
      (** server-level lines appended to a STATS response *)
  draining : unit -> bool;
      (** polled between requests: a draining server finishes the
          in-flight request, then closes instead of reading more *)
}

(** [handle ctx conn] serves requests until the client closes,
    framing breaks, a deadline trips, or a terminal verb arrives.
    Never raises: IO failures (client gone) read as [`Closed];
    tripped deadlines are classified so the server can count them. *)
val handle :
  ctx -> Protocol.conn -> [ `Closed | `Shutdown_requested | `Timed_out of [ `Idle | `Read | `Write ] ]
