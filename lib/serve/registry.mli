(** The server's shared state: named queries, the cross-query plan
    cache, document stores, the decompressed-text cache, and the
    prepared-engine cache for compressed-domain evaluation.

    Everything a CLI run rebuilds per invocation is built once here
    and shared across requests and connections.  Compiled plans are
    keyed by the {e normalized} query text
    ({!Spanner_core.Algebra.to_string} of the parsed expression), so
    repeated inline bodies, re-DEFINEs, and named references to the
    same query all share one cache entry.  Stores are frozen SLP
    snapshots ({!Spanner_slp.Slp.freeze}) that worker domains read
    without locks.

    All operations are thread- and domain-safe; parsing, plan
    compilation and decompression run outside the registry lock. *)

type t

(** [create ?plan_capacity ?doc_capacity ?engine_capacity
    ?fuse_states ~defaults ()] is an empty registry.  [defaults] are
    the server-side budgets: plans are compiled under them, and
    {!effective_limits} starts from them.  [fuse_states] is the
    optimizer's fusion budget (default
    {!Spanner_engine.Optimizer.default_fuse_states});
    [engine_capacity] bounds the prepared-engine cache (default 32 —
    engines hold per-node matrices, much heavier than plans). *)
val create :
  ?plan_capacity:int ->
  ?doc_capacity:int ->
  ?engine_capacity:int ->
  ?fuse_states:int ->
  defaults:Spanner_util.Limits.t ->
  unit ->
  t

val defaults : t -> Spanner_util.Limits.t

(** [effective_limits t opts] is [defaults] with any per-request
    overrides from [opts] applied axis-wise.  Overrides can only
    tighten: each axis is the minimum of the override and the server
    default, so clients cannot exceed operator-configured budgets. *)
val effective_limits : t -> Protocol.opts -> Spanner_util.Limits.t

(** [define t ~name ~body] parses [body] (regex formula, falling back
    to algebra), compiles it through the plan cache, and binds [name]
    to the normalized text.  Returns the compiled plan.
    @raise Spanner_util.Limits.Spanner_error ([Parse]) on a body
    neither grammar accepts. *)
val define : t -> name:string -> body:string -> Spanner_engine.Optimizer.t

(** [plan t source] is the compiled plan of a query source — a
    registry name or inline text — via one plan-cache probe.
    @raise Spanner_util.Limits.Spanner_error ([Eval_failure]) on an
    unknown name. *)
val plan : t -> Protocol.source -> Spanner_engine.Optimizer.t

(** [plan_normalized t source] is {!plan} returning also the
    normalized query text — the key callers need to reach the other
    per-query caches ({!native_cursor}). *)
val plan_normalized : t -> Protocol.source -> string * Spanner_engine.Optimizer.t

(** [load_doc t ~store ~doc ~text] compresses [text] into [store]
    (created on first use) as document [doc] and refreshes the frozen
    snapshot.  Returns [(uncompressed_len, compressed_size)] of the
    store after the load.
    @raise Spanner_util.Limits.Spanner_error ([Eval_failure]) on an
    empty [text] or when [store] is a mapped arena (read-only). *)
val load_doc : t -> store:string -> doc:string -> text:string -> int * int

(** [load_path t ~store ~path] replaces [store] with the file at
    [path] (server filesystem).  The file's magic decides the
    backing: a pack-built arena ([SLPAR1]) or shard manifest
    ([SLPMF1]) is memory-mapped in place — O(1) in corpus size, zero
    deserialization, read-only — while an SLPDB file is deserialized
    into a fresh heap store.  Returns the number of documents. *)
val load_path : t -> store:string -> path:string -> int

(** [doc_text t ~gauge ~store ~doc] is the decompressed text of one
    document, through the text cache; a miss decompresses from the
    current frozen snapshot, charged to [gauge]. *)
val doc_text :
  t -> gauge:Spanner_util.Limits.gauge -> store:string -> doc:string -> string

(** [native_cursor t ~gauge ~normalized ~store ~doc plan] is a
    constant-delay streaming cursor over the {e compressed} document —
    no decompression at any point — or [None] when the request must
    fall back to {!doc_text} + the optimizer cursor: the plan did not
    fuse to a single automaton
    ({!Spanner_engine.Optimizer.compiled} is [None]), or the
    document's compression ratio (derived length over {e reachable}
    node count, decided by a budgeted walk that stops as soon as the
    answer is known) is below the break-even threshold.  The prepared engine is
    cached per (normalized query, store snapshot); the matrix sweep on
    a miss — or the incremental sweep when a LOAD added nodes — is
    charged to [gauge] and serialized under one preparation lock,
    after which the cursor only reads immutable state and may be
    drained on any domain.  Tuple order may differ from the
    decompressed path (runs are enumerated grammar-wise, not
    left-to-right), but the tuple {e set} is identical.
    @raise Spanner_util.Limits.Spanner_error when [gauge] trips during
    the sweep (completed matrices are kept; a retry resumes). *)
val native_cursor :
  t ->
  gauge:Spanner_util.Limits.gauge ->
  normalized:string ->
  store:string ->
  doc:string ->
  Spanner_engine.Optimizer.t ->
  Spanner_engine.Cursor.t option

(** {1 Introspection} *)

type counts = { queries : int; stores : int; docs : int }

val counts : t -> counts

(** One line of [STATS] per store: what backs it and what it costs. *)
type store_info = {
  sname : string;
  kind : string;  (** ["heap"] or ["arena"] *)
  sdocs : int;
  shards : int;  (** arena shard count (heap stores report 1) *)
  mapped : int;  (** bytes of file mapping; 0 for heap stores *)
  resident : int;
      (** bytes actually paged in (arena: Rss of the mapping from
          /proc; heap: the frozen-snapshot footprint estimate) *)
}

(** [stores_info t] describes every store, sorted by name.  Reads
    /proc outside the registry lock. *)
val stores_info : t -> store_info list

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val plan_cache_stats : t -> cache_stats
val doc_cache_stats : t -> cache_stats
val engine_cache_stats : t -> cache_stats
