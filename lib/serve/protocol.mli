(** Wire protocol of the spanner service: length-prefixed frames and
    the request grammar.

    Every message is one frame — an ASCII decimal byte count, a
    newline, then exactly that many payload bytes.  Request payloads
    are a command line plus an optional body (everything after the
    first newline); response payloads start with a status token
    ([OK], [R], [END], [ERR]).  The full grammar is documented in
    README.md ("The serve protocol").

    The decoder treats input as hostile: oversized length prefixes
    are rejected before allocation, truncated frames and non-digit
    length bytes raise typed [Corrupt_input] errors, and every
    request-grammar violation (unknown verbs, bad names, duplicate
    options, missing bodies) raises a typed [Parse] error with a byte
    offset — the same {!Spanner_util.Limits.spanner_error} taxonomy
    the rest of the system maps onto exit codes.  All parsing here is
    pure; the fuzz harness drives {!fuzz_entry} with arbitrary
    bytes. *)

(** Default frame-size cap: 4 MiB. *)
val default_max_frame : int

(** {1 Framing} *)

(** [encode_frame buf payload] appends one frame to [buf]. *)
val encode_frame : Buffer.t -> string -> unit

(** [frame payload] is the encoded frame as a string. *)
val frame : string -> string

(** [decode_frames ?max_frame s] splits [s] into its payloads.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on any
    malformation, including a trailing partial frame. *)
val decode_frames : ?max_frame:int -> string -> string list

(** [read_frame ?max_frame ic] reads one frame ([None] on a clean EOF
    before the first length byte).
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on a
    truncated or malformed frame. *)
val read_frame : ?max_frame:int -> in_channel -> string option

(** [write_frame oc payload] writes one frame and flushes. *)
val write_frame : out_channel -> string -> unit

(** {1 Connections}

    Fd-level framing used by the live server and client: EINTR is
    retried, partial reads/writes are looped, and optional
    per-connection deadlines surface as {!Io_timeout}.  The fault
    sites ["serve.read"] and ["serve.write"]
    (see {!Spanner_util.Fault}) sit on these syscall wrappers. *)

(** A deadline tripped: [`Idle] — no byte of a new frame arrived
    within the idle window; [`Read] — a frame stalled mid-read (the
    slowloris shape); [`Write] — the peer stopped draining our
    response. *)
exception Io_timeout of [ `Idle | `Read | `Write ]

val timeout_to_string : [ `Idle | `Read | `Write ] -> string

(** A buffered framed connection over a file descriptor. *)
type conn

(** [conn_of_fd ?max_frame ?idle_timeout_ms ?io_timeout_ms fd] wraps
    [fd].  Timeouts of 0 (the default) mean unbounded; the conn does
    not own [fd] — closing it is the caller's job. *)
val conn_of_fd : ?max_frame:int -> ?idle_timeout_ms:int -> ?io_timeout_ms:int -> Unix.file_descr -> conn

val conn_fd : conn -> Unix.file_descr

(** [read_frame_conn c] reads one frame ([None] on a clean EOF before
    the first length byte).
    @raise Io_timeout when a configured deadline trips.
    @raise Spanner_util.Limits.Spanner_error ([Corrupt_input]) on a
    truncated or malformed frame. *)
val read_frame_conn : conn -> string option

(** [write_frame_conn c payload] writes one frame, looping partial
    writes and retrying EINTR.
    @raise Io_timeout when the send deadline trips. *)
val write_frame_conn : conn -> string -> unit

(** {1 Requests} *)

type format = Tuples | Count | First

(** Per-request evaluation options; every field defaults to the
    server-side setting ({!default_opts} leaves it unset). *)
type opts = {
  limit : int option;  (** stream window: at most this many tuples *)
  offset : int;  (** skip this many tuples first *)
  format : format;
  fuel : int option;
  deadline_ms : int option;
  max_states : int option;
  max_tuples : int option;
}

val default_opts : opts

(** A query source: a registry name, or the request body itself. *)
type source = Named of string | Inline of string

type request =
  | Define of { name : string; body : string }
      (** register the body (a regex formula or an algebra
          expression) under [name] *)
  | Load_doc of { store : string; doc : string; body : string }
      (** compress the body into [store] as document [doc] *)
  | Load_path of { store : string; path : string }
      (** load an SLPDB file from the server's filesystem *)
  | Query of { source : source; store : string; doc : string; opts : opts }
  | Explain of { source : source; opts : opts }
  | Stats
  | Close
  | Shutdown

(** [valid_name s] tests the name charset (1-128 bytes of
    [A-Za-z0-9_.-]). *)
val valid_name : string -> bool

(** [parse_request payload] parses one request payload.
    @raise Spanner_util.Limits.Spanner_error ([Parse]) with a byte
    offset on any grammar violation. *)
val parse_request : string -> request

(** [request_to_string r] prints [r] in the canonical concrete form;
    [parse_request] is its inverse. *)
val request_to_string : request -> string

(** {1 Statuses} *)

(** [status_of_exn e] is the [(code, message)] an [ERR] response
    carries for a failed request: the {!Spanner_util.Limits.exit_code}
    taxonomy (1 evaluation failure, 2 parse/corrupt input, 3 budget),
    untyped exceptions classed as evaluation failures. *)
val status_of_exn : exn -> int * string

(** [fuzz_entry s] decodes [s] as frames, parses every payload and
    round-trips the canonical printing — the fuzz harness target.
    Raises only typed errors on malformed input. *)
val fuzz_entry : string -> unit
