(* Client-side helper: one connection, synchronous request/response.

   Shared by the CLI [client] command, the serve smoke test and the
   E18 load generator, so they all speak the protocol through the
   same code path.  A response is the list of frames up to and
   including the terminal one: single-frame replies are themselves
   terminal; a streamed query reply ([OK stream ...]) continues until
   its [END] or mid-stream [ERR] frame.

   IO goes through Protocol's fd-level conn, so EINTR is retried and
   partial writes are looped — a signal during a large --body-file
   send can no longer corrupt a frame.  On top of that, [request]
   offers structured retry for idempotent verbs (QUERY, EXPLAIN,
   STATS): transport-class failures reconnect and resend with
   exponential backoff + jitter, never mutating verbs (a DEFINE or
   LOAD that died mid-flight may or may not have applied). *)

module Limits = Spanner_util.Limits
module Xoshiro = Spanner_util.Xoshiro

type t = {
  address : Server.address;
  max_frame : int;
  timeout_ms : int;
  rng : Xoshiro.t;  (* backoff jitter *)
  mutable fd : Unix.file_descr;
  mutable conn : Protocol.conn;
}

let connect_fd address =
  let fd, sockaddr =
    match address with
    | Server.Unix_socket path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ AI_FAMILY PF_INET ] with
            | { ai_addr = ADDR_INET (a, _); _ } :: _ -> a
            | _ -> Limits.eval_failure ~what:"client" ("cannot resolve host " ^ host))
        in
        (Unix.socket PF_INET SOCK_STREAM 0, Unix.ADDR_INET (addr, port))
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let make_conn ~max_frame ~timeout_ms fd =
  Protocol.conn_of_fd ~max_frame ~idle_timeout_ms:timeout_ms ~io_timeout_ms:timeout_ms fd

let connect ?(max_frame = Protocol.default_max_frame) ?(timeout_ms = 0) address =
  Server.ignore_sigpipe ();
  let fd = connect_fd address in
  {
    address;
    max_frame;
    timeout_ms;
    rng = Xoshiro.create (Unix.getpid () lxor Hashtbl.hash (Server.address_to_string address));
    fd;
    conn = make_conn ~max_frame ~timeout_ms fd;
  }

let close t = try Unix.close t.fd with _ -> ()

let reconnect t =
  (try Unix.close t.fd with _ -> ());
  let fd = connect_fd t.address in
  t.fd <- fd;
  t.conn <- make_conn ~max_frame:t.max_frame ~timeout_ms:t.timeout_ms fd

let is_stream_header frame =
  String.length frame >= 9 && String.sub frame 0 9 = "OK stream"

let is_terminal_frame frame =
  let starts p =
    String.length frame >= String.length p && String.sub frame 0 (String.length p) = p
  in
  starts "END" || starts "ERR"

(* [err_code frame] is [Some code] iff [frame] is an ERR status. *)
let err_code frame =
  match String.split_on_char ' ' frame with
  | "ERR" :: code :: _ -> int_of_string_opt code
  | _ -> None

let request_once t payload =
  Protocol.write_frame_conn t.conn payload;
  let read () =
    match Protocol.read_frame_conn t.conn with
    | Some frame -> frame
    | None -> Limits.corrupt ~what:"response" "connection closed mid-response"
  in
  let first = read () in
  if not (is_stream_header first) then [ first ]
  else
    let rec rest acc =
      let frame = read () in
      if is_terminal_frame frame then List.rev (frame :: acc) else rest (frame :: acc)
    in
    first :: rest []

(* Only verbs whose replay is observationally safe are retried. *)
let idempotent payload =
  let line =
    match String.index_opt payload '\n' with
    | Some i -> String.sub payload 0 i
    | None -> payload
  in
  match List.filter (fun w -> w <> "") (String.split_on_char ' ' line) with
  | ("QUERY" | "EXPLAIN" | "STATS") :: _ -> true
  | _ -> false

(* Transport-class failures: the server went away, reset us, timed us
   out, or hung up mid-response (Corrupt_input from [request_once]) —
   as opposed to a well-formed ERR reply, which is never retried.
   EBADF covers a failed [reconnect] leaving a closed fd behind. *)
let transient = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ECONNABORTED | EPIPE | ENOENT | EINTR | ETIMEDOUT
        | EAGAIN | EWOULDBLOCK | EBADF ),
        _,
        _ )
  | End_of_file
  | Sys_error _
  | Protocol.Io_timeout _
  | Limits.Spanner_error (Limits.Corrupt_input _) ->
      true
  | _ -> false

let request ?(attempts = 4) ?(backoff_ms = 0) t payload =
  if backoff_ms <= 0 || not (idempotent payload) then request_once t payload
  else
    let rec go k =
      match request_once t payload with
      | frames -> frames
      | exception e when transient e && k < attempts - 1 ->
          let base = backoff_ms * (1 lsl k) in
          let jitter = Xoshiro.int t.rng (max 1 base) in
          Unix.sleepf (float_of_int (base + jitter) /. 1000.);
          (try reconnect t with _ -> ());
          go (k + 1)
    in
    go 0
