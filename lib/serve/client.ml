(* Client-side helper: one connection, synchronous request/response.

   Shared by the CLI [client] command, the serve smoke test and the
   E18 load generator, so they all speak the protocol through the
   same code path.  A response is the list of frames up to and
   including the terminal one: single-frame replies are themselves
   terminal; a streamed query reply ([OK stream ...]) continues until
   its [END] or mid-stream [ERR] frame. *)

module Limits = Spanner_util.Limits

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect address =
  Server.ignore_sigpipe ();
  let fd, sockaddr =
    match address with
    | Server.Unix_socket path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ AI_FAMILY PF_INET ] with
            | { ai_addr = ADDR_INET (a, _); _ } :: _ -> a
            | _ -> Limits.eval_failure ~what:"client" ("cannot resolve host " ^ host))
        in
        (Unix.socket PF_INET SOCK_STREAM 0, Unix.ADDR_INET (addr, port))
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t =
  (try flush t.oc with _ -> ());
  try Unix.close t.fd with _ -> ()

let is_stream_header frame =
  String.length frame >= 9 && String.sub frame 0 9 = "OK stream"

let is_terminal_frame frame =
  let starts p =
    String.length frame >= String.length p && String.sub frame 0 (String.length p) = p
  in
  starts "END" || starts "ERR"

(* [err_code frame] is [Some code] iff [frame] is an ERR status. *)
let err_code frame =
  match String.split_on_char ' ' frame with
  | "ERR" :: code :: _ -> int_of_string_opt code
  | _ -> None

let request ?max_frame t payload =
  Protocol.write_frame t.oc payload;
  let read () =
    match Protocol.read_frame ?max_frame t.ic with
    | Some frame -> frame
    | None -> Limits.corrupt ~what:"response" "connection closed mid-response"
  in
  let first = read () in
  if not (is_stream_header first) then [ first ]
  else
    let rec rest acc =
      let frame = read () in
      if is_terminal_frame frame then List.rev (frame :: acc) else rest (frame :: acc)
    in
    first :: rest []
