(* One connected client: read a request frame, answer, repeat.

   Sessions run as systhreads on the server's main domain and own all
   socket IO.  The split with the scheduler is strict: everything
   heavy about a QUERY — plan-cache probe (and compilation on a
   miss), document decompression, cursor creation (which performs the
   optimizer's eager prepare/materialise work), offset skipping, and
   full drains for count/first formats — runs inside the worker job;
   the session thread only blocks on its ticket and then streams the
   already-prepared cursor.  Pulling the remaining tuples is O(output)
   enumeration work, so a slow reader costs exactly one session
   thread, never a worker domain or another client's latency.

   Response shapes (one frame unless noted):

     OK <info...>                 command succeeded
     ERR <code> <message>         failed; <code> is the exit-code
                                  taxonomy (1 eval, 2 parse, 3 budget)
     OK stream {vars}             query header, then
       R <tuple>                    windowed frames, [window] R-lines
       ...                          per frame, then
     END <n>                        terminal frame: n tuples streamed
                                    (or a terminal ERR mid-stream)

   Admission rejection is indistinguishable on the wire from a blown
   budget by design — both are "the server declined to spend" and
   carry code 3; the message says which. *)

module Limits = Spanner_util.Limits
module Fault = Spanner_util.Fault
open Spanner_core
module Cursor = Spanner_engine.Cursor
module Optimizer = Spanner_engine.Optimizer

(* Probed once per parsed request, before dispatch: with an exn rule
   this models a handler crash (answered ERR 1, session survives). *)
let request_site = Fault.site "session.request"

type ctx = {
  registry : Registry.t;
  scheduler : Scheduler.t;
  window : int;  (* R-lines per stream frame *)
  max_frame : int;
  extra_stats : unit -> string list;  (* server-level STATS lines *)
  draining : unit -> bool;  (* server is draining: stop between requests *)
}

(* What a worker job hands back to the session thread.  The mutex
   handoff through the ticket orders the worker's writes before the
   session's reads, so draining the cursor here is safe even though
   it was built on another domain (Optimizer cursors are effect-free
   and fully prepared at creation). *)
type outcome =
  | Stream of Cursor.t * Variable.Set.t
  | Counted of int
  | First_of of Span_tuple.t option

let pp_tuple t = Format.asprintf "%a" Span_tuple.pp t
let pp_vars vs = Format.asprintf "%a" Variable.pp_set vs

let err_frame e =
  let code, msg = Protocol.status_of_exn e in
  Printf.sprintf "ERR %d %s" code msg

(* ------------------------------------------------------------------ *)
(* Request handlers (every one returns the response payload(s) it
   wrote; exceptions are turned into ERR frames by the caller) *)

let handle_define ctx c ~name ~body =
  let plan = Registry.define ctx.registry ~name ~body in
  Protocol.write_frame_conn c
    (Printf.sprintf "OK defined %s schema=%s fused=%d" name
       (pp_vars (Optimizer.schema plan))
       (Optimizer.fused_count plan))

let handle_load_doc ctx c ~store ~doc ~body =
  let bytes, store_nodes = Registry.load_doc ctx.registry ~store ~doc ~text:body in
  Protocol.write_frame_conn c
    (Printf.sprintf "OK loaded %s/%s bytes=%d store_nodes=%d" store doc bytes store_nodes)

let handle_load_path ctx c ~store ~path =
  let docs = Registry.load_path ctx.registry ~store ~path in
  Protocol.write_frame_conn c (Printf.sprintf "OK loaded %s docs=%d" store docs)

(* The worker-side half of QUERY: resolve, build the cursor — in the
   compressed domain when the plan and store shapes allow, else by
   decompressing — and consume whatever the format lets us consume
   eagerly. *)
let query_job ctx source ~store ~doc (opts : Protocol.opts) () =
  let limits = Registry.effective_limits ctx.registry opts in
  let normalized, plan = Registry.plan_normalized ctx.registry source in
  let gauge = Limits.start limits in
  let cursor =
    match Registry.native_cursor ctx.registry ~gauge ~normalized ~store ~doc plan with
    | Some cursor -> cursor
    | None ->
        let text = Registry.doc_text ctx.registry ~gauge ~store ~doc in
        Optimizer.cursor ~limits plan text
  in
  if opts.offset > 0 then Cursor.drop cursor opts.offset;
  let cursor =
    match opts.limit with Some k -> Cursor.take cursor k | None -> cursor
  in
  match opts.format with
  | Protocol.Tuples -> Stream (cursor, Optimizer.schema plan)
  | Protocol.Count -> Counted (Cursor.cardinal cursor)
  | Protocol.First -> First_of (Cursor.next cursor)

let stream ctx c cursor vars =
  Protocol.write_frame_conn c (Printf.sprintf "OK stream %s" (pp_vars vars));
  let buf = Buffer.create 256 in
  let count = ref 0 in
  let flush_window () =
    if Buffer.length buf > 0 then begin
      (* drop the trailing newline: frames carry exact payloads *)
      let payload = Buffer.sub buf 0 (Buffer.length buf - 1) in
      Buffer.clear buf;
      Protocol.write_frame_conn c payload
    end
  in
  match
    let in_window = ref 0 in
    let rec pull () =
      match Cursor.next cursor with
      | None -> ()
      | Some t ->
          Buffer.add_string buf "R ";
          Buffer.add_string buf (pp_tuple t);
          Buffer.add_char buf '\n';
          incr count;
          incr in_window;
          if !in_window >= ctx.window then begin
            flush_window ();
            in_window := 0
          end;
          pull ()
    in
    pull ()
  with
  | () ->
      flush_window ();
      Protocol.write_frame_conn c (Printf.sprintf "END %d" !count)
  | exception e ->
      (* a mid-stream failure (budget tripped between pulls) still
         ends the response with a well-formed terminal frame *)
      flush_window ();
      Protocol.write_frame_conn c (err_frame e)

let handle_query ctx c source ~store ~doc opts =
  match Scheduler.run ctx.scheduler (query_job ctx source ~store ~doc opts) with
  | None ->
      let s = Scheduler.stats ctx.scheduler in
      Protocol.write_frame_conn c
        (Printf.sprintf "ERR 3 server overloaded: admission queue full (%d waiting)"
           s.Scheduler.queued)
  | Some (Error e) -> Protocol.write_frame_conn c (err_frame e)
  | Some (Ok (Counted n)) -> Protocol.write_frame_conn c (Printf.sprintf "OK count %d" n)
  | Some (Ok (First_of None)) -> Protocol.write_frame_conn c "OK first"
  | Some (Ok (First_of (Some t))) ->
      Protocol.write_frame_conn c (Printf.sprintf "OK first %s" (pp_tuple t))
  | Some (Ok (Stream (cursor, vars))) -> stream ctx c cursor vars

let handle_explain ctx c source =
  let plan = Registry.plan ctx.registry source in
  let b = Buffer.create 256 in
  Buffer.add_string b "OK explain\n";
  Printf.bprintf b "original: %s\n" (Algebra.to_string (Optimizer.original plan));
  Printf.bprintf b "rewritten: %s\n" (Algebra.to_string (Optimizer.rewritten plan));
  Printf.bprintf b "schema: %s\n" (pp_vars (Optimizer.schema plan));
  Printf.bprintf b "fused: %d (threshold %d states)\n" (Optimizer.fused_count plan)
    (Optimizer.threshold plan);
  (match Optimizer.compiled plan with
  | Some ct -> Printf.bprintf b "compiled: whole query, %d states" (Compiled.states ct)
  | None -> Buffer.add_string b "compiled: per-node (materialised joins)");
  Protocol.write_frame_conn c (Buffer.contents b)

let cache_line name (c : Registry.cache_stats) =
  Printf.sprintf "%s: hits=%d misses=%d evictions=%d entries=%d/%d" name c.hits
    c.misses c.evictions c.entries c.capacity

let handle_stats ctx c =
  let b = Buffer.create 256 in
  Buffer.add_string b "OK stats\n";
  let counts = Registry.counts ctx.registry in
  Printf.bprintf b "queries: %d\nstores: %d\ndocs: %d\n" counts.Registry.queries
    counts.Registry.stores counts.Registry.docs;
  Printf.bprintf b "%s\n" (cache_line "plan_cache" (Registry.plan_cache_stats ctx.registry));
  Printf.bprintf b "%s\n" (cache_line "doc_cache" (Registry.doc_cache_stats ctx.registry));
  Printf.bprintf b "%s\n"
    (cache_line "engine_cache" (Registry.engine_cache_stats ctx.registry));
  List.iter
    (fun (i : Registry.store_info) ->
      Printf.bprintf b "store %s: kind=%s docs=%d shards=%d mapped=%d resident=%d\n"
        i.Registry.sname i.Registry.kind i.Registry.sdocs i.Registry.shards
        i.Registry.mapped i.Registry.resident)
    (Registry.stores_info ctx.registry);
  let s = Scheduler.stats ctx.scheduler in
  Printf.bprintf b
    "scheduler: workers=%d capacity=%d submitted=%d completed=%d shed=%d queued=%d \
     max_queued=%d restarts=%d"
    s.Scheduler.workers s.Scheduler.capacity s.Scheduler.submitted
    s.Scheduler.completed s.Scheduler.shed s.Scheduler.queued s.Scheduler.max_queued
    s.Scheduler.restarts;
  List.iter (fun line -> Printf.bprintf b "\n%s" line) (ctx.extra_stats ());
  Protocol.write_frame_conn c (Buffer.contents b)

(* ------------------------------------------------------------------ *)

let handle_request ctx c payload =
  Fault.point request_site;
  match Protocol.parse_request payload with
  | Protocol.Define { name; body } ->
      handle_define ctx c ~name ~body;
      `Continue
  | Protocol.Load_doc { store; doc; body } ->
      handle_load_doc ctx c ~store ~doc ~body;
      `Continue
  | Protocol.Load_path { store; path } ->
      handle_load_path ctx c ~store ~path;
      `Continue
  | Protocol.Query { source; store; doc; opts } ->
      handle_query ctx c source ~store ~doc opts;
      `Continue
  | Protocol.Explain { source; opts = _ } ->
      handle_explain ctx c source;
      `Continue
  | Protocol.Stats ->
      handle_stats ctx c;
      `Continue
  | Protocol.Close ->
      Protocol.write_frame_conn c "OK bye";
      `Closed
  | Protocol.Shutdown ->
      Protocol.write_frame_conn c "OK shutting down";
      `Shutdown_requested

let handle ctx c =
  let rec loop () =
    if ctx.draining () then `Closed
    else
      match Protocol.read_frame_conn c with
      | None -> `Closed
      | exception Protocol.Io_timeout k ->
          (* slowloris / parked connection: tell the client why (best
             effort — it may not be reading) and cut the session *)
          (try Protocol.write_frame_conn c (Printf.sprintf "ERR 3 %s" (Protocol.timeout_to_string k))
           with _ -> ());
          `Timed_out k
      | exception (Limits.Spanner_error _ as e) ->
          (* framing is broken: no way to find the next request
             boundary, so report and hang up *)
          (try Protocol.write_frame_conn c (err_frame e) with _ -> ());
          `Closed
      | Some payload -> (
          match handle_request ctx c payload with
          | `Continue -> loop ()
          | (`Closed | `Shutdown_requested) as final -> final
          | exception Protocol.Io_timeout k ->
              (* the response write stalled: writing an ERR frame
                 would stall the same way, so just cut the session *)
              `Timed_out k
          | exception e ->
              Protocol.write_frame_conn c (err_frame e);
              loop ())
  in
  (* the client vanishing mid-write (Sys_error / EPIPE with SIGPIPE
     ignored, or a reset) is a normal way for a session to end, as is
     an injected fault escaping the protocol layer *)
  try loop ()
  with Sys_error _ | End_of_file | Unix.Unix_error _ | Fault.Injected _ -> `Closed
