(* The spanner service: listener lifecycle and connection fan-out.

   Threading model (the shape ROADMAP item 1 asks for):

   - one *accept* systhread owns the listening socket;
   - one *session* systhread per connection owns that socket's IO
     (Session.handle);
   - a fixed crew of worker *domains* (Scheduler) does all the
     compute.

   Systhreads all share the main domain — perfect for IO-bound
   session loops, and it keeps every mutable server structure on one
   domain except the explicitly shared registry/scheduler, which
   carry their own locks.

   Shutdown is cooperative, idempotent, and *drains*: [stop] flips
   the flag and closes the listener (no new connections), then a
   drain thread gives in-flight sessions up to [drain_ms] to finish —
   sessions poll the flag between requests — before force half-closing
   whatever is left; [wait] joins the accept thread, the drain
   thread, the sessions, and retires the worker crew.  A client's
   SHUTDOWN verb funnels into the same [stop].

   Hostile-client defenses: optional per-connection deadlines
   (io/idle, see Protocol) turn a slowloris or parked connection into
   a counted timeout, and the accept loop backs off exponentially
   (50 -> 800 ms) under persistent accept failures such as EMFILE. *)

module Limits = Spanner_util.Limits
module Fault = Spanner_util.Fault

(* Probed before every accept: with an eintr/oom rule this models a
   flaky accept(2); the loop must retry/back off, never exit early. *)
let accept_site = Fault.site "server.accept"

type address = Unix_socket of string | Tcp of string * int

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* "unix:/path", "tcp:host:port", "host:port", or a bare filesystem
   path (anything with a '/' or no ':').  Used by both the serve and
   client commands, so the two cannot drift. *)
let address_of_string s =
  let starts p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  if starts "unix:" then
    Unix_socket (String.sub s 5 (String.length s - 5))
  else
    let tcp rest =
      match String.rindex_opt rest ':' with
      | Some i -> (
          let host = String.sub rest 0 i
          and port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Tcp ((if host = "" then "127.0.0.1" else host), p)
          | _ ->
              Limits.parse_error ~what:"address" ~pos:(i + 1)
                (Printf.sprintf "invalid port %S" port))
      | None ->
          Limits.parse_error ~what:"address" ~pos:0
            "expected unix:PATH, tcp:HOST:PORT or a socket path"
    in
    if starts "tcp:" then tcp (String.sub s 4 (String.length s - 4))
    else if String.contains s '/' || not (String.contains s ':') then Unix_socket s
    else tcp s

type config = {
  address : address;
  workers : int option;  (* None: Scheduler's default crew *)
  queue : int;  (* admission-queue capacity *)
  plan_cache : int;
  doc_cache : int;
  window : int;  (* tuples per stream frame *)
  max_frame : int;
  fuse_states : int option;
  defaults : Limits.t;  (* server-side budget defaults *)
  io_timeout_ms : int;  (* mid-frame read / response write deadline; 0 = off *)
  idle_timeout_ms : int;  (* between-requests deadline; 0 = off *)
  drain_ms : int;  (* graceful-drain budget on stop *)
}

let default_config address =
  {
    address;
    workers = None;
    queue = 64;
    plan_cache = 128;
    doc_cache = 128;
    window = 64;
    max_frame = Protocol.default_max_frame;
    fuse_states = None;
    defaults = Limits.none;
    io_timeout_ms = 0;
    idle_timeout_ms = 0;
    drain_ms = 1000;
  }

type t = {
  config : config;
  registry : Registry.t;
  scheduler : Scheduler.t;
  listener : Unix.file_descr;
  mutex : Mutex.t;
  mutable live : (int * Unix.file_descr) list;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_id : int;
  mutable accepted : int;
  mutable timeouts_io : int;  (* sessions cut mid-frame or mid-write *)
  mutable timeouts_idle : int;  (* sessions reaped while parked *)
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable drain_thread : Thread.t option;
}

let ignore_sigpipe () =
  (* a client hanging up mid-write must surface as an exception on
     the write, not kill the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let listen_on = function
  | Unix_socket path ->
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      (try
         if Sys.file_exists path then Unix.unlink path;
         Unix.bind fd (ADDR_UNIX path);
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd SO_REUSEADDR true;
         let addr =
           try Unix.inet_addr_of_string host
           with Failure _ -> (
             match Unix.getaddrinfo host "" [ AI_FAMILY PF_INET ] with
             | { ai_addr = ADDR_INET (a, _); _ } :: _ -> a
             | _ -> Limits.eval_failure ~what:"serve" ("cannot resolve host " ^ host))
         in
         Unix.bind fd (ADDR_INET (addr, port));
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Force half-close whatever sessions remain — under the lock:
   sessions only close their fd after removing themselves under the
   same lock, so every fd here is still open (no reuse race); their
   next read becomes a clean EOF. *)
let force_close_live t =
  locked t (fun () ->
      List.iter (fun (_, fd) -> try Unix.shutdown fd SHUTDOWN_ALL with _ -> ()) t.live)

(* The bounded graceful drain: in-flight sessions see [stopping]
   between requests (or hit their own deadlines) and wind down on
   their own; whoever is still around after [drain_ms] is cut. *)
let drain_body t () =
  let deadline = Unix.gettimeofday () +. (float_of_int t.config.drain_ms /. 1000.) in
  let rec poll () =
    if locked t (fun () -> t.live = []) then ()
    else if Unix.gettimeofday () >= deadline then force_close_live t
    else begin
      Thread.delay 0.01;
      poll ()
    end
  in
  poll ()

let stop t =
  let proceed =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if proceed then begin
    (* unblock accept: closing an fd another thread is blocked on
       does not reliably wake it on Linux, but shutdown() on the
       listening socket makes the blocked accept return EINVAL; the
       loop then reads t.stopping and exits *)
    (try Unix.shutdown t.listener SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listener with _ -> ());
    if t.config.drain_ms <= 0 then force_close_live t
    else locked t (fun () -> t.drain_thread <- Some (Thread.create (drain_body t) ()))
  end

let session_thread t (id, fd) =
  let conn =
    Protocol.conn_of_fd ~max_frame:t.config.max_frame
      ~idle_timeout_ms:t.config.idle_timeout_ms ~io_timeout_ms:t.config.io_timeout_ms fd
  in
  let ctx =
    {
      Session.registry = t.registry;
      scheduler = t.scheduler;
      window = t.config.window;
      max_frame = t.config.max_frame;
      draining = (fun () -> locked t (fun () -> t.stopping));
      extra_stats =
        (fun () ->
          let live, accepted, tio, tidle =
            locked t (fun () -> (List.length t.live, t.accepted, t.timeouts_io, t.timeouts_idle))
          in
          [
            Printf.sprintf "connections: live=%d accepted=%d" live accepted;
            Printf.sprintf "timeouts: io=%d idle=%d" tio tidle;
          ]
          @
          if Fault.armed () then
            [ Printf.sprintf "faults: injected=%d" (Fault.injected_total ()) ]
          else []);
    }
  in
  let result = Session.handle ctx conn in
  locked t (fun () ->
      (match result with
      | `Timed_out (`Read | `Write) -> t.timeouts_io <- t.timeouts_io + 1
      | `Timed_out `Idle -> t.timeouts_idle <- t.timeouts_idle + 1
      | `Closed | `Shutdown_requested -> ());
      t.live <- List.remove_assoc id t.live;
      Hashtbl.remove t.threads id);
  (try Unix.close fd with _ -> ());
  match result with `Shutdown_requested -> stop t | `Closed | `Timed_out _ -> ()

let min_backoff = 0.05
let max_backoff = 0.8

let accept_loop t () =
  let rec loop backoff =
    match
      Fault.point accept_site;
      Unix.accept t.listener
    with
    | fd, _addr ->
        let spawn =
          locked t (fun () ->
              if t.stopping then false
              else begin
                let id = t.next_id in
                t.next_id <- id + 1;
                t.accepted <- t.accepted + 1;
                t.live <- (id, fd) :: t.live;
                Hashtbl.replace t.threads id (Thread.create (session_thread t) (id, fd));
                true
              end)
        in
        if not spawn then (try Unix.close fd with _ -> ());
        loop min_backoff
    | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> loop backoff
    | exception _ ->
        if locked t (fun () -> t.stopping) then ()
        else begin
          (* persistent accept failures (EMFILE/ENFILE — exactly the
             under-load cases) back off exponentially up to 800 ms,
             resetting on the next successful accept *)
          Unix.sleepf backoff;
          loop (Float.min max_backoff (backoff *. 2.))
        end
  in
  loop min_backoff

let start config =
  ignore_sigpipe ();
  let listener = listen_on config.address in
  let registry =
    Registry.create ~plan_capacity:config.plan_cache ~doc_capacity:config.doc_cache
      ?fuse_states:config.fuse_states ~defaults:config.defaults ()
  in
  let scheduler = Scheduler.create ?workers:config.workers ~capacity:config.queue () in
  let t =
    {
      config;
      registry;
      scheduler;
      listener;
      mutex = Mutex.create ();
      live = [];
      threads = Hashtbl.create 16;
      next_id = 0;
      accepted = 0;
      timeouts_io = 0;
      timeouts_idle = 0;
      stopping = false;
      accept_thread = None;
      drain_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match locked t (fun () -> t.drain_thread) with Some th -> Thread.join th | None -> ());
  (* sessions remove themselves as they finish; join whatever is
     still live until none remain (joining a finished thread is a
     no-op, so racing against self-removal is harmless) *)
  let rec drain () =
    match locked t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.threads []) with
    | [] -> ()
    | threads ->
        List.iter Thread.join threads;
        drain ()
  in
  drain ();
  Scheduler.shutdown t.scheduler;
  match t.config.address with
  | Unix_socket path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ()

let registry t = t.registry
let scheduler t = t.scheduler
let address t = t.config.address
